# Empty dependencies file for olpp_integration_tests.
# This may be replaced when dependencies are built.
