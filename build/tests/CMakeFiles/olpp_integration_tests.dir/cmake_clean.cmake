file(REMOVE_RECURSE
  "CMakeFiles/olpp_integration_tests.dir/integration/ExactnessPropertyTest.cpp.o"
  "CMakeFiles/olpp_integration_tests.dir/integration/ExactnessPropertyTest.cpp.o.d"
  "CMakeFiles/olpp_integration_tests.dir/integration/FunctionPointerTest.cpp.o"
  "CMakeFiles/olpp_integration_tests.dir/integration/FunctionPointerTest.cpp.o.d"
  "olpp_integration_tests"
  "olpp_integration_tests.pdb"
  "olpp_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
