
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/AnalysisTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/analysis/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/analysis/AnalysisTest.cpp.o.d"
  "/root/repo/tests/driver/PipelineTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/driver/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/driver/PipelineTest.cpp.o.d"
  "/root/repo/tests/estimate/EstimatorsTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/EstimatorsTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/EstimatorsTest.cpp.o.d"
  "/root/repo/tests/estimate/PaperExampleTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/PaperExampleTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/PaperExampleTest.cpp.o.d"
  "/root/repo/tests/estimate/SolverTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/SolverTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/estimate/SolverTest.cpp.o.d"
  "/root/repo/tests/frontend/FrontendTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/frontend/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/frontend/FrontendTest.cpp.o.d"
  "/root/repo/tests/frontend/FuzzTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/frontend/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/frontend/FuzzTest.cpp.o.d"
  "/root/repo/tests/interp/CostModelTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/interp/CostModelTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/interp/CostModelTest.cpp.o.d"
  "/root/repo/tests/interp/InterpTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/interp/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/interp/InterpTest.cpp.o.d"
  "/root/repo/tests/ir/PrinterTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/ir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/ir/PrinterTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/ir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/ir/VerifierTest.cpp.o.d"
  "/root/repo/tests/overlap/OverlapTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/overlap/OverlapTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/overlap/OverlapTest.cpp.o.d"
  "/root/repo/tests/profile/InstrumentationTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/profile/InstrumentationTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/profile/InstrumentationTest.cpp.o.d"
  "/root/repo/tests/profile/MultiLatchTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/profile/MultiLatchTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/profile/MultiLatchTest.cpp.o.d"
  "/root/repo/tests/profile/PathGraphTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/profile/PathGraphTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/profile/PathGraphTest.cpp.o.d"
  "/root/repo/tests/profile/ProfileDecodeTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/profile/ProfileDecodeTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/profile/ProfileDecodeTest.cpp.o.d"
  "/root/repo/tests/support/SupportTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/support/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/support/SupportTest.cpp.o.d"
  "/root/repo/tests/workloads/WorkloadTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/workloads/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/workloads/WorkloadTest.cpp.o.d"
  "/root/repo/tests/wpp/GroundTruthTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/wpp/GroundTruthTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/wpp/GroundTruthTest.cpp.o.d"
  "/root/repo/tests/wpp/SequiturTest.cpp" "tests/CMakeFiles/olpp_unit_tests.dir/wpp/SequiturTest.cpp.o" "gcc" "tests/CMakeFiles/olpp_unit_tests.dir/wpp/SequiturTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/olpp_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/olpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/olpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/olpp_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/wpp/CMakeFiles/olpp_wpp.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/olpp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/overlap/CMakeFiles/olpp_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/olpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/olpp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/olpp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/olpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
