# Empty dependencies file for olpp_unit_tests.
# This may be replaced when dependencies are built.
