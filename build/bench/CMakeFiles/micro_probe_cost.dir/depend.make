# Empty dependencies file for micro_probe_cost.
# This may be replaced when dependencies are built.
