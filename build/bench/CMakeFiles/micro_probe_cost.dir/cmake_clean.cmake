file(REMOVE_RECURSE
  "CMakeFiles/micro_probe_cost.dir/micro_probe_cost.cpp.o"
  "CMakeFiles/micro_probe_cost.dir/micro_probe_cost.cpp.o.d"
  "micro_probe_cost"
  "micro_probe_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_probe_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
