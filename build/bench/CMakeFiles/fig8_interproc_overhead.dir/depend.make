# Empty dependencies file for fig8_interproc_overhead.
# This may be replaced when dependencies are built.
