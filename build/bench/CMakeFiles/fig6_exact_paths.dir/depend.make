# Empty dependencies file for fig6_exact_paths.
# This may be replaced when dependencies are built.
