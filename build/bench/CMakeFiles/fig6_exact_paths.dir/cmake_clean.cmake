file(REMOVE_RECURSE
  "CMakeFiles/fig6_exact_paths.dir/fig6_exact_paths.cpp.o"
  "CMakeFiles/fig6_exact_paths.dir/fig6_exact_paths.cpp.o.d"
  "fig6_exact_paths"
  "fig6_exact_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_exact_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
