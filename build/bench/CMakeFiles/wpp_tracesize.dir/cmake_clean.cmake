file(REMOVE_RECURSE
  "CMakeFiles/wpp_tracesize.dir/wpp_tracesize.cpp.o"
  "CMakeFiles/wpp_tracesize.dir/wpp_tracesize.cpp.o.d"
  "wpp_tracesize"
  "wpp_tracesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpp_tracesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
