# Empty dependencies file for wpp_tracesize.
# This may be replaced when dependencies are built.
