file(REMOVE_RECURSE
  "CMakeFiles/ablation_chords.dir/ablation_chords.cpp.o"
  "CMakeFiles/ablation_chords.dir/ablation_chords.cpp.o.d"
  "ablation_chords"
  "ablation_chords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
