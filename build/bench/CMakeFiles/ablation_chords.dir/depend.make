# Empty dependencies file for ablation_chords.
# This may be replaced when dependencies are built.
