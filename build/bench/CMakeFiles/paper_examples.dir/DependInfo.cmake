
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/paper_examples.cpp" "bench/CMakeFiles/paper_examples.dir/paper_examples.cpp.o" "gcc" "bench/CMakeFiles/paper_examples.dir/paper_examples.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/olpp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/olpp_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/wpp/CMakeFiles/olpp_wpp.dir/DependInfo.cmake"
  "/root/repo/build/src/overlap/CMakeFiles/olpp_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/olpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/olpp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/olpp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/olpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
