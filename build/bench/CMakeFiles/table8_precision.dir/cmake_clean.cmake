file(REMOVE_RECURSE
  "CMakeFiles/table8_precision.dir/table8_precision.cpp.o"
  "CMakeFiles/table8_precision.dir/table8_precision.cpp.o.d"
  "table8_precision"
  "table8_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
