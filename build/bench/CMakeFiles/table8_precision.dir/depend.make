# Empty dependencies file for table8_precision.
# This may be replaced when dependencies are built.
