# Empty dependencies file for olpp_bench_common.
# This may be replaced when dependencies are built.
