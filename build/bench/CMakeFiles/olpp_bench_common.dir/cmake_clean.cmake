file(REMOVE_RECURSE
  "../lib/libolpp_bench_common.a"
  "../lib/libolpp_bench_common.pdb"
  "CMakeFiles/olpp_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/olpp_bench_common.dir/BenchCommon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
