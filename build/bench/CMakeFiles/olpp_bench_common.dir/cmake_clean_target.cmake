file(REMOVE_RECURSE
  "../lib/libolpp_bench_common.a"
)
