file(REMOVE_RECURSE
  "CMakeFiles/table1_flow.dir/table1_flow.cpp.o"
  "CMakeFiles/table1_flow.dir/table1_flow.cpp.o.d"
  "table1_flow"
  "table1_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
