# Empty dependencies file for table1_flow.
# This may be replaced when dependencies are built.
