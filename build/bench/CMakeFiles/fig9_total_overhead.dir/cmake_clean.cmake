file(REMOVE_RECURSE
  "CMakeFiles/fig9_total_overhead.dir/fig9_total_overhead.cpp.o"
  "CMakeFiles/fig9_total_overhead.dir/fig9_total_overhead.cpp.o.d"
  "fig9_total_overhead"
  "fig9_total_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_total_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
