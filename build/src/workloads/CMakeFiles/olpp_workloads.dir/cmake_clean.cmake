file(REMOVE_RECURSE
  "CMakeFiles/olpp_workloads.dir/Generator.cpp.o"
  "CMakeFiles/olpp_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/olpp_workloads.dir/Workloads.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Espresso.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Espresso.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Gcc.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Gcc.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Go.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Go.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Li.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Li.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Mcf.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Mcf.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Parser.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Parser.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Perl.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Perl.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Twolf.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Twolf.cpp.o.d"
  "CMakeFiles/olpp_workloads.dir/programs/Vortex.cpp.o"
  "CMakeFiles/olpp_workloads.dir/programs/Vortex.cpp.o.d"
  "libolpp_workloads.a"
  "libolpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
