src/workloads/CMakeFiles/olpp_workloads.dir/programs/Vortex.cpp.o: \
 /root/repo/src/workloads/programs/Vortex.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
