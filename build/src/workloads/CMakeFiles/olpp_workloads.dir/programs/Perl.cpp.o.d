src/workloads/CMakeFiles/olpp_workloads.dir/programs/Perl.cpp.o: \
 /root/repo/src/workloads/programs/Perl.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
