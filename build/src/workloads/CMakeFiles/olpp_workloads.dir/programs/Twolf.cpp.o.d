src/workloads/CMakeFiles/olpp_workloads.dir/programs/Twolf.cpp.o: \
 /root/repo/src/workloads/programs/Twolf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
