src/workloads/CMakeFiles/olpp_workloads.dir/programs/Parser.cpp.o: \
 /root/repo/src/workloads/programs/Parser.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
