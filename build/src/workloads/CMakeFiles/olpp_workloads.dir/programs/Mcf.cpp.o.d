src/workloads/CMakeFiles/olpp_workloads.dir/programs/Mcf.cpp.o: \
 /root/repo/src/workloads/programs/Mcf.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
