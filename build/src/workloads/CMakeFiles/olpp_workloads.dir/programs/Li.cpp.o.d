src/workloads/CMakeFiles/olpp_workloads.dir/programs/Li.cpp.o: \
 /root/repo/src/workloads/programs/Li.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
