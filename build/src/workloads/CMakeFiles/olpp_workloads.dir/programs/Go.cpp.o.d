src/workloads/CMakeFiles/olpp_workloads.dir/programs/Go.cpp.o: \
 /root/repo/src/workloads/programs/Go.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
