src/workloads/CMakeFiles/olpp_workloads.dir/programs/Gcc.cpp.o: \
 /root/repo/src/workloads/programs/Gcc.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs/Sources.h
