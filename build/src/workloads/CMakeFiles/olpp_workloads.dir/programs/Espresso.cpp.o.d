src/workloads/CMakeFiles/olpp_workloads.dir/programs/Espresso.cpp.o: \
 /root/repo/src/workloads/programs/Espresso.cpp \
 /usr/include/stdc-predef.h /root/repo/src/workloads/programs/Sources.h
