# Empty compiler generated dependencies file for olpp_workloads.
# This may be replaced when dependencies are built.
