
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Generator.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/Generator.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/Generator.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/Workloads.cpp.o.d"
  "/root/repo/src/workloads/programs/Espresso.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Espresso.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Espresso.cpp.o.d"
  "/root/repo/src/workloads/programs/Gcc.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Gcc.cpp.o.d"
  "/root/repo/src/workloads/programs/Go.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Go.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Go.cpp.o.d"
  "/root/repo/src/workloads/programs/Li.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Li.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Li.cpp.o.d"
  "/root/repo/src/workloads/programs/Mcf.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Mcf.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Mcf.cpp.o.d"
  "/root/repo/src/workloads/programs/Parser.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Parser.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Parser.cpp.o.d"
  "/root/repo/src/workloads/programs/Perl.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Perl.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Perl.cpp.o.d"
  "/root/repo/src/workloads/programs/Twolf.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Twolf.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Twolf.cpp.o.d"
  "/root/repo/src/workloads/programs/Vortex.cpp" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/olpp_workloads.dir/programs/Vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/olpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
