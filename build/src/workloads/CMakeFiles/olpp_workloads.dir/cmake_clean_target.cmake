file(REMOVE_RECURSE
  "libolpp_workloads.a"
)
