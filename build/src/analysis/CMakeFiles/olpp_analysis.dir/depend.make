# Empty dependencies file for olpp_analysis.
# This may be replaced when dependencies are built.
