file(REMOVE_RECURSE
  "CMakeFiles/olpp_analysis.dir/Cfg.cpp.o"
  "CMakeFiles/olpp_analysis.dir/Cfg.cpp.o.d"
  "CMakeFiles/olpp_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/olpp_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/olpp_analysis.dir/EdgeSplit.cpp.o"
  "CMakeFiles/olpp_analysis.dir/EdgeSplit.cpp.o.d"
  "CMakeFiles/olpp_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/olpp_analysis.dir/LoopInfo.cpp.o.d"
  "libolpp_analysis.a"
  "libolpp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
