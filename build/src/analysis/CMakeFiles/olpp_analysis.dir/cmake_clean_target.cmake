file(REMOVE_RECURSE
  "libolpp_analysis.a"
)
