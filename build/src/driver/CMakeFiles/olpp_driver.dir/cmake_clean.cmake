file(REMOVE_RECURSE
  "CMakeFiles/olpp_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/olpp_driver.dir/Pipeline.cpp.o.d"
  "libolpp_driver.a"
  "libolpp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
