# Empty compiler generated dependencies file for olpp_driver.
# This may be replaced when dependencies are built.
