file(REMOVE_RECURSE
  "libolpp_driver.a"
)
