file(REMOVE_RECURSE
  "CMakeFiles/olpp.dir/Main.cpp.o"
  "CMakeFiles/olpp.dir/Main.cpp.o.d"
  "olpp"
  "olpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
