# Empty compiler generated dependencies file for olpp.
# This may be replaced when dependencies are built.
