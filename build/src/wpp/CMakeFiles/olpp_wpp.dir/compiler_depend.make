# Empty compiler generated dependencies file for olpp_wpp.
# This may be replaced when dependencies are built.
