file(REMOVE_RECURSE
  "CMakeFiles/olpp_wpp.dir/ExpectedCounters.cpp.o"
  "CMakeFiles/olpp_wpp.dir/ExpectedCounters.cpp.o.d"
  "CMakeFiles/olpp_wpp.dir/GroundTruth.cpp.o"
  "CMakeFiles/olpp_wpp.dir/GroundTruth.cpp.o.d"
  "CMakeFiles/olpp_wpp.dir/Sequitur.cpp.o"
  "CMakeFiles/olpp_wpp.dir/Sequitur.cpp.o.d"
  "CMakeFiles/olpp_wpp.dir/TraceStats.cpp.o"
  "CMakeFiles/olpp_wpp.dir/TraceStats.cpp.o.d"
  "libolpp_wpp.a"
  "libolpp_wpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_wpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
