file(REMOVE_RECURSE
  "libolpp_wpp.a"
)
