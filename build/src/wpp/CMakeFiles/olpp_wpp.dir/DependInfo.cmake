
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wpp/ExpectedCounters.cpp" "src/wpp/CMakeFiles/olpp_wpp.dir/ExpectedCounters.cpp.o" "gcc" "src/wpp/CMakeFiles/olpp_wpp.dir/ExpectedCounters.cpp.o.d"
  "/root/repo/src/wpp/GroundTruth.cpp" "src/wpp/CMakeFiles/olpp_wpp.dir/GroundTruth.cpp.o" "gcc" "src/wpp/CMakeFiles/olpp_wpp.dir/GroundTruth.cpp.o.d"
  "/root/repo/src/wpp/Sequitur.cpp" "src/wpp/CMakeFiles/olpp_wpp.dir/Sequitur.cpp.o" "gcc" "src/wpp/CMakeFiles/olpp_wpp.dir/Sequitur.cpp.o.d"
  "/root/repo/src/wpp/TraceStats.cpp" "src/wpp/CMakeFiles/olpp_wpp.dir/TraceStats.cpp.o" "gcc" "src/wpp/CMakeFiles/olpp_wpp.dir/TraceStats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/olpp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/overlap/CMakeFiles/olpp_overlap.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/olpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/olpp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/olpp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/olpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
