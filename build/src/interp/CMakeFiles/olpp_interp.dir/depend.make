# Empty dependencies file for olpp_interp.
# This may be replaced when dependencies are built.
