file(REMOVE_RECURSE
  "libolpp_interp.a"
)
