file(REMOVE_RECURSE
  "CMakeFiles/olpp_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/olpp_interp.dir/Interpreter.cpp.o.d"
  "libolpp_interp.a"
  "libolpp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
