file(REMOVE_RECURSE
  "libolpp_overlap.a"
)
