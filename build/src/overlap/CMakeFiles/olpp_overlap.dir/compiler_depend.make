# Empty compiler generated dependencies file for olpp_overlap.
# This may be replaced when dependencies are built.
