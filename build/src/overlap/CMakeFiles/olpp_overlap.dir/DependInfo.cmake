
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlap/OverlapRegion.cpp" "src/overlap/CMakeFiles/olpp_overlap.dir/OverlapRegion.cpp.o" "gcc" "src/overlap/CMakeFiles/olpp_overlap.dir/OverlapRegion.cpp.o.d"
  "/root/repo/src/overlap/Projection.cpp" "src/overlap/CMakeFiles/olpp_overlap.dir/Projection.cpp.o" "gcc" "src/overlap/CMakeFiles/olpp_overlap.dir/Projection.cpp.o.d"
  "/root/repo/src/overlap/RegionNumbering.cpp" "src/overlap/CMakeFiles/olpp_overlap.dir/RegionNumbering.cpp.o" "gcc" "src/overlap/CMakeFiles/olpp_overlap.dir/RegionNumbering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/olpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/olpp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/olpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
