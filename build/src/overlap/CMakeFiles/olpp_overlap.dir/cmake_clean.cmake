file(REMOVE_RECURSE
  "CMakeFiles/olpp_overlap.dir/OverlapRegion.cpp.o"
  "CMakeFiles/olpp_overlap.dir/OverlapRegion.cpp.o.d"
  "CMakeFiles/olpp_overlap.dir/Projection.cpp.o"
  "CMakeFiles/olpp_overlap.dir/Projection.cpp.o.d"
  "CMakeFiles/olpp_overlap.dir/RegionNumbering.cpp.o"
  "CMakeFiles/olpp_overlap.dir/RegionNumbering.cpp.o.d"
  "libolpp_overlap.a"
  "libolpp_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
