file(REMOVE_RECURSE
  "libolpp_ir.a"
)
