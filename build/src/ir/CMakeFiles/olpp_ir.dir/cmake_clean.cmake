file(REMOVE_RECURSE
  "CMakeFiles/olpp_ir.dir/Module.cpp.o"
  "CMakeFiles/olpp_ir.dir/Module.cpp.o.d"
  "CMakeFiles/olpp_ir.dir/Printer.cpp.o"
  "CMakeFiles/olpp_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/olpp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/olpp_ir.dir/Verifier.cpp.o.d"
  "libolpp_ir.a"
  "libolpp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
