# Empty dependencies file for olpp_ir.
# This may be replaced when dependencies are built.
