file(REMOVE_RECURSE
  "libolpp_profile.a"
)
