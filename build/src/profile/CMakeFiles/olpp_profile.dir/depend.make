# Empty dependencies file for olpp_profile.
# This may be replaced when dependencies are built.
