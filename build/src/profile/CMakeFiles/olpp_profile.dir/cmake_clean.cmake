file(REMOVE_RECURSE
  "CMakeFiles/olpp_profile.dir/Instrumenter.cpp.o"
  "CMakeFiles/olpp_profile.dir/Instrumenter.cpp.o.d"
  "CMakeFiles/olpp_profile.dir/PathGraph.cpp.o"
  "CMakeFiles/olpp_profile.dir/PathGraph.cpp.o.d"
  "CMakeFiles/olpp_profile.dir/ProfileDecode.cpp.o"
  "CMakeFiles/olpp_profile.dir/ProfileDecode.cpp.o.d"
  "libolpp_profile.a"
  "libolpp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
