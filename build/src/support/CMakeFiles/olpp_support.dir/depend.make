# Empty dependencies file for olpp_support.
# This may be replaced when dependencies are built.
