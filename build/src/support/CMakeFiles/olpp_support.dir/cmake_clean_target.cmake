file(REMOVE_RECURSE
  "libolpp_support.a"
)
