file(REMOVE_RECURSE
  "CMakeFiles/olpp_support.dir/Format.cpp.o"
  "CMakeFiles/olpp_support.dir/Format.cpp.o.d"
  "CMakeFiles/olpp_support.dir/Stats.cpp.o"
  "CMakeFiles/olpp_support.dir/Stats.cpp.o.d"
  "CMakeFiles/olpp_support.dir/TableWriter.cpp.o"
  "CMakeFiles/olpp_support.dir/TableWriter.cpp.o.d"
  "libolpp_support.a"
  "libolpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
