# Empty compiler generated dependencies file for olpp_estimate.
# This may be replaced when dependencies are built.
