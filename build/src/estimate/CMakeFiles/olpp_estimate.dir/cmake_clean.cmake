file(REMOVE_RECURSE
  "CMakeFiles/olpp_estimate.dir/Estimators.cpp.o"
  "CMakeFiles/olpp_estimate.dir/Estimators.cpp.o.d"
  "CMakeFiles/olpp_estimate.dir/IntervalSolver.cpp.o"
  "CMakeFiles/olpp_estimate.dir/IntervalSolver.cpp.o.d"
  "libolpp_estimate.a"
  "libolpp_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
