file(REMOVE_RECURSE
  "libolpp_estimate.a"
)
