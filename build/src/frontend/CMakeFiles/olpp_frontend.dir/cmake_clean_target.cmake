file(REMOVE_RECURSE
  "libolpp_frontend.a"
)
