# Empty dependencies file for olpp_frontend.
# This may be replaced when dependencies are built.
