file(REMOVE_RECURSE
  "CMakeFiles/olpp_frontend.dir/Compiler.cpp.o"
  "CMakeFiles/olpp_frontend.dir/Compiler.cpp.o.d"
  "CMakeFiles/olpp_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/olpp_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/olpp_frontend.dir/Lower.cpp.o"
  "CMakeFiles/olpp_frontend.dir/Lower.cpp.o.d"
  "CMakeFiles/olpp_frontend.dir/Parser.cpp.o"
  "CMakeFiles/olpp_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/olpp_frontend.dir/Sema.cpp.o"
  "CMakeFiles/olpp_frontend.dir/Sema.cpp.o.d"
  "libolpp_frontend.a"
  "libolpp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olpp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
