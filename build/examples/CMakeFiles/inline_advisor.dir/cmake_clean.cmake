file(REMOVE_RECURSE
  "CMakeFiles/inline_advisor.dir/inline_advisor.cpp.o"
  "CMakeFiles/inline_advisor.dir/inline_advisor.cpp.o.d"
  "inline_advisor"
  "inline_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inline_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
