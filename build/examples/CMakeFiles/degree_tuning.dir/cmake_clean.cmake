file(REMOVE_RECURSE
  "CMakeFiles/degree_tuning.dir/degree_tuning.cpp.o"
  "CMakeFiles/degree_tuning.dir/degree_tuning.cpp.o.d"
  "degree_tuning"
  "degree_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
