# Empty dependencies file for degree_tuning.
# This may be replaced when dependencies are built.
