//===--- WorkloadTest.cpp - benchmark suite health ------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "frontend/Compiler.h"
#include "workloads/Generator.h"
#include "workloads/Workloads.h"
#include "wpp/ExpectedCounters.h"

#include <gtest/gtest.h>

using namespace olpp;

TEST(Workloads, SuiteHasTenNamedBenchmarks) {
  const auto &Suite = allWorkloads();
  ASSERT_EQ(Suite.size(), 10u);
  const char *Names[] = {"li",     "go",  "perl",  "espresso", "vortex",
                         "parser", "mcf", "twolf", "gcc",      "ijpeg"};
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(Suite[I].Name, Names[I]);
  EXPECT_NE(findWorkload("mcf"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Workloads, AllCompileVerifyAndRunDeterministically) {
  for (const Workload &W : allWorkloads()) {
    CompileResult CR = compileMiniC(W.Source);
    ASSERT_TRUE(CR.ok()) << W.Name << ":\n" << CR.diagText();
    const Function *Main = CR.M->findFunction("main");
    ASSERT_NE(Main, nullptr) << W.Name;

    Interpreter I1(*CR.M);
    RunResult A = I1.run(*Main, W.PrecisionArgs);
    ASSERT_TRUE(A.Ok) << W.Name << ": " << A.Error;
    Interpreter I2(*CR.M);
    RunResult B = I2.run(*Main, W.PrecisionArgs);
    ASSERT_TRUE(B.Ok) << W.Name;
    EXPECT_EQ(A.ReturnValue, B.ReturnValue) << W.Name;
    EXPECT_EQ(A.Counts.Steps, B.Counts.Steps) << W.Name;
    EXPECT_GT(A.Counts.Steps, 10'000u)
        << W.Name << " does too little work for profiling experiments";
  }
}

TEST(Workloads, SuiteSpansLoopVsCallCharacter) {
  double MinBackedgeShare = 1.0, MaxBackedgeShare = 0.0;
  for (const Workload &W : allWorkloads()) {
    CompileResult CR = compileMiniC(W.Source);
    ASSERT_TRUE(CR.ok());
    PipelineConfig C;
    C.Args = W.PrecisionArgs;
    PipelineResult R = runPipeline(*CR.M, C);
    ASSERT_TRUE(R.ok()) << W.Name;
    double Share = static_cast<double>(R.GT.TotalBackedgeCrossings) /
                   static_cast<double>(R.GT.TotalPathInstances);
    MinBackedgeShare = std::min(MinBackedgeShare, Share);
    MaxBackedgeShare = std::max(MaxBackedgeShare, Share);
  }
  // vortex-like call-dominated at one end, twolf-like loop-dominated at
  // the other (paper Table 1's spread).
  EXPECT_LT(MinBackedgeShare, 0.10);
  EXPECT_GT(MaxBackedgeShare, 0.70);
}

TEST(Workloads, CountersExactOnEveryBenchmark) {
  // The master exactness property over the real workloads (small inputs to
  // keep the traces fast), with full instrumentation.
  for (const Workload &W : allWorkloads()) {
    CompileResult CR = compileMiniC(W.Source);
    ASSERT_TRUE(CR.ok());
    PipelineConfig C;
    C.Instr.LoopOverlap = true;
    C.Instr.LoopDegree = 1;
    C.Instr.Interproc = true;
    C.Instr.InterprocDegree = 1;
    C.Args = {2, 7};
    PipelineResult R = runPipeline(*CR.M, C);
    ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Errors[0];
    ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
    for (uint32_t F = 0; F < R.Prof->PathCounts.size(); ++F)
      ASSERT_EQ(R.Prof->PathCounts[F], EC.PathCounts[F]) << W.Name;
    ASSERT_EQ(R.Prof->TypeICounts, EC.TypeICounts) << W.Name;
    ASSERT_EQ(R.Prof->TypeIICounts, EC.TypeIICounts) << W.Name;
  }
}

TEST(Generator, DeterministicPerSeed) {
  GeneratorOptions A;
  A.Seed = 42;
  GeneratorOptions B;
  B.Seed = 42;
  EXPECT_EQ(generateProgram(A), generateProgram(B));
  B.Seed = 43;
  EXPECT_NE(generateProgram(A), generateProgram(B));
}

TEST(Generator, ManySeedsCompileAndTerminate) {
  for (uint64_t Seed = 100; Seed < 160; ++Seed) {
    GeneratorOptions GO;
    GO.Seed = Seed;
    GO.NumFunctions = 3;
    GO.MaxLoopIters = 4;
    GO.MaxStmtsPerBlock = 3;
    CompileResult CR = compileMiniC(generateProgram(GO));
    ASSERT_TRUE(CR.ok()) << "seed " << Seed << "\n" << CR.diagText();
    Interpreter I(*CR.M);
    RunConfig RC;
    RC.MaxSteps = 30'000'000;
    RunResult R = I.run(*CR.M->findFunction("main"), {3, 11}, RC);
    // Fuel exhaustion is tolerated (finite but huge nesting); any other
    // failure is a generator bug.
    if (!R.Ok)
      EXPECT_NE(R.Error.find("fuel"), std::string::npos)
          << "seed " << Seed << ": " << R.Error;
  }
}

TEST(Generator, RespectsCallToggle) {
  GeneratorOptions GO;
  GO.Seed = 9;
  GO.AllowCalls = false;
  std::string Source = generateProgram(GO);
  CompileResult CR = compileMiniC(Source);
  ASSERT_TRUE(CR.ok());
  for (const auto &F : CR.M->functions())
    for (const auto &BB : F->blocks())
      for (const Instruction &I : BB->Instrs)
        EXPECT_TRUE(I.Op != Opcode::Call && I.Op != Opcode::CallInd);
}
