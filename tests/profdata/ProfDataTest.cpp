//===--- ProfDataTest.cpp - .olpp format, golden bytes, merge algebra -----===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The persistent-artifact contract, from four sides:
//   (a) lossless round trips through the writer and the checked reader,
//   (b) wholesale rejection: every single-bit flip and every strict-prefix
//       truncation of a serialized artifact is refused (well over the 200
//       mutations the subsystem promises), plus crafted structural
//       violations one by one,
//   (c) versioning: newer-major artifacts are rejected with a diagnostic
//       that names both versions; newer-minor artifacts and unknown
//       sections are read fine,
//   (d) merge algebra: commutative, associative, saturating at UINT64_MAX,
//       and --weight N identical to merging the same artifact N times —
//       plus the checked-in golden fixture that pins the byte encoding.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "support/Crc32.h"
#include "support/Leb128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace olpp;

namespace {

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

/// The fixture artifact (tests/profdata/fixtures/tiny.olpp): two functions,
/// one dense store with a saturated counter, one spill-only store, one
/// Type I tuple, empty Type II.
ProfileArtifact tinyArtifact() {
  ProfileArtifact A;
  A.Fingerprint = 0x0123456789ABCDEFULL;
  A.NumFunctions = 2;
  A.Meta.Workload = "tiny";
  A.Meta.Instr.LoopOverlap = true;
  A.Meta.Instr.LoopDegree = 1;
  A.Meta.Runs = 3;
  A.Meta.DynInstrCost = 123456;
  A.Meta.TimestampUnix = 1700000000;
  A.IdSpaces = {8, 0};
  A.Counters.PathCounts.resize(2);
  A.Counters.configurePathStore(0, 8);
  A.Counters.PathCounts[0].add(0, 5);
  A.Counters.PathCounts[0].add(3, 1);
  A.Counters.PathCounts[0].add(7, UINT64_MAX);
  A.Counters.PathCounts[1].add(1000000, 42); // id space 0: spill map
  A.Counters.TypeICounts.bump({1, 0, 2, 3}, 9);
  return A;
}

/// An artifact with \p NumFunctions functions and no counters at all (the
/// writer still emits all four sections).
ProfileArtifact emptyArtifact(uint32_t NumFunctions = 1) {
  ProfileArtifact A;
  A.Fingerprint = 0x42;
  A.NumFunctions = NumFunctions;
  A.IdSpaces.assign(NumFunctions, 0);
  A.Counters.PathCounts.resize(NumFunctions);
  return A;
}

std::string metaPayload(uint64_t Fp = 0x42, uint64_t NumFuncs = 2) {
  std::string P;
  for (int I = 0; I < 8; ++I)
    P.push_back(static_cast<char>((Fp >> (8 * I)) & 0xFF));
  appendUleb(P, NumFuncs);
  appendUleb(P, 0); // mode bits
  appendUleb(P, 0); // loop degree
  appendUleb(P, 0); // interproc degree
  appendUleb(P, 1); // runs
  appendUleb(P, 0); // dyn instr cost
  appendUleb(P, 0); // timestamp
  appendUleb(P, 0); // workload name length
  return P;
}

std::string emptyTuples() {
  std::string P;
  appendUleb(P, 0);
  return P;
}

/// Assembles a complete file from (id, payload) sections: valid header with
/// the right count and CRC, valid per-section CRCs.
std::string buildFile(
    const std::vector<std::pair<uint8_t, std::string>> &Secs) {
  std::string Out = "OLPP";
  Out.push_back(1); // major
  Out.push_back(0); // minor
  Out.push_back(0); // flags lo
  Out.push_back(0); // flags hi
  uint32_t N = static_cast<uint32_t>(Secs.size());
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((N >> (8 * I)) & 0xFF));
  uint32_t HC = crc32(Out.data(), 12);
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((HC >> (8 * I)) & 0xFF));
  for (const auto &[Id, Payload] : Secs) {
    Out.push_back(static_cast<char>(Id));
    uint64_t L = Payload.size();
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<char>((L >> (8 * I)) & 0xFF));
    Out += Payload;
    uint32_t C = crc32(Payload);
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<char>((C >> (8 * I)) & 0xFF));
  }
  return Out;
}

/// A valid 4-section file around one crafted PATHS payload.
std::string fileWithPaths(const std::string &Paths) {
  return buildFile({{profdata::SecMeta, metaPayload()},
                    {profdata::SecPaths, Paths},
                    {profdata::SecTypeI, emptyTuples()},
                    {profdata::SecTypeII, emptyTuples()}});
}

std::string fileWithTypeI(const std::string &TypeI) {
  std::string Paths;
  appendUleb(Paths, 0);
  return buildFile({{profdata::SecMeta, metaPayload()},
                    {profdata::SecPaths, Paths},
                    {profdata::SecTypeI, TypeI},
                    {profdata::SecTypeII, emptyTuples()}});
}

/// Recomputes the header CRC after a direct header edit (bytes 0..11).
void fixHeaderCrc(std::string &Bytes) {
  uint32_t C = crc32(Bytes.data(), 12);
  for (int I = 0; I < 4; ++I)
    Bytes[12 + static_cast<size_t>(I)] =
        static_cast<char>((C >> (8 * I)) & 0xFF);
}

/// True when the checked reader rejects \p Bytes; with \p Needle, the
/// rejection must also carry a diagnostic containing it.
testing::AssertionResult rejects(const std::string &Bytes,
                                 const char *Needle = nullptr) {
  ProfileArtifact Out;
  std::vector<Diagnostic> Diags;
  if (readProfileArtifactBytes(Bytes, Out, Diags))
    return testing::AssertionFailure() << "artifact was accepted";
  if (Out.NumFunctions != 0 || !Out.Counters.PathCounts.empty())
    return testing::AssertionFailure()
           << "rejected artifact left partial state behind";
  if (!Needle)
    return testing::AssertionSuccess();
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << "no diagnostic contains '" << Needle << "'; got: "
         << (Diags.empty() ? "(none)" : Diags[0].str());
}

testing::AssertionResult roundTrips(const ProfileArtifact &A) {
  std::string Bytes = serializeProfileArtifact(A);
  ProfileArtifact Back;
  std::vector<Diagnostic> Diags;
  if (!readProfileArtifactBytes(Bytes, Back, Diags))
    return testing::AssertionFailure()
           << "read failed: "
           << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  std::string FirstDiff;
  if (!artifactsEqual(A, Back, &FirstDiff))
    return testing::AssertionFailure() << "not lossless: " << FirstDiff;
  return testing::AssertionSuccess();
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(ProfData, RoundTripsDenseSpillAndInterproc) {
  EXPECT_TRUE(roundTrips(tinyArtifact()));
}

TEST(ProfData, RoundTripsEmptyArtifact) {
  EXPECT_TRUE(roundTrips(emptyArtifact()));
  EXPECT_TRUE(roundTrips(emptyArtifact(17)));
}

TEST(ProfData, RoundTripsFullMetadata) {
  ProfileArtifact A = tinyArtifact();
  A.Meta.Instr.Interproc = true;
  A.Meta.Instr.InterprocDegree = 3;
  A.Meta.Instr.CallBreaking = true;
  A.Meta.Instr.UseChords = true;
  A.Meta.Workload = "a workload \"name\" with bytes";
  A.Counters.TypeIICounts.bump({0, 1, -5, 7}, 1);
  A.Counters.TypeIICounts.bump({1, 0, 0, 0}, UINT64_MAX);
  EXPECT_TRUE(roundTrips(A));
}

TEST(ProfData, SerializationIsDeterministic) {
  EXPECT_EQ(serializeProfileArtifact(tinyArtifact()),
            serializeProfileArtifact(tinyArtifact()));
}

TEST(ProfData, FileRoundTrip) {
  ProfileArtifact A = tinyArtifact();
  std::string Path = testing::TempDir() + "olpp_profdata_roundtrip.olpp";
  std::string Error;
  ASSERT_TRUE(writeProfileArtifactFile(Path, A, Error)) << Error;
  ProfileArtifact Back;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(readProfileArtifactFile(Path, Back, Diags));
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(A, Back, &FirstDiff)) << FirstDiff;
  std::remove(Path.c_str());
}

TEST(ProfData, FingerprintGateRejectsMismatch) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  ProfDataReadOptions RO;
  RO.CheckFingerprint = true;
  RO.ExpectedFingerprint = 0xDEAD;
  ProfileArtifact Out;
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(readProfileArtifactBytes(Bytes, Out, Diags, RO));
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("fingerprint"), std::string::npos)
      << Diags[0].str();
  RO.ExpectedFingerprint = 0x0123456789ABCDEFULL;
  Diags.clear();
  EXPECT_TRUE(readProfileArtifactBytes(Bytes, Out, Diags, RO));
}

//===----------------------------------------------------------------------===//
// Mutation exhaustion: the >= 200 rejected-corruption guarantee
//===----------------------------------------------------------------------===//

TEST(ProfDataMutation, EverySingleBitFlipIsRejected) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  size_t Mutations = 0;
  for (size_t Pos = 0; Pos < Bytes.size(); ++Pos) {
    for (unsigned Bit = 0; Bit < 8; ++Bit) {
      std::string Mut = Bytes;
      Mut[Pos] = static_cast<char>(Mut[Pos] ^ (1u << Bit));
      ASSERT_TRUE(rejects(Mut))
          << "bit " << Bit << " at byte " << Pos << " of " << Bytes.size();
      ++Mutations;
    }
  }
  EXPECT_GE(Mutations, 200u) << "mutation coverage promise broken";
}

TEST(ProfDataMutation, EveryStrictPrefixIsRejected) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    ASSERT_TRUE(rejects(Bytes.substr(0, Len)))
        << "prefix of " << Len << " byte(s) accepted";
}

TEST(ProfDataMutation, AppendedTrailingBytesAreRejected) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  EXPECT_TRUE(rejects(Bytes + '\0', "trailing"));
  EXPECT_TRUE(rejects(Bytes + "junk", "trailing"));
}

//===----------------------------------------------------------------------===//
// Crafted structural violations
//===----------------------------------------------------------------------===//

TEST(ProfDataReject, BadMagic) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  Bytes[0] = 'X';
  fixHeaderCrc(Bytes); // even with a consistent checksum: not our file
  EXPECT_TRUE(rejects(Bytes, "magic"));
}

TEST(ProfDataReject, DuplicateSlot) {
  std::string P;
  appendUleb(P, 1); // one function
  appendUleb(P, 0); // function id 0
  appendUleb(P, 8); // id space
  appendUleb(P, 2); // two entries
  appendSleb(P, 3); // first slot
  appendUleb(P, 5); // count
  appendUleb(P, 0); // delta 0 = same slot again
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithPaths(P), "duplicate path slot"));
}

TEST(ProfDataReject, ZeroCount) {
  std::string P;
  appendUleb(P, 1);
  appendUleb(P, 0);
  appendUleb(P, 8);
  appendUleb(P, 1);
  appendSleb(P, 3);
  appendUleb(P, 0); // zero count
  EXPECT_TRUE(rejects(fileWithPaths(P), "zero count"));
}

TEST(ProfDataReject, SlotOutOfIdSpace) {
  std::string P;
  appendUleb(P, 1);
  appendUleb(P, 0);
  appendUleb(P, 4);  // id space [0, 4)
  appendUleb(P, 1);
  appendSleb(P, 10); // slot 10
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithPaths(P), "out of range"));
}

TEST(ProfDataReject, NegativeSlot) {
  std::string P;
  appendUleb(P, 1);
  appendUleb(P, 0);
  appendUleb(P, 0);
  appendUleb(P, 1);
  appendSleb(P, -3);
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithPaths(P), "negative path slot"));
}

TEST(ProfDataReject, FunctionIdOutOfRange) {
  std::string P;
  appendUleb(P, 1);
  appendUleb(P, 9); // metaPayload declares 2 functions
  appendUleb(P, 0);
  appendUleb(P, 0);
  EXPECT_TRUE(rejects(fileWithPaths(P), "function id"));
}

TEST(ProfDataReject, UnsortedFunctions) {
  std::string P;
  appendUleb(P, 2);
  appendUleb(P, 1); // function 1 first
  appendUleb(P, 0);
  appendUleb(P, 0);
  appendUleb(P, 0); // then function 0
  appendUleb(P, 0);
  appendUleb(P, 0);
  EXPECT_TRUE(rejects(fileWithPaths(P), "duplicated or unsorted"));
}

TEST(ProfDataReject, UnsortedInterprocKeys) {
  std::string P;
  appendUleb(P, 2);
  appendSleb(P, 5); // key (5, 0, 0, 0)
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendUleb(P, 1);
  appendSleb(P, -2); // key (3, 0, 0, 0): goes backwards
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithTypeI(P), "duplicated or unsorted"));
}

TEST(ProfDataReject, InterprocCalleeOutOfRange) {
  std::string P;
  appendUleb(P, 1);
  appendSleb(P, -1); // callee -1
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendSleb(P, 0);
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithTypeI(P), "out-of-range"));
}

TEST(ProfDataReject, NonCanonicalVarint) {
  std::string P;
  appendUleb(P, 1);
  appendUleb(P, 0);
  appendUleb(P, 8);
  P.push_back('\x81'); // entry count 1 encoded as two groups: redundant
  P.push_back('\x00');
  appendSleb(P, 3);
  appendUleb(P, 1);
  EXPECT_TRUE(rejects(fileWithPaths(P)));
}

TEST(ProfDataReject, DuplicateSection) {
  std::string Paths;
  appendUleb(Paths, 0);
  EXPECT_TRUE(rejects(buildFile({{profdata::SecMeta, metaPayload()},
                                 {profdata::SecPaths, Paths},
                                 {profdata::SecPaths, Paths},
                                 {profdata::SecTypeI, emptyTuples()},
                                 {profdata::SecTypeII, emptyTuples()}}),
                      "duplicate section"));
}

TEST(ProfDataReject, MissingRequiredSection) {
  std::string Paths;
  appendUleb(Paths, 0);
  EXPECT_TRUE(rejects(buildFile({{profdata::SecMeta, metaPayload()},
                                 {profdata::SecPaths, Paths},
                                 {profdata::SecTypeI, emptyTuples()}}),
                      "missing required section"));
}

TEST(ProfDataReject, MetaMustComeFirst) {
  std::string Paths;
  appendUleb(Paths, 0);
  EXPECT_TRUE(rejects(buildFile({{profdata::SecPaths, Paths},
                                 {profdata::SecMeta, metaPayload()},
                                 {profdata::SecTypeI, emptyTuples()},
                                 {profdata::SecTypeII, emptyTuples()}})));
}

TEST(ProfDataReject, MetaPayloadTrailingBytes) {
  EXPECT_TRUE(rejects(buildFile({{profdata::SecMeta, metaPayload() + "x"},
                                 {profdata::SecPaths, emptyTuples()},
                                 {profdata::SecTypeI, emptyTuples()},
                                 {profdata::SecTypeII, emptyTuples()}}),
                      "trailing bytes"));
}

//===----------------------------------------------------------------------===//
// Versioning
//===----------------------------------------------------------------------===//

TEST(ProfDataVersion, NewerMajorIsRejectedByName) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  Bytes[4] = static_cast<char>(profdata::VersionMajor + 1);
  fixHeaderCrc(Bytes);
  EXPECT_TRUE(rejects(Bytes, "newer major version"));
  // The gate fires even when the checksum was not fixed up: a reader from
  // the past must name the future version, not report a CRC mismatch.
  std::string Unfixed = serializeProfileArtifact(tinyArtifact());
  Unfixed[4] = static_cast<char>(profdata::VersionMajor + 1);
  EXPECT_TRUE(rejects(Unfixed, "newer major version"));
}

TEST(ProfDataVersion, NewerMinorIsAccepted) {
  std::string Bytes = serializeProfileArtifact(tinyArtifact());
  Bytes[5] = static_cast<char>(profdata::VersionMinor + 1);
  fixHeaderCrc(Bytes);
  ProfileArtifact Out;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(readProfileArtifactBytes(Bytes, Out, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(tinyArtifact(), Out, &FirstDiff)) << FirstDiff;
}

TEST(ProfDataVersion, UnknownSectionIsSkippedButChecked) {
  // Append a section with an id this reader does not know (a newer-minor
  // extension). With a valid CRC the artifact reads fine...
  ProfileArtifact A = tinyArtifact();
  std::string Bytes = serializeProfileArtifact(A);
  std::string Extra = "future payload";
  Bytes.push_back(static_cast<char>(99));
  uint64_t L = Extra.size();
  for (int I = 0; I < 8; ++I)
    Bytes.push_back(static_cast<char>((L >> (8 * I)) & 0xFF));
  Bytes += Extra;
  uint32_t C = crc32(Extra);
  for (int I = 0; I < 4; ++I)
    Bytes.push_back(static_cast<char>((C >> (8 * I)) & 0xFF));
  Bytes[8] = static_cast<char>(5); // section count 4 -> 5
  fixHeaderCrc(Bytes);
  ProfileArtifact Out;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(readProfileArtifactBytes(Bytes, Out, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(A, Out, &FirstDiff)) << FirstDiff;

  // ...but its CRC is still enforced: skipped != unverified.
  std::string Bad = Bytes;
  Bad[Bytes.size() - 10] ^= 0x01; // a byte of the unknown payload
  EXPECT_TRUE(rejects(Bad, "CRC"));
}

//===----------------------------------------------------------------------===//
// Merge algebra
//===----------------------------------------------------------------------===//

/// Three artifacts sharing tinyArtifact's identity with disjoint-ish
/// counters and distinct metadata.
std::vector<ProfileArtifact> mergeFixtures() {
  ProfileArtifact A = tinyArtifact();
  ProfileArtifact B = tinyArtifact();
  B.Meta.Workload = "other";
  B.Meta.Runs = 2;
  B.Meta.DynInstrCost = 10;
  B.Meta.TimestampUnix = 1800000000;
  B.Counters.PathCounts[0].clear();
  B.Counters.configurePathStore(0, 8);
  B.Counters.PathCounts[0].add(1, 100);
  B.Counters.PathCounts[0].add(7, 1); // saturates against A's UINT64_MAX
  ProfileArtifact C = tinyArtifact();
  C.Meta.Workload = "";
  C.Meta.TimestampUnix = 42;
  C.Counters.TypeICounts.bump({2, 2, 2, 2}, 7);
  C.Counters.PathCounts[1].add(999999, 1);
  return {A, B, C};
}

ProfileArtifact foldMerge(const std::vector<ProfileArtifact> &Ins,
                          const std::vector<size_t> &Order,
                          uint64_t Weight = 1) {
  ProfileArtifact Acc = makeEmptyLike(Ins[Order[0]]);
  MergeOptions MO;
  MO.Weight = Weight;
  for (size_t I : Order) {
    std::vector<Diagnostic> Diags;
    EXPECT_TRUE(mergeArtifacts(Acc, Ins[I], Diags, MO))
        << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  }
  return Acc;
}

TEST(ProfDataMerge, OrderIsIrrelevant) {
  std::vector<ProfileArtifact> Ins = mergeFixtures();
  std::vector<std::vector<size_t>> Orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  ProfileArtifact Want = foldMerge(Ins, Orders[0]);
  EXPECT_EQ(Want.Meta.Runs, 8u);       // 3 + 2 + 3
  EXPECT_EQ(Want.Meta.Workload, "other"); // smaller non-empty name
  EXPECT_EQ(Want.Meta.TimestampUnix, 1800000000u); // max
  for (size_t I = 1; I < Orders.size(); ++I) {
    ProfileArtifact Got = foldMerge(Ins, Orders[I]);
    std::string FirstDiff;
    EXPECT_TRUE(artifactsEqual(Want, Got, &FirstDiff))
        << "order " << I << ": " << FirstDiff;
  }
}

TEST(ProfDataMerge, SaturatesAtUint64Max) {
  std::vector<ProfileArtifact> Ins = mergeFixtures();
  ProfileArtifact M = foldMerge(Ins, {0, 1});
  // A has slot 7 = UINT64_MAX, B adds 1 more: clamped, not wrapped.
  EXPECT_EQ(M.Counters.PathCounts[0].lookup(7), UINT64_MAX);
  // And the saturated value round-trips (10-group ULEB).
  EXPECT_TRUE(roundTrips(M));
}

TEST(ProfDataMerge, WeightedMergeEqualsRepeatedMerge) {
  ProfileArtifact A = tinyArtifact();
  for (uint64_t N : {2u, 5u, 13u}) {
    ProfileArtifact Weighted = foldMerge({A}, {0}, N);
    ProfileArtifact Repeated = makeEmptyLike(A);
    for (uint64_t I = 0; I < N; ++I) {
      std::vector<Diagnostic> Diags;
      ASSERT_TRUE(mergeArtifacts(Repeated, A, Diags));
    }
    std::string FirstDiff;
    EXPECT_TRUE(artifactsEqual(Weighted, Repeated, &FirstDiff))
        << "weight " << N << ": " << FirstDiff;
  }
}

TEST(ProfDataMerge, IncompatibleInputLeavesDestinationUntouched) {
  ProfileArtifact Dst = foldMerge({tinyArtifact()}, {0});
  ProfileArtifact Before = foldMerge({tinyArtifact()}, {0});
  ProfileArtifact Alien = tinyArtifact();
  Alien.Fingerprint = 0xBAD;
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(mergeArtifacts(Dst, Alien, Diags));
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags[0].Pass, "profdata-merge");
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(Dst, Before, &FirstDiff)) << FirstDiff;

  ProfileArtifact WrongMode = tinyArtifact();
  WrongMode.Meta.Instr.LoopDegree = 2;
  Diags.clear();
  EXPECT_FALSE(mergeArtifacts(Dst, WrongMode, Diags));
  EXPECT_TRUE(artifactsEqual(Dst, Before, &FirstDiff)) << FirstDiff;

  Diags.clear();
  MergeOptions MO;
  MO.Weight = 0;
  EXPECT_FALSE(mergeArtifacts(Dst, tinyArtifact(), Diags, MO));
  EXPECT_TRUE(artifactsEqual(Dst, Before, &FirstDiff)) << FirstDiff;
}

//===----------------------------------------------------------------------===//
// Golden format stability
//===----------------------------------------------------------------------===//

std::string readFileBytes(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

/// The checked-in fixture pins the byte encoding: the encoder must still
/// produce it, the reader must still decode it, and decode + re-encode must
/// reproduce it byte for byte (canonical varints make this well-defined).
/// If an intentional format change breaks this, bump the version and
/// regenerate the fixture — that is the point of the test.
TEST(ProfDataGolden, FixtureIsByteStable) {
  std::string Path = std::string(OLPP_TEST_DATA_DIR) + "/tiny.olpp";
  std::string Fixture = readFileBytes(Path);
  ASSERT_FALSE(Fixture.empty()) << "missing fixture " << Path;
  ProfileArtifact A = tinyArtifact();
  EXPECT_EQ(serializeProfileArtifact(A), Fixture)
      << "encoder no longer reproduces the v1 fixture";
  ProfileArtifact Back;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(readProfileArtifactBytes(Fixture, Back, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(A, Back, &FirstDiff)) << FirstDiff;
  EXPECT_EQ(serializeProfileArtifact(Back), Fixture)
      << "decode + re-encode is not the identity on the fixture";
}

//===----------------------------------------------------------------------===//
// Concurrency (selected into the tsan lane)
//===----------------------------------------------------------------------===//

TEST(ProfDataConcurrency, ParallelSerializeReadMergeAndFingerprint) {
  CompileResult CR = compileMiniC("fn main(a, b) {\n"
                                  "  var v = a;\n"
                                  "  while (v > 0) {\n"
                                  "    v = v - 1;\n"
                                  "  }\n"
                                  "  return v + b;\n"
                                  "}\n");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  const ProfileArtifact Shared = tinyArtifact();
  uint64_t Want = moduleProfileFingerprint(*CR.M);

  std::vector<std::thread> Threads;
  std::vector<int> Ok(8, 0);
  for (int T = 0; T < 8; ++T) {
    Threads.emplace_back([&, T] {
      // Shared const artifact + shared module: serialize, decode, merge and
      // fingerprint from every thread at once.
      std::string Bytes = serializeProfileArtifact(Shared);
      ProfileArtifact Back;
      std::vector<Diagnostic> Diags;
      if (!readProfileArtifactBytes(Bytes, Back, Diags))
        return;
      ProfileArtifact Acc = makeEmptyLike(Shared);
      std::vector<Diagnostic> MD;
      if (!mergeArtifacts(Acc, Back, MD) || !mergeArtifacts(Acc, Shared, MD))
        return;
      if (moduleProfileFingerprint(*CR.M) != Want)
        return;
      Ok[static_cast<size_t>(T)] = 1;
    });
  }
  for (std::thread &Th : Threads)
    Th.join();
  for (int T = 0; T < 8; ++T)
    EXPECT_EQ(Ok[static_cast<size_t>(T)], 1) << "thread " << T;
}

} // namespace
