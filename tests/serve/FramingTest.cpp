//===--- FramingTest.cpp - serve frame protocol robustness ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The length-prefixed frame decoder (support/Framing.h) under hostile
// transport behavior: every strict prefix of a frame is "need more" and
// flagged mid-frame, byte-at-a-time delivery reassembles losslessly, a
// hostile declared length is rejected at header completion before any
// payload allocation, and CRC violations poison the reader permanently.
//
//===----------------------------------------------------------------------===//

#include "support/Framing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

using namespace olpp;

namespace {

std::string bigPayload(size_t N) {
  std::string P;
  P.reserve(N);
  for (size_t I = 0; I < N; ++I)
    P.push_back(static_cast<char>((I * 131 + 7) & 0xFF));
  return P;
}

/// A raw 13-byte header with an arbitrary declared length (and an
/// arbitrary CRC — length validation happens before the payload exists).
std::string rawHeader(FrameType T, uint32_t Crc, uint64_t Len) {
  std::string H;
  H.push_back(static_cast<char>(T));
  for (int I = 0; I < 4; ++I)
    H.push_back(static_cast<char>((Crc >> (8 * I)) & 0xFF));
  for (int I = 0; I < 8; ++I)
    H.push_back(static_cast<char>((Len >> (8 * I)) & 0xFF));
  return H;
}

TEST(ServeFramingTest, RoundTripsPayloadsOfEverySmallSize) {
  for (size_t N : {size_t(0), size_t(1), size_t(12), size_t(13), size_t(255),
                   size_t(4096)}) {
    const std::string P = bigPayload(N);
    FrameReader R;
    R.feed(encodeFrame(FrameType::Upload, P));
    Frame F;
    ASSERT_EQ(R.next(F), FrameStatus::Frame) << "payload size " << N;
    EXPECT_EQ(F.Type, FrameType::Upload);
    EXPECT_EQ(F.Payload, P);
    EXPECT_EQ(R.next(F), FrameStatus::NeedMore);
    EXPECT_FALSE(R.midFrame());
    EXPECT_FALSE(R.poisoned());
  }
}

TEST(ServeFramingTest, DecodesBackToBackFramesFromOneFeed) {
  std::string Stream = encodeFrame(FrameType::Upload, "first") +
                       encodeFrame(FrameType::Stats, "") +
                       encodeFrame(FrameType::Snapshot, "12345678");
  FrameReader R;
  R.feed(Stream);
  Frame F;
  ASSERT_EQ(R.next(F), FrameStatus::Frame);
  EXPECT_EQ(F.Type, FrameType::Upload);
  EXPECT_EQ(F.Payload, "first");
  ASSERT_EQ(R.next(F), FrameStatus::Frame);
  EXPECT_EQ(F.Type, FrameType::Stats);
  EXPECT_TRUE(F.Payload.empty());
  ASSERT_EQ(R.next(F), FrameStatus::Frame);
  EXPECT_EQ(F.Type, FrameType::Snapshot);
  EXPECT_EQ(F.Payload, "12345678");
  EXPECT_EQ(R.next(F), FrameStatus::NeedMore);
}

// Every strict prefix of a valid frame — cut inside the header or inside
// the payload — must yield NeedMore (never Frame, never Error), leave the
// reader unpoisoned, and flag the connection as mid-frame so a client that
// disconnects there is detected. This is the transport half of the "a
// truncated upload can never move a counter" guarantee.
TEST(ServeFramingTest, EveryStrictPrefixIsNeedMoreAndMidFrame) {
  const std::string Full = encodeFrame(FrameType::Upload, bigPayload(97));
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    FrameReader R;
    R.feed(std::string_view(Full).substr(0, Cut));
    Frame F;
    ASSERT_EQ(R.next(F), FrameStatus::NeedMore) << "cut at " << Cut;
    EXPECT_FALSE(R.poisoned()) << "cut at " << Cut;
    EXPECT_EQ(R.midFrame(), Cut > 0) << "cut at " << Cut;
    // The rest completes the frame: truncation is recoverable, not fatal.
    R.feed(std::string_view(Full).substr(Cut));
    ASSERT_EQ(R.next(F), FrameStatus::Frame) << "cut at " << Cut;
    EXPECT_EQ(F.Payload.size(), size_t(97));
    EXPECT_FALSE(R.midFrame());
  }
}

TEST(ServeFramingTest, ByteAtATimeDeliveryReassemblesLosslessly) {
  const std::string P = bigPayload(64);
  const std::string Full = encodeFrame(FrameType::Upload, P);
  FrameReader R;
  Frame F;
  for (size_t I = 0; I + 1 < Full.size(); ++I) {
    R.feed(std::string_view(&Full[I], 1));
    ASSERT_EQ(R.next(F), FrameStatus::NeedMore) << "after byte " << I;
    EXPECT_TRUE(R.midFrame());
  }
  R.feed(std::string_view(&Full[Full.size() - 1], 1));
  ASSERT_EQ(R.next(F), FrameStatus::Frame);
  EXPECT_EQ(F.Payload, P);
}

// A header declaring an absurd payload length must be rejected the moment
// the 13th byte arrives — as a framing error, not as an attempted
// allocation. If the reader tried to reserve 2^60 bytes this test would
// die with bad_alloc instead of seeing FrameStatus::Error.
TEST(ServeFramingTest, HostileDeclaredLengthRejectedBeforeAllocation) {
  for (uint64_t Len : {DefaultMaxFramePayload + 1, uint64_t(1) << 40,
                       uint64_t(1) << 60, ~uint64_t(0)}) {
    FrameReader R;
    R.feed(rawHeader(FrameType::Upload, 0, Len));
    Frame F;
    ASSERT_EQ(R.next(F), FrameStatus::Error) << "declared length " << Len;
    EXPECT_TRUE(R.poisoned());
    EXPECT_FALSE(R.error().empty());
    EXPECT_FALSE(R.midFrame()) << "poisoned reader is not 'mid-frame'";
  }
}

// The cap is configurable per reader and inclusive: a payload exactly at
// the cap passes, one byte over fails.
TEST(ServeFramingTest, ConfiguredPayloadCapIsInclusive) {
  const uint64_t Cap = 1024;
  {
    FrameReader R(Cap);
    R.feed(encodeFrame(FrameType::Upload, bigPayload(Cap)));
    Frame F;
    EXPECT_EQ(R.next(F), FrameStatus::Frame);
  }
  {
    FrameReader R(Cap);
    R.feed(encodeFrame(FrameType::Upload, bigPayload(Cap + 1)));
    Frame F;
    EXPECT_EQ(R.next(F), FrameStatus::Error);
    EXPECT_TRUE(R.poisoned());
  }
}

TEST(ServeFramingTest, CrcMismatchPoisonsPermanently) {
  std::string Full = encodeFrame(FrameType::Upload, "payload bytes");
  Full[2] = static_cast<char>(Full[2] ^ 0x01); // flip one CRC bit
  FrameReader R;
  R.feed(Full);
  Frame F;
  ASSERT_EQ(R.next(F), FrameStatus::Error);
  EXPECT_TRUE(R.poisoned());
  EXPECT_FALSE(R.error().empty());
  // Sticky: a perfectly valid follow-up frame is ignored, feed() is a
  // no-op, and next() keeps reporting Error. No resynchronization.
  const size_t Buffered = R.buffered();
  R.feed(encodeFrame(FrameType::Stats, ""));
  EXPECT_EQ(R.buffered(), Buffered);
  EXPECT_EQ(R.next(F), FrameStatus::Error);
}

TEST(ServeFramingTest, PayloadCorruptionIsCaughtByTheCrc) {
  const std::string P = bigPayload(50);
  for (size_t Byte : {size_t(0), size_t(25), size_t(49)}) {
    std::string Full = encodeFrame(FrameType::Upload, P);
    Full[FrameHeaderSize + Byte] =
        static_cast<char>(Full[FrameHeaderSize + Byte] ^ 0x80);
    FrameReader R;
    R.feed(Full);
    Frame F;
    EXPECT_EQ(R.next(F), FrameStatus::Error) << "corrupt byte " << Byte;
    EXPECT_TRUE(R.poisoned());
  }
}

TEST(ServeFramingTest, ValidFrameThenPartialLeavesReaderMidFrame) {
  const std::string Second = encodeFrame(FrameType::Upload, bigPayload(40));
  FrameReader R;
  R.feed(encodeFrame(FrameType::Upload, "complete"));
  R.feed(std::string_view(Second).substr(0, Second.size() / 2));
  Frame F;
  ASSERT_EQ(R.next(F), FrameStatus::Frame);
  EXPECT_EQ(F.Payload, "complete");
  EXPECT_EQ(R.next(F), FrameStatus::NeedMore);
  EXPECT_TRUE(R.midFrame());
  EXPECT_FALSE(R.poisoned());
}

} // namespace
