//===--- ServeTest.cpp - shard store, session state machine, concurrency --===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The aggregation daemon's core contracts, proven against the exact code
// path production traffic takes (ServeSession::consume over raw bytes):
//
//   (a) store: a snapshot is bit-identical to the offline mergeArtifacts
//       fold of exactly the uploads acked with tag <= its epoch; malformed
//       and incompatible uploads never move a counter,
//   (b) session: acks carry (seq, tag, fingerprint); one bad artifact does
//       not kill the connection, but any framing violation does; a client
//       that dies mid-upload leaves the store byte-for-byte untouched,
//   (c) concurrency: uploads and snapshots racing across threads keep the
//       epoch-exactness contract (run under the tsan lane via the
//       ServeConcurrency* filter in tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "serve/Protocol.h"
#include "serve/Session.h"
#include "serve/ShardStore.h"
#include "support/Framing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace olpp;
using namespace olpp::serve;

namespace {

//===----------------------------------------------------------------------===//
// Builders and decoders
//===----------------------------------------------------------------------===//

/// One-function artifact with counters derived from \p Seed. Runs = 1, so
/// a merged accumulator's Meta.Runs counts the uploads it contains — the
/// lever the concurrency test uses to check epoch exactness.
ProfileArtifact testArtifact(uint64_t Fp, uint64_t Seed) {
  ProfileArtifact A;
  A.Fingerprint = Fp;
  A.NumFunctions = 1;
  A.Meta.Workload = "serve-test";
  A.Meta.Runs = 1;
  A.Meta.DynInstrCost = 100 + Seed;
  A.IdSpaces = {8};
  A.Counters.PathCounts.resize(1);
  A.Counters.configurePathStore(0, 8);
  A.Counters.PathCounts[0].add(Seed % 8, 1 + Seed);
  A.Counters.PathCounts[0].add((Seed + 3) % 8, 7);
  A.Counters.TypeICounts.bump({0, 0, 0, static_cast<uint32_t>(Seed % 4)}, 2);
  return A;
}

/// Serialized offline fold of \p Parts (weight 1 each) — the reference a
/// snapshot must match bit-for-bit.
std::string offlineFold(const std::vector<ProfileArtifact> &Parts) {
  ProfileArtifact Acc = makeEmptyLike(Parts.front());
  for (const ProfileArtifact &P : Parts) {
    std::vector<Diagnostic> Diags;
    EXPECT_TRUE(mergeArtifacts(Acc, P, Diags));
  }
  return serializeProfileArtifact(Acc);
}

/// Decodes every complete reply frame out of \p Bytes.
std::vector<Frame> decodeReplies(const std::string &Bytes) {
  std::vector<Frame> Out;
  FrameReader R;
  R.feed(Bytes);
  Frame F;
  while (R.next(F) == FrameStatus::Frame)
    Out.push_back(F);
  EXPECT_FALSE(R.poisoned()) << "reply stream itself misframed";
  EXPECT_FALSE(R.midFrame()) << "reply stream ends mid-frame";
  return Out;
}

AckInfo expectAck(const Frame &F) {
  AckInfo A;
  EXPECT_EQ(F.Type, FrameType::Ack);
  EXPECT_TRUE(decodeAckPayload(F.Payload, A));
  return A;
}

void expectErr(const Frame &F, ErrCode Want) {
  ASSERT_EQ(F.Type, FrameType::Err);
  ErrCode Code;
  std::string Msg;
  ASSERT_TRUE(decodeErrPayload(F.Payload, Code, Msg));
  EXPECT_EQ(uint32_t(Code), uint32_t(Want)) << Msg;
  EXPECT_FALSE(Msg.empty());
}

//===----------------------------------------------------------------------===//
// ShardStore
//===----------------------------------------------------------------------===//

TEST(ServeStoreTest, SnapshotMatchesOfflineMergeBitIdentically) {
  ShardStore Store(ServeConfig{});
  std::vector<ProfileArtifact> Parts;
  for (uint64_t S = 0; S < 5; ++S) {
    Parts.push_back(testArtifact(0x1234, S));
    const UploadResult R = Store.upload(serializeProfileArtifact(Parts.back()));
    ASSERT_EQ(uint32_t(R.Status), uint32_t(UploadStatus::Ok)) << R.Error;
    EXPECT_EQ(R.Fingerprint, 0x1234u);
  }
  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E, Fp, Bytes, Error)) << Error;
  EXPECT_EQ(Fp, 0x1234u);
  EXPECT_EQ(Bytes, offlineFold(Parts));
  EXPECT_EQ(Store.stats().UploadsAcked.load(), 5u);
  EXPECT_EQ(Store.stats().UploadsRejected.load(), 0u);
}

TEST(ServeStoreTest, EpochTagsBoundSnapshotContainmentExactly) {
  ShardStore Store(ServeConfig{});
  const ProfileArtifact A = testArtifact(7, 1), B = testArtifact(7, 2);

  const UploadResult RA = Store.upload(serializeProfileArtifact(A));
  ASSERT_EQ(uint32_t(RA.Status), uint32_t(UploadStatus::Ok));

  uint64_t E1 = 0, Fp = 0;
  std::string S1, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E1, Fp, S1, Error)) << Error;
  EXPECT_GE(E1, RA.Tag) << "acked upload must be contained";
  EXPECT_EQ(S1, offlineFold({A}));

  // A fold after snapshot E1 must carry a strictly later tag and stay out
  // of E1 — and be contained in the next snapshot.
  const UploadResult RB = Store.upload(serializeProfileArtifact(B));
  ASSERT_EQ(uint32_t(RB.Status), uint32_t(UploadStatus::Ok));
  EXPECT_GT(RB.Tag, E1);

  uint64_t E2 = 0;
  std::string S2;
  ASSERT_TRUE(Store.snapshot(false, 0, E2, Fp, S2, Error)) << Error;
  EXPECT_GE(E2, RB.Tag);
  EXPECT_GT(E2, E1) << "snapshot ids are strictly increasing";
  EXPECT_EQ(S2, offlineFold({A, B}));
}

TEST(ServeStoreTest, MalformedUploadsNeverTouchState) {
  ShardStore Store(ServeConfig{});
  const std::string Good = serializeProfileArtifact(testArtifact(9, 0));
  // A flipped byte anywhere, and every strict-prefix truncation: all must
  // be rejected wholesale with zero state change (spot positions keep the
  // test fast; ProfDataTest covers the exhaustive sweep of the reader).
  for (size_t Pos : {size_t(0), Good.size() / 3, Good.size() / 2,
                     Good.size() - 1}) {
    std::string Bad = Good;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x10);
    const UploadResult R = Store.upload(Bad);
    EXPECT_EQ(uint32_t(R.Status), uint32_t(UploadStatus::Malformed))
        << "flipped byte " << Pos;
    EXPECT_FALSE(R.Error.empty());
  }
  for (size_t Cut : {size_t(0), size_t(4), Good.size() / 2, Good.size() - 1}) {
    const UploadResult R =
        Store.upload(std::string_view(Good).substr(0, Cut));
    EXPECT_EQ(uint32_t(R.Status), uint32_t(UploadStatus::Malformed))
        << "truncated at " << Cut;
  }
  EXPECT_TRUE(Store.fingerprints().empty());
  EXPECT_EQ(Store.stats().UploadsAcked.load(), 0u);
  EXPECT_EQ(Store.stats().UploadsRejected.load(), 8u);
  EXPECT_EQ(Store.stats().BytesIngested.load(), 0u);
}

TEST(ServeStoreTest, IncompatibleUploadLeavesAccumulatorUntouched) {
  ShardStore Store(ServeConfig{});
  const ProfileArtifact Good = testArtifact(5, 1);
  ASSERT_EQ(uint32_t(Store.upload(serializeProfileArtifact(Good)).Status),
            uint32_t(UploadStatus::Ok));

  // Same fingerprint, different function count: a valid artifact that
  // cannot merge with the resident entry.
  ProfileArtifact Clash = testArtifact(5, 2);
  Clash.NumFunctions = 2;
  Clash.IdSpaces = {8, 4};
  Clash.Counters.PathCounts.resize(2);
  const UploadResult R = Store.upload(serializeProfileArtifact(Clash));
  EXPECT_EQ(uint32_t(R.Status), uint32_t(UploadStatus::Incompatible));
  EXPECT_FALSE(R.Error.empty());

  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E, Fp, Bytes, Error)) << Error;
  EXPECT_EQ(Bytes, offlineFold({Good}))
      << "rejected upload moved a counter";
  EXPECT_EQ(Store.stats().UploadsRejected.load(), 1u);
}

TEST(ServeStoreTest, MultiFingerprintStoreNeedsASelector) {
  ShardStore Store(ServeConfig{});
  const ProfileArtifact A = testArtifact(100, 1), B = testArtifact(200, 2);
  ASSERT_EQ(uint32_t(Store.upload(serializeProfileArtifact(A)).Status),
            uint32_t(UploadStatus::Ok));
  ASSERT_EQ(uint32_t(Store.upload(serializeProfileArtifact(B)).Status),
            uint32_t(UploadStatus::Ok));
  EXPECT_EQ(Store.fingerprints(), (std::vector<uint64_t>{100, 200}));

  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  EXPECT_FALSE(Store.snapshot(false, 0, E, Fp, Bytes, Error));
  EXPECT_FALSE(Error.empty());
  ASSERT_TRUE(Store.snapshot(true, 200, E, Fp, Bytes, Error)) << Error;
  EXPECT_EQ(Fp, 200u);
  EXPECT_EQ(Bytes, offlineFold({B}));
  EXPECT_FALSE(Store.snapshot(true, 999, E, Fp, Bytes, Error));
}

TEST(ServeStoreTest, EmptyStoreHasNoSnapshot) {
  ShardStore Store(ServeConfig{});
  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  EXPECT_FALSE(Store.snapshot(false, 0, E, Fp, Bytes, Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// ServeSession
//===----------------------------------------------------------------------===//

TEST(ServeSessionTest, AcksCarrySeqTagAndFingerprint) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  const ProfileArtifact A = testArtifact(0xBEEF, 1), B = testArtifact(0xBEEF, 2);

  std::string Reply;
  ASSERT_TRUE(S.consume(
      encodeFrame(FrameType::Upload, serializeProfileArtifact(A)) +
          encodeFrame(FrameType::Upload, serializeProfileArtifact(B)),
      Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 2u);
  const AckInfo A0 = expectAck(Replies[0]), A1 = expectAck(Replies[1]);
  EXPECT_EQ(A0.Seq, 0u);
  EXPECT_EQ(A1.Seq, 1u);
  EXPECT_EQ(A0.Fingerprint, 0xBEEFu);
  EXPECT_EQ(A1.Fingerprint, 0xBEEFu);
  EXPECT_EQ(S.uploadsAcked(), 2u);

  // Snapshot through the protocol: epoch covers both tags, artifact is the
  // offline fold.
  Reply.clear();
  ASSERT_TRUE(S.consume(encodeFrame(FrameType::Snapshot, ""), Reply));
  Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  ASSERT_EQ(Replies[0].Type, FrameType::SnapshotData);
  SnapshotInfo Snap;
  ASSERT_TRUE(decodeSnapshotPayload(Replies[0].Payload, Snap));
  EXPECT_GE(Snap.Epoch, A0.Tag);
  EXPECT_GE(Snap.Epoch, A1.Tag);
  EXPECT_EQ(Snap.Fingerprint, 0xBEEFu);
  EXPECT_EQ(Snap.Artifact, offlineFold({A, B}));

  // Stats is a JSON document; Quit closes in order.
  Reply.clear();
  ASSERT_TRUE(S.consume(encodeFrame(FrameType::Stats, ""), Reply));
  Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  EXPECT_EQ(Replies[0].Type, FrameType::StatsData);
  EXPECT_NE(Replies[0].Payload.find("\"uploads_acked\": 2"), std::string::npos);
  Reply.clear();
  EXPECT_FALSE(S.consume(encodeFrame(FrameType::Quit, ""), Reply));
  EXPECT_TRUE(Reply.empty());
}

TEST(ServeSessionTest, BadArtifactKeepsTheConnectionAlive) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  const ProfileArtifact Good = testArtifact(3, 1);
  std::string Bad = serializeProfileArtifact(Good);
  Bad[Bad.size() / 2] = static_cast<char>(Bad[Bad.size() / 2] ^ 0x40);

  // The frame is valid; only the payload is rotten. Session survives with
  // a structured error, and the next (good) upload still gets seq 0.
  std::string Reply;
  ASSERT_TRUE(S.consume(encodeFrame(FrameType::Upload, Bad), Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::BadArtifact);
  EXPECT_TRUE(Store.fingerprints().empty());

  Reply.clear();
  ASSERT_TRUE(S.consume(
      encodeFrame(FrameType::Upload, serializeProfileArtifact(Good)), Reply));
  Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  EXPECT_EQ(expectAck(Replies[0]).Seq, 0u)
      << "rejected uploads must not consume sequence numbers";
}

TEST(ServeSessionTest, FramingViolationClosesWithBadFrameErr) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  std::string F =
      encodeFrame(FrameType::Upload,
                  serializeProfileArtifact(testArtifact(3, 1)));
  F[1] = static_cast<char>(F[1] ^ 0x01); // corrupt the frame CRC
  std::string Reply;
  EXPECT_FALSE(S.consume(F, Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::BadFrame);
  EXPECT_TRUE(Store.fingerprints().empty());
  EXPECT_EQ(Store.stats().FramingErrors.load(), 1u);
}

TEST(ServeSessionTest, HostileDeclaredLengthClosesAsRejectionNotBadAlloc) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  std::string Hdr;
  Hdr.push_back(static_cast<char>(FrameType::Upload));
  putU32LE(Hdr, 0);
  putU64LE(Hdr, uint64_t(1) << 60);
  std::string Reply;
  EXPECT_FALSE(S.consume(Hdr, Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::BadFrame);
  EXPECT_TRUE(Store.fingerprints().empty());
}

TEST(ServeSessionTest, UnknownFrameTypeCloses) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  std::string Reply;
  EXPECT_FALSE(S.consume(encodeFrame(static_cast<FrameType>(0x7F), ""), Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::BadType);
}

TEST(ServeSessionTest, SnapshotSelectorIsValidated) {
  ShardStore Store(ServeConfig{});
  ServeSession S(Store);
  ASSERT_EQ(uint32_t(Store
                         .upload(serializeProfileArtifact(
                             testArtifact(0xAA, 1)))
                         .Status),
            uint32_t(UploadStatus::Ok));
  // 3-byte selector: protocol error, but the connection survives.
  std::string Reply;
  ASSERT_TRUE(S.consume(encodeFrame(FrameType::Snapshot, "abc"), Reply));
  std::vector<Frame> Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::BadType);
  // Unknown fingerprint: NoData, connection survives.
  std::string Sel;
  putU64LE(Sel, 0xDEAD);
  Reply.clear();
  ASSERT_TRUE(S.consume(encodeFrame(FrameType::Snapshot, Sel), Reply));
  Replies = decodeReplies(Reply);
  ASSERT_EQ(Replies.size(), 1u);
  expectErr(Replies[0], ErrCode::NoData);
}

// A client that disconnects mid-upload: the half-delivered frame is
// detected as mid-frame, produces no reply, and — the property the whole
// subsystem leans on — leaves the store byte-for-byte untouched.
TEST(ServeSessionTest, MidUploadDisconnectLeavesStoreUntouched) {
  ShardStore Store(ServeConfig{});
  const ProfileArtifact A = testArtifact(0x77, 1);
  const std::string Full =
      encodeFrame(FrameType::Upload, serializeProfileArtifact(A));
  {
    ServeSession Dying(Store);
    std::string Reply;
    ASSERT_TRUE(Dying.consume(
        std::string_view(Full).substr(0, Full.size() / 2), Reply));
    EXPECT_TRUE(Dying.midFrame());
    EXPECT_TRUE(Reply.empty());
    EXPECT_EQ(Dying.uploadsAcked(), 0u);
  } // connection dropped here
  EXPECT_TRUE(Store.fingerprints().empty());
  EXPECT_EQ(Store.stats().UploadsAcked.load(), 0u);
  EXPECT_EQ(Store.stats().BytesIngested.load(), 0u);

  // A fresh connection delivering the same frame whole folds exactly once.
  ServeSession S(Store);
  std::string Reply;
  ASSERT_TRUE(S.consume(Full, Reply));
  ASSERT_EQ(decodeReplies(Reply).size(), 1u);
  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E, Fp, Bytes, Error)) << Error;
  EXPECT_EQ(Bytes, offlineFold({A}));
}

// Two connections delivering their uploads in interleaved 7-byte slices:
// each session reassembles only its own stream, both uploads ack, and the
// snapshot equals the offline fold of both.
TEST(ServeSessionTest, InterleavedPartialWritesAcrossConnections) {
  ShardStore Store(ServeConfig{});
  const ProfileArtifact A = testArtifact(0x55, 1), B = testArtifact(0x55, 9);
  const std::string FA =
      encodeFrame(FrameType::Upload, serializeProfileArtifact(A));
  const std::string FB =
      encodeFrame(FrameType::Upload, serializeProfileArtifact(B));
  ServeSession SA(Store), SB(Store);
  std::string RA, RB;
  size_t PA = 0, PB = 0;
  const size_t Chunk = 7;
  while (PA < FA.size() || PB < FB.size()) {
    if (PA < FA.size()) {
      ASSERT_TRUE(SA.consume(
          std::string_view(FA).substr(PA, Chunk), RA));
      PA += Chunk;
    }
    if (PB < FB.size()) {
      ASSERT_TRUE(SB.consume(
          std::string_view(FB).substr(PB, Chunk), RB));
      PB += Chunk;
    }
  }
  EXPECT_EQ(expectAck(decodeReplies(RA).at(0)).Seq, 0u);
  EXPECT_EQ(expectAck(decodeReplies(RB).at(0)).Seq, 0u);
  EXPECT_FALSE(SA.midFrame());
  EXPECT_FALSE(SB.midFrame());

  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E, Fp, Bytes, Error)) << Error;
  EXPECT_EQ(Bytes, offlineFold({A, B}));
}

//===----------------------------------------------------------------------===//
// Concurrency (selected into the tsan lane by ServeConcurrency*)
//===----------------------------------------------------------------------===//

// Uploads and snapshots racing across threads. Every upload is the same
// Runs=1 artifact, so a snapshot's Meta.Runs IS the number of uploads it
// contains — and the epoch-exactness contract pins that number to the
// count of acks with tag <= the snapshot's epoch, for every snapshot
// taken mid-race, not just the final one.
TEST(ServeConcurrencyTest, RacingUploadsAndSnapshotsKeepEpochExactness) {
  ServeConfig Cfg;
  Cfg.Shards = 4; // force fingerprint collisions onto shared shards
  ShardStore Store(Cfg);
  const ProfileArtifact A = testArtifact(0xF00D, 2);
  const std::string UploadFrame =
      encodeFrame(FrameType::Upload, serializeProfileArtifact(A));

  constexpr unsigned Uploaders = 4, PerThread = 16, Snapshots = 12;
  std::vector<std::vector<uint64_t>> AckTags(Uploaders);
  std::vector<std::pair<uint64_t, std::string>> Snaps;
  std::atomic<bool> Done{false};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Uploaders; ++T)
    Threads.emplace_back([&, T] {
      ServeSession S(Store);
      for (unsigned I = 0; I < PerThread; ++I) {
        std::string Reply;
        ASSERT_TRUE(S.consume(UploadFrame, Reply));
        std::vector<Frame> Replies = decodeReplies(Reply);
        ASSERT_EQ(Replies.size(), 1u);
        AckTags[T].push_back(expectAck(Replies[0]).Tag);
      }
    });
  std::thread Snapper([&] {
    while (!Done.load(std::memory_order_relaxed)) {
      uint64_t E = 0, Fp = 0;
      std::string Bytes, Error;
      if (Store.snapshot(false, 0, E, Fp, Bytes, Error) &&
          Snaps.size() < Snapshots)
        Snaps.emplace_back(E, Bytes);
      std::this_thread::yield();
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Done.store(true, std::memory_order_relaxed);
  Snapper.join();

  // Final snapshot (no races left) contains every acked upload.
  uint64_t E = 0, Fp = 0;
  std::string Bytes, Error;
  ASSERT_TRUE(Store.snapshot(false, 0, E, Fp, Bytes, Error)) << Error;
  std::vector<ProfileArtifact> All(Uploaders * PerThread, A);
  EXPECT_EQ(Bytes, offlineFold(All));
  EXPECT_EQ(Store.stats().UploadsAcked.load(), uint64_t(Uploaders) * PerThread);
  EXPECT_EQ(Store.stats().UploadsRejected.load(), 0u);

  // Every mid-race snapshot: parse it back and check containment is exact.
  for (const auto &[SnapE, SnapBytes] : Snaps) {
    ProfileArtifact Parsed;
    std::vector<Diagnostic> Diags;
    ASSERT_TRUE(readProfileArtifactBytes(SnapBytes, Parsed, Diags))
        << "snapshot taken mid-ingest is not a valid artifact";
    uint64_t Contained = 0;
    for (const auto &Tags : AckTags)
      for (uint64_t Tag : Tags)
        Contained += Tag <= SnapE ? 1 : 0;
    EXPECT_EQ(Parsed.Meta.Runs, Contained)
        << "snapshot " << SnapE << " does not equal the acked set";
  }
}

} // namespace
