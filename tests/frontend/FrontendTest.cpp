//===--- FrontendTest.cpp - lexer/parser/sema/lowering tests -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

std::vector<TokKind> lexAll(std::string_view Src) {
  Lexer L(Src);
  std::vector<TokKind> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T.Kind);
    if (T.Kind == TokKind::Eof || T.Kind == TokKind::Error)
      break;
  }
  return Out;
}

int64_t runMain(const Module &M, std::vector<int64_t> Args = {}) {
  const Function *Main = M.findFunction("main");
  EXPECT_NE(Main, nullptr);
  Args.resize(Main->NumParams, 0);
  Interpreter I(M);
  RunResult R = I.run(*Main, Args);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.ReturnValue;
}

} // namespace

// --- lexer -----------------------------------------------------------------

TEST(Lexer, KeywordsAndOperators) {
  auto Toks = lexAll("fn while <= >> && != =");
  std::vector<TokKind> Want = {TokKind::KwFn, TokKind::KwWhile, TokKind::Le,
                               TokKind::Shr,  TokKind::AmpAmp,  TokKind::NotEq,
                               TokKind::Assign, TokKind::Eof};
  EXPECT_EQ(Toks, Want);
}

TEST(Lexer, NumbersAndIdentifiers) {
  Lexer L("foo 123 _bar9");
  Token A = L.next();
  EXPECT_EQ(A.Kind, TokKind::Ident);
  EXPECT_EQ(A.Text, "foo");
  Token B = L.next();
  EXPECT_EQ(B.Kind, TokKind::Number);
  EXPECT_EQ(B.Value, 123);
  Token C = L.next();
  EXPECT_EQ(C.Kind, TokKind::Ident);
  EXPECT_EQ(C.Text, "_bar9");
}

TEST(Lexer, Comments) {
  auto Toks = lexAll("1 // line\n 2 /* block\n over lines */ 3");
  EXPECT_EQ(Toks, (std::vector<TokKind>{TokKind::Number, TokKind::Number,
                                        TokKind::Number, TokKind::Eof}));
}

TEST(Lexer, UnterminatedBlockComment) {
  auto Toks = lexAll("1 /* never closed");
  EXPECT_EQ(Toks.back(), TokKind::Error);
}

TEST(Lexer, OverflowingLiteral) {
  Lexer L("999999999999999999999999999");
  EXPECT_EQ(L.next().Kind, TokKind::Error);
}

TEST(Lexer, LineColumnTracking) {
  Lexer L("a\n  b");
  Token A = L.next();
  EXPECT_EQ(A.Line, 1u);
  EXPECT_EQ(A.Col, 1u);
  Token B = L.next();
  EXPECT_EQ(B.Line, 2u);
  EXPECT_EQ(B.Col, 3u);
}

// --- parser ----------------------------------------------------------------

TEST(Parser, Precedence) {
  // 1 + 2 * 3 must parse as 1 + (2 * 3); verified by evaluation.
  auto M = testutil::compileOrDie("fn main() { return 1 + 2 * 3; }");
  EXPECT_EQ(runMain(*M), 7);
}

TEST(Parser, ErrorRecovery) {
  Parser P("fn main() { var = 3; return 1; } fn ok() { return 2; }");
  Program Prog = P.parseProgram();
  EXPECT_FALSE(P.diags().empty());
  // The parser must still have recovered and seen the second function.
  bool SawOk = false;
  for (const FuncDecl &F : Prog.Funcs)
    SawOk |= F.Name == "ok";
  EXPECT_TRUE(SawOk);
}

TEST(Parser, MissingSemicolonDiagnosed) {
  Parser P("fn main() { return 1 }");
  P.parseProgram();
  EXPECT_FALSE(P.diags().empty());
}

TEST(Parser, ElseIfChains) {
  auto M = testutil::compileOrDie(R"(
    fn main(a) {
      if (a == 0) { return 10; }
      else if (a == 1) { return 20; }
      else { return 30; }
    })");
  EXPECT_EQ(runMain(*M, {0}), 10);
  EXPECT_EQ(runMain(*M, {1}), 20);
  EXPECT_EQ(runMain(*M, {5}), 30);
}

// --- sema ------------------------------------------------------------------

static std::vector<Diag> semaDiags(std::string_view Src) {
  Parser P(Src);
  Program Prog = P.parseProgram();
  EXPECT_TRUE(P.diags().empty());
  return checkProgram(Prog);
}

TEST(Sema, UndeclaredVariable) {
  auto D = semaDiags("fn main() { return nope; }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("undeclared variable"), std::string::npos);
}

TEST(Sema, UndeclaredFunction) {
  auto D = semaDiags("fn main() { return nope(); }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("undeclared function"), std::string::npos);
}

TEST(Sema, ArityMismatch) {
  auto D = semaDiags("fn f(a, b) { return a; } fn main() { return f(1); }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("expects 2 arguments"), std::string::npos);
}

TEST(Sema, BreakOutsideLoop) {
  auto D = semaDiags("fn main() { break; }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("'break' outside"), std::string::npos);
}

TEST(Sema, ArrayUsedAsScalar) {
  auto D = semaDiags("global a[4]; fn main() { return a; }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("without an index"), std::string::npos);
}

TEST(Sema, ScalarIndexed) {
  auto D = semaDiags("global g; fn main() { return g[0]; }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("not a global array"), std::string::npos);
}

TEST(Sema, ShadowingAllowedAcrossScopes) {
  auto D = semaDiags("fn main() { var x = 1; if (x) { var x = 2; } return x; }");
  EXPECT_TRUE(D.empty());
}

TEST(Sema, RedefinitionInSameScope) {
  auto D = semaDiags("fn main() { var x = 1; var x = 2; }");
  ASSERT_EQ(D.size(), 1u);
  EXPECT_NE(D[0].Message.find("redefinition"), std::string::npos);
}

TEST(Sema, DuplicateFunction) {
  auto D = semaDiags("fn f() {} fn f() {} fn main() {}");
  ASSERT_EQ(D.size(), 1u);
}

// --- lowering + execution ----------------------------------------------------

TEST(Lowering, VerifiesCleanly) {
  auto M = testutil::compileOrDie(R"(
    global g;
    global arr[10];
    fn helper(x) { return x * 2; }
    fn main(n) {
      var total = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { total = total + helper(i); }
        else { arr[i % 10] = total; }
      }
      while (total > 100) { total = total - 7; }
      return total;
    })");
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Lowering, Fibonacci) {
  auto M = testutil::compileOrDie(R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main(n) { return fib(n); })");
  EXPECT_EQ(runMain(*M, {10}), 55);
}

TEST(Lowering, ShortCircuitSemantics) {
  // The right operand of && must not run when the left is false: division
  // by zero would trap.
  auto M = testutil::compileOrDie(R"(
    fn main(a) {
      if (a != 0 && 10 / a > 1) { return 1; }
      return 0;
    })");
  EXPECT_EQ(runMain(*M, {0}), 0);
  EXPECT_EQ(runMain(*M, {3}), 1);
  EXPECT_EQ(runMain(*M, {20}), 0);
}

TEST(Lowering, BreakAndContinue) {
  auto M = testutil::compileOrDie(R"(
    fn main() {
      var sum = 0;
      for (var i = 0; i < 10; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 6) { break; }
        sum = sum + i;
      }
      return sum;  // 0+1+2+4+5 = 12
    })");
  EXPECT_EQ(runMain(*M), 12);
}

TEST(Lowering, DoWhileRunsBodyOnce) {
  auto M = testutil::compileOrDie(R"(
    fn main() {
      var n = 0;
      do { n = n + 1; } while (n < 0);
      return n;
    })");
  EXPECT_EQ(runMain(*M), 1);
}

TEST(Lowering, GlobalsPersistAcrossCalls) {
  auto M = testutil::compileOrDie(R"(
    global count;
    fn bump() { count = count + 1; return 0; }
    fn main() { bump(); bump(); bump(); return count; })");
  EXPECT_EQ(runMain(*M), 3);
}

TEST(Lowering, CallEndsItsBlock) {
  auto M = testutil::compileOrDie(
      "fn f() { return 1; } fn main() { return f() + f(); }");
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (size_t I = 0; I < BB->Instrs.size(); ++I)
        if (BB->Instrs[I].Op == Opcode::Call)
          EXPECT_TRUE(I + 1 < BB->Instrs.size() &&
                      isTerminator(BB->Instrs[I + 1].Op))
              << "call not followed by a terminator in " << F->Name;
}

TEST(Lowering, WhileLoopHasSingleLatch) {
  auto M = testutil::compileOrDie(R"(
    fn main(n) {
      var s = 0;
      while (s < n) {
        if (s % 2 == 0) { s = s + 1; continue; }
        s = s + 2;
      }
      return s;
    })");
  // Count backedge sources per header; continue must reuse the latch.
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_EQ(LI.loop(0).Latches.size(), 1u);
}
