//===--- FuzzTest.cpp - frontend robustness under garbage input ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The frontend must never crash: arbitrary input yields diagnostics or a
// verified module, nothing else. These tests throw token soup, truncated
// programs and deeply nested expressions at it.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

const char *Fragments[] = {
    "fn",      "global", "var",   "if",    "else",  "while", "do",
    "for",     "return", "break", "continue", "main",  "x",  "y",
    "(",       ")",      "{",     "}",     "[",     "]",     ";",
    ",",       "=",      "==",    "!=",    "<",     "<=",    ">",
    ">=",      "+",      "-",     "*",     "/",     "%",     "&",
    "|",       "^",      "&&",    "||",    "!",     "<<",    ">>",
    "0",       "1",      "42",    "9999999999", "_z", "fp",
};

std::string tokenSoup(uint64_t Seed, size_t Len) {
  Rng R(Seed);
  std::string Out;
  for (size_t I = 0; I < Len; ++I) {
    Out += Fragments[R.nextBelow(sizeof(Fragments) / sizeof(Fragments[0]))];
    Out += R.chance(1, 4) ? "\n" : " ";
  }
  return Out;
}

} // namespace

TEST(FrontendFuzz, TokenSoupNeverCrashes) {
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    std::string Source = tokenSoup(Seed, 120);
    CompileResult CR = compileMiniC(Source);
    // Either a verified module or diagnostics; both fine, no crash.
    if (!CR.ok())
      EXPECT_FALSE(CR.Diags.empty()) << "seed " << Seed;
  }
}

TEST(FrontendFuzz, TruncatedProgramsDiagnose) {
  const char *Program = R"(
    global acc;
    fn helper(a) { if (a > 3) { return a; } return acc + a; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + helper(i); }
      return s;
    })";
  std::string Full = Program;
  for (size_t Cut = 0; Cut < Full.size(); Cut += 7) {
    CompileResult CR = compileMiniC(Full.substr(0, Cut));
    if (!CR.ok())
      EXPECT_FALSE(CR.Diags.empty()) << "cut at " << Cut;
  }
}

TEST(FrontendFuzz, DeepExpressionNesting) {
  // 300 nested parens: must parse (or diagnose) without stack issues.
  std::string Source = "fn main() { return ";
  for (int I = 0; I < 300; ++I)
    Source += "(1 + ";
  Source += "0";
  for (int I = 0; I < 300; ++I)
    Source += ")";
  Source += "; }";
  CompileResult CR = compileMiniC(Source);
  EXPECT_TRUE(CR.ok()) << CR.diagText();
}

TEST(FrontendFuzz, DeepStatementNesting) {
  std::string Source = "fn main(n) { var s = 0; ";
  for (int I = 0; I < 150; ++I)
    Source += "if (n > " + std::to_string(I) + ") { ";
  Source += "s = 1; ";
  for (int I = 0; I < 150; ++I)
    Source += "} ";
  Source += "return s; }";
  CompileResult CR = compileMiniC(Source);
  EXPECT_TRUE(CR.ok()) << CR.diagText();
}

TEST(FrontendFuzz, ManyMutationsOfAValidProgram) {
  const std::string Base = R"(
    global buf[8];
    fn f(a, b) { while (a < b) { a = a + 1; buf[a & 7] = b; } return a; }
    fn main(n) { return f(0, n) + f(n, 9); })";
  Rng R(77);
  for (int Round = 0; Round < 80; ++Round) {
    std::string Mutant = Base;
    // Random single-character edits.
    for (int E = 0; E < 3; ++E) {
      size_t Pos = R.nextBelow(Mutant.size());
      switch (R.nextBelow(3)) {
      case 0:
        Mutant.erase(Pos, 1);
        break;
      case 1:
        Mutant.insert(Pos, 1, "(){};=+"[R.nextBelow(7)]);
        break;
      default:
        Mutant[Pos] = static_cast<char>(32 + R.nextBelow(95));
        break;
      }
    }
    CompileResult CR = compileMiniC(Mutant); // must not crash
    (void)CR;
  }
}
