//===--- PipelineTest.cpp - pipeline facade tests ------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

TEST(Pipeline, CompileErrorsPropagate) {
  PipelineResult R = runPipelineOnSource("fn main( { }", PipelineConfig());
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Errors.empty());
}

TEST(Pipeline, UnknownEntryReported) {
  PipelineConfig C;
  C.EntryName = "does_not_exist";
  PipelineResult R = runPipelineOnSource("fn main() { return 0; }", C);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("not found"), std::string::npos);
}

TEST(Pipeline, RuntimeErrorsPropagate) {
  PipelineConfig C;
  C.Args = {0};
  PipelineResult R =
      runPipelineOnSource("fn main(a) { return 1 / a; }", C);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("baseline run failed"), std::string::npos);
}

TEST(Pipeline, FuelExhaustionPropagates) {
  PipelineConfig C;
  C.Run.MaxSteps = 100;
  PipelineResult R =
      runPipelineOnSource("fn main() { while (1) { } return 0; }", C);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("fuel"), std::string::npos);
}

TEST(Pipeline, SkippingGroundTruthStillProfiles) {
  PipelineConfig C;
  C.CollectGroundTruth = false;
  C.Args = {10};
  PipelineResult R = runPipelineOnSource(
      "fn main(n) { var s = 0; for (var i = 0; i < n; i = i + 1) "
      "{ s = s + i; } return s; }",
      C);
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  EXPECT_EQ(R.ReturnValue, 45);
  uint64_t Total = 0;
  for (const auto &Map : R.Prof->PathCounts)
    for (const auto &[Id, Count] : Map)
      Total += Count;
  EXPECT_GT(Total, 0u);
  // No trace was replayed.
  EXPECT_EQ(R.GT.TotalPathInstances, 0u);
}

TEST(Pipeline, BaselineAndInstrumentedAgree) {
  PipelineConfig C;
  C.Args = {23, 5};
  C.Instr.LoopOverlap = true;
  C.Instr.LoopDegree = 2;
  C.Instr.Interproc = true;
  C.Instr.InterprocDegree = 2;
  PipelineResult R = runPipelineOnSource(R"(
    fn helper(a, b) { if (a & 1) { return a + b; } return a - b; }
    fn main(n, m) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + helper(i, m); }
      return s;
    })",
                                         C);
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  // The facade itself checks return-value agreement; also sanity-check the
  // cost accounting directions.
  EXPECT_GT(R.InstrCounts.totalCost(), R.BaseCounts.totalCost());
  EXPECT_EQ(R.BaseCounts.ProbeCost, 0u);
  EXPECT_GT(R.InstrCounts.ProbeCost, 0u);
  EXPECT_GT(R.overheadPercent(), 0.0);
}

TEST(Pipeline, ModulesAreIndependentCopies) {
  PipelineConfig C;
  PipelineResult R =
      runPipelineOnSource("fn main() { return 7; }", C);
  ASSERT_TRUE(R.ok());
  // The instrumented module carries probes; the baseline module must not.
  auto CountProbes = [](const Module &M) {
    uint64_t N = 0;
    for (const auto &F : M.functions())
      for (const auto &BB : F->blocks())
        for (const Instruction &I : BB->Instrs)
          N += I.Op == Opcode::Probe;
    return N;
  };
  EXPECT_EQ(CountProbes(*R.BaseModule), 0u);
  EXPECT_GT(CountProbes(*R.InstrModule), 0u);
}
