//===--- InterpTest.cpp - interpreter semantics tests ------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "interp/Trace.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

RunResult runSource(std::string_view Src, std::vector<int64_t> Args = {},
                    TraceSink *Trace = nullptr, RunConfig Cfg = RunConfig()) {
  auto M = compileOrDie(Src);
  const Function *Main = M->findFunction("main");
  EXPECT_NE(Main, nullptr);
  Args.resize(Main->NumParams, 0);
  Interpreter I(*M, nullptr, Trace);
  return I.run(*Main, Args, Cfg);
}

} // namespace

TEST(Interp, Arithmetic) {
  RunResult R = runSource(
      "fn main() { return (7 * 3 - 1) / 4 % 3 + (1 << 4) - (65 >> 1); }");
  ASSERT_TRUE(R.Ok) << R.Error;
  // (21-1)/4 = 5; 5 % 3 = 2; 2 + 16 - 32 = -14.
  EXPECT_EQ(R.ReturnValue, -14);
}

TEST(Interp, BitwiseAndComparisons) {
  RunResult R = runSource(R"(
    fn main() {
      var x = 12 & 10;        // 8
      x = x | 3;              // 11
      x = x ^ 1;              // 10
      return (x == 10) + (x != 10) * 100 + (x < 11) * 10 + (x >= 10) * 1000;
    })");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 1011);
}

TEST(Interp, NegativeModAndDiv) {
  RunResult R = runSource("fn main() { return (-7) / 2 * 100 + (-7) % 2; }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, -301); // C semantics: -3 and -1
}

TEST(Interp, DivisionByZeroTraps) {
  RunResult R = runSource("fn main(a) { return 1 / a; }", {0});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Interp, ModuloByZeroTraps) {
  RunResult R = runSource("fn main(a) { return 1 % a; }", {0});
  EXPECT_FALSE(R.Ok);
}

TEST(Interp, ArrayOutOfBoundsTraps) {
  RunResult R = runSource("global a[4]; fn main(i) { return a[i]; }", {4});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
  RunResult R2 = runSource("global a[4]; fn main(i) { return a[i]; }", {-1});
  EXPECT_FALSE(R2.Ok);
}

TEST(Interp, FuelExhaustion) {
  RunConfig Cfg;
  Cfg.MaxSteps = 1000;
  RunResult R = runSource("fn main() { while (1) { } return 0; }", {}, nullptr,
                          Cfg);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("fuel exhausted"), std::string::npos);
}

TEST(Interp, CallDepthLimit) {
  RunConfig Cfg;
  Cfg.MaxCallDepth = 50;
  RunResult R = runSource(
      "fn f(n) { return f(n + 1); } fn main() { return f(0); }", {}, nullptr,
      Cfg);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("call depth"), std::string::npos);
}

TEST(Interp, ShiftAmountsMasked) {
  RunResult R = runSource("fn main() { return (1 << 64) + (1 << 65); }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 1 + 2); // shifts of 0 and 1
}

TEST(Interp, WrappingMultiply) {
  RunResult R = runSource(R"(
    fn main() {
      var big = 1;
      var i = 0;
      while (i < 64) { big = big * 2; i = i + 1; }
      return big;  // 2^64 wraps to 0
    })");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 0);
}

TEST(Interp, DynCountsAreCounted) {
  RunResult R = runSource("fn main() { var s = 0; var i = 0; "
                          "while (i < 10) { s = s + i; i = i + 1; } return s; }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 45);
  EXPECT_GT(R.Counts.Steps, 50u);
  EXPECT_EQ(R.Counts.BaseCost, R.Counts.Steps); // no probes
  EXPECT_EQ(R.Counts.ProbeCost, 0u);
  EXPECT_GT(R.Counts.Blocks, 20u);
}

TEST(Interp, TraceIsBalancedAndNested) {
  VectorTrace T;
  RunResult R = runSource(R"(
    fn leaf(x) { return x + 1; }
    fn mid(x) { return leaf(x) + leaf(x); }
    fn main() { return mid(1); })",
                          {}, &T);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ReturnValue, 4);
  int Depth = 0;
  int MaxDepth = 0;
  uint64_t Enters = 0, Exits = 0;
  for (const TraceEvent &E : T.Events) {
    if (E.Kind == TraceEventKind::Enter) {
      ++Depth;
      ++Enters;
      MaxDepth = std::max(MaxDepth, Depth);
    } else if (E.Kind == TraceEventKind::Exit) {
      --Depth;
      ++Exits;
    }
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_EQ(Enters, 4u); // main, mid, leaf, leaf
  EXPECT_EQ(Exits, 4u);
  EXPECT_EQ(MaxDepth, 3);
}

TEST(Interp, TraceFirstBlockIsEntry) {
  VectorTrace T;
  RunResult R = runSource("fn main() { return 0; }", {}, &T);
  ASSERT_TRUE(R.Ok);
  ASSERT_GE(T.Events.size(), 2u);
  EXPECT_EQ(T.Events[0].Kind, TraceEventKind::Enter);
  EXPECT_EQ(T.Events[1].Kind, TraceEventKind::Block);
  EXPECT_EQ(T.Events[1].Block, 0u);
}

TEST(Interp, GlobalsZeroInitializedAndResettable) {
  auto M = compileOrDie("global g; fn main() { g = g + 1; return g; }");
  const Function *Main = M->findFunction("main");
  Interpreter I(*M);
  EXPECT_EQ(I.run(*Main, {}).ReturnValue, 1);
  EXPECT_EQ(I.run(*Main, {}).ReturnValue, 2); // globals persist
  I.resetGlobals();
  EXPECT_EQ(I.run(*Main, {}).ReturnValue, 1);
}

TEST(Interp, VoidReturnUsedAsValueTraps) {
  RunResult R = runSource("fn f() { return; } fn main() { return f(); }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("void return"), std::string::npos);
}
