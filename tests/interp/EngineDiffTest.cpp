//===--- EngineDiffTest.cpp - fast vs reference engine equivalence ------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Differential tests of the two execution engines: every embedded workload
// runs, fully instrumented, through the pre-decoded fast engine and the
// reference tree-walker, and every observable must match bit for bit —
// return value, DynCounts (steps, base cost, probe cost, blocks, calls),
// per-function path counters and the Type I / Type II interprocedural
// tables. This is the contract that lets the fast engine replace the
// reference everywhere: any specialization or fusion bug that perturbs a
// counter or a cost unit fails here.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "profile/Instrumenter.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace olpp;

namespace {

struct EngineObservation {
  RunResult Result;
  ProfileRuntime Prof;

  explicit EngineObservation(size_t NumFunctions) : Prof(NumFunctions) {}
};

/// Runs \p W instrumented at the given degrees under \p Engine with a fresh
/// interpreter and runtime, using \p Precision args (small runs) or overhead
/// args (the big loop-heavy runs the bench times).
std::unique_ptr<EngineObservation>
runWorkload(const Workload &W, EngineKind Engine, bool Precision,
            const InstrumentOptions &Opts) {
  CompileResult CR = compileMiniC(W.Source);
  EXPECT_TRUE(CR.ok()) << W.Name << ": " << CR.diagText();
  if (!CR.ok())
    return nullptr;
  std::unique_ptr<Module> M = std::move(CR.M);

  ModuleInstrumentation MI = instrumentModule(*M, Opts);
  EXPECT_TRUE(MI.ok()) << W.Name;
  if (!MI.ok())
    return nullptr;

  const Function *Main = M->findFunction("main");
  EXPECT_NE(Main, nullptr) << W.Name;
  if (!Main)
    return nullptr;
  std::vector<int64_t> Args = Precision ? W.PrecisionArgs : W.OverheadArgs;
  Args.resize(Main->NumParams, 0);

  auto Obs = std::make_unique<EngineObservation>(M->numFunctions());
  for (uint32_t F = 0; F < M->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Obs->Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());

  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  RC.Engine = Engine;
  Interpreter I(*M, &Obs->Prof);
  Obs->Result = I.run(*Main, Args, RC);
  EXPECT_TRUE(Obs->Result.Ok) << W.Name << ": " << Obs->Result.Error;
  return Obs;
}

void expectEquivalent(const Workload &W, bool Precision,
                      const InstrumentOptions &Opts) {
  // The two observations must come from independent compiles and runtimes;
  // nothing may be shared that could mask a divergence.
  auto Ref = runWorkload(W, EngineKind::Reference, Precision, Opts);
  auto Fast = runWorkload(W, EngineKind::Fast, Precision, Opts);
  ASSERT_NE(Ref, nullptr);
  ASSERT_NE(Fast, nullptr);

  EXPECT_EQ(Ref->Result.ReturnValue, Fast->Result.ReturnValue) << W.Name;
  EXPECT_EQ(Ref->Result.Counts.Steps, Fast->Result.Counts.Steps) << W.Name;
  EXPECT_EQ(Ref->Result.Counts.BaseCost, Fast->Result.Counts.BaseCost)
      << W.Name;
  EXPECT_EQ(Ref->Result.Counts.ProbeCost, Fast->Result.Counts.ProbeCost)
      << W.Name;
  EXPECT_EQ(Ref->Result.Counts.Blocks, Fast->Result.Counts.Blocks) << W.Name;
  EXPECT_EQ(Ref->Result.Counts.Calls, Fast->Result.Counts.Calls) << W.Name;

  ASSERT_EQ(Ref->Prof.PathCounts.size(), Fast->Prof.PathCounts.size());
  for (size_t F = 0; F < Ref->Prof.PathCounts.size(); ++F)
    EXPECT_TRUE(Ref->Prof.PathCounts[F] == Fast->Prof.PathCounts[F])
        << W.Name << ": path counters of function " << F;
  EXPECT_TRUE(Ref->Prof.TypeICounts == Fast->Prof.TypeICounts)
      << W.Name << ": Type I counters";
  EXPECT_TRUE(Ref->Prof.TypeIICounts == Fast->Prof.TypeIICounts)
      << W.Name << ": Type II counters";
}

InstrumentOptions fullOpts() {
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  return Opts;
}

class EngineDiffTest : public testing::TestWithParam<const Workload *> {};

// Precision-sized runs of every workload: cheap enough to cover the whole
// suite, and they exercise every probe kind the instrumenter emits.
TEST_P(EngineDiffTest, PrecisionRunMatches) {
  expectEquivalent(*GetParam(), /*Precision=*/true, fullOpts());
}

// Ball-Larus-only instrumentation takes different probe shapes (no overlap
// or interprocedural micro-ops), so the specialized decodings differ too.
TEST_P(EngineDiffTest, BallLarusOnlyRunMatches) {
  InstrumentOptions Opts; // defaults: BL profile, no overlap extensions
  expectEquivalent(*GetParam(), /*Precision=*/true, Opts);
}

// Uninstrumented runs: probes absent, pure compute; the fused ALU
// superinstructions carry the whole load here.
TEST_P(EngineDiffTest, UninstrumentedRunMatches) {
  const Workload &W = *GetParam();
  CompileResult CR = compileMiniC(W.Source);
  ASSERT_TRUE(CR.ok()) << W.Name;
  std::unique_ptr<Module> M = std::move(CR.M);
  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  std::vector<int64_t> Args = W.PrecisionArgs;
  Args.resize(Main->NumParams, 0);

  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  RunResult Res[2];
  for (int E = 0; E < 2; ++E) {
    Interpreter I(*M, nullptr);
    RC.Engine = E ? EngineKind::Fast : EngineKind::Reference;
    Res[E] = I.run(*Main, Args, RC);
    ASSERT_TRUE(Res[E].Ok) << W.Name << ": " << Res[E].Error;
  }
  EXPECT_EQ(Res[0].ReturnValue, Res[1].ReturnValue) << W.Name;
  EXPECT_TRUE(Res[0].Counts == Res[1].Counts) << W.Name;
}

std::vector<const Workload *> allWorkloadPtrs() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineDiffTest, testing::ValuesIn(allWorkloadPtrs()),
    [](const testing::TestParamInfo<const Workload *> &Info) {
      return Info.param->Name;
    });

// The overhead-sized runs are the ones the bench actually times (tens of
// millions of steps through the hottest fusion paths); run the loop-heavy
// subset through both engines at full size.
TEST(EngineDiffOverhead, LoopHeavyWorkloadsMatchAtFullSize) {
  for (const Workload &W : allWorkloads())
    if (W.Name == "mcf" || W.Name == "twolf" || W.Name == "go")
      expectEquivalent(W, /*Precision=*/false, fullOpts());
}

// A run that dies mid-flight (fuel exhaustion) must fail identically in
// both engines: same error class, same counters at the point of death, and
// the profile runtime must stay usable for the next run.
TEST(EngineDiffAbort, FuelExhaustionMatches) {
  const Workload *W = nullptr;
  for (const Workload &X : allWorkloads())
    if (X.Name == "mcf")
      W = &X;
  ASSERT_NE(W, nullptr);

  CompileResult CR = compileMiniC(W->Source);
  ASSERT_TRUE(CR.ok());
  std::unique_ptr<Module> M = std::move(CR.M);
  InstrumentOptions Opts = fullOpts();
  ModuleInstrumentation MI = instrumentModule(*M, Opts);
  ASSERT_TRUE(MI.ok());
  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  std::vector<int64_t> Args = W->OverheadArgs;
  Args.resize(Main->NumParams, 0);

  RunConfig RC;
  RC.MaxSteps = 100'000; // well below the workload's step count
  RunResult Res[2];
  DynCounts Counts[2];
  for (int E = 0; E < 2; ++E) {
    ProfileRuntime Prof(M->numFunctions());
    Interpreter I(*M, &Prof);
    RC.Engine = E ? EngineKind::Fast : EngineKind::Reference;
    Res[E] = I.run(*Main, Args, RC);
    EXPECT_FALSE(Res[E].Ok);
    Counts[E] = Res[E].Counts;
  }
  EXPECT_EQ(Res[0].Error, Res[1].Error);
  EXPECT_EQ(Counts[0].Steps, Counts[1].Steps);
  EXPECT_EQ(Counts[0].BaseCost, Counts[1].BaseCost);
  EXPECT_EQ(Counts[0].ProbeCost, Counts[1].ProbeCost);
}

// Sweep of *every* abort point: run a small program with calls in a loop
// under every step budget below its full length. Each budget must abort
// identically in both engines (error, dynamic counts, raw counters), and a
// runtime reused across two aborted runs must equal two fresh aborted
// runtimes merged — i.e. resetTransient fully recovers no matter where the
// abort landed, including the window between a call probe's shadow-stack
// push and the frame push (shrunk from the fuzzer's abort oracle).
TEST(EngineDiffAbort, EveryAbortPointIsConsistent) {
  const char *Source = R"(
    global acc;
    fn g(a, b) {
      acc = acc + a;
      return acc + b;
    }
    fn main(a, b) {
      var i = 0;
      while (i < 3) {
        i = i + 1;
        acc = g(i, a) + g(b, i);
      }
      return acc;
    }
  )";
  CompileResult CR = compileMiniC(Source);
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  std::unique_ptr<Module> M = std::move(CR.M);
  ModuleInstrumentation MI = instrumentModule(*M, fullOpts());
  ASSERT_TRUE(MI.ok());
  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  const std::vector<int64_t> Args{5, 9};

  auto configure = [&](ProfileRuntime &P) {
    for (uint32_t F = 0; F < M->numFunctions(); ++F)
      if (MI.Funcs[F].PG)
        P.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  };
  auto expectSameCounters = [&](const ProfileRuntime &A,
                                const ProfileRuntime &B, uint64_t Budget,
                                const char *What) {
    for (size_t F = 0; F < A.PathCounts.size(); ++F)
      ASSERT_TRUE(A.PathCounts[F] == B.PathCounts[F])
          << What << " at budget " << Budget << ", function " << F;
    ASSERT_TRUE(A.TypeICounts == B.TypeICounts)
        << What << " at budget " << Budget;
    ASSERT_TRUE(A.TypeIICounts == B.TypeIICounts)
        << What << " at budget " << Budget;
  };

  RunConfig RC;
  uint64_t FullSteps = 0;
  {
    ProfileRuntime P(M->numFunctions());
    configure(P);
    Interpreter I(*M, &P);
    RC.MaxSteps = 1'000'000;
    RunResult R = I.run(*Main, Args, RC);
    ASSERT_TRUE(R.Ok) << R.Error;
    FullSteps = R.Counts.Steps;
  }
  ASSERT_GT(FullSteps, 10u);

  bool SawDirtyTransient = false;
  for (uint64_t Budget = 1; Budget < FullSteps; ++Budget) {
    RC.MaxSteps = Budget;

    ProfileRuntime PRef(M->numFunctions()), PFast(M->numFunctions());
    configure(PRef);
    configure(PFast);
    RC.Engine = EngineKind::Reference;
    Interpreter IRef(*M, &PRef);
    RunResult RR = IRef.run(*Main, Args, RC);
    RC.Engine = EngineKind::Fast;
    Interpreter IFast(*M, &PFast);
    RunResult RF = IFast.run(*Main, Args, RC);

    ASSERT_FALSE(RR.Ok) << "budget " << Budget;
    ASSERT_FALSE(RF.Ok) << "budget " << Budget;
    ASSERT_EQ(RR.Error, RF.Error) << "budget " << Budget;
    ASSERT_TRUE(RR.Counts == RF.Counts) << "budget " << Budget;
    expectSameCounters(PRef, PFast, Budget, "reference vs fast");

    // The abort may strand hand-off state (shadow stack, pending return);
    // resetTransient must restore the between-runs invariant.
    SawDirtyTransient |= !PFast.transientClean();
    PFast.resetTransient();
    ASSERT_TRUE(PFast.transientClean()) << "budget " << Budget;

    // Reusing one runtime across two aborted runs must count exactly like
    // two independent aborted runs merged.
    ProfileRuntime PReuse(M->numFunctions());
    configure(PReuse);
    Interpreter IReuse(*M, &PReuse);
    IReuse.run(*Main, Args, RC);
    IReuse.resetGlobals();
    IReuse.run(*Main, Args, RC);
    ProfileRuntime Expected(M->numFunctions());
    configure(Expected);
    Expected.mergeFrom(PFast);
    Expected.mergeFrom(PFast);
    expectSameCounters(PReuse, Expected, Budget, "reused vs merged");
  }
  // The sweep passed through every instruction boundary, so it must have
  // hit at least one abort inside the probe/call hand-off window.
  EXPECT_TRUE(SawDirtyTransient);
}

} // namespace
