//===--- CounterStoreTest.cpp - counter container unit tests ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Unit tests of the hot-path counter containers behind ProfileRuntime:
// PathCounterStore (dense vector + spill map), FlatInterprocTable
// (open-addressing linear probing), the splitmix64-based InterprocKeyHash
// (collision rate on realistic dense key populations), and the
// ProfileRuntime transient-state reset that keeps batch runs independent.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/CounterStore.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "profile/Instrumenter.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace olpp;

namespace {

//===----------------------------------------------------------------------===//
// PathCounterStore
//===----------------------------------------------------------------------===//

TEST(PathCounterStore, DenseWindowAndSpillAgreeWithMap) {
  PathCounterStore S;
  S.configure(1000); // ids [0,1000) dense, the rest spill
  EXPECT_TRUE(S.isDense());

  std::unordered_map<int64_t, uint64_t> Ref;
  Rng R(0xC0FFEE);
  for (int I = 0; I < 20000; ++I) {
    // Mix of dense-window ids, ids above the window, and negative ids
    // (negative ids never index the dense vector: the store must treat
    // them as spill keys, not out-of-bounds accesses).
    int64_t Id;
    switch (R.nextBelow(4)) {
    case 0:
    case 1:
      Id = static_cast<int64_t>(R.nextBelow(1000));
      break;
    case 2:
      Id = static_cast<int64_t>(1000 + R.nextBelow(1u << 20));
      break;
    default:
      Id = -static_cast<int64_t>(1 + R.nextBelow(100));
      break;
    }
    S.bump(Id);
    ++Ref[Id];
  }

  EXPECT_EQ(S.size(), Ref.size());
  for (const auto &[Id, Count] : Ref)
    EXPECT_EQ(S.lookup(Id), Count) << "id " << Id;
  EXPECT_TRUE(S == Ref);
  EXPECT_EQ(S.toMap(), Ref);

  // Iteration visits exactly the positive counters.
  std::unordered_map<int64_t, uint64_t> Seen;
  for (const auto &[Id, Count] : S) {
    EXPECT_GT(Count, 0u);
    EXPECT_TRUE(Seen.emplace(Id, Count).second) << "duplicate id " << Id;
  }
  EXPECT_EQ(Seen, Ref);
}

TEST(PathCounterStore, UnconfiguredStoreCountsThroughSpill) {
  PathCounterStore S; // never configured: everything spills
  EXPECT_FALSE(S.isDense());
  S.bump(7);
  S.bump(7);
  S.bump(123456789);
  EXPECT_EQ(S.lookup(7), 2u);
  EXPECT_EQ(S.lookup(123456789), 1u);
  EXPECT_EQ(S.size(), 2u);
}

TEST(PathCounterStore, HugeIdSpaceKeepsHashRepresentation) {
  PathCounterStore S;
  S.configure(PathCounterStore::DenseLimit + 1); // too wide for a vector
  EXPECT_FALSE(S.isDense());
  S.bump(0);
  S.bump(static_cast<int64_t>(PathCounterStore::DenseLimit));
  EXPECT_EQ(S.size(), 2u);
}

TEST(PathCounterStore, MergeFromAddsCounters) {
  PathCounterStore A, B;
  A.configure(16);
  B.configure(16);
  A.bump(3);
  A.bump(100); // spill in A
  B.bump(3);
  B.bump(5);
  A.mergeFrom(B);
  EXPECT_EQ(A.lookup(3), 2u);
  EXPECT_EQ(A.lookup(5), 1u);
  EXPECT_EQ(A.lookup(100), 1u);
  EXPECT_EQ(A.size(), 3u);
}

TEST(PathCounterStore, CountersSaturateInsteadOfWrapping) {
  // Push counters to the brink of 2^64 by repeated doubling (each merge of
  // a copy doubles every count), then keep bumping: the count must clamp at
  // UINT64_MAX instead of wrapping to a near-zero value. Exercised for both
  // representations: id 0 in the dense window, id 1 << 20 in the spill map.
  PathCounterStore S;
  S.configure(16);
  constexpr int64_t DenseId = 0;
  constexpr int64_t SpillId = 1u << 20;
  S.bump(DenseId);
  S.bump(SpillId);
  for (int I = 0; I < 70; ++I) {
    PathCounterStore Copy = S;
    S.mergeFrom(Copy); // doubles (saturating); 2^70 > 2^64 forces the clamp
  }
  EXPECT_EQ(S.lookup(DenseId), UINT64_MAX);
  EXPECT_EQ(S.lookup(SpillId), UINT64_MAX);

  // Saturated counters stay saturated (and positive: a wrapped-to-zero
  // count would vanish from iteration and break NonZero bookkeeping).
  S.bump(DenseId);
  S.bump(SpillId);
  EXPECT_EQ(S.lookup(DenseId), UINT64_MAX);
  EXPECT_EQ(S.lookup(SpillId), UINT64_MAX);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S == S.toMap());
}

TEST(FlatInterprocTable, CountersSaturateInsteadOfWrapping) {
  FlatInterprocTable T;
  InterprocKey K{1, 2, 3, 4};
  T.bump(K, UINT64_MAX - 1);
  EXPECT_EQ(T.lookup(K), UINT64_MAX - 1);
  T.bump(K); // exactly reaches the ceiling
  EXPECT_EQ(T.lookup(K), UINT64_MAX);
  T.bump(K); // would wrap to 0 — an empty-slot marker — without saturation
  T.bump(K, UINT64_MAX);
  EXPECT_EQ(T.lookup(K), UINT64_MAX);
  EXPECT_EQ(T.size(), 1u);

  // Merging two saturated tables must clamp too, and the slot must remain
  // live (Count == 0 marks empty slots in the flat table).
  FlatInterprocTable O;
  O.bump(K, UINT64_MAX);
  T.mergeFrom(O);
  EXPECT_EQ(T.lookup(K), UINT64_MAX);
  EXPECT_EQ(T.size(), 1u);
}

TEST(PathCounterStore, ClearZeroesEverything) {
  PathCounterStore S;
  S.configure(8);
  S.bump(1);
  S.bump(99);
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.lookup(1), 0u);
  EXPECT_EQ(S.lookup(99), 0u);
  EXPECT_EQ(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// FlatInterprocTable
//===----------------------------------------------------------------------===//

InterprocKey randomKey(Rng &R) {
  // Realistic distribution: few callees and call sites, small dense path
  // ids — exactly the population the old additive hash collapsed on.
  InterprocKey K;
  K.Callee = static_cast<uint32_t>(R.nextBelow(48));
  K.CallSite = static_cast<uint32_t>(R.nextBelow(200));
  K.Inner = static_cast<int64_t>(R.nextBelow(2048));
  K.Outer = static_cast<int64_t>(R.nextBelow(2048));
  return K;
}

TEST(FlatInterprocTable, AgreesWithMapUnderRandomWorkload) {
  FlatInterprocTable T;
  FlatInterprocTable::Map Ref;
  Rng R(0xDEAD);
  for (int I = 0; I < 50000; ++I) {
    InterprocKey K = randomKey(R);
    uint64_t Delta = 1 + R.nextBelow(3);
    T.bump(K, Delta);
    Ref[K] += Delta;
  }
  EXPECT_EQ(T.size(), Ref.size());
  for (const auto &[K, Count] : Ref)
    EXPECT_EQ(T.lookup(K), Count);
  EXPECT_TRUE(T == Ref);
  EXPECT_EQ(T.toMap(), Ref);

  std::unordered_map<InterprocKey, uint64_t, InterprocKeyHash> Seen;
  for (const auto &[K, Count] : T) {
    EXPECT_GT(Count, 0u);
    EXPECT_TRUE(Seen.emplace(K, Count).second);
  }
  EXPECT_EQ(Seen.size(), Ref.size());
}

TEST(FlatInterprocTable, GrowPreservesCountersAcrossRehash) {
  FlatInterprocTable T;
  // Push well past the initial capacity so the table rehashes repeatedly.
  for (uint32_t I = 0; I < 10000; ++I) {
    InterprocKey K{I % 7, I, static_cast<int64_t>(I), 0};
    T.bump(K);
  }
  EXPECT_EQ(T.size(), 10000u);
  for (uint32_t I = 0; I < 10000; ++I) {
    InterprocKey K{I % 7, I, static_cast<int64_t>(I), 0};
    EXPECT_EQ(T.lookup(K), 1u);
  }
}

TEST(FlatInterprocTable, MergeFromMatchesMapMerge) {
  FlatInterprocTable A, B;
  FlatInterprocTable::Map Ref;
  Rng R(42);
  for (int I = 0; I < 5000; ++I) {
    InterprocKey K = randomKey(R);
    if (R.chance(1, 2)) {
      A.bump(K);
    } else {
      B.bump(K);
    }
    ++Ref[K];
  }
  A.mergeFrom(B);
  EXPECT_TRUE(A == Ref);
}

//===----------------------------------------------------------------------===//
// InterprocKeyHash collision behaviour
//===----------------------------------------------------------------------===//

// The table masks the hash down to its low bits, so quality of the *low*
// bits on small dense ids is what decides probe-chain length. With a
// full-avalanche mix, throwing N keys into M buckets should land close to
// the ideal load; a structured hash (like the additive mix this replaced)
// concentrates dense-id populations into a few buckets.
TEST(InterprocKeyHash, LowBitsSpreadDenseKeys) {
  constexpr size_t NumKeys = 1 << 16;
  constexpr size_t NumBuckets = 1 << 16; // as the flat table would mask
  std::vector<uint32_t> Load(NumBuckets, 0);
  InterprocKeyHash H;

  size_t Made = 0;
  for (uint32_t Callee = 0; Made < NumKeys; ++Callee)
    for (uint32_t Cs = 0; Cs < 16 && Made < NumKeys; ++Cs)
      for (int64_t Inner = 0; Inner < 16 && Made < NumKeys; ++Inner)
        for (int64_t Outer = 0; Outer < 16 && Made < NumKeys; ++Outer) {
          ++Load[H({Callee, Cs, Inner, Outer}) & (NumBuckets - 1)];
          ++Made;
        }

  // With load factor 1, a uniform hash leaves ~36.8% of buckets empty and
  // the expected maximum load around ln n / ln ln n ~ 7. Allow generous
  // slack; a structured hash fails these by orders of magnitude.
  size_t Empty = 0;
  uint32_t MaxLoad = 0;
  for (uint32_t L : Load) {
    if (L == 0)
      ++Empty;
    MaxLoad = std::max(MaxLoad, L);
  }
  double EmptyFrac = static_cast<double>(Empty) / NumBuckets;
  EXPECT_GT(EmptyFrac, 0.30);
  EXPECT_LT(EmptyFrac, 0.44);
  EXPECT_LE(MaxLoad, 16u);
}

TEST(InterprocKeyHash, NoFullWidthCollisionsOnDensePopulation) {
  // 64-bit collisions among ~a million realistic keys would indicate a
  // badly broken mix (birthday bound puts the uniform expectation around
  // 3e-8 per pair, ~0.03 expected collisions here).
  InterprocKeyHash H;
  std::unordered_set<uint64_t> Hashes;
  size_t N = 0;
  for (uint32_t Callee = 0; Callee < 8; ++Callee)
    for (uint32_t Cs = 0; Cs < 32; ++Cs)
      for (int64_t Inner = 0; Inner < 64; ++Inner)
        for (int64_t Outer = 0; Outer < 64; ++Outer) {
          Hashes.insert(
              static_cast<uint64_t>(H({Callee, Cs, Inner, Outer})));
          ++N;
        }
  EXPECT_EQ(Hashes.size(), N);
}

TEST(SplitMix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit must flip a substantial fraction of output bits
  // (full avalanche targets ~32 of 64). This is the property the additive
  // Fibonacci mix lacked for low-entropy inputs.
  Rng R(7);
  for (int Trial = 0; Trial < 64; ++Trial) {
    uint64_t X = R.next();
    for (int Bit = 0; Bit < 64; Bit += 7) {
      uint64_t Diff = splitmix64(X) ^ splitmix64(X ^ (1ULL << Bit));
      int Flipped = __builtin_popcountll(Diff);
      EXPECT_GE(Flipped, 16) << "bit " << Bit;
      EXPECT_LE(Flipped, 48) << "bit " << Bit;
    }
  }
}

//===----------------------------------------------------------------------===//
// ProfileRuntime transient-state hygiene
//===----------------------------------------------------------------------===//

TEST(ProfileRuntime, ResetTransientKeepsCountersDropsHandoffState) {
  ProfileRuntime P(2);
  P.configurePathStore(0, 10);
  P.PathCounts[0].bump(3);
  P.TypeICounts.bump({1, 2, 3, 4});
  P.ShadowStack.push_back({7, 42});
  P.Pending = {true, 1, 99};

  P.resetTransient();
  EXPECT_TRUE(P.ShadowStack.empty());
  EXPECT_FALSE(P.Pending.Valid);
  EXPECT_EQ(P.PathCounts[0].lookup(3), 1u); // counters untouched
  EXPECT_EQ(P.TypeICounts.lookup({1, 2, 3, 4}), 1u);

  P.clear();
  EXPECT_TRUE(P.PathCounts[0].empty());
  EXPECT_TRUE(P.TypeICounts.empty());
}

// Regression test for the batch-run bug: a run that aborts mid-call (here:
// fuel exhaustion inside instrumented callees) leaves shadow-stack entries
// and possibly a pending return behind. The next Interpreter::run on the
// same runtime must not let that stale hand-off state leak into its
// counters — its profile must be identical to a run on a fresh runtime.
TEST(ProfileRuntime, AbortedRunDoesNotPoisonTheNextRun) {
  const Workload *W = nullptr;
  for (const Workload &X : allWorkloads())
    if (X.Name == "li")
      W = &X;
  ASSERT_NE(W, nullptr);

  CompileResult CR = compileMiniC(W->Source);
  ASSERT_TRUE(CR.ok());
  std::unique_ptr<Module> M = std::move(CR.M);
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  ModuleInstrumentation MI = instrumentModule(*M, Opts);
  ASSERT_TRUE(MI.ok());
  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  std::vector<int64_t> Args = W->PrecisionArgs;
  Args.resize(Main->NumParams, 0);

  auto Configure = [&](ProfileRuntime &P) {
    for (uint32_t F = 0; F < M->numFunctions(); ++F)
      if (MI.Funcs[F].PG)
        P.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  };

  for (EngineKind E : {EngineKind::Reference, EngineKind::Fast}) {
    // Reused runtime: first an aborted run, then the real one.
    ProfileRuntime Reused(M->numFunctions());
    Configure(Reused);
    {
      Interpreter I(*M, &Reused);
      RunConfig Short;
      Short.MaxSteps = 2000; // dies deep inside instrumented calls
      Short.Engine = E;
      RunResult R = I.run(*Main, Args, Short);
      ASSERT_FALSE(R.Ok);
    }
    Reused.clear(); // keep only the hygiene question: transient state
    // Deliberately poison the transient state again, as an aborted run
    // without an intervening clear() would have.
    Reused.ShadowStack.push_back({0, 12345});
    Reused.Pending = {true, 0, 77};

    ProfileRuntime Fresh(M->numFunctions());
    Configure(Fresh);

    RunConfig RC;
    RC.Engine = E;
    RunResult RReused, RFresh;
    {
      Interpreter I(*M, &Reused);
      RReused = I.run(*Main, Args, RC);
    }
    {
      Interpreter I(*M, &Fresh);
      RFresh = I.run(*Main, Args, RC);
    }
    ASSERT_TRUE(RReused.Ok) << RReused.Error;
    ASSERT_TRUE(RFresh.Ok) << RFresh.Error;
    EXPECT_TRUE(RReused.Counts == RFresh.Counts);
    for (uint32_t F = 0; F < M->numFunctions(); ++F)
      EXPECT_TRUE(Reused.PathCounts[F] == Fresh.PathCounts[F])
          << "engine " << engineKindName(E) << ", function " << F;
    EXPECT_TRUE(Reused.TypeICounts == Fresh.TypeICounts);
    EXPECT_TRUE(Reused.TypeIICounts == Fresh.TypeIICounts);
  }
}

} // namespace
