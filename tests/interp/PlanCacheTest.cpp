//===--- PlanCacheTest.cpp - shared ExecPlan cache tests ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/PlanCache.h"

#include "interp/Interpreter.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace olpp;
using namespace olpp::testutil;

namespace {

const char *kProg = R"(
  fn helper(a) { return a * 3 + 1; }
  fn main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc + helper(i); i = i + 1; }
    return acc;
  })";

} // namespace

TEST(PlanCache, SameModuleObjectHitsTheMemo) {
  ExecPlanCache Cache;
  auto M = compileOrDie(kProg);
  auto P1 = Cache.get(*M);
  auto P2 = Cache.get(*M);
  EXPECT_EQ(P1.get(), P2.get());
  ExecPlanCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoHits, 1u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(PlanCache, IdenticalContentSharesOnePlanAcrossModules) {
  ExecPlanCache Cache;
  auto MA = compileOrDie(kProg);
  auto MB = compileOrDie(kProg); // distinct object, identical content
  auto MC = MA->clone();
  ASSERT_NE(MA->uid(), MB->uid());
  ASSERT_NE(MA->uid(), MC->uid());

  auto PA = Cache.get(*MA);
  auto PB = Cache.get(*MB);
  auto PC = Cache.get(*MC);
  EXPECT_EQ(PA.get(), PB.get());
  EXPECT_EQ(PA.get(), PC.get());

  ExecPlanCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.ContentHits, 2u);
  EXPECT_EQ(S.Entries, 1u);
}

TEST(PlanCache, DifferentContentGetsDifferentPlans) {
  ExecPlanCache Cache;
  auto MA = compileOrDie("fn main() { return 1; }");
  auto MB = compileOrDie("fn main() { return 2; }");
  auto PA = Cache.get(*MA);
  auto PB = Cache.get(*MB);
  EXPECT_NE(PA.get(), PB.get());
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(PlanCache, FingerprintCoversContentNotIdentity) {
  auto MA = compileOrDie(kProg);
  auto MB = compileOrDie(kProg);
  auto MC = compileOrDie("fn main() { return 1; }");
  EXPECT_EQ(modulePlanFingerprint(*MA), modulePlanFingerprint(*MB));
  EXPECT_NE(modulePlanFingerprint(*MA), modulePlanFingerprint(*MC));
}

TEST(PlanCache, EvictionBoundsEntriesAndKeepsHandedOutPlansAlive) {
  ExecPlanCache Cache(/*Capacity=*/2);
  std::vector<std::unique_ptr<Module>> Mods;
  std::vector<std::shared_ptr<const ExecPlan>> Plans;
  for (int I = 0; I < 5; ++I) {
    std::string Src =
        "fn main() { return " + std::to_string(I) + "; }";
    Mods.push_back(compileOrDie(Src));
    Plans.push_back(Cache.get(*Mods.back()));
  }
  EXPECT_LE(Cache.stats().Entries, 2u);
  // Evicted plans stay valid for as long as someone holds them.
  for (const auto &P : Plans) {
    ASSERT_NE(P, nullptr);
    EXPECT_FALSE(P->Funcs.empty());
  }
  // An evicted module re-enters through a rebuild, still yielding a plan.
  auto Again = Cache.get(*Mods.front());
  ASSERT_NE(Again, nullptr);
  EXPECT_FALSE(Again->Funcs.empty());
}

TEST(PlanCache, ConcurrentGetsOfOneContentConverge) {
  ExecPlanCache Cache;
  auto M = compileOrDie(kProg);
  std::vector<std::unique_ptr<Module>> Clones;
  for (int I = 0; I < 8; ++I)
    Clones.push_back(M->clone());

  std::vector<std::shared_ptr<const ExecPlan>> Got(Clones.size());
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Clones.size(); ++I)
    Threads.emplace_back(
        [&, I] { Got[I] = Cache.get(*Clones[I]); });
  for (auto &T : Threads)
    T.join();

  for (const auto &P : Got) {
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(P.get(), Got.front().get());
  }
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

TEST(PlanCache, InterpretersShareThePlanThroughTheGlobalCache) {
  auto MA = compileOrDie(kProg);
  auto MB = compileOrDie(kProg);
  const Function *MainA = MA->findFunction("main");
  const Function *MainB = MB->findFunction("main");
  ASSERT_NE(MainA, nullptr);
  ASSERT_NE(MainB, nullptr);

  ExecPlanCache::Stats Before = ExecPlanCache::global().stats();
  Interpreter IA(*MA);
  Interpreter IB(*MB);
  RunResult RA = IA.run(*MainA, {10});
  RunResult RB = IB.run(*MainB, {10});
  ASSERT_TRUE(RA.Ok) << RA.Error;
  ASSERT_TRUE(RB.Ok) << RB.Error;
  EXPECT_EQ(RA.ReturnValue, RB.ReturnValue);
  EXPECT_TRUE(RA.Counts == RB.Counts);

  ExecPlanCache::Stats After = ExecPlanCache::global().stats();
  // At most one build between the two runs: the second interpreter must
  // have hit (memo or content) rather than re-decoding.
  EXPECT_LE(After.Misses - Before.Misses, 1u);
  EXPECT_GE(After.MemoHits + After.ContentHits,
            Before.MemoHits + Before.ContentHits + 1);
}
