//===--- ShardMergeTest.cpp - sharded counter determinism -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Determinism contract of the parallel collection pipeline: running a batch
// of instrumented reps across N private counter shards and tree-merging them
// must be bit-for-bit identical to running the same reps serially into one
// runtime — for every workload and every instrumentation mode (full overlap,
// Ball-Larus only, interprocedural only). Also pins the saturation semantics
// of the merge primitives: saturating addition is what makes the merge
// order-insensitive in the first place.
//
//===----------------------------------------------------------------------===//

#include "interp/ShardedProfile.h"

#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "profile/Instrumenter.h"
#include "support/TaskPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

using namespace olpp;

namespace {

struct ModeSpec {
  const char *Name;
  InstrumentOptions Opts;
};

std::vector<ModeSpec> allModes() {
  InstrumentOptions Full;
  Full.LoopOverlap = true;
  Full.LoopDegree = 2;
  Full.Interproc = true;
  Full.InterprocDegree = 2;

  InstrumentOptions BL; // defaults: Ball-Larus only

  InstrumentOptions Inter;
  Inter.Interproc = true;
  Inter.InterprocDegree = 2;

  return {{"full", Full}, {"bl", BL}, {"interproc", Inter}};
}

/// Compiles and instruments \p W; fails the test on any error.
std::unique_ptr<Module> prepare(const Workload &W, const InstrumentOptions &O,
                                ModuleInstrumentation &MI) {
  CompileResult CR = compileMiniC(W.Source);
  EXPECT_TRUE(CR.ok()) << W.Name << ": " << CR.diagText();
  if (!CR.ok())
    return nullptr;
  std::unique_ptr<Module> M = std::move(CR.M);
  MI = instrumentModule(*M, O);
  EXPECT_TRUE(MI.ok()) << W.Name;
  if (!MI.ok())
    return nullptr;
  return M;
}

void configure(ProfileRuntime &P, const Module &M,
               const ModuleInstrumentation &MI) {
  for (uint32_t F = 0; F < M.numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      P.configurePathStore(F, MI.Funcs[F].PG->numPaths());
}

/// Args of rep \p Rep: the workload's precision args with the seed (second
/// parameter) perturbed per rep, so the reps take different paths and the
/// merge has real work to do.
std::vector<int64_t> repArgs(const Workload &W, const Function &Main,
                             unsigned Rep) {
  std::vector<int64_t> Args = W.PrecisionArgs;
  Args.resize(Main.NumParams, 0);
  if (Args.size() >= 2)
    Args[1] += Rep;
  return Args;
}

/// One rep executed into \p Prof with a fresh-globals interpreter state.
void runRep(Interpreter &I, const Function &Main, const Workload &W,
            unsigned Rep) {
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  I.resetGlobals();
  RunResult R = I.run(Main, repArgs(W, Main, Rep), RC);
  ASSERT_TRUE(R.Ok) << W.Name << " rep " << Rep << ": " << R.Error;
}

void expectSameCounters(const ProfileRuntime &A, const ProfileRuntime &B,
                        const char *Workload, const char *Mode,
                        unsigned Shards) {
  ASSERT_EQ(A.PathCounts.size(), B.PathCounts.size());
  for (size_t F = 0; F < A.PathCounts.size(); ++F)
    EXPECT_TRUE(A.PathCounts[F] == B.PathCounts[F])
        << Workload << "/" << Mode << " shards=" << Shards
        << ": path counters of function " << F;
  EXPECT_TRUE(A.TypeICounts == B.TypeICounts)
      << Workload << "/" << Mode << " shards=" << Shards << ": Type I";
  EXPECT_TRUE(A.TypeIICounts == B.TypeIICounts)
      << Workload << "/" << Mode << " shards=" << Shards << ": Type II";
}

/// The core property: \p Reps reps over \p Shards shards, tree-merged (on a
/// real pool), equals the serial single-runtime fold.
void checkShardMerge(const Workload &W, const ModeSpec &Mode, unsigned Shards,
                     unsigned Reps) {
  ModuleInstrumentation MI;
  std::unique_ptr<Module> M = prepare(W, Mode.Opts, MI);
  ASSERT_NE(M, nullptr);
  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr) << W.Name;

  // Serial baseline: every rep in order into one runtime.
  ProfileRuntime Serial(M->numFunctions());
  configure(Serial, *M, MI);
  {
    Interpreter I(*M, &Serial);
    for (unsigned Rep = 0; Rep < Reps; ++Rep)
      runRep(I, *Main, W, Rep);
  }

  // Sharded: rep r belongs to shard r % Shards; each shard runs its reps
  // serially, the shards run concurrently, each writing only its own
  // counters (the parallelFor slot owns the shard).
  TaskPool Pool(Shards);
  ShardedProfile SP(M->numFunctions(), Shards);
  for (uint32_t F = 0; F < M->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      SP.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  Pool.parallelFor(Shards, [&](size_t ShardIdx, unsigned) {
    Interpreter I(*M, &SP.shard(static_cast<unsigned>(ShardIdx)));
    for (unsigned Rep = static_cast<unsigned>(ShardIdx); Rep < Reps;
         Rep += Shards)
      runRep(I, *Main, W, Rep);
  });

  ProfileRuntime &Merged = SP.merge(&Pool);
  expectSameCounters(Merged, Serial, W.Name.c_str(), Mode.Name, Shards);
}

class ShardMergeTest : public testing::TestWithParam<const Workload *> {};

// Whole-suite coverage at one representative shard count, in every
// instrumentation mode.
TEST_P(ShardMergeTest, ThreeShardsMatchSerialInEveryMode) {
  for (const ModeSpec &Mode : allModes())
    checkShardMerge(*GetParam(), Mode, /*Shards=*/3, /*Reps=*/5);
}

std::vector<const Workload *> allWorkloadPtrs() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ShardMergeTest, testing::ValuesIn(allWorkloadPtrs()),
    [](const testing::TestParamInfo<const Workload *> &Info) {
      return Info.param->Name;
    });

// Shard-count independence: 1, 2, 4 and 7 shards (including counts that do
// not divide the rep count, and an odd count that makes the merge tree
// ragged) all produce the serial result on one workload in full mode.
TEST(ShardMerge, ShardCountDoesNotChangeTheResult) {
  const Workload *W = findWorkload("espresso");
  ASSERT_NE(W, nullptr);
  ModeSpec Full = allModes()[0];
  for (unsigned Shards : {1u, 2u, 4u, 7u})
    checkShardMerge(*W, Full, Shards, /*Reps=*/9);
}

// --- saturation semantics of the merge primitives -----------------------

TEST(ShardMerge, PathStoreMergeSaturatesInsteadOfWrapping) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  PathCounterStore A, B;
  A.configure(16);
  B.configure(16);
  A.add(5, Max - 1);
  B.add(5, 10);
  B.add(7, 3);
  A.mergeFrom(B);
  EXPECT_EQ(A.lookup(5), Max); // clamped, not wrapped to 8
  EXPECT_EQ(A.lookup(7), 3u);

  // Spill-map ids (outside the dense window) saturate identically.
  PathCounterStore C, D;
  C.add(1'000'000, Max);
  D.add(1'000'000, 1);
  C.mergeFrom(D);
  EXPECT_EQ(C.lookup(1'000'000), Max);
}

TEST(ShardMerge, PathStoreMergeOrderIsIrrelevantEvenWhenSaturating) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  auto MakeShards = [&] {
    std::vector<PathCounterStore> S(3);
    for (auto &X : S)
      X.configure(8);
    S[0].add(1, Max - 5);
    S[1].add(1, 4);
    S[2].add(1, 4); // total saturates
    S[0].add(2, 7);
    S[2].add(2, 11);
    return S;
  };
  // Left-to-right fold.
  auto A = MakeShards();
  A[0].mergeFrom(A[1]);
  A[0].mergeFrom(A[2]);
  // Tree order: (1 += 2), then (0 += 1).
  auto B = MakeShards();
  B[1].mergeFrom(B[2]);
  B[0].mergeFrom(B[1]);
  EXPECT_TRUE(A[0] == B[0]);
  EXPECT_EQ(A[0].lookup(1), Max);
  EXPECT_EQ(A[0].lookup(2), 18u);
}

TEST(ShardMerge, InterprocTableMergeSaturatesAndStaysPositive) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  InterprocKey K{1, 2, 3, 4};
  FlatInterprocTable A, B;
  A.bump(K, Max - 2);
  B.bump(K, 100);
  A.mergeFrom(B);
  EXPECT_EQ(A.lookup(K), Max); // a wrapped count would read as empty
  EXPECT_EQ(A.size(), 1u);
}

TEST(ShardMerge, TreeMergeOfSaturatingRuntimesEqualsSerialFold) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  const unsigned Shards = 4;
  auto Fill = [&](ProfileRuntime &P, unsigned I) {
    P.PathCounts[0].add(0, Max / 2);
    P.PathCounts[0].add(static_cast<int64_t>(I + 1), I + 1);
    P.TypeICounts.bump(InterprocKey{1, 0, 2, 3}, Max / 3 + I);
  };

  ShardedProfile SP(/*NumFunctions=*/1, Shards);
  ProfileRuntime Serial(1);
  for (unsigned I = 0; I < Shards; ++I) {
    Fill(SP.shard(I), I);
    ProfileRuntime Tmp(1);
    Fill(Tmp, I);
    Serial.mergeFrom(Tmp);
  }
  ProfileRuntime &Merged = SP.merge(); // serial tree (no pool): same result
  EXPECT_EQ(Merged.PathCounts[0].lookup(0), Max); // 4 * Max/2 clamps
  expectSameCounters(Merged, Serial, "synthetic", "saturate", Shards);
}

} // namespace
