//===--- CostModelTest.cpp - dynamic cost accounting tests ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/CostModel.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

/// Runs a function consisting of a single probe + ret and returns the
/// probe cost charged.
uint64_t probeCostOf(std::vector<ProbeOp> Ops, uint32_t NumLoopSlots = 1) {
  Module M;
  Function *F = M.addFunction("f", 0);
  F->NumLoopSlots = NumLoopSlots;
  BasicBlock *BB = F->addBlock("entry");
  Instruction P;
  P.Op = Opcode::Probe;
  auto Prog = std::make_shared<ProbeProgram>();
  Prog->Ops = std::move(Ops);
  P.ProbePayload = Prog;
  BB->Instrs.push_back(P);
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->renumberBlocks();

  ProfileRuntime Prof(1);
  Interpreter I(M, &Prof);
  RunResult Res = I.run(*F, {});
  EXPECT_TRUE(Res.Ok) << Res.Error;
  return Res.Counts.ProbeCost;
}

} // namespace

TEST(CostModel, RegisterOpsAreCheap) {
  EXPECT_EQ(probeCostOf({{ProbeOpKind::BLSet, 0, 5, 0}}), cost::RegOp);
  EXPECT_EQ(probeCostOf({{ProbeOpKind::BLAdd, 0, 5, 0}}), cost::RegOp);
}

TEST(CostModel, CounterBumpCostsMore) {
  uint64_t Count = probeCostOf({{ProbeOpKind::BLCount, 0, 0, 0}});
  EXPECT_EQ(Count, cost::CounterBump);
  EXPECT_GT(Count, cost::RegOp);
}

TEST(CostModel, InactiveRegionOpsPayOnlyTheTest) {
  // No OLArm ran, so the region is inactive.
  EXPECT_EQ(probeCostOf({{ProbeOpKind::OLAdd, 0, 5, 0}}),
            cost::InactiveTest);
  EXPECT_EQ(probeCostOf({{ProbeOpKind::OLPred, 0, 0, 3}}),
            cost::InactiveTest);
  EXPECT_EQ(probeCostOf({{ProbeOpKind::OLFlush, 0, 0, 0}}),
            cost::InactiveTest);
}

TEST(CostModel, ActiveRegionOpsPayTheWork) {
  // Arm then add: arm costs 2 register ops, the add pays test + op.
  uint64_t C = probeCostOf({{ProbeOpKind::OLArm, 0, 0, 0},
                            {ProbeOpKind::OLAdd, 0, 5, 0}});
  EXPECT_EQ(C, 2 * cost::RegOp + cost::InactiveTest + cost::RegOp);
}

TEST(CostModel, FlushChargesTheCounter) {
  uint64_t C = probeCostOf({{ProbeOpKind::OLArm, 0, 0, 0},
                            {ProbeOpKind::OLFlush, 0, 0, 0}});
  EXPECT_EQ(C, 2 * cost::RegOp + cost::InactiveTest + cost::CounterBump);
}

TEST(CostModel, TypeIIInactiveTestsFusePerProbe) {
  // Several call sites' ops share one probe; the inactive dispatch is
  // charged once.
  uint64_t One = probeCostOf({{ProbeOpKind::IPAddII, 3, 1, 0}});
  uint64_t Three = probeCostOf({{ProbeOpKind::IPAddII, 3, 1, 0},
                                {ProbeOpKind::IPAddII, 4, 1, 0},
                                {ProbeOpKind::IPAddII, 5, 1, 0}});
  EXPECT_EQ(One, cost::InactiveTest);
  EXPECT_EQ(Three, cost::InactiveTest);
}

TEST(CostModel, TupleBumpIsTheMostExpensive) {
  EXPECT_GT(cost::TupleBump, cost::CounterBump);
  EXPECT_GT(cost::CounterBump, cost::RegOp);
}

TEST(CostModel, ProbesAreFreeWithoutARuntime) {
  Module M;
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction P;
  P.Op = Opcode::Probe;
  auto Prog = std::make_shared<ProbeProgram>();
  Prog->Ops.push_back({ProbeOpKind::BLCount, 0, 0, 0});
  P.ProbePayload = Prog;
  BB->Instrs.push_back(P);
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->renumberBlocks();
  Interpreter I(M, nullptr); // no ProfileRuntime attached
  RunResult Res = I.run(*F, {});
  ASSERT_TRUE(Res.Ok);
  EXPECT_EQ(Res.Counts.ProbeCost, 0u);
}
