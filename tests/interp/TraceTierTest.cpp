//===--- TraceTierTest.cpp - hot-path tracing tier ------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The tracing tier's contract is invisibility: with traces enabled the fast
// engine must produce bit-identical observables (return value, DynCounts,
// path counters, Type I/II tables, error strings) to the reference engine,
// while actually recording and executing traces. These tests force the tier
// through every life-cycle edge: recording, multi-pass execution, guard-exit
// deopt at every divergence iteration, abort at every fuel budget crossing
// trace passes, callee-mismatch guards on indirect calls, stale-arm hygiene
// between batch runs, and concurrent installation on a shared plan.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "profile/Instrumenter.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace olpp;

namespace {

InstrumentOptions fullOpts() {
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  return Opts;
}

struct Program {
  std::unique_ptr<Module> M;
  const Function *Main = nullptr;
  ModuleInstrumentation MI;
};

Program compileInstrumented(const char *Source) {
  Program P;
  CompileResult CR = compileMiniC(Source);
  EXPECT_TRUE(CR.ok()) << CR.diagText();
  if (!CR.ok())
    return P;
  P.M = std::move(CR.M);
  P.MI = instrumentModule(*P.M, fullOpts());
  EXPECT_TRUE(P.MI.ok());
  P.Main = P.M->findFunction("main");
  EXPECT_NE(P.Main, nullptr);
  return P;
}

void configure(const Program &P, ProfileRuntime &Prof) {
  for (uint32_t F = 0; F < P.M->numFunctions(); ++F)
    if (P.MI.Funcs[F].PG)
      Prof.configurePathStore(F, P.MI.Funcs[F].PG->numPaths());
}

void expectSameCounters(const ProfileRuntime &A, const ProfileRuntime &B,
                        const std::string &What) {
  ASSERT_EQ(A.PathCounts.size(), B.PathCounts.size()) << What;
  for (size_t F = 0; F < A.PathCounts.size(); ++F)
    EXPECT_TRUE(A.PathCounts[F] == B.PathCounts[F])
        << What << ": path counters of function " << F;
  EXPECT_TRUE(A.TypeICounts == B.TypeICounts) << What << ": Type I";
  EXPECT_TRUE(A.TypeIICounts == B.TypeIICounts) << What << ": Type II";
}

// A loop-heavy program with calls inside the hot loop, so a recorded trace
// spans procedure boundaries (IPCall/IPEnter/IPRet/IPArmII all inside).
const char *HotLoopSource = R"(
  global acc;
  fn leaf(a, b) {
    if (a > b) { return a - b; }
    return b - a;
  }
  fn main(n) {
    var i = 0;
    while (i < n) {
      acc = acc + leaf(i, acc & 255);
      i = i + 1;
    }
    return acc;
  }
)";

// The hot loop takes a different branch on exactly one iteration (== d),
// so a trace recorded from the steady state must guard-exit there.
const char *DivergenceSource = R"(
  global acc;
  fn main(n, d) {
    var i = 0;
    while (i < n) {
      if (i == d) {
        acc = acc * 3 + 1;
      } else {
        acc = acc + i;
      }
      i = i + 1;
    }
    return acc;
  }
)";

// The hot loop calls through a function value that changes callee on
// iteration d: the trace's callee guard must deopt exactly there.
const char *CalleeSwitchSource = R"(
  global acc;
  fn even(x) { return x + x; }
  fn odd(x) { return x * 3; }
  fn main(n, d) {
    var i = 0;
    while (i < n) {
      var f = &even;
      if (i == d) { f = &odd; }
      acc = acc + f(i);
      i = i + 1;
    }
    return acc;
  }
)";

struct Observation {
  RunResult Res;
  ProfileRuntime Prof;
  explicit Observation(size_t NumFuncs) : Prof(NumFuncs) {}
};

std::unique_ptr<Observation> runOnce(const Program &P,
                                     const std::vector<int64_t> &Args,
                                     const RunConfig &RC) {
  auto Obs = std::make_unique<Observation>(P.M->numFunctions());
  configure(P, Obs->Prof);
  Interpreter I(*P.M, &Obs->Prof);
  Obs->Res = I.run(*P.Main, Args, RC);
  return Obs;
}

RunConfig tracedConfig(uint32_t Threshold = 1) {
  RunConfig RC;
  RC.Engine = EngineKind::Fast;
  RC.EnableTraces = true;
  RC.TraceThreshold = Threshold;
  return RC;
}

RunConfig referenceConfig() {
  RunConfig RC;
  RC.Engine = EngineKind::Reference;
  return RC;
}

TEST(TraceTierTest, HotLoopRecordsAndStaysBitExact) {
  Program P = compileInstrumented(HotLoopSource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{400};

  auto Ref = runOnce(P, Args, referenceConfig());
  auto Fast = runOnce(P, Args, tracedConfig(/*Threshold=*/4));
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
  ASSERT_TRUE(Fast->Res.Ok) << Fast->Res.Error;

  // The tier must actually engage: at least one trace recorded and at
  // least one full pass executed inside it.
  EXPECT_GE(Fast->Res.Trace.Recorded, 1u);
  EXPECT_GE(Fast->Res.Trace.Enters, 1u);
  EXPECT_GE(Fast->Res.Trace.Passes, 1u);
  EXPECT_GT(Fast->Res.Trace.TraceSteps, 0u);

  EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts);
  expectSameCounters(Ref->Prof, Fast->Prof, "hot loop");

  // Reference runs and trace-disabled runs report no tier activity.
  EXPECT_EQ(Ref->Res.Trace.Recorded, 0u);
  RunConfig Off = tracedConfig(1);
  Off.EnableTraces = false;
  auto NoTrace = runOnce(P, Args, Off);
  ASSERT_TRUE(NoTrace->Res.Ok);
  EXPECT_EQ(NoTrace->Res.Trace.Recorded, 0u);
  EXPECT_EQ(NoTrace->Res.Trace.Enters, 0u);
  EXPECT_TRUE(Ref->Res.Counts == NoTrace->Res.Counts);
}

// Guard exits at every possible divergence iteration: the steady-state
// trace is recorded early, then iteration d takes the other branch. Every
// d must deopt cleanly with reference-identical observables.
TEST(TraceTierTest, BranchDivergenceDeoptsAtEveryIteration) {
  Program P = compileInstrumented(DivergenceSource);
  ASSERT_NE(P.Main, nullptr);
  const int64_t N = 60;

  uint64_t TotalDeopts = 0;
  for (int64_t D = 0; D < N; ++D) {
    const std::vector<int64_t> Args{N, D};
    auto Ref = runOnce(P, Args, referenceConfig());
    auto Fast = runOnce(P, Args, tracedConfig());
    ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
    ASSERT_TRUE(Fast->Res.Ok) << "d=" << D << ": " << Fast->Res.Error;
    EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue) << "d=" << D;
    EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts) << "d=" << D;
    expectSameCounters(Ref->Prof, Fast->Prof,
                       "divergence d=" + std::to_string(D));
    TotalDeopts += Fast->Res.Trace.Deopts;
  }
  // Late divergences run inside an installed trace and must guard-exit.
  EXPECT_GT(TotalDeopts, 0u);
}

// Callee-mismatch guard: an indirect call whose target flips on iteration
// d must deopt out of the trace, for every d.
TEST(TraceTierTest, CalleeMismatchDeoptsAtEveryIteration) {
  Program P = compileInstrumented(CalleeSwitchSource);
  ASSERT_NE(P.Main, nullptr);
  const int64_t N = 40;

  uint64_t TotalDeopts = 0;
  for (int64_t D = 0; D < N; ++D) {
    const std::vector<int64_t> Args{N, D};
    auto Ref = runOnce(P, Args, referenceConfig());
    auto Fast = runOnce(P, Args, tracedConfig());
    ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
    ASSERT_TRUE(Fast->Res.Ok) << "d=" << D << ": " << Fast->Res.Error;
    EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue) << "d=" << D;
    EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts) << "d=" << D;
    expectSameCounters(Ref->Prof, Fast->Prof,
                       "callee switch d=" + std::to_string(D));
    TotalDeopts += Fast->Res.Trace.Deopts;
  }
  EXPECT_GT(TotalDeopts, 0u);
}

// Abort at every fuel budget: with a threshold of 1 traces install almost
// immediately, so budgets land before, inside and after trace passes. The
// aborted run must match the reference abort bit for bit (same error, same
// counts, same counters), and resetTransient must restore the between-runs
// invariant — mirroring the PR 2 stale-shadow-stack sweep.
TEST(TraceTierTest, AbortAtEveryBudgetMatchesReference) {
  Program P = compileInstrumented(HotLoopSource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{25};

  RunConfig Full = tracedConfig();
  Full.MaxSteps = 1'000'000;
  auto FullRun = runOnce(P, Args, Full);
  ASSERT_TRUE(FullRun->Res.Ok) << FullRun->Res.Error;
  ASSERT_GE(FullRun->Res.Trace.Recorded, 1u);
  const uint64_t FullSteps = FullRun->Res.Counts.Steps;
  ASSERT_GT(FullSteps, 10u);

  for (uint64_t Budget = 1; Budget < FullSteps; ++Budget) {
    RunConfig RRef = referenceConfig();
    RRef.MaxSteps = Budget;
    RunConfig RFast = tracedConfig();
    RFast.MaxSteps = Budget;

    auto Ref = runOnce(P, Args, RRef);
    auto Fast = runOnce(P, Args, RFast);
    ASSERT_FALSE(Ref->Res.Ok) << "budget " << Budget;
    ASSERT_FALSE(Fast->Res.Ok) << "budget " << Budget;
    ASSERT_EQ(Ref->Res.Error, Fast->Res.Error) << "budget " << Budget;
    ASSERT_TRUE(Ref->Res.Counts == Fast->Res.Counts) << "budget " << Budget;
    expectSameCounters(Ref->Prof, Fast->Prof,
                       "abort budget " + std::to_string(Budget));

    // Whatever the abort stranded, resetTransient recovers it.
    Fast->Prof.resetTransient();
    ASSERT_TRUE(Fast->Prof.transientClean()) << "budget " << Budget;
  }
}

// A hot-path arm (Tier.PendingRecord) left behind by an aborted run is
// transient hand-off state exactly like a stale shadow stack: it must make
// transientClean() false, resetTransient() must clear it, and a reused
// runtime must count exactly like a fresh one because Interpreter::run
// resets transients up front.
TEST(TraceTierTest, StaleArmDoesNotLeakBetweenBatchRuns) {
  Program P = compileInstrumented(HotLoopSource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{50};

  ProfileRuntime Stale(P.M->numFunctions());
  configure(P, Stale);
  ASSERT_TRUE(Stale.transientClean());
  Stale.Tier.PendingRecord = 0; // simulate an abort between arm and record
  ASSERT_FALSE(Stale.transientClean());
  Stale.resetTransient();
  ASSERT_TRUE(Stale.transientClean());

  // Reused across a stale arm: identical counters to a fresh runtime.
  Stale.Tier.PendingRecord = 0;
  Interpreter IStale(*P.M, &Stale);
  RunResult RS = IStale.run(*P.Main, Args, tracedConfig());
  ASSERT_TRUE(RS.Ok) << RS.Error;
  // A successful run may leave a pending return (main's own IPRet) but
  // never a live recording arm; resetTransient clears the rest.
  ASSERT_LT(Stale.Tier.PendingRecord, 0);
  Stale.resetTransient();
  ASSERT_TRUE(Stale.transientClean());

  auto Fresh = runOnce(P, Args, tracedConfig());
  ASSERT_TRUE(Fresh->Res.Ok);
  EXPECT_EQ(RS.ReturnValue, Fresh->Res.ReturnValue);
  EXPECT_TRUE(RS.Counts == Fresh->Res.Counts);
  expectSameCounters(Stale, Fresh->Prof, "stale arm reuse");

  // clear() wipes the persistent hotness table and blacklist too.
  Stale.Tier.blacklistAnchor(0, 7);
  Stale.clear();
  EXPECT_TRUE(Stale.Tier.Hot.empty());
  EXPECT_TRUE(Stale.Tier.Blacklist.empty());
  EXPECT_TRUE(Stale.transientClean());
}

// Regression: trace-state bleed through the plan cache. Plans are shared
// process-wide by content fingerprint, so traces recorded under one
// --trace-threshold used to survive into later runs of an identical-content
// module with different trace settings. Trace state is now segregated per
// (plan, threshold): a run with tracing disabled must see zero tier
// activity and bit-identical counters even right after a traced run of the
// same content, and a run with a never-reached threshold must not enter
// (or step through) traces recorded at threshold 1.
TEST(TraceTierTest, NoTracesRunAfterTracedRunSeesNoTraceState) {
  // A source unique to this test: the shared plan cache is process-wide,
  // so reusing HotLoopSource would inherit trace state (including retired
  // traces) from earlier tests and make the assertions order-dependent.
  const char *Src = R"(
    global acc;
    fn main(n) {
      var i = 0;
      while (i < n) {
        acc = acc + i * 2 + 1;
        i = i + 1;
      }
      return acc;
    }
  )";
  Program P = compileInstrumented(Src);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{200};

  // Record traces on the shared plan.
  auto Traced = runOnce(P, Args, tracedConfig(/*Threshold=*/1));
  ASSERT_TRUE(Traced->Res.Ok) << Traced->Res.Error;
  ASSERT_GE(Traced->Res.Trace.Recorded, 1u);

  // Same source, fresh compile: identical content, same shared plan.
  Program P2 = compileInstrumented(Src);
  ASSERT_NE(P2.Main, nullptr);
  RunConfig Off = tracedConfig(1);
  Off.EnableTraces = false;
  auto NoTrace = runOnce(P2, Args, Off);
  ASSERT_TRUE(NoTrace->Res.Ok) << NoTrace->Res.Error;
  EXPECT_EQ(NoTrace->Res.Trace.Recorded, 0u);
  EXPECT_EQ(NoTrace->Res.Trace.Enters, 0u);
  EXPECT_EQ(NoTrace->Res.Trace.TraceSteps, 0u);

  auto Ref = runOnce(P2, Args, referenceConfig());
  ASSERT_TRUE(Ref->Res.Ok);
  EXPECT_EQ(Ref->Res.ReturnValue, NoTrace->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == NoTrace->Res.Counts);
  expectSameCounters(Ref->Prof, NoTrace->Prof, "no-traces after traced");
}

TEST(TraceTierTest, DifferentThresholdsNeverShareRecordedTraces) {
  // Unique source, for the same order-independence reason as above.
  const char *Src = R"(
    global acc;
    fn main(n) {
      var i = 0;
      while (i < n) {
        acc = acc + (i ^ 3);
        i = i + 1;
      }
      return acc;
    }
  )";
  Program P = compileInstrumented(Src);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{200};

  auto Hot = runOnce(P, Args, tracedConfig(/*Threshold=*/1));
  ASSERT_TRUE(Hot->Res.Ok) << Hot->Res.Error;
  ASSERT_GE(Hot->Res.Trace.Recorded, 1u);

  // Identical content, but a threshold this short run never reaches: were
  // trace state shared across settings, the lookup at the loop backedge
  // would enter the threshold-1 traces installed above.
  Program P2 = compileInstrumented(Src);
  ASSERT_NE(P2.Main, nullptr);
  auto Cold = runOnce(P2, Args, tracedConfig(/*Threshold=*/1'000'000));
  ASSERT_TRUE(Cold->Res.Ok) << Cold->Res.Error;
  EXPECT_EQ(Cold->Res.Trace.Recorded, 0u);
  EXPECT_EQ(Cold->Res.Trace.Enters, 0u);
  EXPECT_EQ(Cold->Res.Trace.TraceSteps, 0u);

  auto Ref = runOnce(P2, Args, referenceConfig());
  ASSERT_TRUE(Ref->Res.Ok);
  EXPECT_TRUE(Ref->Res.Counts == Cold->Res.Counts);
  expectSameCounters(Ref->Prof, Cold->Prof, "cold threshold after hot");
}

// The artifact-driven warmup skip: seeding the hotness table with persisted
// heat arms recording on the first live completion, where an unseeded
// runtime with the same threshold would still be counting.
TEST(TraceTierTest, SeededHotnessArmsWithoutWarmup) {
  ProfileRuntime Prof(1);
  Prof.Tier.seed(0, 42, 100);
  EXPECT_LT(Prof.Tier.PendingRecord, 0);
  Prof.Tier.noteHot(0, 42, /*Threshold=*/50);
  EXPECT_EQ(Prof.Tier.PendingRecord, 0);

  // Unseeded: the same single completion is far below threshold.
  ProfileRuntime Fresh(1);
  Fresh.Tier.noteHot(0, 42, /*Threshold=*/50);
  EXPECT_LT(Fresh.Tier.PendingRecord, 0);

  // Seeding is idempotent and keeps the larger count.
  Prof.Tier.reset();
  Prof.Tier.seed(0, 7, 10);
  Prof.Tier.seed(0, 7, 3);
  Prof.Tier.noteHot(0, 7, /*Threshold=*/11);
  EXPECT_EQ(Prof.Tier.PendingRecord, 0);
}

// A loop that diverges every 8th iteration. With degree-2 overlap a trace
// pass covers two iterations, so an alternating branch would be a *stable*
// pattern; period 8 is aperiodic at pass granularity and hits the same
// side exit every 4th pass — the canonical bridge shape.
const char *BridgeSource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      if ((i & 7) == 5) {
        acc = acc + i * 2;
      } else {
        acc = acc + 1;
      }
      i = i + 1;
    }
    return acc;
  }
)";

RunConfig bridgedConfig(uint32_t LinkThreshold) {
  RunConfig RC = tracedConfig(/*Threshold=*/1);
  RC.TraceLinkThreshold = LinkThreshold;
  return RC;
}

// Side-exit linking end to end: the hot exit records a bridge, the bridge
// is stitched onto the parent, and later passes chase it back to the
// anchor — all bit-exact against the reference.
TEST(TraceTierTest, HotSideExitLinksBridgeAndStaysBitExact) {
  Program P = compileInstrumented(BridgeSource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{400};

  auto Ref = runOnce(P, Args, referenceConfig());
  auto Fast = runOnce(P, Args, bridgedConfig(/*LinkThreshold=*/1));
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
  ASSERT_TRUE(Fast->Res.Ok) << Fast->Res.Error;

  EXPECT_GE(Fast->Res.Trace.Recorded, 1u);
  EXPECT_GE(Fast->Res.Trace.Bridges, 1u);
  EXPECT_GE(Fast->Res.Trace.BridgeEnters, 1u);

  EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts);
  expectSameCounters(Ref->Prof, Fast->Prof, "bridged run");
}

// --trace-link-threshold 0 disables linking outright: the same workload
// must never compile a bridge or continue into one.
TEST(TraceTierTest, LinkThresholdZeroNeverBridges) {
  // Unique text so the shared plan cache keeps this test order-independent.
  const char *Src = R"(
    global acc;
    fn main(n) {
      var i = 0;
      while (i < n) {
        if ((i & 7) == 6) {
          acc = acc + 7;
        } else {
          acc = acc + i;
        }
        i = i + 1;
      }
      return acc;
    }
  )";
  Program P = compileInstrumented(Src);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{400};

  auto Ref = runOnce(P, Args, referenceConfig());
  auto Fast = runOnce(P, Args, bridgedConfig(/*LinkThreshold=*/0));
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
  ASSERT_TRUE(Fast->Res.Ok) << Fast->Res.Error;
  EXPECT_GE(Fast->Res.Trace.Recorded, 1u);
  EXPECT_EQ(Fast->Res.Trace.Bridges, 0u);
  EXPECT_EQ(Fast->Res.Trace.BridgeEnters, 0u);
  EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts);
  expectSameCounters(Ref->Prof, Fast->Prof, "link threshold 0");
}

// Abort at every fuel budget with bridges linked at threshold 1: budgets
// land before, inside and after bridge segments (including mid-bridge
// recording), and every aborted state must equal the reference abort.
TEST(TraceTierTest, AbortAtEveryBudgetMatchesReferenceWithBridges) {
  // Unique text (same period-8 shape) for plan-cache hygiene.
  const char *Src = R"(
    global acc;
    fn main(n) {
      var i = 0;
      while (i < n) {
        if ((i & 7) == 3) {
          acc = acc + i * 3;
        } else {
          acc = acc + 2;
        }
        i = i + 1;
      }
      return acc;
    }
  )";
  Program P = compileInstrumented(Src);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{24};

  RunConfig Full = bridgedConfig(/*LinkThreshold=*/1);
  Full.MaxSteps = 1'000'000;
  auto FullRun = runOnce(P, Args, Full);
  ASSERT_TRUE(FullRun->Res.Ok) << FullRun->Res.Error;
  ASSERT_GE(FullRun->Res.Trace.Bridges, 1u);
  const uint64_t FullSteps = FullRun->Res.Counts.Steps;
  ASSERT_GT(FullSteps, 10u);

  for (uint64_t Budget = 1; Budget < FullSteps; ++Budget) {
    RunConfig RRef = referenceConfig();
    RRef.MaxSteps = Budget;
    RunConfig RFast = bridgedConfig(/*LinkThreshold=*/1);
    RFast.MaxSteps = Budget;

    auto Ref = runOnce(P, Args, RRef);
    auto Fast = runOnce(P, Args, RFast);
    ASSERT_FALSE(Ref->Res.Ok) << "budget " << Budget;
    ASSERT_FALSE(Fast->Res.Ok) << "budget " << Budget;
    ASSERT_EQ(Ref->Res.Error, Fast->Res.Error) << "budget " << Budget;
    ASSERT_TRUE(Ref->Res.Counts == Fast->Res.Counts) << "budget " << Budget;
    expectSameCounters(Ref->Prof, Fast->Prof,
                       "bridge abort budget " + std::to_string(Budget));
    Fast->Prof.resetTransient();
    ASSERT_TRUE(Fast->Prof.transientClean()) << "budget " << Budget;
  }
}

// --trace-threshold 0 means record on the first completed backedge: the
// very first loop iteration arms, and the run still matches the reference.
TEST(TraceTierTest, ThresholdZeroRecordsOnFirstCompletion) {
  // Unique text for plan-cache hygiene.
  const char *Src = R"(
    global acc;
    fn main(n) {
      var i = 0;
      while (i < n) {
        acc = acc + (i | 5);
        i = i + 1;
      }
      return acc;
    }
  )";
  Program P = compileInstrumented(Src);
  ASSERT_NE(P.Main, nullptr);

  // Two iterations: arm on the first backedge, record on the second.
  auto Tiny = runOnce(P, {3}, tracedConfig(/*Threshold=*/0));
  ASSERT_TRUE(Tiny->Res.Ok) << Tiny->Res.Error;
  EXPECT_GE(Tiny->Res.Trace.Recorded, 1u);

  auto Ref = runOnce(P, {120}, referenceConfig());
  auto Fast = runOnce(P, {120}, tracedConfig(/*Threshold=*/0));
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
  ASSERT_TRUE(Fast->Res.Ok) << Fast->Res.Error;
  EXPECT_GE(Fast->Res.Trace.Enters, 1u);
  EXPECT_EQ(Ref->Res.ReturnValue, Fast->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Fast->Res.Counts);
  expectSameCounters(Ref->Prof, Fast->Prof, "threshold 0");
}

// Deopt-rate-aware DWE gate (RunConfig::TraceDWEGate). The loop body's
// constant temporaries fold away and the orphaned Const writes become
// whole-pass-dead — removed with cyclic Wrap recovery windows — while the
// every-eighth-iteration branch makes each trace enter run ~7 passes and
// then deopt mid-pass (≈100 deopts per 100 enters, with passes well above
// the churn-retirement floor). A gate below that rate must swap the trace
// for its no-DWE alternate; a disarmed gate must not. Both lanes stay
// bit-exact against the reference engine.
const char *WrapDeoptSource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      var t = 3;
      var u = t * 2 + 1;
      if ((i & 7) == 5) {
        acc = acc * 2 + u;
      } else {
        acc = acc + u + i;
      }
      i = i + 1;
    }
    return acc;
  }
)";

RunConfig dweGateConfig(uint32_t Gate) {
  // LinkThreshold 0 keeps the cache single-trace (no bridges), so the
  // deopt rate is a pure property of the branch pattern above.
  RunConfig RC = tracedConfig(/*Threshold=*/1);
  RC.TraceLinkThreshold = 0;
  RC.TraceDWEGate = Gate;
  return RC;
}

TEST(TraceTierTest, DeoptRateGateSwapsWrapDWETraceAndStaysBitExact) {
  Program P = compileInstrumented(WrapDeoptSource);
  ASSERT_NE(P.Main, nullptr);
  // Enough iterations for the gate's RetireCheckEnters minimum (64 enters)
  // at one deopt per ~8 iterations.
  const std::vector<int64_t> Args{1000};

  auto Ref = runOnce(P, Args, referenceConfig());
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;

  // Gate disarmed: the wrap-DWE trace keeps running, nothing is swapped.
  auto Off = runOnce(P, Args, dweGateConfig(/*Gate=*/0));
  ASSERT_TRUE(Off->Res.Ok) << Off->Res.Error;
  ASSERT_GE(Off->Res.Trace.Recorded, 1u);
  EXPECT_EQ(Off->Res.Trace.DWEGated, 0u);
  // The deopt pattern the gate lane relies on: ≈1 deopt per enter.
  ASSERT_GE(Off->Res.Trace.Deopts * 2, Off->Res.Trace.Enters);
  EXPECT_EQ(Ref->Res.ReturnValue, Off->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Off->Res.Counts);
  expectSameCounters(Ref->Prof, Off->Prof, "gate off");

  // Gate below the observed rate: the trace must be swapped exactly once
  // for its no-DWE alternate, with observables still reference-identical.
  auto On = runOnce(P, Args, dweGateConfig(/*Gate=*/50));
  ASSERT_TRUE(On->Res.Ok) << On->Res.Error;
  ASSERT_GE(On->Res.Trace.Recorded, 1u);
  EXPECT_EQ(On->Res.Trace.DWEGated, 1u);
  EXPECT_EQ(Ref->Res.ReturnValue, On->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == On->Res.Counts);
  expectSameCounters(Ref->Prof, On->Prof, "gate on");

  // The swapped-in alternate is what later runs under the same settings
  // execute: a second run sees the already-gated trace and never trips
  // the gate again. (It may still record *other* anchors that only get
  // hot once the first two run as traces — that is ordinary tier
  // behavior, so only the gate counter is pinned here.)
  auto Again = runOnce(P, Args, dweGateConfig(/*Gate=*/50));
  ASSERT_TRUE(Again->Res.Ok) << Again->Res.Error;
  EXPECT_EQ(Again->Res.Trace.DWEGated, 0u);
  EXPECT_GE(Again->Res.Trace.Enters, 1u);
  EXPECT_EQ(Ref->Res.ReturnValue, Again->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Again->Res.Counts);
  expectSameCounters(Ref->Prof, Again->Prof, "gate on, second run");
}

// Concurrent trace installation: many interpreters over one module share
// one ExecPlan (and thus one PlanTraceCache). All of them racing to record
// and install traces for the same anchors must stay data-race-free (the
// tsan lane runs this under ThreadSanitizer) and bit-exact per thread.
TEST(TraceTierConcurrencyTest, ParallelInstallOnSharedPlan) {
  Program P = compileInstrumented(HotLoopSource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{300};

  auto Ref = runOnce(P, Args, referenceConfig());
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;

  constexpr int NumThreads = 4;
  std::vector<std::unique_ptr<Observation>> Obs(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] { Obs[T] = runOnce(P, Args, tracedConfig()); });
  for (auto &Th : Threads)
    Th.join();

  for (int T = 0; T < NumThreads; ++T) {
    ASSERT_TRUE(Obs[T]->Res.Ok) << "thread " << T << ": " << Obs[T]->Res.Error;
    EXPECT_EQ(Ref->Res.ReturnValue, Obs[T]->Res.ReturnValue) << "thread " << T;
    EXPECT_TRUE(Ref->Res.Counts == Obs[T]->Res.Counts) << "thread " << T;
    expectSameCounters(Ref->Prof, Obs[T]->Prof,
                       "thread " + std::to_string(T));
  }
}

} // namespace
