//===--- TraceOptTest.cpp - trace optimizer goldens + properties ----------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The trace optimizer (TraceOpt.cpp) rewrites a CompiledTrace in place:
// constant folding, copy propagation, interval-driven guard elimination,
// linear and cyclic dead-write elimination (with recovery windows), effect
// coalescing and guard pass budgets. Its contract is the same invisibility
// the tier itself promises — bit-identical observables against both the
// reference engine and the unoptimized fast engine.
//
// Three layers of evidence here:
//  - Golden dumps: the exact pre/post optimizer trace bodies of three
//    canonical workloads (fold-heavy, provable-guard, cross-procedure),
//    pinned as full-text goldens so any pipeline change is a visible diff.
//  - Property tests: randomized inputs and a fuel-budget sweep comparing
//    reference vs optimized vs unoptimized runs — deopt states must be
//    bit-exact even when recovery windows (including cyclic Wrap entries)
//    are what reconstructs them.
//  - Feasibility cross-check: statically infeasible path ids in
//    RunConfig::TraceFacts must veto trace installation, never semantics.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "interp/ExecPlan.h"
#include "interp/Interpreter.h"
#include "interp/PlanCache.h"
#include "interp/ProfileRuntime.h"
#include "interp/TraceOpt.h"
#include "interp/TraceTier.h"
#include "profile/Instrumenter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

using namespace olpp;

namespace {

InstrumentOptions fullOpts() {
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  return Opts;
}

struct Program {
  std::unique_ptr<Module> M;
  const Function *Main = nullptr;
  ModuleInstrumentation MI;
};

Program compileInstrumented(const char *Source) {
  Program P;
  CompileResult CR = compileMiniC(Source);
  EXPECT_TRUE(CR.ok()) << CR.diagText();
  if (!CR.ok())
    return P;
  P.M = std::move(CR.M);
  P.MI = instrumentModule(*P.M, fullOpts());
  EXPECT_TRUE(P.MI.ok());
  P.Main = P.M->findFunction("main");
  EXPECT_NE(P.Main, nullptr);
  return P;
}

void configure(const Program &P, ProfileRuntime &Prof) {
  for (uint32_t F = 0; F < P.M->numFunctions(); ++F)
    if (P.MI.Funcs[F].PG)
      Prof.configurePathStore(F, P.MI.Funcs[F].PG->numPaths());
}

void expectSameCounters(const ProfileRuntime &A, const ProfileRuntime &B,
                        const std::string &What) {
  ASSERT_EQ(A.PathCounts.size(), B.PathCounts.size()) << What;
  for (size_t F = 0; F < A.PathCounts.size(); ++F)
    EXPECT_TRUE(A.PathCounts[F] == B.PathCounts[F])
        << What << ": path counters of function " << F;
  EXPECT_TRUE(A.TypeICounts == B.TypeICounts) << What << ": Type I";
  EXPECT_TRUE(A.TypeIICounts == B.TypeIICounts) << What << ": Type II";
}

struct Observation {
  RunResult Res;
  ProfileRuntime Prof;
  explicit Observation(size_t NumFuncs) : Prof(NumFuncs) {}
};

std::unique_ptr<Observation> runOnce(const Program &P,
                                     const std::vector<int64_t> &Args,
                                     const RunConfig &RC) {
  auto Obs = std::make_unique<Observation>(P.M->numFunctions());
  configure(P, Obs->Prof);
  Interpreter I(*P.M, &Obs->Prof);
  Obs->Res = I.run(*P.Main, Args, RC);
  return Obs;
}

/// Fast config that records on the first hot backedge, never links bridges
/// (deterministic single-trace caches), with the optimizer toggled.
RunConfig optConfig(bool Opt) {
  RunConfig RC;
  RC.Engine = EngineKind::Fast;
  RC.EnableTraces = true;
  RC.TraceThreshold = 1;
  RC.TraceLinkThreshold = 0;
  RC.EnableTraceOpt = Opt;
  return RC;
}

RunConfig referenceConfig() {
  RunConfig RC;
  RC.Engine = EngineKind::Reference;
  return RC;
}

/// Dumps the single trace the settings-keyed cache of \p P holds after a
/// run under optConfig(Opt). Plans are shared process-wide, but trace
/// caches are keyed by the full TraceSettings tuple, so the two toggles
/// never see each other's traces.
std::string dumpSingleTrace(const Program &P, bool Opt) {
  auto Plan = ExecPlanCache::global().get(*P.M);
  if (!Plan || !Plan->Traces)
    return "<no plan>";
  const TraceSettings S{1, 0, Opt ? kTraceOptAll : 0u, false};
  PlanTraceCache *TC = Plan->Traces->forSettings(S);
  std::vector<const CompiledTrace *> All = TC->all();
  if (All.size() != 1)
    return "<trace count " + std::to_string(All.size()) + ">";
  return dumpTrace(*All.front());
}

//===----------------------------------------------------------------------===//
// Golden workloads
//===----------------------------------------------------------------------===//

// Fold-heavy loop body: every temporary is a compile-time constant, so the
// optimizer folds the arithmetic into Imm forms and the orphaned Const
// writes become whole-pass-dead (removed with Wrap recovery entries).
const char *FoldSource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      var t = 3;
      var u = t * 2 + 1;
      acc = acc + u + i;
      i = i + 1;
    }
    return acc;
  }
)";

// Provable guard: (i & 7) is in [0, 7] by the AndImm interval, so the
// < 8 compare folds to 1 and the branch guard is eliminated.
const char *GuardSource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      if ((i & 7) < 8) {
        acc = acc + i;
      }
      i = i + 1;
    }
    return acc;
  }
)";

// Cross-procedure trace: the loop calls leaf(), so the trace carries a
// callee frame, interprocedural guards and a Ret — the optimizer must
// leave the call protocol intact while still cleaning the caller body.
const char *CallSource = R"(
  global acc;
  fn leaf(a, b) {
    if (a > b) { return a - b; }
    return b - a;
  }
  fn main(n) {
    var i = 0;
    while (i < n) {
      acc = acc + leaf(i, acc & 255);
      i = i + 1;
    }
    return acc;
  }
)";

const char *FoldPreGolden =
    R"(trace func=0 anchor=4@1 start=4@1 multipass=1 basesteps=20 budgeted=0
guards: 5
  [0] LoopActive slot=0 v=1
  [1] ActiveI slot=0 v=0
  [2] LoopRo slot=0 v=0
  [3] R slot=0 v=0
  [4] LoopOlLt slot=0 v=2
steps: 16
  [0] cmplt r5 r1 r0  @f0:5 b1 base=1
  [1] guardtrue r5  @f0:6 b1 base=2
  [2] const r6 3  @f0:7 b2 base=3
  [3] const r2 3  @f0:8 b2 base=4
  [4] const r7 2  @f0:9 b2 base=5
  [5] const r8 6  @f0:10 b2 base=6
  [6] const r9 1  @f0:11 b2 base=7
  [7] const r10 7  @f0:12 b2 base=8
  [8] const r3 7  @f0:13 b2 base=9
  [9] loadg r11 g0  @f0:14 b2 base=10
  [10] addimm r12 r11 7  @f0:15 b2 base=11
  [11] add r13 r12 r1  @f0:16 b2 base=12
  [12] storeg g0 r13  @f0:17 b2 base=13
  [13] const r14 1  @f0:18 b2 base=14
  [14] addimm r15 r1 1  @f0:19 b2 base=15
  [15] move r1 r15  @f0:20 b2 base=16
effects: 6
  [0] AddLoopOl d=0 slot=0 base=0 v=1
  [1] SetLoopActive d=0 slot=0 base=18 v=0
  [2] SetLoopRo d=0 slot=0 base=18 v=0
  [3] SetLoopOl d=0 slot=0 base=18 v=0
  [4] SetLoopActive d=0 slot=0 base=18 v=1
  [5] SetR d=0 slot=0 base=18 v=0
passeffects: 4
  [0] SetR d=0 slot=0 v=0
  [1] SetLoopRo d=0 slot=0 v=0
  [2] SetLoopOl d=0 slot=0 v=0
  [3] SetLoopActive d=0 slot=0 v=1
bumps: 1
  [0] table=0 func=0 base=18 id=3
recov: 0
)";

const char *FoldPostGolden =
    R"(trace func=0 anchor=4@1 start=4@1 multipass=1 basesteps=20 budgeted=1
guards: 5
  [0] LoopActive slot=0 v=1 budget=inf
  [1] ActiveI slot=0 v=0 budget=inf
  [2] LoopRo slot=0 v=0 budget=inf
  [3] R slot=0 v=0 budget=inf
  [4] LoopOlLt slot=0 v=2 budget=inf
steps: 8
  [0] cmplt r5 r1 r0  @f0:5 b1 base=1
  [1] guardtrue r5  @f0:6 b1 base=2
  [2] loadg r11 g0  @f0:14 b2 base=10
  [3] addimm r12 r11 7  @f0:15 b2 base=11
  [4] add r13 r12 r1  @f0:16 b2 base=12
  [5] storeg g0 r13  @f0:17 b2 base=13
  [6] addimm r15 r1 1  @f0:19 b2 base=15
  [7] move r1 r15  @f0:20 b2 base=16
effects: 5
  [0] AddLoopOl d=0 slot=0 base=0 v=1
  [1] SetLoopActive d=0 slot=0 base=18 v=1
  [2] SetLoopRo d=0 slot=0 base=18 v=0
  [3] SetLoopOl d=0 slot=0 base=18 v=0
  [4] SetR d=0 slot=0 base=18 v=0
passeffects: 4
  [0] SetR d=0 slot=0 v=0
  [1] SetLoopRo d=0 slot=0 v=0
  [2] SetLoopOl d=0 slot=0 v=0
  [3] SetLoopActive d=0 slot=0 v=1
bumps: 1
  [0] table=0 func=0 base=18 id=3
recov: 16
  [0] [0,5] wrap r14 = 1
  [1] [0,1] wrap r3 = 7
  [2] [0,1] wrap r10 = 7
  [3] [0,1] wrap r9 = 1
  [4] [0,1] wrap r8 = 6
  [5] [0,1] wrap r7 = 2
  [6] [0,1] wrap r2 = 3
  [7] [0,1] wrap r6 = 3
  [8] [2,7] r3 = 7
  [9] [2,7] r10 = 7
  [10] [2,7] r9 = 1
  [11] [2,7] r8 = 6
  [12] [2,7] r7 = 2
  [13] [2,7] r2 = 3
  [14] [2,7] r6 = 3
  [15] [6,7] r14 = 1
)";

const char *GuardPreGolden =
    R"(trace func=0 anchor=4@1 start=4@1 multipass=1 basesteps=20 budgeted=0
guards: 5
  [0] LoopActive slot=0 v=1
  [1] ActiveI slot=0 v=0
  [2] LoopRo slot=0 v=-3
  [3] R slot=0 v=0
  [4] LoopOlLt slot=0 v=1
steps: 13
  [0] cmplt r3 r1 r0  @f0:5 b1 base=1
  [1] guardtrue r3  @f0:6 b1 base=2
  [2] const r4 7  @f0:8 b2 base=4
  [3] andimm r5 r1 7  @f0:9 b2 base=5
  [4] const r6 8  @f0:10 b2 base=6
  [5] cmpltimm r7 r5 8  @f0:11 b2 base=7
  [6] guardtrue r7  @f0:12 b2 base=8
  [7] loadg r8 g0  @f0:19 b5 base=9
  [8] add r9 r8 r1  @f0:20 b5 base=10
  [9] storeg g0 r9  @f0:21 b5 base=11
  [10] const r10 1  @f0:24 b6 base=14
  [11] addimm r11 r1 1  @f0:25 b6 base=15
  [12] move r1 r11  @f0:26 b6 base=16
effects: 9
  [0] AddLoopOl d=0 slot=0 base=0 v=1
  [1] AddLoopOl d=0 slot=0 base=3 v=1
  [2] AddR d=0 slot=0 base=12 v=-3
  [3] AddLoopRo d=0 slot=0 base=12 v=-1
  [4] SetLoopActive d=0 slot=0 base=18 v=0
  [5] SetLoopRo d=0 slot=0 base=18 v=-3
  [6] SetLoopOl d=0 slot=0 base=18 v=0
  [7] SetLoopActive d=0 slot=0 base=18 v=1
  [8] SetR d=0 slot=0 base=18 v=0
passeffects: 4
  [0] SetR d=0 slot=0 v=0
  [1] SetLoopRo d=0 slot=0 v=-3
  [2] SetLoopOl d=0 slot=0 v=0
  [3] SetLoopActive d=0 slot=0 v=1
bumps: 1
  [0] table=0 func=0 base=18 id=7
recov: 0
)";

const char *GuardPostGolden =
    R"(trace func=0 anchor=4@1 start=4@1 multipass=1 basesteps=20 budgeted=1
guards: 5
  [0] LoopActive slot=0 v=1 budget=inf
  [1] ActiveI slot=0 v=0 budget=inf
  [2] LoopRo slot=0 v=-3 budget=inf
  [3] R slot=0 v=0 budget=inf
  [4] LoopOlLt slot=0 v=1 budget=inf
steps: 8
  [0] cmplt r3 r1 r0  @f0:5 b1 base=1
  [1] guardtrue r3  @f0:6 b1 base=2
  [2] andimm r5 r1 7  @f0:9 b2 base=5
  [3] loadg r8 g0  @f0:19 b5 base=9
  [4] add r9 r8 r1  @f0:20 b5 base=10
  [5] storeg g0 r9  @f0:21 b5 base=11
  [6] addimm r11 r1 1  @f0:25 b6 base=15
  [7] move r1 r11  @f0:26 b6 base=16
effects: 8
  [0] AddLoopOl d=0 slot=0 base=0 v=1
  [1] AddLoopOl d=0 slot=0 base=3 v=1
  [2] AddR d=0 slot=0 base=12 v=-3
  [3] AddLoopRo d=0 slot=0 base=12 v=-1
  [4] SetLoopActive d=0 slot=0 base=18 v=1
  [5] SetLoopRo d=0 slot=0 base=18 v=-3
  [6] SetLoopOl d=0 slot=0 base=18 v=0
  [7] SetR d=0 slot=0 base=18 v=0
passeffects: 4
  [0] SetR d=0 slot=0 v=0
  [1] SetLoopRo d=0 slot=0 v=-3
  [2] SetLoopOl d=0 slot=0 v=0
  [3] SetLoopActive d=0 slot=0 v=1
bumps: 1
  [0] table=0 func=0 base=18 id=7
recov: 8
  [0] [0,5] wrap r10 = 1
  [1] [0,2] wrap r7 = 1
  [2] [0,2] wrap r6 = 8
  [3] [0,1] wrap r4 = 7
  [4] [2,7] r4 = 7
  [5] [3,7] r7 = 1
  [6] [3,7] r6 = 8
  [7] [6,7] r10 = 1
)";

const char *CallPreGolden =
    R"(trace func=1 anchor=15@3 start=15@3 multipass=1 basesteps=25 budgeted=0
guards: 7
  [0] ActiveII slot=0 v=1
  [1] CallSiteII slot=0 v=0
  [2] CalleeII slot=0 v=0
  [3] CalleePathII slot=0 v=0
  [4] RoII slot=0 v=0
  [5] R slot=0 v=0
  [6] ActiveI slot=0 v=0
steps: 16
  [0] cmplt r3 r1 r0  @f1:5 b1 base=3
  [1] guardtrue r3  @f1:6 b1 base=4
  [2] loadg r4 g0  @f1:7 b2 base=5
  [3] loadg r5 g0  @f1:8 b2 base=6
  [4] const r6 255  @f1:9 b2 base=7
  [5] andimm r7 r5 255  @f1:10 b2 base=8
  [6] call r8 f0 ( r1 r7 )  @f1:12 b2 base=10
  [7] cmpgt r2 r0 r1  @f0:1 b0 base=12
  [8] guardtrue r2  @f0:2 b0 base=13
  [9] sub r3 r0 r1  @f0:3 b1 base=14
  [10] ret r3  @f0:5 b1 base=16
  [11] add r9 r4 r8  @f1:21 b5 base=19
  [12] storeg g0 r9  @f1:22 b5 base=20
  [13] const r10 1  @f1:23 b5 base=21
  [14] addimm r11 r1 1  @f1:24 b5 base=22
  [15] move r1 r11  @f1:25 b5 base=23
effects: 27
  [0] SetActiveII d=0 slot=0 base=0 v=0
  [1] SetLoopRo d=0 slot=0 base=0 v=0
  [2] SetLoopOl d=0 slot=0 base=0 v=0
  [3] SetLoopActive d=0 slot=0 base=0 v=1
  [4] SetR d=0 slot=0 base=0 v=0
  [5] SetLoopOl d=0 slot=0 base=2 v=1
  [6] SetLoopActive d=0 slot=0 base=9 v=0
  [7] ShadowPush d=0 slot=0 base=9 v=2
  [8] SetR d=1 slot=0 base=11 v=0
  [9] SetRI d=1 slot=0 base=11 v=0
  [10] SetOlI d=1 slot=0 base=11 v=0
  [11] SetCallSiteI d=1 slot=0 base=11 v=0
  [12] SetCallerPre d=1 slot=0 base=11 v=2
  [13] SetActiveI d=1 slot=0 base=11 v=1
  [14] SetHaveCaller d=1 slot=0 base=11 v=1
  [15] SetOlI d=1 slot=0 base=11 v=1
  [16] SetActiveI d=1 slot=0 base=15 v=0
  [17] PendingSet d=0 slot=0 base=15 v=0
  [18] ShadowPop d=0 slot=0 base=15 v=0
  [19] SetR d=0 slot=0 base=17 v=0
  [20] SetActiveII d=0 slot=0 base=17 v=1
  [21] SetCalleeII d=0 slot=0 base=17 v=0
  [22] SetCalleePathII d=0 slot=0 base=17 v=0
  [23] SetCallSiteII d=0 slot=0 base=17 v=0
  [24] SetRoII d=0 slot=0 base=17 v=0
  [25] SetOlII d=0 slot=0 base=17 v=0
  [26] PendingClear d=0 slot=0 base=17 v=0
passeffects: 11
  [0] SetR d=0 slot=0 v=0
  [1] SetRoII d=0 slot=0 v=0
  [2] SetOlII d=0 slot=0 v=0
  [3] SetCalleePathII d=0 slot=0 v=0
  [4] SetActiveII d=0 slot=0 v=1
  [5] SetCallSiteII d=0 slot=0 v=0
  [6] SetCalleeII d=0 slot=0 v=0
  [7] SetLoopRo d=0 slot=0 v=0
  [8] SetLoopOl d=0 slot=0 v=1
  [9] SetLoopActive d=0 slot=0 v=0
  [10] PendingClear d=0 slot=0 v=0
bumps: 5
  [0] table=2 func=0 base=0 id=0
  [1] table=0 func=1 base=9 id=4
  [2] table=0 func=1 base=9 id=2
  [3] table=1 func=0 base=15 id=0
  [4] table=0 func=0 base=15 id=0
recov: 0
)";

const char *CallPostGolden =
    R"(trace func=1 anchor=15@3 start=15@3 multipass=1 basesteps=25 budgeted=1
guards: 7
  [0] ActiveII slot=0 v=1 budget=inf
  [1] CallSiteII slot=0 v=0 budget=inf
  [2] CalleeII slot=0 v=0 budget=inf
  [3] CalleePathII slot=0 v=0 budget=inf
  [4] RoII slot=0 v=0 budget=inf
  [5] R slot=0 v=0 budget=inf
  [6] ActiveI slot=0 v=0 budget=inf
steps: 14
  [0] cmplt r3 r1 r0  @f1:5 b1 base=3
  [1] guardtrue r3  @f1:6 b1 base=4
  [2] loadg r4 g0  @f1:7 b2 base=5
  [3] loadg r5 g0  @f1:8 b2 base=6
  [4] andimm r7 r5 255  @f1:10 b2 base=8
  [5] call r8 f0 ( r1 r7 )  @f1:12 b2 base=10
  [6] cmpgt r2 r0 r1  @f0:1 b0 base=12
  [7] guardtrue r2  @f0:2 b0 base=13
  [8] sub r3 r0 r1  @f0:3 b1 base=14
  [9] ret r3  @f0:5 b1 base=16
  [10] add r9 r4 r8  @f1:21 b5 base=19
  [11] storeg g0 r9  @f1:22 b5 base=20
  [12] addimm r11 r1 1  @f1:24 b5 base=22
  [13] move r1 r11  @f1:25 b5 base=23
effects: 26
  [0] SetActiveII d=0 slot=0 base=0 v=0
  [1] SetLoopRo d=0 slot=0 base=0 v=0
  [2] SetLoopOl d=0 slot=0 base=0 v=0
  [3] SetLoopActive d=0 slot=0 base=0 v=1
  [4] SetR d=0 slot=0 base=0 v=0
  [5] SetLoopOl d=0 slot=0 base=2 v=1
  [6] SetLoopActive d=0 slot=0 base=9 v=0
  [7] ShadowPush d=0 slot=0 base=9 v=2
  [8] SetR d=1 slot=0 base=11 v=0
  [9] SetRI d=1 slot=0 base=11 v=0
  [10] SetOlI d=1 slot=0 base=11 v=1
  [11] SetCallSiteI d=1 slot=0 base=11 v=0
  [12] SetCallerPre d=1 slot=0 base=11 v=2
  [13] SetActiveI d=1 slot=0 base=11 v=1
  [14] SetHaveCaller d=1 slot=0 base=11 v=1
  [15] SetActiveI d=1 slot=0 base=15 v=0
  [16] PendingSet d=0 slot=0 base=15 v=0
  [17] ShadowPop d=0 slot=0 base=15 v=0
  [18] SetR d=0 slot=0 base=17 v=0
  [19] SetActiveII d=0 slot=0 base=17 v=1
  [20] SetCalleeII d=0 slot=0 base=17 v=0
  [21] SetCalleePathII d=0 slot=0 base=17 v=0
  [22] SetCallSiteII d=0 slot=0 base=17 v=0
  [23] SetRoII d=0 slot=0 base=17 v=0
  [24] SetOlII d=0 slot=0 base=17 v=0
  [25] PendingClear d=0 slot=0 base=17 v=0
passeffects: 11
  [0] SetR d=0 slot=0 v=0
  [1] SetRoII d=0 slot=0 v=0
  [2] SetOlII d=0 slot=0 v=0
  [3] SetCalleePathII d=0 slot=0 v=0
  [4] SetActiveII d=0 slot=0 v=1
  [5] SetCallSiteII d=0 slot=0 v=0
  [6] SetCalleeII d=0 slot=0 v=0
  [7] SetLoopRo d=0 slot=0 v=0
  [8] SetLoopOl d=0 slot=0 v=1
  [9] SetLoopActive d=0 slot=0 v=0
  [10] PendingClear d=0 slot=0 v=0
bumps: 5
  [0] table=2 func=0 base=0 id=0
  [1] table=0 func=1 base=9 id=4
  [2] table=0 func=1 base=9 id=2
  [3] table=1 func=0 base=15 id=0
  [4] table=0 func=0 base=15 id=0
recov: 4
  [0] [0,11] wrap r10 = 1
  [1] [0,3] wrap r6 = 255
  [2] [4,13] r6 = 255
  [3] [12,13] r10 = 1
)";

/// Runs one golden workload both ways, checks bit-exactness against the
/// reference, and pins the pre/post dump text.
void goldenCase(const char *Source, const char *PreGolden,
                const char *PostGolden, const char *What) {
  Program P = compileInstrumented(Source);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{40};

  auto Ref = runOnce(P, Args, referenceConfig());
  auto Pre = runOnce(P, Args, optConfig(false));
  auto Post = runOnce(P, Args, optConfig(true));
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
  ASSERT_TRUE(Pre->Res.Ok) << Pre->Res.Error;
  ASSERT_TRUE(Post->Res.Ok) << Post->Res.Error;

  EXPECT_EQ(Ref->Res.ReturnValue, Pre->Res.ReturnValue) << What;
  EXPECT_EQ(Ref->Res.ReturnValue, Post->Res.ReturnValue) << What;
  EXPECT_TRUE(Ref->Res.Counts == Pre->Res.Counts) << What;
  EXPECT_TRUE(Ref->Res.Counts == Post->Res.Counts) << What;
  expectSameCounters(Ref->Prof, Pre->Prof, std::string(What) + " pre");
  expectSameCounters(Ref->Prof, Post->Prof, std::string(What) + " post");

  EXPECT_EQ(PreGolden, dumpSingleTrace(P, false)) << What << " pre dump";
  EXPECT_EQ(PostGolden, dumpSingleTrace(P, true)) << What << " post dump";
}

TEST(TraceOptTest, GoldenFoldWorkload) {
  goldenCase(FoldSource, FoldPreGolden, FoldPostGolden, "fold");
}

TEST(TraceOptTest, GoldenGuardWorkload) {
  goldenCase(GuardSource, GuardPreGolden, GuardPostGolden, "guard");
}

TEST(TraceOptTest, GoldenCallWorkload) {
  goldenCase(CallSource, CallPreGolden, CallPostGolden, "call");
}

//===----------------------------------------------------------------------===//
// Property tests
//===----------------------------------------------------------------------===//

// Fold-heavy body *and* a data-dependent branch: the steady-state trace
// carries cyclically-removed Const writes whose values the other branch
// reads after a deopt — exactly the state the Wrap recovery entries and
// the clean-exit materialization must reconstruct.
const char *PropertySource = R"(
  global acc;
  fn main(n, d) {
    var i = 0;
    while (i < n) {
      var t = 5;
      var u = t * 4 + 2;
      var w = 9;
      if (i == d) {
        acc = acc * 3 + u + w;
      } else {
        acc = acc + i + u;
      }
      i = i + 1;
    }
    return acc;
  }
)";

/// xorshift-style deterministic input generator (no libc rand).
uint64_t nextRand(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

TEST(TraceOptTest, RandomizedInputsMatchReferenceAndUnoptimized) {
  Program P = compileInstrumented(PropertySource);
  ASSERT_NE(P.Main, nullptr);

  uint64_t Seed = 0x9e3779b97f4a7c15ull;
  bool SawDeopt = false;
  for (int Case = 0; Case < 48; ++Case) {
    const int64_t N = 2 + static_cast<int64_t>(nextRand(Seed) % 70);
    // Half the cases diverge mid-loop (deopt from the optimized body),
    // half never diverge (clean multi-pass exit).
    const int64_t D = static_cast<int64_t>(nextRand(Seed) % (2 * N)) - N / 2;
    const std::vector<int64_t> Args{N, D};

    auto Ref = runOnce(P, Args, referenceConfig());
    auto Opt = runOnce(P, Args, optConfig(true));
    auto NoOpt = runOnce(P, Args, optConfig(false));
    ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;
    ASSERT_TRUE(Opt->Res.Ok) << "case " << Case << ": " << Opt->Res.Error;
    ASSERT_TRUE(NoOpt->Res.Ok) << "case " << Case << ": " << NoOpt->Res.Error;

    const std::string What = "case " + std::to_string(Case) + " n=" +
                             std::to_string(N) + " d=" + std::to_string(D);
    EXPECT_EQ(Ref->Res.ReturnValue, Opt->Res.ReturnValue) << What;
    EXPECT_EQ(Ref->Res.ReturnValue, NoOpt->Res.ReturnValue) << What;
    EXPECT_TRUE(Ref->Res.Counts == Opt->Res.Counts) << What;
    EXPECT_TRUE(Ref->Res.Counts == NoOpt->Res.Counts) << What;
    expectSameCounters(Ref->Prof, Opt->Prof, What + " opt");
    expectSameCounters(Ref->Prof, NoOpt->Prof, What + " noopt");
    SawDeopt |= Opt->Res.Trace.Deopts > 0;
  }
  // The sweep must actually exercise the deopt-restore path.
  EXPECT_TRUE(SawDeopt);

  // The optimizer must have engaged: an installed trace carries cyclic
  // Wrap recovery entries for the folded-away constants. (The sweep's many
  // divergence patterns can retire and re-record, so scan every trace.)
  auto Plan = ExecPlanCache::global().get(*P.M);
  ASSERT_TRUE(Plan && Plan->Traces);
  PlanTraceCache *TC =
      Plan->Traces->forSettings(TraceSettings{1, 0, kTraceOptAll, false});
  bool SawWrap = false;
  for (const CompiledTrace *T : TC->all())
    SawWrap |= dumpTrace(*T).find(" wrap ") != std::string::npos;
  EXPECT_TRUE(SawWrap);
}

// Fuel-abort sweep over the property program: every budget lands the abort
// at a different trace step, so the Wrap windows (value from the previous
// pass) and linear windows (value from this pass) are both what makes the
// aborted state bit-exact.
TEST(TraceOptTest, AbortAtEveryBudgetBitExactUnderOptimizer) {
  Program P = compileInstrumented(PropertySource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{30, 17};

  RunConfig Full = optConfig(true);
  Full.MaxSteps = 1'000'000;
  auto FullRun = runOnce(P, Args, Full);
  ASSERT_TRUE(FullRun->Res.Ok) << FullRun->Res.Error;
  ASSERT_GE(FullRun->Res.Trace.Recorded, 1u);
  const uint64_t FullSteps = FullRun->Res.Counts.Steps;
  ASSERT_GT(FullSteps, 10u);

  for (uint64_t Budget = 1; Budget < FullSteps; ++Budget) {
    RunConfig RRef = referenceConfig();
    RRef.MaxSteps = Budget;
    RunConfig ROpt = optConfig(true);
    ROpt.MaxSteps = Budget;

    auto Ref = runOnce(P, Args, RRef);
    auto Opt = runOnce(P, Args, ROpt);
    ASSERT_FALSE(Ref->Res.Ok) << "budget " << Budget;
    ASSERT_FALSE(Opt->Res.Ok) << "budget " << Budget;
    ASSERT_EQ(Ref->Res.Error, Opt->Res.Error) << "budget " << Budget;
    ASSERT_TRUE(Ref->Res.Counts == Opt->Res.Counts) << "budget " << Budget;
    expectSameCounters(Ref->Prof, Opt->Prof,
                       "abort budget " + std::to_string(Budget));
  }
}

//===----------------------------------------------------------------------===//
// Feasibility cross-check
//===----------------------------------------------------------------------===//

// Same shape as the golden fold program, fresh text so the process-wide
// plan cache gives this test its own plan (and thus trace caches).
const char *FeasibilitySource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      var t = 11;
      acc = acc + t + i;
      i = i + 1;
    }
    return acc;
  }
)";

TEST(TraceOptTest, InfeasibleFactsVetoTracesWithoutChangingSemantics) {
  Program P = compileInstrumented(FeasibilitySource);
  ASSERT_NE(P.Main, nullptr);
  const std::vector<int64_t> Args{50};

  auto Ref = runOnce(P, Args, referenceConfig());
  ASSERT_TRUE(Ref->Res.Ok) << Ref->Res.Error;

  // Facts marking every path id infeasible: the cross-check must reject
  // each compiled trace (a deliberately-poisoned oracle), leaving zero
  // trace executions but bit-identical behavior.
  TraceFeasibilityFacts Poison;
  for (uint32_t F = 0; F < P.M->numFunctions(); ++F)
    Poison.PerFunc.push_back(
        {F, {{0, std::numeric_limits<int64_t>::max()}}});

  RunConfig RC = optConfig(true);
  RC.TraceFacts = &Poison;
  auto Vetoed = runOnce(P, Args, RC);
  ASSERT_TRUE(Vetoed->Res.Ok) << Vetoed->Res.Error;
  EXPECT_EQ(Vetoed->Res.Trace.Enters, 0u);
  EXPECT_EQ(Ref->Res.ReturnValue, Vetoed->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Vetoed->Res.Counts);
  expectSameCounters(Ref->Prof, Vetoed->Prof, "vetoed");

  // Empty facts (nothing infeasible) must not veto anything.
  TraceFeasibilityFacts Empty;
  RunConfig RC2 = optConfig(true);
  RC2.TraceFacts = &Empty;
  auto Clean = runOnce(P, Args, RC2);
  ASSERT_TRUE(Clean->Res.Ok) << Clean->Res.Error;
  EXPECT_GE(Clean->Res.Trace.Enters, 1u);
  EXPECT_EQ(Ref->Res.ReturnValue, Clean->Res.ReturnValue);
  EXPECT_TRUE(Ref->Res.Counts == Clean->Res.Counts);
  expectSameCounters(Ref->Prof, Clean->Prof, "clean facts");
}

} // namespace
