//===--- ProfdataSmokeTest.cpp - artifacts through the real pipeline ------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The persistent-artifact subsystem against real profiled runs: for a slice
// of the workload suite, run the full pipeline under full instrumentation,
// snapshot the runtime into an artifact, push it through serialize / checked
// read / bind / report, and require the decoded counters to drive the
// interval solver to exactly the bounds the live runtime produced. Then
// merge artifacts from different inputs of the same workload and check the
// totals are the counter sums.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "profdata/Merge.h"
#include "profdata/ProfData.h"
#include "profdata/Report.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

/// Loop-heavy, call-heavy, and mixed representatives; the whole suite runs
/// in the bench harness, three are enough for the smoke lane.
const char *SmokeWorkloads[] = {"li", "vortex", "twolf"};

PipelineConfig fullConfig(std::vector<int64_t> Args) {
  PipelineConfig C;
  C.Instr.LoopOverlap = true;
  C.Instr.LoopDegree = 2;
  C.Instr.Interproc = true;
  C.Instr.InterprocDegree = 2;
  C.Args = std::move(Args);
  return C;
}

ProfileArtifact artifactOf(const PipelineResult &R, const std::string &Name) {
  RunMeta Meta;
  Meta.Workload = Name;
  Meta.Instr = R.MI.Opts;
  Meta.Runs = 1;
  Meta.DynInstrCost = R.InstrCounts.Steps;
  Meta.TimestampUnix = 1700000000;
  return ProfileArtifact::fromRuntime(*R.BaseModule, R.MI, *R.Prof, Meta);
}

TEST(ProfdataSmoke, RoundTripPreservesSolverBounds) {
  for (const char *Name : SmokeWorkloads) {
    const Workload *W = findWorkload(Name);
    ASSERT_NE(W, nullptr) << Name;
    CompileResult CR = compileMiniC(W->Source);
    ASSERT_TRUE(CR.ok()) << Name << ":\n" << CR.diagText();
    PipelineResult R = runPipeline(*CR.M, fullConfig(W->PrecisionArgs));
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Errors[0];

    ProfileArtifact Art = artifactOf(R, Name);
    EXPECT_GT(Art.numRecords(), 0u) << Name;
    EXPECT_GT(Art.totalPathCount(), 0u) << Name;

    // Serialize -> checked read must be lossless.
    std::string Bytes = serializeProfileArtifact(Art);
    ProfileArtifact Back;
    std::vector<Diagnostic> Diags;
    ASSERT_TRUE(readProfileArtifactBytes(Bytes, Back, Diags))
        << Name << ": "
        << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
    std::string FirstDiff;
    ASSERT_TRUE(artifactsEqual(Art, Back, &FirstDiff)) << Name << ": "
                                                       << FirstDiff;

    // The live runtime's bounds...
    ModuleEstimator Live(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics ML = Live.estimateAll(&R.GT);
    EXPECT_FALSE(ML.SoundnessViolated) << Name;

    // ...must survive the decode: bind the decoded artifact back to a
    // pristine compile and re-run the solver over its counters.
    ArtifactBinding B;
    Diags.clear();
    ASSERT_TRUE(bindArtifactToModule(*R.BaseModule, Back, B, Diags))
        << Name << ": "
        << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
    ModuleEstimator Decoded(*B.InstrModule, B.MI, Back.Counters);
    EstimateMetrics MD = Decoded.estimateAll(&R.GT);
    EXPECT_EQ(MD.Definite, ML.Definite) << Name;
    EXPECT_EQ(MD.Potential, ML.Potential) << Name;
    EXPECT_EQ(MD.Real, ML.Real) << Name;
    EXPECT_EQ(MD.ExactPairs, ML.ExactPairs) << Name;

    // The reporting layer must render both forms without choking.
    ReportOptions RO;
    EXPECT_FALSE(renderArtifactReport(Back, &B, RO).empty()) << Name;
    RO.Json = true;
    EXPECT_FALSE(renderArtifactReport(Back, &B, RO).empty()) << Name;
    EXPECT_FALSE(renderArtifactJson(Back).empty()) << Name;
  }
}

TEST(ProfdataSmoke, MergeAcrossInputsSumsCounters) {
  const Workload *W = findWorkload("li");
  ASSERT_NE(W, nullptr);
  CompileResult CR = compileMiniC(W->Source);
  ASSERT_TRUE(CR.ok()) << CR.diagText();

  // The same program profiled on three different inputs.
  std::vector<std::vector<int64_t>> Inputs = {{2, 7}, {3, 5}, {5, 11}};
  std::vector<ProfileArtifact> Arts;
  uint64_t TotalFlow = 0;
  for (const auto &Args : Inputs) {
    PipelineResult R = runPipeline(*CR.M, fullConfig(Args));
    ASSERT_TRUE(R.ok()) << R.Errors[0];
    Arts.push_back(artifactOf(R, W->Name));
    TotalFlow += Arts.back().totalPathCount();
  }

  ProfileArtifact Acc = makeEmptyLike(Arts[0]);
  for (const ProfileArtifact &A : Arts) {
    std::vector<Diagnostic> Diags;
    ASSERT_TRUE(mergeArtifacts(Acc, A, Diags))
        << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());
  }
  EXPECT_EQ(Acc.totalPathCount(), TotalFlow);
  EXPECT_EQ(Acc.Meta.Runs, static_cast<uint64_t>(Inputs.size()));

  // The merged artifact is still a well-formed .olpp file.
  std::string Bytes = serializeProfileArtifact(Acc);
  ProfileArtifact Back;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(readProfileArtifactBytes(Bytes, Back, Diags));
  std::string FirstDiff;
  EXPECT_TRUE(artifactsEqual(Acc, Back, &FirstDiff)) << FirstDiff;

  // And the diff report between two inputs renders in both modes.
  DiffOptions DO;
  EXPECT_FALSE(
      renderArtifactDiff(Arts[0], Arts[1], "a.olpp", "b.olpp", DO).empty());
  DO.Json = true;
  EXPECT_FALSE(
      renderArtifactDiff(Arts[0], Arts[1], "a.olpp", "b.olpp", DO).empty());
}

} // namespace
