//===--- ExactnessPropertyTest.cpp - randomized system-level properties -------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The master property suite: for seeded random programs,
//   (a) instrumentation exactness — raw counters equal the counters
//       recomputed by definition from the control-flow trace,
//   (b) estimator soundness — every interesting path's real frequency lies
//       within the derived bounds,
//   (c) monotonicity — bounds only tighten as the overlap degree grows,
//   (d) exactness at saturation — with the degree at its maximum, loop
//       bounds collapse onto the real frequencies.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "workloads/Generator.h"
#include "wpp/ExpectedCounters.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace olpp;

namespace {

struct Case {
  uint64_t Seed;
  bool AllowCalls;
};

class ExactnessProperty : public ::testing::TestWithParam<Case> {};

PipelineConfig makeConfig(const InstrumentOptions &O, int64_t A, int64_t B) {
  PipelineConfig C;
  C.Instr = O;
  C.Args = {A, B};
  C.Run.MaxSteps = 20'000'000;
  return C;
}

void checkCountersMatch(const PipelineResult &R, const std::string &What) {
  ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
  for (uint32_t F = 0; F < R.Prof->PathCounts.size(); ++F)
    ASSERT_EQ(R.Prof->PathCounts[F], EC.PathCounts[F])
        << What << ": path counters differ in function " << F;
  ASSERT_EQ(R.Prof->TypeICounts, EC.TypeICounts) << What;
  ASSERT_EQ(R.Prof->TypeIICounts, EC.TypeIICounts) << What;
}

} // namespace

TEST_P(ExactnessProperty, CountersAndBounds) {
  Case C = GetParam();
  GeneratorOptions GO;
  GO.Seed = C.Seed;
  GO.AllowCalls = C.AllowCalls;
  GO.NumFunctions = C.AllowCalls ? 3 : 0;
  GO.MaxLoopIters = 5;
  GO.MaxStmtsPerBlock = 4;
  std::string Source = generateProgram(GO);

  CompileResult CR = compileMiniC(Source);
  ASSERT_TRUE(CR.ok()) << "seed " << C.Seed << "\n"
                       << CR.diagText() << Source;

  // Nested bounded loops combined with call fan-out can still multiply into
  // billions of finite steps; such seeds prove nothing about profiling, so
  // skip them rather than masking them with a huge fuel budget.
  {
    PipelineConfig Probe = makeConfig(InstrumentOptions(), 5, 9);
    Probe.CollectGroundTruth = false;
    PipelineResult R = runPipeline(*CR.M, Probe);
    if (!R.ok() && R.Errors[0].find("fuel exhausted") != std::string::npos)
      GTEST_SKIP() << "seed " << C.Seed << " exceeds the step budget";
    ASSERT_TRUE(R.ok()) << "seed " << C.Seed << ": " << R.Errors[0];
  }

  // Plain BL.
  {
    InstrumentOptions O;
    PipelineResult R = runPipeline(*CR.M, makeConfig(O, 5, 9));
    ASSERT_TRUE(R.ok()) << "seed " << C.Seed << ": " << R.Errors[0];
    checkCountersMatch(R, "plain BL seed " + std::to_string(C.Seed));
    ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics Met = Est.estimateLoops(&R.GT);
    EXPECT_FALSE(Met.SoundnessViolated) << "seed " << C.Seed;
    EXPECT_LE(Met.Definite, Met.Real);
    EXPECT_GE(Met.Potential, Met.Real);
  }

  // Loop overlap at increasing degrees: exactness + monotone tightening.
  // The final sweep point saturates every loop's maximum degree, where the
  // bounds must collapse onto the real frequencies.
  DegreeLimits Lim = computeDegreeLimits(*CR.M, /*CallBreaking=*/false);
  uint32_t KMax = std::min(Lim.MaxLoopDegree, 48u);
  uint64_t PrevDefinite = 0;
  uint64_t PrevPotential = UINT64_MAX;
  uint32_t PrevK = 0;
  bool First = true;
  for (uint32_t K : {0u, 1u, 2u, 4u, 8u, KMax}) {
    if (!First && K < PrevK)
      continue; // KMax may be small; keep the sweep non-decreasing
    PrevK = K;
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = K;
    PipelineResult R = runPipeline(*CR.M, makeConfig(O, 5, 9));
    ASSERT_TRUE(R.ok()) << "seed " << C.Seed << " k=" << K << ": "
                        << R.Errors[0];
    checkCountersMatch(R, "overlap k=" + std::to_string(K) + " seed " +
                              std::to_string(C.Seed));
    ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics Met = Est.estimateLoops(&R.GT);
    EXPECT_FALSE(Met.SoundnessViolated) << "seed " << C.Seed << " k=" << K;
    EXPECT_LE(Met.Definite, Met.Real) << "k=" << K;
    EXPECT_GE(Met.Potential, Met.Real) << "k=" << K;
    if (!First) {
      EXPECT_GE(Met.Definite, PrevDefinite) << "k=" << K;
      EXPECT_LE(Met.Potential, PrevPotential) << "k=" << K;
    }
    First = false;
    PrevDefinite = Met.Definite;
    PrevPotential = Met.Potential;
    if (K >= KMax && Lim.MaxLoopDegree <= 48) {
      // Degree at (or beyond) every loop's maximum: bounds must be exact.
      EXPECT_EQ(Met.Definite, Met.Real) << "seed " << C.Seed;
      EXPECT_EQ(Met.Potential, Met.Real) << "seed " << C.Seed;
      EXPECT_EQ(Met.ExactPairs, Met.Pairs) << "seed " << C.Seed;
    }
  }

  // Chord vs naive increment placement must produce identical counters.
  {
    InstrumentOptions Chord;
    Chord.LoopOverlap = true;
    Chord.LoopDegree = 2;
    Chord.UseChords = true;
    InstrumentOptions Naive = Chord;
    Naive.UseChords = false;
    PipelineConfig CC = makeConfig(Chord, 5, 9);
    CC.CollectGroundTruth = false;
    PipelineResult A = runPipeline(*CR.M, CC);
    CC.Instr = Naive;
    PipelineResult B = runPipeline(*CR.M, CC);
    ASSERT_TRUE(A.ok() && B.ok()) << "seed " << C.Seed;
    for (uint32_t F = 0; F < A.Prof->PathCounts.size(); ++F)
      ASSERT_EQ(A.Prof->PathCounts[F], B.Prof->PathCounts[F])
          << "chord/naive disagree, seed " << C.Seed << " func " << F;
  }

  if (!C.AllowCalls)
    return;

  // Interprocedural: counters exact, estimates sound, improving with k.
  uint64_t PrevDef = 0;
  uint64_t PrevPot = UINT64_MAX;
  First = true;
  for (uint32_t K : {0u, 1u, 3u, 8u}) {
    InstrumentOptions O;
    O.Interproc = true;
    O.InterprocDegree = K;
    O.LoopOverlap = true;
    O.LoopDegree = K;
    PipelineResult R = runPipeline(*CR.M, makeConfig(O, 5, 9));
    ASSERT_TRUE(R.ok()) << "seed " << C.Seed << " ipk=" << K << ": "
                        << R.Errors[0];
    checkCountersMatch(R, "interproc k=" + std::to_string(K) + " seed " +
                              std::to_string(C.Seed));
    ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics Met = Est.estimateAll(&R.GT);
    EXPECT_FALSE(Met.SoundnessViolated) << "seed " << C.Seed << " k=" << K;
    EXPECT_LE(Met.Definite, Met.Real);
    EXPECT_GE(Met.Potential, Met.Real);
    if (!First) {
      EXPECT_GE(Met.Definite, PrevDef) << "ipk=" << K;
      EXPECT_LE(Met.Potential, PrevPot) << "ipk=" << K;
    }
    First = false;
    PrevDef = Met.Definite;
    PrevPot = Met.Potential;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ExactnessProperty,
    ::testing::Values(Case{1, true}, Case{2, true}, Case{3, true},
                      Case{4, true}, Case{5, true}, Case{6, false},
                      Case{7, false}, Case{8, true}, Case{9, true},
                      Case{10, false}, Case{11, true}, Case{12, true},
                      Case{13, true}, Case{14, true}, Case{15, false},
                      Case{16, true}, Case{17, true}, Case{18, true},
                      Case{19, true}, Case{20, true}),
    [](const ::testing::TestParamInfo<Case> &Info) {
      return "seed" + std::to_string(Info.param.Seed) +
             (Info.param.AllowCalls ? "_calls" : "_nocalls");
    });
