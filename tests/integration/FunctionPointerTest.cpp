//===--- FunctionPointerTest.cpp - indirect call profiling --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper motivates its four-tuple counter layout with function pointers:
// "the caller has no idea about who is the callee unless the callee
// explicitly tells the caller." These tests cover the whole stack for
// indirect call sites: frontend, interpreter, instrumentation exactness,
// and per-callee estimation.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "wpp/ExpectedCounters.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

const char *DispatchProgram = R"(
  fn twice(x) { if (x > 100) { return x; } return x * 2; }
  fn square(x) { if (x < 0) { return 0; } return x * x; }
  fn negate(x) { return -x; }
  fn main(n) {
    var total = 0;
    for (var i = 0; i < n; i = i + 1) {
      var op = &twice;
      if (i % 3 == 1) { op = &square; }
      else if (i % 3 == 2) { op = &negate; }
      total = total + op(i);
    }
    return total;
  })";

int64_t expectDispatch(int64_t N) {
  int64_t Total = 0;
  for (int64_t I = 0; I < N; ++I) {
    if (I % 3 == 1)
      Total += I * I;
    else if (I % 3 == 2)
      Total += -I;
    else
      Total += I * 2;
  }
  return Total;
}

} // namespace

TEST(FunctionPointers, SemanticsMatchDirectEvaluation) {
  CompileResult CR = compileMiniC(DispatchProgram);
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Interpreter I(*CR.M);
  RunResult R = I.run(*CR.M->findFunction("main"), {20});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ReturnValue, expectDispatch(20));
}

TEST(FunctionPointers, AddressOfUnknownFunctionIsDiagnosed) {
  CompileResult CR = compileMiniC("fn main() { return &nothere; }");
  ASSERT_FALSE(CR.ok());
  EXPECT_NE(CR.diagText().find("does not name a function"),
            std::string::npos);
}

TEST(FunctionPointers, InvalidTargetTraps) {
  CompileResult CR = compileMiniC(
      "fn main(n) { var f = n; return f(1); } ");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Interpreter I(*CR.M);
  RunResult R = I.run(*CR.M->findFunction("main"), {99});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invalid function id"), std::string::npos);
}

TEST(FunctionPointers, ArityMismatchTraps) {
  CompileResult CR = compileMiniC(R"(
    fn two(a, b) { return a + b; }
    fn main() { var f = &two; return f(1); })");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Interpreter I(*CR.M);
  RunResult R = I.run(*CR.M->findFunction("main"), {});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("expected 2"), std::string::npos);
}

TEST(FunctionPointers, InstrumentationExactWithIndirectCalls) {
  CompileResult CR = compileMiniC(DispatchProgram);
  ASSERT_TRUE(CR.ok());
  for (uint32_t K : {0u, 1u, 3u}) {
    PipelineConfig Config;
    Config.Instr.Interproc = true;
    Config.Instr.InterprocDegree = K;
    Config.Instr.LoopOverlap = true;
    Config.Instr.LoopDegree = K;
    Config.Args = {30};
    PipelineResult R = runPipeline(*CR.M, Config);
    ASSERT_TRUE(R.ok()) << R.Errors[0];
    ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
    for (uint32_t F = 0; F < R.Prof->PathCounts.size(); ++F)
      EXPECT_EQ(R.Prof->PathCounts[F], EC.PathCounts[F]) << "k=" << K;
    EXPECT_EQ(R.Prof->TypeICounts, EC.TypeICounts) << "k=" << K;
    EXPECT_EQ(R.Prof->TypeIICounts, EC.TypeIICounts) << "k=" << K;

    // The indirect site's tuples must name all three dynamic callees.
    uint32_t IndirectCs = UINT32_MAX;
    for (const CallSiteInfo &CS : R.MI.CallSites)
      if (CS.Callee == UINT32_MAX)
        IndirectCs = CS.CsId;
    ASSERT_NE(IndirectCs, UINT32_MAX);
    std::set<uint32_t> Callees;
    for (const auto &[Key, C] : R.Prof->TypeICounts)
      if (Key.CallSite == IndirectCs)
        Callees.insert(Key.Callee);
    EXPECT_EQ(Callees.size(), 3u) << "k=" << K;
  }
}

TEST(FunctionPointers, EstimationSoundAcrossCallees) {
  CompileResult CR = compileMiniC(DispatchProgram);
  ASSERT_TRUE(CR.ok());
  uint64_t PrevExact = 0;
  for (uint32_t K : {0u, 2u, 5u}) {
    PipelineConfig Config;
    Config.Instr.Interproc = true;
    Config.Instr.InterprocDegree = K;
    Config.Args = {30};
    PipelineResult R = runPipeline(*CR.M, Config);
    ASSERT_TRUE(R.ok()) << R.Errors[0];
    ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
    EstimateMetrics M1 = Est.estimateTypeI(&R.GT);
    EstimateMetrics M2 = Est.estimateTypeII(&R.GT);
    EXPECT_FALSE(M1.SoundnessViolated) << "k=" << K;
    EXPECT_FALSE(M2.SoundnessViolated) << "k=" << K;
    EXPECT_LE(M1.Definite, M1.Real);
    EXPECT_GE(M1.Potential, M1.Real);
    EXPECT_GT(M1.Real, 0u);
    EXPECT_GE(M1.ExactPairs + M2.ExactPairs, PrevExact) << "k=" << K;
    PrevExact = M1.ExactPairs + M2.ExactPairs;
  }
}

TEST(FunctionPointers, BLOnlyIndirectSitesAreSkipped) {
  // Without the tuple profiles an indirect site cannot be attributed to
  // callees; the estimator must skip it rather than guess.
  CompileResult CR = compileMiniC(DispatchProgram);
  ASSERT_TRUE(CR.ok());
  PipelineConfig Config;
  Config.Instr.CallBreaking = true; // plain BL with call breaks
  Config.Args = {30};
  PipelineResult R = runPipeline(*CR.M, Config);
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  for (const CallSiteInfo &CS : R.MI.CallSites)
    if (CS.Callee == UINT32_MAX) {
      EstimateMetrics M1 = Est.estimateCallSiteTypeI(CS.CsId, nullptr);
      EXPECT_EQ(M1.Pairs, 0u);
      EstimateMetrics M2 = Est.estimateCallSiteTypeII(CS.CsId, nullptr);
      EXPECT_EQ(M2.Pairs, 0u);
    }
}
