//===--- SolverParallelTest.cpp - parallel vs worklist solver tests -------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Differential tests of the component-partitioned parallel interval solver
// against the serial worklist (and transitively the sweep oracle): on every
// system the parallel solver must reproduce the identical fixpoint, the
// identical convergence flag, and — on converging systems — the identical
// Evaluations count, because each component's local FIFO is the global FIFO
// restricted to that component. The ModuleEstimator-level test pins the
// whole estimation stack (definite/potential flow, exact pairs) across all
// three implementations.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"

#include "estimate/Estimators.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "profile/Instrumenter.h"
#include "support/Rng.h"
#include "support/TaskPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace olpp;

namespace {

void expectSameSolution(uint32_t NumCells,
                        const std::vector<SumConstraint> &Cs, uint64_t Seed,
                        TaskPool *Pool = nullptr) {
  BoundsResult WL = solveBoundsWorklist(NumCells, Cs);
  BoundsResult PL = solveBoundsParallel(NumCells, Cs, 100, Pool);
  ASSERT_EQ(WL.Lower.size(), PL.Lower.size()) << "seed " << Seed;
  EXPECT_EQ(WL.Lower, PL.Lower) << "seed " << Seed;
  EXPECT_EQ(WL.Upper, PL.Upper) << "seed " << Seed;
  EXPECT_EQ(WL.Converged, PL.Converged) << "seed " << Seed;
  if (WL.Converged && PL.Converged)
    EXPECT_EQ(WL.Evaluations, PL.Evaluations) << "seed " << Seed;
}

/// Feasible random system (same construction as SolverWorklistTest): a
/// hidden assignment, equalities summing it exactly, inequalities + slack.
std::vector<SumConstraint> feasibleSystem(Rng &R, uint32_t NumCells,
                                          uint32_t NumConstraints) {
  std::vector<uint64_t> Hidden(NumCells);
  for (uint64_t &V : Hidden)
    V = R.nextBelow(50);
  std::vector<SumConstraint> Cs;
  for (uint32_t C = 0; C < NumConstraints; ++C) {
    SumConstraint S;
    uint32_t Arity = 1 + static_cast<uint32_t>(R.nextBelow(5));
    uint64_t Sum = 0;
    for (uint32_t A = 0; A < Arity; ++A) {
      uint32_t Cell = static_cast<uint32_t>(R.nextBelow(NumCells));
      S.Cells.push_back(Cell);
      Sum += Hidden[Cell];
    }
    S.Equality = R.chance(7, 10);
    S.Value = S.Equality ? Sum : Sum + R.nextBelow(20);
    Cs.push_back(std::move(S));
  }
  return Cs;
}

TEST(SolverParallel, MatchesWorklistOnRandomFeasibleSystems) {
  TaskPool Pool(4);
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    Rng R(Seed * 0x9E3779B97F4A7C15ULL);
    uint32_t NumCells = 2 + static_cast<uint32_t>(R.nextBelow(60));
    uint32_t NumConstraints = 1 + static_cast<uint32_t>(R.nextBelow(80));
    auto Cs = feasibleSystem(R, NumCells, NumConstraints);
    expectSameSolution(NumCells, Cs, Seed, &Pool);
  }
}

TEST(SolverParallel, MatchesWorklistOnRandomInfeasibleSystems) {
  TaskPool Pool(4);
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    Rng R(Seed);
    uint32_t NumCells = 1 + static_cast<uint32_t>(R.nextBelow(30));
    std::vector<SumConstraint> Cs;
    uint32_t NumConstraints = 1 + static_cast<uint32_t>(R.nextBelow(40));
    for (uint32_t C = 0; C < NumConstraints; ++C) {
      SumConstraint S;
      S.Value = R.nextBelow(100);
      S.Equality = R.chance(1, 2);
      uint32_t Arity = 1 + static_cast<uint32_t>(R.nextBelow(4));
      for (uint32_t A = 0; A < Arity; ++A)
        S.Cells.push_back(static_cast<uint32_t>(R.nextBelow(NumCells)));
      Cs.push_back(std::move(S));
    }
    expectSameSolution(NumCells, Cs, Seed, &Pool);
  }
}

TEST(SolverParallel, MatchesWorklistOnEdgeCases) {
  // No constraints at all.
  expectSameSolution(4, {}, 0);
  // Empty-cell constraints (each becomes its own singleton component).
  expectSameSolution(2, {{5, true, {}}, {0, false, {}}}, 0);
  // Zero-valued equality pins everything it touches.
  expectSameSolution(3, {{0, true, {0, 1, 2}}}, 0);
  // A cell repeated inside one constraint.
  expectSameSolution(2, {{6, true, {0, 0, 1}}}, 0);
  // Zero cells.
  BoundsResult PL = solveBoundsParallel(0, {});
  EXPECT_TRUE(PL.Converged);
  EXPECT_TRUE(PL.Lower.empty());
}

TEST(SolverParallel, ManyIndependentIslandsSolveConcurrently) {
  // The shape the partitioner exists for: hundreds of disjoint components
  // (one per loop region / call site in real modules). Every island must
  // land on the worklist's bounds and the total effort must match.
  constexpr uint32_t Islands = 300;
  std::vector<SumConstraint> Cs;
  for (uint32_t I = 0; I < Islands; ++I) {
    Cs.push_back({10 + I % 7, true, {3 * I, 3 * I + 1, 3 * I + 2}});
    Cs.push_back({static_cast<uint64_t>(I % 5), true, {3 * I}});
  }
  TaskPool Pool(4);
  expectSameSolution(3 * Islands, Cs, 0, &Pool);
}

TEST(SolverParallel, RepeatedRunsAreDeterministic) {
  Rng R(0xABCDEF);
  auto Cs = feasibleSystem(R, 50, 70);
  TaskPool Pool(4);
  BoundsResult First = solveBoundsParallel(50, Cs, 100, &Pool);
  for (int I = 0; I < 5; ++I) {
    BoundsResult Again = solveBoundsParallel(50, Cs, 100, &Pool);
    EXPECT_EQ(First.Lower, Again.Lower);
    EXPECT_EQ(First.Upper, Again.Upper);
    EXPECT_EQ(First.Evaluations, Again.Evaluations);
    EXPECT_EQ(First.Converged, Again.Converged);
  }
}

TEST(SolverParallel, NonConvergenceFlagsAgreeUnderTinyBudget) {
  // One long chain pinned at the tail: a single component, so the parallel
  // budget equals the worklist budget and both must give up identically.
  std::vector<SumConstraint> Cs;
  for (uint32_t I = 0; I < 64; ++I)
    Cs.push_back({2 * I + 1, true, {I, I + 1}});
  Cs.push_back({64, true, {64}});
  BoundsResult WL = solveBoundsWorklist(65, Cs, 2);
  BoundsResult PL = solveBoundsParallel(65, Cs, 2);
  EXPECT_FALSE(WL.Converged);
  EXPECT_EQ(WL.Converged, PL.Converged);
}

TEST(SolverParallel, SolveBoundsDispatchesViaThreadImplAndPool) {
  std::vector<SumConstraint> Cs = {{5, true, {0, 1}}, {2, false, {0}},
                                   {7, true, {2, 3}}};
  TaskPool Pool(2);
  EXPECT_EQ(threadSolverImpl(), SolverImpl::Worklist); // the default
  EXPECT_EQ(threadSolverPool(), nullptr);
  setThreadSolverImpl(SolverImpl::Parallel);
  setThreadSolverPool(&Pool);
  BoundsResult Par = solveBounds(4, Cs);
  setThreadSolverImpl(SolverImpl::Worklist);
  setThreadSolverPool(nullptr);
  BoundsResult WL = solveBounds(4, Cs);
  EXPECT_EQ(Par.Lower, WL.Lower);
  EXPECT_EQ(Par.Upper, WL.Upper);
  EXPECT_EQ(Par.Evaluations, WL.Evaluations);
}

// The full estimation stack: every estimate metric of an instrumented
// workload run must be identical under the worklist, the sweep oracle and
// the parallel solver.
TEST(SolverParallel, ModuleEstimatorMetricsMatchAcrossAllImpls) {
  const Workload *W = findWorkload("espresso");
  ASSERT_NE(W, nullptr);
  CompileResult CR = compileMiniC(W->Source);
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  std::unique_ptr<Module> M = std::move(CR.M);

  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  ModuleInstrumentation MI = instrumentModule(*M, Opts);
  ASSERT_TRUE(MI.ok());

  const Function *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  std::vector<int64_t> Args = W->PrecisionArgs;
  Args.resize(Main->NumParams, 0);

  ProfileRuntime Prof(M->numFunctions());
  for (uint32_t F = 0; F < M->numFunctions(); ++F)
    if (MI.Funcs[F].PG)
      Prof.configurePathStore(F, MI.Funcs[F].PG->numPaths());
  RunConfig RC;
  RC.MaxSteps = 2'000'000'000;
  Interpreter I(*M, &Prof);
  RunResult R = I.run(*Main, Args, RC);
  ASSERT_TRUE(R.Ok) << R.Error;

  TaskPool Pool(4);
  auto Metrics = [&](SolverImpl Impl) {
    setThreadSolverImpl(Impl);
    setThreadSolverPool(Impl == SolverImpl::Parallel ? &Pool : nullptr);
    ModuleEstimator Est(*M, MI, Prof);
    EstimateMetrics E = Est.estimateAll();
    setThreadSolverImpl(SolverImpl::Worklist);
    setThreadSolverPool(nullptr);
    return E;
  };
  EstimateMetrics MW = Metrics(SolverImpl::Worklist);
  EstimateMetrics MS = Metrics(SolverImpl::Sweep);
  EstimateMetrics MP = Metrics(SolverImpl::Parallel);

  auto ExpectSame = [](const EstimateMetrics &A, const EstimateMetrics &B,
                       const char *Pair) {
    EXPECT_EQ(A.Definite, B.Definite) << Pair;
    EXPECT_EQ(A.Potential, B.Potential) << Pair;
    EXPECT_EQ(A.Real, B.Real) << Pair;
    EXPECT_EQ(A.Pairs, B.Pairs) << Pair;
    EXPECT_EQ(A.ExactPairs, B.ExactPairs) << Pair;
    EXPECT_EQ(A.SoundnessViolated, B.SoundnessViolated) << Pair;
  };
  ExpectSame(MW, MS, "worklist vs sweep");
  ExpectSame(MW, MP, "worklist vs parallel");
}

} // namespace
