//===--- EstimatorsTest.cpp - estimator API tests -------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Feasibility.h"
#include "analysis/Summary.h"
#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "workloads/Workloads.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

// Two iteration paths chosen by a strictly alternating condition: the real
// two-iteration behaviour is A!B and B!A only, which loose BL bounds cannot
// see but degree-2 overlap pins exactly.
const char *Alternating = R"(
  fn main(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
      if (i % 2 == 0) { s = s + 1; }
      else { s = s + 100; }
    }
    return s;
  })";

PipelineResult run(const char *Src, InstrumentOptions O,
                   std::vector<int64_t> Args) {
  PipelineConfig C;
  C.Instr = O;
  C.Args = std::move(Args);
  PipelineResult R = runPipelineOnSource(Src, C);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
  return R;
}

} // namespace

TEST(Estimators, AlternatingLoopRealFlowIsCorrect) {
  InstrumentOptions O;
  PipelineResult R = run(Alternating, O, {20});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  EstimateMetrics M = Est.estimateLoops(&R.GT);
  // 20 iterations; the for-loop returns to its header after each one
  // (including the last) -> 20 backedge crossings.
  EXPECT_EQ(M.Real, 20u);
  EXPECT_LE(M.Definite, 20u);
  EXPECT_GE(M.Potential, 20u);
  EXPECT_EQ(M.Problems, 1u);
}

TEST(Estimators, AlternationInvisibleToBLButExactAtDegreeTwo) {
  InstrumentOptions Bl;
  PipelineResult RBl = run(Alternating, Bl, {40});
  ModuleEstimator EstBl(*RBl.InstrModule, RBl.MI, *RBl.Prof);
  EstimateMetrics MBl = EstBl.estimateLoops(&RBl.GT);
  // BL knows each iteration class runs ~20 times but cannot tell A!B+B!A
  // from A!A+B!B, so some pairs stay inexact.
  EXPECT_LT(MBl.ExactPairs, MBl.Pairs);
  EXPECT_LT(MBl.Definite, MBl.Real);
  EXPECT_GT(MBl.Potential, MBl.Real);

  InstrumentOptions Ol;
  Ol.LoopOverlap = true;
  Ol.LoopDegree = 2;
  PipelineResult ROl = run(Alternating, Ol, {40});
  ModuleEstimator EstOl(*ROl.InstrModule, ROl.MI, *ROl.Prof);
  EstimateMetrics MOl = EstOl.estimateLoops(&ROl.GT);
  EXPECT_EQ(MOl.Definite, MOl.Real);
  EXPECT_EQ(MOl.Potential, MOl.Real);
  EXPECT_EQ(MOl.ExactPairs, MOl.Pairs);
}

TEST(Estimators, SkewedCallSiteTypeIBounds) {
  // 90% of calls take one caller path; Type I overlap resolves which
  // callee path each caller path feeds.
  const char *Src = R"(
    fn sign(x) { if (x < 0) { return -1; } if (x > 0) { return 1; }
                 return 0; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i % 10 == 0) { s = s + sign(-i); }
        else { s = s + sign(i); }
      }
      return s;
    })";
  InstrumentOptions O;
  O.Interproc = true;
  O.InterprocDegree = 2;
  PipelineResult R = run(Src, O, {50});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  EstimateMetrics M1 = Est.estimateTypeI(&R.GT);
  EXPECT_EQ(M1.Real, 50u); // one Type I instance per call
  EXPECT_FALSE(M1.SoundnessViolated);
  EXPECT_GE(M1.ExactPairs * 2, M1.Pairs)
      << "degree-2 prefixes should pin most caller!callee pairs";
}

TEST(Estimators, TypeIIRowsComeFromTuples) {
  const char *Src = R"(
    fn pick(x) { if (x & 1) { return 1; } return 2; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        var v = pick(i);
        if (v == 1) { s = s + 10; } else { s = s - 1; }
      }
      return s;
    })";
  InstrumentOptions O;
  O.Interproc = true;
  O.InterprocDegree = 3;
  PipelineResult R = run(Src, O, {30});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  EstimateMetrics M2 = Est.estimateTypeII(&R.GT);
  EXPECT_EQ(M2.Real, 30u); // one Type II instance per return
  EXPECT_FALSE(M2.SoundnessViolated);
  // The callee's path (odd/even) determines the continuation branch, and
  // degree 3 sees far enough to prove it.
  EXPECT_EQ(M2.Definite, M2.Real);
  EXPECT_EQ(M2.Potential, M2.Real);
}

TEST(Estimators, NoFlowMeansNoProblems) {
  InstrumentOptions O;
  O.Interproc = true;
  PipelineResult R = run("fn main() { return 3; }", O, {});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);
  EstimateMetrics M = Est.estimateAll(&R.GT);
  EXPECT_EQ(M.Problems, 0u);
  EXPECT_EQ(M.Pairs, 0u);
  EXPECT_EQ(M.Real, 0u);
}

TEST(Estimators, FeasibilityFactsTightenLoopBounds) {
  // The branch arm is monotone in i: once an iteration takes the i >= 5
  // side, no later iteration can take the i < 5 side again. BL row/column
  // totals cannot see that, but the walker proves the B!A pair
  // contradictory across the backedge and pins its cell to zero.
  const char *Src = R"(
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i < 5) { s = s + 1; } else { s = s + 100; }
      }
      return s;
    })";
  InstrumentOptions O;
  PipelineResult R = run(Src, O, {12});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  EstimateMetrics Without = Est.estimateLoops(&R.GT);
  EXPECT_EQ(Without.InfeasiblePairs, 0u);
  EXPECT_FALSE(Without.SoundnessViolated);

  ModuleSummaries Sums = computeSummaries(*R.InstrModule);
  PathFeasibility PF(*R.InstrModule, &Sums);
  Est.setFeasibility(&PF);
  EstimateMetrics With = Est.estimateLoops(&R.GT);

  EXPECT_GT(With.InfeasiblePairs, 0u);
  EXPECT_GT(With.FeasibilityQueries, 0u);
  // Facts only ever add constraints to a monotone solver: the bound
  // interval shrinks or stays, never widens — and stays sound.
  EXPECT_EQ(With.Pairs, Without.Pairs);
  EXPECT_GE(With.Definite, Without.Definite);
  EXPECT_LE(With.Potential, Without.Potential);
  EXPECT_LT(With.Potential, Without.Potential)
      << "pinning B!A to zero must strictly tighten the upper bounds";
  EXPECT_FALSE(With.SoundnessViolated);
}

TEST(Estimators, FeasibilityFactsPruneCallPairs) {
  // Site one always passes 3, site two always passes 50; the callee's
  // observed paths include both arms, so each site's pair table contains
  // combinations the argument range refutes.
  const char *Src = R"(
    fn step(x) { if (x > 10) { return 2; } return 1; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        s = s + step(3);
        s = s + step(50);
      }
      return s;
    })";
  InstrumentOptions O;
  O.CallBreaking = true;
  PipelineResult R = run(Src, O, {8});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  EstimateMetrics Without = Est.estimateTypeI(&R.GT);
  ModuleSummaries Sums = computeSummaries(*R.InstrModule);
  PathFeasibility PF(*R.InstrModule, &Sums);
  Est.setFeasibility(&PF);
  EstimateMetrics With = Est.estimateTypeI(&R.GT);

  EXPECT_GT(With.InfeasiblePairs, 0u);
  EXPECT_EQ(With.Pairs, Without.Pairs);
  EXPECT_GE(With.Definite, Without.Definite);
  EXPECT_LE(With.Potential, Without.Potential);
  EXPECT_FALSE(With.SoundnessViolated);
}

TEST(Estimators, FeasibilityFactsPruneReturnPairs) {
  // The callee's return value (7 or 0) decides the continuation branch;
  // both callee paths and both continuations are observed, but the cross
  // pairings contradict the walked return range.
  const char *Src = R"(
    fn pick(x) { if (x > 10) { return 7; } return 0; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        var v = pick(i);
        if (v > 3) { s = s + 10; } else { s = s + 1; }
      }
      return s;
    })";
  InstrumentOptions O;
  O.CallBreaking = true;
  PipelineResult R = run(Src, O, {20});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  EstimateMetrics Without = Est.estimateTypeII(&R.GT);
  ModuleSummaries Sums = computeSummaries(*R.InstrModule);
  PathFeasibility PF(*R.InstrModule, &Sums);
  Est.setFeasibility(&PF);
  EstimateMetrics With = Est.estimateTypeII(&R.GT);

  EXPECT_GT(With.InfeasiblePairs, 0u);
  EXPECT_EQ(With.Pairs, Without.Pairs);
  EXPECT_GE(With.Definite, Without.Definite);
  EXPECT_LE(With.Potential, Without.Potential);
  EXPECT_LT(With.Potential, Without.Potential);
  EXPECT_FALSE(With.SoundnessViolated);
}

TEST(Estimators, PerProblemMetricsSumToTotals) {
  const Workload *W = findWorkload("mcf");
  ASSERT_NE(W, nullptr);
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 1;
  O.Interproc = true;
  O.InterprocDegree = 1;
  PipelineResult R = run(W->Source.c_str(), O, {1, 3});
  ModuleEstimator Est(*R.InstrModule, R.MI, *R.Prof);

  EstimateMetrics Loops = Est.estimateLoops(&R.GT);
  EstimateMetrics Sum;
  for (uint32_t F = 0; F < R.InstrModule->numFunctions(); ++F)
    for (uint32_t L = 0; L < R.MI.Funcs[F].Loops->numLoops(); ++L)
      Sum.add(Est.estimateLoop(F, L, &R.GT));
  EXPECT_EQ(Sum.Real, Loops.Real);
  EXPECT_EQ(Sum.Definite, Loops.Definite);
  EXPECT_EQ(Sum.Potential, Loops.Potential);
  EXPECT_EQ(Sum.Pairs, Loops.Pairs);

  EstimateMetrics T1 = Est.estimateTypeI(&R.GT);
  EstimateMetrics SumT1;
  for (const CallSiteInfo &CS : R.MI.CallSites)
    SumT1.add(Est.estimateCallSiteTypeI(CS.CsId, &R.GT));
  EXPECT_EQ(SumT1.Real, T1.Real);
  EXPECT_EQ(SumT1.Pairs, T1.Pairs);
}
