//===--- SolverTest.cpp - interval solver unit tests --------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"

#include <gtest/gtest.h>

using namespace olpp;

TEST(IntervalSolver, SingleEquality) {
  std::vector<SumConstraint> Cs = {{5, true, {0, 1}}};
  BoundsResult R = solveBounds(2, Cs);
  EXPECT_TRUE(R.Converged);
  EXPECT_EQ(R.Lower, (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(R.Upper, (std::vector<uint64_t>{5, 5}));
}

TEST(IntervalSolver, EqualityWithCap) {
  // x0 + x1 == 5, x0 <= 2  =>  x1 in [3,5].
  std::vector<SumConstraint> Cs = {{5, true, {0, 1}}, {2, false, {0}}};
  BoundsResult R = solveBounds(2, Cs);
  EXPECT_EQ(R.Upper[0], 2u);
  EXPECT_EQ(R.Lower[1], 3u);
  EXPECT_EQ(R.Upper[1], 5u);
  EXPECT_EQ(R.Lower[0], 0u);
}

TEST(IntervalSolver, SingletonEqualityPinsCell) {
  std::vector<SumConstraint> Cs = {{7, true, {0}}, {10, true, {0, 1}}};
  BoundsResult R = solveBounds(2, Cs);
  EXPECT_EQ(R.Lower[0], 7u);
  EXPECT_EQ(R.Upper[0], 7u);
  EXPECT_EQ(R.Lower[1], 3u);
  EXPECT_EQ(R.Upper[1], 3u);
  EXPECT_EQ(R.exactCount(), 2u);
}

TEST(IntervalSolver, InequalityGivesNoLowerBound) {
  std::vector<SumConstraint> Cs = {{5, false, {0, 1}}};
  BoundsResult R = solveBounds(2, Cs);
  EXPECT_EQ(R.Lower, (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(R.Upper, (std::vector<uint64_t>{5, 5}));
}

TEST(IntervalSolver, CrossConstraintPropagation) {
  // Rows: {0,1} == 10, {2,3} == 0. Columns: {0,2} == 4, {1,3} == 6.
  std::vector<SumConstraint> Cs = {
      {10, true, {0, 1}}, {0, true, {2, 3}}, {4, true, {0, 2}},
      {6, true, {1, 3}}};
  BoundsResult R = solveBounds(4, Cs);
  // Row 2 is empty, so the columns pin row 0 exactly.
  EXPECT_EQ(R.Lower[0], 4u);
  EXPECT_EQ(R.Upper[0], 4u);
  EXPECT_EQ(R.Lower[1], 6u);
  EXPECT_EQ(R.Upper[1], 6u);
  EXPECT_EQ(R.Upper[2], 0u);
  EXPECT_EQ(R.Upper[3], 0u);
  EXPECT_EQ(R.exactCount(), 4u);
}

TEST(IntervalSolver, ZeroValueEqualityZeroesCells) {
  std::vector<SumConstraint> Cs = {{0, true, {0, 1, 2}}};
  BoundsResult R = solveBounds(3, Cs);
  for (int I = 0; I < 3; ++I) {
    EXPECT_EQ(R.Lower[I], 0u);
    EXPECT_EQ(R.Upper[I], 0u);
  }
}

TEST(IntervalSolver, UncoveredCellKeepsSentinelUpper) {
  std::vector<SumConstraint> Cs = {{3, true, {0}}};
  BoundsResult R = solveBounds(2, Cs);
  EXPECT_EQ(R.Upper[0], 3u);
  EXPECT_GT(R.Upper[1], uint64_t(1) << 60); // untouched sentinel
}

TEST(IntervalSolver, ConvergesOnChainedEqualities) {
  // x0+x1=8, x1+x2=5, x2+x3=5, x3 <= 1.
  std::vector<SumConstraint> Cs = {{8, true, {0, 1}},
                                   {5, true, {1, 2}},
                                   {5, true, {2, 3}},
                                   {1, false, {3}}};
  BoundsResult R = solveBounds(4, Cs);
  EXPECT_TRUE(R.Converged);
  // x3<=1 -> x2>=4 -> x1<=1 -> x0>=7.
  EXPECT_GE(R.Lower[2], 4u);
  EXPECT_LE(R.Upper[1], 1u);
  EXPECT_GE(R.Lower[0], 7u);
}
