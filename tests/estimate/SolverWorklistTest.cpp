//===--- SolverWorklistTest.cpp - worklist vs sweep solver tests --------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Differential tests of the change-driven worklist interval solver against
// the whole-constraint-set sweep oracle it replaced: on randomized seeded
// constraint systems (feasible by construction, plus adversarial infeasible
// ones) both implementations must reach the identical fixpoint, and on
// sparse systems the worklist must do strictly less work — the convergence
// regression bound that keeps the optimization honest.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace olpp;

namespace {

void expectSameFixpoint(uint32_t NumCells,
                        const std::vector<SumConstraint> &Cs,
                        uint64_t Seed) {
  BoundsResult WL = solveBoundsWorklist(NumCells, Cs);
  BoundsResult SW = solveBoundsSweep(NumCells, Cs);
  ASSERT_EQ(WL.Lower.size(), SW.Lower.size()) << "seed " << Seed;
  EXPECT_EQ(WL.Lower, SW.Lower) << "seed " << Seed;
  EXPECT_EQ(WL.Upper, SW.Upper) << "seed " << Seed;
  EXPECT_EQ(WL.Converged, SW.Converged) << "seed " << Seed;
}

/// Builds a feasible random system: draws a hidden assignment for the
/// cells, then emits constraints whose values are consistent with it
/// (equalities sum the hidden values exactly; inequalities add slack).
std::vector<SumConstraint> feasibleSystem(Rng &R, uint32_t NumCells,
                                          uint32_t NumConstraints,
                                          std::vector<uint64_t> *HiddenOut) {
  std::vector<uint64_t> Hidden(NumCells);
  for (uint64_t &V : Hidden)
    V = R.nextBelow(50);
  if (HiddenOut)
    *HiddenOut = Hidden;

  std::vector<SumConstraint> Cs;
  for (uint32_t C = 0; C < NumConstraints; ++C) {
    SumConstraint S;
    uint32_t Arity = 1 + static_cast<uint32_t>(R.nextBelow(5));
    uint64_t Sum = 0;
    for (uint32_t A = 0; A < Arity; ++A) {
      uint32_t Cell = static_cast<uint32_t>(R.nextBelow(NumCells));
      S.Cells.push_back(Cell);
      Sum += Hidden[Cell]; // duplicates intentionally allowed
    }
    S.Equality = R.chance(7, 10);
    S.Value = S.Equality ? Sum : Sum + R.nextBelow(20);
    Cs.push_back(std::move(S));
  }
  return Cs;
}

TEST(SolverWorklist, MatchesSweepOnRandomFeasibleSystems) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    Rng R(Seed * 0x9E3779B97F4A7C15ULL);
    uint32_t NumCells = 2 + static_cast<uint32_t>(R.nextBelow(60));
    uint32_t NumConstraints = 1 + static_cast<uint32_t>(R.nextBelow(80));
    std::vector<uint64_t> Hidden;
    auto Cs = feasibleSystem(R, NumCells, NumConstraints, &Hidden);
    expectSameFixpoint(NumCells, Cs, Seed);

    // Soundness on feasible systems: the hidden assignment satisfies every
    // constraint, so the fixpoint bounds must bracket it.
    BoundsResult WL = solveBoundsWorklist(NumCells, Cs);
    ASSERT_TRUE(WL.Converged) << "seed " << Seed;
    for (uint32_t I = 0; I < NumCells; ++I) {
      EXPECT_LE(WL.Lower[I], Hidden[I]) << "seed " << Seed << " cell " << I;
      EXPECT_GE(WL.Upper[I], Hidden[I]) << "seed " << Seed << " cell " << I;
    }
  }
}

TEST(SolverWorklist, MatchesSweepOnRandomUnconstrainedSystems) {
  // Values drawn independently of any hidden assignment: most systems are
  // infeasible, bounds may cross — the two implementations must still land
  // on the same (possibly degenerate) fixpoint.
  for (uint64_t Seed = 100; Seed < 140; ++Seed) {
    Rng R(Seed);
    uint32_t NumCells = 1 + static_cast<uint32_t>(R.nextBelow(30));
    std::vector<SumConstraint> Cs;
    uint32_t NumConstraints = 1 + static_cast<uint32_t>(R.nextBelow(40));
    for (uint32_t C = 0; C < NumConstraints; ++C) {
      SumConstraint S;
      S.Value = R.nextBelow(100);
      S.Equality = R.chance(1, 2);
      uint32_t Arity = 1 + static_cast<uint32_t>(R.nextBelow(4));
      for (uint32_t A = 0; A < Arity; ++A)
        S.Cells.push_back(static_cast<uint32_t>(R.nextBelow(NumCells)));
      Cs.push_back(std::move(S));
    }
    expectSameFixpoint(NumCells, Cs, Seed);
  }
}

TEST(SolverWorklist, MatchesSweepOnEdgeCases) {
  // No constraints at all.
  expectSameFixpoint(4, {}, 0);
  // Empty-cell constraints.
  expectSameFixpoint(2, {{5, true, {}}, {0, false, {}}}, 0);
  // Zero-valued equality pins everything it touches.
  expectSameFixpoint(3, {{0, true, {0, 1, 2}}}, 0);
  // A cell repeated inside one constraint.
  expectSameFixpoint(2, {{6, true, {0, 0, 1}}}, 0);
  // Zero cells.
  BoundsResult WL = solveBoundsWorklist(0, {});
  EXPECT_TRUE(WL.Converged);
  EXPECT_TRUE(WL.Lower.empty());
}

TEST(SolverWorklist, SolveBoundsDispatchesPerThreadImpl) {
  std::vector<SumConstraint> Cs = {{5, true, {0, 1}}, {2, false, {0}}};
  EXPECT_EQ(threadSolverImpl(), SolverImpl::Worklist); // the default
  setThreadSolverImpl(SolverImpl::Sweep);
  BoundsResult Sweep = solveBounds(2, Cs);
  setThreadSolverImpl(SolverImpl::Worklist);
  BoundsResult Worklist = solveBounds(2, Cs);
  EXPECT_EQ(Sweep.Lower, Worklist.Lower);
  EXPECT_EQ(Sweep.Upper, Worklist.Upper);
  // The sweep's effort is always a whole-set multiple; the worklist only
  // pays for constraints whose cells changed.
  EXPECT_EQ(Sweep.Evaluations % Cs.size(), 0u);
}

/// A long chain x_i + x_{i+1} == 2i+1 (hidden solution x_i = i) pinned at
/// the TAIL, with the pin listed last. Information must propagate link by
/// link against the constraint order, so the in-place sweep resolves one
/// link per round (quadratic total work) while the worklist just follows
/// the frontier backwards (linear).
std::vector<SumConstraint> chainSystem(uint32_t Links) {
  std::vector<SumConstraint> Cs;
  for (uint32_t I = 0; I < Links; ++I)
    Cs.push_back({2 * I + 1, true, {I, I + 1}});
  Cs.push_back({Links, true, {Links}}); // pin the tail: x_Links == Links
  return Cs;
}

TEST(SolverWorklist, ConvergenceBoundOnSparseChains) {
  for (uint32_t Links : {32u, 128u, 384u}) {
    auto Cs = chainSystem(Links);
    uint32_t NumCells = Links + 1;
    uint32_t Budget = NumCells + 10; // sweep needs ~one round per link
    BoundsResult WL = solveBoundsWorklist(NumCells, Cs, Budget);
    BoundsResult SW = solveBoundsSweep(NumCells, Cs, Budget);
    ASSERT_TRUE(WL.Converged);
    ASSERT_TRUE(SW.Converged);
    EXPECT_EQ(WL.Lower, SW.Lower);
    EXPECT_EQ(WL.Upper, SW.Upper);

    // The regression bound. Each link needs only a bounded number of
    // re-evaluations as the frontier passes it, so the worklist is linear
    // in the chain length; the sweep is quadratic (every round touches
    // every constraint). Both solvers are deterministic, so these bounds
    // cannot flake — they only break if someone regresses the scheduling.
    EXPECT_LE(WL.Evaluations, 8u * (Links + 1)) << Links << " links";
    EXPECT_GE(SW.Evaluations,
              static_cast<uint64_t>(Links / 2) * (Links + 1))
        << Links << " links";
    EXPECT_LT(WL.Evaluations, SW.Evaluations / 4) << Links << " links";
  }
}

TEST(SolverWorklist, EffortScalesWithChangeNotSystemSize) {
  // A large system where a single pinned cell affects only one small
  // neighbourhood: the worklist's evaluations must stay near the incidence
  // size of that neighbourhood, not the system size.
  constexpr uint32_t Islands = 400;
  std::vector<SumConstraint> Cs;
  for (uint32_t I = 0; I < Islands; ++I) {
    // Island i: cells {2i, 2i+1} with sum 10 — independent of the rest.
    Cs.push_back({10, true, {2 * I, 2 * I + 1}});
  }
  Cs.push_back({3, true, {0}}); // pin one cell of island 0
  BoundsResult WL = solveBoundsWorklist(2 * Islands, Cs);
  BoundsResult SW = solveBoundsSweep(2 * Islands, Cs);
  ASSERT_TRUE(WL.Converged);
  EXPECT_EQ(WL.Lower, SW.Lower);
  EXPECT_EQ(WL.Upper, SW.Upper);
  // Every constraint must be evaluated at least once to seed the bounds,
  // but re-evaluations happen only around the pinned island; allow three
  // passes' worth of slack against the initial seeding.
  EXPECT_LE(WL.Evaluations, 3u * Cs.size());
  EXPECT_GE(SW.Evaluations, 2u * Cs.size()); // seeding round + quiet round
}

TEST(SolverWorklist, NonConvergenceFlagsAgreeUnderTinyBudget) {
  // A chain long enough that a budget of 2 iterations cannot finish the
  // propagation; both implementations must report non-convergence rather
  // than silently returning half-tightened bounds as converged.
  auto Cs = chainSystem(64);
  BoundsResult WL = solveBoundsWorklist(65, Cs, 2);
  BoundsResult SW = solveBoundsSweep(65, Cs, 2);
  EXPECT_FALSE(SW.Converged);
  EXPECT_EQ(WL.Converged, SW.Converged);
}

} // namespace
