//===--- PaperExampleTest.cpp - the paper's worked examples -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Section 2.2.3 (Tables 4/5) and section 3.2.3 of the paper, reconstructed
// as explicit constraint systems for the interval solver. Where the paper's
// iteration order left a slack bound (its Table 5 lists L(2!3)=0 under OL-1
// even though its own equation 8 derives 250), we assert the mathematically
// sound fixpoint; every unambiguous paper value is asserted verbatim.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

// Cell layout for the 3x3 loop example: pair p!q -> (p-1)*3 + (q-1).
constexpr uint32_t cell(int P, int Q) {
  return static_cast<uint32_t>((P - 1) * 3 + (Q - 1));
}

// The execution of section 2.2.3: the loop is entered 500 times; 250 times
// it runs the iteration sequence 1!1!3 and 250 times 2!2!3. Hence:
//   F1=F2=F3=500, B=1000, E1=E2=250, E3=0, X1=X2=0, X3=500,
//   real F(1!1)=F(1!3)=F(2!2)=F(2!3)=250, everything else 0.
const uint64_t Real[9] = {250, 0, 250, 0, 250, 250, 0, 0, 0};

// Row totals F_p - X_p (flow of p that crosses the backedge) and column
// caps F_q - E_q (flow of q that follows a backedge).
const uint64_t RowTotal[3] = {500, 500, 0};
const uint64_t ColCap[3] = {250, 250, 500};

std::vector<SumConstraint> baseConstraints() {
  std::vector<SumConstraint> Cs;
  for (int P = 1; P <= 3; ++P)
    Cs.push_back({RowTotal[P - 1], true,
                  {cell(P, 1), cell(P, 2), cell(P, 3)}});
  for (int Q = 1; Q <= 3; ++Q)
    Cs.push_back({ColCap[Q - 1], false,
                  {cell(1, Q), cell(2, Q), cell(3, Q)}});
  return Cs;
}

void expectSound(const BoundsResult &R) {
  for (int I = 0; I < 9; ++I) {
    EXPECT_LE(R.Lower[I], Real[I]) << "pair " << I;
    EXPECT_GE(R.Upper[I], Real[I]) << "pair " << I;
  }
}

} // namespace

TEST(PaperLoopExample, OL0MatchesTable5) {
  // OL-0 == plain Ball-Larus information.
  BoundsResult R = solveBounds(9, baseConstraints());
  expectSound(R);
  // Table 5, OL-0 columns.
  const uint64_t WantU[9] = {250, 250, 500, 250, 250, 500, 0, 0, 0};
  for (int I = 0; I < 9; ++I) {
    EXPECT_EQ(R.Lower[I], 0u) << "pair " << I;
    EXPECT_EQ(R.Upper[I], WantU[I]) << "pair " << I;
  }
  // Section 2.2.3: definite flow 0 and potential flow 2000, i.e. -100%/+100%
  // around the real flow of 1000.
  EXPECT_EQ(R.sumLower(), 0u);
  EXPECT_EQ(R.sumUpper(), 2000u);
}

TEST(PaperLoopExample, OL1TightensTheBounds) {
  // OL-1 adds the degree-1 overlapping path frequencies. Suffix classes at
  // k=1: {q1} (prefix P1 B1 P3) and {q2,q3} (prefix P1 P2).
  std::vector<SumConstraint> Cs = baseConstraints();
  Cs.push_back({250, true, {cell(1, 1)}});          // OF_{1!1(P3)}
  Cs.push_back({250, true, {cell(1, 2), cell(1, 3)}});
  Cs.push_back({0, true, {cell(2, 1)}});
  Cs.push_back({500, true, {cell(2, 2), cell(2, 3)}});
  Cs.push_back({0, true, {cell(3, 1)}});
  Cs.push_back({0, true, {cell(3, 2), cell(3, 3)}});
  BoundsResult R = solveBounds(9, Cs);
  expectSound(R);

  // Paper Table 5 (OL-1): 1!1 becomes exact.
  EXPECT_EQ(R.Lower[cell(1, 1)], 250u);
  EXPECT_EQ(R.Upper[cell(1, 1)], 250u);
  // 2!1 and the whole row 3 are exactly zero.
  EXPECT_EQ(R.Upper[cell(2, 1)], 0u);
  EXPECT_EQ(R.Upper[cell(3, 1)], 0u);
  EXPECT_EQ(R.Upper[cell(3, 2)], 0u);
  EXPECT_EQ(R.Upper[cell(3, 3)], 0u);
  // 1!2 / 1!3 drop from (250, 500) to 250 each (Table 5).
  EXPECT_EQ(R.Upper[cell(1, 2)], 250u);
  EXPECT_EQ(R.Upper[cell(1, 3)], 250u);
  // Our fixpoint also derives L(2!3) = 500 - U(2!2) = 250 (the paper's own
  // equation 8; its table lists the looser 0).
  EXPECT_EQ(R.Upper[cell(2, 2)], 250u);
  EXPECT_EQ(R.Lower[cell(2, 3)], 250u);

  // Bounds must be at least as tight as OL-0 everywhere.
  BoundsResult R0 = solveBounds(9, baseConstraints());
  for (int I = 0; I < 9; ++I) {
    EXPECT_GE(R.Lower[I], R0.Lower[I]);
    EXPECT_LE(R.Upper[I], R0.Upper[I]);
  }
  EXPECT_GT(R.sumLower(), R0.sumLower());
  EXPECT_LT(R.sumUpper(), R0.sumUpper());
}

TEST(PaperLoopExample, OL2IsExact) {
  // At the maximum overlap (k=2) every suffix class is a singleton, so the
  // paper notes the profile becomes exact.
  std::vector<SumConstraint> Cs = baseConstraints();
  for (int P = 1; P <= 3; ++P)
    for (int Q = 1; Q <= 3; ++Q)
      Cs.push_back({Real[cell(P, Q)], true, {cell(P, Q)}});
  BoundsResult R = solveBounds(9, Cs);
  for (int I = 0; I < 9; ++I) {
    EXPECT_EQ(R.Lower[I], Real[I]);
    EXPECT_EQ(R.Upper[I], Real[I]);
  }
  EXPECT_EQ(R.sumLower(), 1000u);
  EXPECT_EQ(R.sumUpper(), 1000u);
}

// --- section 3.2.3: the interprocedural example ----------------------------

namespace {
// 3 caller paths x 5 callee paths; C = 100 calls; only 1!1 is real (100).
constexpr uint32_t ipCell(int P, int Q) {
  return static_cast<uint32_t>((P - 1) * 5 + (Q - 1));
}
} // namespace

TEST(PaperInterprocExample, BLGivesZeroToHundredForAllPairs) {
  std::vector<SumConstraint> Cs;
  // Equation 9: the pair frequencies sum to the call count.
  SumConstraint Total{100, true, {}};
  for (int P = 1; P <= 3; ++P)
    for (int Q = 1; Q <= 5; ++Q)
      Total.Cells.push_back(ipCell(P, Q));
  Cs.push_back(Total);
  // Equations 11/12: each sequence frequency (200) caps its row/column.
  for (int P = 1; P <= 3; ++P) {
    SumConstraint Row{200, false, {}};
    for (int Q = 1; Q <= 5; ++Q)
      Row.Cells.push_back(ipCell(P, Q));
    Cs.push_back(Row);
  }
  for (int Q = 1; Q <= 5; ++Q) {
    SumConstraint Col{200, false, {}};
    for (int P = 1; P <= 3; ++P)
      Col.Cells.push_back(ipCell(P, Q));
    Cs.push_back(Col);
  }
  BoundsResult R = solveBounds(15, Cs);
  for (int I = 0; I < 15; ++I) {
    EXPECT_EQ(R.Lower[I], 0u);
    EXPECT_EQ(R.Upper[I], 100u);
  }
}

TEST(PaperInterprocExample, IOL1IsExact) {
  // I-OL-1 distinguishes callee path q1 (prefix gEn P1 B3 gEx) from the
  // others (prefix gEn P1 P2), and the observed tuples pin every pair.
  std::vector<SumConstraint> Cs;
  // Per caller path p, per callee prefix class: observed OL frequencies.
  // All 100 calls were p=1 ! q=1.
  Cs.push_back({100, true, {ipCell(1, 1)}});
  Cs.push_back({0, true, {ipCell(1, 2), ipCell(1, 3), ipCell(1, 4),
                          ipCell(1, 5)}});
  for (int P = 2; P <= 3; ++P) {
    Cs.push_back({0, true, {ipCell(P, 1)}});
    Cs.push_back({0, true, {ipCell(P, 2), ipCell(P, 3), ipCell(P, 4),
                            ipCell(P, 5)}});
  }
  BoundsResult R = solveBounds(15, Cs);
  for (int I = 0; I < 15; ++I) {
    uint64_t Want = I == ipCell(1, 1) ? 100 : 0;
    EXPECT_EQ(R.Lower[I], Want) << I;
    EXPECT_EQ(R.Upper[I], Want) << I;
  }
}
