//===--- GroundTruthTest.cpp - trace replay tests ------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "wpp/GroundTruth.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

GroundTruth truthOf(const Module &M, std::vector<int64_t> Args,
                    bool CallBreaking) {
  const Function *Main = M.findFunction("main");
  EXPECT_NE(Main, nullptr);
  Args.resize(Main->NumParams, 0);
  VectorTrace T;
  Interpreter I(M, nullptr, &T);
  RunResult R = I.run(*Main, Args);
  EXPECT_TRUE(R.Ok) << R.Error;
  GroundTruthOptions Opts;
  Opts.CallBreaking = CallBreaking;
  return GroundTruth::compute(M, T.Events, Opts, enumerateCallSites(M));
}

} // namespace

TEST(GroundTruth, SimpleLoopPathSplit) {
  auto M = compileOrDie(R"(
    fn main() {
      var s = 0;
      var i = 0;
      while (i < 4) { s = s + i; i = i + 1; }
      return s;
    })");
  GroundTruth GT = truthOf(*M, {}, false);
  const auto &FD = GT.Funcs[0];
  // 4 iterations -> 4 backedge crossings; 5 path instances total
  // (entry..backedge, 3 full iterations, final iteration..exit).
  ASSERT_EQ(FD.BackedgeCount.size(), 1u);
  EXPECT_EQ(FD.BackedgeCount[0], 4u);
  uint64_t Instances = 0;
  for (uint64_t C : FD.Counts)
    Instances += C;
  // entry..backedge, 3 identical middle iterations, header..exit.
  EXPECT_EQ(Instances, 5u);
  EXPECT_EQ(GT.TotalPathInstances, 5u);
  EXPECT_EQ(GT.TotalBackedgeCrossings, 4u);
  // Pair counts per the loop: the middle path pairs with itself twice and
  // once each with first->middle and middle->exit.
  uint64_t PairTotal = 0;
  for (const auto &[K, C] : FD.LoopPairs[0])
    PairTotal += C;
  EXPECT_EQ(PairTotal, 4u);
}

TEST(GroundTruth, CallPairsWithBreaking) {
  auto M = compileOrDie(R"(
    fn g(x) { if (x > 2) { return x; } return 0; }
    fn main() {
      var s = 0;
      s = s + g(1);
      s = s + g(5);
      return s;
    })");
  GroundTruth GT = truthOf(*M, {}, true);
  EXPECT_EQ(GT.TotalCalls, 2u);
  EXPECT_EQ(GT.TotalReturns, 2u);
  ASSERT_EQ(GT.CallSites.size(), 2u);
  for (const auto &CS : GT.CallSites) {
    EXPECT_EQ(CS.Calls, 1u);
    ASSERT_EQ(CS.TypeIPairs.size(), 1u);  // one callee
    EXPECT_EQ(CS.TypeIPairs.begin()->second.size(), 1u);
    ASSERT_EQ(CS.TypeIIPairs.size(), 1u);
    EXPECT_EQ(CS.TypeIIPairs.begin()->second.size(), 1u);
  }
  // g took different paths for the two calls, so the two call sites must
  // reference different callee path classes.
  auto FirstInner = [&](const GroundTruth::CallSiteData &CS) {
    return static_cast<uint32_t>(
        CS.TypeIPairs.begin()->second.begin()->first & 0xFFFFFFFF);
  };
  EXPECT_NE(FirstInner(GT.CallSites[0]), FirstInner(GT.CallSites[1]));
}

TEST(GroundTruth, NonBreakingModeKeepsCallsTransparent) {
  auto M = compileOrDie(R"(
    fn g() { return 1; }
    fn main() { return g() + g(); })");
  GroundTruth GT = truthOf(*M, {}, false);
  // main contributes exactly one path instance (no splits at calls).
  uint64_t MainInstances = 0;
  for (uint64_t C : GT.Funcs[M->findFunction("main")->Id].Counts)
    MainInstances += C;
  EXPECT_EQ(MainInstances, 1u);
  // In breaking mode the same run splits main into three instances.
  GroundTruth GT2 = truthOf(*M, {}, true);
  uint64_t MainInstances2 = 0;
  for (uint64_t C : GT2.Funcs[M->findFunction("main")->Id].Counts)
    MainInstances2 += C;
  EXPECT_EQ(MainInstances2, 3u);
}

TEST(GroundTruth, PathKeysCarryEndKinds) {
  auto M = compileOrDie(R"(
    fn main(n) {
      var i = 0;
      while (i < n) { i = i + 1; }
      return i;
    })");
  GroundTruth GT = truthOf(*M, {3}, false);
  const auto &FD = GT.Funcs[0];
  bool SawBackedge = false, SawRet = false;
  for (const DynPathKey &K : FD.Paths) {
    if (K.End == PathEnd::Backedge) {
      SawBackedge = true;
      EXPECT_EQ(K.Loop, 0u);
    }
    if (K.End == PathEnd::Ret)
      SawRet = true;
  }
  EXPECT_TRUE(SawBackedge);
  EXPECT_TRUE(SawRet);
}
