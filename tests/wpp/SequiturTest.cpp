//===--- SequiturTest.cpp - grammar compression tests --------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "wpp/Sequitur.h"
#include "wpp/TraceStats.h"

#include "driver/Pipeline.h"
#include "frontend/Compiler.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

std::vector<uint32_t> roundTrip(const std::vector<uint32_t> &In,
                                Sequitur &G) {
  for (uint32_t S : In)
    G.append(S);
  return G.expand();
}

} // namespace

TEST(Sequitur, EmptyAndSingle) {
  Sequitur G;
  EXPECT_EQ(G.expand(), std::vector<uint32_t>{});
  G.append(7);
  EXPECT_EQ(G.expand(), std::vector<uint32_t>{7});
  EXPECT_TRUE(G.checkInvariants());
}

TEST(Sequitur, EmptyGrammarIsWellFormed) {
  // A grammar that never saw a symbol still satisfies every invariant:
  // exactly the start rule, zero RHS symbols, and a dump that renders.
  Sequitur G;
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.numRules(), 1u);
  EXPECT_EQ(G.grammarSize(), 0u);
  EXPECT_FALSE(G.dump().empty());
  EXPECT_EQ(G.expand(), std::vector<uint32_t>{});
}

TEST(Sequitur, SingleSymbolGrammarIsWellFormed) {
  // One appended terminal: the start rule holds a one-symbol body (legal
  // only for the start rule — checkInvariants enforces body length >= 2
  // for every other rule), and no auxiliary rule may have been created.
  Sequitur G;
  G.append(42);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.numRules(), 1u);
  EXPECT_EQ(G.grammarSize(), 1u);
  EXPECT_EQ(G.expand(), std::vector<uint32_t>{42});
}

TEST(Sequitur, TwoDistinctSymbolsStayInStartRule) {
  Sequitur G;
  G.append(1);
  G.append(2);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.numRules(), 1u);
  EXPECT_EQ(G.grammarSize(), 2u);
  EXPECT_EQ(G.expand(), (std::vector<uint32_t>{1, 2}));
}

TEST(Sequitur, ClassicAbcabcabc) {
  // "abcabcabcabc" must compress into nested rules.
  std::vector<uint32_t> In;
  for (int I = 0; I < 16; ++I) {
    In.push_back(1);
    In.push_back(2);
    In.push_back(3);
  }
  Sequitur G;
  EXPECT_EQ(roundTrip(In, G), In);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_LT(G.grammarSize(), In.size() / 2);
  EXPECT_GT(G.numRules(), 1u);
}

TEST(Sequitur, OverlappingRunsOfOneSymbol) {
  // The classic aaaa... edge case (overlapping digrams).
  std::vector<uint32_t> In(37, 5);
  Sequitur G;
  EXPECT_EQ(roundTrip(In, G), In);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_LT(G.grammarSize(), In.size());
}

TEST(Sequitur, NoRepetitionMeansNoRules) {
  std::vector<uint32_t> In = {1, 2, 3, 4, 5, 6, 7, 8};
  Sequitur G;
  EXPECT_EQ(roundTrip(In, G), In);
  EXPECT_EQ(G.numRules(), 1u); // only the start rule
  EXPECT_EQ(G.grammarSize(), In.size());
}

TEST(Sequitur, PaperExampleAbcdbc) {
  // Nevill-Manning & Witten's own example: 'abcdbcabcdbc'.
  std::vector<uint32_t> In = {'a', 'b', 'c', 'd', 'b', 'c',
                              'a', 'b', 'c', 'd', 'b', 'c'};
  Sequitur G;
  EXPECT_EQ(roundTrip(In, G), In);
  EXPECT_TRUE(G.checkInvariants());
  // The canonical grammar: S -> AA, A -> aBdB, B -> bc  (8 RHS symbols).
  EXPECT_LE(G.grammarSize(), 8u);
}

TEST(Sequitur, RandomStreamsRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Rng R(Seed);
    std::vector<uint32_t> In;
    size_t Len = 200 + R.nextBelow(2000);
    uint32_t Alphabet = 2 + static_cast<uint32_t>(R.nextBelow(12));
    for (size_t I = 0; I < Len; ++I)
      In.push_back(static_cast<uint32_t>(R.nextBelow(Alphabet)));
    Sequitur G;
    ASSERT_EQ(roundTrip(In, G), In) << "seed " << Seed;
    ASSERT_TRUE(G.checkInvariants()) << "seed " << Seed;
  }
}

TEST(Sequitur, StructuredStreamsCompressWell) {
  // Phrase-structured input, like a control-flow trace.
  Rng R(99);
  std::vector<std::vector<uint32_t>> Phrases;
  for (int P = 0; P < 6; ++P) {
    std::vector<uint32_t> Ph;
    for (size_t I = 0; I < 3 + R.nextBelow(6); ++I)
      Ph.push_back(static_cast<uint32_t>(R.nextBelow(40)));
    Phrases.push_back(Ph);
  }
  std::vector<uint32_t> In;
  for (int I = 0; I < 400; ++I)
    for (uint32_t S : R.pick(Phrases))
      In.push_back(S);
  Sequitur G;
  ASSERT_EQ(roundTrip(In, G), In);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_GT(static_cast<double>(In.size()) /
                static_cast<double>(G.grammarSize()),
            4.0);
}

TEST(TraceStats, DegenerateTracesHaveIdentityRatio) {
  // Empty and single-event traces are the identity compression. A 0/0
  // ratio here used to poison downstream averages with zeros; the
  // invariant now is ratio == 1 whenever either side is degenerate.
  TraceStats Empty = compressTrace({});
  EXPECT_EQ(Empty.RawEvents, 0u);
  EXPECT_DOUBLE_EQ(Empty.compressionRatio(), 1.0);

  std::vector<TraceEvent> One{{TraceEventKind::Enter, 0, 0}};
  TraceStats Single = compressTrace(One);
  EXPECT_EQ(Single.RawEvents, 1u);
  EXPECT_DOUBLE_EQ(Single.compressionRatio(), 1.0);

  TraceStats Hand;
  Hand.RawEvents = 5;
  Hand.GrammarSymbols = 0; // no grammar yet: treat as uncompressed
  EXPECT_DOUBLE_EQ(Hand.compressionRatio(), 1.0);
}

TEST(TraceStats, RealTraceCompresses) {
  const Workload *W = findWorkload("espresso");
  ASSERT_NE(W, nullptr);
  CompileResult CR = compileMiniC(W->Source);
  ASSERT_TRUE(CR.ok());
  const Function *Main = CR.M->findFunction("main");
  VectorTrace T;
  Interpreter I(*CR.M, nullptr, &T);
  RunResult R = I.run(*Main, {2, 5});
  ASSERT_TRUE(R.Ok) << R.Error;

  TraceStats S = compressTrace(T.Events);
  EXPECT_EQ(S.RawEvents, T.Events.size());
  EXPECT_GT(S.RawEvents, 10000u);
  // Control-flow traces are highly repetitive: expect strong compression,
  // yet a grammar that is still far larger than a path profile would be.
  EXPECT_GT(S.compressionRatio(), 5.0);
  EXPECT_GT(S.GrammarSymbols, 100u);
}
