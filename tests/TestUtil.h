//===--- TestUtil.h - Shared test fixtures ----------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built modules mirroring the paper's example CFGs, plus small
/// conveniences shared across the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_TESTS_TESTUTIL_H
#define OLPP_TESTS_TESTUTIL_H

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace olpp {
namespace testutil {

/// The control-flow graph of the paper's Table 2 (section 2.1): a loop with
/// three iteration paths.
///
///   En -> P1; P1 -> {B1, P2}; P2 -> {B2, B3}; B1/B2/B3 -> P3;
///   P3 -> {P1 (backedge), Ex}
///
/// Block ids: 0=En, 1=P1, 2=B1, 3=P2, 4=B2, 5=B3, 6=P3, 7=Ex.
/// The branch registers are parameters so tests can drive specific paths.
inline std::unique_ptr<Module> makePaperLoopModule() {
  auto M = std::make_unique<Module>();
  // Params: r0 = P1's branch, r1 = P2's branch, r2 = P3's branch.
  Function *F = M->addFunction("paper_loop", 3);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *P1 = F->addBlock("P1");
  BasicBlock *B1 = F->addBlock("B1");
  BasicBlock *P2 = F->addBlock("P2");
  BasicBlock *B2 = F->addBlock("B2");
  BasicBlock *B3 = F->addBlock("B3");
  BasicBlock *P3 = F->addBlock("P3");
  BasicBlock *Ex = F->addBlock("Ex");

  B.setBlock(En);
  B.br(P1);
  B.setBlock(P1);
  B.condBr(0, B1, P2);
  B.setBlock(B1);
  B.br(P3);
  B.setBlock(P2);
  B.condBr(1, B2, B3);
  B.setBlock(B2);
  B.br(P3);
  B.setBlock(B3);
  B.br(P3);
  B.setBlock(P3);
  B.condBr(2, P1, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  return M;
}

/// A loop body containing a PI edge at overlap degree 2 (in the spirit of
/// the paper's Figure 1):
///
///   En -> P1; P1 -> {B1, P2}; B1 -> P3; P2 -> {P3, B4}; B4 -> P3;
///   P3 -> {B2, P4}; B2 -> P4; P4 -> {P1 (backedge), Ex}
///
/// Block ids: 0=En, 1=P1, 2=B1, 3=P2, 4=B4, 5=P3, 6=B2, 7=P4, 8=Ex.
inline std::unique_ptr<Module> makePiEdgeModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("pi_loop", 4);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *P1 = F->addBlock("P1");
  BasicBlock *B1 = F->addBlock("B1");
  BasicBlock *P2 = F->addBlock("P2");
  BasicBlock *B4 = F->addBlock("B4");
  BasicBlock *P3 = F->addBlock("P3");
  BasicBlock *B2 = F->addBlock("B2");
  BasicBlock *P4 = F->addBlock("P4");
  BasicBlock *Ex = F->addBlock("Ex");

  B.setBlock(En);
  B.br(P1);
  B.setBlock(P1);
  B.condBr(0, B1, P2);
  B.setBlock(B1);
  B.br(P3);
  B.setBlock(P2);
  B.condBr(1, P3, B4);
  B.setBlock(B4);
  B.br(P3);
  B.setBlock(P3);
  B.condBr(2, B2, P4);
  B.setBlock(B2);
  B.br(P4);
  B.setBlock(P4);
  B.condBr(3, P1, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  return M;
}

/// A diamond-of-diamonds with *correlated* branches (the feasibility
/// subsystem's canonical example): both predicates test the same parameter,
/// so one of the four acyclic paths is statically impossible.
///
///   En(0): c1 = (p < 10);  c1 ? A : B
///   A(1):  br J            B(2): br J
///   J(3):  c2 = (p > 20);  c2 ? C : D
///   C(4):  ret 1           D(5): ret 0
///
/// Path En->A->J->C needs p < 10 && p > 20: infeasible. The other three
/// paths are realizable.
inline std::unique_ptr<Module> makeCorrelatedDiamondModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("diamond", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *A = F->addBlock("A");
  BasicBlock *Bb = F->addBlock("B");
  BasicBlock *J = F->addBlock("J");
  BasicBlock *C = F->addBlock("C");
  BasicBlock *D = F->addBlock("D");

  B.setBlock(En);
  Reg Ten = B.constInt(10);
  Reg C1 = B.binop(Opcode::CmpLt, 0, Ten);
  B.condBr(C1, A, Bb);
  B.setBlock(A);
  B.br(J);
  B.setBlock(Bb);
  B.br(J);
  B.setBlock(J);
  Reg Twenty = B.constInt(20);
  Reg C2 = B.binop(Opcode::CmpGt, 0, Twenty);
  B.condBr(C2, C, D);
  B.setBlock(C);
  B.ret(B.constInt(1));
  B.setBlock(D);
  B.ret(B.constInt(0));
  F->renumberBlocks();
  return M;
}

/// Compiles MiniC or fails the test with the diagnostics.
inline std::unique_ptr<Module> compileOrDie(std::string_view Source) {
  CompileResult R = compileMiniC(Source);
  EXPECT_TRUE(R.ok()) << R.diagText();
  return std::move(R.M);
}

} // namespace testutil
} // namespace olpp

#endif // OLPP_TESTS_TESTUTIL_H
