//===--- TaskPoolTest.cpp - work-stealing task pool tests -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The TaskPool contract the parallel pipeline stages rely on: every
// submitted task runs exactly once, tasks may submit subtasks and wait on
// them (even on a one-worker pool), exceptions propagate through wait(),
// destruction drains the queue, and parallelFor hands each slot to exactly
// one task at a time.
//
//===----------------------------------------------------------------------===//

#include "support/TaskPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

using namespace olpp;

namespace {

TEST(TaskPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  TaskPool Pool(4);
  constexpr int N = 200;
  std::atomic<int> Ran{0};
  std::vector<TaskPool::Task> Tasks;
  for (int I = 0; I < N; ++I)
    Tasks.push_back(Pool.submit([&] { Ran.fetch_add(1); }));
  for (auto &T : Tasks)
    T.wait();
  EXPECT_EQ(Ran.load(), N);
}

TEST(TaskPoolTest, NestedSubmitAndWaitDoesNotDeadlockOnOneWorker) {
  TaskPool Pool(1);
  std::atomic<int> Ran{0};
  TaskPool::Task Outer = Pool.submit([&] {
    std::vector<TaskPool::Task> Inner;
    for (int I = 0; I < 8; ++I)
      Inner.push_back(Pool.submit([&] { Ran.fetch_add(1); }));
    for (auto &T : Inner)
      T.wait(); // helping wait: the sole worker executes its own subtasks
    Ran.fetch_add(1);
  });
  Outer.wait();
  EXPECT_EQ(Ran.load(), 9);
}

TEST(TaskPoolTest, DeeplyNestedForkJoin) {
  TaskPool Pool(2);
  // Recursive fork/join: sum [0, 64) by binary splitting, every split a
  // task. Exercises steal + help under real nesting.
  std::function<uint64_t(uint64_t, uint64_t)> Sum =
      [&](uint64_t Lo, uint64_t Hi) -> uint64_t {
    if (Hi - Lo <= 4) {
      uint64_t S = 0;
      for (uint64_t I = Lo; I < Hi; ++I)
        S += I;
      return S;
    }
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    uint64_t Left = 0;
    TaskPool::Task T = Pool.submit([&] { Left = Sum(Lo, Mid); });
    uint64_t Right = Sum(Mid, Hi);
    T.wait();
    return Left + Right;
  };
  EXPECT_EQ(Sum(0, 64), 64u * 63u / 2);
}

TEST(TaskPoolTest, WaitRethrowsTaskException) {
  TaskPool Pool(2);
  TaskPool::Task Bad =
      Pool.submit([] { throw std::runtime_error("boom in task"); });
  EXPECT_THROW(Bad.wait(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<bool> Ran{false};
  TaskPool::Task Good = Pool.submit([&] { Ran.store(true); });
  Good.wait();
  EXPECT_TRUE(Ran.load());
}

TEST(TaskPoolTest, ParallelForPropagatesException) {
  TaskPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(16,
                                [&](size_t I, unsigned) {
                                  if (I == 7)
                                    throw std::runtime_error("item 7");
                                }),
               std::runtime_error);
}

TEST(TaskPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> Ran{0};
  constexpr int N = 64;
  {
    TaskPool Pool(2);
    for (int I = 0; I < N; ++I)
      Pool.submit([&] { Ran.fetch_add(1); });
    // No waits: the destructor must still run every queued task.
  }
  EXPECT_EQ(Ran.load(), N);
}

TEST(TaskPoolTest, ParallelForCoversEveryIndexOnceWithOwnedSlots) {
  TaskPool Pool(4);
  constexpr size_t N = 500;
  std::vector<std::atomic<int>> Seen(N);
  std::vector<std::atomic<int>> SlotBusy(Pool.numWorkers());
  std::atomic<bool> SlotRace{false};
  Pool.parallelFor(N, [&](size_t I, unsigned Slot) {
    ASSERT_LT(Slot, Pool.numWorkers());
    // A slot is owned by one task: no two items may run on it concurrently.
    if (SlotBusy[Slot].fetch_add(1) != 0)
      SlotRace.store(true);
    Seen[I].fetch_add(1);
    SlotBusy[Slot].fetch_sub(1);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;
  EXPECT_FALSE(SlotRace.load());
}

TEST(TaskPoolTest, ZeroAndOneItemParallelFor) {
  TaskPool Pool(3);
  int Ran = 0;
  Pool.parallelFor(0, [&](size_t, unsigned) { ++Ran; });
  EXPECT_EQ(Ran, 0);
  Pool.parallelFor(1, [&](size_t I, unsigned Slot) {
    EXPECT_EQ(I, 0u);
    EXPECT_EQ(Slot, 0u);
    ++Ran;
  });
  EXPECT_EQ(Ran, 1);
}

TEST(TaskPoolTest, SharedPoolIsUsable) {
  std::atomic<int> Ran{0};
  TaskPool::shared().parallelFor(32, [&](size_t, unsigned) {
    Ran.fetch_add(1);
  });
  EXPECT_EQ(Ran.load(), 32);
}

} // namespace
