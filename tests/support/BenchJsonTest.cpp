//===--- BenchJsonTest.cpp - bench report schema tests --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BenchJson.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

PipelineBenchReport samplePipelineReport() {
  PipelineBenchReport R;
  R.Prov.HardwareThreads = 4;
  R.Workloads = 9;
  R.Reps = 8;
  R.WallSeconds = 14.0;
  R.PlanCache.MemoHits = 207;
  R.PlanCache.ContentHits = 3;
  R.PlanCache.Misses = 9;
  for (unsigned Jobs : {1u, 2u, 4u}) {
    PipelinePoint P;
    P.Jobs = Jobs;
    P.Profiles = 72;
    P.CollectSeconds = 3.8 / Jobs;
    P.MergeSeconds = 0.001;
    P.SolveSeconds = 0.002;
    P.TotalSeconds = P.CollectSeconds + P.MergeSeconds + P.SolveSeconds;
    P.ProfilesPerSec = 72.0 / P.TotalSeconds;
    P.SpeedupVs1 = Jobs == 1 ? 1.0 : static_cast<double>(Jobs) * 0.9;
    R.Points.push_back(P);
  }
  return R;
}

EngineBenchReport sampleEngineReport() {
  EngineBenchReport R;
  R.Jobs = 1;
  R.WallSeconds = 9.3;
  WorkloadBench W;
  W.Name = "li";
  W.Fast = {0.01, 1000, 100000.0};
  W.Reference = {0.02, 1000, 50000.0};
  W.Speedup = 2.0;
  W.SolverEvaluationsWorklist = 243;
  W.SolverEvaluationsSweep = 321;
  W.TracesRecorded = 3;
  W.TraceStepPercent = 41.5;
  W.DeoptRate = 0.02;
  R.Workloads.push_back(W);
  return R;
}

TEST(BenchJsonTest, EngineValidatorRejectsMissingTraceStats) {
  std::string Text = renderEngineBenchJson(sampleEngineReport());
  size_t At = Text.find("\"traces_recorded\"");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 17, "\"traces_recorder\"");
  std::string Error;
  EXPECT_FALSE(validateEngineBenchJson(Text, Error));
  EXPECT_NE(Error.find("traces_recorded"), std::string::npos) << Error;
}

TEST(BenchJsonTest, PipelineRenderRoundTripsThroughItsValidator) {
  std::string Error;
  EXPECT_TRUE(
      validatePipelineBenchJson(renderPipelineBenchJson(samplePipelineReport()),
                                Error))
      << Error;
}

TEST(BenchJsonTest, PipelineValidatorRejectsMissingPlanCache) {
  std::string Text = renderPipelineBenchJson(samplePipelineReport());
  size_t At = Text.find("\"plan_cache\"");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 12, "\"plan_cachy\"");
  std::string Error;
  EXPECT_FALSE(validatePipelineBenchJson(Text, Error));
  EXPECT_NE(Error.find("plan_cache"), std::string::npos) << Error;
}

TEST(BenchJsonTest, PipelineValidatorRejectsEmptyPointList) {
  PipelineBenchReport R = samplePipelineReport();
  R.Points.clear();
  std::string Error;
  EXPECT_FALSE(validatePipelineBenchJson(renderPipelineBenchJson(R), Error));
  EXPECT_NE(Error.find("points"), std::string::npos) << Error;
}

TEST(BenchJsonTest, PipelineValidatorPinsTheJobsOneAnchor) {
  // The jobs=1 point is its own baseline; any other speedup is a harness
  // bug, and the validator refuses to bless it.
  PipelineBenchReport R = samplePipelineReport();
  R.Points[0].SpeedupVs1 = 1.3;
  std::string Error;
  EXPECT_FALSE(validatePipelineBenchJson(renderPipelineBenchJson(R), Error));
  EXPECT_NE(Error.find("speedup_vs_1"), std::string::npos) << Error;
}

AnalyzeBenchReport sampleAnalyzeReport() {
  AnalyzeBenchReport R;
  R.Reps = 3;
  R.WallSeconds = 0.4;
  AnalyzeWorkloadBench W;
  W.Name = "loopcall";
  W.Functions = 3;
  W.PathIds = 24;
  W.InfeasibleIds = 4;
  W.InfeasiblePercent = 100.0 * 4 / 24;
  W.SummarySeconds = 0.001;
  W.EnumerateSeconds = 0.004;
  W.SecondsPerFunction = 0.005 / 3;
  W.TighteningRatio = 0.8;
  W.InfeasiblePairs = 3;
  R.Workloads.push_back(W);
  return R;
}

TEST(BenchJsonTest, ProvenanceIsEmbeddedInEveryReport) {
  // Every schema leads with the same provenance pair, filled from the
  // build: hardware_threads and a non-empty git_rev.
  BenchProvenance P = benchProvenance();
  EXPECT_GE(P.HardwareThreads, 1u);
  EXPECT_FALSE(P.GitRev.empty());
  for (const std::string &Text :
       {renderEngineBenchJson(sampleEngineReport()),
        renderPipelineBenchJson(samplePipelineReport()),
        renderProfdataBenchJson({}),
        renderAnalyzeBenchJson(sampleAnalyzeReport())}) {
    EXPECT_NE(Text.find("\"hardware_threads\""), std::string::npos) << Text;
    EXPECT_NE(Text.find("\"git_rev\""), std::string::npos) << Text;
  }
}

TEST(BenchJsonTest, ValidatorRejectsMissingGitRev) {
  std::string Text = renderEngineBenchJson(sampleEngineReport());
  size_t At = Text.find("\"git_rev\"");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 9, "\"git_rv\"");
  std::string Error;
  EXPECT_FALSE(validateEngineBenchJson(Text, Error));
  EXPECT_NE(Error.find("git_rev"), std::string::npos) << Error;
}

TEST(BenchJsonTest, PipelineValidatorRejectsOversubscribedPoints) {
  // A jobs=8 point on a 4-thread box times the scheduler, not the
  // pipeline; the validator refuses to bless such a curve.
  PipelineBenchReport R = samplePipelineReport();
  PipelinePoint P = R.Points.back();
  P.Jobs = 8;
  P.SpeedupVs1 = 0.7;
  R.Points.push_back(P);
  std::string Error;
  EXPECT_FALSE(validatePipelineBenchJson(renderPipelineBenchJson(R), Error));
  EXPECT_NE(Error.find("jobs exceeds hardware_threads"), std::string::npos)
      << Error;
  // At the hardware thread count exactly, the point is legitimate.
  R.Points.pop_back();
  EXPECT_TRUE(validatePipelineBenchJson(renderPipelineBenchJson(R), Error))
      << Error;
}

OptBenchReport sampleOptReport() {
  OptBenchReport R;
  R.Reps = 5;
  R.WallSeconds = 2.5;
  OptWorkloadBench W;
  W.Name = "mcf";
  W.InlinedSites = 8;
  W.Superblocks = 5;
  W.BaselineSteps = 2529837;
  W.OptimizedSteps = 2493164;
  W.BaselineCalls = 449133;
  W.OptimizedCalls = 184833;
  W.BaselineSeconds = 0.0424;
  W.OptimizedSeconds = 0.0371;
  W.Speedup = W.BaselineSeconds / W.OptimizedSeconds;
  W.Agree = true;
  R.Workloads.push_back(W);
  return R;
}

TEST(BenchJsonTest, OptRenderRoundTripsThroughItsValidator) {
  std::string Text = renderOptBenchJson(sampleOptReport());
  std::string Error;
  EXPECT_TRUE(validateOptBenchJson(Text, Error)) << Error;
  // The sniffer recognizes the opt tag too.
  EXPECT_TRUE(validateBenchJson(Text, Error)) << Error;
}

TEST(BenchJsonTest, OptValidatorRejectsDisagreement) {
  // agree=false means the optimizer changed observable behavior; no perf
  // number excuses that, so the report as a whole is invalid.
  OptBenchReport R = sampleOptReport();
  R.Workloads[0].Agree = false;
  std::string Error;
  EXPECT_FALSE(validateOptBenchJson(renderOptBenchJson(R), Error));
  EXPECT_NE(Error.find("agree"), std::string::npos) << Error;
}

TEST(BenchJsonTest, OptValidatorRejectsMissingAgree) {
  std::string Text = renderOptBenchJson(sampleOptReport());
  size_t At = Text.find("\"agree\"");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 7, "\"agred\"");
  std::string Error;
  EXPECT_FALSE(validateOptBenchJson(Text, Error));
  EXPECT_NE(Error.find("agree"), std::string::npos) << Error;
}

TEST(BenchJsonTest, OptValidatorRejectsZeroOptimizedSeconds) {
  // A zero denominator would render any speedup meaningless.
  OptBenchReport R = sampleOptReport();
  R.Workloads[0].OptimizedSeconds = 0.0;
  std::string Error;
  EXPECT_FALSE(validateOptBenchJson(renderOptBenchJson(R), Error));
  EXPECT_NE(Error.find("optimized_seconds"), std::string::npos) << Error;
}

TEST(BenchJsonTest, OptValidatorRejectsEmptyWorkloads) {
  OptBenchReport R = sampleOptReport();
  R.Workloads.clear();
  std::string Error;
  EXPECT_FALSE(validateOptBenchJson(renderOptBenchJson(R), Error));
  EXPECT_NE(Error.find("workloads"), std::string::npos) << Error;
}

TEST(BenchJsonTest, AnalyzeRenderRoundTripsThroughItsValidator) {
  std::string Error;
  EXPECT_TRUE(validateAnalyzeBenchJson(
      renderAnalyzeBenchJson(sampleAnalyzeReport()), Error))
      << Error;
  EXPECT_TRUE(
      validateBenchJson(renderAnalyzeBenchJson(sampleAnalyzeReport()), Error))
      << Error;
}

TEST(BenchJsonTest, AnalyzeValidatorRejectsWideningRatio) {
  // A ratio above 1 would mean the feasibility facts widened the solver's
  // bounds — exactly the defect the fuzz oracle exists to catch.
  AnalyzeBenchReport R = sampleAnalyzeReport();
  R.Workloads[0].TighteningRatio = 1.2;
  std::string Error;
  EXPECT_FALSE(validateAnalyzeBenchJson(renderAnalyzeBenchJson(R), Error));
  EXPECT_NE(Error.find("tightening_ratio"), std::string::npos) << Error;
}

TEST(BenchJsonTest, AnalyzeValidatorRejectsEmptyWorkloads) {
  AnalyzeBenchReport R = sampleAnalyzeReport();
  R.Workloads.clear();
  std::string Error;
  EXPECT_FALSE(validateAnalyzeBenchJson(renderAnalyzeBenchJson(R), Error));
  EXPECT_NE(Error.find("workloads"), std::string::npos) << Error;
}

TEST(BenchJsonTest, SnifferDispatchesOnTheSchemaTag) {
  std::string Error;
  EXPECT_TRUE(
      validateBenchJson(renderEngineBenchJson(sampleEngineReport()), Error))
      << Error;
  EXPECT_TRUE(
      validateBenchJson(renderPipelineBenchJson(samplePipelineReport()),
                        Error))
      << Error;
}

TEST(BenchJsonTest, SnifferRejectsUnknownSchemaTags) {
  std::string Error;
  EXPECT_FALSE(
      validateBenchJson("{\"schema\": \"olpp.bench.nonsense/v9\"}", Error));
  EXPECT_NE(Error.find("unknown tag"), std::string::npos) << Error;
}

TEST(BenchJsonTest, CrossSchemaValidationFails) {
  // An engine report is not a pipeline report and vice versa.
  std::string Error;
  EXPECT_FALSE(validatePipelineBenchJson(
      renderEngineBenchJson(sampleEngineReport()), Error));
  EXPECT_FALSE(validateEngineBenchJson(
      renderPipelineBenchJson(samplePipelineReport()), Error));
}

} // namespace
