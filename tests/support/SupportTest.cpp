//===--- SupportTest.cpp - support library tests -----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/TableWriter.h"

#include <gtest/gtest.h>

using namespace olpp;

TEST(Format, Fixed) {
  EXPECT_EQ(formatFixed(1.5, 2), "1.50");
  EXPECT_EQ(formatFixed(-0.336, 1), "-0.3");
  EXPECT_EQ(formatFixed(0.0, 0), "0");
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(formatSignedPercent(-33.6), "-33.6 %");
  EXPECT_EQ(formatSignedPercent(4.4), "+4.4 %");
  EXPECT_EQ(formatSignedPercent(0.0), "+0.0 %");
}

TEST(Format, GroupedInt) {
  EXPECT_EQ(formatInt(3539310, true), "3,539,310");
  EXPECT_EQ(formatInt(-1234, true), "-1,234");
  EXPECT_EQ(formatInt(12), "12");
  EXPECT_EQ(formatInt(0, true), "0");
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(1);
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 5));
  }
}

TEST(Stats, MeanGeomeanMinMax) {
  std::vector<double> V = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(V), 7.0 / 3.0);
  EXPECT_NEAR(geomean(V), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(minOf(V), 1.0);
  EXPECT_DOUBLE_EQ(maxOf(V), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(TableWriter, TextAlignment) {
  TableWriter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"long-name", "22"});
  std::string Out = T.renderText();
  EXPECT_NE(Out.find("name       value"), std::string::npos);
  EXPECT_NE(Out.find("long-name  22"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter T({"a", "b"});
  T.addRow({"x,y", "with \"quote\""});
  std::string Out = T.renderCsv();
  EXPECT_NE(Out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Out.find("\"with \"\"quote\"\"\""), std::string::npos);
}
