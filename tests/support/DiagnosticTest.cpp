//===--- DiagnosticTest.cpp - structured diagnostic tests --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text rendering, severity helpers, and — the important part — a JSON
/// round-trip: renderDiagnosticsJson output is parsed back with a minimal
/// in-test JSON reader and every severity/pass/location/message field must
/// survive unchanged.
///
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <vector>

using namespace olpp;

namespace {

/// A parsed JSON scalar: null, a number, or a (decoded) string.
struct JsonValue {
  bool IsNull = false;
  bool IsNumber = false;
  std::string Text; ///< decoded string, or the number's digits
};

using JsonObject = std::map<std::string, JsonValue>;

/// Just enough JSON to read what renderDiagnosticsJson emits: an array of
/// flat objects whose values are strings, integers or null. Returns
/// std::nullopt on any syntax error.
class MiniJsonReader {
public:
  explicit MiniJsonReader(const std::string &S) : S(S) {}

  std::optional<std::vector<JsonObject>> parseArray() {
    std::vector<JsonObject> Objects;
    skipWs();
    if (!eat('['))
      return std::nullopt;
    skipWs();
    if (eat(']'))
      return Objects;
    while (true) {
      auto Obj = parseObject();
      if (!Obj)
        return std::nullopt;
      Objects.push_back(std::move(*Obj));
      skipWs();
      if (eat(']'))
        break;
      if (!eat(','))
        return std::nullopt;
    }
    skipWs();
    return Pos == S.size() ? std::make_optional(Objects) : std::nullopt;
  }

private:
  std::optional<JsonObject> parseObject() {
    JsonObject Obj;
    skipWs();
    if (!eat('{'))
      return std::nullopt;
    skipWs();
    if (eat('}'))
      return Obj;
    while (true) {
      skipWs();
      auto Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!eat(':'))
        return std::nullopt;
      auto Val = parseValue();
      if (!Val)
        return std::nullopt;
      Obj[*Key] = std::move(*Val);
      skipWs();
      if (eat('}'))
        break;
      if (!eat(','))
        return std::nullopt;
    }
    return Obj;
  }

  std::optional<JsonValue> parseValue() {
    skipWs();
    JsonValue V;
    if (Pos < S.size() && S[Pos] == '"') {
      auto Str = parseString();
      if (!Str)
        return std::nullopt;
      V.Text = std::move(*Str);
      return V;
    }
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      V.IsNull = true;
      return V;
    }
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == Start)
      return std::nullopt;
    V.IsNumber = true;
    V.Text = S.substr(Start, Pos - Start);
    return V;
  }

  std::optional<std::string> parseString() {
    if (!eat('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= S.size())
        return std::nullopt;
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        if (Code > 0x7F) // the renderer only escapes control chars
          return std::nullopt;
        Out.push_back(static_cast<char>(Code));
        break;
      }
      default:
        return std::nullopt;
      }
    }
    return std::nullopt; // unterminated
  }

  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool eat(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  const std::string &S;
  size_t Pos = 0;
};

Severity severityFromName(const std::string &Name) {
  if (Name == "note")
    return Severity::Note;
  if (Name == "warning")
    return Severity::Warning;
  EXPECT_EQ(Name, "error");
  return Severity::Error;
}

} // namespace

TEST(Diagnostic, SeverityNames) {
  EXPECT_STREQ(severityName(Severity::Note), "note");
  EXPECT_STREQ(severityName(Severity::Warning), "warning");
  EXPECT_STREQ(severityName(Severity::Error), "error");
}

TEST(Diagnostic, TextRendering) {
  Diagnostic Full = makeDiagAt(Severity::Warning, "lint-uninit", "main", 3,
                               "P2", "suspicious read", 7);
  EXPECT_EQ(Full.str(), "warning: [lint-uninit] main ^3(P2) #7: suspicious read");

  Diagnostic NoInstr =
      makeDiagAt(Severity::Error, "instr-check", "f", 2, "B1", "bad val");
  EXPECT_EQ(NoInstr.str(), "error: [instr-check] f ^2(B1): bad val");

  Diagnostic FuncLevel = makeDiag(Severity::Error, "verify", "g", "no ret");
  EXPECT_EQ(FuncLevel.str(), "error: [verify] g: no ret");

  Diagnostic ModuleLevel = makeDiag(Severity::Note, "lint", "", "all clean");
  EXPECT_EQ(ModuleLevel.str(), "note: [lint]: all clean");

  EXPECT_EQ(renderDiagnosticsText({Full, FuncLevel}),
            Full.str() + "\n" + FuncLevel.str() + "\n");
  EXPECT_EQ(renderDiagnosticsText({}), "");
}

TEST(Diagnostic, SeverityThreshold) {
  std::vector<Diagnostic> Diags = {
      makeDiag(Severity::Note, "p", "f", "n"),
      makeDiag(Severity::Warning, "p", "f", "w"),
  };
  EXPECT_TRUE(anySeverityAtLeast(Diags, Severity::Note));
  EXPECT_TRUE(anySeverityAtLeast(Diags, Severity::Warning));
  EXPECT_FALSE(anySeverityAtLeast(Diags, Severity::Error));
  EXPECT_FALSE(anySeverityAtLeast({}, Severity::Note));
}

TEST(Diagnostic, JsonEscape) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Diagnostic, JsonEmpty) {
  std::string Json = renderDiagnosticsJson({});
  MiniJsonReader Reader(Json);
  auto Parsed = Reader.parseArray();
  ASSERT_TRUE(Parsed.has_value()) << Json;
  EXPECT_TRUE(Parsed->empty());
}

TEST(Diagnostic, JsonRoundTrip) {
  std::vector<Diagnostic> Diags = {
      // Full location, message with every escape class.
      makeDiagAt(Severity::Error, "instr-check", "main", 5, "P3",
                 "bad \"val\" on\n\tedge \\chord", 2),
      // Block without instruction index.
      makeDiagAt(Severity::Warning, "lint-no-exit", "spin", 1, "L",
                 "loop never exits"),
      // Function level: block/blockName/instr must render as null.
      makeDiag(Severity::Warning, "lint-uninit", "f", "maybe uninit"),
      // Module level: function must render as null too.
      makeDiag(Severity::Note, "verify", "", "module note"),
  };

  std::string Json = renderDiagnosticsJson(Diags);
  MiniJsonReader Reader(Json);
  auto Parsed = Reader.parseArray();
  ASSERT_TRUE(Parsed.has_value()) << "not valid JSON:\n" << Json;
  ASSERT_EQ(Parsed->size(), Diags.size());

  for (size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    const JsonObject &O = (*Parsed)[I];
    for (const char *Key : {"severity", "pass", "function", "block",
                            "blockName", "instr", "message"})
      ASSERT_TRUE(O.count(Key)) << "missing key " << Key << " in #" << I;

    EXPECT_EQ(severityFromName(O.at("severity").Text), D.Sev) << "#" << I;
    EXPECT_EQ(O.at("pass").Text, D.Pass);
    EXPECT_EQ(O.at("message").Text, D.Message);

    if (D.Loc.Function.empty())
      EXPECT_TRUE(O.at("function").IsNull);
    else
      EXPECT_EQ(O.at("function").Text, D.Loc.Function);

    if (D.Loc.hasBlock()) {
      ASSERT_TRUE(O.at("block").IsNumber);
      EXPECT_EQ(O.at("block").Text, std::to_string(D.Loc.Block));
      EXPECT_EQ(O.at("blockName").Text, D.Loc.BlockName);
    } else {
      EXPECT_TRUE(O.at("block").IsNull);
      EXPECT_TRUE(O.at("blockName").IsNull);
    }

    if (D.Loc.hasInstr()) {
      ASSERT_TRUE(O.at("instr").IsNumber);
      EXPECT_EQ(O.at("instr").Text, std::to_string(D.Loc.Instr));
    } else {
      EXPECT_TRUE(O.at("instr").IsNull);
    }
  }
}
