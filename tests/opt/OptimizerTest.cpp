//===--- OptimizerTest.cpp - artifact-driven optimization -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The optimizer's contract mirrors the tracing tier's: invisibility. An
// optimized module must return exactly what the pristine module returns on
// both engines, verify, and take instrumentation again — the profile ->
// optimize -> profile loop has to close. These tests pin the transforms
// (inlining, superblock formation), the skip conditions that keep them
// sound (recursion, reachable void returns, loop-header tails), the
// artifact-heat rankings, the trace-tier warmup seeding, and the rebind
// failure mode: a stale-fingerprint artifact must be rejected with a clean
// diagnostic and never a partially bound result.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "frontend/Compiler.h"
#include "interp/Interpreter.h"
#include "interp/ProfileRuntime.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "profdata/ProfData.h"
#include "profile/Instrumenter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace olpp;

namespace {

InstrumentOptions fullOpts() {
  InstrumentOptions Opts;
  Opts.LoopOverlap = true;
  Opts.LoopDegree = 2;
  Opts.Interproc = true;
  Opts.InterprocDegree = 2;
  return Opts;
}

/// A pristine compile, an instrumented profiling run, and the artifact it
/// persists — the front half of the profile->optimize loop.
struct Profiled {
  std::unique_ptr<Module> Pristine;
  std::unique_ptr<Module> Instr;
  ModuleInstrumentation MI;
  ProfileArtifact Art;
  int64_t ReturnValue = 0;
};

Profiled profileOnce(const char *Source, std::vector<int64_t> Args) {
  Profiled P;
  CompileResult CR = compileMiniC(Source);
  EXPECT_TRUE(CR.ok()) << CR.diagText();
  if (!CR.ok())
    return P;
  P.Pristine = std::move(CR.M);
  P.Instr = P.Pristine->clone();
  P.MI = instrumentModule(*P.Instr, fullOpts());
  EXPECT_TRUE(P.MI.ok());
  ProfileRuntime Prof(P.Instr->numFunctions());
  for (uint32_t F = 0; F < P.Instr->numFunctions(); ++F)
    if (P.MI.Funcs[F].PG)
      Prof.configurePathStore(F, P.MI.Funcs[F].PG->numPaths());
  const Function *Main = P.Instr->findFunction("main");
  EXPECT_NE(Main, nullptr);
  Args.resize(Main->NumParams, 0);
  Interpreter I(*P.Instr, &Prof);
  RunConfig RC;
  RunResult R = I.run(*Main, Args, RC);
  EXPECT_TRUE(R.Ok) << R.Error;
  P.ReturnValue = R.ReturnValue;
  RunMeta Meta;
  Meta.Workload = "opt-test";
  Meta.Instr = fullOpts();
  Meta.Runs = 1;
  P.Art = ProfileArtifact::fromRuntime(*P.Pristine, P.MI, Prof, Meta);
  return P;
}

int64_t runMain(const Module &M, std::vector<int64_t> Args, EngineKind E,
                DynCounts *Counts = nullptr) {
  const Function *Main = M.findFunction("main");
  EXPECT_NE(Main, nullptr);
  Args.resize(Main->NumParams, 0);
  Interpreter I(M);
  RunConfig RC;
  RC.Engine = E;
  RunResult R = I.run(*Main, Args, RC);
  EXPECT_TRUE(R.Ok) << R.Error;
  if (Counts)
    *Counts = R.Counts;
  return R.ReturnValue;
}

/// Finds the first block of \p F holding a direct call.
uint32_t findCallBlock(const Function &F) {
  for (uint32_t B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B)->Instrs)
      if (I.Op == Opcode::Call)
        return B;
  ADD_FAILURE() << "no call block in " << F.Name;
  return 0;
}

// A hot loop around a small pure callee: the canonical inline target. The
// callee branches, so the inlined body is genuinely multi-block and the
// loop re-enters it every iteration.
const char *HotCallSource = R"(
  global acc;
  fn leaf(a, b) {
    if (a > b) { return a - b; }
    return b - a;
  }
  fn main(n) {
    var i = 0;
    while (i < n) {
      acc = acc + leaf(i, acc & 7);
      i = i + 1;
    }
    return acc;
  }
)";

// A heavily biased branch inside a hot loop: the overlapping `i!j` paths
// record the steady-state next-iteration trace the superblock former needs.
const char *BiasedLoopSource = R"(
  global acc;
  fn main(n) {
    var i = 0;
    while (i < n) {
      if (i & 63) {
        acc = acc + i;
      } else {
        acc = acc * 2;
      }
      i = i + 1;
    }
    return acc;
  }
)";

//===----------------------------------------------------------------------===//
// optimizeModule end to end
//===----------------------------------------------------------------------===//

TEST(Optimizer, InlinesHotCallAndPreservesSemantics) {
  Profiled P = profileOnce(HotCallSource, {200});
  ASSERT_TRUE(P.Pristine);

  OptOptions OO;
  OO.MinCount = 1;
  OptResult R;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(optimizeModule(*P.Pristine, P.Art, OO, R, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags.back().str());
  EXPECT_GE(R.Stats.InlinedSites, 1u);
  EXPECT_TRUE(verifyModuleDiags(*R.OptModule).empty());

  // Same answer on both engines, counts bit-identical between them, and
  // the inline visibly removed the call traffic.
  DynCounts Base, OptFast, OptRef;
  int64_t B = runMain(*P.Pristine, {200}, EngineKind::Fast, &Base);
  int64_t OF = runMain(*R.OptModule, {200}, EngineKind::Fast, &OptFast);
  int64_t ORf = runMain(*R.OptModule, {200}, EngineKind::Reference, &OptRef);
  EXPECT_EQ(B, OF);
  EXPECT_EQ(OF, ORf);
  EXPECT_TRUE(OptFast == OptRef);
  EXPECT_LT(OptFast.Calls, Base.Calls);

  // The loop closes: the optimized module re-instruments cleanly.
  auto InstrCopy = R.OptModule->clone();
  EXPECT_TRUE(instrumentModule(*InstrCopy, fullOpts()).ok());
}

TEST(Optimizer, FormsSuperblocksOnBiasedLoop) {
  Profiled P = profileOnce(BiasedLoopSource, {300});
  ASSERT_TRUE(P.Pristine);

  OptOptions OO;
  OO.MinCount = 1;
  EXPECT_FALSE(rankSuperblockCandidates(P.Art, P.MI, OO).empty())
      << "profiling the biased loop produced no backedge-crossing traces";

  OptResult R;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(optimizeModule(*P.Pristine, P.Art, OO, R, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags.back().str());
  EXPECT_TRUE(verifyModuleDiags(*R.OptModule).empty());
  for (int64_t N : {0, 1, 63, 64, 300})
    EXPECT_EQ(runMain(*P.Pristine, {N}, EngineKind::Fast),
              runMain(*R.OptModule, {N}, EngineKind::Reference))
        << "n = " << N;
}

TEST(Optimizer, RanksInlineCandidatesByHeat) {
  Profiled P = profileOnce(R"(
    global acc;
    fn hot(a) { return a + 1; }
    fn cold(a) { return a * 2; }
    fn main(n) {
      var i = 0;
      while (i < n) {
        acc = acc + hot(i);
        i = i + 1;
      }
      acc = acc + cold(n);
      return acc;
    }
  )",
                           {50});
  ASSERT_TRUE(P.Pristine);

  OptOptions OO;
  OO.MinCount = 1;
  std::vector<InlineDecision> Ranked = rankInlineCandidates(P.Art, P.MI, OO);
  ASSERT_GE(Ranked.size(), 2u);
  for (size_t I = 1; I < Ranked.size(); ++I)
    EXPECT_GE(Ranked[I - 1].Heat, Ranked[I].Heat);
  uint32_t HotId = 0;
  for (uint32_t F = 0; F < P.Pristine->numFunctions(); ++F)
    if (P.Pristine->function(F)->Name == "hot")
      HotId = F;
  EXPECT_EQ(Ranked[0].Callee, HotId)
      << "the 50x-hotter callee must rank first";
}

//===----------------------------------------------------------------------===//
// inlineCallSite skip conditions
//===----------------------------------------------------------------------===//

TEST(Optimizer, InlineSkipsRecursiveCall) {
  CompileResult CR = compileMiniC("fn main(a) {\n"
                                  "  if (a > 3) { return a; }\n"
                                  "  return main(a + 1);\n"
                                  "}\n");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Function *Main = CR.M->findFunction("main");
  std::string Skip;
  EXPECT_FALSE(inlineCallSite(*CR.M, *Main, findCallBlock(*Main), 200,
                              OptFault::None, Skip));
  EXPECT_EQ(Skip, "recursive call site");
}

TEST(Optimizer, InlineSkipsReachableVoidReturnIntoUsedResult) {
  // `half` falls off the end when a <= 0: its void return is *reachable*,
  // and main consumes the result — at runtime that traps ("void return
  // value used by the caller"), so inlining must refuse to erase it.
  CompileResult CR = compileMiniC("fn half(a) {\n"
                                  "  if (a > 0) { return a; }\n"
                                  "}\n"
                                  "fn main(a) {\n"
                                  "  return half(a);\n"
                                  "}\n");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Function *Main = CR.M->findFunction("main");
  std::string Skip;
  EXPECT_FALSE(inlineCallSite(*CR.M, *Main, findCallBlock(*Main), 200,
                              OptFault::None, Skip));
  EXPECT_EQ(Skip, "callee may return void into a used result");
}

TEST(Optimizer, InlinedLoopBodyStaysBitExact) {
  // Direct transform check: inline the in-loop call, then the rewired body
  // (fresh register window, re-zeroed live-ins) must agree with the
  // original on both engines across several trip counts.
  CompileResult CR = compileMiniC(HotCallSource);
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  auto Inlined = CR.M->clone();
  Function *Main = Inlined->findFunction("main");
  std::string Skip;
  ASSERT_TRUE(inlineCallSite(*Inlined, *Main, findCallBlock(*Main), 200,
                             OptFault::None, Skip))
      << Skip;
  EXPECT_TRUE(verifyModuleDiags(*Inlined).empty());
  for (int64_t N : {0, 1, 2, 25})
    EXPECT_EQ(runMain(*CR.M, {N}, EngineKind::Fast),
              runMain(*Inlined, {N}, EngineKind::Reference))
        << "n = " << N;
}

//===----------------------------------------------------------------------===//
// formSuperblock
//===----------------------------------------------------------------------===//

TEST(Optimizer, SuperblockDuplicatesSideEntranceAndMerges) {
  CompileResult CR = compileMiniC("fn main(a) {\n"
                                  "  var x = 0;\n"
                                  "  if (a > 0) {\n"
                                  "    x = 1;\n"
                                  "  } else {\n"
                                  "    x = 2;\n"
                                  "  }\n"
                                  "  x = x + 5;\n"
                                  "  return x;\n"
                                  "}\n");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Function *Main = CR.M->findFunction("main");
  // The diamond: entry cond-branches to then/else, both fall into the join.
  const Instruction &Cond = Main->entry()->terminator();
  ASSERT_EQ(Cond.Op, Opcode::CondBr);
  BasicBlock *Then = Cond.Target0;
  ASSERT_EQ(Then->terminator().Op, Opcode::Br);
  BasicBlock *Join = Then->terminator().Target0;

  auto Opt = CR.M->clone();
  Function *F = Opt->findFunction("main");
  uint32_t Dup = 0, Merged = 0;
  std::string Skip;
  ASSERT_TRUE(
      formSuperblock(*F, {Then->Id, Join->Id}, Dup, Merged, Skip))
      << Skip;
  // The else edge side-enters the join: the join is duplicated for it and
  // the hot then->join seam merges into one straight-line block.
  EXPECT_EQ(Dup, 1u);
  EXPECT_EQ(Merged, 1u);
  EXPECT_TRUE(verifyModuleDiags(*Opt).empty());
  for (int64_t A : {-1, 0, 1, 7})
    EXPECT_EQ(runMain(*CR.M, {A}, EngineKind::Fast),
              runMain(*Opt, {A}, EngineKind::Reference))
        << "a = " << A;
}

TEST(Optimizer, SuperblockRejectsLoopHeaderTail) {
  CompileResult CR = compileMiniC("fn main(n) {\n"
                                  "  var i = 0;\n"
                                  "  while (i < n) {\n"
                                  "    i = i + 1;\n"
                                  "  }\n"
                                  "  return i;\n"
                                  "}\n");
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  Function *Main = CR.M->findFunction("main");
  const CfgView Cfg = CfgView::build(*Main);
  const DomTree Dom = DomTree::compute(Cfg);
  const LoopInfo Loops = LoopInfo::compute(Cfg, Dom);
  ASSERT_FALSE(Loops.loops().empty());
  uint32_t Header = Loops.loops()[0].Header;
  // The latch: an in-loop predecessor of the header.
  uint32_t Latch = UINT32_MAX;
  for (uint32_t B = 0; B < Main->numBlocks(); ++B) {
    if (B == Main->entry()->Id)
      continue;
    for (const BasicBlock *S : Main->block(B)->successors())
      if (S->Id == Header)
        Latch = B;
  }
  ASSERT_NE(Latch, UINT32_MAX);
  uint32_t Dup = 0, Merged = 0;
  std::string Skip;
  EXPECT_FALSE(formSuperblock(*Main, {Latch, Header}, Dup, Merged, Skip));
  EXPECT_EQ(Skip, "trace tail crosses an inner loop header")
      << "duplicating a loop header would make the CFG irreducible";
}

//===----------------------------------------------------------------------===//
// Trace-tier seeding (the warmup skip)
//===----------------------------------------------------------------------===//

// Structurally like HotCallSource but a distinct program: execution plans
// are shared by content fingerprint (interp/PlanCache.h), so the seeding
// test needs a module no other test has already traced.
const char *SeedOnlySource = R"(
  global acc;
  fn leaf(a, b) {
    if (a > b) { return a - b + 2; }
    return b - a + 2;
  }
  fn main(n) {
    var i = 0;
    while (i < n) {
      acc = acc + leaf(i, acc & 15);
      i = i + 1;
    }
    return acc;
  }
)";

TEST(Optimizer, SeededRunArmsRecordingWithoutWarmup) {
  // Profile a long run, persist, then replay a run far too short to cross
  // the recording threshold by itself: unseeded it records nothing, seeded
  // from the artifact it records on the first completion.
  Profiled P = profileOnce(SeedOnlySource, {200});
  ASSERT_TRUE(P.Pristine);
  std::vector<HotPathSeed> Seeds = collectHotLoopPaths(P.Art, P.MI, 1, 64);
  ASSERT_FALSE(Seeds.empty());
  for (size_t I = 1; I < Seeds.size(); ++I)
    EXPECT_GE(Seeds[I - 1].Count, Seeds[I].Count);

  ArtifactBinding Bind;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(bindArtifactToModule(*P.Pristine, P.Art, Bind, Diags))
      << (Diags.empty() ? "(no diagnostic)" : Diags[0].str());

  auto ShortRun = [&](bool Seeded) {
    ProfileRuntime Prof(Bind.InstrModule->numFunctions());
    for (uint32_t F = 0; F < Bind.InstrModule->numFunctions(); ++F)
      if (Bind.MI.Funcs[F].PG)
        Prof.configurePathStore(F, Bind.MI.Funcs[F].PG->numPaths());
    if (Seeded)
      seedTraceTier(Prof, Seeds);
    Interpreter I(*Bind.InstrModule, &Prof);
    RunConfig RC;
    RC.Engine = EngineKind::Fast;
    RC.EnableTraces = true;
    RC.TraceThreshold = 32; // 8 iterations never reach this cold
    const Function *Main = Bind.InstrModule->findFunction("main");
    RunResult R = I.run(*Main, {8}, RC);
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.Trace.Recorded;
  };
  EXPECT_EQ(ShortRun(false), 0u);
  EXPECT_GE(ShortRun(true), 1u);
}

//===----------------------------------------------------------------------===//
// Rebind failure (stale artifacts stay rejected, never partially bound)
//===----------------------------------------------------------------------===//

TEST(Optimizer, StaleFingerprintArtifactFailsBindCleanly) {
  // The checked-in golden artifact profiles a program this module is not:
  // the bind must fail on the fingerprint with a profdata-bind diagnostic
  // and leave the binding empty — no instrumented clone, no counters.
  ProfileArtifact A;
  std::vector<Diagnostic> ReadDiags;
  ASSERT_TRUE(readProfileArtifactFile(
      std::string(OLPP_TEST_DATA_DIR) + "/tiny.olpp", A, ReadDiags));

  CompileResult CR = compileMiniC(HotCallSource);
  ASSERT_TRUE(CR.ok()) << CR.diagText();
  ArtifactBinding Bind;
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(bindArtifactToModule(*CR.M, A, Bind, Diags));
  EXPECT_FALSE(Bind.ok());
  EXPECT_EQ(Bind.InstrModule, nullptr) << "a failed bind must stay empty";
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags[0].Pass, "profdata-bind");
  EXPECT_NE(Diags[0].Message.find("fingerprint mismatch"), std::string::npos)
      << Diags[0].Message;

  // The optimizer front door refuses the same way: no module comes back.
  OptResult R;
  std::vector<Diagnostic> OptDiags;
  EXPECT_FALSE(optimizeModule(*CR.M, A, OptOptions(), R, OptDiags));
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.OptModule, nullptr);
  EXPECT_FALSE(OptDiags.empty());
}

TEST(Optimizer, OptimizedModuleRejectsItsSourceArtifact) {
  // After inlining, the module is a different program: re-binding the
  // artifact that drove the optimization must fail the fingerprint check
  // cleanly instead of silently mis-attributing counters.
  Profiled P = profileOnce(HotCallSource, {200});
  ASSERT_TRUE(P.Pristine);
  OptOptions OO;
  OO.MinCount = 1;
  OptResult R;
  std::vector<Diagnostic> Diags;
  ASSERT_TRUE(optimizeModule(*P.Pristine, P.Art, OO, R, Diags));
  ASSERT_GE(R.Stats.InlinedSites, 1u);

  ArtifactBinding Bind;
  std::vector<Diagnostic> BindDiags;
  EXPECT_FALSE(bindArtifactToModule(*R.OptModule, P.Art, Bind, BindDiags));
  EXPECT_FALSE(Bind.ok());
  EXPECT_EQ(Bind.InstrModule, nullptr);
  ASSERT_FALSE(BindDiags.empty());
  EXPECT_EQ(BindDiags[0].Pass, "profdata-bind");
}

} // namespace
