//===--- InstrCheckTest.cpp - instrumentation invariant checker tests --------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker must (a) pass every correctly instrumented module — the
/// paper examples under all option mixes and the whole workload suite,
/// which is how the Ball-Larus bijectivity proof is exercised end to end —
/// and (b) reject seeded instrumenter bugs: a perturbed chord increment
/// breaks the telescoping check, a perturbed probe payload breaks the
/// probe-plan multiset comparison with a block-level diagnostic.
///
//===----------------------------------------------------------------------===//

#include "profile/InstrCheck.h"

#include "ir/Module.h"
#include "profile/Instrumenter.h"
#include "workloads/Workloads.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <memory>

using namespace olpp;

namespace {

/// Instruments a fresh copy and expects the full invariant battery to pass.
void expectClean(std::unique_ptr<Module> M, const InstrumentOptions &Opts,
                 const char *What) {
  ModuleInstrumentation MI = instrumentModule(*M, Opts);
  ASSERT_TRUE(MI.ok()) << What << ": " << MI.Errors.front();
  std::vector<Diagnostic> Diags = checkInstrumentation(*M, MI);
  EXPECT_TRUE(Diags.empty()) << What << ":\n"
                             << renderDiagnosticsText(Diags);
}

bool anyMessageContains(const std::vector<Diagnostic> &Diags,
                        const std::string &Needle) {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(InstrCheck, CleanOnPaperLoopAllModes) {
  {
    InstrumentOptions O; // plain BL, chord increments
    expectClean(testutil::makePaperLoopModule(), O, "chords");
  }
  {
    InstrumentOptions O;
    O.UseChords = false;
    expectClean(testutil::makePaperLoopModule(), O, "naive");
  }
  {
    InstrumentOptions O;
    O.CallBreaking = true;
    expectClean(testutil::makePaperLoopModule(), O, "call-breaking");
  }
  for (uint32_t K = 1; K <= 3; ++K) {
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = K;
    expectClean(testutil::makePaperLoopModule(), O,
                ("overlap k=" + std::to_string(K)).c_str());
  }
  {
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = 2;
    O.UseChords = false;
    expectClean(testutil::makePaperLoopModule(), O, "overlap naive");
  }
}

TEST(InstrCheck, CleanOnPiEdgeModule) {
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 2;
  expectClean(testutil::makePiEdgeModule(), O, "pi-edge overlap k=2");
}

TEST(InstrCheck, CleanOnEveryWorkload) {
  // The full suite under the heaviest option mix: loop overlap plus
  // interprocedural Type I / Type II. Each function's numbering is
  // independently recounted and its increments re-telescoped, so a pass
  // here is the bijectivity proof for every seed workload.
  for (const Workload &W : allWorkloads()) {
    auto M = testutil::compileOrDie(W.Source);
    ASSERT_TRUE(M) << W.Name;
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = 2;
    O.Interproc = true;
    O.InterprocDegree = 2;
    expectClean(std::move(M), O, W.Name.c_str());
  }
}

TEST(InstrCheck, CatchesPerturbedChordIncrement) {
  auto M = testutil::makePaperLoopModule();
  InstrumentOptions O; // chord mode
  ModuleInstrumentation MI = instrumentModule(*M, O);
  ASSERT_TRUE(MI.ok());
  ASSERT_TRUE(checkInstrumentation(*M, MI).empty());

  // Seed the bug: bump one chord increment by one. The sum of increments
  // along any path through this chord no longer equals the path id.
  const PathGraph &PG = *MI.Funcs[0].PG;
  uint32_t Chord = UINT32_MAX;
  for (uint32_t E = 0; E < PG.numEdges(); ++E)
    if (!PG.edge(E).TreeEdge) {
      Chord = E;
      break;
    }
  ASSERT_NE(Chord, UINT32_MAX) << "chord mode must leave non-tree edges";
  const_cast<PGEdge &>(PG.edge(Chord)).Inc += 1;

  std::vector<Diagnostic> Diags = checkInstrumentation(*M, MI);
  ASSERT_FALSE(Diags.empty());
  for (const Diagnostic &D : Diags) {
    EXPECT_EQ(D.Sev, Severity::Error);
    EXPECT_EQ(D.Pass, "instr-check");
  }
  // The numbering audit itself must fire (not just the probe comparison):
  // either two routes into a join disagree or the Entry->Exit sum is off.
  EXPECT_TRUE(anyMessageContains(Diags, "route taken") ||
              anyMessageContains(Diags, "telescope"))
      << renderDiagnosticsText(Diags);
}

TEST(InstrCheck, CatchesPerturbedProbeWithBlockDiagnostic) {
  auto M = testutil::makePaperLoopModule();
  InstrumentOptions O;
  ModuleInstrumentation MI = instrumentModule(*M, O);
  ASSERT_TRUE(MI.ok());
  ASSERT_TRUE(checkInstrumentation(*M, MI).empty());

  // Seed the bug: rewrite the constant of one probe micro-op in place,
  // as a buggy instrumenter emitting a wrong increment would.
  Function &F = *M->function(0);
  Instruction *Victim = nullptr;
  for (uint32_t B = 0; B < F.numBlocks() && !Victim; ++B)
    for (Instruction &I : F.block(B)->Instrs)
      if (I.Op == Opcode::Probe && I.ProbePayload &&
          !I.ProbePayload->Ops.empty()) {
        Victim = &I;
        break;
      }
  ASSERT_NE(Victim, nullptr);
  auto Mutated = std::make_shared<ProbeProgram>(*Victim->ProbePayload);
  Mutated->Ops[0].C0 += 1234567;
  Victim->ProbePayload = std::move(Mutated);

  std::vector<Diagnostic> Diags = checkInstrumentation(*M, MI);
  ASSERT_FALSE(Diags.empty());
  // The finding must name the offending block, not just the function.
  bool BlockLevel = false;
  for (const Diagnostic &D : Diags) {
    EXPECT_EQ(D.Pass, "instr-check");
    BlockLevel |= D.Loc.hasBlock();
  }
  EXPECT_TRUE(BlockLevel) << renderDiagnosticsText(Diags);
  EXPECT_TRUE(anyMessageContains(Diags, "probe"))
      << renderDiagnosticsText(Diags);
}

TEST(InstrCheck, CatchesDroppedProbe) {
  auto M = testutil::makePaperLoopModule();
  InstrumentOptions O;
  ModuleInstrumentation MI = instrumentModule(*M, O);
  ASSERT_TRUE(MI.ok());

  // Seed the bug: delete one probe instruction outright.
  Function &F = *M->function(0);
  bool Removed = false;
  for (uint32_t B = 0; B < F.numBlocks() && !Removed; ++B) {
    auto &Instrs = F.block(B)->Instrs;
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      if (Instrs[Idx].Op == Opcode::Probe) {
        Instrs.erase(Instrs.begin() + static_cast<ptrdiff_t>(Idx));
        Removed = true;
        break;
      }
  }
  ASSERT_TRUE(Removed);

  std::vector<Diagnostic> Diags = checkInstrumentation(*M, MI);
  ASSERT_FALSE(Diags.empty());
  EXPECT_TRUE(anyMessageContains(Diags, "missing") ||
              anyMessageContains(Diags, "probe"))
      << renderDiagnosticsText(Diags);
}
