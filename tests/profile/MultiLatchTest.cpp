//===--- MultiLatchTest.cpp - loops with several backedges ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// MiniC lowering always produces a single latch, but the IR (and hence any
// hand-built or future frontend input) permits several backedges to one
// header. The profiler arms an overlap path per backedge; these tests pin
// that behaviour down end to end.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "wpp/ExpectedCounters.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

/// main(n): i = 0; while (i < n) { if (i & 1) latchA else latchB; i++ }
/// — two distinct backedges into one header.
std::unique_ptr<Module> makeTwoLatchModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("main", 1);
  IRBuilder B(*F);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Header = F->addBlock("header");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *LatchA = F->addBlock("latchA");
  BasicBlock *LatchB = F->addBlock("latchB");
  BasicBlock *Exit = F->addBlock("exit");

  B.setBlock(Entry);
  Reg I = B.constInt(0);
  Reg One = B.constInt(1);
  Reg Acc = B.constInt(0);
  B.br(Header);

  B.setBlock(Header);
  Reg Cond = B.binop(Opcode::CmpLt, I, 0 /* param n */);
  B.condBr(Cond, Body, Exit);

  B.setBlock(Body);
  Reg Odd = B.binop(Opcode::And, I, One);
  B.condBr(Odd, LatchA, LatchB);

  B.setBlock(LatchA);
  B.binopInto(Acc, Opcode::Add, Acc, I);
  B.binopInto(I, Opcode::Add, I, One);
  B.br(Header); // backedge #1

  B.setBlock(LatchB);
  B.binopInto(Acc, Opcode::Sub, Acc, I);
  B.binopInto(I, Opcode::Add, I, One);
  B.br(Header); // backedge #2

  B.setBlock(Exit);
  B.ret(Acc);
  F->renumberBlocks();
  return M;
}

} // namespace

TEST(MultiLatch, LoopInfoMergesLatches) {
  auto M = makeTwoLatchModule();
  ASSERT_TRUE(verifyModule(*M).empty());
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_EQ(LI.loop(0).Latches.size(), 2u);
  EXPECT_FALSE(LI.isIrreducible());
}

TEST(MultiLatch, PathGraphHasOneArmPerBackedge) {
  auto M = makeTwoLatchModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  PathGraphOptions Opts;
  Opts.LoopOverlap = true;
  Opts.Degree = 1;
  std::string Error;
  auto PG = PathGraph::build(F, Cfg, LI, Opts, Error);
  ASSERT_NE(PG, nullptr) << Error;
  uint64_t Arms = 0;
  for (uint32_t E = 0; E < PG->numEdges(); ++E)
    Arms += PG->edge(E).Kind == PGEdgeKind::Arm;
  EXPECT_EQ(Arms, 2u);
  for (uint32_t Latch : LI.loop(0).Latches)
    EXPECT_NE(PG->armEdgeFor(0, Latch), UINT32_MAX);
}

TEST(MultiLatch, CountersExactAcrossDegrees) {
  auto M = makeTwoLatchModule();
  for (uint32_t K : {0u, 1u, 2u, 4u}) {
    PipelineConfig C;
    C.Instr.LoopOverlap = true;
    C.Instr.LoopDegree = K;
    C.Args = {13};
    PipelineResult R = runPipeline(*M, C);
    ASSERT_TRUE(R.ok()) << "k=" << K << ": " << R.Errors[0];
    ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
    for (uint32_t FId = 0; FId < R.Prof->PathCounts.size(); ++FId)
      EXPECT_EQ(R.Prof->PathCounts[FId], EC.PathCounts[FId]) << "k=" << K;
    EXPECT_EQ(R.GT.TotalBackedgeCrossings, 13u);
  }
}

TEST(MultiLatch, ZeroIterationLoopIsFine) {
  auto M = makeTwoLatchModule();
  PipelineConfig C;
  C.Instr.LoopOverlap = true;
  C.Instr.LoopDegree = 2;
  C.Args = {0}; // loop never entered
  PipelineResult R = runPipeline(*M, C);
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  EXPECT_EQ(R.GT.TotalBackedgeCrossings, 0u);
  ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
  EXPECT_EQ(R.Prof->PathCounts[0], EC.PathCounts[0]);
}

TEST(MultiLatch, InstrumentedProbeShapes) {
  // Structural golden check on the paper CFG: the backedge carries
  // flush+arm+restart; every loop predicate carries an OLPred.
  auto M = testutil::makePaperLoopModule();
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 1;
  ModuleInstrumentation MI = instrumentModule(*M, O);
  ASSERT_TRUE(MI.ok());
  uint64_t Arms = 0, Flushes = 0, Preds = 0, Sets = 0, Counts = 0;
  for (const auto &BB : M->function(0)->blocks())
    for (const Instruction &I : BB->Instrs) {
      if (I.Op != Opcode::Probe)
        continue;
      for (const ProbeOp &P : I.ProbePayload->Ops)
        switch (P.Kind) {
        case ProbeOpKind::OLArm:
          ++Arms;
          break;
        case ProbeOpKind::OLFlush:
          ++Flushes;
          break;
        case ProbeOpKind::OLPred:
          ++Preds;
          break;
        case ProbeOpKind::BLSet:
          ++Sets;
          break;
        case ProbeOpKind::BLCount:
          ++Counts;
          break;
        default:
          break;
        }
    }
  EXPECT_EQ(Arms, 1u);   // one backedge
  EXPECT_GE(Flushes, 2u); // backedge + loop exit
  // P1, P2 and P3 are predicates, but only region members carry OLPred; at
  // k=1 the region is {P1, B1, P2, P3} with predicates P1, P2, P3.
  EXPECT_EQ(Preds, 3u);
  EXPECT_EQ(Sets, 2u);   // function entry + backedge restart
  EXPECT_EQ(Counts, 1u); // the Ex-bound count site
}
