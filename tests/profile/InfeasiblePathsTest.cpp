//===--- InfeasiblePathsTest.cpp - Infeasible path-id enumeration tests ------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/InfeasiblePaths.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/Summary.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

struct Built {
  CfgView Cfg;
  LoopInfo LI;
  std::unique_ptr<PathGraph> PG;
};

Built buildPG(const Function &F, PathGraphOptions Opts = {}) {
  Built B;
  B.Cfg = CfgView::build(F);
  DomTree DT = DomTree::compute(B.Cfg);
  B.LI = LoopInfo::compute(B.Cfg, DT);
  std::string Err;
  B.PG = PathGraph::build(F, B.Cfg, B.LI, Opts, Err);
  EXPECT_NE(B.PG, nullptr) << Err;
  return B;
}

} // namespace

TEST(InfeasiblePaths, CorrelatedDiamondPrunesOnePath) {
  auto M = makeCorrelatedDiamondModule();
  const Function &F = *M->function(0);
  Built B = buildPG(F);
  ASSERT_EQ(B.PG->numPaths(), 4u);

  FunctionInfeasibility FI =
      computeInfeasiblePaths(F, B.Cfg, *B.PG, nullptr);
  EXPECT_FALSE(FI.Exhausted);
  EXPECT_EQ(FI.InfeasibleIds, 1u);
  ASSERT_EQ(FI.Intervals.size(), 1u);
  EXPECT_EQ(FI.Intervals[0].Lo, FI.Intervals[0].Hi);

  // The pruned id is exactly the En->A->J->C path.
  uint32_t NEn = B.PG->whiteNode(0), NA = B.PG->whiteNode(1),
           NJ = B.PG->whiteNode(3), NC = B.PG->whiteNode(4);
  std::vector<uint32_t> Seq = {
      B.PG->entryStartEdgeTo(NEn), B.PG->realEdgeBetween(NEn, NA),
      B.PG->realEdgeBetween(NA, NJ), B.PG->realEdgeBetween(NJ, NC),
      B.PG->exitCountEdgeFrom(NC)};
  int64_t InfeasibleId = B.PG->encode(Seq);
  EXPECT_EQ(FI.Intervals[0].Lo, InfeasibleId);
  EXPECT_TRUE(FI.isInfeasible(InfeasibleId));
  for (int64_t Id = 0; Id < 4; ++Id)
    EXPECT_EQ(FI.isInfeasible(Id), Id == InfeasibleId) << Id;
}

TEST(InfeasiblePaths, UncorrelatedLoopHasNone) {
  auto M = makePaperLoopModule();
  const Function &F = *M->function(0);
  Built B = buildPG(F);
  FunctionInfeasibility FI =
      computeInfeasiblePaths(F, B.Cfg, *B.PG, nullptr);
  EXPECT_EQ(FI.InfeasibleIds, 0u);
  EXPECT_TRUE(FI.Intervals.empty());
  EXPECT_FALSE(FI.Exhausted);
}

TEST(InfeasiblePaths, OverlapRegionsAreWalkedToo) {
  auto M = makeCorrelatedDiamondModule();
  const Function &F = *M->function(0);
  PathGraphOptions Opts;
  Opts.LoopOverlap = true;
  Opts.Degree = 2;
  Built B = buildPG(F, Opts); // no loops: degenerates to plain BL
  FunctionInfeasibility FI =
      computeInfeasiblePaths(F, B.Cfg, *B.PG, nullptr);
  EXPECT_EQ(FI.InfeasibleIds, 1u);
}

TEST(InfeasiblePaths, CorrelatedLoopBodyAcrossBackedge) {
  // The loop guard pins i below 10; the in-body test i > 20 can then never
  // hold, so every path routing through that arm — whether entered from
  // the function entry or restarted at the backedge — is infeasible.
  auto M = compileOrDie("fn main(n, b) {\n"
                        "  var i = 0;\n"
                        "  var s = 0;\n"
                        "  while (i < 10) {\n"
                        "    if (i > 20) { s = s + 100; } else { s = s + 1; }\n"
                        "    i = i + 1;\n"
                        "  }\n"
                        "  return s;\n"
                        "}\n");
  const Function &F = *M->findFunction("main");
  Built B = buildPG(F);
  ModuleSummaries S = computeSummaries(*M);
  FunctionInfeasibility FI = computeInfeasiblePaths(F, B.Cfg, *B.PG, &S);
  EXPECT_GT(FI.InfeasibleIds, 0u);
  EXPECT_FALSE(FI.Exhausted);

  // Soundness cross-check: intervals are ascending, disjoint, in range.
  int64_t Prev = -1;
  for (const InfeasibleInterval &I : FI.Intervals) {
    EXPECT_GT(I.Lo, Prev);
    EXPECT_GE(I.Hi, I.Lo);
    EXPECT_LT(uint64_t(I.Hi), B.PG->numPaths());
    Prev = I.Hi;
  }
}

TEST(InfeasiblePaths, BudgetExhaustionIsHonest) {
  auto M = makeCorrelatedDiamondModule();
  const Function &F = *M->function(0);
  Built B = buildPG(F);
  InfeasibleOptions Tight;
  Tight.MaxVisits = 1;
  FunctionInfeasibility FI =
      computeInfeasiblePaths(F, B.Cfg, *B.PG, nullptr, Tight);
  EXPECT_TRUE(FI.Exhausted);
  // Whatever was emitted before the cutoff must still be sound intervals.
  for (const InfeasibleInterval &I : FI.Intervals)
    EXPECT_LE(I.Lo, I.Hi);
}

TEST(InfeasiblePaths, CallBreakingWalksContinuations) {
  // The callee's return range (0 or 1) contradicts the continuation's
  // r > 5 branch; with call-breaking the continuation path that takes the
  // r > 5 arm starts at the call-start copy. Its feasibility depends on
  // the *summary* return range, which proves r <= 1.
  auto M = compileOrDie("fn callee(x) {\n"
                        "  if (x > 0) { return 1; }\n"
                        "  return 0;\n"
                        "}\n"
                        "fn main(a, b) {\n"
                        "  var r = callee(a);\n"
                        "  if (r > 5) { return 111; }\n"
                        "  return 0;\n"
                        "}\n");
  const Function &Main = *M->findFunction("main");
  PathGraphOptions Opts;
  Opts.CallBreaking = true;
  Built B = buildPG(Main, Opts);
  ModuleSummaries S = computeSummaries(*M);
  FunctionInfeasibility FI = computeInfeasiblePaths(Main, B.Cfg, *B.PG, &S);
  EXPECT_GT(FI.InfeasibleIds, 0u);

  // Without summaries the call returns top and nothing is provable.
  FunctionInfeasibility NoSums =
      computeInfeasiblePaths(Main, B.Cfg, *B.PG, nullptr);
  EXPECT_EQ(NoSums.InfeasibleIds, 0u);
}
