//===--- InstrumentationTest.cpp - dynamic probe correctness ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "estimate/Estimators.h"
#include "ir/Verifier.h"
#include "wpp/ExpectedCounters.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

const char *LoopProgram = R"(
  fn main(n) {
    var s = 0;
    var i = 0;
    while (i < n) {
      if (i % 3 == 0) { s = s + 2; }
      else { s = s - 1; }
      i = i + 1;
    }
    return s;
  })";

const char *CallProgram = R"(
  fn add(a, b) { if (a > b) { return a; } return a + b; }
  fn main(n) {
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
      s = add(s, i);
    }
    return s;
  })";

PipelineResult runCfg(const char *Src, InstrumentOptions Instr,
                      std::vector<int64_t> Args) {
  PipelineConfig C;
  C.Instr = Instr;
  C.Args = std::move(Args);
  PipelineResult R = runPipelineOnSource(Src, C);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "" : R.Errors[0]);
  return R;
}

uint64_t totalCounts(const PipelineResult &R) {
  uint64_t N = 0;
  for (const auto &M : R.Prof->PathCounts)
    for (const auto &[Id, C] : M)
      N += C;
  return N;
}

void expectCountersMatch(const PipelineResult &R) {
  ExpectedCounters EC = computeExpectedCounters(R.MI, R.GT);
  for (uint32_t F = 0; F < R.Prof->PathCounts.size(); ++F) {
    EXPECT_EQ(R.Prof->PathCounts[F], EC.PathCounts[F])
        << "path counters differ in function " << F;
  }
  EXPECT_EQ(R.Prof->TypeICounts, EC.TypeICounts);
  EXPECT_EQ(R.Prof->TypeIICounts, EC.TypeIICounts);
}

} // namespace

TEST(Instrumentation, PlainBLCountsMatchGroundTruth) {
  PipelineResult R = runCfg(LoopProgram, {}, {10});
  expectCountersMatch(R);
  EXPECT_EQ(totalCounts(R), R.GT.TotalPathInstances);
}

TEST(Instrumentation, PlainBLNaiveIncrements) {
  InstrumentOptions O;
  O.UseChords = false;
  PipelineResult R = runCfg(LoopProgram, O, {10});
  expectCountersMatch(R);
}

TEST(Instrumentation, ChordAndNaiveAgree) {
  InstrumentOptions Chord;
  InstrumentOptions Naive;
  Naive.UseChords = false;
  PipelineResult A = runCfg(LoopProgram, Chord, {23});
  PipelineResult B = runCfg(LoopProgram, Naive, {23});
  EXPECT_EQ(A.Prof->PathCounts[0], B.Prof->PathCounts[0]);
  // The chord placement must not cost more than naive placement.
  EXPECT_LE(A.InstrCounts.ProbeCost, B.InstrCounts.ProbeCost);
}

TEST(Instrumentation, LoopOverlapCountsMatchGroundTruth) {
  for (uint32_t K : {0u, 1u, 2u, 3u, 5u}) {
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = K;
    PipelineResult R = runCfg(LoopProgram, O, {17});
    expectCountersMatch(R);
    EXPECT_EQ(totalCounts(R), R.GT.TotalPathInstances) << "degree " << K;
  }
}

TEST(Instrumentation, CallBreakingCountsMatchGroundTruth) {
  InstrumentOptions O;
  O.CallBreaking = true;
  PipelineResult R = runCfg(CallProgram, O, {9});
  expectCountersMatch(R);
  EXPECT_EQ(totalCounts(R), R.GT.TotalPathInstances);
}

TEST(Instrumentation, InterprocCountsMatchGroundTruth) {
  for (uint32_t K : {0u, 1u, 2u, 4u}) {
    InstrumentOptions O;
    O.Interproc = true;
    O.InterprocDegree = K;
    PipelineResult R = runCfg(CallProgram, O, {9});
    expectCountersMatch(R);
    // One Type I tuple per call and one Type II tuple per return.
    uint64_t TypeITotal = 0, TypeIITotal = 0;
    for (const auto &[Key, C] : R.Prof->TypeICounts)
      TypeITotal += C;
    for (const auto &[Key, C] : R.Prof->TypeIICounts)
      TypeIITotal += C;
    EXPECT_EQ(TypeITotal, R.GT.TotalCalls) << "degree " << K;
    EXPECT_EQ(TypeIITotal, R.GT.TotalReturns) << "degree " << K;
  }
}

TEST(Instrumentation, EverythingCombined) {
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 2;
  O.Interproc = true;
  O.InterprocDegree = 2;
  PipelineResult R = runCfg(CallProgram, O, {13});
  expectCountersMatch(R);
}

TEST(Instrumentation, RecursionIsHandled) {
  const char *Rec = R"(
    fn fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fn main(n) { return fib(n); })";
  InstrumentOptions O;
  O.Interproc = true;
  O.InterprocDegree = 3;
  O.LoopOverlap = true;
  O.LoopDegree = 1;
  PipelineResult R = runCfg(Rec, O, {9});
  expectCountersMatch(R);
}

TEST(Instrumentation, OverheadGrowsWithDegree) {
  double Prev = -1.0;
  for (uint32_t K : {0u, 2u, 5u}) {
    InstrumentOptions O;
    O.LoopOverlap = true;
    O.LoopDegree = K;
    PipelineResult R = runCfg(LoopProgram, O, {200});
    EXPECT_GT(R.overheadPercent(), 0.0);
    EXPECT_GE(R.overheadPercent(), Prev);
    Prev = R.overheadPercent();
  }
}

TEST(Instrumentation, InstrumentedModuleVerifies) {
  auto M = compileOrDie(CallProgram);
  InstrumentOptions O;
  O.LoopOverlap = true;
  O.LoopDegree = 2;
  O.Interproc = true;
  ModuleInstrumentation MI = instrumentModule(*M, O);
  ASSERT_TRUE(MI.ok());
  EXPECT_TRUE(verifyModule(*M).empty());
  // Probes were actually inserted.
  uint64_t Probes = 0;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const Instruction &I : BB->Instrs)
        if (I.Op == Opcode::Probe)
          ++Probes;
  EXPECT_GE(Probes, 10u);
}

TEST(Instrumentation, DegreeLimitsArePlausible) {
  // CallProgram truncates at the call immediately, so with call breaking
  // the useful degrees collapse to 0.
  auto M = compileOrDie(CallProgram);
  // The loop body has no conditionals: the header is the only predicate,
  // and blocks follow it, so distinguishing full iterations needs k = 1.
  DegreeLimits Lim = computeDegreeLimits(*M, /*CallBreaking=*/true);
  EXPECT_EQ(Lim.MaxLoopDegree, 1u);
  DegreeLimits Free = computeDegreeLimits(*M, /*CallBreaking=*/false);
  EXPECT_EQ(Free.MaxLoopDegree, 1u);

  // A branchier program has real overlap depth in both dimensions.
  auto M2 = compileOrDie(R"(
    fn weigh(a, b) {
      var w = 0;
      if (a > b) { w = a; } else { w = b; }
      if (w % 2 == 0) { w = w + 1; }
      return w;
    }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { s = s + 1; }
        if (i % 3 == 0) { s = s + 2; }
        s = s + weigh(s, i);
      }
      return s;
    })");
  DegreeLimits L2 = computeDegreeLimits(*M2, /*CallBreaking=*/true);
  EXPECT_GE(L2.MaxLoopDegree, 2u);
  EXPECT_GE(L2.MaxInterprocDegree, 2u);
  EXPECT_LE(L2.MaxLoopDegree, 64u);
}
