//===--- PathGraphTest.cpp - path graph numbering tests ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/PathGraph.h"
#include "profile/ProfileDecode.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace olpp;
using namespace olpp::testutil;

namespace {

struct Built {
  std::unique_ptr<Module> M;
  std::unique_ptr<CfgView> Cfg;
  std::unique_ptr<DomTree> Dom;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<PathGraph> PG;
};

Built buildPaper(const PathGraphOptions &Opts) {
  Built B;
  B.M = makePaperLoopModule();
  const Function &F = *B.M->function(0);
  B.Cfg = std::make_unique<CfgView>(CfgView::build(F));
  B.Dom = std::make_unique<DomTree>(DomTree::compute(*B.Cfg));
  B.LI = std::make_unique<LoopInfo>(LoopInfo::compute(*B.Cfg, *B.Dom));
  std::string Error;
  B.PG = PathGraph::build(F, *B.Cfg, *B.LI, Opts, Error);
  EXPECT_NE(B.PG, nullptr) << Error;
  return B;
}

} // namespace

TEST(PathGraph, PaperLoopHasTwelveBLPaths) {
  // Paper, Table 2: the example CFG has exactly 12 Ball-Larus paths.
  Built B = buildPaper({});
  EXPECT_EQ(B.PG->numPaths(), 12u);
}

TEST(PathGraph, PaperLoopOverlapPathCounts) {
  // Non-crossing paths: 3 from En to Ex plus 3 from P1 to Ex. Crossing
  // prefixes: 6 (Table 2 groups (ii) and (iii)). Suffix classes per degree
  // (Table 3): k=0 -> 1 class (P1), k=1 -> 2, k=2 -> 3 (the two pure OL-2
  // suffixes plus the shorter P1-B1-P3 path that ends at the backedge/exit).
  struct {
    uint32_t K;
    uint64_t Want;
  } Cases[] = {{0, 6 + 6 * 1}, {1, 6 + 6 * 2}, {2, 6 + 6 * 3},
               {3, 6 + 6 * 3} /* beyond max degree: unchanged */};
  for (auto [K, Want] : Cases) {
    PathGraphOptions Opts;
    Opts.LoopOverlap = true;
    Opts.Degree = K;
    Built B = buildPaper(Opts);
    EXPECT_EQ(B.PG->numPaths(), Want) << "degree " << K;
  }
}

TEST(PathGraph, DecodeEncodeRoundTripAllIds) {
  for (uint32_t K : {0u, 1u, 2u}) {
    PathGraphOptions Opts;
    Opts.LoopOverlap = true;
    Opts.Degree = K;
    Built B = buildPaper(Opts);
    for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id) {
      std::vector<uint32_t> Seq = B.PG->decode(Id);
      EXPECT_EQ(B.PG->encode(Seq), Id);
    }
  }
}

TEST(PathGraph, IdsAreDistinctPaths) {
  PathGraphOptions Opts;
  Opts.LoopOverlap = true;
  Opts.Degree = 2;
  Built B = buildPaper(Opts);
  std::set<std::vector<uint32_t>> Seen;
  for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id)
    EXPECT_TRUE(Seen.insert(B.PG->decode(Id)).second);
}

TEST(PathGraph, ChordIncrementsPreservePathSums) {
  for (bool Overlap : {false, true}) {
    PathGraphOptions Opts;
    Opts.LoopOverlap = Overlap;
    Opts.Degree = 2;
    Opts.UseChords = true;
    Built B = buildPaper(Opts);
    bool AnyTreeEdge = false;
    for (uint32_t E = 0; E < B.PG->numEdges(); ++E)
      AnyTreeEdge |= B.PG->edge(E).TreeEdge;
    EXPECT_TRUE(AnyTreeEdge) << "chord mode did not pick a spanning tree";
    for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id) {
      int64_t IncSum = 0;
      for (uint32_t E : B.PG->decode(Id))
        IncSum += B.PG->edge(E).Inc;
      EXPECT_EQ(IncSum, Id) << "chord increments disagree on id " << Id;
    }
  }
}

TEST(PathGraph, ChordModeInstrumentsFewerEdges) {
  PathGraphOptions Naive;
  Built A = buildPaper(Naive);
  PathGraphOptions Chord;
  Chord.UseChords = true;
  Built C = buildPaper(Chord);
  auto CountNonZeroRealIncs = [](const PathGraph &PG) {
    uint64_t N = 0;
    for (uint32_t E = 0; E < PG.numEdges(); ++E)
      if (PG.edge(E).Kind == PGEdgeKind::Real && PG.edge(E).Inc != 0)
        ++N;
    return N;
  };
  EXPECT_LT(CountNonZeroRealIncs(*C.PG), CountNonZeroRealIncs(*A.PG) + 1);
}

TEST(PathGraph, DecodedPathsInterpretCorrectly) {
  PathGraphOptions Opts;
  Opts.LoopOverlap = true;
  Opts.Degree = 1;
  Built B = buildPaper(Opts);
  uint64_t Crossing = 0, Plain = 0;
  for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id) {
    DecodedEntry D = decodePathId(*B.PG, Id);
    if (D.End == PathEnd::Backedge) {
      ++Crossing;
      EXPECT_EQ(D.Loop, 0u);
      ASSERT_FALSE(D.Suffix.empty());
      EXPECT_EQ(D.Suffix.front(), 1u) << "suffix must start at the header P1";
      EXPECT_EQ(D.White.Blocks.back(), 6u) << "prefix must end at latch P3";
    } else {
      ++Plain;
      EXPECT_EQ(D.End, PathEnd::Ret);
      EXPECT_EQ(D.White.Blocks.back(), 7u);
      EXPECT_TRUE(D.Suffix.empty());
    }
    // Round-trip through the encoders.
    if (D.End == PathEnd::Backedge)
      EXPECT_EQ(encodeOverlapId(*B.PG, D.White, D.Loop, D.Suffix), Id);
    else
      EXPECT_EQ(encodeWhiteId(*B.PG, D.White, D.End), Id);
  }
  EXPECT_EQ(Crossing, 12u); // 6 prefixes x 2 suffix classes at k=1
  EXPECT_EQ(Plain, 6u);
}

TEST(PathGraph, RefusesIrreducibleCfg) {
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *C = F->addBlock("c");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.condBr(0, A, C);
  B.setBlock(A);
  B.condBr(0, C, Ex);
  B.setBlock(C);
  B.condBr(0, A, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  std::string Error;
  EXPECT_EQ(PathGraph::build(*F, Cfg, LI, {}, Error), nullptr);
  EXPECT_NE(Error.find("irreducible"), std::string::npos);
}

TEST(PathGraph, RefusesPathExplosion) {
  // A long chain of diamonds: 2^40 paths exceeds a tiny MaxPaths budget.
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *Cur = F->addBlock("en");
  B.setBlock(Cur);
  for (int I = 0; I < 40; ++I) {
    BasicBlock *T = F->addBlock("t");
    BasicBlock *E = F->addBlock("e");
    BasicBlock *J = F->addBlock("j");
    B.condBr(0, T, E);
    B.setBlock(T);
    B.br(J);
    B.setBlock(E);
    B.br(J);
    B.setBlock(J);
  }
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  PathGraphOptions Opts;
  Opts.MaxPaths = 1 << 20;
  std::string Error;
  EXPECT_EQ(PathGraph::build(*F, Cfg, LI, Opts, Error), nullptr);
  EXPECT_NE(Error.find("paths"), std::string::npos);
}
