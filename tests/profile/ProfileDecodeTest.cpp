//===--- ProfileDecodeTest.cpp - path codec tests -----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDecode.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

struct Built {
  std::unique_ptr<Module> M;
  std::unique_ptr<CfgView> Cfg;
  std::unique_ptr<DomTree> Dom;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<PathGraph> PG;
};

Built build(std::unique_ptr<Module> M, const PathGraphOptions &Opts) {
  Built B;
  B.M = std::move(M);
  const Function &F = *B.M->function(0);
  B.Cfg = std::make_unique<CfgView>(CfgView::build(F));
  B.Dom = std::make_unique<DomTree>(DomTree::compute(*B.Cfg));
  B.LI = std::make_unique<LoopInfo>(LoopInfo::compute(*B.Cfg, *B.Dom));
  std::string Error;
  B.PG = PathGraph::build(F, *B.Cfg, *B.LI, Opts, Error);
  EXPECT_NE(B.PG, nullptr) << Error;
  return B;
}

} // namespace

TEST(ProfileDecode, RoundTripOnPiEdgeModule) {
  for (uint32_t K : {0u, 1u, 2u, 3u}) {
    PathGraphOptions Opts;
    Opts.LoopOverlap = true;
    Opts.Degree = K;
    Built B = build(makePiEdgeModule(), Opts);
    for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id) {
      DecodedEntry D = decodePathId(*B.PG, Id);
      if (D.End == PathEnd::Backedge && !D.Suffix.empty())
        EXPECT_EQ(encodeOverlapId(*B.PG, D.White, D.Loop, D.Suffix), Id);
      else
        EXPECT_EQ(encodeWhiteId(*B.PG, D.White, D.End), Id);
    }
  }
}

TEST(ProfileDecode, WhitePathsAreCfgPaths) {
  PathGraphOptions Opts;
  Opts.LoopOverlap = true;
  Opts.Degree = 2;
  Built B = build(makePaperLoopModule(), Opts);
  const Function &F = *B.M->function(0);
  for (int64_t Id = 0; Id < static_cast<int64_t>(B.PG->numPaths()); ++Id) {
    DecodedEntry D = decodePathId(*B.PG, Id);
    // Every consecutive block pair in the white part must be a CFG edge.
    for (size_t I = 0; I + 1 < D.White.Blocks.size(); ++I) {
      bool IsEdge = false;
      for (BasicBlock *S : F.block(D.White.Blocks[I])->successors())
        IsEdge |= S->Id == D.White.Blocks[I + 1];
      EXPECT_TRUE(IsEdge) << "id " << Id;
    }
    // Suffixes start at the loop header.
    if (!D.Suffix.empty())
      EXPECT_EQ(D.Suffix.front(), B.LI->loop(D.Loop).Header);
  }
}

TEST(ProfileDecode, CallBreakPathsDecode) {
  auto M = compileOrDie(R"(
    fn g(x) { return x + 1; }
    fn main(n) { return g(n) + g(n + 2); })");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  PathGraphOptions Opts;
  Opts.CallBreaking = true;
  std::string Error;
  auto PG = PathGraph::build(F, Cfg, LI, Opts, Error);
  ASSERT_NE(PG, nullptr) << Error;

  uint64_t CallEnds = 0, ContStarts = 0, RetEnds = 0;
  for (int64_t Id = 0; Id < static_cast<int64_t>(PG->numPaths()); ++Id) {
    DecodedEntry D = decodePathId(*PG, Id);
    if (D.End == PathEnd::CallBreak)
      ++CallEnds;
    if (D.White.StartsAtCallContinuation)
      ++ContStarts;
    if (D.End == PathEnd::Ret)
      ++RetEnds;
    EXPECT_EQ(encodeWhiteId(*PG, D.White, D.End), Id);
  }
  // Straight-line main with two calls: [entry..c1], [c1..c2], [c2..ret].
  EXPECT_EQ(PG->numPaths(), 3u);
  EXPECT_EQ(CallEnds, 2u);
  EXPECT_EQ(ContStarts, 2u);
  EXPECT_EQ(RetEnds, 1u);
}

TEST(ProfileDecode, DecodeProfileSortsAndCounts) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  ProfileRuntime::PathCountMap Counts;
  Counts[3] = 7;
  Counts[0] = 2;
  Counts[11] = 1;
  std::vector<DecodedEntry> Out = decodeProfile(*B.PG, Counts);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].Id, 0);
  EXPECT_EQ(Out[1].Id, 3);
  EXPECT_EQ(Out[2].Id, 11);
  EXPECT_EQ(Out[0].Count, 2u);
  EXPECT_EQ(Out[1].Count, 7u);
}

//===----------------------------------------------------------------------===//
// Checked decoding of serialized profiles. Unlike decodeProfile (trusted,
// assert-based: inputs come from our own runtime), the checked API treats
// the records as external data and must reject every malformed shape with a
// structured diagnostic instead of producing a partial counter set.
//===----------------------------------------------------------------------===//

TEST(ProfileDecode, ParseRecordsAcceptsWholePairs) {
  std::vector<ProfileRecord> Out;
  std::vector<Diagnostic> Diags;
  EXPECT_TRUE(parseProfileRecords({3, 7, 0, 2}, Out, Diags));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Id, 3);
  EXPECT_EQ(Out[0].Count, 7u);
  EXPECT_EQ(Out[1].Id, 0);
  EXPECT_EQ(Out[1].Count, 2u);
  EXPECT_TRUE(Diags.empty());
}

TEST(ProfileDecode, ParseRecordsRejectsTruncatedStream) {
  std::vector<ProfileRecord> Out;
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(parseProfileRecords({3, 7, 11}, Out, Diags));
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Diags[0].Pass, "profile-decode");
  EXPECT_NE(Diags[0].Message.find("truncated"), std::string::npos);
}

TEST(ProfileDecode, CheckedDecodeAcceptsCleanRecords) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  std::vector<ProfileRecord> Records{{3, 7}, {0, 2}, {11, 1}};
  std::vector<Diagnostic> Diags;
  std::vector<DecodedEntry> Out = decodeProfileChecked(*B.PG, Records, Diags);
  EXPECT_TRUE(Diags.empty()) << renderDiagnosticsText(Diags);
  ASSERT_EQ(Out.size(), 3u);

  // Same entries, in the same order, as the trusted decoder produces.
  ProfileRuntime::PathCountMap Counts{{3, 7}, {0, 2}, {11, 1}};
  std::vector<DecodedEntry> Trusted = decodeProfile(*B.PG, Counts);
  for (size_t I = 0; I < Out.size(); ++I) {
    EXPECT_EQ(Out[I].Id, Trusted[I].Id);
    EXPECT_EQ(Out[I].Count, Trusted[I].Count);
    EXPECT_TRUE(Out[I].White == Trusted[I].White);
  }
}

TEST(ProfileDecode, CheckedDecodeRejectsOutOfRangeId) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  int64_t Beyond = static_cast<int64_t>(B.PG->numPaths());
  for (int64_t Bad : {Beyond, static_cast<int64_t>(-1)}) {
    std::vector<ProfileRecord> Records{{0, 2}, {Bad, 1}};
    std::vector<Diagnostic> Diags;
    std::vector<DecodedEntry> Out =
        decodeProfileChecked(*B.PG, Records, Diags);
    EXPECT_TRUE(Out.empty()) << "id " << Bad
                             << ": rejection must be wholesale";
    ASSERT_EQ(Diags.size(), 1u) << "id " << Bad;
    EXPECT_EQ(Diags[0].Sev, Severity::Error);
    EXPECT_NE(Diags[0].Message.find("out of range"), std::string::npos)
        << Diags[0].Message;
  }
}

TEST(ProfileDecode, CheckedDecodeRejectsDuplicateId) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  std::vector<ProfileRecord> Records{{3, 7}, {3, 9}};
  std::vector<Diagnostic> Diags;
  std::vector<DecodedEntry> Out = decodeProfileChecked(*B.PG, Records, Diags);
  EXPECT_TRUE(Out.empty());
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Message.find("duplicate"), std::string::npos)
      << Diags[0].Message;
}

TEST(ProfileDecode, CheckedDecodeRejectsZeroCount) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  std::vector<ProfileRecord> Records{{0, 0}};
  std::vector<Diagnostic> Diags;
  std::vector<DecodedEntry> Out = decodeProfileChecked(*B.PG, Records, Diags);
  EXPECT_TRUE(Out.empty());
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Message.find("zero count"), std::string::npos)
      << Diags[0].Message;
}

TEST(ProfileDecode, CheckedDecodeReportsEveryMalformedRecord) {
  PathGraphOptions Opts;
  Built B = build(makePaperLoopModule(), Opts);
  std::vector<ProfileRecord> Records{{0, 2}, {-5, 1}, {0, 3}, {1, 0}};
  std::vector<Diagnostic> Diags;
  std::vector<DecodedEntry> Out = decodeProfileChecked(*B.PG, Records, Diags);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Diags.size(), 3u) << renderDiagnosticsText(Diags);
}

TEST(ProfileDecode, PathSigHashDistinguishesFlag) {
  PathSig A{false, {1, 2, 3}};
  PathSig B{true, {1, 2, 3}};
  EXPECT_FALSE(A == B);
  EXPECT_NE(PathSigHash()(A), PathSigHash()(B));
}
