//===--- DataflowTest.cpp - dataflow engine tests ----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic solver on hand-built shapes (diamond: one propagation pass;
/// loop: one extra pass around the backedge), both meets, and the two
/// classic instances the lint passes build on.
///
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/Cfg.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

/// En -> {A, B} -> J.  Block ids: 0=En, 1=A, 2=B, 3=J.
std::unique_ptr<Module> makeDiamondModule() {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("diamond", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *A = F->addBlock("A");
  BasicBlock *Bb = F->addBlock("B");
  BasicBlock *J = F->addBlock("J");
  B.setBlock(En);
  B.condBr(0, A, Bb);
  B.setBlock(A);
  B.br(J);
  B.setBlock(Bb);
  B.br(J);
  B.setBlock(J);
  B.ret(NoReg);
  F->renumberBlocks();
  return M;
}

/// f(p0): one register written on only one arm of a diamond, read at the
/// join. Block ids as in makeDiamondModule. Exposes both a real def and a
/// surviving pseudo-uninit def at the join.
std::unique_ptr<Module> makeHalfInitModule(Reg &R1Out, Reg &R2Out) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("half_init", 1);
  Reg R1 = F->newReg();
  Reg R2 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *A = F->addBlock("A");
  BasicBlock *Bb = F->addBlock("B");
  BasicBlock *J = F->addBlock("J");
  B.setBlock(En);
  B.condBr(0, A, Bb);
  B.setBlock(A);
  B.constInto(R1, 5);
  B.br(J);
  B.setBlock(Bb);
  B.br(J);
  B.setBlock(J);
  B.binopInto(R2, Opcode::Add, R1, 0);
  B.ret(R2);
  F->renumberBlocks();
  R1Out = R1;
  R2Out = R2;
  return M;
}

} // namespace

TEST(BitVector, Ops) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_EQ(V.count(), 0u);
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(64));
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));

  BitVector W(130);
  W.set(0);
  W.set(1);
  BitVector U = V;
  U.unionWith(W);
  EXPECT_EQ(U.count(), 3u); // {0, 1, 129}
  BitVector I = V;
  I.intersectWith(W);
  EXPECT_EQ(I.count(), 1u); // {0}
  BitVector D = V;
  D.subtract(W);
  EXPECT_EQ(D.count(), 1u); // {129}
  EXPECT_TRUE(I != D);

  // A full vector's padding bits must stay clear or count()/== would lie.
  BitVector Full(70, true);
  EXPECT_EQ(Full.count(), 70u);
}

TEST(Dataflow, ForwardUnionDiamond) {
  auto M = makeDiamondModule();
  CfgView Cfg = CfgView::build(*M->function(0));

  DataflowProblem P;
  P.Direction = DataflowDirection::Forward;
  P.Meet = DataflowMeet::Union;
  P.NumBits = 2;
  P.Gen.assign(4, BitVector(2));
  P.Kill.assign(4, BitVector(2));
  P.Gen[1].set(0); // A generates bit 0
  P.Gen[2].set(1); // B generates bit 1

  DataflowResult R = solveDataflow(Cfg, P);
  // Acyclic + RPO: everything settles in the first sweep, the second just
  // confirms the fixpoint.
  EXPECT_EQ(R.Passes, 2u);
  EXPECT_EQ(R.In[1].count(), 0u);
  EXPECT_TRUE(R.Out[1].test(0));
  // May-meet at the join: either arm's fact arrives.
  EXPECT_TRUE(R.In[3].test(0));
  EXPECT_TRUE(R.In[3].test(1));
}

TEST(Dataflow, ForwardIntersectionDiamond) {
  auto M = makeDiamondModule();
  CfgView Cfg = CfgView::build(*M->function(0));

  DataflowProblem P;
  P.Direction = DataflowDirection::Forward;
  P.Meet = DataflowMeet::Intersection;
  P.NumBits = 2;
  P.Gen.assign(4, BitVector(2));
  P.Kill.assign(4, BitVector(2));
  P.Gen[1].set(0); // A generates bit 0 only
  P.Gen[2].set(0); // B generates both
  P.Gen[2].set(1);

  DataflowResult R = solveDataflow(Cfg, P);
  // Must-meet at the join: only the fact both arms establish survives.
  EXPECT_TRUE(R.In[3].test(0));
  EXPECT_FALSE(R.In[3].test(1));
  // Entry takes the (empty) boundary, not the intersection identity.
  EXPECT_EQ(R.In[0].count(), 0u);
}

TEST(Dataflow, LoopNeedsExtraPass) {
  auto M = testutil::makePaperLoopModule();
  // Ids: 0=En, 1=P1, 2=B1, 3=P2, 4=B2, 5=B3, 6=P3, 7=Ex; backedge P3->P1.
  CfgView Cfg = CfgView::build(*M->function(0));

  DataflowProblem P;
  P.Direction = DataflowDirection::Forward;
  P.Meet = DataflowMeet::Union;
  P.NumBits = 1;
  P.Gen.assign(8, BitVector(1));
  P.Kill.assign(8, BitVector(1));
  P.Gen[2].set(0); // generated inside the loop body (B1)

  DataflowResult R = solveDataflow(Cfg, P);
  // The fact reaches the loop header only via the backedge, which costs one
  // extra sweep on top of the diamond's propagate + confirm.
  EXPECT_EQ(R.Passes, 3u);
  EXPECT_TRUE(R.In[1].test(0));  // header, via backedge
  EXPECT_TRUE(R.In[7].test(0));  // exit
  EXPECT_FALSE(R.In[2].test(0) && R.Passes < 2); // sanity
}

TEST(Dataflow, BackwardUnionLoop) {
  auto M = testutil::makePaperLoopModule();
  CfgView Cfg = CfgView::build(*M->function(0));

  // "Reaches an exit going forward" phrased backward: Ex generates a bit
  // that must flow against every edge to the entry.
  DataflowProblem P;
  P.Direction = DataflowDirection::Backward;
  P.Meet = DataflowMeet::Union;
  P.NumBits = 1;
  P.Gen.assign(8, BitVector(1));
  P.Kill.assign(8, BitVector(1));
  P.Gen[7].set(0);

  DataflowResult R = solveDataflow(Cfg, P);
  for (uint32_t B = 0; B < 8; ++B)
    EXPECT_TRUE(R.In[B].test(0)) << "block " << B;
}

TEST(ReachingDefs, PseudoUninitAndKills) {
  Reg R1 = NoReg, R2 = NoReg;
  auto M = makeHalfInitModule(R1, R2);
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  ReachingDefs RD = ReachingDefs::compute(F, Cfg);

  // Two real definition sites: the const of R1 in A, the add of R2 in J.
  ASSERT_EQ(RD.defs().size(), 2u);
  EXPECT_EQ(RD.defs()[0].R, R1);
  EXPECT_EQ(RD.defs()[1].R, R2);

  // Parameters arrive defined; locals start uninitialized.
  EXPECT_FALSE(RD.reachingIn(1).test(RD.uninitBit(0)));
  EXPECT_TRUE(RD.reachingIn(1).test(RD.uninitBit(R1)));

  // At the join both the real def (via A) and the pseudo-uninit def
  // (via B) of R1 reach — the classic maybe-uninitialized situation.
  EXPECT_TRUE(RD.reachingIn(3).test(0));
  EXPECT_TRUE(RD.reachingIn(3).test(RD.uninitBit(R1)));

  // defsOf ties a register to its real and pseudo bits.
  EXPECT_TRUE(RD.defsOf(R1).test(0));
  EXPECT_TRUE(RD.defsOf(R1).test(RD.uninitBit(R1)));
  EXPECT_FALSE(RD.defsOf(R1).test(1));
}

TEST(Liveness, AcrossBlocks) {
  Reg R1 = NoReg, R2 = NoReg;
  auto M = makeHalfInitModule(R1, R2);
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  Liveness LV = Liveness::compute(F, Cfg);

  // R1 is read at the join, so it is live through the arm that does not
  // write it and live into the entry, but dead below its def in A.
  EXPECT_TRUE(LV.liveIn(2).test(R1));
  EXPECT_TRUE(LV.liveIn(0).test(R1));
  EXPECT_FALSE(LV.liveIn(1).test(R1)); // A defines R1 before any use
  EXPECT_TRUE(LV.liveIn(0).test(0));   // the branch register (param)
  // R2 is born and consumed inside J.
  EXPECT_FALSE(LV.liveIn(3).test(R2));
  EXPECT_EQ(LV.liveOut(3).count(), 0u);
}
