//===--- SummaryTest.cpp - Call graph and function summary tests -------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/Summary.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

TEST(CallGraph, BottomUpSccOrder) {
  auto M = compileOrDie("fn leaf(x) { return x + 1; }\n"
                        "fn mid(x) { return leaf(x) + leaf(x + 1); }\n"
                        "fn main(a, b) { return mid(a); }\n");
  CallGraph CG = CallGraph::build(*M);
  ASSERT_EQ(CG.numFunctions(), 3u);
  uint32_t Leaf = M->findFunction("leaf")->Id;
  uint32_t Mid = M->findFunction("mid")->Id;
  uint32_t Main = M->findFunction("main")->Id;

  EXPECT_EQ(CG.node(Mid).Callees, (std::vector<uint32_t>{Leaf}));
  EXPECT_EQ(CG.node(Mid).NumCallSites, 2u);
  EXPECT_EQ(CG.node(Leaf).Callers, (std::vector<uint32_t>{Mid}));
  EXPECT_FALSE(CG.isRecursive(Leaf));
  EXPECT_FALSE(CG.anyIndirectCall());

  // SCCs come out callees-first: leaf before mid before main.
  const auto &Sccs = CG.sccs();
  auto Pos = [&](uint32_t F) {
    for (size_t I = 0; I < Sccs.size(); ++I)
      for (uint32_t Member : Sccs[I])
        if (Member == F)
          return I;
    ADD_FAILURE() << "function not in any SCC";
    return size_t(0);
  };
  EXPECT_LT(Pos(Leaf), Pos(Mid));
  EXPECT_LT(Pos(Mid), Pos(Main));
}

TEST(CallGraph, RecursionAndSelfLoops) {
  auto M = compileOrDie("fn odd(n) { if (n == 0) { return 0; } "
                        "return even(n - 1); }\n"
                        "fn even(n) { if (n == 0) { return 1; } "
                        "return odd(n - 1); }\n"
                        "fn self(n) { if (n < 1) { return 0; } "
                        "return self(n - 1) + n; }\n"
                        "fn main(a, b) { return odd(a) + self(b); }\n");
  CallGraph CG = CallGraph::build(*M);
  uint32_t Odd = M->findFunction("odd")->Id;
  uint32_t Even = M->findFunction("even")->Id;
  uint32_t Self = M->findFunction("self")->Id;
  EXPECT_TRUE(CG.isRecursive(Odd));
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_EQ(CG.sccOf(Odd), CG.sccOf(Even));
  EXPECT_TRUE(CG.isRecursive(Self));
  EXPECT_NE(CG.sccOf(Self), CG.sccOf(Odd));
  EXPECT_FALSE(CG.isRecursive(M->findFunction("main")->Id));
}

TEST(Summary, PureLeafAndGlobalWriter) {
  auto M = compileOrDie("global g;\n"
                        "fn pure(x) { return x * 2; }\n"
                        "fn writer(x) { g = x; return 0; }\n"
                        "fn caller(x) { return pure(x) + writer(x); }\n"
                        "fn main(a, b) { return caller(a); }\n");
  ModuleSummaries S = computeSummaries(*M);
  const FunctionSummary &Pure = S.summary(M->findFunction("pure")->Id);
  EXPECT_TRUE(Pure.SideEffectFree);
  EXPECT_TRUE(Pure.GlobalsWritten.empty());
  EXPECT_FALSE(Pure.TransitivelyIndirect);

  const FunctionSummary &Writer = S.summary(M->findFunction("writer")->Id);
  EXPECT_FALSE(Writer.SideEffectFree);
  EXPECT_EQ(Writer.GlobalsWritten.size(), 1u);
  EXPECT_EQ(Writer.Return, ValueRange::constant(0));

  // The write propagates transitively to the caller.
  const FunctionSummary &Caller = S.summary(M->findFunction("caller")->Id);
  EXPECT_FALSE(Caller.SideEffectFree);
  EXPECT_EQ(Caller.GlobalsWritten, Writer.GlobalsWritten);
}

TEST(Summary, ReturnRangesFlowBottomUp) {
  auto M = compileOrDie("fn sign(x) { if (x < 0) { return 0 - 1; } "
                        "if (x > 0) { return 1; } return 0; }\n"
                        "fn main(a, b) { return sign(a); }\n");
  ModuleSummaries S = computeSummaries(*M);
  const FunctionSummary &Sign = S.summary(M->findFunction("sign")->Id);
  EXPECT_EQ(Sign.Return, ValueRange::range(-1, 1));
  // main's return range inherits sign's through the call effect.
  const FunctionSummary &Main = S.summary(M->findFunction("main")->Id);
  EXPECT_EQ(Main.Return, ValueRange::range(-1, 1));
}

TEST(Summary, RecursionStaysConservativeButSound) {
  auto M = compileOrDie("fn f(n) { if (n < 1) { return 0; } "
                        "return f(n - 1); }\n"
                        "fn main(a, b) { return f(a); }\n");
  ModuleSummaries S = computeSummaries(*M);
  const FunctionSummary &F = S.summary(M->findFunction("f")->Id);
  EXPECT_TRUE(F.Recursive);
  // The intra-SCC call is treated as returning anything, so the summary
  // must be top (NOT the unsound constant 0 from the base case alone).
  EXPECT_TRUE(F.Return.isTop());
  EXPECT_TRUE(F.SideEffectFree);
}

TEST(Summary, EffectOfCallConservativeForIndirect) {
  // The frontend never emits CallInd; hand-build a caller that does.
  Module M;
  Function *Tgt = M.addFunction("tgt", 1);
  {
    IRBuilder B(*Tgt);
    B.setBlock(Tgt->addBlock("en"));
    B.ret(0);
    Tgt->renumberBlocks();
  }
  Function *Main = M.addFunction("main", 2);
  {
    IRBuilder B(*Main);
    B.setBlock(Main->addBlock("en"));
    Reg FId = B.constInt(0);
    Reg R = Main->newReg();
    B.callIndirect(R, FId, {1});
    B.ret(R);
    Main->renumberBlocks();
  }
  ModuleSummaries S = computeSummaries(M);
  EXPECT_TRUE(S.summary(Main->Id).TransitivelyIndirect);
  EXPECT_FALSE(S.summary(Main->Id).SideEffectFree);
  EXPECT_TRUE(S.Effects[Main->Id].HavocAllGlobals);
  EXPECT_FALSE(S.summary(Tgt->Id).TransitivelyIndirect);

  // effectOfCall on the CallInd instruction itself: maximally conservative.
  for (const Instruction &I : Main->block(0)->Instrs)
    if (I.Op == Opcode::CallInd) {
      CallEffect E = S.effectOfCall(I);
      EXPECT_TRUE(E.Return.isTop());
      EXPECT_TRUE(E.HavocAllGlobals);
    }
}
