//===--- AnalysisTest.cpp - CFG/dominators/loops tests -----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dominators.h"
#include "analysis/EdgeSplit.h"
#include "analysis/LoopInfo.h"
#include "ir/Verifier.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

TEST(Cfg, SuccsPredsAndRpo) {
  auto M = makePaperLoopModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  ASSERT_EQ(Cfg.numBlocks(), 8u);
  // En(0) -> P1(1)
  EXPECT_EQ(Cfg.succs(0), (std::vector<uint32_t>{1}));
  // P1 has preds En and P3.
  EXPECT_EQ(Cfg.preds(1), (std::vector<uint32_t>{0, 6}));
  // Everything is reachable.
  for (uint32_t B = 0; B < 8; ++B)
    EXPECT_TRUE(Cfg.isReachable(B));
  // RPO starts at the entry and is a topological order of forward edges.
  EXPECT_EQ(Cfg.rpo().front(), 0u);
  EXPECT_LT(Cfg.rpoIndex(1), Cfg.rpoIndex(6)); // P1 before P3
}

TEST(Cfg, UnreachableBlocks) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Dead = F->addBlock("dead");
  B.setBlock(Entry);
  B.ret(NoReg);
  B.setBlock(Dead);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  EXPECT_TRUE(Cfg.isReachable(0));
  EXPECT_FALSE(Cfg.isReachable(1));
  EXPECT_EQ(Cfg.rpo().size(), 1u);
}

TEST(Dominators, PaperLoop) {
  auto M = makePaperLoopModule();
  CfgView Cfg = CfgView::build(*M->function(0));
  DomTree Dom = DomTree::compute(Cfg);
  // En dominates everything.
  for (uint32_t B = 0; B < 8; ++B)
    EXPECT_TRUE(Dom.dominates(0, B));
  // P1 dominates the whole loop and the exit.
  EXPECT_TRUE(Dom.dominates(1, 6));
  EXPECT_TRUE(Dom.dominates(1, 7));
  // P2 dominates B2/B3 but not P3 (B1 bypasses it).
  EXPECT_TRUE(Dom.dominates(3, 4));
  EXPECT_TRUE(Dom.dominates(3, 5));
  EXPECT_FALSE(Dom.dominates(3, 6));
  // Idom of P3 is P1.
  EXPECT_EQ(Dom.idom(6), 1u);
}

TEST(LoopInfo, PaperLoop) {
  auto M = makePaperLoopModule();
  CfgView Cfg = CfgView::build(*M->function(0));
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_FALSE(LI.isIrreducible());
  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop &L = LI.loop(0);
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Latches, (std::vector<uint32_t>{6}));
  EXPECT_EQ(L.Blocks, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(L.ExitEdges,
            (std::vector<std::pair<uint32_t, uint32_t>>{{6, 7}}));
  EXPECT_TRUE(LI.isBackedge(6, 1));
  EXPECT_FALSE(LI.isBackedge(1, 2));
  EXPECT_EQ(LI.depthOf(3), 1u);
  EXPECT_EQ(LI.depthOf(0), 0u);
}

TEST(LoopInfo, NestedLoops) {
  auto M = compileOrDie(R"(
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < i; j = j + 1) {
          s = s + j;
        }
      }
      return s;
    })");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  ASSERT_EQ(LI.numLoops(), 2u);
  // One loop must be nested in the other.
  uint32_t Outer = LI.loop(0).Parent == UINT32_MAX ? 0 : 1;
  uint32_t Inner = 1 - Outer;
  EXPECT_EQ(LI.loop(Inner).Parent, Outer);
  EXPECT_EQ(LI.loop(Outer).Depth, 1u);
  EXPECT_EQ(LI.loop(Inner).Depth, 2u);
  EXPECT_TRUE(LI.loop(Outer).contains(LI.loop(Inner).Header));
}

TEST(LoopInfo, IrreducibleDetected) {
  // Two blocks jumping into each other's middle, entered from both sides.
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *C = F->addBlock("c");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.condBr(0, A, C);
  B.setBlock(A);
  B.condBr(0, C, Ex);
  B.setBlock(C);
  B.condBr(0, A, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_TRUE(LI.isIrreducible());
}

TEST(Dominators, SelfLoopBlock) {
  // en -> a, a -> {a, ex}: the smallest possible loop. The self-loop must
  // come out as a natural loop whose header, latch, and sole body block
  // coincide, with the backedge a -> a recognized.
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.br(A);
  B.setBlock(A);
  B.condBr(0, A, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  EXPECT_EQ(Dom.idom(A->Id), En->Id);
  EXPECT_TRUE(Dom.dominates(A->Id, A->Id));
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_FALSE(LI.isIrreducible());
  ASSERT_EQ(LI.numLoops(), 1u);
  const Loop &L = LI.loop(0);
  EXPECT_EQ(L.Header, A->Id);
  EXPECT_EQ(L.Latches, (std::vector<uint32_t>{A->Id}));
  EXPECT_EQ(L.Blocks, (std::vector<uint32_t>{A->Id}));
  EXPECT_TRUE(LI.isBackedge(A->Id, A->Id));
  EXPECT_EQ(LI.depthOf(A->Id), 1u);
  EXPECT_EQ(LI.depthOf(En->Id), 0u);
}

TEST(LoopInfo, SelfLoopNestedInOuterLoop) {
  // An outer while-loop whose body contains a self-looping block: the
  // self-loop must nest (depth 2) inside the outer loop (depth 1).
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *H = F->addBlock("h");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *Lt = F->addBlock("lt");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.br(H);
  B.setBlock(H);
  B.condBr(0, A, Ex);
  B.setBlock(A);
  B.condBr(0, A, Lt);
  B.setBlock(Lt);
  B.br(H);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_FALSE(LI.isIrreducible());
  ASSERT_EQ(LI.numLoops(), 2u);
  uint32_t Inner = LI.innermostLoop(A->Id);
  ASSERT_NE(Inner, UINT32_MAX);
  EXPECT_EQ(LI.loop(Inner).Header, A->Id);
  EXPECT_EQ(LI.loop(Inner).Depth, 2u);
  ASSERT_NE(LI.loop(Inner).Parent, UINT32_MAX);
  EXPECT_EQ(LI.loop(LI.loop(Inner).Parent).Header, H->Id);
  EXPECT_EQ(LI.depthOf(A->Id), 2u);
  EXPECT_EQ(LI.depthOf(Lt->Id), 1u);
}

TEST(Dominators, UnreachableBlocksHaveNoIdom) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *D1 = F->addBlock("d1");
  BasicBlock *D2 = F->addBlock("d2");
  B.setBlock(En);
  B.ret(NoReg);
  // d1 <-> d2: a cycle the entry never reaches.
  B.setBlock(D1);
  B.br(D2);
  B.setBlock(D2);
  B.br(D1);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  EXPECT_EQ(Dom.idom(En->Id), En->Id);
  EXPECT_EQ(Dom.idom(D1->Id), UINT32_MAX);
  EXPECT_EQ(Dom.idom(D2->Id), UINT32_MAX);
}

TEST(LoopInfo, UnreachableCycleIsNotALoop) {
  // The d1 <-> d2 cycle above has no dominator backedge (neither block is
  // reachable), so loop discovery must skip it rather than crash or invent
  // a loop — and must not flag the function irreducible either.
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *D1 = F->addBlock("d1");
  BasicBlock *D2 = F->addBlock("d2");
  B.setBlock(En);
  B.ret(NoReg);
  B.setBlock(D1);
  B.br(D2);
  B.setBlock(D2);
  B.br(D1);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_FALSE(LI.isIrreducible());
  EXPECT_EQ(LI.numLoops(), 0u);
  EXPECT_EQ(LI.depthOf(D1->Id), 0u);
  EXPECT_EQ(LI.innermostLoop(D2->Id), UINT32_MAX);
}

TEST(LoopInfo, IrreducibleBesideReducibleLoop) {
  // A proper natural loop next to a two-entry region: the irreducible flag
  // must trip, and the reducible loop must still be reported best-effort
  // (callers refuse to instrument on the flag, not on a loop count).
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *H = F->addBlock("h");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *C = F->addBlock("c");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.condBr(0, H, C);
  B.setBlock(H);
  B.condBr(0, H, A); // reducible self-loop on h
  B.setBlock(A);
  B.condBr(0, C, Ex);
  B.setBlock(C);
  B.condBr(0, A, Ex); // a <-> c entered from both sides: irreducible
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_TRUE(LI.isIrreducible());
  ASSERT_GE(LI.numLoops(), 1u);
  EXPECT_TRUE(LI.isBackedge(H->Id, H->Id));
}

TEST(LoopInfo, IrreducibleEntryCycleThroughEntryBlock) {
  // A retreating edge back to a block that does not dominate its source —
  // with the cycle running through the function entry's successors only.
  // Exercises the detector on the smallest two-block irreducible shape.
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *C = F->addBlock("c");
  BasicBlock *Ex = F->addBlock("ex");
  B.setBlock(En);
  B.condBr(0, A, C);
  B.setBlock(A);
  B.br(C);
  B.setBlock(C);
  B.condBr(0, A, Ex);
  B.setBlock(Ex);
  B.ret(NoReg);
  F->renumberBlocks();
  CfgView Cfg = CfgView::build(*F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  EXPECT_TRUE(LI.isIrreducible());
  EXPECT_FALSE(LI.isBackedge(C->Id, A->Id));
  EXPECT_FALSE(LI.isBackedge(A->Id, C->Id));
}

TEST(EdgeSplit, InsertsBlockOnEdge) {
  auto M = makePaperLoopModule();
  Function &F = *M->function(0);
  BasicBlock *P1 = F.block(1);
  BasicBlock *B1 = F.block(2);
  BasicBlock *Mid = splitEdge(F, P1, B1);
  F.renumberBlocks();
  EXPECT_TRUE(verifyModule(*M).empty());
  // P1's true target is now Mid, and Mid branches to B1.
  EXPECT_EQ(P1->terminator().Target0, Mid);
  EXPECT_EQ(Mid->terminator().Target0, B1);
  CfgView Cfg = CfgView::build(F);
  EXPECT_EQ(Cfg.preds(B1->Id), (std::vector<uint32_t>{Mid->Id}));
}
