//===--- LintTest.cpp - lint pass tests --------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One positive and one negative case per lint pass, plus a clean sweep
/// over the embedded workloads (the suite must stay warning-free or the
/// lint_workloads ctest gate would fire).
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "workloads/Workloads.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace olpp;

namespace {

std::vector<Diagnostic> lintOf(const Module &M, const char *Pass) {
  std::vector<Diagnostic> All = lintModule(M);
  std::vector<Diagnostic> Out;
  std::copy_if(All.begin(), All.end(), std::back_inserter(Out),
               [&](const Diagnostic &D) { return D.Pass == Pass; });
  return Out;
}

} // namespace

TEST(LintUninit, FlagsHalfInitializedRegister) {
  // r1 is written on one arm of a diamond only, then read at the join.
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("half_init", 1);
  Reg R1 = F->newReg();
  Reg R2 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *A = F->addBlock("A");
  BasicBlock *Bb = F->addBlock("B");
  BasicBlock *J = F->addBlock("J");
  B.setBlock(En);
  B.condBr(0, A, Bb);
  B.setBlock(A);
  B.constInto(R1, 5);
  B.br(J);
  B.setBlock(Bb);
  B.br(J);
  B.setBlock(J);
  B.binopInto(R2, Opcode::Add, R1, 0);
  B.ret(R2);
  F->renumberBlocks();

  std::vector<Diagnostic> Diags = lintOf(*M, "lint-uninit");
  ASSERT_EQ(Diags.size(), 1u) << renderDiagnosticsText(lintModule(*M));
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Loc.Function, "half_init");
  EXPECT_EQ(Diags[0].Loc.Block, J->Id);
  EXPECT_EQ(Diags[0].Loc.Instr, 0u);
  EXPECT_NE(Diags[0].Message.find("%" + std::to_string(R1)),
            std::string::npos);
}

TEST(LintUninit, CleanWhenBothArmsWrite) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("both_init", 1);
  Reg R1 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *A = F->addBlock("A");
  BasicBlock *Bb = F->addBlock("B");
  BasicBlock *J = F->addBlock("J");
  B.setBlock(En);
  B.condBr(0, A, Bb);
  B.setBlock(A);
  B.constInto(R1, 1);
  B.br(J);
  B.setBlock(Bb);
  B.constInto(R1, 2);
  B.br(J);
  B.setBlock(J);
  B.ret(R1);
  F->renumberBlocks();

  EXPECT_TRUE(lintModule(*M).empty())
      << renderDiagnosticsText(lintModule(*M));
}

TEST(LintDeadStore, FlagsPureDeadWrite) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("dead", 1);
  Reg R1 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  B.setBlock(En);
  B.constInto(R1, 42); // never read
  B.ret(0);
  F->renumberBlocks();

  std::vector<Diagnostic> Diags = lintOf(*M, "lint-dead-store");
  ASSERT_EQ(Diags.size(), 1u) << renderDiagnosticsText(lintModule(*M));
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Loc.Block, 0u);
  EXPECT_EQ(Diags[0].Loc.Instr, 0u);
  EXPECT_NE(Diags[0].Message.find("%" + std::to_string(R1)),
            std::string::npos);
}

TEST(LintDeadStore, SparesTrappingOpsAndLiveWrites) {
  // A division result may be dead, but Div can trap: erasing it would
  // change behaviour, so it must not be reported.
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("trapping", 1);
  Reg R1 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  B.setBlock(En);
  B.binopInto(R1, Opcode::Div, 0, 0); // dead but impure
  B.ret(0);
  F->renumberBlocks();
  EXPECT_TRUE(lintOf(*M, "lint-dead-store").empty());

  // A written-then-read register is obviously fine.
  auto M2 = std::make_unique<Module>();
  Function *F2 = M2->addFunction("live", 0);
  Reg R = F2->newReg();
  IRBuilder B2(*F2);
  BasicBlock *En2 = F2->addBlock("En");
  B2.setBlock(En2);
  B2.constInto(R, 7);
  B2.ret(R);
  F2->renumberBlocks();
  EXPECT_TRUE(lintOf(*M2, "lint-dead-store").empty());
}

TEST(LintUnreachable, FlagsDeadCodeSparesStubs) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("island", 1);
  Reg R1 = F->newReg();
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *Dead = F->addBlock("Dead"); // real work, no predecessor
  BasicBlock *Stub = F->addBlock("Stub"); // lone terminator: exempt
  B.setBlock(En);
  B.ret(0);
  B.setBlock(Dead);
  B.constInto(R1, 1);
  B.ret(R1);
  B.setBlock(Stub);
  B.ret(0);
  F->renumberBlocks();

  std::vector<Diagnostic> Diags = lintOf(*M, "lint-unreachable");
  ASSERT_EQ(Diags.size(), 1u) << renderDiagnosticsText(lintModule(*M));
  EXPECT_EQ(Diags[0].Loc.Block, Dead->Id);
  EXPECT_EQ(Diags[0].Loc.BlockName, "Dead");
}

TEST(LintNoExit, FlagsInescapableLoop) {
  auto M = std::make_unique<Module>();
  Function *F = M->addFunction("spin", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("En");
  BasicBlock *L = F->addBlock("L");
  BasicBlock *X = F->addBlock("X"); // unreachable ret keeps the IR honest
  B.setBlock(En);
  B.br(L);
  B.setBlock(L);
  B.br(L); // self loop, no way out
  B.setBlock(X);
  B.ret(0);
  F->renumberBlocks();

  std::vector<Diagnostic> Diags = lintOf(*M, "lint-no-exit");
  ASSERT_EQ(Diags.size(), 1u) << renderDiagnosticsText(lintModule(*M));
  EXPECT_EQ(Diags[0].Loc.Block, L->Id);
  // The lone-ret stub must not trip lint-unreachable either.
  EXPECT_TRUE(lintOf(*M, "lint-unreachable").empty());
}

TEST(LintNoExit, CleanOnOrdinaryLoop) {
  auto M = testutil::makePaperLoopModule();
  EXPECT_TRUE(lintModule(*M).empty())
      << renderDiagnosticsText(lintModule(*M));
}

TEST(Lint, WorkloadSuiteIsClean) {
  // The lint_workloads ctest runs `olpp lint --all --werror`; this is the
  // same gate at the library level, with per-workload attribution.
  for (const Workload &W : allWorkloads()) {
    auto M = testutil::compileOrDie(W.Source);
    ASSERT_TRUE(M);
    std::vector<Diagnostic> Diags = lintModule(*M);
    EXPECT_TRUE(Diags.empty())
        << W.Name << ":\n" << renderDiagnosticsText(Diags);
  }
}
