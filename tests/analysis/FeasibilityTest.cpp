//===--- FeasibilityTest.cpp - Branch-correlation walker tests ---------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Feasibility.h"
#include "analysis/Summary.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

TEST(Feasibility, CorrelatedDiamond) {
  auto M = makeCorrelatedDiamondModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  PathFeasibility PF(*M);

  // En->A->J->C needs p < 10 && p > 20: proven infeasible.
  EXPECT_TRUE(PF.infeasibleSequence(F, Cfg, {0, 1, 3, 4}, false));
  // The other three paths are realizable.
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 1, 3, 5}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 2, 3, 4}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 2, 3, 5}, false));
}

TEST(Feasibility, UncorrelatedPathsStayFeasible) {
  // makePaperLoopModule branches on three independent params: every
  // acyclic sequence is feasible.
  auto M = makePaperLoopModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  PathFeasibility PF(*M);
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 1, 2, 6, 7}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {1, 3, 4, 6, 7}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {1, 3, 5, 6}, false));
}

TEST(Feasibility, StructuralSurprisesDegradeToFeasible) {
  auto M = makeCorrelatedDiamondModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  PathFeasibility PF(*M);
  // Out-of-range block, non-adjacent blocks, empty sequence: all "feasible".
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 99}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {0, 4}, false));
  EXPECT_FALSE(PF.infeasibleSequence(F, Cfg, {}, false));
  // Zero step budget: gives up, never claims infeasibility.
  PathFeasibility Tight(*M, nullptr, FeasibilityOptions{0});
  EXPECT_FALSE(Tight.infeasibleSequence(F, Cfg, {0, 1, 3, 4}, false));
}

TEST(Feasibility, CallPairBindsArgumentRanges) {
  // callee branches on its parameter; caller passes a constant that makes
  // the true arm impossible.
  auto M = compileOrDie("fn callee(x) {\n"
                        "  if (x > 100) { return 1; }\n"
                        "  return 0;\n"
                        "}\n"
                        "fn main(a, b) {\n"
                        "  var r = callee(5);\n"
                        "  return r;\n"
                        "}\n");
  ModuleSummaries S = computeSummaries(*M);
  PathFeasibility PF(*M, &S);
  const Function &Main = *M->findFunction("main");
  const Function &Callee = *M->findFunction("callee");
  CfgView MainCfg = CfgView::build(Main);
  CfgView CalleeCfg = CfgView::build(Callee);

  // The call sits in main's entry block ("a call ends its block").
  // Callee block 0 branches; find its true/false successors.
  ASSERT_EQ(CalleeCfg.succs(0).size(), 2u);
  uint32_t TrueArm = CalleeCfg.succs(0)[0];
  uint32_t FalseArm = CalleeCfg.succs(0)[1];

  EXPECT_TRUE(PF.infeasibleCallPair(Main, MainCfg, {0}, false, Callee,
                                    CalleeCfg, {0, TrueArm}));
  EXPECT_FALSE(PF.infeasibleCallPair(Main, MainCfg, {0}, false, Callee,
                                     CalleeCfg, {0, FalseArm}));
}

TEST(Feasibility, ReturnPairPropagatesReturnRange) {
  // callee returns 0 or 1; the caller's continuation branches r > 5,
  // which the walked return range contradicts.
  auto M = compileOrDie("fn callee(x) {\n"
                        "  if (x > 0) { return 1; }\n"
                        "  return 0;\n"
                        "}\n"
                        "fn main(a, b) {\n"
                        "  var r = callee(a);\n"
                        "  if (r > 5) { return 111; }\n"
                        "  return 0;\n"
                        "}\n");
  ModuleSummaries S = computeSummaries(*M);
  PathFeasibility PF(*M, &S);
  const Function &Main = *M->findFunction("main");
  const Function &Callee = *M->findFunction("callee");
  CfgView MainCfg = CfgView::build(Main);
  CfgView CalleeCfg = CfgView::build(Callee);

  // Find a callee path ending at a ret: block 0 -> true arm (ret 1).
  ASSERT_EQ(CalleeCfg.succs(0).size(), 2u);
  std::vector<uint32_t> CalleeRet1 = {0, CalleeCfg.succs(0)[0]};

  // Caller continuation: the call block re-entered after the call, then
  // the r>5 branch. Find the call block's successors.
  uint32_t CallBlock = 0;
  const std::vector<uint32_t> &Cont = MainCfg.succs(CallBlock);
  ASSERT_EQ(Cont.size(), 1u); // "a call ends its block": unconditional br
  uint32_t CondBlock = Cont[0];
  ASSERT_EQ(MainCfg.succs(CondBlock).size(), 2u);
  uint32_t Taken = MainCfg.succs(CondBlock)[0];
  uint32_t NotTaken = MainCfg.succs(CondBlock)[1];

  EXPECT_TRUE(PF.infeasibleReturnPair(Callee, CalleeCfg, CalleeRet1, false,
                                      Main, MainCfg,
                                      {CallBlock, CondBlock, Taken}));
  EXPECT_FALSE(PF.infeasibleReturnPair(Callee, CalleeCfg, CalleeRet1, false,
                                       Main, MainCfg,
                                       {CallBlock, CondBlock, NotTaken}));
}

TEST(Feasibility, GlobalsSurviveSummarizedCalls) {
  // g is set before a call that provably does not write it; the branch on
  // g after the call correlates with the store.
  auto M = compileOrDie("global g;\n"
                        "fn pure(x) { return x + 1; }\n"
                        "fn main(a, b) {\n"
                        "  g = 3;\n"
                        "  var r = pure(a);\n"
                        "  if (g == 3) { return 1; }\n"
                        "  return 0;\n"
                        "}\n");
  ModuleSummaries S = computeSummaries(*M);
  PathFeasibility PF(*M, &S);
  const Function &Main = *M->findFunction("main");
  CfgView Cfg = CfgView::build(Main);

  // Blocks: 0 = store g + call, 1 = branch block, then arms.
  const std::vector<uint32_t> &Cont = Cfg.succs(0);
  ASSERT_EQ(Cont.size(), 1u);
  uint32_t CondBlock = Cont[0];
  ASSERT_EQ(Cfg.succs(CondBlock).size(), 2u);
  uint32_t NotTaken = Cfg.succs(CondBlock)[1]; // g != 3 arm

  // g==3 after a pure call: the g!=3 arm is statically impossible.
  EXPECT_TRUE(
      PF.infeasibleSequence(Main, Cfg, {0, CondBlock, NotTaken}, false));

  // Without summaries the call havocs g and nothing is provable.
  PathFeasibility NoSums(*M);
  EXPECT_FALSE(
      NoSums.infeasibleSequence(Main, Cfg, {0, CondBlock, NotTaken}, false));
}
