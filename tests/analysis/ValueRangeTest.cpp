//===--- ValueRangeTest.cpp - Interval domain and range analysis tests -------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueRange.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

TEST(ValueRange, LatticeBasics) {
  ValueRange T = ValueRange::top();
  EXPECT_TRUE(T.isTop());
  ValueRange C = ValueRange::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_TRUE(C.contains(7));
  EXPECT_FALSE(C.contains(8));

  ValueRange A = ValueRange::range(0, 10), B = ValueRange::range(5, 20);
  EXPECT_EQ(A.join(B), ValueRange::range(0, 20));
  ASSERT_TRUE(A.meet(B).has_value());
  EXPECT_EQ(*A.meet(B), ValueRange::range(5, 10));
  // Disjoint meet is the contradiction signal.
  EXPECT_FALSE(ValueRange::range(0, 4).meet(ValueRange::range(5, 9)));
}

TEST(ValueRange, ArithmeticSoundOnOverflow) {
  ValueRange A = ValueRange::range(1, 3), B = ValueRange::range(10, 20);
  EXPECT_EQ(ValueRange::add(A, B), ValueRange::range(11, 23));
  EXPECT_EQ(ValueRange::sub(B, A), ValueRange::range(7, 19));
  EXPECT_EQ(ValueRange::mul(A, B), ValueRange::range(10, 60));
  EXPECT_EQ(ValueRange::neg(A), ValueRange::range(-3, -1));

  // Any endpoint overflow degrades to top (the interpreter wraps).
  ValueRange Big = ValueRange::constant(INT64_MAX);
  EXPECT_TRUE(ValueRange::add(Big, ValueRange::constant(1)).isTop());
  EXPECT_TRUE(ValueRange::mul(Big, ValueRange::constant(2)).isTop());
  EXPECT_TRUE(ValueRange::neg(ValueRange::constant(INT64_MIN)).isTop());

  EXPECT_EQ(ValueRange::logicalNot(ValueRange::constant(0)),
            ValueRange::constant(1));
  EXPECT_EQ(ValueRange::logicalNot(ValueRange::range(3, 9)),
            ValueRange::constant(0));
  EXPECT_EQ(ValueRange::logicalNot(ValueRange::range(0, 9)),
            ValueRange::boolean());
}

TEST(ValueRange, CompareProvableOutcomes) {
  ValueRange Lo = ValueRange::range(0, 5), Hi = ValueRange::range(6, 9);
  EXPECT_EQ(ValueRange::compare(Opcode::CmpLt, Lo, Hi),
            ValueRange::constant(1));
  EXPECT_EQ(ValueRange::compare(Opcode::CmpGe, Lo, Hi),
            ValueRange::constant(0));
  EXPECT_EQ(ValueRange::compare(Opcode::CmpEq, Lo, Hi),
            ValueRange::constant(0));
  // Overlapping ranges prove nothing.
  EXPECT_EQ(ValueRange::compare(Opcode::CmpLt, Lo, ValueRange::range(3, 9)),
            ValueRange::boolean());
  EXPECT_EQ(ValueRange::compare(Opcode::CmpEq, ValueRange::constant(4),
                                ValueRange::constant(4)),
            ValueRange::constant(1));
}

TEST(ValueRange, RefineBranchCorrelatesCompareOperands) {
  // r2 = const 10; r3 = (r0 < r2); condbr r3 ...
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  B.setBlock(En);
  Reg Ten = B.constInt(10);
  Reg C = B.binop(Opcode::CmpLt, 0, Ten);
  B.condBr(C, T, E);
  B.setBlock(T);
  B.ret(NoReg);
  B.setBlock(E);
  B.ret(NoReg);
  F->renumberBlocks();

  RangeEnv Env(F->NumRegs);
  for (const Instruction &I : F->block(0)->Instrs)
    if (!isTerminator(I.Op))
      applyInstr(Env, I);
  EXPECT_EQ(Env.reg(Ten), ValueRange::constant(10));
  EXPECT_EQ(Env.reg(C), ValueRange::boolean());

  const Instruction &Br = F->block(0)->terminator();
  {
    RangeEnv Taken = Env;
    ASSERT_TRUE(refineBranch(Taken, Br, true));
    EXPECT_EQ(Taken.reg(0).Hi, 9); // p < 10
    EXPECT_EQ(Taken.reg(C), ValueRange::constant(1));
  }
  {
    RangeEnv Not = Env;
    ASSERT_TRUE(refineBranch(Not, Br, false));
    EXPECT_EQ(Not.reg(0).Lo, 10); // p >= 10
    EXPECT_EQ(Not.reg(C), ValueRange::constant(0));
  }
  // Contradiction: force p to a range that makes the outcome impossible.
  {
    RangeEnv Pinned = Env;
    ASSERT_TRUE(Pinned.refineReg(0, ValueRange::range(50, 60)));
    EXPECT_FALSE(refineBranch(Pinned, Br, true)); // 50..60 < 10 never holds
  }
}

TEST(ValueRange, NoteInvalidatedByOperandOverwrite) {
  // c = (r0 < r1); r0 = r0 + 1; branch on c must NOT refine the new r0.
  Module M;
  Function *F = M.addFunction("f", 2);
  IRBuilder B(*F);
  BasicBlock *En = F->addBlock("en");
  BasicBlock *T = F->addBlock("t");
  BasicBlock *E = F->addBlock("e");
  B.setBlock(En);
  Reg C = B.binop(Opcode::CmpLt, 0, 1);
  Reg One = B.constInt(1);
  B.binopInto(0, Opcode::Add, 0, One);
  B.condBr(C, T, E);
  B.setBlock(T);
  B.ret(NoReg);
  B.setBlock(E);
  B.ret(NoReg);
  F->renumberBlocks();

  RangeEnv Env(F->NumRegs);
  ASSERT_TRUE(Env.refineReg(1, ValueRange::constant(5)));
  for (const Instruction &I : F->block(0)->Instrs)
    if (!isTerminator(I.Op))
      applyInstr(Env, I);
  RangeEnv Taken = Env;
  ASSERT_TRUE(refineBranch(Taken, F->block(0)->terminator(), true));
  // r0 was redefined after the compare; its range must stay untouched by
  // the c==1 refinement (only c itself is pinned).
  EXPECT_TRUE(Taken.reg(0).isTop());
  EXPECT_EQ(Taken.reg(C), ValueRange::constant(1));
}

TEST(ValueRange, FunctionRangesOnStraightLine) {
  auto M = compileOrDie("fn main(a, b) {\n"
                        "  var x = 3;\n"
                        "  var y = x * 4 + 2;\n"
                        "  return y;\n"
                        "}\n");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  FunctionRanges FR = computeFunctionRanges(F, Cfg);
  EXPECT_EQ(FR.Return, ValueRange::constant(14));
  EXPECT_FALSE(FR.ReturnsVoid);
}

TEST(ValueRange, FunctionRangesBranchRefined) {
  auto M = compileOrDie("fn main(a, b) {\n"
                        "  var r = 0;\n"
                        "  if (a < 0) { r = 0 - 1; } else { r = 1; }\n"
                        "  return r;\n"
                        "}\n");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  FunctionRanges FR = computeFunctionRanges(F, Cfg);
  EXPECT_EQ(FR.Return, ValueRange::range(-1, 1));
}

TEST(ValueRange, FunctionRangesLoopWidens) {
  auto M = compileOrDie("fn main(a, b) {\n"
                        "  var i = 0;\n"
                        "  while (i < a) { i = i + 1; }\n"
                        "  return i;\n"
                        "}\n");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  FunctionRanges FR = computeFunctionRanges(F, Cfg);
  // i starts at 0 and only grows; widening keeps the lower bound.
  EXPECT_EQ(FR.Return.Lo, 0);
  EXPECT_GT(FR.Passes, 0u);
}

TEST(ValueRange, FunctionRangesEntryLocalsZeroOnlyWhenNotReentered) {
  // makePaperLoopModule's entry has no predecessors: locals (none beyond
  // params here) are zero; params stay top.
  auto M = makePaperLoopModule();
  const Function &F = *M->function(0);
  CfgView Cfg = CfgView::build(F);
  FunctionRanges FR = computeFunctionRanges(F, Cfg);
  ASSERT_EQ(FR.BlockIn.size(), F.numBlocks());
  EXPECT_TRUE(FR.BlockIn[0].reg(0).isTop());
  EXPECT_TRUE(FR.ReturnsVoid);
}
