//===--- OverlapTest.cpp - overlap region / numbering / projection tests ------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "overlap/OverlapRegion.h"
#include "overlap/Projection.h"
#include "overlap/RegionNumbering.h"

#include "../TestUtil.h"

#include <gtest/gtest.h>

using namespace olpp;
using namespace olpp::testutil;

namespace {

struct RegionFixture {
  std::unique_ptr<Module> M;
  std::unique_ptr<CfgView> Cfg;
  std::unique_ptr<DomTree> Dom;
  std::unique_ptr<LoopInfo> LI;

  explicit RegionFixture(std::unique_ptr<Module> Mod) : M(std::move(Mod)) {
    const Function &F = *M->function(0);
    Cfg = std::make_unique<CfgView>(CfgView::build(F));
    Dom = std::make_unique<DomTree>(DomTree::compute(*Cfg));
    LI = std::make_unique<LoopInfo>(LoopInfo::compute(*Cfg, *Dom));
  }

  OverlapRegion loopRegion(uint32_t Degree) const {
    const Loop &L = LI->loop(0);
    OverlapRegionParams P;
    P.Anchor = L.Header;
    P.Degree = Degree;
    P.Restrict.assign(Cfg->numBlocks(), false);
    for (uint32_t B : L.Blocks)
      P.Restrict[B] = true;
    return OverlapRegion::compute(*M->function(0), *Cfg, *LI, P);
  }
};

OverlapEdgeClass classOfEdge(const OverlapRegion &R, uint32_t FromBlock,
                             uint32_t ToBlock) {
  uint32_t From = R.nodeForBlock(FromBlock);
  EXPECT_NE(From, UINT32_MAX);
  for (uint32_t E : R.outEdges(From))
    if (R.nodes()[R.edges()[E].To].Block == ToBlock)
      return R.edges()[E].Cls;
  ADD_FAILURE() << "no region edge " << FromBlock << " -> " << ToBlock;
  return OverlapEdgeClass::DI;
}

} // namespace

// Paper loop block ids: 0=En, 1=P1, 2=B1, 3=P2, 4=B2, 5=B3, 6=P3, 7=Ex.

TEST(OverlapRegion, DegreeZeroIsJustTheHeader) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R = F.loopRegion(0);
  ASSERT_EQ(R.nodes().size(), 1u);
  EXPECT_EQ(R.nodes()[0].Block, 1u);
  EXPECT_FALSE(R.nodes()[0].Extendable);
  EXPECT_TRUE(R.nodes()[0].DummyReasons & DR_TerminalPredicate);
}

TEST(OverlapRegion, DegreeOneStopsAtSecondPredicate) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R = F.loopRegion(1);
  // Region: P1, B1, P2, P3 (P3 entered as 2nd predicate via B1; P2 as 2nd).
  EXPECT_TRUE(R.containsBlock(1));
  EXPECT_TRUE(R.containsBlock(2));
  EXPECT_TRUE(R.containsBlock(3));
  EXPECT_TRUE(R.containsBlock(6));
  EXPECT_FALSE(R.containsBlock(4)); // B2 lies beyond P2
  EXPECT_FALSE(R.containsBlock(5));
  // P2 and the P3 copy are terminal predicates.
  EXPECT_FALSE(R.nodes()[R.nodeForBlock(3)].Extendable);
  EXPECT_FALSE(R.nodes()[R.nodeForBlock(6)].Extendable);
}

TEST(OverlapRegion, DegreeTwoCoversLoopAndClassifiesDI) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R = F.loopRegion(2);
  for (uint32_t B : {1u, 2u, 3u, 4u, 5u, 6u})
    EXPECT_TRUE(R.containsBlock(B)) << B;
  // In this CFG every region edge is definitely instrumented at k=2.
  for (const OverlapRegionEdge &E : R.edges())
    EXPECT_EQ(E.Cls, OverlapEdgeClass::DI);
  // P3 flushes here: terminal predicate, backedge source, and loop exit.
  const OverlapRegionNode &P3 = R.nodes()[R.nodeForBlock(6)];
  EXPECT_TRUE(P3.DummyReasons & DR_TerminalPredicate);
  EXPECT_TRUE(P3.DummyReasons & DR_Backedge);
  EXPECT_TRUE(P3.DummyReasons & DR_LeavesRestriction);
}

TEST(OverlapRegion, PiEdgeClassification) {
  // makePiEdgeModule: 1=P1, 2=B1, 3=P2, 4=B4, 5=P3, 6=B2, 7=P4.
  // At k=2 the edge P3->B2 is PI: via B1 two predicates precede it, via
  // P2 three do (paper Figure 1(c)).
  RegionFixture F(makePiEdgeModule());
  ASSERT_EQ(F.LI->numLoops(), 1u);
  OverlapRegion R = F.loopRegion(2);
  EXPECT_EQ(classOfEdge(R, 5, 6), OverlapEdgeClass::PI);
  EXPECT_EQ(classOfEdge(R, 1, 2), OverlapEdgeClass::DI);
  EXPECT_EQ(classOfEdge(R, 1, 3), OverlapEdgeClass::DI);
  EXPECT_EQ(classOfEdge(R, 2, 5), OverlapEdgeClass::DI);
}

TEST(OverlapRegion, MinMaxPredicateCounts) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R = F.loopRegion(2);
  const OverlapRegionNode &P3 = R.nodes()[R.nodeForBlock(6)];
  EXPECT_EQ(P3.MinPredsExcl, 1u); // via B1
  EXPECT_EQ(P3.MaxPredsExcl, 2u); // via P2
  const OverlapRegionNode &P1 = R.nodes()[R.nodeForBlock(1)];
  EXPECT_EQ(P1.MinPredsExcl, 0u);
  EXPECT_EQ(P1.MaxPredsExcl, 0u);
}

TEST(OverlapRegion, MaxOverlapDegreeOfPaperLoop) {
  RegionFixture F(makePaperLoopModule());
  const Loop &L = F.LI->loop(0);
  OverlapRegionParams P;
  P.Anchor = L.Header;
  P.Restrict.assign(F.Cfg->numBlocks(), false);
  for (uint32_t B : L.Blocks)
    P.Restrict[B] = true;
  // Longest iteration path P1 P2 B2 P3 has 3 predicates -> max degree 2,
  // exactly as the paper notes for this example.
  EXPECT_EQ(maxOverlapDegree(*F.M->function(0), *F.Cfg, *F.LI, P), 2u);
}

TEST(RegionNumbering, CountsAndRoundTrip) {
  RegionFixture F(makePaperLoopModule());
  for (uint32_t K : {0u, 1u, 2u}) {
    OverlapRegion R = F.loopRegion(K);
    std::string Error;
    auto N = RegionNumbering::build(R, Error);
    ASSERT_NE(N, nullptr) << Error;
    uint64_t Want = K == 0 ? 1 : (K == 1 ? 2 : 3);
    EXPECT_EQ(N->numPaths(), Want) << "degree " << K;
    for (int64_t Id = 0; Id < static_cast<int64_t>(N->numPaths()); ++Id) {
      std::vector<uint32_t> Seq = N->decode(Id);
      EXPECT_EQ(N->encode(Seq), Id);
    }
  }
}

TEST(Projection, FollowsRegionSemantics) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R1 = F.loopRegion(1);
  // Walk P1 B1 P3 (ends at 2nd predicate P3).
  auto Seq = projectThroughRegion(R1, {1, 2, 6});
  ASSERT_EQ(Seq.size(), 3u);
  EXPECT_EQ(R1.nodes()[Seq.back()].Block, 6u);
  // Walk P1 P2 B2 P3: stops at P2 (2nd predicate) before B2.
  Seq = projectThroughRegion(R1, {1, 3, 4, 6});
  ASSERT_EQ(Seq.size(), 2u);
  EXPECT_EQ(R1.nodes()[Seq.back()].Block, 3u);
}

TEST(Projection, StopsAtWalkEnd) {
  RegionFixture F(makePaperLoopModule());
  OverlapRegion R2 = F.loopRegion(2);
  // A one-block walk (iteration path that immediately took the backedge
  // again is impossible here, but a short walk must flush at its last
  // node). P1 alone: P1 is a predicate and extendable; walk ends -> flush
  // at P1 requires a dummy there?  P1 has none at k=2, so use a legal walk.
  auto Seq = projectThroughRegion(R2, {1, 2, 6});
  EXPECT_EQ(R2.nodes()[Seq.back()].Block, 6u);
}

TEST(Projection, CallBreakTruncation) {
  auto M = compileOrDie(R"(
    fn g() { return 1; }
    fn main(n) {
      var s = 0;
      while (s < n) {
        s = s + g();
      }
      return s;
    })");
  const Function &F = *M->findFunction("main");
  CfgView Cfg = CfgView::build(F);
  DomTree Dom = DomTree::compute(Cfg);
  LoopInfo LI = LoopInfo::compute(Cfg, Dom);
  ASSERT_EQ(LI.numLoops(), 1u);
  OverlapRegionParams P;
  P.Anchor = LI.loop(0).Header;
  P.Degree = 5;
  P.Restrict.assign(Cfg.numBlocks(), false);
  for (uint32_t B : LI.loop(0).Blocks)
    P.Restrict[B] = true;
  P.BreakAtCalls = true;
  OverlapRegion R = OverlapRegion::compute(F, Cfg, LI, P);
  // Some region node must be a call-break flush site.
  bool SawCallBreak = false;
  for (const OverlapRegionNode &N : R.nodes())
    SawCallBreak |= (N.DummyReasons & DR_CallBreak) != 0;
  EXPECT_TRUE(SawCallBreak);
}
