//===--- FuzzHarnessTest.cpp - the differential fuzzer fuzzes itself ---------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Three properties of the fuzzing harness:
//   (a) the oracles are quiet on a healthy build (smoke run),
//   (b) the whole case derivation is deterministic (replayable seeds),
//   (c) the oracles have teeth: a deliberately injected counter defect is
//       caught, and the shrinker reduces the witness to a small program
//       that still reproduces it (the mutation test).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Shrinker.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

using CaseStatus = DifferentialRunner::CaseStatus;

TEST(FuzzHarness, SmokeRunIsClean) {
  FuzzOptions FO;
  FO.SeedBase = 1;
  FO.NumSeeds = 15;
  FuzzReport Rep = DifferentialRunner(FO).run();
  EXPECT_TRUE(Rep.ok()) << Rep.str();
  EXPECT_EQ(Rep.SeedsRun, 15u);
  EXPECT_EQ(Rep.Clean + Rep.Skipped, 15u);
}

TEST(FuzzHarness, CaseDerivationIsDeterministic) {
  for (uint64_t Seed : {1ull, 7ull, 123456789ull}) {
    auto A = DifferentialRunner::deriveSetup(Seed);
    auto B = DifferentialRunner::deriveSetup(Seed);
    EXPECT_EQ(A.Args, B.Args);
    EXPECT_EQ(A.GenOpts.Seed, B.GenOpts.Seed);
    EXPECT_EQ(A.GenOpts.NumFunctions, B.GenOpts.NumFunctions);
    EXPECT_EQ(A.InstrOpts.Interproc, B.InstrOpts.Interproc);
    EXPECT_EQ(A.InstrOpts.LoopDegree, B.InstrOpts.LoopDegree);
    EXPECT_EQ(generateProgram(A.GenOpts), generateProgram(B.GenOpts));
  }
}

TEST(FuzzHarness, ReportsRenderFailures) {
  FuzzReport Rep;
  Rep.SeedsRun = 1;
  FuzzFailure F;
  F.MasterSeed = 42;
  F.Oracle = FuzzOracle::EngineDiff;
  F.Detail = "return value diverges";
  F.Source = "fn main(a, b) {\n  return a;\n}\n";
  Rep.Failures.push_back(F);
  std::vector<Diagnostic> Diags = Rep.toDiagnostics();
  ASSERT_EQ(Diags.size(), 2u); // one failure + the summary note
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Diags[0].Pass, "fuzz-engine-diff");
  EXPECT_NE(Diags[0].Message.find("--seed 42"), std::string::npos);
  EXPECT_EQ(Diags[1].Sev, Severity::Note);
  EXPECT_NE(Rep.str().find("FAILURE seed 42"), std::string::npos);
}

/// The mutation test: dropping one Type I tuple from the fast engine's
/// counters must be caught by the engine-diff oracle, and the shrinker must
/// reduce the witness program to at most 30 lines of MiniC that still
/// reproduces the injected defect.
TEST(FuzzHarness, InjectedTypeIDropIsCaughtAndShrunk) {
  FuzzOptions FO;
  FO.Fault = FaultKind::DropTypeI;
  DifferentialRunner Runner(FO);

  // Scan seeds until the defect fires (it needs an interprocedural case
  // whose run executes a call; most seeds are immune by construction).
  uint64_t FailingSeed = 0;
  FuzzFailure Probe;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    if (Runner.checkCase(Seed, &Probe) == CaseStatus::Failed) {
      FailingSeed = Seed;
      break;
    }
  }
  ASSERT_NE(FailingSeed, 0u)
      << "no seed in 1..200 triggered the injected fault";
  EXPECT_EQ(Probe.Oracle, FuzzOracle::EngineDiff) << Probe.Detail;

  FO.SeedBase = FailingSeed;
  FO.NumSeeds = 1;
  FO.Shrink = true;
  FuzzReport Rep = DifferentialRunner(FO).run();
  ASSERT_EQ(Rep.Failures.size(), 1u);
  const FuzzFailure &F = Rep.Failures[0];
  EXPECT_EQ(F.Oracle, FuzzOracle::EngineDiff) << F.Detail;
  EXPECT_TRUE(F.Shrunk);
  EXPECT_LE(countCodeLines(F.Source), 30u) << F.Source;
  EXPECT_LT(countCodeLines(F.Source), countCodeLines(F.OriginalSource));

  // The minimized witness still compiles and still reproduces the defect
  // under the pinned setup.
  EXPECT_TRUE(compileMiniC(F.Source).ok()) << F.Source;
  auto Setup = DifferentialRunner::deriveSetup(FailingSeed);
  FuzzFailure Again;
  EXPECT_EQ(DifferentialRunner(FO).checkProgram(F.Source, Setup, &Again),
            CaseStatus::Failed);
  EXPECT_EQ(Again.Oracle, FuzzOracle::EngineDiff);
}

/// A skewed path counter must be caught as well (second fault kind, same
/// oracle), proving the path-counter comparison is live.
TEST(FuzzHarness, InjectedPathSkewIsCaught) {
  FuzzOptions FO;
  FO.Fault = FaultKind::SkewPathCounter;
  DifferentialRunner Runner(FO);
  FuzzFailure F;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 50 && !Caught; ++Seed)
    Caught = Runner.checkCase(Seed, &F) == CaseStatus::Failed;
  ASSERT_TRUE(Caught) << "no seed in 1..50 triggered the injected skew";
  EXPECT_EQ(F.Oracle, FuzzOracle::EngineDiff) << F.Detail;
  EXPECT_NE(F.Detail.find("path id"), std::string::npos) << F.Detail;
}

/// A counter perturbed between artifact read-back and comparison must be
/// caught by the round-trip oracle — artifactsEqual is live, not a stub.
TEST(FuzzHarness, InjectedArtifactSkewIsCaught) {
  FuzzOptions FO;
  FO.Fault = FaultKind::SkewArtifactRoundtrip;
  DifferentialRunner Runner(FO);
  FuzzFailure F;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 20 && !Caught; ++Seed)
    Caught = Runner.checkCase(Seed, &F) == CaseStatus::Failed;
  ASSERT_TRUE(Caught) << "no seed in 1..20 triggered the injected skew";
  EXPECT_EQ(F.Oracle, FuzzOracle::Roundtrip) << F.Detail;
  EXPECT_NE(F.Detail.find("round trip is not lossless"), std::string::npos)
      << F.Detail;
}

/// Disabling CRC verification must be caught by the mutation sub-oracle:
/// the crafted checksum-field flips are then silently accepted, and silent
/// acceptance of a corrupted artifact is exactly what the oracle rejects.
TEST(FuzzHarness, CrcVerificationOffIsCaughtByMutationOracle) {
  FuzzOptions FO;
  FO.Fault = FaultKind::ArtifactCrcOff;
  DifferentialRunner Runner(FO);
  FuzzFailure F;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 20 && !Caught; ++Seed)
    Caught = Runner.checkCase(Seed, &F) == CaseStatus::Failed;
  ASSERT_TRUE(Caught) << "no seed in 1..20 triggered the CRC-off fault";
  EXPECT_EQ(F.Oracle, FuzzOracle::Roundtrip) << F.Detail;
  EXPECT_NE(F.Detail.find("accepted"), std::string::npos) << F.Detail;
}

/// An unsound feasibility verdict — one executed path id claimed statically
/// infeasible — must be caught by the feasibility oracle, and the shrinker
/// must reduce the witness to a small program that still reproduces it.
TEST(FuzzHarness, InjectedMisclassificationIsCaughtAndShrunk) {
  FuzzOptions FO;
  FO.Fault = FaultKind::MisclassifyFeasible;
  DifferentialRunner Runner(FO);

  // Any seed whose instrumented run counts at least one path triggers the
  // fault; the scan only skips fuel-exhausted cases.
  uint64_t FailingSeed = 0;
  FuzzFailure Probe;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    if (Runner.checkCase(Seed, &Probe) == CaseStatus::Failed) {
      FailingSeed = Seed;
      break;
    }
  }
  ASSERT_NE(FailingSeed, 0u)
      << "no seed in 1..20 triggered the injected misclassification";
  EXPECT_EQ(Probe.Oracle, FuzzOracle::Feasibility) << Probe.Detail;
  EXPECT_NE(Probe.Detail.find("classified statically infeasible"),
            std::string::npos)
      << Probe.Detail;

  FO.SeedBase = FailingSeed;
  FO.NumSeeds = 1;
  FO.Shrink = true;
  FuzzReport Rep = DifferentialRunner(FO).run();
  ASSERT_EQ(Rep.Failures.size(), 1u);
  const FuzzFailure &F = Rep.Failures[0];
  EXPECT_EQ(F.Oracle, FuzzOracle::Feasibility) << F.Detail;
  EXPECT_TRUE(F.Shrunk);
  EXPECT_LE(countCodeLines(F.Source), 30u) << F.Source;
  EXPECT_LT(countCodeLines(F.Source), countCodeLines(F.OriginalSource));

  // The minimized witness still compiles and still reproduces the defect
  // under the pinned setup.
  EXPECT_TRUE(compileMiniC(F.Source).ok()) << F.Source;
  auto Setup = DifferentialRunner::deriveSetup(FailingSeed);
  FuzzFailure Again;
  EXPECT_EQ(DifferentialRunner(FO).checkProgram(F.Source, Setup, &Again),
            CaseStatus::Failed);
  EXPECT_EQ(Again.Oracle, FuzzOracle::Feasibility);
}

/// A mis-inlined callee — the optimizer drops the return-value move at
/// every inlined return — must be caught by the opt oracle, and the
/// shrinker must reduce the witness to a small program that still inlines
/// and still reproduces the defect.
TEST(FuzzHarness, InjectedMisinlineIsCaughtAndShrunk) {
  FuzzOptions FO;
  FO.Fault = FaultKind::MisinlineCallee;
  DifferentialRunner Runner(FO);

  // The fault only fires on seeds whose profile actually drives an inline
  // whose dropped result changes the observable outcome; scan for one.
  uint64_t FailingSeed = 0;
  FuzzFailure Probe;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    if (Runner.checkCase(Seed, &Probe) == CaseStatus::Failed) {
      FailingSeed = Seed;
      break;
    }
  }
  ASSERT_NE(FailingSeed, 0u)
      << "no seed in 1..200 triggered the injected mis-inline";
  EXPECT_EQ(Probe.Oracle, FuzzOracle::Opt) << Probe.Detail;

  FO.SeedBase = FailingSeed;
  FO.NumSeeds = 1;
  FO.Shrink = true;
  FuzzReport Rep = DifferentialRunner(FO).run();
  ASSERT_EQ(Rep.Failures.size(), 1u);
  const FuzzFailure &F = Rep.Failures[0];
  EXPECT_EQ(F.Oracle, FuzzOracle::Opt) << F.Detail;
  EXPECT_TRUE(F.Shrunk);
  EXPECT_LE(countCodeLines(F.Source), 30u) << F.Source;
  EXPECT_LE(countCodeLines(F.Source), countCodeLines(F.OriginalSource));

  // The minimized witness still compiles and still reproduces the defect
  // under the pinned setup.
  EXPECT_TRUE(compileMiniC(F.Source).ok()) << F.Source;
  auto Setup = DifferentialRunner::deriveSetup(FailingSeed);
  FuzzFailure Again;
  EXPECT_EQ(DifferentialRunner(FO).checkProgram(F.Source, Setup, &Again),
            CaseStatus::Failed);
  EXPECT_EQ(Again.Oracle, FuzzOracle::Opt);
}

/// The trace-tier mutation test: an optimizer that deletes the trace body's
/// last branch guard silently runs the stale straight-line tail when the
/// branch diverges. The trace oracle must catch the divergence, and the
/// shrinker must reduce the witness to a small looping program that still
/// records a trace and still reproduces the defect.
TEST(FuzzHarness, InjectedTraceGuardDropIsCaughtAndShrunk) {
  FuzzOptions FO;
  FO.Fault = FaultKind::DropTraceGuard;
  DifferentialRunner Runner(FO);

  // The fault only fires on seeds whose hot loop records a trace with a
  // branch guard that actually diverges during the run; scan for one.
  uint64_t FailingSeed = 0;
  FuzzFailure Probe;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    if (Runner.checkCase(Seed, &Probe) == CaseStatus::Failed) {
      FailingSeed = Seed;
      break;
    }
  }
  ASSERT_NE(FailingSeed, 0u)
      << "no seed in 1..200 triggered the injected guard drop";
  EXPECT_EQ(Probe.Oracle, FuzzOracle::Trace) << Probe.Detail;

  FO.SeedBase = FailingSeed;
  FO.NumSeeds = 1;
  FO.Shrink = true;
  FuzzReport Rep = DifferentialRunner(FO).run();
  ASSERT_EQ(Rep.Failures.size(), 1u);
  const FuzzFailure &F = Rep.Failures[0];
  EXPECT_EQ(F.Oracle, FuzzOracle::Trace) << F.Detail;
  EXPECT_TRUE(F.Shrunk);
  EXPECT_LE(countCodeLines(F.Source), 30u) << F.Source;
  EXPECT_LE(countCodeLines(F.Source), countCodeLines(F.OriginalSource));

  // The minimized witness still compiles and still reproduces the defect
  // under the pinned setup.
  EXPECT_TRUE(compileMiniC(F.Source).ok()) << F.Source;
  auto Setup = DifferentialRunner::deriveSetup(FailingSeed);
  FuzzFailure Again;
  EXPECT_EQ(DifferentialRunner(FO).checkProgram(F.Source, Setup, &Again),
            CaseStatus::Failed);
  EXPECT_EQ(Again.Oracle, FuzzOracle::Trace);
}

/// The serve mutation test: a store that acks one upload without folding it
/// breaks the bit-identity contract between a snapshot and the offline
/// merge of the acked uploads. Oracle 11 must catch the mismatch, and the
/// shrinker must reduce the witness while keeping the failure alive.
TEST(FuzzHarness, InjectedServeFoldDropIsCaughtAndShrunk) {
  FuzzOptions FO;
  FO.Fault = FaultKind::DropFrameAck;
  DifferentialRunner Runner(FO);

  // A dropped fold changes at least the artifact's Runs metadata, so any
  // seed whose run reaches the serve oracle fails; scan from 1 anyway to
  // keep the idiom uniform with the other mutation tests.
  uint64_t FailingSeed = 0;
  FuzzFailure Probe;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    if (Runner.checkCase(Seed, &Probe) == CaseStatus::Failed) {
      FailingSeed = Seed;
      break;
    }
  }
  ASSERT_NE(FailingSeed, 0u)
      << "no seed in 1..200 triggered the injected fold drop";
  EXPECT_EQ(Probe.Oracle, FuzzOracle::Serve) << Probe.Detail;

  FO.SeedBase = FailingSeed;
  FO.NumSeeds = 1;
  FO.Shrink = true;
  FuzzReport Rep = DifferentialRunner(FO).run();
  ASSERT_EQ(Rep.Failures.size(), 1u);
  const FuzzFailure &F = Rep.Failures[0];
  EXPECT_EQ(F.Oracle, FuzzOracle::Serve) << F.Detail;
  EXPECT_TRUE(F.Shrunk);
  EXPECT_LE(countCodeLines(F.Source), 30u) << F.Source;
  EXPECT_LE(countCodeLines(F.Source), countCodeLines(F.OriginalSource));

  // The minimized witness still compiles and still reproduces the defect
  // under the pinned setup.
  EXPECT_TRUE(compileMiniC(F.Source).ok()) << F.Source;
  auto Setup = DifferentialRunner::deriveSetup(FailingSeed);
  FuzzFailure Again;
  EXPECT_EQ(DifferentialRunner(FO).checkProgram(F.Source, Setup, &Again),
            CaseStatus::Failed);
  EXPECT_EQ(Again.Oracle, FuzzOracle::Serve);
}

// --- shrinker unit tests -------------------------------------------------

TEST(Shrinker, KeepsThePoisonLine) {
  const std::string Source = "global acc;\n"
                             "fn f1(a, b) {\n"
                             "  acc = acc + 3;\n"
                             "  return 0;\n"
                             "}\n"
                             "fn main(a, b) {\n"
                             "  var v0 = 4;\n"
                             "  while (v0 > 0) {\n"
                             "    v0 = v0 - 1;\n"
                             "    acc = acc + 7;\n"
                             "  }\n"
                             "  if (a < b) {\n"
                             "    acc = acc * 2;\n"
                             "  }\n"
                             "  return acc;\n"
                             "}\n";
  auto StillFails = [](const std::string &S) {
    return compileMiniC(S).ok() &&
           S.find("acc = acc + 7;") != std::string::npos;
  };
  ShrinkResult R = shrinkProgram(Source, StillFails);
  EXPECT_NE(R.Source.find("acc = acc + 7;"), std::string::npos) << R.Source;
  EXPECT_LT(countCodeLines(R.Source), countCodeLines(Source));
  // Everything inessential is gone: the helper body is stubbed or the
  // function dropped wholesale, the if-block deleted, the loop unrolled.
  EXPECT_EQ(R.Source.find("acc = acc * 2;"), std::string::npos) << R.Source;
  EXPECT_EQ(R.Source.find("while"), std::string::npos) << R.Source;
  EXPECT_TRUE(compileMiniC(R.Source).ok()) << R.Source;
}

TEST(Shrinker, ShrinksConstants) {
  const std::string Source = "global acc;\n"
                             "fn main(a, b) {\n"
                             "  acc = 250;\n"
                             "  return acc;\n"
                             "}\n";
  auto StillFails = [](const std::string &S) {
    return compileMiniC(S).ok() && S.find("acc = ") != std::string::npos;
  };
  ShrinkResult R = shrinkProgram(Source, StillFails);
  EXPECT_NE(R.Source.find("acc = 1;"), std::string::npos) << R.Source;
}

TEST(Shrinker, CountCodeLinesIgnoresBlanksAndComments) {
  EXPECT_EQ(countCodeLines("// c\n\nfn main(a, b) {\n  return 0;\n}\n"), 3u);
}

} // namespace
