//===--- VerifierTest.cpp - IR verifier failure injection ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace olpp;

namespace {

/// Asserts that verification of \p M mentions \p Fragment.
void expectError(const Module &M, const char *Fragment) {
  std::vector<std::string> Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty()) << "expected a verifier error";
  bool Found = false;
  for (const std::string &E : Errors)
    Found |= E.find(Fragment) != std::string::npos;
  EXPECT_TRUE(Found) << "no error mentions '" << Fragment << "'; got:\n"
                     << Errors[0];
}

} // namespace

TEST(Verifier, AcceptsMinimalFunction) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  B.ret(NoReg);
  F->renumberBlocks();
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(Verifier, MissingTerminator) {
  Module M;
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction I;
  I.Op = Opcode::Const;
  I.Dst = 0;
  BB->Instrs.push_back(I);
  F->NumRegs = 1;
  F->renumberBlocks();
  expectError(M, "missing terminator");
}

TEST(Verifier, NoRet) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  BasicBlock *A = F->addBlock("a");
  B.setBlock(A);
  B.br(A); // infinite loop, no ret anywhere
  F->renumberBlocks();
  expectError(M, "no ret");
}

TEST(Verifier, RegisterOutOfRange) {
  Module M;
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction I;
  I.Op = Opcode::Move;
  I.Dst = 5; // NumRegs == 0
  I.Src0 = 6;
  BB->Instrs.push_back(I);
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->renumberBlocks();
  expectError(M, "out of range");
}

TEST(Verifier, CallArityMismatch) {
  Module M;
  Function *Callee = M.addFunction("two", 2);
  {
    IRBuilder B(*Callee);
    B.setBlock(Callee->addBlock("entry"));
    B.ret(NoReg);
    Callee->renumberBlocks();
  }
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  B.call(NoReg, Callee->Id, {0}); // one arg, needs two
  B.ret(NoReg);
  F->renumberBlocks();
  expectError(M, "expected 2");
}

TEST(Verifier, CallToUnknownFunction) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  B.call(NoReg, 99, {});
  B.ret(NoReg);
  F->renumberBlocks();
  expectError(M, "unknown function");
}

TEST(Verifier, InstructionAfterCallRejected) {
  Module M;
  Function *G = M.addFunction("g", 0);
  {
    IRBuilder B(*G);
    B.setBlock(G->addBlock("entry"));
    B.ret(NoReg);
    G->renumberBlocks();
  }
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction Call;
  Call.Op = Opcode::Call;
  Call.CalleeId = G->Id;
  BB->Instrs.push_back(Call);
  Instruction C;
  C.Op = Opcode::Const;
  C.Dst = 0;
  BB->Instrs.push_back(C); // illegal: non-probe after a call
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->NumRegs = 1;
  F->renumberBlocks();
  expectError(M, "calls must end their block");
}

TEST(Verifier, CondBrAliasedTargets) {
  Module M;
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Next = F->addBlock("next");
  Instruction T;
  T.Op = Opcode::CondBr;
  T.Src0 = 0;
  T.Target0 = Next;
  T.Target1 = Next;
  Entry->Instrs.push_back(T);
  B.setBlock(Next);
  B.ret(NoReg);
  F->renumberBlocks();
  expectError(M, "identical targets");
}

TEST(Verifier, ForeignBranchTarget) {
  Module M;
  Function *F = M.addFunction("f", 0);
  Function *G = M.addFunction("g", 0);
  BasicBlock *GBlock = G->addBlock("g.entry");
  {
    IRBuilder B(*G);
    B.setBlock(GBlock);
    B.ret(NoReg);
    G->renumberBlocks();
  }
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  B.br(GBlock); // branch into another function
  F->renumberBlocks();
  expectError(M, "another function");
}

TEST(Verifier, ScalarArrayConfusion) {
  Module M;
  uint32_t Scalar = M.addGlobal("s", 1);
  uint32_t Arr = M.addGlobal("a", 8);
  Function *F = M.addFunction("f", 1);
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  (void)B.loadArray(Scalar, 0); // array op on scalar
  B.storeGlobal(Arr, 0);        // scalar op on array
  B.ret(NoReg);
  F->renumberBlocks();
  expectError(M, "array access to scalar global");
  expectError(M, "scalar access to array global");
}

TEST(Verifier, ProbeWithoutPayload) {
  Module M;
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction P;
  P.Op = Opcode::Probe;
  BB->Instrs.push_back(P);
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->renumberBlocks();
  expectError(M, "probe without payload");
}

TEST(Verifier, StaleBlockIds) {
  Module M;
  Function *F = M.addFunction("f", 0);
  IRBuilder B(*F);
  B.setBlock(F->addBlock("entry"));
  B.ret(NoReg);
  F->renumberBlocks();
  F->block(0)->Id = 7; // corrupt
  expectError(M, "stale");
}
