//===--- PrinterTest.cpp - textual IR printing tests ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace olpp;

TEST(Printer, InstructionForms) {
  Module M;
  uint32_t G = M.addGlobal("g", 1);
  uint32_t A = M.addGlobal("arr", 4);
  Function *Callee = M.addFunction("callee", 1);
  {
    IRBuilder B(*Callee);
    B.setBlock(Callee->addBlock("entry"));
    B.ret(0);
    Callee->renumberBlocks();
  }
  Function *F = M.addFunction("f", 2);
  IRBuilder B(*F);
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Then = F->addBlock("then");
  BasicBlock *Done = F->addBlock("done");
  B.setBlock(Entry);
  Reg C = B.constInt(42);
  Reg S = B.binop(Opcode::Add, 0, 1);
  B.storeGlobal(G, S);
  Reg L = B.loadArray(A, C);
  B.condBr(L, Then, Done);
  B.setBlock(Then);
  B.call(S, Callee->Id, {C});
  B.br(Done);
  B.setBlock(Done);
  B.callIndirect(S, C, {L, L});
  B.br(Done); // call must end the block
  F->renumberBlocks();

  std::string Out = printModule(M);
  EXPECT_NE(Out.find("global @0 g"), std::string::npos);
  EXPECT_NE(Out.find("global @1 arr[4]"), std::string::npos);
  EXPECT_NE(Out.find("const %2, 42"), std::string::npos);
  EXPECT_NE(Out.find("add %3, %0, %1"), std::string::npos);
  EXPECT_NE(Out.find("storeg @0, %3"), std::string::npos);
  EXPECT_NE(Out.find("loadarr %4, @1[%2]"), std::string::npos);
  EXPECT_NE(Out.find("condbr %4"), std::string::npos);
  EXPECT_NE(Out.find("call %3, callee(%2)"), std::string::npos);
  EXPECT_NE(Out.find("callind %3, *%2(%4, %4)"), std::string::npos);
}

TEST(Printer, ProbesPrintTheirOps) {
  Module M;
  Function *F = M.addFunction("f", 0);
  BasicBlock *BB = F->addBlock("entry");
  Instruction P;
  P.Op = Opcode::Probe;
  auto Prog = std::make_shared<ProbeProgram>();
  Prog->Ops.push_back({ProbeOpKind::BLSet, 0, 7, 0});
  Prog->Ops.push_back({ProbeOpKind::OLArm, 2, -3, 0});
  P.ProbePayload = Prog;
  BB->Instrs.push_back(P);
  Instruction R;
  R.Op = Opcode::Ret;
  BB->Instrs.push_back(R);
  F->renumberBlocks();

  std::string Out = printFunction(*F, &M);
  EXPECT_NE(Out.find("probe {blset s0,7,0; olarm s2,-3,0}"),
            std::string::npos);
}

TEST(Printer, LoweredProgramIsReadable) {
  CompileResult CR = compileMiniC(
      "fn main(n) { var s = 0; while (s < n) { s = s + 1; } return s; }");
  ASSERT_TRUE(CR.ok());
  std::string Out = printModule(*CR.M);
  EXPECT_NE(Out.find("func main(1 params"), std::string::npos);
  EXPECT_NE(Out.find("while.header"), std::string::npos);
  EXPECT_NE(Out.find("while.latch"), std::string::npos);
  EXPECT_NE(Out.find("ret %"), std::string::npos);
}
