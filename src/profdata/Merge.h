//===--- Merge.h - Multi-run .olpp artifact merging -------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merging of `.olpp` profile artifacts across runs, shards and machines.
///
/// Merge reuses the runtime stores' own primitives (PathCounterStore::add,
/// FlatInterprocTable::bump), so merging N single-run artifacts is
/// bit-identical to one N-run profiling session: saturating addition is
/// associative and commutative, hence any merge order (serial, tree,
/// sharded) produces the same counters, including at the UINT64_MAX clamp.
/// A `--weight N` merge multiplies every counter with saturatingMul first,
/// which equals N replays of the run (N saturating adds of C converge to
/// min(N*C, MAX)).
///
/// Compatibility is checked before any counter moves: fingerprint, function
/// count, instrumentation mode and degrees, and per-function id spaces must
/// agree, otherwise the merge is rejected with diagnostics (pass
/// "profdata-merge") and the destination is left untouched.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFDATA_MERGE_H
#define OLPP_PROFDATA_MERGE_H

#include "profdata/ProfData.h"

namespace olpp {

struct MergeOptions {
  /// Each counter of the source contributes count * Weight (saturating).
  /// Runs and DynInstrCost scale the same way. Weight 0 is rejected.
  uint64_t Weight = 1;
};

/// An artifact with the identity (fingerprint, function count, metadata,
/// id spaces) of \p A but zero counters, Runs = 0, DynInstrCost = 0 and
/// TimestampUnix = 0. The natural accumulator for a fold over artifacts:
/// starting from this and merging each input applies one uniform weight to
/// every input, including the first.
ProfileArtifact makeEmptyLike(const ProfileArtifact &A);

/// Merges \p Src into \p Dst with saturating-add semantics. Returns false
/// (appending diagnostics, destination untouched) when the artifacts are
/// incompatible or Opts.Weight == 0.
///
/// Metadata combines commutatively: Runs and DynInstrCost accumulate
/// (saturating, scaled by Weight), TimestampUnix takes the maximum, and the
/// workload name takes the lexicographically smaller non-empty name so a
/// fold over artifacts yields the same metadata in any order.
bool mergeArtifacts(ProfileArtifact &Dst, const ProfileArtifact &Src,
                    std::vector<Diagnostic> &Diags,
                    const MergeOptions &Opts = {});

} // namespace olpp

#endif // OLPP_PROFDATA_MERGE_H
