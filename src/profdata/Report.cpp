//===--- Report.cpp - Reporting over .olpp profile artifacts --------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profdata/Report.h"

#include "analysis/Summary.h"
#include "estimate/Estimators.h"
#include "ir/Module.h"
#include "profile/InfeasiblePaths.h"
#include "support/TableWriter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace olpp;

//===----------------------------------------------------------------------===//
// Binding
//===----------------------------------------------------------------------===//

bool olpp::bindArtifactToModule(const Module &Pristine,
                                const ProfileArtifact &A,
                                ArtifactBinding &Out,
                                std::vector<Diagnostic> &Diags) {
  auto Reject = [&](std::string Msg) {
    Diags.push_back(
        makeDiag(Severity::Error, "profdata-bind", "", std::move(Msg)));
    return false;
  };
  uint64_t FP = moduleProfileFingerprint(Pristine);
  if (FP != A.Fingerprint) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%016llx vs artifact %016llx",
                  static_cast<unsigned long long>(FP),
                  static_cast<unsigned long long>(A.Fingerprint));
    return Reject(std::string("module fingerprint mismatch: source is ") +
                  Buf + " (the artifact profiles a different program)");
  }
  if (Pristine.numFunctions() != A.NumFunctions)
    return Reject("function count mismatch between module and artifact");
  Out.InstrModule = Pristine.clone();
  Out.MI = instrumentModule(*Out.InstrModule, A.Meta.Instr);
  if (!Out.MI.ok())
    return Reject("re-instrumentation under the artifact's mode failed: " +
                  Out.MI.Errors[0]);
  for (uint32_t F = 0; F < A.NumFunctions; ++F) {
    uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    if (Space == 0 || !Out.MI.Funcs[F].PG)
      continue;
    if (Out.MI.Funcs[F].PG->numPaths() != Space)
      return Reject("path-id space of function " +
                    Pristine.function(F)->Name + " differs (artifact " +
                    std::to_string(Space) + ", module " +
                    std::to_string(Out.MI.Funcs[F].PG->numPaths()) + ")");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Shared rendering helpers
//===----------------------------------------------------------------------===//

std::string olpp::instrumentModeString(const InstrumentOptions &O) {
  std::string S = "bl";
  if (O.LoopOverlap)
    S += "+ol(k=" + std::to_string(O.LoopDegree) + ")";
  if (O.Interproc)
    S += "+interproc(k=" + std::to_string(O.InterprocDegree) + ")";
  else if (O.CallBreaking)
    S += "+call-breaking";
  S += O.UseChords ? ", chords" : ", edges";
  return S;
}

namespace {

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string percent(double Num, double Den) {
  if (Den <= 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * Num / Den);
  return Buf;
}

struct HotPath {
  uint32_t Func = 0;
  int64_t Slot = 0;
  uint64_t Count = 0;
};

std::vector<HotPath> hottestPaths(const ProfileArtifact &A, size_t N) {
  std::vector<HotPath> All;
  for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F)
    for (const auto &[Slot, Count] : A.Counters.PathCounts[F])
      All.push_back({F, Slot, Count});
  std::sort(All.begin(), All.end(), [](const HotPath &X, const HotPath &Y) {
    if (X.Count != Y.Count)
      return X.Count > Y.Count;
    if (X.Func != Y.Func)
      return X.Func < Y.Func;
    return X.Slot < Y.Slot;
  });
  if (All.size() > N)
    All.resize(N);
  return All;
}

std::string funcName(const ProfileArtifact &A, const ArtifactBinding *B,
                     uint32_t F) {
  if (B && B->InstrModule && F < B->InstrModule->numFunctions())
    return B->InstrModule->function(F)->Name;
  (void)A;
  return "f" + std::to_string(F);
}

struct BoundsRows {
  EstimateMetrics Loops, TypeI, TypeII, Total;
};

BoundsRows solveArtifactBounds(const ArtifactBinding &B,
                               const ProfileArtifact &A) {
  BoundsRows R;
  ModuleEstimator Est(*B.InstrModule, B.MI, A.Counters);
  R.Loops = Est.estimateLoops(nullptr);
  if (B.MI.Opts.CallBreaking) {
    R.TypeI = Est.estimateTypeI(nullptr);
    R.TypeII = Est.estimateTypeII(nullptr);
  }
  R.Total = R.Loops;
  R.Total.add(R.TypeI);
  R.Total.add(R.TypeII);
  return R;
}

/// Per-function split of the zero-count ids into the ones branch
/// correlation proves can never execute and the ones the workload merely
/// never exercised.
struct FeasClass {
  bool Have = false;        ///< a path graph existed to walk
  uint64_t ProvenDead = 0;  ///< zero-count ids proven statically infeasible
  uint64_t Unexercised = 0; ///< zero-count ids with no infeasibility proof
  uint64_t ObservedInfeasible = 0; ///< executed ids the proof claims dead
  bool Exhausted = false;          ///< DFS budget hit; ProvenDead is a floor
};

std::vector<FeasClass> classifyZeroIds(const ArtifactBinding &B,
                                       const ProfileArtifact &A) {
  std::vector<FeasClass> Out(A.Counters.PathCounts.size());
  ModuleSummaries Sums = computeSummaries(*B.InstrModule);
  for (uint32_t F = 0; F < Out.size(); ++F) {
    if (F >= B.MI.Funcs.size())
      continue;
    const FunctionInstrumentation &FI = B.MI.Funcs[F];
    if (!FI.PG || !FI.Cfg)
      continue;
    FunctionInfeasibility Inf = computeInfeasiblePaths(
        *B.InstrModule->function(F), *FI.Cfg, *FI.PG, &Sums);
    FeasClass &C = Out[F];
    C.Have = true;
    C.Exhausted = Inf.Exhausted;
    const PathCounterStore &S = A.Counters.PathCounts[F];
    for (const auto &[Id, Count] : S)
      if (Count > 0 && Inf.isInfeasible(Id))
        ++C.ObservedInfeasible;
    uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    uint64_t Zero = Space > S.size() ? Space - S.size() : 0;
    C.ProvenDead = Inf.InfeasibleIds - C.ObservedInfeasible;
    if (C.ProvenDead > Zero)
      C.ProvenDead = Zero;
    C.Unexercised = Zero - C.ProvenDead;
  }
  return Out;
}

void appendMetaJson(std::ostringstream &OS, const ProfileArtifact &A) {
  OS << "\"fingerprint\": \"" << hex16(A.Fingerprint) << "\",\n"
     << "  \"numFunctions\": " << A.NumFunctions << ",\n"
     << "  \"workload\": \"" << jsonEscape(A.Meta.Workload) << "\",\n"
     << "  \"mode\": \"" << jsonEscape(instrumentModeString(A.Meta.Instr))
     << "\",\n"
     << "  \"loopOverlap\": " << (A.Meta.Instr.LoopOverlap ? "true" : "false")
     << ",\n"
     << "  \"loopDegree\": " << A.Meta.Instr.LoopDegree << ",\n"
     << "  \"interproc\": " << (A.Meta.Instr.Interproc ? "true" : "false")
     << ",\n"
     << "  \"interprocDegree\": " << A.Meta.Instr.InterprocDegree << ",\n"
     << "  \"runs\": " << A.Meta.Runs << ",\n"
     << "  \"dynInstrCost\": " << A.Meta.DynInstrCost << ",\n"
     << "  \"timestampUnix\": " << A.Meta.TimestampUnix;
}

} // namespace

//===----------------------------------------------------------------------===//
// show
//===----------------------------------------------------------------------===//

std::string olpp::renderArtifactReport(const ProfileArtifact &A,
                                       const ArtifactBinding *B,
                                       const ReportOptions &Opts) {
  size_t NumPathRecords = 0;
  uint64_t IdsCovered = 0, IdSpaceTotal = 0;
  for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F) {
    NumPathRecords += A.Counters.PathCounts[F].size();
    IdsCovered += A.Counters.PathCounts[F].size();
    IdSpaceTotal += F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
  }
  uint64_t TotalFlow = A.totalPathCount();
  std::vector<HotPath> Hot = hottestPaths(A, Opts.TopN);

  const bool Bound = B && B->ok();
  BoundsRows Bounds;
  if (Bound && Opts.WithBounds)
    Bounds = solveArtifactBounds(*B, A);
  std::vector<FeasClass> Feas;
  if (Bound && Opts.WithFeasibility)
    Feas = classifyZeroIds(*B, A);
  uint64_t DeadTotal = 0, UnexTotal = 0, ObservedDeadTotal = 0;
  for (const FeasClass &C : Feas) {
    DeadTotal += C.ProvenDead;
    UnexTotal += C.Unexercised;
    ObservedDeadTotal += C.ObservedInfeasible;
  }

  if (Opts.Json) {
    std::ostringstream OS;
    OS << "{\n  \"schema\": \"olpp.profdata.report/v1\",\n  ";
    appendMetaJson(OS, A);
    OS << ",\n  \"records\": " << A.numRecords() << ",\n"
       << "  \"pathRecords\": " << NumPathRecords << ",\n"
       << "  \"typeIRecords\": " << A.Counters.TypeICounts.size() << ",\n"
       << "  \"typeIIRecords\": " << A.Counters.TypeIICounts.size() << ",\n"
       << "  \"totalFlow\": " << TotalFlow << ",\n"
       << "  \"idSpace\": " << IdSpaceTotal << ",\n"
       << "  \"idsCovered\": " << IdsCovered << ",\n"
       << "  \"hotPaths\": [";
    for (size_t I = 0; I < Hot.size(); ++I) {
      OS << (I ? ",\n    " : "\n    ") << "{\"function\": \""
         << jsonEscape(funcName(A, B, Hot[I].Func)) << "\", \"functionId\": "
         << Hot[I].Func << ", \"pathId\": " << Hot[I].Slot
         << ", \"count\": " << Hot[I].Count << "}";
    }
    OS << (Hot.empty() ? "]" : "\n  ]") << ",\n  \"functions\": [";
    bool First = true;
    for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F) {
      const PathCounterStore &S = A.Counters.PathCounts[F];
      uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
      if (S.empty() && Space == 0)
        continue;
      uint64_t Flow = 0;
      for (const auto &[Id, Count] : S) {
        (void)Id;
        Flow += Count;
      }
      OS << (First ? "\n    " : ",\n    ") << "{\"function\": \""
         << jsonEscape(funcName(A, B, F)) << "\", \"functionId\": " << F
         << ", \"idsCovered\": " << S.size() << ", \"idSpace\": " << Space
         << ", \"flow\": " << Flow;
      if (F < Feas.size() && Feas[F].Have)
        OS << ", \"provenInfeasible\": " << Feas[F].ProvenDead
           << ", \"unexercised\": " << Feas[F].Unexercised
           << ", \"feasibilityExhausted\": "
           << (Feas[F].Exhausted ? "true" : "false");
      OS << "}";
      First = false;
    }
    OS << (First ? "]" : "\n  ]");
    if (!Feas.empty())
      OS << ",\n  \"provenInfeasibleTotal\": " << DeadTotal
         << ",\n  \"unexercisedTotal\": " << UnexTotal
         << ",\n  \"observedInfeasibleTotal\": " << ObservedDeadTotal;
    if (Bound && Opts.WithBounds) {
      auto Row = [&](const char *Name, const EstimateMetrics &M) {
        OS << "\n    {\"kind\": \"" << Name << "\", \"definite\": "
           << M.Definite << ", \"potential\": " << M.Potential
           << ", \"pairs\": " << M.Pairs << ", \"exactPairs\": "
           << M.ExactPairs << ", \"problems\": " << M.Problems << "}";
      };
      OS << ",\n  \"bounds\": [";
      Row("loops", Bounds.Loops);
      OS << ",";
      Row("typeI", Bounds.TypeI);
      OS << ",";
      Row("typeII", Bounds.TypeII);
      OS << ",";
      Row("total", Bounds.Total);
      OS << "\n  ],\n  \"solverConverged\": "
         << (Bounds.Total.SolverConverged ? "true" : "false")
         << ",\n  \"solverEvaluations\": " << Bounds.Total.SolverEvaluations;
    }
    OS << "\n}\n";
    return OS.str();
  }

  std::ostringstream OS;
  OS << ".olpp artifact";
  if (!A.Meta.Workload.empty())
    OS << ": workload '" << A.Meta.Workload << "'";
  OS << "\n";
  OS << "  fingerprint   " << hex16(A.Fingerprint) << "\n";
  OS << "  functions     " << A.NumFunctions << "\n";
  OS << "  mode          " << instrumentModeString(A.Meta.Instr) << "\n";
  OS << "  runs          " << A.Meta.Runs << "\n";
  OS << "  dynamic cost  " << A.Meta.DynInstrCost << " instructions\n";
  OS << "  timestamp     " << A.Meta.TimestampUnix << "\n";
  OS << "  records       " << A.numRecords() << " (paths " << NumPathRecords
     << ", type I " << A.Counters.TypeICounts.size() << ", type II "
     << A.Counters.TypeIICounts.size() << ")\n";
  OS << "  total flow    " << TotalFlow << "\n";
  OS << "  coverage      " << IdsCovered << "/" << IdSpaceTotal
     << " path ids (" << percent(static_cast<double>(IdsCovered),
                                 static_cast<double>(IdSpaceTotal))
     << ")\n\n";

  OS << "hot paths (top " << Hot.size() << "):\n";
  TableWriter TH({"Count", "Share", "Function", "Path Id"});
  for (const HotPath &H : Hot)
    TH.addRow({std::to_string(H.Count),
               percent(static_cast<double>(H.Count),
                       static_cast<double>(TotalFlow)),
               funcName(A, B, H.Func), std::to_string(H.Slot)});
  OS << TH.renderText() << "\n";

  std::vector<std::string> CovCols = {"Function", "Ids", "Id Space",
                                      "Coverage", "Flow"};
  if (!Feas.empty()) {
    CovCols.push_back("Proven Dead");
    CovCols.push_back("Unexercised");
  }
  TableWriter TF(CovCols);
  for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F) {
    const PathCounterStore &S = A.Counters.PathCounts[F];
    uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    if (S.empty() && Space == 0)
      continue;
    uint64_t Flow = 0;
    for (const auto &[Id, Count] : S) {
      (void)Id;
      Flow += Count;
    }
    std::vector<std::string> Row = {funcName(A, B, F),
                                    std::to_string(S.size()),
                                    std::to_string(Space),
                                    percent(static_cast<double>(S.size()),
                                            static_cast<double>(Space)),
                                    std::to_string(Flow)};
    if (!Feas.empty()) {
      if (F < Feas.size() && Feas[F].Have) {
        // '+' marks a truncated walk: the proven count is a floor.
        Row.push_back(std::to_string(Feas[F].ProvenDead) +
                      (Feas[F].Exhausted ? "+" : ""));
        Row.push_back(std::to_string(Feas[F].Unexercised));
      } else {
        Row.push_back("-");
        Row.push_back("-");
      }
    }
    TF.addRow(Row);
  }
  OS << "per-function coverage:\n" << TF.renderText();
  if (!Feas.empty()) {
    OS << "zero-count ids: " << DeadTotal
       << " proven statically infeasible, " << UnexTotal
       << " merely unexercised by this workload\n";
    if (ObservedDeadTotal)
      OS << "WARNING: " << ObservedDeadTotal
         << " executed path id(s) are classified infeasible — the "
            "feasibility analysis is unsound for this module\n";
  }

  if (Bound && Opts.WithBounds) {
    OS << "\ninteresting-path bounds over the merged counters:\n";
    TableWriter TB({"Kind", "Definite", "Potential", "Exact Pairs",
                    "Problems"});
    auto Row = [&](const char *Name, const EstimateMetrics &M) {
      TB.addRow({Name, std::to_string(M.Definite),
                 std::to_string(M.Potential),
                 std::to_string(M.ExactPairs) + "/" +
                     std::to_string(M.Pairs),
                 std::to_string(M.Problems)});
    };
    Row("loops", Bounds.Loops);
    if (B->MI.Opts.CallBreaking) {
      Row("type I", Bounds.TypeI);
      Row("type II", Bounds.TypeII);
    }
    Row("total", Bounds.Total);
    OS << TB.renderText();
    OS << "solver: " << Bounds.Total.SolverEvaluations << " evaluations, "
       << (Bounds.Total.SolverConverged ? "converged" : "NOT converged")
       << "\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// export
//===----------------------------------------------------------------------===//

std::string olpp::renderArtifactJson(const ProfileArtifact &A) {
  std::ostringstream OS;
  OS << "{\n  \"schema\": \"olpp.profdata.export/v1\",\n  ";
  appendMetaJson(OS, A);
  OS << ",\n  \"paths\": [";
  bool FirstF = true;
  for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F) {
    const PathCounterStore &S = A.Counters.PathCounts[F];
    uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    if (S.empty() && Space == 0)
      continue;
    std::vector<std::pair<int64_t, uint64_t>> Entries;
    Entries.reserve(S.size());
    for (const auto &E : S)
      Entries.push_back(E);
    std::sort(Entries.begin(), Entries.end());
    OS << (FirstF ? "\n    " : ",\n    ") << "{\"functionId\": " << F
       << ", \"idSpace\": " << Space << ", \"counters\": [";
    for (size_t I = 0; I < Entries.size(); ++I)
      OS << (I ? ", " : "") << "[" << Entries[I].first << ", "
         << Entries[I].second << "]";
    OS << "]}";
    FirstF = false;
  }
  OS << (FirstF ? "]" : "\n  ]");
  auto Table = [&](const char *Name, const FlatInterprocTable &T) {
    std::vector<std::pair<InterprocKey, uint64_t>> Entries;
    Entries.reserve(T.size());
    for (const auto &E : T)
      Entries.push_back(E);
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &X, const auto &Y) {
                const InterprocKey &KX = X.first, &KY = Y.first;
                if (KX.Callee != KY.Callee)
                  return KX.Callee < KY.Callee;
                if (KX.CallSite != KY.CallSite)
                  return KX.CallSite < KY.CallSite;
                if (KX.Inner != KY.Inner)
                  return KX.Inner < KY.Inner;
                return KX.Outer < KY.Outer;
              });
    OS << ",\n  \"" << Name << "\": [";
    for (size_t I = 0; I < Entries.size(); ++I) {
      const InterprocKey &K = Entries[I].first;
      OS << (I ? ",\n    " : "\n    ") << "[" << K.Callee << ", "
         << K.CallSite << ", " << K.Inner << ", " << K.Outer << ", "
         << Entries[I].second << "]";
    }
    OS << (Entries.empty() ? "]" : "\n  ]");
  };
  Table("typeI", A.Counters.TypeICounts);
  Table("typeII", A.Counters.TypeIICounts);
  OS << "\n}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// diff
//===----------------------------------------------------------------------===//

std::string olpp::renderArtifactDiff(const ProfileArtifact &A,
                                     const ProfileArtifact &B,
                                     const std::string &NameA,
                                     const std::string &NameB,
                                     const DiffOptions &Opts) {
  struct Change {
    uint32_t Func = 0;
    int64_t Slot = 0;
    uint64_t Before = 0, After = 0;
  };
  std::vector<Change> Added, Removed, Changed;
  uint32_t NumFuncs = std::max(
      static_cast<uint32_t>(A.Counters.PathCounts.size()),
      static_cast<uint32_t>(B.Counters.PathCounts.size()));
  for (uint32_t F = 0; F < NumFuncs; ++F) {
    static const PathCounterStore EmptyStore;
    const PathCounterStore &SA = F < A.Counters.PathCounts.size()
                                     ? A.Counters.PathCounts[F]
                                     : EmptyStore;
    const PathCounterStore &SB = F < B.Counters.PathCounts.size()
                                     ? B.Counters.PathCounts[F]
                                     : EmptyStore;
    for (const auto &[Slot, Count] : SA) {
      uint64_t After = SB.lookup(Slot);
      if (After == 0)
        Removed.push_back({F, Slot, Count, 0});
      else if (After != Count)
        Changed.push_back({F, Slot, Count, After});
    }
    for (const auto &[Slot, Count] : SB)
      if (SA.lookup(Slot) == 0)
        Added.push_back({F, Slot, 0, Count});
  }
  size_t Regressed = 0, Improved = 0;
  for (const Change &C : Changed)
    (C.After < C.Before ? Regressed : Improved) += 1;

  auto Magnitude = [](const Change &C) {
    return C.After > C.Before ? C.After - C.Before : C.Before - C.After;
  };
  std::vector<Change> Top;
  Top.insert(Top.end(), Added.begin(), Added.end());
  Top.insert(Top.end(), Removed.begin(), Removed.end());
  Top.insert(Top.end(), Changed.begin(), Changed.end());
  std::sort(Top.begin(), Top.end(), [&](const Change &X, const Change &Y) {
    uint64_t MX = Magnitude(X), MY = Magnitude(Y);
    if (MX != MY)
      return MX > MY;
    if (X.Func != Y.Func)
      return X.Func < Y.Func;
    return X.Slot < Y.Slot;
  });
  if (Top.size() > Opts.TopN)
    Top.resize(Opts.TopN);

  bool SameModule = A.Fingerprint == B.Fingerprint;

  if (Opts.Json) {
    std::ostringstream OS;
    OS << "{\n  \"schema\": \"olpp.profdata.diff/v1\",\n"
       << "  \"a\": \"" << jsonEscape(NameA) << "\",\n"
       << "  \"b\": \"" << jsonEscape(NameB) << "\",\n"
       << "  \"sameModule\": " << (SameModule ? "true" : "false") << ",\n"
       << "  \"flowA\": " << A.totalPathCount() << ",\n"
       << "  \"flowB\": " << B.totalPathCount() << ",\n"
       << "  \"added\": " << Added.size() << ",\n"
       << "  \"removed\": " << Removed.size() << ",\n"
       << "  \"regressed\": " << Regressed << ",\n"
       << "  \"improved\": " << Improved << ",\n"
       << "  \"topChanges\": [";
    for (size_t I = 0; I < Top.size(); ++I)
      OS << (I ? ",\n    " : "\n    ") << "{\"functionId\": " << Top[I].Func
         << ", \"pathId\": " << Top[I].Slot << ", \"before\": "
         << Top[I].Before << ", \"after\": " << Top[I].After << "}";
    OS << (Top.empty() ? "]" : "\n  ]") << "\n}\n";
    return OS.str();
  }

  std::ostringstream OS;
  OS << "profdata diff: " << NameA << " -> " << NameB << "\n";
  if (!SameModule)
    OS << "warning: artifacts profile different modules (fingerprints "
       << hex16(A.Fingerprint) << " vs " << hex16(B.Fingerprint)
       << "); path ids are not comparable\n";
  OS << "  total flow   " << A.totalPathCount() << " -> "
     << B.totalPathCount() << "\n";
  OS << "  added        " << Added.size() << " path record(s)\n";
  OS << "  removed      " << Removed.size() << " path record(s)\n";
  OS << "  regressed    " << Regressed << " (count decreased)\n";
  OS << "  improved     " << Improved << " (count increased)\n";
  if (!Top.empty()) {
    OS << "\nlargest changes (top " << Top.size() << "):\n";
    TableWriter T({"Function", "Path Id", "Before", "After", "Delta"});
    for (const Change &C : Top) {
      std::string Delta = C.After >= C.Before
                              ? "+" + std::to_string(C.After - C.Before)
                              : "-" + std::to_string(C.Before - C.After);
      T.addRow({"f" + std::to_string(C.Func), std::to_string(C.Slot),
                std::to_string(C.Before), std::to_string(C.After), Delta});
    }
    OS << T.renderText();
  }
  return OS.str();
}
