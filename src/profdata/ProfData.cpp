//===--- ProfData.cpp - Persistent .olpp profile artifacts ----------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profdata/ProfData.h"

#include "interp/PlanCache.h"
#include "ir/Module.h"
#include "support/Crc32.h"
#include "support/Leb128.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>

using namespace olpp;
using namespace olpp::profdata;

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

uint64_t olpp::moduleProfileFingerprint(const Module &M) {
  static std::mutex Mu;
  static std::unordered_map<uint64_t, uint64_t> Memo;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Memo.find(M.uid());
    if (It != Memo.end())
      return It->second;
  }
  // FNV-1a over the full content fingerprint the plan cache already defines;
  // stable across processes for identical module content.
  std::string FP = modulePlanFingerprint(M);
  uint64_t H = 0xCBF29CE484222325ULL;
  for (unsigned char C : FP) {
    H ^= C;
    H *= 0x100000001B3ULL;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  if (Memo.size() > 4096)
    Memo.clear(); // fuzzing churns through modules; keep the memo bounded
  Memo.emplace(M.uid(), H);
  return H;
}

//===----------------------------------------------------------------------===//
// Artifact construction and summary
//===----------------------------------------------------------------------===//

ProfileArtifact ProfileArtifact::fromRuntime(const Module &M,
                                             const ModuleInstrumentation &MI,
                                             const ProfileRuntime &Prof,
                                             RunMeta Meta) {
  ProfileArtifact A;
  A.Fingerprint = moduleProfileFingerprint(M);
  A.NumFunctions = static_cast<uint32_t>(M.numFunctions());
  A.Meta = std::move(Meta);
  A.Meta.Instr = MI.Opts;
  A.IdSpaces.assign(A.NumFunctions, 0);
  for (uint32_t F = 0; F < A.NumFunctions && F < MI.Funcs.size(); ++F)
    if (MI.Funcs[F].PG)
      A.IdSpaces[F] = MI.Funcs[F].PG->numPaths();
  A.Counters.PathCounts.resize(A.NumFunctions);
  for (uint32_t F = 0; F < A.NumFunctions && F < Prof.PathCounts.size(); ++F) {
    A.Counters.configurePathStore(F, A.IdSpaces[F]);
    A.Counters.PathCounts[F].mergeFrom(Prof.PathCounts[F]);
  }
  A.Counters.TypeICounts.mergeFrom(Prof.TypeICounts);
  A.Counters.TypeIICounts.mergeFrom(Prof.TypeIICounts);
  return A;
}

uint64_t ProfileArtifact::numRecords() const {
  uint64_t N = 0;
  for (const PathCounterStore &S : Counters.PathCounts)
    N += S.size();
  return N + Counters.TypeICounts.size() + Counters.TypeIICounts.size();
}

uint64_t ProfileArtifact::totalPathCount() const {
  uint64_t Total = 0;
  for (const PathCounterStore &S : Counters.PathCounts)
    for (const auto &[Id, Count] : S) {
      (void)Id;
      Total += Count;
    }
  return Total;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

bool keyLess(const InterprocKey &A, const InterprocKey &B) {
  if (A.Callee != B.Callee)
    return A.Callee < B.Callee;
  if (A.CallSite != B.CallSite)
    return A.CallSite < B.CallSite;
  if (A.Inner != B.Inner)
    return A.Inner < B.Inner;
  return A.Outer < B.Outer;
}

uint64_t instrModeBits(const InstrumentOptions &O) {
  uint64_t Bits = 0;
  if (O.LoopOverlap)
    Bits |= 1;
  if (O.Interproc)
    Bits |= 2;
  if (O.CallBreaking)
    Bits |= 4;
  if (O.UseChords)
    Bits |= 8;
  return Bits;
}

std::string buildMetaPayload(const ProfileArtifact &A) {
  std::string P;
  appendU64(P, A.Fingerprint);
  appendUleb(P, A.NumFunctions);
  appendUleb(P, instrModeBits(A.Meta.Instr));
  appendUleb(P, A.Meta.Instr.LoopDegree);
  appendUleb(P, A.Meta.Instr.InterprocDegree);
  appendUleb(P, A.Meta.Runs);
  appendUleb(P, A.Meta.DynInstrCost);
  appendUleb(P, A.Meta.TimestampUnix);
  appendUleb(P, A.Meta.Workload.size());
  P += A.Meta.Workload;
  return P;
}

std::string buildPathsPayload(const ProfileArtifact &A) {
  std::string P;
  std::vector<uint32_t> Funcs;
  for (uint32_t F = 0; F < A.Counters.PathCounts.size(); ++F) {
    uint64_t Space = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    if (!A.Counters.PathCounts[F].empty() || Space > 0)
      Funcs.push_back(F);
  }
  appendUleb(P, Funcs.size());
  for (uint32_t F : Funcs) {
    const PathCounterStore &S = A.Counters.PathCounts[F];
    appendUleb(P, F);
    appendUleb(P, F < A.IdSpaces.size() ? A.IdSpaces[F] : 0);
    std::vector<std::pair<int64_t, uint64_t>> Entries;
    Entries.reserve(S.size());
    for (const auto &E : S)
      Entries.push_back(E);
    std::sort(Entries.begin(), Entries.end());
    appendUleb(P, Entries.size());
    int64_t Prev = 0;
    for (size_t I = 0; I < Entries.size(); ++I) {
      if (I == 0)
        appendSleb(P, Entries[I].first);
      else
        appendUleb(P, static_cast<uint64_t>(Entries[I].first - Prev));
      Prev = Entries[I].first;
      appendUleb(P, Entries[I].second);
    }
  }
  return P;
}

std::string buildInterprocPayload(const FlatInterprocTable &T) {
  std::string P;
  std::vector<std::pair<InterprocKey, uint64_t>> Entries;
  Entries.reserve(T.size());
  for (const auto &E : T)
    Entries.push_back(E);
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) { return keyLess(A.first, B.first); });
  appendUleb(P, Entries.size());
  InterprocKey Prev;
  for (const auto &[K, Count] : Entries) {
    appendSleb(P, static_cast<int64_t>(K.Callee) -
                      static_cast<int64_t>(Prev.Callee));
    appendSleb(P, static_cast<int64_t>(K.CallSite) -
                      static_cast<int64_t>(Prev.CallSite));
    appendSleb(P, K.Inner - Prev.Inner);
    appendSleb(P, K.Outer - Prev.Outer);
    appendUleb(P, Count);
    Prev = K;
  }
  return P;
}

void emitHeader(std::ostream &OS, uint32_t SectionCount) {
  std::string H;
  H.append(Magic, sizeof(Magic));
  H.push_back(static_cast<char>(VersionMajor));
  H.push_back(static_cast<char>(VersionMinor));
  H.push_back(0); // flags lo
  H.push_back(0); // flags hi
  appendU32(H, SectionCount);
  appendU32(H, crc32(H));
  OS.write(H.data(), static_cast<std::streamsize>(H.size()));
}

void emitSection(std::ostream &OS, uint8_t Id, const std::string &Payload) {
  std::string Frame;
  Frame.push_back(static_cast<char>(Id));
  appendU64(Frame, Payload.size());
  OS.write(Frame.data(), static_cast<std::streamsize>(Frame.size()));
  OS.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  std::string Crc;
  appendU32(Crc, crc32(Payload));
  OS.write(Crc.data(), static_cast<std::streamsize>(Crc.size()));
}

} // namespace

bool olpp::writeProfileArtifact(std::ostream &OS, const ProfileArtifact &A) {
  emitHeader(OS, 4);
  // One section payload lives in memory at a time; counters stream straight
  // out of the stores.
  emitSection(OS, SecMeta, buildMetaPayload(A));
  emitSection(OS, SecPaths, buildPathsPayload(A));
  emitSection(OS, SecTypeI, buildInterprocPayload(A.Counters.TypeICounts));
  emitSection(OS, SecTypeII, buildInterprocPayload(A.Counters.TypeIICounts));
  return static_cast<bool>(OS);
}

std::string olpp::serializeProfileArtifact(const ProfileArtifact &A) {
  std::ostringstream OS;
  writeProfileArtifact(OS, A);
  return OS.str();
}

bool olpp::writeProfileArtifactFile(const std::string &Path,
                                    const ProfileArtifact &A,
                                    std::string &Error) {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  if (!writeProfileArtifact(OS, A) || !OS.flush()) {
    Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Checked reader
//===----------------------------------------------------------------------===//

namespace {

/// Collects everything the strict decode needs; any error appends one
/// diagnostic and aborts the read wholesale.
class Reader {
public:
  Reader(std::istream &IS, std::vector<Diagnostic> &Diags,
         const ProfDataReadOptions &Opts)
      : IS(IS), Diags(Diags), Opts(Opts) {}

  bool read(ProfileArtifact &Out) {
    uint32_t SectionCount = 0;
    if (!readHeader(SectionCount))
      return false;
    bool Seen[5] = {false, false, false, false, false};
    for (uint32_t S = 0; S < SectionCount; ++S) {
      uint8_t Id = 0;
      std::string Payload;
      if (!readSection(S, Id, Payload))
        return false;
      if (Id >= SecMeta && Id <= SecTypeII) {
        if (Seen[Id])
          return fail("duplicate section id " + std::to_string(Id));
        Seen[Id] = true;
        if (S == 0 && Id != SecMeta)
          return fail("META must be the first section");
        bool Ok = false;
        switch (Id) {
        case SecMeta:
          Ok = parseMeta(Payload, Out);
          break;
        case SecPaths:
          Ok = parsePaths(Payload, Out);
          break;
        case SecTypeI:
          Ok = parseInterproc(Payload, Out.Counters.TypeICounts, "TYPE1");
          break;
        case SecTypeII:
          Ok = parseInterproc(Payload, Out.Counters.TypeIICounts, "TYPE2");
          break;
        }
        if (!Ok)
          return false;
      }
      // Unknown ids are newer-minor extensions: skipped, but their framing
      // and CRC were still checked by readSection.
    }
    for (uint8_t Id = SecMeta; Id <= SecTypeII; ++Id)
      if (!Seen[Id])
        return fail("missing required section id " + std::to_string(Id));
    if (IS.peek() != std::char_traits<char>::eof())
      return fail("trailing bytes after the last declared section");
    if (Opts.CheckFingerprint && Out.Fingerprint != Opts.ExpectedFingerprint) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%016llx, expected %016llx",
                    static_cast<unsigned long long>(Out.Fingerprint),
                    static_cast<unsigned long long>(Opts.ExpectedFingerprint));
      return fail(std::string("module fingerprint mismatch: artifact has ") +
                  Buf);
    }
    return true;
  }

private:
  bool fail(std::string Msg) {
    Diags.push_back(
        makeDiag(Severity::Error, "profdata", "", std::move(Msg)));
    return false;
  }

  bool readBytes(std::string &Out, size_t N, const char *What) {
    // Chunked so a corrupted length field fails with a truncation
    // diagnostic after at most one chunk, never a huge upfront allocation.
    constexpr size_t Chunk = 1 << 20;
    Out.clear();
    while (Out.size() < N) {
      size_t Want = std::min(Chunk, N - Out.size());
      size_t Old = Out.size();
      Out.resize(Old + Want);
      IS.read(Out.data() + Old, static_cast<std::streamsize>(Want));
      if (static_cast<size_t>(IS.gcount()) != Want)
        return fail(std::string("truncated artifact: expected ") +
                    std::to_string(N) + " byte(s) of " + What);
    }
    return true;
  }

  static uint32_t decodeU32(const std::string &S, size_t Pos) {
    uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | static_cast<uint8_t>(S[Pos + static_cast<size_t>(I)]);
    return V;
  }

  static uint64_t decodeU64(const std::string &S, size_t Pos) {
    uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | static_cast<uint8_t>(S[Pos + static_cast<size_t>(I)]);
    return V;
  }

  bool readHeader(uint32_t &SectionCount) {
    std::string H;
    if (!readBytes(H, HeaderSize, "header"))
      return false;
    if (H.compare(0, sizeof(Magic), Magic, sizeof(Magic)) != 0)
      return fail("bad magic: not an .olpp profile artifact");
    uint8_t Major = static_cast<uint8_t>(H[4]);
    // The major gate comes before the CRC so a reader from the past can
    // still name the future version it is rejecting.
    if (Major > VersionMajor)
      return fail("artifact has newer major version " +
                  std::to_string(Major) + "; this reader understands up to " +
                  std::to_string(VersionMajor));
    if (Major == 0)
      return fail("artifact has invalid major version 0");
    if (Opts.VerifyCrc &&
        decodeU32(H, 12) != crc32(H.data(), 12))
      return fail("header CRC mismatch");
    SectionCount = decodeU32(H, 8);
    if (SectionCount > 1024)
      return fail("implausible section count " +
                  std::to_string(SectionCount));
    return true;
  }

  bool readSection(uint32_t Index, uint8_t &Id, std::string &Payload) {
    std::string Frame;
    if (!readBytes(Frame, 9,
                   ("section " + std::to_string(Index) + " framing").c_str()))
      return false;
    Id = static_cast<uint8_t>(Frame[0]);
    uint64_t Len = decodeU64(Frame, 1);
    if (Len > (1ULL << 40))
      return fail("section " + std::to_string(Index) +
                  " declares an implausible payload length");
    if (!readBytes(Payload, static_cast<size_t>(Len),
                   ("section " + std::to_string(Index) + " payload").c_str()))
      return false;
    std::string Crc;
    if (!readBytes(Crc, 4,
                   ("section " + std::to_string(Index) + " CRC").c_str()))
      return false;
    if (Opts.VerifyCrc && decodeU32(Crc, 0) != crc32(Payload))
      return fail("section " + std::to_string(Index) + " (id " +
                  std::to_string(Id) + ") CRC mismatch");
    return true;
  }

  bool uleb(const std::string &P, size_t &Pos, uint64_t &V,
            const char *What) {
    if (!readUleb(P, Pos, V))
      return fail(std::string("truncated or malformed varint for ") + What);
    return true;
  }

  bool sleb(const std::string &P, size_t &Pos, int64_t &V, const char *What) {
    if (!readSleb(P, Pos, V))
      return fail(std::string("truncated or malformed varint for ") + What);
    return true;
  }

  bool parseMeta(const std::string &P, ProfileArtifact &Out) {
    if (P.size() < 8)
      return fail("META payload truncated before the fingerprint");
    Out.Fingerprint = decodeU64(P, 0);
    size_t Pos = 8;
    uint64_t NumFuncs, Mode, LoopDeg, InterDeg, NameLen;
    if (!uleb(P, Pos, NumFuncs, "META numFunctions") ||
        !uleb(P, Pos, Mode, "META mode bits") ||
        !uleb(P, Pos, LoopDeg, "META loop degree") ||
        !uleb(P, Pos, InterDeg, "META interproc degree") ||
        !uleb(P, Pos, Out.Meta.Runs, "META runs") ||
        !uleb(P, Pos, Out.Meta.DynInstrCost, "META dynamic cost") ||
        !uleb(P, Pos, Out.Meta.TimestampUnix, "META timestamp") ||
        !uleb(P, Pos, NameLen, "META workload-name length"))
      return false;
    if (NumFuncs > (1u << 20))
      return fail("META declares an implausible function count");
    if (Mode > 15)
      return fail("META has unknown instrumentation-mode bits");
    if (LoopDeg > (1u << 16) || InterDeg > (1u << 16))
      return fail("META declares an implausible overlap degree");
    if (NameLen > P.size() - Pos)
      return fail("META workload name is truncated");
    Out.NumFunctions = static_cast<uint32_t>(NumFuncs);
    Out.Meta.Instr.LoopOverlap = Mode & 1;
    Out.Meta.Instr.Interproc = Mode & 2;
    Out.Meta.Instr.CallBreaking = Mode & 4;
    Out.Meta.Instr.UseChords = Mode & 8;
    Out.Meta.Instr.LoopDegree = static_cast<uint32_t>(LoopDeg);
    Out.Meta.Instr.InterprocDegree = static_cast<uint32_t>(InterDeg);
    Out.Meta.Workload = P.substr(Pos, NameLen);
    Pos += NameLen;
    if (Pos != P.size())
      return fail("META payload has trailing bytes");
    Out.IdSpaces.assign(Out.NumFunctions, 0);
    Out.Counters.PathCounts.resize(Out.NumFunctions);
    return true;
  }

  bool parsePaths(const std::string &P, ProfileArtifact &Out) {
    size_t Pos = 0;
    uint64_t NumFuncs;
    if (!uleb(P, Pos, NumFuncs, "PATHS function count"))
      return false;
    int64_t PrevFunc = -1;
    for (uint64_t I = 0; I < NumFuncs; ++I) {
      uint64_t F, Space, NumEntries;
      if (!uleb(P, Pos, F, "PATHS function id") ||
          !uleb(P, Pos, Space, "PATHS id space") ||
          !uleb(P, Pos, NumEntries, "PATHS entry count"))
        return false;
      if (F >= Out.NumFunctions)
        return fail("PATHS function id " + std::to_string(F) +
                    " out of range (module has " +
                    std::to_string(Out.NumFunctions) + ")");
      if (static_cast<int64_t>(F) <= PrevFunc)
        return fail("PATHS function ids are duplicated or unsorted");
      PrevFunc = static_cast<int64_t>(F);
      Out.IdSpaces[F] = Space;
      PathCounterStore &S = Out.Counters.PathCounts[F];
      S.configure(Space);
      int64_t Slot = 0;
      for (uint64_t E = 0; E < NumEntries; ++E) {
        if (E == 0) {
          if (!sleb(P, Pos, Slot, "PATHS slot"))
            return false;
        } else {
          uint64_t Delta;
          if (!uleb(P, Pos, Delta, "PATHS slot delta"))
            return false;
          if (Delta == 0)
            return fail("duplicate path slot in function " +
                        std::to_string(F));
          Slot += static_cast<int64_t>(Delta);
        }
        if (Slot < 0)
          return fail("negative path slot in function " + std::to_string(F));
        if (Space > 0 && static_cast<uint64_t>(Slot) >= Space)
          return fail("path slot " + std::to_string(Slot) +
                      " out of range [0, " + std::to_string(Space) +
                      ") in function " + std::to_string(F));
        uint64_t Count;
        if (!uleb(P, Pos, Count, "PATHS count"))
          return false;
        if (Count == 0)
          return fail("zero count for path slot " + std::to_string(Slot) +
                      " in function " + std::to_string(F) +
                      " (live counters are positive)");
        S.add(Slot, Count);
      }
    }
    if (Pos != P.size())
      return fail("PATHS payload has trailing bytes");
    return true;
  }

  bool parseInterproc(const std::string &P, FlatInterprocTable &T,
                      const char *Name) {
    size_t Pos = 0;
    uint64_t NumEntries;
    if (!uleb(P, Pos, NumEntries, "interproc entry count"))
      return false;
    InterprocKey Prev;
    for (uint64_t E = 0; E < NumEntries; ++E) {
      int64_t DCallee, DCallSite, DInner, DOuter;
      if (!sleb(P, Pos, DCallee, "interproc callee delta") ||
          !sleb(P, Pos, DCallSite, "interproc call-site delta") ||
          !sleb(P, Pos, DInner, "interproc inner delta") ||
          !sleb(P, Pos, DOuter, "interproc outer delta"))
        return false;
      int64_t Callee = static_cast<int64_t>(Prev.Callee) + DCallee;
      int64_t CallSite = static_cast<int64_t>(Prev.CallSite) + DCallSite;
      if (Callee < 0 || Callee > static_cast<int64_t>(UINT32_MAX) ||
          CallSite < 0 || CallSite > static_cast<int64_t>(UINT32_MAX))
        return fail(std::string(Name) +
                    " entry has an out-of-range callee or call site");
      InterprocKey K;
      K.Callee = static_cast<uint32_t>(Callee);
      K.CallSite = static_cast<uint32_t>(CallSite);
      K.Inner = Prev.Inner + DInner;
      K.Outer = Prev.Outer + DOuter;
      if (E > 0 && !keyLess(Prev, K))
        return fail(std::string(Name) +
                    " entries are duplicated or unsorted");
      uint64_t Count;
      if (!uleb(P, Pos, Count, "interproc count"))
        return false;
      if (Count == 0)
        return fail(std::string(Name) +
                    " entry has a zero count (live counters are positive)");
      T.bump(K, Count);
      Prev = K;
    }
    if (Pos != P.size())
      return fail(std::string(Name) + " payload has trailing bytes");
    return true;
  }

  std::istream &IS;
  std::vector<Diagnostic> &Diags;
  const ProfDataReadOptions &Opts;
};

} // namespace

bool olpp::readProfileArtifact(std::istream &IS, ProfileArtifact &Out,
                               std::vector<Diagnostic> &Diags,
                               const ProfDataReadOptions &Opts) {
  ProfileArtifact Tmp;
  if (!Reader(IS, Diags, Opts).read(Tmp)) {
    Out = ProfileArtifact(); // rejected wholesale: no partial counter sets
    return false;
  }
  Out = std::move(Tmp);
  return true;
}

bool olpp::readProfileArtifactBytes(const std::string &Bytes,
                                    ProfileArtifact &Out,
                                    std::vector<Diagnostic> &Diags,
                                    const ProfDataReadOptions &Opts) {
  return readProfileArtifactView(Bytes, Out, Diags, Opts);
}

namespace {
/// Read-only streambuf over caller-owned bytes: the istream facade the
/// checked Reader expects, without copying the input. The const_cast is
/// safe — a get-area-only streambuf never writes through these pointers.
class ViewBuf : public std::streambuf {
public:
  explicit ViewBuf(std::string_view Bytes) {
    char *B = const_cast<char *>(Bytes.data());
    setg(B, B, B + Bytes.size());
  }
};
} // namespace

bool olpp::readProfileArtifactView(std::string_view Bytes,
                                   ProfileArtifact &Out,
                                   std::vector<Diagnostic> &Diags,
                                   const ProfDataReadOptions &Opts) {
  ViewBuf SB(Bytes);
  std::istream IS(&SB);
  return readProfileArtifact(IS, Out, Diags, Opts);
}

bool olpp::readProfileArtifactFile(const std::string &Path,
                                   ProfileArtifact &Out,
                                   std::vector<Diagnostic> &Diags,
                                   const ProfDataReadOptions &Opts) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS) {
    Diags.push_back(makeDiag(Severity::Error, "profdata", "",
                             "cannot open '" + Path + "'"));
    return false;
  }
  return readProfileArtifact(IS, Out, Diags, Opts);
}

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

bool olpp::artifactsEqual(const ProfileArtifact &A, const ProfileArtifact &B,
                          std::string *FirstDiff) {
  auto Diff = [&](const std::string &Msg) {
    if (FirstDiff)
      *FirstDiff = Msg;
    return false;
  };
  if (A.Fingerprint != B.Fingerprint)
    return Diff("fingerprint differs");
  if (A.NumFunctions != B.NumFunctions)
    return Diff("function count differs");
  const InstrumentOptions &IA = A.Meta.Instr, &IB = B.Meta.Instr;
  if (IA.LoopOverlap != IB.LoopOverlap || IA.LoopDegree != IB.LoopDegree ||
      IA.Interproc != IB.Interproc ||
      IA.InterprocDegree != IB.InterprocDegree ||
      IA.CallBreaking != IB.CallBreaking || IA.UseChords != IB.UseChords)
    return Diff("instrumentation mode differs");
  if (A.Meta.Workload != B.Meta.Workload || A.Meta.Runs != B.Meta.Runs ||
      A.Meta.DynInstrCost != B.Meta.DynInstrCost ||
      A.Meta.TimestampUnix != B.Meta.TimestampUnix)
    return Diff("run metadata differs");
  for (uint32_t F = 0; F < A.NumFunctions; ++F) {
    uint64_t SA = F < A.IdSpaces.size() ? A.IdSpaces[F] : 0;
    uint64_t SB = F < B.IdSpaces.size() ? B.IdSpaces[F] : 0;
    if (SA != SB)
      return Diff("id space of function " + std::to_string(F) + " differs");
    const PathCounterStore &CA = A.Counters.PathCounts[F];
    const PathCounterStore &CB = B.Counters.PathCounts[F];
    if (CA != CB)
      return Diff("path counters of function " + std::to_string(F) +
                  " differ");
  }
  if (A.Counters.TypeICounts != B.Counters.TypeICounts)
    return Diff("Type I counters differ");
  if (A.Counters.TypeIICounts != B.Counters.TypeIICounts)
    return Diff("Type II counters differ");
  return true;
}
