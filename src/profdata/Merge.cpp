//===--- Merge.cpp - Multi-run .olpp artifact merging ---------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profdata/Merge.h"

#include "support/Saturate.h"

#include <algorithm>

using namespace olpp;

ProfileArtifact olpp::makeEmptyLike(const ProfileArtifact &A) {
  ProfileArtifact E;
  E.Fingerprint = A.Fingerprint;
  E.NumFunctions = A.NumFunctions;
  E.Meta.Workload = A.Meta.Workload;
  E.Meta.Instr = A.Meta.Instr;
  E.Meta.Runs = 0;
  E.Meta.DynInstrCost = 0;
  E.Meta.TimestampUnix = 0;
  E.IdSpaces = A.IdSpaces;
  E.Counters.PathCounts.resize(A.NumFunctions);
  for (uint32_t F = 0; F < A.NumFunctions; ++F)
    E.Counters.configurePathStore(F, F < E.IdSpaces.size() ? E.IdSpaces[F]
                                                           : 0);
  return E;
}

namespace {

bool incompatible(const ProfileArtifact &Dst, const ProfileArtifact &Src,
                  std::vector<Diagnostic> &Diags) {
  auto Reject = [&](std::string Msg) {
    Diags.push_back(
        makeDiag(Severity::Error, "profdata-merge", "", std::move(Msg)));
    return true;
  };
  if (Dst.Fingerprint != Src.Fingerprint)
    return Reject("module fingerprint mismatch: artifacts profile different "
                  "modules");
  if (Dst.NumFunctions != Src.NumFunctions)
    return Reject("function count mismatch");
  const InstrumentOptions &A = Dst.Meta.Instr, &B = Src.Meta.Instr;
  if (A.LoopOverlap != B.LoopOverlap || A.LoopDegree != B.LoopDegree ||
      A.Interproc != B.Interproc ||
      A.InterprocDegree != B.InterprocDegree ||
      A.CallBreaking != B.CallBreaking || A.UseChords != B.UseChords)
    return Reject("instrumentation mode mismatch: profiles collected under "
                  "different modes or degrees do not aggregate");
  for (uint32_t F = 0; F < Dst.NumFunctions; ++F) {
    uint64_t SA = F < Dst.IdSpaces.size() ? Dst.IdSpaces[F] : 0;
    uint64_t SB = F < Src.IdSpaces.size() ? Src.IdSpaces[F] : 0;
    if (SA != 0 && SB != 0 && SA != SB)
      return Reject("path-id space mismatch in function " +
                    std::to_string(F));
  }
  return false;
}

} // namespace

bool olpp::mergeArtifacts(ProfileArtifact &Dst, const ProfileArtifact &Src,
                          std::vector<Diagnostic> &Diags,
                          const MergeOptions &Opts) {
  if (Opts.Weight == 0) {
    Diags.push_back(makeDiag(Severity::Error, "profdata-merge", "",
                             "merge weight must be positive"));
    return false;
  }
  if (incompatible(Dst, Src, Diags))
    return false;

  // Reconcile id spaces (a shard that never entered a function may record 0
  // for it) and make sure the destination stores exist and are configured
  // before counters land, so dense representation kicks in where possible.
  if (Dst.IdSpaces.size() < Dst.NumFunctions)
    Dst.IdSpaces.resize(Dst.NumFunctions, 0);
  if (Dst.Counters.PathCounts.size() < Dst.NumFunctions)
    Dst.Counters.PathCounts.resize(Dst.NumFunctions);
  for (uint32_t F = 0; F < Dst.NumFunctions; ++F) {
    uint64_t SB = F < Src.IdSpaces.size() ? Src.IdSpaces[F] : 0;
    if (Dst.IdSpaces[F] == 0 && SB != 0)
      Dst.IdSpaces[F] = SB;
    Dst.Counters.configurePathStore(F, Dst.IdSpaces[F]);
  }

  for (uint32_t F = 0; F < Dst.NumFunctions; ++F) {
    if (F >= Src.Counters.PathCounts.size())
      break;
    PathCounterStore &D = Dst.Counters.PathCounts[F];
    for (const auto &[Id, Count] : Src.Counters.PathCounts[F])
      D.add(Id, saturatingMul(Count, Opts.Weight));
  }
  for (const auto &[Key, Count] : Src.Counters.TypeICounts)
    Dst.Counters.TypeICounts.bump(Key, saturatingMul(Count, Opts.Weight));
  for (const auto &[Key, Count] : Src.Counters.TypeIICounts)
    Dst.Counters.TypeIICounts.bump(Key, saturatingMul(Count, Opts.Weight));

  Dst.Meta.Runs =
      saturatingAdd(Dst.Meta.Runs, saturatingMul(Src.Meta.Runs, Opts.Weight));
  Dst.Meta.DynInstrCost = saturatingAdd(
      Dst.Meta.DynInstrCost, saturatingMul(Src.Meta.DynInstrCost, Opts.Weight));
  Dst.Meta.TimestampUnix =
      std::max(Dst.Meta.TimestampUnix, Src.Meta.TimestampUnix);
  if (Dst.Meta.Workload.empty())
    Dst.Meta.Workload = Src.Meta.Workload;
  else if (!Src.Meta.Workload.empty() &&
           Src.Meta.Workload < Dst.Meta.Workload)
    Dst.Meta.Workload = Src.Meta.Workload;
  return true;
}
