//===--- ProfData.h - Persistent .olpp profile artifacts --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable, mergeable profile container behind `olpp profdata` — the
/// llvm-profdata analogue for OLPP. Every profile the runtime collects (BL
/// path counters, OL-k overlap counters, interprocedural Type I/II tables)
/// can be written to a versioned binary `.olpp` artifact, read back with a
/// strict checked decoder, and merged across runs, shards and machines with
/// saturating-add semantics that are bit-identical to replaying the runs.
///
/// ## File layout (all multi-byte fixed-width integers little-endian)
///
///   Header (16 bytes):
///     0..3   magic "OLPP"
///     4      version major (readers reject artifacts with a newer major)
///     5      version minor (newer minors may add sections; readers skip
///            section ids they do not know)
///     6..7   u16 flags (reserved, 0)
///     8..11  u32 section count
///     12..15 u32 CRC-32 of bytes 0..11
///
///   Then `section count` sections, each:
///     u8   section id
///     u64  payload length
///     payload bytes
///     u32  CRC-32 of the payload
///
/// Section payloads use canonical ULEB128 ("uleb") and zigzag-SLEB ("sleb")
/// variable-length integers (support/Leb128.h):
///
///   META (id 1, required, must come first):
///     u64 (fixed 8 bytes LE) module fingerprint
///     uleb numFunctions
///     uleb mode bits: 1 = LoopOverlap, 2 = Interproc, 4 = CallBreaking,
///                     8 = UseChords
///     uleb LoopDegree, uleb InterprocDegree
///     uleb Runs            (profiled runs merged into this artifact)
///     uleb DynInstrCost    (instrumented dynamic instructions, summed)
///     uleb TimestampUnix   (injected by the caller; 0 = unknown)
///     uleb workload-name length, then that many bytes
///
///   PATHS (id 2, required): per-function BL/OL-k path counters.
///     uleb number of functions that follow
///     per function (function ids strictly increasing):
///       uleb function id (must be < numFunctions)
///       uleb idSpace     (PathGraph::numPaths(); 0 = unknown)
///       uleb numEntries
///       entries sorted by slot ascending:
///         first slot:  sleb absolute
///         later slots: uleb delta from the previous slot (0 would be a
///                      duplicate slot and is rejected)
///         count: uleb, must be >= 1 (live counters are positive)
///
///   TYPE1 (id 3, required) and TYPE2 (id 4, required): the interprocedural
///   4-tuple counters, sorted by (Callee, CallSite, Inner, Outer):
///     uleb numEntries
///     per entry: sleb delta of each key field from the previous entry's
///     (first entry deltas from an all-zero key), then uleb count >= 1.
///     Keys must be strictly increasing.
///
/// ## Checked reading
///
/// The reader validates everything and rejects wholesale (in the spirit of
/// decodeProfileChecked): a truncated file, bad magic, newer major version,
/// header or section CRC mismatch, duplicate or missing required section,
/// out-of-range function id or slot, duplicate slot, zero count, unsorted
/// interprocedural keys, non-canonical varints, or trailing bytes each
/// produce a structured Diagnostic (pass "profdata") and an empty result —
/// never a partial counter set. Single-byte corruption anywhere in the file
/// is guaranteed to be rejected: every payload byte is under a CRC-32 (which
/// catches all single-bit errors), the header is self-checksummed, and the
/// section framing bytes can only fail towards missing/duplicate-section,
/// truncation or trailing-bytes errors. The fuzz round-trip oracle's
/// mutation test (fuzz/Fuzzer.cpp) enforces exactly this property.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFDATA_PROFDATA_H
#define OLPP_PROFDATA_PROFDATA_H

#include "interp/ProfileRuntime.h"
#include "profile/Instrumenter.h"
#include "support/Diagnostic.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace olpp {

class Module;

namespace profdata {
inline constexpr char Magic[4] = {'O', 'L', 'P', 'P'};
inline constexpr uint8_t VersionMajor = 1;
inline constexpr uint8_t VersionMinor = 0;
inline constexpr size_t HeaderSize = 16;
inline constexpr uint8_t SecMeta = 1;
inline constexpr uint8_t SecPaths = 2;
inline constexpr uint8_t SecTypeI = 3;
inline constexpr uint8_t SecTypeII = 4;
} // namespace profdata

/// Stable 64-bit content fingerprint of a (pre-instrumentation) module:
/// FNV-1a over the full plan fingerprint (printed IR + execution metadata),
/// so identical sources produce identical fingerprints across processes and
/// machines. Memoized per Module::uid(), so repeated artifact writes of the
/// same module object hash once.
uint64_t moduleProfileFingerprint(const Module &M);

/// Run provenance carried in an artifact's META section. The library never
/// reads the clock itself — TimestampUnix is injected by the caller (the
/// driver stamps `time(nullptr)`, tests pin fixed values).
struct RunMeta {
  std::string Workload;      ///< workload / program name ("" = unknown)
  InstrumentOptions Instr;   ///< instrumentation mode and degrees (k)
  uint64_t Runs = 1;         ///< profiled runs merged into the artifact
  uint64_t DynInstrCost = 0; ///< instrumented dynamic instructions, summed
  uint64_t TimestampUnix = 0;
};

/// An `.olpp` artifact in memory: the counters of one or more profiled runs
/// of one module, plus provenance. Counters reuse the runtime stores
/// directly, so merge (profdata/Merge.h) is literally PathCounterStore::add.
struct ProfileArtifact {
  uint64_t Fingerprint = 0;
  uint32_t NumFunctions = 0;
  RunMeta Meta;
  /// Per-function path-id space (PathGraph::numPaths()); 0 = unknown.
  /// Indexed like Counters.PathCounts.
  std::vector<uint64_t> IdSpaces;
  ProfileRuntime Counters{0};

  /// Snapshots \p Prof for the module \p M instrumented as \p MI: computes
  /// the fingerprint, copies every counter, and records the per-function id
  /// spaces so the checked reader can range-check slots.
  static ProfileArtifact fromRuntime(const Module &M,
                                     const ModuleInstrumentation &MI,
                                     const ProfileRuntime &Prof,
                                     RunMeta Meta);

  /// Total number of (slot, count) records across every section.
  uint64_t numRecords() const;
  /// Sum of all path counters (the artifact's total profiled flow).
  uint64_t totalPathCount() const;
};

/// Streams \p A to \p OS (header + sections; only one section payload is
/// buffered at a time). Returns false if the stream errors.
bool writeProfileArtifact(std::ostream &OS, const ProfileArtifact &A);

/// Serializes \p A to a byte string.
std::string serializeProfileArtifact(const ProfileArtifact &A);

/// Writes \p A to \p Path. Returns false and sets \p Error on I/O failure.
bool writeProfileArtifactFile(const std::string &Path,
                              const ProfileArtifact &A, std::string &Error);

/// Reader knobs.
struct ProfDataReadOptions {
  /// Verify header and per-section CRC-32s. Disabling this is a deliberate
  /// defect switch for the fuzz mutation test (FaultKind::ArtifactCrcOff) —
  /// it must never be turned off by a real tool.
  bool VerifyCrc = true;
  /// When true, the artifact's fingerprint must equal ExpectedFingerprint
  /// or the read is rejected (fingerprint-mismatch diagnostic).
  bool CheckFingerprint = false;
  uint64_t ExpectedFingerprint = 0;
};

/// Checked, streaming read of one artifact from \p IS. On success returns
/// true and fills \p Out. On any violation returns false, leaves \p Out
/// empty, and appends Severity::Error diagnostics (pass "profdata") — the
/// artifact is rejected wholesale, never partially decoded.
bool readProfileArtifact(std::istream &IS, ProfileArtifact &Out,
                         std::vector<Diagnostic> &Diags,
                         const ProfDataReadOptions &Opts = {});

/// Same, over an in-memory byte string.
bool readProfileArtifactBytes(const std::string &Bytes, ProfileArtifact &Out,
                              std::vector<Diagnostic> &Diags,
                              const ProfDataReadOptions &Opts = {});

/// Same, over a non-owning byte view with no copy of the input. This is the
/// streaming ingest entry point used by `olpp serve`: an upload payload is
/// validated straight out of the frame buffer, so a 4 MiB artifact costs one
/// decode and zero staging copies.
bool readProfileArtifactView(std::string_view Bytes, ProfileArtifact &Out,
                             std::vector<Diagnostic> &Diags,
                             const ProfDataReadOptions &Opts = {});

/// Same, from a file.
bool readProfileArtifactFile(const std::string &Path, ProfileArtifact &Out,
                             std::vector<Diagnostic> &Diags,
                             const ProfDataReadOptions &Opts = {});

/// Value equality of two artifacts: fingerprint, metadata, id spaces and
/// every counter (representation-independent). The golden-format tests and
/// the fuzz round-trip oracle compare through this.
bool artifactsEqual(const ProfileArtifact &A, const ProfileArtifact &B,
                    std::string *FirstDiff = nullptr);

} // namespace olpp

#endif // OLPP_PROFDATA_PROFDATA_H
