//===--- Report.h - Reporting over .olpp profile artifacts ------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `olpp profdata show / diff / export` rendering: hot paths, coverage, and
/// — when the artifact is bound back to its source module — definite and
/// potential interesting-path bounds obtained by re-running the interval
/// solver over the merged counters. Binding re-instruments a pristine
/// compile of the module under the artifact's recorded mode and
/// cross-checks the content fingerprint and every per-function path-id
/// space, so a report can never silently pair counters with the wrong
/// program.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFDATA_REPORT_H
#define OLPP_PROFDATA_REPORT_H

#include "profdata/ProfData.h"

#include <memory>

namespace olpp {

/// The artifact's module, re-instrumented exactly as the profile was
/// collected, ready for decode and estimation.
struct ArtifactBinding {
  std::unique_ptr<Module> InstrModule;
  ModuleInstrumentation MI;

  bool ok() const { return InstrModule != nullptr && MI.ok(); }
};

/// Binds \p A to \p Pristine (an uninstrumented compile of the profiled
/// program): verifies the content fingerprint, instruments a clone under
/// A.Meta.Instr, and verifies the resulting per-function path-id spaces
/// against the artifact's. On any mismatch returns false with diagnostics
/// (pass "profdata-bind").
bool bindArtifactToModule(const Module &Pristine, const ProfileArtifact &A,
                          ArtifactBinding &Out,
                          std::vector<Diagnostic> &Diags);

/// Human-readable mode summary, e.g. "bl+ol(k=2)+interproc(k=2), chords".
std::string instrumentModeString(const InstrumentOptions &O);

struct ReportOptions {
  size_t TopN = 10;
  bool Json = false;
  /// Re-run the interval solver over the artifact's counters (needs a
  /// binding; ignored without one).
  bool WithBounds = true;
  /// Classify each zero-count path id as proven statically infeasible or
  /// merely unexercised, via the branch-correlation walk (needs a binding;
  /// ignored without one).
  bool WithFeasibility = true;
};

/// Renders the `profdata show` report for \p A: provenance, top-N hot
/// paths, per-function and module coverage, and (when \p B is non-null and
/// ok) the definite/potential bounds from the interval solver. Text or JSON
/// per Opts.Json.
std::string renderArtifactReport(const ProfileArtifact &A,
                                 const ArtifactBinding *B,
                                 const ReportOptions &Opts);

/// Renders the complete artifact as JSON (`profdata export`): metadata plus
/// every path and interprocedural counter.
std::string renderArtifactJson(const ProfileArtifact &A);

struct DiffOptions {
  size_t TopN = 10;
  bool Json = false;
};

/// Renders the `profdata diff` report between \p A and \p B: path records
/// added, removed, regressed and improved, with the top-N largest changes.
/// \p NameA / \p NameB label the two sides (typically the file names).
std::string renderArtifactDiff(const ProfileArtifact &A,
                               const ProfileArtifact &B,
                               const std::string &NameA,
                               const std::string &NameB,
                               const DiffOptions &Opts);

} // namespace olpp

#endif // OLPP_PROFDATA_REPORT_H
