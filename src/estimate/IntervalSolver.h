//===--- IntervalSolver.h - Iterative bound propagation ---------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's estimation engine (eqs. 4-8 and 10-18), generalized: given
/// non-negative integer unknowns and a set of sum constraints over subsets
/// of them — equalities (an overlapping-path frequency is *exactly* the sum
/// of the interesting paths sharing its prefix) and upper bounds (a callee
/// path's global frequency caps any one call site's share) — iterate
///
///     U[x] <- min(U[x], V - sum of L over the other cells)
///     L[x] <- max(L[x], V - sum of U over the other cells)   (equalities)
///
/// until the bounds stabilize. The sum of lower bounds is the paper's
/// *definite flow*, the sum of upper bounds its *potential flow*.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ESTIMATE_INTERVALSOLVER_H
#define OLPP_ESTIMATE_INTERVALSOLVER_H

#include <cstdint>
#include <vector>

namespace olpp {

struct SumConstraint {
  uint64_t Value = 0;
  /// True: sum over Cells == Value. False: sum over Cells <= Value.
  bool Equality = true;
  std::vector<uint32_t> Cells;
};

struct BoundsResult {
  std::vector<uint64_t> Lower;
  std::vector<uint64_t> Upper;
  uint32_t Iterations = 0;
  bool Converged = false;

  uint64_t sumLower() const;
  uint64_t sumUpper() const;
  /// Number of cells whose bounds coincide (precisely estimated paths).
  uint64_t exactCount() const;
};

/// Solves for \p NumCells unknowns. Every cell should appear in at least
/// one constraint with a finite value or its upper bound stays at the
/// "unknown" sentinel (UINT64_MAX / 4).
BoundsResult solveBounds(uint32_t NumCells,
                         const std::vector<SumConstraint> &Constraints,
                         uint32_t MaxIterations = 100);

} // namespace olpp

#endif // OLPP_ESTIMATE_INTERVALSOLVER_H
