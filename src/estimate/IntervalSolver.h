//===--- IntervalSolver.h - Iterative bound propagation ---------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's estimation engine (eqs. 4-8 and 10-18), generalized: given
/// non-negative integer unknowns and a set of sum constraints over subsets
/// of them — equalities (an overlapping-path frequency is *exactly* the sum
/// of the interesting paths sharing its prefix) and upper bounds (a callee
/// path's global frequency caps any one call site's share) — iterate
///
///     U[x] <- min(U[x], V - sum of L over the other cells)
///     L[x] <- max(L[x], V - sum of U over the other cells)   (equalities)
///
/// until the bounds stabilize. The sum of lower bounds is the paper's
/// *definite flow*, the sum of upper bounds its *potential flow*.
///
/// Both tightening rules are monotone (U only shrinks, L only grows) and
/// clamped to [0, sentinel], so the system has a unique greatest/least
/// fixpoint independent of evaluation order. solveBounds exploits that with
/// a worklist over cell -> constraint incidence lists: a constraint is only
/// re-evaluated when one of its cells actually changed, instead of sweeping
/// the whole constraint set until a quiet round. solveBoundsSweep keeps the
/// original whole-set sweep as the oracle the worklist is differentially
/// tested against (tests/estimate/SolverWorklistTest.cpp).
///
/// Order-independence also makes the system parallelizable without locks:
/// constraints sharing no cells cannot influence each other, so the
/// constraint graph splits into connected components (in practice one per
/// function or loop region) that solveBoundsParallel solves concurrently on
/// a TaskPool, each component running the same worklist kernel over its own
/// disjoint slice of the bound vectors. Because a component's local FIFO is
/// exactly the global FIFO restricted to it, the parallel solver reproduces
/// the worklist's bounds *and* its Evaluations count on converging systems
/// (tests/estimate/SolverParallelTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ESTIMATE_INTERVALSOLVER_H
#define OLPP_ESTIMATE_INTERVALSOLVER_H

#include <cstdint>
#include <vector>

namespace olpp {

struct SumConstraint {
  uint64_t Value = 0;
  /// True: sum over Cells == Value. False: sum over Cells <= Value.
  bool Equality = true;
  std::vector<uint32_t> Cells;
};

struct BoundsResult {
  std::vector<uint64_t> Lower;
  std::vector<uint64_t> Upper;
  /// Sweep solver: full passes over the constraint set. Worklist solver:
  /// quiescence checks (0 or 1); Evaluations is the meaningful effort
  /// metric there.
  uint32_t Iterations = 0;
  /// Single-constraint (re)evaluations performed. For the sweep this is
  /// Iterations * Constraints.size(); for the worklist it is the number of
  /// worklist pops, typically far smaller on sparse systems.
  uint64_t Evaluations = 0;
  bool Converged = false;

  uint64_t sumLower() const;
  uint64_t sumUpper() const;
  /// Number of cells whose bounds coincide (precisely estimated paths).
  uint64_t exactCount() const;
};

/// Solves for \p NumCells unknowns. Every cell should appear in at least
/// one constraint with a finite value or its upper bound stays at the
/// "unknown" sentinel (UINT64_MAX / 4). Dispatches to the worklist solver
/// unless the calling thread selected the sweep (setThreadSolverImpl).
///
/// \p MaxIterations bounds the effort at MaxIterations * Constraints.size()
/// constraint evaluations — the same budget the sweep solver has — so the
/// two solvers flag non-convergence under comparable limits.
BoundsResult solveBounds(uint32_t NumCells,
                         const std::vector<SumConstraint> &Constraints,
                         uint32_t MaxIterations = 100);

/// The change-driven worklist solver (the default implementation).
BoundsResult solveBoundsWorklist(uint32_t NumCells,
                                 const std::vector<SumConstraint> &Constraints,
                                 uint32_t MaxIterations = 100);

/// The original solver: whole-constraint-set sweeps until a quiet round.
/// Reaches the same fixpoint as the worklist; kept as the differential
/// oracle and for benchmarking the worklist's advantage.
BoundsResult solveBoundsSweep(uint32_t NumCells,
                              const std::vector<SumConstraint> &Constraints,
                              uint32_t MaxIterations = 100);

class TaskPool;

/// The parallel solver: partitions the constraints into connected
/// components of the constraint graph (union-find over shared cells) and
/// runs the worklist kernel on each component concurrently via \p Pool
/// (null selects TaskPool::shared()). Components touch disjoint cells, so
/// no synchronization is needed on the bound vectors. Each component gets
/// the proportional budget MaxIterations * (its constraint count); the
/// budgets sum to the worklist's global budget.
BoundsResult solveBoundsParallel(uint32_t NumCells,
                                 const std::vector<SumConstraint> &Constraints,
                                 uint32_t MaxIterations = 100,
                                 TaskPool *Pool = nullptr);

/// Which implementation solveBounds forwards to on the calling thread.
/// Thread-local so a parallel bench can steer one worker's estimation stack
/// onto the sweep oracle without racing the others.
enum class SolverImpl : uint8_t { Worklist, Sweep, Parallel };
void setThreadSolverImpl(SolverImpl Impl);
SolverImpl threadSolverImpl();

/// The pool solveBounds hands to solveBoundsParallel on this thread when
/// the thread's impl is SolverImpl::Parallel; null means TaskPool::shared().
void setThreadSolverPool(TaskPool *Pool);
TaskPool *threadSolverPool();

} // namespace olpp

#endif // OLPP_ESTIMATE_INTERVALSOLVER_H
