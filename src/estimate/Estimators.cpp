//===--- Estimators.cpp - Interesting-path flow estimation ------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "estimate/Estimators.h"

#include "analysis/Feasibility.h"
#include "ir/Module.h"
#include "overlap/Projection.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

using namespace olpp;

namespace {

std::vector<uint32_t> regionBlocks(const OverlapRegion &R,
                                   const std::vector<uint32_t> &NodeSeq) {
  std::vector<uint32_t> Out;
  Out.reserve(NodeSeq.size());
  for (uint32_t N : NodeSeq)
    Out.push_back(R.nodes()[N].Block);
  return Out;
}

/// Pair queries one problem may spend on the static feasibility walker.
/// Pairs past the cap simply stay unqueried (and thus "feasible"), which
/// keeps worst-case estimation cost linear in the cap, not the table size.
constexpr uint64_t FeasibilityPairCap = 512;

/// Shared machinery for finishing one pair problem: solve, fold in ground
/// truth, and produce metrics.
struct PairProblem {
  std::vector<DynPathKey> Rows, Cols;
  std::unordered_map<DynPathKey, uint32_t, DynPathKeyHash> RowIdx, ColIdx;
  std::vector<SumConstraint> Constraints;
  uint64_t InfeasiblePairs = 0;
  uint64_t FeasibilityQueries = 0;

  uint32_t addRow(const DynPathKey &K) {
    auto [It, New] = RowIdx.emplace(K, static_cast<uint32_t>(Rows.size()));
    if (New)
      Rows.push_back(K);
    return It->second;
  }
  uint32_t addCol(const DynPathKey &K) {
    auto [It, New] = ColIdx.emplace(K, static_cast<uint32_t>(Cols.size()));
    if (New)
      Cols.push_back(K);
    return It->second;
  }
  uint32_t cell(uint32_t R, uint32_t C) const {
    return R * static_cast<uint32_t>(Cols.size()) + C;
  }

  /// Pins one pair to a hard zero (statically proven infeasible).
  void pinZero(uint32_t R, uint32_t C) {
    SumConstraint Z;
    Z.Value = 0;
    Z.Cells.push_back(cell(R, C));
    Constraints.push_back(std::move(Z));
    ++InfeasiblePairs;
  }

  /// \p RealPairs maps (row key, col key) resolved through the caller to a
  /// pair count; see the estimator bodies.
  EstimateMetrics
  solve(const std::vector<std::pair<std::pair<DynPathKey, DynPathKey>,
                                    uint64_t>> &RealPairs) {
    EstimateMetrics Met;
    if (Rows.empty() || Cols.empty())
      return Met;
    Met.Problems = 1;
    uint32_t NumCells = static_cast<uint32_t>(Rows.size() * Cols.size());
    BoundsResult B = solveBounds(NumCells, Constraints);
    Met.Pairs = NumCells;
    Met.Definite = B.sumLower();
    Met.Potential = B.sumUpper();
    Met.ExactPairs = B.exactCount();
    Met.SolverEvaluations = B.Evaluations;
    Met.SolverConverged = B.Converged;
    Met.InfeasiblePairs = InfeasiblePairs;
    Met.FeasibilityQueries = FeasibilityQueries;

    std::vector<uint64_t> Real(NumCells, 0);
    for (const auto &[Keys, Count] : RealPairs) {
      auto RIt = RowIdx.find(Keys.first);
      auto CIt = ColIdx.find(Keys.second);
      assert(RIt != RowIdx.end() && CIt != ColIdx.end() &&
             "ground-truth pair outside the observed universe");
      if (RIt == RowIdx.end() || CIt == ColIdx.end())
        continue;
      Real[cell(RIt->second, CIt->second)] += Count;
      Met.Real += Count;
    }
    for (uint32_t C = 0; C < NumCells; ++C)
      if (Real[C] < B.Lower[C] || Real[C] > B.Upper[C])
        Met.SoundnessViolated = true;
    return Met;
  }

  /// Solve without ground truth.
  EstimateMetrics solveNoTruth() {
    EstimateMetrics Met;
    if (Rows.empty() || Cols.empty())
      return Met;
    Met.Problems = 1;
    uint32_t NumCells = static_cast<uint32_t>(Rows.size() * Cols.size());
    BoundsResult B = solveBounds(NumCells, Constraints);
    Met.Pairs = NumCells;
    Met.Definite = B.sumLower();
    Met.Potential = B.sumUpper();
    Met.ExactPairs = B.exactCount();
    Met.SolverEvaluations = B.Evaluations;
    Met.SolverConverged = B.Converged;
    Met.InfeasiblePairs = InfeasiblePairs;
    Met.FeasibilityQueries = FeasibilityQueries;
    return Met;
  }
};

} // namespace

ModuleEstimator::ModuleEstimator(const Module &M,
                                 const ModuleInstrumentation &MI,
                                 const ProfileRuntime &Prof)
    : M(M), MI(MI), Prof(Prof) {
  Views.resize(M.numFunctions());
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    FuncView &V = Views[F];
    const FunctionInstrumentation &Meta = MI.Funcs[F];
    V.Entries = decodeProfile(*Meta.PG, Prof.PathCounts[F]);
    V.LoopRows.resize(Meta.Loops->numLoops());
    for (const DecodedEntry &E : V.Entries) {
      DynPathKey Key{E.White, E.End, E.Loop};
      V.Flow[Key] += E.Count;
      if (!E.Suffix.empty()) {
        OLRow &Row = V.LoopRows[E.Loop][E.White];
        Row.F += E.Count;
        Row.OF[E.Suffix] += E.Count;
      }
    }
  }
}

EstimateMetrics ModuleEstimator::estimateLoops(const GroundTruth *GT) const {
  EstimateMetrics Total;
  for (uint32_t F = 0; F < M.numFunctions(); ++F)
    for (uint32_t L = 0; L < MI.Funcs[F].Loops->numLoops(); ++L)
      Total.add(estimateOneLoop(F, L, GT));
  return Total;
}

EstimateMetrics ModuleEstimator::estimateOneLoop(uint32_t F, uint32_t L,
                                                 const GroundTruth *GT) const {
  const FuncView &V = Views[F];
  const FunctionInstrumentation &Meta = MI.Funcs[F];
  const Loop &TheLoop = Meta.Loops->loop(L);
  uint32_t Header = TheLoop.Header;
  bool Overlap = MI.Opts.LoopOverlap;

  // The paper's loop interesting paths pair an iteration-ending path with
  // the next *iteration sequence* — the in-loop part of the following path.
  // (What the path does after leaving the loop is not part of the
  // interesting path, and the overlapping graph cannot see it.) Columns are
  // therefore iteration-sequence classes; their key is represented as a
  // PathSig over the in-loop blocks.
  auto SequenceOf = [&](const PathSig &Sig) {
    DynPathKey Key;
    Key.End = PathEnd::Ret; // constant; the class is identified by blocks
    for (uint32_t B : Sig.Blocks) {
      if (!TheLoop.contains(B))
        break;
      Key.Sig.Blocks.push_back(B);
    }
    return Key;
  };

  PairProblem P;
  std::vector<uint64_t> RowF, ColF;

  if (Overlap) {
    // Deterministic row order.
    std::vector<const PathSig *> Sigs;
    for (const auto &[Sig, Row] : V.LoopRows[L])
      Sigs.push_back(&Sig);
    std::sort(Sigs.begin(), Sigs.end(),
              [](const PathSig *A, const PathSig *B) {
                if (A->StartsAtCallContinuation != B->StartsAtCallContinuation)
                  return A->StartsAtCallContinuation <
                         B->StartsAtCallContinuation;
                return A->Blocks < B->Blocks;
              });
    for (const PathSig *Sig : Sigs) {
      P.addRow({*Sig, PathEnd::Backedge, L});
      RowF.push_back(V.LoopRows[L].at(*Sig).F);
    }
  } else {
    std::vector<DynPathKey> Keys;
    for (const auto &[Key, Flow] : V.Flow)
      if (Key.End == PathEnd::Backedge && Key.Loop == L)
        Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(),
              [](const DynPathKey &A, const DynPathKey &B) {
                return A.Sig.Blocks < B.Sig.Blocks;
              });
    for (const DynPathKey &Key : Keys) {
      P.addRow(Key);
      RowF.push_back(V.Flow.at(Key));
    }
  }

  // Columns: iteration-sequence classes over the observed paths starting
  // at the header.
  {
    std::map<std::vector<uint32_t>, uint64_t> ClassFlow;
    for (const auto &[Key, Flow] : V.Flow)
      if (!Key.Sig.StartsAtCallContinuation && !Key.Sig.Blocks.empty() &&
          Key.Sig.Blocks.front() == Header)
        ClassFlow[SequenceOf(Key.Sig).Sig.Blocks] += Flow;
    for (const auto &[Blocks, Flow] : ClassFlow) {
      DynPathKey Key;
      Key.End = PathEnd::Ret;
      Key.Sig.Blocks = Blocks;
      P.addCol(Key);
      ColF.push_back(Flow);
    }
  }
  if (P.Rows.empty() || P.Cols.empty())
    return EstimateMetrics();

  uint32_t NC = static_cast<uint32_t>(P.Cols.size());
  uint32_t NR = static_cast<uint32_t>(P.Rows.size());

  // Row and column totals.
  for (uint32_t R = 0; R < NR; ++R) {
    SumConstraint C;
    C.Value = RowF[R];
    for (uint32_t Co = 0; Co < NC; ++Co)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }
  for (uint32_t Co = 0; Co < NC; ++Co) {
    SumConstraint C;
    C.Value = ColF[Co];
    for (uint32_t R = 0; R < NR; ++R)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }

  // Overlap refinement: OF(i, class) == sum over columns in the class.
  if (Overlap) {
    const OverlapRegion &Region = Meta.PG->region(L);
    std::map<std::vector<uint32_t>, std::vector<uint32_t>> ColsByClass;
    for (uint32_t Co = 0; Co < NC; ++Co) {
      std::vector<uint32_t> Class = regionBlocks(
          Region, projectThroughRegion(Region, P.Cols[Co].Sig.Blocks));
      ColsByClass[Class].push_back(Co);
    }
    for (uint32_t R = 0; R < NR; ++R) {
      const OLRow &Row = V.LoopRows[L].at(P.Rows[R].Sig);
      for (const auto &[Class, OF] : Row.OF) {
        auto It = ColsByClass.find(Class);
        assert(It != ColsByClass.end() &&
               "observed OF class with no matching column");
        if (It == ColsByClass.end())
          continue;
        SumConstraint C;
        C.Value = OF;
        for (uint32_t Co : It->second)
          C.Cells.push_back(P.cell(R, Co));
        P.Constraints.push_back(std::move(C));
      }
    }
  }

  // Static pruning: a row chained into a column is one concrete block
  // sequence across the backedge; when the feasibility walker proves it
  // contradictory, the pair's count is pinned to a hard zero.
  if (Feas) {
    const Function &Fn = *M.function(F);
    const CfgView &Cfg = *Meta.Cfg;
    uint64_t Budget = FeasibilityPairCap;
    for (uint32_t R = 0; R < NR && Budget; ++R)
      for (uint32_t Co = 0; Co < NC && Budget; ++Co) {
        --Budget;
        ++P.FeasibilityQueries;
        std::vector<uint32_t> Seq = P.Rows[R].Sig.Blocks;
        const std::vector<uint32_t> &ColBlocks = P.Cols[Co].Sig.Blocks;
        Seq.insert(Seq.end(), ColBlocks.begin(), ColBlocks.end());
        if (Feas->infeasibleSequence(Fn, Cfg, Seq,
                                     P.Rows[R].Sig.StartsAtCallContinuation))
          P.pinZero(R, Co);
      }
  }

  if (!GT)
    return P.solveNoTruth();

  std::vector<std::pair<std::pair<DynPathKey, DynPathKey>, uint64_t>> Real;
  const GroundTruth::FuncData &FD = GT->Funcs[F];
  if (L < FD.LoopPairs.size())
    for (const auto &[PairK, Count] : FD.LoopPairs[L]) {
      const DynPathKey &I = FD.Paths[static_cast<uint32_t>(PairK >> 32)];
      const DynPathKey &J =
          FD.Paths[static_cast<uint32_t>(PairK & 0xFFFFFFFF)];
      Real.push_back({{I, SequenceOf(J.Sig)}, Count});
    }
  return P.solve(Real);
}

EstimateMetrics ModuleEstimator::estimateTypeI(const GroundTruth *GT) const {
  EstimateMetrics Total;
  for (const CallSiteInfo &CS : MI.CallSites)
    Total.add(estimateOneTypeI(CS, GT));
  return Total;
}

EstimateMetrics
ModuleEstimator::estimateOneTypeI(const CallSiteInfo &CS,
                                  const GroundTruth *GT) const {
  assert(MI.Opts.CallBreaking && "Type I estimation requires call breaking");
  const FuncView &CallerV = Views[CS.Func];

  // Callees this site can reach. Direct sites name theirs statically; an
  // indirect site's callees are read off the Type I tuples (without them —
  // plain BL on an indirect site — per-callee attribution is impossible,
  // which is exactly the paper's argument for the func dimension).
  std::vector<uint32_t> Callees;
  if (CS.Callee != UINT32_MAX) {
    Callees.push_back(CS.Callee);
  } else if (MI.Opts.Interproc) {
    std::set<uint32_t> Seen;
    for (const auto &[Key, Count] : Prof.TypeICounts)
      if (Key.CallSite == CS.CsId)
        Seen.insert(Key.Callee);
    Callees.assign(Seen.begin(), Seen.end());
  }
  if (Callees.empty())
    return EstimateMetrics();

  PairProblem P;
  std::vector<uint64_t> RowF, ColF;

  // Rows: caller pre-paths ending at this call block.
  {
    std::vector<DynPathKey> Keys;
    for (const auto &[Key, Flow] : CallerV.Flow)
      if (Key.End == PathEnd::CallBreak && Key.Sig.Blocks.back() == CS.Block)
        Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(),
              [](const DynPathKey &A, const DynPathKey &B) {
                if (A.Sig.StartsAtCallContinuation !=
                    B.Sig.StartsAtCallContinuation)
                  return A.Sig.StartsAtCallContinuation <
                         B.Sig.StartsAtCallContinuation;
                return A.Sig.Blocks < B.Sig.Blocks;
              });
    for (const DynPathKey &Key : Keys) {
      P.addRow(Key);
      RowF.push_back(CallerV.Flow.at(Key));
    }
  }
  // Columns: per callee, its paths starting at the entry, tagged with the
  // callee id so different callees' paths stay distinct cells.
  for (uint32_t Callee : Callees) {
    const FuncView &CalleeV = Views[Callee];
    uint32_t CalleeEntry = M.function(Callee)->entry()->Id;
    std::vector<DynPathKey> Keys;
    for (const auto &[Key, Flow] : CalleeV.Flow)
      if (!Key.Sig.StartsAtCallContinuation &&
          Key.Sig.Blocks.front() == CalleeEntry)
        Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(),
              [](const DynPathKey &A, const DynPathKey &B) {
                if (A.Sig.Blocks != B.Sig.Blocks)
                  return A.Sig.Blocks < B.Sig.Blocks;
                if (A.End != B.End)
                  return A.End < B.End;
                return A.Loop < B.Loop;
              });
    for (DynPathKey Key : Keys) {
      uint64_t Flow = CalleeV.Flow.at(Key);
      Key.Tag = Callee;
      P.addCol(Key);
      ColF.push_back(Flow);
    }
  }
  if (P.Rows.empty() || P.Cols.empty())
    return EstimateMetrics();

  uint32_t NR = static_cast<uint32_t>(P.Rows.size());
  uint32_t NC = static_cast<uint32_t>(P.Cols.size());

  for (uint32_t R = 0; R < NR; ++R) {
    SumConstraint C;
    C.Value = RowF[R];
    for (uint32_t Co = 0; Co < NC; ++Co)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }
  // A callee path's global frequency caps this call site's share.
  for (uint32_t Co = 0; Co < NC; ++Co) {
    SumConstraint C;
    C.Value = ColF[Co];
    C.Equality = false;
    for (uint32_t R = 0; R < NR; ++R)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }

  if (MI.Opts.Interproc) {
    // Row id lookup and per-callee column prefix classes.
    std::unordered_map<int64_t, uint32_t> RowById;
    for (uint32_t R = 0; R < NR; ++R)
      RowById[encodeWhiteId(*MI.Funcs[CS.Func].PG, P.Rows[R].Sig,
                            PathEnd::CallBreak)] = R;
    std::map<std::pair<uint32_t, int64_t>, std::vector<uint32_t>> ColsByClass;
    for (uint32_t Co = 0; Co < NC; ++Co) {
      uint32_t Callee = P.Cols[Co].Tag;
      const FunctionInstrumentation &CalleeMeta = MI.Funcs[Callee];
      int64_t Class = CalleeMeta.TypeINumbering->encode(projectThroughRegion(
          *CalleeMeta.TypeIRegion, P.Cols[Co].Sig.Blocks));
      ColsByClass[{Callee, Class}].push_back(Co);
    }
    for (const auto &[Key, Count] : Prof.TypeICounts) {
      if (Key.CallSite != CS.CsId)
        continue;
      auto RIt = RowById.find(Key.Outer);
      auto CIt = ColsByClass.find({Key.Callee, Key.Inner});
      assert(RIt != RowById.end() && CIt != ColsByClass.end() &&
             "Type I counter without matching profile paths");
      if (RIt == RowById.end() || CIt == ColsByClass.end())
        continue;
      SumConstraint C;
      C.Value = Count;
      for (uint32_t Co : CIt->second)
        C.Cells.push_back(P.cell(RIt->second, Co));
      P.Constraints.push_back(std::move(C));
    }
  }

  // Static pruning: chain each caller pre-path into each callee path; the
  // walker binds the call's argument ranges to the callee's parameters.
  if (Feas) {
    const Function &Caller = *M.function(CS.Func);
    const CfgView &CallerCfg = *MI.Funcs[CS.Func].Cfg;
    uint64_t Budget = FeasibilityPairCap;
    for (uint32_t R = 0; R < NR && Budget; ++R)
      for (uint32_t Co = 0; Co < NC && Budget; ++Co) {
        --Budget;
        ++P.FeasibilityQueries;
        uint32_t CalleeId = P.Cols[Co].Tag;
        if (Feas->infeasibleCallPair(
                Caller, CallerCfg, P.Rows[R].Sig.Blocks,
                P.Rows[R].Sig.StartsAtCallContinuation, *M.function(CalleeId),
                *MI.Funcs[CalleeId].Cfg, P.Cols[Co].Sig.Blocks))
          P.pinZero(R, Co);
      }
  }

  if (!GT)
    return P.solveNoTruth();
  std::vector<std::pair<std::pair<DynPathKey, DynPathKey>, uint64_t>> Real;
  for (const auto &[Callee, Pairs] : GT->CallSites[CS.CsId].TypeIPairs)
    for (const auto &[PairK, Count] : Pairs) {
      const DynPathKey &Pp =
          GT->Funcs[CS.Func].Paths[static_cast<uint32_t>(PairK >> 32)];
      DynPathKey Q =
          GT->Funcs[Callee].Paths[static_cast<uint32_t>(PairK & 0xFFFFFFFF)];
      Q.Tag = Callee;
      Real.push_back({{Pp, Q}, Count});
    }
  return P.solve(Real);
}

EstimateMetrics ModuleEstimator::estimateTypeII(const GroundTruth *GT) const {
  EstimateMetrics Total;
  for (const CallSiteInfo &CS : MI.CallSites)
    Total.add(estimateOneTypeII(CS, GT));
  return Total;
}

EstimateMetrics
ModuleEstimator::estimateOneTypeII(const CallSiteInfo &CS,
                                   const GroundTruth *GT) const {
  assert(MI.Opts.CallBreaking && "Type II estimation requires call breaking");
  const FuncView &CallerV = Views[CS.Func];

  PairProblem P;
  std::vector<uint64_t> ColF;

  // Columns: caller continuations of this call site.
  {
    std::vector<DynPathKey> Keys;
    for (const auto &[Key, Flow] : CallerV.Flow)
      if (Key.Sig.StartsAtCallContinuation &&
          Key.Sig.Blocks.front() == CS.Block)
        Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(),
              [](const DynPathKey &A, const DynPathKey &B) {
                if (A.Sig.Blocks != B.Sig.Blocks)
                  return A.Sig.Blocks < B.Sig.Blocks;
                if (A.End != B.End)
                  return A.End < B.End;
                return A.Loop < B.Loop;
              });
    for (const DynPathKey &Key : Keys) {
      P.addCol(Key);
      ColF.push_back(CallerV.Flow.at(Key));
    }
  }
  if (P.Cols.empty())
    return EstimateMetrics();

  std::vector<uint64_t> RowF;
  std::vector<bool> RowEquality;
  // (callee, callee path id, continuation class id) -> OF.
  std::map<std::tuple<uint32_t, int64_t, int64_t>, uint64_t> OFByRowAndClass;

  if (MI.Opts.Interproc) {
    // Rows from the Type II counters of this call site (callee-tagged).
    std::map<std::pair<uint32_t, int64_t>, uint64_t> RowTotals;
    for (const auto &[Key, Count] : Prof.TypeIICounts) {
      if (Key.CallSite != CS.CsId)
        continue;
      RowTotals[{Key.Callee, Key.Inner}] += Count;
      OFByRowAndClass[{Key.Callee, Key.Inner, Key.Outer}] += Count;
    }
    for (const auto &[CalleeInner, Total] : RowTotals) {
      auto [Callee, Inner] = CalleeInner;
      DecodedEntry D = decodePathId(*MI.Funcs[Callee].PG, Inner);
      assert(D.End == PathEnd::Ret && "Type II row is not a returning path");
      DynPathKey Key{D.White, PathEnd::Ret, UINT32_MAX, Callee};
      P.addRow(Key);
      RowF.push_back(Total);
      RowEquality.push_back(true);
    }
  } else if (CS.Callee != UINT32_MAX) {
    // Plain BL, direct site: rows are all observed returning callee paths,
    // capped by their global frequency; a total-calls equality ties the
    // table. (An indirect site is not estimable without the tuples.)
    const FuncView &CalleeV = Views[CS.Callee];
    std::vector<DynPathKey> Keys;
    for (const auto &[Key, Flow] : CalleeV.Flow)
      if (Key.End == PathEnd::Ret)
        Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(),
              [](const DynPathKey &A, const DynPathKey &B) {
                if (A.Sig.StartsAtCallContinuation !=
                    B.Sig.StartsAtCallContinuation)
                  return A.Sig.StartsAtCallContinuation <
                         B.Sig.StartsAtCallContinuation;
                return A.Sig.Blocks < B.Sig.Blocks;
              });
    for (DynPathKey Key : Keys) {
      uint64_t Flow = CalleeV.Flow.at(Key);
      Key.Tag = CS.Callee;
      P.addRow(Key);
      RowF.push_back(Flow);
      RowEquality.push_back(false);
    }
  }
  if (P.Rows.empty())
    return EstimateMetrics();

  uint32_t NR = static_cast<uint32_t>(P.Rows.size());
  uint32_t NC = static_cast<uint32_t>(P.Cols.size());

  for (uint32_t R = 0; R < NR; ++R) {
    SumConstraint C;
    C.Value = RowF[R];
    C.Equality = RowEquality[R];
    for (uint32_t Co = 0; Co < NC; ++Co)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }
  for (uint32_t Co = 0; Co < NC; ++Co) {
    SumConstraint C;
    C.Value = ColF[Co];
    for (uint32_t R = 0; R < NR; ++R)
      C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }
  if (!MI.Opts.Interproc) {
    // Total returns at this call site == total continuation flow.
    SumConstraint C;
    C.Value = 0;
    for (uint64_t F : ColF)
      C.Value += F;
    for (uint32_t R = 0; R < NR; ++R)
      for (uint32_t Co = 0; Co < NC; ++Co)
        C.Cells.push_back(P.cell(R, Co));
    P.Constraints.push_back(std::move(C));
  }

  if (MI.Opts.Interproc) {
    const auto *Site = MI.typeIISite(CS.CsId);
    assert(Site);
    std::unordered_map<int64_t, std::vector<uint32_t>> ColsByClass;
    for (uint32_t Co = 0; Co < NC; ++Co) {
      int64_t Class = Site->Numbering->encode(
          projectThroughRegion(*Site->Region, P.Cols[Co].Sig.Blocks));
      ColsByClass[Class].push_back(Co);
    }
    std::map<std::pair<uint32_t, int64_t>, uint32_t> RowById;
    for (uint32_t R = 0; R < NR; ++R)
      RowById[{P.Rows[R].Tag,
               encodeWhiteId(*MI.Funcs[P.Rows[R].Tag].PG, P.Rows[R].Sig,
                             PathEnd::Ret)}] = R;
    for (const auto &[Key, Count] : OFByRowAndClass) {
      auto [Callee, Inner, Outer] = Key;
      auto RIt = RowById.find({Callee, Inner});
      auto CIt = ColsByClass.find(Outer);
      assert(RIt != RowById.end() && CIt != ColsByClass.end() &&
             "Type II counter without matching profile paths");
      if (RIt == RowById.end() || CIt == ColsByClass.end())
        continue;
      SumConstraint C;
      C.Value = Count;
      for (uint32_t Co : CIt->second)
        C.Cells.push_back(P.cell(RIt->second, Co));
      P.Constraints.push_back(std::move(C));
    }
  }

  // Static pruning: chain each returning callee path into each caller
  // continuation; the walked return range binds to the call's destination.
  if (Feas) {
    const Function &Caller = *M.function(CS.Func);
    const CfgView &CallerCfg = *MI.Funcs[CS.Func].Cfg;
    uint64_t Budget = FeasibilityPairCap;
    for (uint32_t R = 0; R < NR && Budget; ++R) {
      uint32_t CalleeId = P.Rows[R].Tag;
      const Function &CalleeFn = *M.function(CalleeId);
      const CfgView &CalleeCfg = *MI.Funcs[CalleeId].Cfg;
      for (uint32_t Co = 0; Co < NC && Budget; ++Co) {
        --Budget;
        ++P.FeasibilityQueries;
        if (Feas->infeasibleReturnPair(
                CalleeFn, CalleeCfg, P.Rows[R].Sig.Blocks,
                P.Rows[R].Sig.StartsAtCallContinuation, Caller, CallerCfg,
                P.Cols[Co].Sig.Blocks))
          P.pinZero(R, Co);
      }
    }
  }

  if (!GT)
    return P.solveNoTruth();
  std::vector<std::pair<std::pair<DynPathKey, DynPathKey>, uint64_t>> Real;
  for (const auto &[Callee, Pairs] : GT->CallSites[CS.CsId].TypeIIPairs)
    for (const auto &[PairK, Count] : Pairs) {
      DynPathKey Q =
          GT->Funcs[Callee].Paths[static_cast<uint32_t>(PairK >> 32)];
      Q.Tag = Callee;
      const DynPathKey &R =
          GT->Funcs[CS.Func].Paths[static_cast<uint32_t>(PairK & 0xFFFFFFFF)];
      Real.push_back({{Q, R}, Count});
    }
  return P.solve(Real);
}

EstimateMetrics ModuleEstimator::estimateAll(const GroundTruth *GT) const {
  EstimateMetrics Total = estimateLoops(GT);
  if (MI.Opts.CallBreaking) {
    Total.add(estimateTypeI(GT));
    Total.add(estimateTypeII(GT));
  }
  return Total;
}
