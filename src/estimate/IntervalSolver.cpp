//===--- IntervalSolver.cpp - Iterative bound propagation -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"

#include "support/TaskPool.h"

#include <cassert>
#include <cstddef>
#include <numeric>
#include <unordered_map>

using namespace olpp;

static constexpr uint64_t UnknownUpper = UINT64_MAX / 4;

uint64_t BoundsResult::sumLower() const {
  uint64_t S = 0;
  for (uint64_t V : Lower)
    S += V;
  return S;
}

uint64_t BoundsResult::sumUpper() const {
  uint64_t S = 0;
  for (uint64_t V : Upper)
    S += V;
  return S;
}

uint64_t BoundsResult::exactCount() const {
  uint64_t N = 0;
  for (std::size_t I = 0; I < Lower.size(); ++I)
    if (Lower[I] == Upper[I])
      ++N;
  return N;
}

namespace {

/// Evaluates one constraint, tightening bounds in place. Appends every cell
/// whose bound changed to \p ChangedCells (may contain duplicates). Shared
/// by the sweep and the worklist so the tightening rules cannot diverge.
void evalConstraint(const SumConstraint &C, std::vector<uint64_t> &Lower,
                    std::vector<uint64_t> &Upper,
                    std::vector<uint32_t> *ChangedCells) {
  // 128-bit accumulators: Upper starts at a huge sentinel.
  __int128 SumL = 0, SumU = 0;
  for (uint32_t Cell : C.Cells) {
    SumL += Lower[Cell];
    SumU += Upper[Cell];
  }
  for (uint32_t Cell : C.Cells) {
    bool CellChanged = false;
    __int128 OthersL = SumL - Lower[Cell];
    __int128 NewU = static_cast<__int128>(C.Value) - OthersL;
    uint64_t NewUpper =
        NewU <= 0 ? 0
                  : (NewU > static_cast<__int128>(UnknownUpper)
                         ? UnknownUpper
                         : static_cast<uint64_t>(NewU));
    if (NewUpper < Upper[Cell]) {
      SumU -= Upper[Cell] - NewUpper;
      Upper[Cell] = NewUpper;
      CellChanged = true;
    }
    if (C.Equality) {
      __int128 OthersU = SumU - Upper[Cell];
      __int128 NewL = static_cast<__int128>(C.Value) - OthersU;
      uint64_t NewLower = NewL <= 0 ? 0 : static_cast<uint64_t>(NewL);
      if (NewLower > Lower[Cell]) {
        SumL += NewLower - Lower[Cell];
        Lower[Cell] = NewLower;
        CellChanged = true;
      }
    }
    if (CellChanged && ChangedCells)
      ChangedCells->push_back(Cell);
  }
}

} // namespace

BoundsResult
olpp::solveBoundsSweep(uint32_t NumCells,
                       const std::vector<SumConstraint> &Constraints,
                       uint32_t MaxIterations) {
  BoundsResult R;
  R.Lower.assign(NumCells, 0);
  R.Upper.assign(NumCells, UnknownUpper);

  for ([[maybe_unused]] const SumConstraint &C : Constraints)
    for ([[maybe_unused]] uint32_t Cell : C.Cells)
      assert(Cell < NumCells && "constraint cell out of range");

  std::vector<uint32_t> Changed;
  for (uint32_t Iter = 0; Iter < MaxIterations; ++Iter) {
    Changed.clear();
    for (const SumConstraint &C : Constraints) {
      evalConstraint(C, R.Lower, R.Upper, &Changed);
      ++R.Evaluations;
    }
    R.Iterations = Iter + 1;
    if (Changed.empty()) {
      R.Converged = true;
      break;
    }
  }
  return R;
}

static thread_local SolverImpl ThreadImpl = SolverImpl::Worklist;
static thread_local TaskPool *ThreadSolverPool = nullptr;

void olpp::setThreadSolverImpl(SolverImpl Impl) { ThreadImpl = Impl; }

SolverImpl olpp::threadSolverImpl() { return ThreadImpl; }

void olpp::setThreadSolverPool(TaskPool *Pool) { ThreadSolverPool = Pool; }

TaskPool *olpp::threadSolverPool() { return ThreadSolverPool; }

BoundsResult olpp::solveBounds(uint32_t NumCells,
                               const std::vector<SumConstraint> &Constraints,
                               uint32_t MaxIterations) {
  switch (ThreadImpl) {
  case SolverImpl::Sweep:
    return solveBoundsSweep(NumCells, Constraints, MaxIterations);
  case SolverImpl::Parallel:
    return solveBoundsParallel(NumCells, Constraints, MaxIterations,
                               ThreadSolverPool);
  case SolverImpl::Worklist:
    break;
  }
  return solveBoundsWorklist(NumCells, Constraints, MaxIterations);
}

BoundsResult
olpp::solveBoundsWorklist(uint32_t NumCells,
                          const std::vector<SumConstraint> &Constraints,
                          uint32_t MaxIterations) {
  BoundsResult R;
  R.Lower.assign(NumCells, 0);
  R.Upper.assign(NumCells, UnknownUpper);

  for ([[maybe_unused]] const SumConstraint &C : Constraints)
    for ([[maybe_unused]] uint32_t Cell : C.Cells)
      assert(Cell < NumCells && "constraint cell out of range");

  const uint32_t NumConstraints = static_cast<uint32_t>(Constraints.size());
  if (NumConstraints == 0) {
    R.Converged = true;
    return R;
  }

  // Cell -> incident constraints, CSR form.
  std::vector<uint32_t> IncStart(NumCells + 1, 0);
  for (const SumConstraint &C : Constraints)
    for (uint32_t Cell : C.Cells)
      ++IncStart[Cell + 1];
  for (uint32_t Cell = 0; Cell < NumCells; ++Cell)
    IncStart[Cell + 1] += IncStart[Cell];
  std::vector<uint32_t> Inc(IncStart[NumCells]);
  {
    std::vector<uint32_t> Fill(IncStart.begin(), IncStart.end() - 1);
    for (uint32_t CI = 0; CI < NumConstraints; ++CI)
      for (uint32_t Cell : Constraints[CI].Cells)
        Inc[Fill[Cell]++] = CI;
  }

  // FIFO worklist of constraint indices; InQueue dedupes. Seeding in input
  // order makes the first pass identical to the sweep's first pass.
  std::vector<uint32_t> Queue(NumConstraints);
  std::vector<uint8_t> InQueue(NumConstraints, 1);
  for (uint32_t CI = 0; CI < NumConstraints; ++CI)
    Queue[CI] = CI;
  size_t Head = 0;

  // Same effort budget as MaxIterations full sweeps.
  const uint64_t Budget =
      static_cast<uint64_t>(MaxIterations) * NumConstraints;

  std::vector<uint32_t> Changed;
  while (Head < Queue.size()) {
    if (R.Evaluations >= Budget)
      return R; // budget exhausted with work pending: not converged
    uint32_t CI = Queue[Head++];
    InQueue[CI] = 0;
    // Reclaim the drained prefix now and then so the queue's footprint
    // stays O(constraints) instead of O(evaluations).
    if (Head > 1024 && Head * 2 > Queue.size()) {
      Queue.erase(Queue.begin(), Queue.begin() + static_cast<long>(Head));
      Head = 0;
    }

    Changed.clear();
    evalConstraint(Constraints[CI], R.Lower, R.Upper, &Changed);
    ++R.Evaluations;

    for (uint32_t Cell : Changed)
      for (uint32_t I = IncStart[Cell]; I < IncStart[Cell + 1]; ++I) {
        uint32_t Dep = Inc[I];
        if (!InQueue[Dep]) {
          InQueue[Dep] = 1;
          Queue.push_back(Dep);
        }
      }
  }
  R.Converged = true;
  // One "round" of residual bookkeeping so callers that print Iterations
  // see a sane small number; Evaluations is the real effort metric.
  R.Iterations = 1;
  return R;
}

namespace {

/// The worklist kernel restricted to the constraint subset \p Subset
/// (global indices into \p Constraints, in input order). Tightens the
/// shared bound vectors in place; the caller guarantees the subset's cells
/// are disjoint from every other concurrently-solved subset. Mirrors
/// solveBoundsWorklist exactly — same FIFO seeding, same dedup, same
/// budget-check placement — so the evaluation sequence equals the global
/// worklist's restricted to this component. Adds pops to \p Evals; returns
/// whether the component converged within \p Budget.
bool runWorklistOver(const std::vector<SumConstraint> &Constraints,
                     const std::vector<uint32_t> &Subset,
                     std::vector<uint64_t> &Lower, std::vector<uint64_t> &Upper,
                     uint64_t Budget, uint64_t &Evals) {
  const uint32_t N = static_cast<uint32_t>(Subset.size());
  // Cell -> incident local positions. A hash map instead of the global
  // solver's CSR arrays: a component is usually tiny relative to the cell
  // space, and every component allocating NumCells-sized arrays would make
  // partitioning quadratic.
  std::unordered_map<uint32_t, std::vector<uint32_t>> Inc;
  for (uint32_t LI = 0; LI < N; ++LI)
    for (uint32_t Cell : Constraints[Subset[LI]].Cells)
      Inc[Cell].push_back(LI);

  std::vector<uint32_t> Queue(Subset.size());
  std::vector<uint8_t> InQueue(N, 1);
  for (uint32_t LI = 0; LI < N; ++LI)
    Queue[LI] = LI;
  size_t Head = 0;

  std::vector<uint32_t> Changed;
  while (Head < Queue.size()) {
    if (Evals >= Budget)
      return false;
    uint32_t LI = Queue[Head++];
    InQueue[LI] = 0;
    if (Head > 1024 && Head * 2 > Queue.size()) {
      Queue.erase(Queue.begin(), Queue.begin() + static_cast<long>(Head));
      Head = 0;
    }

    Changed.clear();
    evalConstraint(Constraints[Subset[LI]], Lower, Upper, &Changed);
    ++Evals;

    for (uint32_t Cell : Changed)
      for (uint32_t Dep : Inc[Cell])
        if (!InQueue[Dep]) {
          InQueue[Dep] = 1;
          Queue.push_back(Dep);
        }
  }
  return true;
}

} // namespace

BoundsResult
olpp::solveBoundsParallel(uint32_t NumCells,
                          const std::vector<SumConstraint> &Constraints,
                          uint32_t MaxIterations, TaskPool *Pool) {
  BoundsResult R;
  R.Lower.assign(NumCells, 0);
  R.Upper.assign(NumCells, UnknownUpper);

  for ([[maybe_unused]] const SumConstraint &C : Constraints)
    for ([[maybe_unused]] uint32_t Cell : C.Cells)
      assert(Cell < NumCells && "constraint cell out of range");

  const uint32_t NumConstraints = static_cast<uint32_t>(Constraints.size());
  if (NumConstraints == 0) {
    R.Converged = true;
    return R;
  }

  // Union-find over cells: two constraints interact iff they (transitively)
  // share a cell, so the connected components are independently solvable.
  std::vector<uint32_t> Parent(NumCells);
  std::iota(Parent.begin(), Parent.end(), 0u);
  auto Find = [&Parent](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]]; // path halving
      X = Parent[X];
    }
    return X;
  };
  for (const SumConstraint &C : Constraints)
    for (size_t I = 1; I < C.Cells.size(); ++I) {
      uint32_t A = Find(C.Cells[0]), B = Find(C.Cells[I]);
      if (A != B)
        Parent[B] = A;
    }

  // Group constraints by component, in first-appearance order so the
  // partition (and the merge of results) is deterministic. A cell-less
  // constraint interacts with nothing and becomes its own singleton; the
  // worklist still pops it exactly once, and so do we.
  std::vector<std::vector<uint32_t>> Comps;
  std::vector<int32_t> CompOfRoot(NumCells, -1);
  for (uint32_t CI = 0; CI < NumConstraints; ++CI) {
    if (Constraints[CI].Cells.empty()) {
      Comps.push_back({CI});
      continue;
    }
    uint32_t Root = Find(Constraints[CI].Cells[0]);
    if (CompOfRoot[Root] < 0) {
      CompOfRoot[Root] = static_cast<int32_t>(Comps.size());
      Comps.emplace_back();
    }
    Comps[static_cast<size_t>(CompOfRoot[Root])].push_back(CI);
  }

  std::vector<uint8_t> CompConverged(Comps.size(), 0);
  std::vector<uint64_t> CompEvals(Comps.size(), 0);
  auto SolveOne = [&](size_t I) {
    const std::vector<uint32_t> &Sub = Comps[I];
    uint64_t Budget = static_cast<uint64_t>(MaxIterations) * Sub.size();
    CompConverged[I] =
        runWorklistOver(Constraints, Sub, R.Lower, R.Upper, Budget,
                        CompEvals[I]);
  };

  if (Comps.size() == 1) {
    SolveOne(0);
  } else {
    if (!Pool)
      Pool = &TaskPool::shared();
    Pool->parallelFor(Comps.size(),
                      [&](size_t I, unsigned) { SolveOne(I); });
  }

  R.Converged = true;
  for (size_t I = 0; I < Comps.size(); ++I) {
    R.Converged = R.Converged && CompConverged[I];
    R.Evaluations += CompEvals[I];
  }
  R.Iterations = R.Converged ? 1 : 0;
  return R;
}
