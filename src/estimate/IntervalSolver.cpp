//===--- IntervalSolver.cpp - Iterative bound propagation -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "estimate/IntervalSolver.h"

#include <cassert>
#include <cstddef>

using namespace olpp;

static constexpr uint64_t UnknownUpper = UINT64_MAX / 4;

uint64_t BoundsResult::sumLower() const {
  uint64_t S = 0;
  for (uint64_t V : Lower)
    S += V;
  return S;
}

uint64_t BoundsResult::sumUpper() const {
  uint64_t S = 0;
  for (uint64_t V : Upper)
    S += V;
  return S;
}

uint64_t BoundsResult::exactCount() const {
  uint64_t N = 0;
  for (std::size_t I = 0; I < Lower.size(); ++I)
    if (Lower[I] == Upper[I])
      ++N;
  return N;
}

BoundsResult olpp::solveBounds(uint32_t NumCells,
                               const std::vector<SumConstraint> &Constraints,
                               uint32_t MaxIterations) {
  BoundsResult R;
  R.Lower.assign(NumCells, 0);
  R.Upper.assign(NumCells, UnknownUpper);

  for ([[maybe_unused]] const SumConstraint &C : Constraints)
    for ([[maybe_unused]] uint32_t Cell : C.Cells)
      assert(Cell < NumCells && "constraint cell out of range");

  for (uint32_t Iter = 0; Iter < MaxIterations; ++Iter) {
    bool Changed = false;
    for (const SumConstraint &C : Constraints) {
      // 128-bit accumulators: Upper starts at a huge sentinel.
      __int128 SumL = 0, SumU = 0;
      for (uint32_t Cell : C.Cells) {
        SumL += R.Lower[Cell];
        SumU += R.Upper[Cell];
      }
      for (uint32_t Cell : C.Cells) {
        __int128 OthersL = SumL - R.Lower[Cell];
        __int128 NewU = static_cast<__int128>(C.Value) - OthersL;
        uint64_t NewUpper =
            NewU <= 0 ? 0
                      : (NewU > static_cast<__int128>(UnknownUpper)
                             ? UnknownUpper
                             : static_cast<uint64_t>(NewU));
        if (NewUpper < R.Upper[Cell]) {
          SumU -= R.Upper[Cell] - NewUpper;
          R.Upper[Cell] = NewUpper;
          Changed = true;
        }
        if (C.Equality) {
          __int128 OthersU = SumU - R.Upper[Cell];
          __int128 NewL = static_cast<__int128>(C.Value) - OthersU;
          uint64_t NewLower = NewL <= 0 ? 0 : static_cast<uint64_t>(NewL);
          if (NewLower > R.Lower[Cell]) {
            SumL += NewLower - R.Lower[Cell];
            R.Lower[Cell] = NewLower;
            Changed = true;
          }
        }
      }
    }
    R.Iterations = Iter + 1;
    if (!Changed) {
      R.Converged = true;
      break;
    }
  }
  return R;
}
