//===--- Estimators.h - Interesting-path flow estimation --------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives lower/upper bounds on the frequency of every *interesting path*
/// from profile data alone (never from the ground truth):
///
///   - loop interesting paths i ! j (paper §2.2): rows are the Ball-Larus
///     paths ending at a loop's backedge, columns the paths starting at its
///     header; overlapping-path counters refine each row by the column's
///     overlap-prefix class,
///   - interprocedural Type I pairs p ! q (paper §3.2): rows are caller
///     pre-paths at one call site, columns callee paths from its entry,
///   - Type II pairs q ! r: rows are callee paths ending at the return,
///     columns the caller continuations of the call site.
///
/// When the instrumentation collected only plain BL profiles the refinement
/// constraints are absent — that is exactly the paper's "estimates using BL
/// paths" baseline (the overlap = -1 point of Figure 5).
///
/// Ground truth, when supplied, contributes the real flow (for the
/// imprecision metrics) and a per-pair soundness check (L <= real <= U).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_ESTIMATE_ESTIMATORS_H
#define OLPP_ESTIMATE_ESTIMATORS_H

#include "estimate/IntervalSolver.h"
#include "profile/Instrumenter.h"
#include "profile/ProfileDecode.h"
#include "wpp/GroundTruth.h"

#include <map>

namespace olpp {

class PathFeasibility;

struct EstimateMetrics {
  uint64_t Real = 0;       ///< ground-truth interesting-path flow
  uint64_t Definite = 0;   ///< sum of lower bounds
  uint64_t Potential = 0;  ///< sum of upper bounds
  uint64_t Pairs = 0;      ///< size of the pair universe
  uint64_t ExactPairs = 0; ///< pairs with coinciding bounds
  uint64_t Problems = 0;   ///< loops / call sites estimated
  bool SoundnessViolated = false;
  /// Interval-solver effort: single-constraint evaluations performed across
  /// all solved systems, and whether every system converged in budget.
  uint64_t SolverEvaluations = 0;
  bool SolverConverged = true;
  /// Pairs the static feasibility analysis proved impossible (each becomes
  /// a hard == 0 constraint), and how many pair queries it was asked.
  uint64_t InfeasiblePairs = 0;
  uint64_t FeasibilityQueries = 0;

  void add(const EstimateMetrics &O) {
    Real += O.Real;
    Definite += O.Definite;
    Potential += O.Potential;
    Pairs += O.Pairs;
    ExactPairs += O.ExactPairs;
    Problems += O.Problems;
    SoundnessViolated |= O.SoundnessViolated;
    SolverEvaluations += O.SolverEvaluations;
    SolverConverged &= O.SolverConverged;
    InfeasiblePairs += O.InfeasiblePairs;
    FeasibilityQueries += O.FeasibilityQueries;
  }

  double definiteErrorPercent() const {
    return Real == 0 ? 0.0
                     : 100.0 * (static_cast<double>(Definite) -
                                static_cast<double>(Real)) /
                           static_cast<double>(Real);
  }
  double potentialErrorPercent() const {
    return Real == 0 ? 0.0
                     : 100.0 * (static_cast<double>(Potential) -
                                static_cast<double>(Real)) /
                           static_cast<double>(Real);
  }
};

/// Estimates interesting-path flow for one instrumented run of a module.
class ModuleEstimator {
public:
  /// All three references must outlive the estimator.
  ModuleEstimator(const Module &M, const ModuleInstrumentation &MI,
                  const ProfileRuntime &Prof);

  /// Loop interesting paths over all loops of all functions.
  EstimateMetrics estimateLoops(const GroundTruth *GT = nullptr) const;
  /// Type I pairs over all call sites.
  EstimateMetrics estimateTypeI(const GroundTruth *GT = nullptr) const;
  /// Type II pairs over all call sites.
  EstimateMetrics estimateTypeII(const GroundTruth *GT = nullptr) const;
  /// Sum of the three.
  EstimateMetrics estimateAll(const GroundTruth *GT = nullptr) const;

  /// Supplies static path-feasibility facts. Every pair the analysis proves
  /// impossible contributes a hard `cell == 0` equality to its problem; the
  /// solver's monotone tightening rules mean added constraints can only
  /// shrink the bound intervals, never widen them. \p PF must be built over
  /// the same (instrumented) module and outlive the estimator; pass nullptr
  /// to turn the facts off again.
  void setFeasibility(const PathFeasibility *PF) { Feas = PF; }

  /// Single-problem variants (used by diagnostics and fine-grained benches).
  EstimateMetrics estimateLoop(uint32_t Func, uint32_t LoopIdx,
                               const GroundTruth *GT = nullptr) const {
    return estimateOneLoop(Func, LoopIdx, GT);
  }
  EstimateMetrics estimateCallSiteTypeI(uint32_t CsId,
                                        const GroundTruth *GT = nullptr) const {
    return estimateOneTypeI(MI.CallSites[CsId], GT);
  }
  EstimateMetrics estimateCallSiteTypeII(uint32_t CsId,
                                         const GroundTruth *GT = nullptr) const {
    return estimateOneTypeII(MI.CallSites[CsId], GT);
  }

private:
  struct OLRow {
    uint64_t F = 0;
    /// Overlap suffix class (OG block sequence) -> OF frequency.
    std::map<std::vector<uint32_t>, uint64_t> OF;
  };
  struct FuncView {
    std::vector<DecodedEntry> Entries;
    std::unordered_map<DynPathKey, uint64_t, DynPathKeyHash> Flow;
    /// Per loop: OL prefix signature -> row data (LoopOverlap mode only).
    std::vector<std::unordered_map<PathSig, OLRow, PathSigHash>> LoopRows;
  };

  EstimateMetrics estimateOneLoop(uint32_t F, uint32_t L,
                                  const GroundTruth *GT) const;
  EstimateMetrics estimateOneTypeI(const CallSiteInfo &CS,
                                   const GroundTruth *GT) const;
  EstimateMetrics estimateOneTypeII(const CallSiteInfo &CS,
                                    const GroundTruth *GT) const;

  const Module &M;
  const ModuleInstrumentation &MI;
  const ProfileRuntime &Prof;
  const PathFeasibility *Feas = nullptr;
  std::vector<FuncView> Views;
};

} // namespace olpp

#endif // OLPP_ESTIMATE_ESTIMATORS_H
