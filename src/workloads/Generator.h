//===--- Generator.h - Random MiniC program generation ----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generator of *terminating* MiniC programs for the property
/// tests and the sweep benches. Generating source (rather than IR) means
/// every structural invariant the instrumenters rely on is inherited from
/// the frontend lowering for free.
///
/// Termination is by construction: all loops are counter-bounded, the call
/// graph is acyclic (a function only calls higher-numbered functions), and
/// divisors are forced non-zero.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WORKLOADS_GENERATOR_H
#define OLPP_WORKLOADS_GENERATOR_H

#include <cstdint>
#include <string>

namespace olpp {

struct GeneratorOptions {
  uint64_t Seed = 1;
  /// Functions besides main; main calls into them.
  uint32_t NumFunctions = 4;
  /// Maximum statement-nesting depth.
  uint32_t MaxDepth = 3;
  /// Statements per block (1..Max).
  uint32_t MaxStmtsPerBlock = 5;
  /// Upper bound for loop trip counts.
  uint32_t MaxLoopIters = 7;
  /// Emit calls (disable to generate single-procedure programs).
  bool AllowCalls = true;
};

/// Returns the source text of a random program with a `main(a, b)` entry.
std::string generateProgram(const GeneratorOptions &Opts);

/// Samples the whole option space from one master seed: program shape
/// (function count, nesting depth, statement density, loop trip counts,
/// call emission) and the program seed itself are all derived
/// deterministically, so a single 64-bit seed replays a fuzz case exactly.
GeneratorOptions sampleGeneratorOptions(uint64_t MasterSeed);

/// One-line rendering of \p Opts for failure reports and replay logs.
std::string describeGeneratorOptions(const GeneratorOptions &Opts);

} // namespace olpp

#endif // OLPP_WORKLOADS_GENERATOR_H
