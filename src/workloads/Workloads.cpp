//===--- Workloads.cpp - Benchmark program registry ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/programs/Sources.h"

using namespace olpp;

const std::vector<Workload> &olpp::allWorkloads() {
  // Sizes are calibrated so that precision runs trace in well under a
  // second each while still executing every hot path thousands of times;
  // overhead runs are roughly 10x longer (no trace is collected there).
  static const std::vector<Workload> Suite = {
      {"li", workload_sources::Li, {60, 17}, {600, 17}},
      {"go", workload_sources::Go, {12, 99}, {120, 99}},
      {"perl", workload_sources::Perl, {10, 23}, {100, 23}},
      {"espresso", workload_sources::Espresso, {6, 5}, {60, 5}},
      {"vortex", workload_sources::Vortex, {700, 77}, {7000, 77}},
      {"parser", workload_sources::Parser, {40, 13}, {400, 13}},
      {"mcf", workload_sources::Mcf, {4, 41}, {40, 41}},
      {"twolf", workload_sources::Twolf, {10, 7}, {120, 7}},
      {"gcc", workload_sources::Gcc, {15, 3}, {150, 3}},
      {"ijpeg", workload_sources::Ijpeg, {12, 29}, {120, 29}},
  };
  return Suite;
}

const Workload *olpp::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
