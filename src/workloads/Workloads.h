//===--- Workloads.h - Benchmark program registry ---------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nine MiniC workloads standing in for the paper's SPEC subset. Each is a
/// self-contained deterministic program whose control-flow character mirrors
/// the corresponding benchmark's mix of loop-crossing vs procedure-crossing
/// flow (paper Table 1): `vortex` is call-dominated, `twolf` and `espresso`
/// are loop-dominated, the rest sit in between.
///
/// Every program takes main(size, seed); `size` scales running time (the
/// overhead benches use a larger size than the precision benches) and
/// `seed` drives an embedded linear congruential generator so the branch
/// mix is input-dependent rather than static.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WORKLOADS_WORKLOADS_H
#define OLPP_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace olpp {

struct Workload {
  /// Short name used in tables (matches the paper's benchmark names).
  std::string Name;
  /// MiniC source text.
  std::string Source;
  /// Arguments for the precision experiments (moderate trace size).
  std::vector<int64_t> PrecisionArgs;
  /// Arguments for the overhead experiments (longer run, no trace needed).
  std::vector<int64_t> OverheadArgs;
};

/// The full suite, in the paper's Table 1 order.
const std::vector<Workload> &allWorkloads();

/// Looks a workload up by name; returns nullptr if absent.
const Workload *findWorkload(const std::string &Name);

} // namespace olpp

#endif // OLPP_WORKLOADS_WORKLOADS_H
