//===--- Ijpeg.cpp - image quantization workload -------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 132.ijpeg: block quantization with clamp helpers and a
// brightness classifier. Unlike the other nine programs this one is built
// around *correlated* branches — clamped values re-tested against their
// proven range, and a flag assigned under one predicate and branched on
// again later — so a static feasibility pass has real acyclic paths to
// prove dead (the others' LCG-driven branch mixes leave almost nothing
// provable). The suite's exemplar for `olpp analyze` and bench/perf_analyze.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Ijpeg[] = R"MINIC(
global jrng;
global qtab[64];
global hist[16];
global acc;

fn jrand(m) {
  jrng = (jrng * 1103515245 + 12345) & 2147483647;
  return jrng % m;
}

fn clamp255(v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}

fn quantize(v, q) {
  var s = clamp255(v);
  if (s < 0) { return 0; }
  if (s > 255) { return 255; }
  return s / (q + 1);
}

fn sharpen(v) {
  var bright = 0;
  if (v < 128) { bright = 1; }
  if (bright) {
    acc = acc + v;
    return v + 8;
  }
  return v - 8;
}

fn main(size, seed) {
  jrng = seed;
  acc = 0;
  for (var i = 0; i < 64; i = i + 1) {
    qtab[i & 63] = 1 + jrand(31);
  }
  var sum = 0;
  for (var pass = 0; pass < size; pass = pass + 1) {
    for (var i = 0; i < 64; i = i + 1) {
      var v = jrand(512) - 128;
      var s = sharpen(clamp255(v));
      var q = quantize(s, qtab[i & 63]);
      hist[q & 15] = hist[q & 15] + 1;
      sum = sum + q;
    }
  }
  return (sum + acc) & 65535;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
