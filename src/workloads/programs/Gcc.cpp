//===--- Gcc.cpp - toy compiler pipeline workload -------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 126.gcc: a linear IR run through folding, dead-code and
// allocation passes. Balanced loop/call mix with many distinct acyclic
// paths per pass body, echoing gcc's very large path counts.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Gcc[] = R"MINIC(
global crng;
global insOp[512];   // 0 nop, 1 const, 2 add, 3 mul, 4 load, 5 store, 6 branch
global insA[512];
global insB[512];
global insDst[512];
global used[64];
global numIns;

fn crand(m) {
  crng = (crng * 22695477 + 1) & 2147483647;
  return crng % m;
}

fn genFunction(n) {
  numIns = n;
  for (var i = 0; i < numIns; i = i + 1) {
    insOp[i & 511] = 1 + crand(6);
    insA[i & 511] = crand(64);
    insB[i & 511] = crand(64);
    insDst[i & 511] = crand(64);
  }
  return 0;
}

fn isPure(op) {
  if (op == 1 || op == 2 || op == 3 || op == 4) { return 1; }
  return 0;
}

fn foldConstants() {
  var folded = 0;
  for (var i = 1; i < numIns; i = i + 1) {
    var op = insOp[i & 511];
    if (op == 2 || op == 3) {
      // operands defined by consts directly above?
      if (insOp[(i - 1) & 511] == 1 && insDst[(i - 1) & 511] == insA[i & 511]) {
        insOp[i & 511] = 1;
        folded = folded + 1;
      }
    }
  }
  return folded;
}

fn markUses() {
  for (var r = 0; r < 64; r = r + 1) { used[r] = 0; }
  for (var i = 0; i < numIns; i = i + 1) {
    var op = insOp[i & 511];
    if (op == 0) { continue; }
    if (op != 1) { used[insA[i & 511] & 63] = 1; }
    if (op == 2 || op == 3 || op == 5) { used[insB[i & 511] & 63] = 1; }
  }
  return 0;
}

fn deadCodeElim() {
  markUses();
  var removed = 0;
  var i = numIns - 1;
  while (i >= 0) {
    var op = insOp[i & 511];
    if (isPure(op) && used[insDst[i & 511] & 63] == 0) {
      insOp[i & 511] = 0;
      removed = removed + 1;
    }
    i = i - 1;
  }
  return removed;
}

fn spillCostOf(r) {
  var cost = 0;
  for (var i = 0; i < numIns; i = i + 1) {
    if (insOp[i & 511] == 0) { continue; }
    if (insA[i & 511] == r) { cost = cost + 2; }
    if (insDst[i & 511] == r) { cost = cost + 3; }
  }
  return cost;
}

fn allocate() {
  var spills = 0;
  for (var r = 0; r < 64; r = r + 1) {
    if (used[r] == 0) { continue; }
    if (r >= 16) {
      if (spillCostOf(r) > 20) { spills = spills + 1; }
    }
  }
  return spills;
}

fn main(size, seed) {
  crng = (seed & 2147483647) | 1;
  var total = 0;
  for (var unit = 0; unit < size; unit = unit + 1) {
    genFunction(120 + crand(120));
    var changed = 1;
    while (changed) {
      changed = foldConstants() + deadCodeElim();
      total = total + changed;
      if (changed > 40) { changed = 0; }   // cap pass iterations
    }
    total = total + allocate();
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
