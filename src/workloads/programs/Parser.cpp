//===--- Parser.cpp - recursive-descent parsing workload ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 197.parser: tokenized expressions parsed by recursive
// descent. Call-dominated with a steady loop component from the token
// generator and scanning loops.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Parser[] = R"MINIC(
global srng;
global toks[512];   // 1 num, 2 '+', 3 '*', 4 '(', 5 ')', 6 '-', 0 end
global tokVal[512];
global pos;
global nToks;
global errors;

fn srand2(m) {
  srng = (srng * 22695477 + 1) & 2147483647;
  return srng % m;
}

fn peekTok() {
  if (pos >= nToks) { return 0; }
  return toks[pos & 511];
}

fn bump() { pos = pos + 1; return 0; }

fn parsePrimary() {
  var t = peekTok();
  if (t == 1) {
    var v = tokVal[pos & 511];
    bump();
    return v;
  }
  if (t == 4) {
    bump();
    var v = parseExpr();
    if (peekTok() == 5) { bump(); }
    else { errors = errors + 1; }
    return v;
  }
  if (t == 6) {
    bump();
    return -parsePrimary();
  }
  errors = errors + 1;
  bump();
  return 0;
}

fn parseTerm() {
  var v = parsePrimary();
  while (peekTok() == 3) {
    bump();
    v = v * parsePrimary();
  }
  return v;
}

fn parseExpr() {
  var v = parseTerm();
  while (peekTok() == 2 || peekTok() == 6) {
    var op = peekTok();
    bump();
    if (op == 2) { v = v + parseTerm(); }
    else { v = v - parseTerm(); }
  }
  return v;
}

fn genTokens(n) {
  var depth = 0;
  var i = 0;
  while (i < n) {
    var r = srand2(10);
    if (r < 4) { toks[i & 511] = 1; tokVal[i & 511] = srand2(50); }
    else if (r < 6) { toks[i & 511] = 2; }
    else if (r < 7) { toks[i & 511] = 3; }
    else if (r < 8 && depth < 6) { toks[i & 511] = 4; depth = depth + 1; }
    else if (r < 9 && depth > 0) { toks[i & 511] = 5; depth = depth - 1; }
    else { toks[i & 511] = 6; }
    i = i + 1;
  }
  // close any open parens
  while (depth > 0 && i < 512) {
    toks[i & 511] = 5;
    depth = depth - 1;
    i = i + 1;
  }
  nToks = i;
  return 0;
}

fn main(size, seed) {
  srng = (seed & 2147483647) | 1;
  var total = 0;
  errors = 0;
  for (var round = 0; round < size; round = round + 1) {
    genTokens(60 + srand2(60));
    pos = 0;
    while (pos < nToks) {
      total = total + parseExpr();
    }
  }
  return total + errors;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
