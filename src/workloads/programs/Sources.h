//===--- Sources.h - embedded workload program sources ----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extern declarations for the embedded MiniC sources (one definition per
/// programs/*.cpp). Consumed by the Workloads.cpp registry only.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_WORKLOADS_PROGRAMS_SOURCES_H
#define OLPP_WORKLOADS_PROGRAMS_SOURCES_H

namespace olpp {
namespace workload_sources {

extern const char Li[];
extern const char Go[];
extern const char Perl[];
extern const char Espresso[];
extern const char Vortex[];
extern const char Parser[];
extern const char Mcf[];
extern const char Twolf[];
extern const char Gcc[];
extern const char Ijpeg[];

} // namespace workload_sources
} // namespace olpp

#endif // OLPP_WORKLOADS_PROGRAMS_SOURCES_H
