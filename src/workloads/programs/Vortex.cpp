//===--- Vortex.cpp - object store workload ------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 147.vortex: an object database exercised through layers of
// small accessor/mutator functions. Nearly all interesting-path flow crosses
// procedure boundaries (the paper reports 94% for vortex).
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Vortex[] = R"MINIC(
global vrng;
global objKind[512];
global objScore[512];
global objLinks[512];
global objTouch[512];
global hashTab[512];

fn vrand(m) {
  vrng = (vrng * 1103515245 + 12345) & 2147483647;
  return vrng % m;
}

fn hashOf(key) { return (key * 2654435761) & 511; }

fn lookup(key) {
  var h = hashOf(key);
  var probes = 0;
  while (probes < 8) {
    var slot = (h + probes) & 511;
    if (hashTab[slot] == key) { return slot; }
    if (hashTab[slot] == 0) { return -1; }
    probes = probes + 1;
  }
  return -1;
}

fn insert(key) {
  var h = hashOf(key);
  var probes = 0;
  while (probes < 8) {
    var slot = (h + probes) & 511;
    if (hashTab[slot] == 0 || hashTab[slot] == key) {
      hashTab[slot] = key;
      return slot;
    }
    probes = probes + 1;
  }
  return hashOf(key);
}

fn getKind(o) { return objKind[o & 511]; }
fn setKind(o, k) { objKind[o & 511] = k; return 0; }
fn getScore(o) { return objScore[o & 511]; }
fn bumpScore(o, d) { objScore[o & 511] = getScore(o) + d; return 0; }
fn touch(o) { objTouch[o & 511] = objTouch[o & 511] + 1; return 0; }

fn linkObjects(a, b) {
  objLinks[a & 511] = b;
  touch(a);
  touch(b);
  return 0;
}

fn classify(o) {
  var k = getKind(o);
  if (k == 0) { return 0; }
  if (k < 3) { return 1; }
  if (k < 6) { return 2; }
  return 3;
}

fn visit(o, depth) {
  touch(o);
  var cls = classify(o);
  if (cls == 0 || depth <= 0) { return getScore(o); }
  if (cls == 1) { bumpScore(o, 1); }
  else if (cls == 2) { bumpScore(o, -1); }
  else { bumpScore(o, depth); }
  return getScore(o) + visit(objLinks[o & 511], depth - 1);
}

fn transaction() {
  var key = 1 + vrand(400);
  var slot = lookup(key);
  if (slot < 0) {
    slot = insert(key);
    setKind(slot, 1 + vrand(8));
  }
  var other = insert(1 + vrand(400));
  linkObjects(slot, other);
  return visit(slot, 3);
}

fn main(size, seed) {
  vrng = (seed & 2147483647) | 1;
  var total = 0;
  for (var t = 0; t < size; t = t + 1) {
    total = total + transaction();
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
