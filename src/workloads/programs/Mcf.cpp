//===--- Mcf.cpp - network flow workload ---------------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 181.mcf: Bellman-Ford style relaxation over a random network
// with a cost-reduction helper. Loop flow dominates, with a call component
// from the relaxation helper (matching mcf's 28%/54% split in Table 1).
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Mcf[] = R"MINIC(
global mrng;
global edgeFrom[768];
global edgeTo[768];
global edgeCost[768];
global dist[96];
global potential[96];
global numNodes;
global numEdges;

fn mrand(m) {
  mrng = (mrng * 1103515245 + 12345) & 2147483647;
  return mrng % m;
}

fn reducedCost(e) {
  var u = edgeFrom[e & 767];
  var v = edgeTo[e & 767];
  return edgeCost[e & 767] + potential[u & 95] - potential[v & 95];
}

fn relaxEdge(e) {
  var u = edgeFrom[e & 767];
  var v = edgeTo[e & 767];
  if (dist[u & 95] >= 1000000) { return 0; }
  var nd = dist[u & 95] + reducedCost(e);
  if (nd < dist[v & 95]) {
    dist[v & 95] = nd;
    return 1;
  }
  return 0;
}

fn bellmanFord(src) {
  for (var i = 0; i < numNodes; i = i + 1) { dist[i & 95] = 1000000; }
  dist[src & 95] = 0;
  var rounds = 0;
  var changed = 1;
  while (changed && rounds < numNodes) {
    changed = 0;
    for (var e = 0; e < numEdges; e = e + 1) {
      if (relaxEdge(e)) { changed = 1; }
    }
    rounds = rounds + 1;
  }
  var sum = 0;
  for (var i = 0; i < numNodes; i = i + 1) {
    if (dist[i & 95] < 1000000) { sum = sum + dist[i & 95]; }
  }
  return sum;
}

fn updatePotentials() {
  var i = 0;
  do {
    if (dist[i & 95] < 1000000) {
      potential[i & 95] = potential[i & 95] + dist[i & 95] % 64;
    }
    i = i + 1;
  } while (i < numNodes);
  return 0;
}

fn buildNetwork() {
  numNodes = 48 + mrand(48);
  numEdges = numNodes * 6;
  if (numEdges > 768) { numEdges = 768; }
  for (var e = 0; e < numEdges; e = e + 1) {
    edgeFrom[e & 767] = mrand(numNodes);
    edgeTo[e & 767] = mrand(numNodes);
    edgeCost[e & 767] = 1 + mrand(30);
  }
  for (var i = 0; i < numNodes; i = i + 1) { potential[i & 95] = 0; }
  return 0;
}

fn main(size, seed) {
  mrng = (seed & 2147483647) | 1;
  var total = 0;
  for (var round = 0; round < size; round = round + 1) {
    buildNetwork();
    var iter = 0;
    while (iter < 3) {
      total = total + bellmanFord(mrand(numNodes));
      updatePotentials();
      iter = iter + 1;
    }
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
