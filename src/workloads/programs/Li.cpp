//===--- Li.cpp - mini lisp evaluator workload -------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 130.li: an expression-tree interpreter. Work is dominated by
// recursive evaluator calls, so most interesting-path flow crosses procedure
// boundaries, with a moderate loop component from tree construction.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Li[] = R"MINIC(
// mini lisp: build random expression trees and evaluate them.
global rng;
global nodeOp[512];   // 0 = leaf, 1..5 = operators
global nodeLhs[512];
global nodeRhs[512];
global nodeVal[512];
global nextNode;

fn rand(m) {
  rng = (rng * 1103515245 + 12345) & 2147483647;
  return rng % m;
}

fn alloc() {
  var n = nextNode;
  nextNode = nextNode + 1;
  if (nextNode >= 512) { nextNode = 0; }
  return n;
}

fn build(depth) {
  var n = alloc();
  if (depth <= 0 || rand(4) == 0) {
    nodeOp[n & 511] = 0;
    nodeVal[n & 511] = rand(100) - 50;
    return n;
  }
  nodeOp[n & 511] = 1 + rand(5);
  var l = build(depth - 1);
  var r = build(depth - 1);
  nodeLhs[n & 511] = l;
  nodeRhs[n & 511] = r;
  return n;
}

fn applyOp(code, a, b) {
  if (code == 1) { return a + b; }
  if (code == 2) { return a - b; }
  if (code == 3) { return a * b; }
  if (code == 4) {
    if (b == 0) { return a; }
    if (a < 0) { return -((-a) / (1 + (b & 15))); }
    return a / (1 + (b & 15));
  }
  // code 5: branchy min/max
  if (a < b) { return b; }
  return a;
}

fn eval(n) {
  var code = nodeOp[n & 511];
  if (code == 0) { return nodeVal[n & 511]; }
  var a = eval(nodeLhs[n & 511]);
  var b = eval(nodeRhs[n & 511]);
  return applyOp(code, a, b);
}

fn gc() {
  // sweep: clear dead nodes (pure loop work)
  var i = 0;
  while (i < 512) {
    if (nodeOp[i] == 0 && nodeVal[i] == 0) { nodeLhs[i] = 0; nodeRhs[i] = 0; }
    i = i + 1;
  }
  return 0;
}

fn main(size, seed) {
  rng = (seed & 2147483647) | 1;
  var total = 0;
  for (var round = 0; round < size; round = round + 1) {
    nextNode = 0;
    var root = build(4 + rand(2));
    total = total + eval(root);
    if (round % 8 == 7) { gc(); }
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
