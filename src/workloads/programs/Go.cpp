//===--- Go.cpp - board evaluation workload -----------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 099.go: repeated evaluation of a 19x19 board. A mix of loop
// flow (board scans) and call flow (per-point helpers), like the original's
// pattern matchers.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Go[] = R"MINIC(
global grng;
global board[361];   // 0 empty, 1 black, 2 white

fn grand(m) {
  grng = (grng * 69069 + 1) & 2147483647;
  return grng % m;
}

fn stoneAt(p) {
  if (p < 0) { return 3; }      // off board
  if (p >= 361) { return 3; }
  return board[p];
}

fn liberties(p) {
  var libs = 0;
  var col = p % 19;
  if (col > 0 && stoneAt(p - 1) == 0) { libs = libs + 1; }
  if (col < 18 && stoneAt(p + 1) == 0) { libs = libs + 1; }
  if (stoneAt(p - 19) == 0) { libs = libs + 1; }
  if (stoneAt(p + 19) == 0) { libs = libs + 1; }
  return libs;
}

fn influence(p, color) {
  var score = 0;
  var d = 1;
  while (d <= 3) {
    if (stoneAt(p - d) == color) { score = score + (4 - d); }
    if (stoneAt(p + d) == color) { score = score + (4 - d); }
    if (stoneAt(p - 19 * d) == color) { score = score + (4 - d); }
    if (stoneAt(p + 19 * d) == color) { score = score + (4 - d); }
    d = d + 1;
  }
  return score;
}

fn evalBoard() {
  var total = 0;
  for (var p = 0; p < 361; p = p + 1) {
    var s = board[p];
    if (s == 0) {
      var inf = influence(p, 1) - influence(p, 2);
      if (inf > 2) { total = total + 1; }
      else if (inf < -2) { total = total - 1; }
    } else {
      var libs = liberties(p);
      if (libs == 0) { board[p] = 0; }       // capture
      else if (s == 1) { total = total + libs; }
      else { total = total - libs; }
    }
  }
  return total;
}

fn playMove(color) {
  var tries = 0;
  while (tries < 10) {
    var p = grand(361);
    if (board[p] == 0) {
      board[p] = color;
      return p;
    }
    tries = tries + 1;
  }
  return -1;
}

fn main(size, seed) {
  grng = (seed & 2147483647) | 1;
  var total = 0;
  for (var game = 0; game < size; game = game + 1) {
    var moves = 0;
    while (moves < 40) {
      playMove(1 + (moves & 1));
      moves = moves + 1;
    }
    total = total + evalBoard();
    // clear a band of the board between games
    for (var p = grand(200); p < 361; p = p + 3) { board[p] = 0; }
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
