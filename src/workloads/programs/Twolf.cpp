//===--- Twolf.cpp - simulated annealing placement workload --------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 300.twolf: cell placement by simulated annealing. The cost
// loops dominate (twolf is the most loop-heavy benchmark in Table 1, 69%
// of flow crossing loop backedges).
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Twolf[] = R"MINIC(
global trng;
global cellX[128];
global cellY[128];
global netA[256];
global netB[256];
global numCells;
global numNets;

fn trand(m) {
  trng = (trng * 69069 + 3) & 2147483647;
  return trng % m;
}

fn absDelta(a, b) {
  if (a > b) { return a - b; }
  return b - a;
}

fn netLen(n) {
  var a = netA[n & 255];
  var b = netB[n & 255];
  return absDelta(cellX[a & 127], cellX[b & 127]) +
         absDelta(cellY[a & 127], cellY[b & 127]);
}

fn totalCost() {
  var cost = 0;
  for (var n = 0; n < numNets; n = n + 1) {
    cost = cost + netLen(n);
  }
  return cost;
}

fn cellCost(c) {
  // cost of nets touching cell c (inline loop, no calls)
  var cost = 0;
  var n = 0;
  while (n < numNets) {
    var a = netA[n & 255];
    var b = netB[n & 255];
    if (a == c || b == c) {
      cost = cost + absDelta(cellX[a & 127], cellX[b & 127]) +
             absDelta(cellY[a & 127], cellY[b & 127]);
    }
    n = n + 1;
  }
  return cost;
}

fn annealStep(temp) {
  var c = trand(numCells);
  var oldX = cellX[c & 127];
  var oldY = cellY[c & 127];
  var before = cellCost(c);
  cellX[c & 127] = trand(64);
  cellY[c & 127] = trand(64);
  var after = cellCost(c);
  if (after > before + temp) {
    // reject
    cellX[c & 127] = oldX;
    cellY[c & 127] = oldY;
    return 0;
  }
  return 1;
}

fn main(size, seed) {
  trng = (seed & 2147483647) | 1;
  numCells = 96;
  numNets = 224;
  for (var c = 0; c < numCells; c = c + 1) {
    cellX[c & 127] = trand(64);
    cellY[c & 127] = trand(64);
  }
  for (var n = 0; n < numNets; n = n + 1) {
    netA[n & 255] = trand(numCells);
    netB[n & 255] = trand(numCells);
  }
  var accepted = 0;
  var temp = 32;
  for (var round = 0; round < size; round = round + 1) {
    var step = 0;
    do {
      accepted = accepted + annealStep(temp);
      step = step + 1;
    } while (step < 24);
    if (temp > 1) { temp = temp - 1; }
  }
  return totalCost() + accepted;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
