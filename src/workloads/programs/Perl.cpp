//===--- Perl.cpp - pattern matching workload ---------------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 134.perl: regex-style matching of small patterns against
// generated text. Matching is a cluster of mutually calling functions, so
// procedure-boundary flow dominates.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Perl[] = R"MINIC(
global prng;
global text[1024];
global pat[16];
global patLen;
global textLen;

fn prand(m) {
  prng = (prng * 1103515245 + 12345) & 2147483647;
  return prng % m;
}

// pattern symbols: 1..4 literal classes, 5 = '.' any, 6 = '*' on previous
fn symMatches(sym, ch) {
  if (sym == 5) { return 1; }
  if (sym == ch) { return 1; }
  return 0;
}

fn matchHere(pi, ti) {
  if (pi >= patLen) { return 1; }
  if (pi + 1 < patLen && pat[(pi + 1) & 15] == 6) {
    return matchStar(pat[pi & 15], pi + 2, ti);
  }
  if (ti < textLen && symMatches(pat[pi & 15], text[ti & 1023])) {
    return matchHere(pi + 1, ti + 1);
  }
  return 0;
}

fn matchStar(sym, pi, ti) {
  var t = ti;
  while (1) {
    if (matchHere(pi, t)) { return 1; }
    if (t >= textLen) { return 0; }
    if (symMatches(sym, text[t & 1023]) == 0) { return 0; }
    t = t + 1;
  }
  return 0;
}

fn search() {
  var hits = 0;
  for (var ti = 0; ti <= textLen; ti = ti + 1) {
    if (matchHere(0, ti)) { hits = hits + 1; }
  }
  return hits;
}

fn freshText() {
  for (var i = 0; i < textLen; i = i + 1) {
    text[i] = 1 + prand(4);
  }
  return 0;
}

fn freshPattern() {
  patLen = 2 + prand(5);
  var i = 0;
  while (i < patLen) {
    var r = prand(8);
    if (r < 5) { pat[i] = 1 + r % 4; }
    else if (i > 0 && pat[(i - 1) & 15] != 6) { pat[i] = 6; }
    else { pat[i] = 5; }
    i = i + 1;
  }
  return 0;
}

fn main(size, seed) {
  prng = (seed & 2147483647) | 1;
  textLen = 200;
  var hits = 0;
  for (var round = 0; round < size; round = round + 1) {
    freshText();
    freshPattern();
    hits = hits + search();
  }
  return hits;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
