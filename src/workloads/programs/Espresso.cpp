//===--- Espresso.cpp - two-level logic minimization workload -----------------===//
//
// Part of the OLPP project, under the MIT License.
//
// Stand-in for 008.espresso: cube-cover reduction with bitmask arithmetic.
// Nested loops over the cover dominate; the paper's Table 1 shows espresso
// as the most loop-backedge-heavy benchmark of the suite.
//
//===----------------------------------------------------------------------===//

#include "workloads/programs/Sources.h"

namespace olpp {
namespace workload_sources {

const char Espresso[] = R"MINIC(
global erng;
global cube[256];     // bitmask per cube (16 variables, 2 bits each)
global live[256];
global numCubes;

fn erand(m) {
  erng = (erng * 69069 + 5) & 2147483647;
  return erng % m;
}

fn countLits(mask) {
  var n = 0;
  var m = mask;
  while (m != 0) {
    if (m & 1) { n = n + 1; }
    m = m >> 1;
  }
  return n;
}

fn covers(a, b) {
  // cube a covers cube b if a's care bits are a subset of b's
  if ((a & b) == a) { return 1; }
  return 0;
}

fn sweepCovered() {
  var removed = 0;
  for (var i = 0; i < numCubes; i = i + 1) {
    if (live[i] == 0) { continue; }
    for (var j = 0; j < numCubes; j = j + 1) {
      if (i == j || live[j] == 0) { continue; }
      if (covers(cube[i & 255], cube[j & 255])) {
        live[j] = 0;
        removed = removed + 1;
      }
    }
  }
  return removed;
}

fn mergePairs() {
  var merged = 0;
  var i = 0;
  while (i + 1 < numCubes) {
    if (live[i] && live[i + 1]) {
      var d = cube[i & 255] ^ cube[(i + 1) & 255];
      // distance-1 cubes merge
      if (countLits(d) == 1) {
        cube[i & 255] = cube[i & 255] & cube[(i + 1) & 255];
        live[i + 1] = 0;
        merged = merged + 1;
      }
    }
    i = i + 1;
  }
  return merged;
}

fn weight() {
  var w = 0;
  var i = 0;
  do {
    if (live[i]) { w = w + countLits(cube[i]); }
    i = i + 1;
  } while (i < numCubes);
  return w;
}

fn main(size, seed) {
  erng = (seed & 2147483647) | 1;
  var total = 0;
  for (var round = 0; round < size; round = round + 1) {
    numCubes = 32 + erand(64);
    for (var i = 0; i < numCubes; i = i + 1) {
      cube[i & 255] = erand(65536);
      live[i & 255] = 1;
    }
    var changed = 1;
    var passes = 0;
    while (changed && passes < 6) {
      changed = sweepCovered() + mergePairs();
      passes = passes + 1;
    }
    total = total + weight();
  }
  return total;
}
)MINIC";

} // namespace workload_sources
} // namespace olpp
