//===--- Trace.h - Control flow tracing -------------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program control-flow tracing, the ground truth of all experiments
/// (the role of Whole Program Paths in the paper). A trace is a flat stream
/// of function Enter/Exit markers and block entries; activations nest
/// properly, so the exact frequency of any path — Ball-Larus, overlapping or
/// interesting — can be recomputed from it (see wpp/GroundTruth.h).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_TRACE_H
#define OLPP_INTERP_TRACE_H

#include <cstdint>
#include <vector>

namespace olpp {

enum class TraceEventKind : uint8_t {
  Enter, ///< activation of function A begins
  Block, ///< the current activation entered block B (A = its function)
  Exit,  ///< activation of function A ends
};

struct TraceEvent {
  TraceEventKind Kind;
  uint32_t Func;
  uint32_t Block; // meaningful for Block events only
};

/// Receives trace events during interpretation.
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void onEnter(uint32_t Func) = 0;
  virtual void onBlock(uint32_t Func, uint32_t Block) = 0;
  virtual void onExit(uint32_t Func) = 0;
};

/// Records the full event stream in memory.
class VectorTrace : public TraceSink {
public:
  void onEnter(uint32_t Func) override {
    Events.push_back({TraceEventKind::Enter, Func, 0});
  }
  void onBlock(uint32_t Func, uint32_t Block) override {
    Events.push_back({TraceEventKind::Block, Func, Block});
  }
  void onExit(uint32_t Func) override {
    Events.push_back({TraceEventKind::Exit, Func, 0});
  }

  std::vector<TraceEvent> Events;
};

} // namespace olpp

#endif // OLPP_INTERP_TRACE_H
