//===--- ShardedProfile.h - Per-worker counter shards -----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded counter collection for parallel profiling runs. Each worker owns
/// a private ProfileRuntime shard — probes never contend on shared counters,
/// so the hot bump path stays a plain (non-atomic) add. After the batch, the
/// shards are combined by a deterministic stride-doubling tree merge:
///
///   round 1: shard[0] += shard[1], shard[2] += shard[3], ...
///   round 2: shard[0] += shard[2], shard[4] += shard[6], ...
///   ...until shard[0] holds the total.
///
/// The pairs within one round are disjoint, so each round can run its merges
/// concurrently on a TaskPool; the rounds themselves are ordered. Counter
/// merging is saturating addition (support/Saturate.h), which is associative
/// and commutative, so *any* merge order is bit-identical to the serial
/// left-to-right scan — the fixed tree order is belt and braces, making the
/// merge schedule itself reproducible rather than merely its result.
/// tests/interp/ShardMergeTest.cpp pins shard-count independence across the
/// whole workload suite and every instrumentation mode.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_SHARDEDPROFILE_H
#define OLPP_INTERP_SHARDEDPROFILE_H

#include "interp/ProfileRuntime.h"
#include "support/TaskPool.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace olpp {

/// A fixed set of per-worker ProfileRuntime shards plus the deterministic
/// tree merge that combines them.
class ShardedProfile {
public:
  /// Creates \p NumShards independent runtimes for a module with
  /// \p NumFunctions functions. NumShards must be at least 1.
  ShardedProfile(size_t NumFunctions, unsigned NumShards) {
    assert(NumShards >= 1 && "need at least one shard");
    Shards.reserve(NumShards);
    for (unsigned I = 0; I < NumShards; ++I)
      Shards.emplace_back(NumFunctions);
  }

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// The shard worker \p I writes into. Each concurrent writer must use a
  /// distinct shard (TaskPool::parallelFor's slot index is designed for
  /// exactly this).
  ProfileRuntime &shard(unsigned I) { return Shards[I]; }
  const ProfileRuntime &shard(unsigned I) const { return Shards[I]; }

  /// Declares function \p F's path-id space on every shard so all of them
  /// use the same (dense or spill) representation.
  void configurePathStore(uint32_t F, uint64_t IdSpace) {
    for (ProfileRuntime &S : Shards)
      S.configurePathStore(F, IdSpace);
  }

  /// Tree-merges every shard into shard 0 and returns it. When \p Pool is
  /// non-null the disjoint pairs of each round run concurrently; the result
  /// is bit-identical either way. All shards must be between runs (no
  /// interpreter mid-flight). Per-run hand-off scratch (shadow stack,
  /// pending return — which even a cleanly returning entry function leaves
  /// set) is discarded, mirroring mergeFrom's "transient state is not
  /// merged" contract; merged-away shards are left cleared.
  ProfileRuntime &merge(TaskPool *Pool = nullptr) {
    for (ProfileRuntime &S : Shards)
      S.resetTransient();
    const size_t N = Shards.size();
    for (size_t Stride = 1; Stride < N; Stride *= 2) {
      // Pairs (I, I + Stride) for I in 0, 2*Stride, 4*Stride, ... are
      // disjoint: safe to run in any order or in parallel.
      std::vector<size_t> Lhs;
      for (size_t I = 0; I + Stride < N; I += 2 * Stride)
        Lhs.push_back(I);
      auto MergeOne = [&](size_t I) {
        Shards[I].mergeFrom(Shards[I + Stride]);
        Shards[I + Stride].clear();
      };
      if (Pool && Lhs.size() > 1)
        Pool->parallelFor(Lhs.size(),
                          [&](size_t J, unsigned) { MergeOne(Lhs[J]); });
      else
        for (size_t I : Lhs)
          MergeOne(I);
    }
    return Shards[0];
  }

private:
  std::vector<ProfileRuntime> Shards;
};

} // namespace olpp

#endif // OLPP_INTERP_SHARDEDPROFILE_H
