//===--- CounterStore.h - Profile counter containers ------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter containers behind ProfileRuntime, engineered for the hot
/// probe path:
///
///   - PathCounterStore: per-function path-id counters. When the id space
///     is known and small enough (the common case: a function's path graph
///     numbers BL and loop-overlap paths in [0, NumPaths)), counters live
///     in a dense `std::vector<uint64_t>` and a bump is one indexed add.
///     Ids outside the dense window (huge id spaces, or ids observed before
///     the store was configured) spill to a hash map, so the store is
///     correct for any id sequence.
///
///   - FlatInterprocTable: the Type I / Type II 4-tuple counters in an
///     open-addressing, power-of-two, linear-probing table. Empty slots are
///     marked by Count == 0 (a live counter is always positive), so probing
///     touches one contiguous array instead of chasing unordered_map nodes.
///
/// Both containers iterate as (key, count) pairs with count > 0 and compare
/// equal to the plain map types they replaced, which keeps the differential
/// tests and the expected-counter oracles expressible as `==`.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_COUNTERSTORE_H
#define OLPP_INTERP_COUNTERSTORE_H

#include "support/Saturate.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace olpp {

/// Key of one interprocedural overlapping-path counter: the paper's
/// count[callee][callSite][calleeSidePathId][callerSidePathId].
/// For Type I, Inner is the callee *prefix* id and Outer the caller pre-path
/// id; for Type II, Inner is the callee *full* path id and Outer the caller
/// continuation-prefix id.
struct InterprocKey {
  uint32_t Callee = 0;
  uint32_t CallSite = 0;
  int64_t Inner = 0;
  int64_t Outer = 0;

  bool operator==(const InterprocKey &O) const {
    return Callee == O.Callee && CallSite == O.CallSite && Inner == O.Inner &&
           Outer == O.Outer;
  }
};

/// SplitMix64 finalizer: a full-avalanche 64-bit mix. The previous additive
/// Fibonacci mix collapsed badly for the small, dense ids that dominate real
/// keys (low bits of H barely depended on Inner/Outer), which turned the
/// open-addressed table into long probe chains.
inline uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

struct InterprocKeyHash {
  size_t operator()(const InterprocKey &K) const {
    uint64_t H = splitmix64((static_cast<uint64_t>(K.Callee) << 32) |
                            K.CallSite);
    H = splitmix64(H ^ static_cast<uint64_t>(K.Inner));
    H = splitmix64(H ^ static_cast<uint64_t>(K.Outer));
    return static_cast<size_t>(H);
  }
};

/// Per-function path-id counters: dense vector under a configured id space,
/// hash-map spill above it.
class PathCounterStore {
public:
  using Map = std::unordered_map<int64_t, uint64_t>;

  /// Ids at or above this many slots keep the hash-map representation even
  /// when the id space is known (a dense vector would waste memory on
  /// astronomically wide overlap numberings).
  static constexpr uint64_t DenseLimit = 1u << 18;

  /// Declares the id space [0, IdSpace). Switches to the dense form when
  /// IdSpace <= DenseLimit. Must be called before counting starts (existing
  /// counts are preserved but not migrated into the dense window).
  void configure(uint64_t IdSpace) {
    if (IdSpace > 0 && IdSpace <= DenseLimit && Dense.size() < IdSpace)
      Dense.resize(static_cast<size_t>(IdSpace), 0);
  }

  /// The hot path: count[Id] += 1, saturating at UINT64_MAX (a wrapped
  /// counter would report a near-zero frequency for the hottest path).
  void bump(int64_t Id) {
    if (static_cast<uint64_t>(Id) < Dense.size()) {
      uint64_t &Slot = Dense[static_cast<size_t>(Id)];
      if (Slot == 0)
        ++NonZero;
      saturatingBump(Slot);
    } else {
      uint64_t &Slot = Spill[Id];
      if (Slot == 0)
        ++NonZero;
      saturatingBump(Slot);
    }
  }

  uint64_t lookup(int64_t Id) const {
    if (static_cast<uint64_t>(Id) < Dense.size())
      return Dense[static_cast<size_t>(Id)];
    auto It = Spill.find(Id);
    return It == Spill.end() ? 0 : It->second;
  }

  /// Number of distinct ids with a positive count.
  size_t size() const { return NonZero; }
  bool empty() const { return NonZero == 0; }
  bool isDense() const { return !Dense.empty(); }

  void clear() {
    Dense.assign(Dense.size(), 0);
    Spill.clear();
    NonZero = 0;
  }

  /// Exports the positive counters as a plain map.
  Map toMap() const {
    Map Out;
    Out.reserve(NonZero);
    for (size_t I = 0; I < Dense.size(); ++I)
      if (Dense[I])
        Out.emplace(static_cast<int64_t>(I), Dense[I]);
    for (const auto &[Id, Count] : Spill)
      if (Count)
        Out.emplace(Id, Count);
    return Out;
  }

  /// Adds every counter of \p O into this store.
  void mergeFrom(const PathCounterStore &O) {
    for (const auto &[Id, Count] : O)
      add(Id, Count);
  }

  /// The merge primitive: count[Id] += Count, saturating at UINT64_MAX like
  /// bump(). Saturating addition is associative and commutative, so any
  /// merge order (serial scan, sharded tree) produces bit-identical totals.
  void add(int64_t Id, uint64_t Count) {
    if (Count == 0)
      return;
    if (static_cast<uint64_t>(Id) < Dense.size()) {
      if (Dense[static_cast<size_t>(Id)] == 0)
        ++NonZero;
      saturatingBump(Dense[static_cast<size_t>(Id)], Count);
    } else {
      uint64_t &Slot = Spill[Id];
      if (Slot == 0)
        ++NonZero;
      saturatingBump(Slot, Count);
    }
  }

  /// Iterates (id, count) pairs with count > 0: dense window first, then
  /// the spill map.
  class const_iterator {
  public:
    using value_type = std::pair<int64_t, uint64_t>;

    value_type operator*() const {
      if (DenseIdx < Store->Dense.size())
        return {static_cast<int64_t>(DenseIdx), Store->Dense[DenseIdx]};
      return {SpillIt->first, SpillIt->second};
    }
    const_iterator &operator++() {
      if (DenseIdx < Store->Dense.size()) {
        ++DenseIdx;
        skipZeros();
      } else {
        ++SpillIt;
      }
      return *this;
    }
    bool operator==(const const_iterator &O) const {
      return DenseIdx == O.DenseIdx && SpillIt == O.SpillIt;
    }
    bool operator!=(const const_iterator &O) const { return !(*this == O); }

  private:
    friend class PathCounterStore;
    const_iterator(const PathCounterStore *Store, size_t DenseIdx,
                   Map::const_iterator SpillIt)
        : Store(Store), DenseIdx(DenseIdx), SpillIt(SpillIt) {
      skipZeros();
    }
    void skipZeros() {
      while (DenseIdx < Store->Dense.size() && Store->Dense[DenseIdx] == 0)
        ++DenseIdx;
    }
    const PathCounterStore *Store;
    size_t DenseIdx;
    Map::const_iterator SpillIt;
  };

  const_iterator begin() const {
    return const_iterator(this, 0, Spill.begin());
  }
  const_iterator end() const {
    return const_iterator(this, Dense.size(), Spill.end());
  }

  bool operator==(const PathCounterStore &O) const {
    if (NonZero != O.NonZero)
      return false;
    for (const auto &[Id, Count] : *this)
      if (O.lookup(Id) != Count)
        return false;
    return true;
  }
  bool operator!=(const PathCounterStore &O) const { return !(*this == O); }

  /// Logical equality with the plain-map form (zero-valued map entries are
  /// ignored, matching the "only positive counters exist" invariant).
  bool operator==(const Map &M) const {
    size_t Positive = 0;
    for (const auto &[Id, Count] : M) {
      if (Count == 0)
        continue;
      ++Positive;
      if (lookup(Id) != Count)
        return false;
    }
    return Positive == NonZero;
  }
  bool operator!=(const Map &M) const { return !(*this == M); }

private:
  std::vector<uint64_t> Dense;
  Map Spill;
  size_t NonZero = 0;
};

/// Open-addressing (linear probing) table of InterprocKey -> count. An
/// empty slot has Count == 0; live counters are always positive.
class FlatInterprocTable {
  struct Slot {
    InterprocKey Key;
    uint64_t Count = 0;
  };

public:
  using Map = std::unordered_map<InterprocKey, uint64_t, InterprocKeyHash>;

  FlatInterprocTable() { Slots.resize(InitialCapacity); }

  /// The hot path: count[K] += Delta (Delta must be positive), saturating
  /// at UINT64_MAX. Saturation keeps the count positive, so a clamped slot
  /// can never be mistaken for an empty one.
  void bump(const InterprocKey &K, uint64_t Delta = 1) {
    assert(Delta > 0 && "a live counter must stay positive");
    if ((Size_ + 1) * 4 > Slots.size() * 3)
      grow();
    Slot &S = findSlot(Slots, K);
    if (S.Count == 0) {
      S.Key = K;
      ++Size_;
    }
    saturatingBump(S.Count, Delta);
  }

  uint64_t lookup(const InterprocKey &K) const {
    const Slot &S = findSlot(const_cast<std::vector<Slot> &>(Slots), K);
    return S.Count;
  }

  size_t size() const { return Size_; }
  bool empty() const { return Size_ == 0; }

  void clear() {
    Slots.assign(Slots.size(), Slot());
    Size_ = 0;
  }

  Map toMap() const {
    Map Out;
    Out.reserve(Size_);
    for (const Slot &S : Slots)
      if (S.Count)
        Out.emplace(S.Key, S.Count);
    return Out;
  }

  void mergeFrom(const FlatInterprocTable &O) {
    for (const auto &[Key, Count] : O)
      bump(Key, Count);
  }

  class const_iterator {
  public:
    using value_type = std::pair<InterprocKey, uint64_t>;

    value_type operator*() const { return {(*Slots)[Idx].Key, (*Slots)[Idx].Count}; }
    const_iterator &operator++() {
      ++Idx;
      skipEmpty();
      return *this;
    }
    bool operator==(const const_iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const const_iterator &O) const { return Idx != O.Idx; }

  private:
    friend class FlatInterprocTable;
    const_iterator(const std::vector<Slot> *Slots, size_t Idx)
        : Slots(Slots), Idx(Idx) {
      skipEmpty();
    }
    void skipEmpty() {
      while (Idx < Slots->size() && (*Slots)[Idx].Count == 0)
        ++Idx;
    }
    const std::vector<Slot> *Slots;
    size_t Idx;
  };

  const_iterator begin() const { return const_iterator(&Slots, 0); }
  const_iterator end() const { return const_iterator(&Slots, Slots.size()); }

  bool operator==(const FlatInterprocTable &O) const {
    if (Size_ != O.Size_)
      return false;
    for (const auto &[Key, Count] : *this)
      if (O.lookup(Key) != Count)
        return false;
    return true;
  }
  bool operator!=(const FlatInterprocTable &O) const { return !(*this == O); }

  bool operator==(const Map &M) const {
    size_t Positive = 0;
    for (const auto &[Key, Count] : M) {
      if (Count == 0)
        continue;
      ++Positive;
      if (lookup(Key) != Count)
        return false;
    }
    return Positive == Size_;
  }
  bool operator!=(const Map &M) const { return !(*this == M); }

private:
  static constexpr size_t InitialCapacity = 64; // power of two

  static Slot &findSlot(std::vector<Slot> &Slots, const InterprocKey &K) {
    size_t Mask = Slots.size() - 1;
    size_t I = InterprocKeyHash()(K) & Mask;
    while (Slots[I].Count != 0 && !(Slots[I].Key == K))
      I = (I + 1) & Mask;
    return Slots[I];
  }

  void grow() {
    std::vector<Slot> Next(Slots.size() * 2);
    for (const Slot &S : Slots)
      if (S.Count) {
        Slot &D = findSlot(Next, S.Key);
        D.Key = S.Key;
        D.Count = S.Count;
      }
    Slots.swap(Next);
  }

  std::vector<Slot> Slots;
  size_t Size_ = 0;
};

} // namespace olpp

#endif // OLPP_INTERP_COUNTERSTORE_H
