//===--- TraceTier.h - Hot-path tracing tier --------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast engine's hot-path tracing tier. The runtime already computes
/// hot-path identity on every backedge (the overlapping path ids); this
/// layer turns that signal into straight-line execution:
///
///   - A TraceRecorder is armed when an OL path-id completion crosses the
///     hotness threshold (ProfileRuntime::TraceTierState). At the next
///     taken backward branch of that function the dispatch loop swaps the
///     recorder in as its TraceSink and captures exactly one loop pass —
///     anchor to anchor at equal call depth — as an event stream plus a
///     snapshot of the profiling state at entry.
///
///   - compileTrace() replays the recorded pass over the ExecPlan and
///     compiles it into a CompiledTrace: a straight-line step vector in
///     which every probe is elided. Probe state (the Ball-Larus register,
///     the loop overlap regions, the interprocedural Type I/II registers,
///     the shadow stack and pending return) evolves deterministically
///     along a fixed path, so the compiler simulates it symbolically:
///     each component is either a compile-time constant or an
///     entry-relative delta, promoted to a constant by an entry *guard*
///     against the recording snapshot the first time its exact value is
///     consumed. Counter bumps become a side table applied once at trace
///     exit (one saturating add per counter instead of one bump per pass),
///     and state writes become a positional effect list applied lazily at
///     exit — the accumulator registers live in compile-time symbolic form
///     across the whole trace instead of memory.
///
///   - runCompiledTrace() executes passes until an entry guard, a branch
///     guard, a fault condition or the fuel precondition stops it, then
///     *deopts before* the diverging step: it applies the per-position
///     accounting prefix, the positional state effects and the counter
///     side table, points the frame at the step's pc and returns to the
///     ordinary dispatch loop, which re-executes that step with identical
///     semantics. DynCounts and every counter store stay bit-exact with
///     the untraced engine; tests/interp/TraceTierTest.cpp and the fuzz
///     trace oracle enforce this at every possible exit position.
///
/// Compiled traces are cached on the ExecPlan, segregated by the trace
/// settings that recorded them (PlanTraceCacheSet below), so every
/// interpreter of a content-identical module running under the same
/// settings shares them, exactly like the plan itself — while runs with a
/// different threshold (or --no-traces) never see them.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_TRACETIER_H
#define OLPP_INTERP_TRACETIER_H

#include "interp/ExecPlan.h"
#include "interp/ProfileRuntime.h"
#include "interp/Trace.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace olpp {

//===----------------------------------------------------------------------===//
// Fast-engine frame state (shared between Interpreter.cpp and the trace
// executor; the reference engine keeps its own Frame in Interpreter.cpp)
//===----------------------------------------------------------------------===//

/// Per-loop overlap-region registers.
struct LoopRegs {
  int64_t Ro = 0;
  int64_t Ol = 0;
  bool Active = false;
};

/// One activation record of the fast engine. Registers and loop slots live
/// in pooled stacks indexed by RegBase/LoopBase, so a call allocates
/// nothing.
struct FastFrame {
  uint32_t FuncId = 0;
  uint32_t Pc = 0;
  uint32_t Block = 0; ///< current block id (traces and diagnostics)
  uint32_t RegBase = 0;
  uint32_t LoopBase = 0;
  Reg RetDst = NoReg;

  int64_t R = 0;
  bool ActiveI = false;
  bool HaveCaller = false;
  int64_t RI = 0, OlI = 0, CallerPre = 0;
  uint32_t CallSiteI = 0;
  bool ActiveII = false;
  int64_t RoII = 0, OlII = 0, CalleePathII = 0;
  uint32_t CallSiteII = 0, CalleeII = 0;
};

/// Flat {data,size} view of one global (hoisted out of the vector<>
/// indirection once per run).
struct GlobalView {
  int64_t *Data;
  uint64_t Size;
};

//===----------------------------------------------------------------------===//
// Per-run statistics
//===----------------------------------------------------------------------===//

/// One run's tracing-tier counters (RunResult::Trace).
struct TraceTierStats {
  uint64_t Recorded = 0;   ///< anchor traces compiled and installed this run
  uint64_t Aborted = 0;    ///< recordings abandoned (caps, unsupported shape)
  uint64_t Enters = 0;     ///< times the dispatch loop entered a trace
  uint64_t Passes = 0;     ///< full straight-line passes executed
  /// Enters rejected by the entry-guard check before a single pass (or
  /// bridge segment) ran. Distinct from Deopts: an entry reject costs one
  /// guard sweep and nothing else, while a mid-pass deopt abandons partial
  /// straight-line work. The retirement heuristic and the bench columns
  /// consume them separately.
  uint64_t EntryRejects = 0;
  uint64_t Deopts = 0;     ///< mid-pass guard exits back to the plan
  uint64_t TraceSteps = 0; ///< base-step equivalents retired inside traces
  uint64_t Retired = 0;    ///< traces marked dead for persistent churn
  uint64_t Bridges = 0;      ///< bridge traces compiled and linked this run
  uint64_t BridgeEnters = 0; ///< side exits continued into a bridge trace
  /// Root traces swapped for their no-DWE alternate because the observed
  /// deopt rate crossed RunConfig::TraceDWEGate (wrap-recovery replay was
  /// costing more than the eliminated writes saved).
  uint64_t DWEGated = 0;
};

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

/// Profiling state at the recording anchor; the compiler consults it to
/// resolve entry-relative symbolic values and emits a guard for every
/// component it reads.
struct TraceSnapshot {
  FastFrame Fr;                ///< anchor frame's probe registers
  std::vector<LoopRegs> Loops; ///< anchor function's loop slots
  std::vector<ProfileRuntime::ShadowEntry> Shadow;
  ProfileRuntime::PendingReturn Pending;
};

/// Captures one loop pass (anchor to anchor at equal depth) as the event
/// stream the fast engine already emits for TraceSinks. Swapped in as the
/// dispatch loop's sink for the duration of the recording; cheap enough to
/// live on the runFast stack.
class TraceRecorder final : public TraceSink {
public:
  /// Events per recording before the attempt is abandoned. Generous: one
  /// event per block entry / call / return of a single loop pass.
  static constexpr size_t MaxEvents = 4096;

  void begin(uint32_t FuncId, uint32_t AnchorPc, uint32_t AnchorBlock,
             const FastFrame &Anchor, const LoopRegs *Slots, uint32_t NumSlots,
             const ProfileRuntime &Prof) {
    Recording = true;
    Abort = false;
    Bridge = false;
    Depth = 0;
    Func = FuncId;
    Pc = AnchorPc;
    Block = AnchorBlock;
    EndF = FuncId;
    EndP = AnchorPc;
    Events.clear();
    Snap.Fr = Anchor;
    Snap.Loops.assign(Slots, Slots + NumSlots);
    Snap.Shadow = Prof.ShadowStack;
    Snap.Pending = Prof.Pending;
  }

  /// Arms a *bridge* recording: starts at a parent trace's side exit (the
  /// deopt resume point, usually mid-block) and ends when control next
  /// reaches the parent's anchor at equal depth. The live state at the
  /// call site *is* the snapshot — the caller invokes this at the exact
  /// resume point, before any further instruction runs.
  void beginBridge(uint32_t FuncId, uint32_t StartPc, uint32_t StartBlock,
                   uint32_t EndFunc, uint32_t EndPc, const FastFrame &Cur,
                   const LoopRegs *Slots, uint32_t NumSlots,
                   const ProfileRuntime &Prof) {
    begin(FuncId, StartPc, StartBlock, Cur, Slots, NumSlots, Prof);
    Bridge = true;
    EndF = EndFunc;
    EndP = EndPc;
  }

  void clear() { Recording = false; }

  void onEnter(uint32_t F) override {
    ++Depth;
    push(TraceEventKind::Enter, F, 0);
  }
  void onBlock(uint32_t F, uint32_t B) override {
    push(TraceEventKind::Block, F, B);
  }
  void onExit(uint32_t F) override {
    if (Depth == 0)
      Abort = true; // the anchor frame returned: not a loop pass
    else
      --Depth;
    push(TraceEventKind::Exit, F, 0);
  }

  bool recording() const { return Recording; }
  bool aborted() const { return Abort; }
  bool bridge() const { return Bridge; }
  int depth() const { return Depth; }
  uint32_t anchorFunc() const { return Func; }
  uint32_t anchorPc() const { return Pc; }
  uint32_t anchorBlock() const { return Block; }
  uint32_t endFunc() const { return EndF; }
  uint32_t endPc() const { return EndP; }
  const std::vector<TraceEvent> &events() const { return Events; }
  const TraceSnapshot &snapshot() const { return Snap; }

private:
  void push(TraceEventKind K, uint32_t F, uint32_t B) {
    if (Events.size() >= MaxEvents)
      Abort = true;
    else
      Events.push_back({K, F, B});
  }

  bool Recording = false;
  bool Abort = false;
  bool Bridge = false;
  int Depth = 0;
  uint32_t Func = 0, Pc = 0, Block = 0;
  uint32_t EndF = 0, EndP = 0;
  std::vector<TraceEvent> Events;
  TraceSnapshot Snap;
};

//===----------------------------------------------------------------------===//
// Compiled form
//===----------------------------------------------------------------------===//

/// Straight-line trace step opcodes. Probes and unconditional branches are
/// fully elided (they exist only in the accounting prefixes, the effect
/// list and the bump table); conditional branches become guard steps.
enum class TOp : uint8_t {
  Const, ///< Dst = Imm
  Move,  ///< Dst = Regs[Src0]
  Add,
  Sub,
  Mul,
  Div, ///< deopts on zero divisor / INT64_MIN  -1
  Mod, ///< deopts on zero divisor / INT64_MIN % -1
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  AddImm, ///< Dst = Regs[Src0] + Imm (trace-local constant folding)
  AndImm, ///< Dst = Regs[Src0] & Imm
  CmpEqImm,
  CmpNeImm,
  CmpLtImm,
  CmpLeImm,
  CmpGtImm,
  CmpGeImm,
  Neg,
  Not,
  LoadG,    ///< Dst = global[Aux]
  StoreG,   ///< global[Aux] = Regs[Src0]
  LoadArr,  ///< Dst = global[Aux][Regs[Src0]]; deopts out of bounds
  StoreArr, ///< global[Aux][Regs[Src0]] = Regs[Src1]; deopts out of bounds
  GuardTrue,   ///< recorded taken: deopt if Regs[Src0] == 0
  GuardFalse,  ///< recorded not taken: deopt if Regs[Src0] != 0
  GuardCallee, ///< indirect call target: deopt if Regs[Src0] != Aux
  Call,        ///< push a frame for Aux, copy ArgsCount args via Args
  Ret,         ///< pop the frame; Src0 is the value reg (NoReg: void)
};

/// An entry guard: a component of the profiling state the compiled trace
/// assumed a concrete value (or range) for. Checked against live state
/// before every pass; a miss exits at the pass boundary with zero cost.
enum class GuardKind : uint8_t {
  R,          ///< Fr.R == V
  LoopActive, ///< Loops[Slot].Active == (V != 0)
  LoopRo,     ///< Loops[Slot].Ro == V
  LoopOlEq,   ///< Loops[Slot].Ol == V
  LoopOlLt,   ///< Loops[Slot].Ol < V (monotone counter range guard)
  ActiveI,    ///< Fr.ActiveI == (V != 0)
  HaveCaller,
  RI,
  OlIEq,
  OlILt,
  CallerPre,
  CallSiteI,
  ActiveII,
  RoII,
  OlIIEq,
  OlIILt,
  CalleePathII,
  CallSiteII,
  CalleeII,
  PendingValid,  ///< Prof.Pending.Valid == (V != 0)
  PendingCallee, ///< Prof.Pending.Callee == Slot
  PendingPathId, ///< Prof.Pending.PathId == V
  ShadowDepth,   ///< Prof.ShadowStack.size() == (uint64_t)V
  ShadowSiteAt,  ///< ShadowStack[size-1-Slot].CallSite == (uint32_t)V
  ShadowPreAt,   ///< ShadowStack[size-1-Slot].CallerPre == V
};

struct TraceGuard {
  GuardKind Kind;
  uint32_t Slot = 0;
  int64_t V = 0;
};

/// One deferred profiling-state write. Applied in list order; BaseIdx (the
/// op's position in base-step order) gates partial application on a
/// mid-pass deopt, and Depth names the in-trace frame the write targets
/// (0 = the anchor frame; deeper frames only exist while their call is on
/// the stack).
enum class EffectKind : uint8_t {
  SetR,
  AddR, ///< += V: the component is still entry-relative at this point
  SetRI,
  AddRI,
  SetOlI,
  AddOlI,
  SetCallerPre,
  SetCallSiteI, ///< V carries the value
  SetActiveI,   ///< V != 0
  SetHaveCaller,
  SetRoII,
  AddRoII,
  SetOlII,
  AddOlII,
  SetCalleePathII,
  SetCallSiteII, ///< V carries the value
  SetCalleeII,   ///< V carries the value
  SetActiveII,
  SetLoopRo, ///< loop slot Slot
  AddLoopRo, ///< loop slot Slot += V (entry-relative component)
  SetLoopOl,
  AddLoopOl,
  SetLoopActive,
  ShadowPush, ///< push {CallSite = Slot, CallerPre = V}
  ShadowPop,
  PendingSet,   ///< Valid = true, Callee = Slot, PathId = V
  PendingClear, ///< Valid = false
};

struct TraceEffect {
  EffectKind Kind;
  uint16_t Depth = 0;
  uint32_t Slot = 0;
  uint32_t BaseIdx = 0;
  int64_t V = 0;
};

/// One elided counter bump. At trace exit the store receives one
/// saturating add of (full passes + 1 if the partial pass got past it).
struct TraceBump {
  uint8_t Table = 0; ///< 0 = path counters, 1 = Type I, 2 = Type II
  uint32_t FuncId = 0;
  uint32_t BaseIdx = 0;
  int64_t Id = 0; ///< path id (Table 0)
  InterprocKey Key;
};

/// One runtime step of the straight line.
struct TraceStep {
  TOp Op;
  Reg Dst = 0, Src0 = 0, Src1 = 0;
  uint32_t Aux = 0;       ///< global id / callee id
  uint32_t ArgsCount = 0; ///< Call only
  int64_t Imm = 0;
  const Reg *Args = nullptr; ///< Call only; points into the plan's ArgPool
};

/// Resume point and accounting prefix of one runtime step. Cum* hold the
/// totals of every base step strictly before this one (ghosts included),
/// which is exactly the deopt-before accounting: the ordinary loop
/// re-executes this step and charges it normally.
struct TraceStepMeta {
  uint32_t FuncId = 0;
  uint32_t Pc = 0;
  uint32_t Block = 0;
  uint32_t BaseIdx = 0;
  uint32_t CumSteps = 0;
  uint32_t CumBase = 0;
  uint32_t CumPCost = 0;
  uint32_t CumBlocks = 0;
  uint32_t CumCalls = 0;
};

/// A register write the optimizer removed from the straight line. The
/// surviving steps never read it, but a mid-pass deopt landing inside its
/// live window must still see the value in the anchor frame's registers,
/// so the executor materializes it on that deopt path. Windows are step
/// indices into the *optimized* step vector; entry (Begin, End, R) means
/// "a deopt at step k with Begin <= k <= End must set anchor reg R".
/// Entries are sorted by Begin and applied in order, so a later removed
/// write to the same register correctly overwrites an earlier one.
struct TraceRecovery {
  uint32_t Begin = 0;
  uint32_t End = 0;
  Reg R = 0;
  /// Copy == false: R = V. Copy == true: R = anchor reg Src (the optimizer
  /// proved Src holds the removed value throughout the window).
  bool Copy = false;
  /// The cyclic half of a whole-pass-dead write's window: inside [Begin,
  /// End] the value flowed in from the *previous* pass, so the executor
  /// applies the entry only once the current segment run has completed a
  /// pass — and re-applies every Wrap entry wholesale on a clean
  /// pass-boundary exit, so the interpreter resumes with the write's
  /// final value in place.
  bool Wrap = false;
  Reg Src = 0;
  int64_t V = 0;
};

/// Per-entry-guard pass budget, computed by the optimizer from the guard's
/// evolution under PassEffects. Lets the executor check guards once per
/// *batch* of passes instead of once per pass: a component untouched by a
/// pass can never fail later (Inf); a Set-evolving component either keeps
/// passing forever (Inf) or fails on the second pass (One); a monotone
/// Add under a Lt bound admits exactly ceil((V - live) / Delta) passes
/// (DynLt).
struct GuardBudget {
  enum Mode : uint8_t { Inf, One, DynLt };
  Mode M = Inf;
  int64_t Delta = 0; ///< DynLt: per-pass increment (> 0)
};

/// A compiled straight-line loop pass, anchored at a taken backward branch
/// target — or a *bridge*: a straight line from a parent trace's side exit
/// back to the parent's anchor (IsBridge below). Immutable after
/// compilation; references only plan-owned data, so it is safe to share
/// across every interpreter of the plan.
struct CompiledTrace {
  /// Anchor traces: the loop anchor. Bridges: FuncId/AnchorPc/AnchorBlock
  /// are the *parent's* anchor (where a completed bridge pass lands);
  /// StartPc/StartBlock are the side-exit resume point the bridge begins
  /// at.
  uint32_t FuncId = 0;
  uint32_t AnchorPc = 0;
  uint32_t AnchorBlock = 0;
  uint32_t StartPc = 0;
  uint32_t StartBlock = 0;
  bool IsBridge = false;

  std::vector<TraceGuard> Guards;
  std::vector<TraceStep> Steps;
  std::vector<TraceStepMeta> Meta; ///< parallel to Steps
  std::vector<TraceEffect> Effects;     ///< full, BaseIdx order (deopt path)
  std::vector<TraceEffect> PassEffects; ///< collapsed net effect (pass end)
  std::vector<TraceBump> Bumps;

  /// Optimizer products (interp/TraceOpt.h). Empty on an unoptimized
  /// trace; the executor falls back to per-pass guard checks when Budgets
  /// is empty.
  std::vector<TraceRecovery> Recov;
  std::vector<GuardBudget> Budgets; ///< parallel to Guards when Budgeted
  bool Budgeted = false; ///< budget stage ran (Budgets.size()==Guards.size())

  /// Whole-pass accounting totals (ghosts included).
  uint64_t PassSteps = 0;
  uint64_t PassBase = 0;
  uint64_t PassPCost = 0;
  uint64_t PassBlocks = 0;
  uint64_t PassCalls = 0;
  uint32_t PassBaseSteps = 0; ///< base steps per pass (bump/effect threshold)

  /// False when one pass leaves global hand-off state (shadow stack)
  /// changed: the executor then exits at the first pass boundary instead
  /// of looping.
  bool MultiPass = true;

  /// Adaptive retirement. A trace whose guards keep failing before one
  /// full pass completes is pure entry/deopt churn — worse than plain
  /// interpretation — so the executor tallies lifetime enters and passes
  /// (relaxed; approximate under concurrency is fine, the decision is a
  /// heuristic and counters stay exact either way) and marks the trace
  /// dead once RetireCheckEnters enters have averaged under one completed
  /// pass each. lookup() hides dead traces, so the loop returns to the
  /// ordinary threaded dispatch.
  static constexpr uint64_t RetireCheckEnters = 64;
  mutable std::atomic<uint64_t> LifeEnters{0};
  mutable std::atomic<uint64_t> LifePasses{0};
  mutable std::atomic<bool> Dead{false};

  /// Deopt-rate gate for wrap-recovery dead-write elimination. A root
  /// trace whose optimized body carries cyclic Wrap recovery windows pays
  /// a replay on every deopt (and a materialization on every clean exit);
  /// past a deopt rate that replay outweighs the removed writes. When the
  /// gate is armed (RunConfig::TraceDWEGate > 0) the install path
  /// pre-compiles the same recording with the DWE stage masked off and
  /// parks it here; once LifeDeopts/LifeEnters crosses the configured rate
  /// the cache atomically republishes the anchor with the alternate
  /// (PlanTraceCache::swapNoDWE) and this trace dies. HasWrapDWE is
  /// immutable after install — the executor's gate check reads it without
  /// synchronization; NoDWEAlt is only touched under the cache's install
  /// lock.
  bool HasWrapDWE = false;
  mutable std::unique_ptr<CompiledTrace> NoDWEAlt;
  mutable std::atomic<uint64_t> LifeDeopts{0};

  /// Side-exit linking (trace trees). Per-step tables sized Steps.size(),
  /// allocated by the cache at install time (prepareRuntime). ExitDeopts
  /// counts anchor-depth mid-pass deopts at each step; crossing the link
  /// threshold asks the interpreter to record a bridge from that exit, and
  /// the sentinel marks an exit whose bridge recording failed (never asked
  /// again). BridgeAt publishes the stitched-in bridge, first install
  /// wins.
  static constexpr uint32_t NoBridgeSentinel = UINT32_MAX;
  std::unique_ptr<std::atomic<uint32_t>[]> ExitDeopts;
  std::unique_ptr<std::atomic<const CompiledTrace *>[]> BridgeAt;

  /// Allocates the runtime link tables (idempotent).
  void prepareRuntime() {
    if (ExitDeopts || Steps.empty())
      return;
    ExitDeopts.reset(new std::atomic<uint32_t>[Steps.size()]);
    BridgeAt.reset(new std::atomic<const CompiledTrace *>[Steps.size()]);
    for (size_t I = 0; I < Steps.size(); ++I) {
      ExitDeopts[I].store(0, std::memory_order_relaxed);
      BridgeAt[I].store(nullptr, std::memory_order_relaxed);
    }
  }
};

//===----------------------------------------------------------------------===//
// Per-plan trace cache
//===----------------------------------------------------------------------===//

/// The compiled traces of one ExecPlan, keyed by anchor (function, pc).
/// Readers are lock-free: each function's anchor list is published through
/// an acquire/release atomic and superseded lists are retired, never
/// freed, until the plan dies (a handful of small vectors). Writers
/// serialize on a mutex; the first trace installed for an anchor wins.
class PlanTraceCache {
public:
  explicit PlanTraceCache(size_t NumFuncs);
  ~PlanTraceCache();

  PlanTraceCache(const PlanTraceCache &) = delete;
  PlanTraceCache &operator=(const PlanTraceCache &) = delete;

  /// The live installed trace anchored at (F, Pc), or null (missing or
  /// retired). Lock-free.
  const CompiledTrace *lookup(uint32_t F, uint32_t Pc) const {
    const AnchorList *L = Published[F].load(std::memory_order_acquire);
    if (!L)
      return nullptr;
    for (const auto &E : L->Entries)
      if (E.first == Pc)
        return E.second->Dead.load(std::memory_order_relaxed) ? nullptr
                                                              : E.second;
    return nullptr;
  }

  /// True when the anchor holds any trace, dead ones included. Recording
  /// consults this so a retired trace's anchor is never re-recorded (the
  /// install would fail anyway — first trace per anchor wins).
  bool occupied(uint32_t F, uint32_t Pc) const {
    const AnchorList *L = Published[F].load(std::memory_order_acquire);
    if (!L)
      return false;
    for (const auto &E : L->Entries)
      if (E.first == Pc)
        return true;
    return false;
  }

  /// Publishes \p T under its anchor. Returns false (and frees T) when the
  /// anchor already has a trace.
  bool install(std::unique_ptr<CompiledTrace> T);

  /// Stitches \p B in as the bridge for \p Parent's side exit at step
  /// \p Step. First bridge per exit wins; returns false (and frees B) when
  /// the exit already has one. The cache owns the bridge for the plan's
  /// lifetime, like any other trace.
  bool installBridge(const CompiledTrace &Parent, uint32_t Step,
                     std::unique_ptr<CompiledTrace> B);

  /// Deopt-rate DWE gate: republishes \p Root's anchor entry with its
  /// pre-compiled no-DWE alternate and marks \p Root dead. Returns the
  /// newly published trace, or null when the swap is impossible (no
  /// alternate, Root already dead/retired, or a concurrent swap won).
  /// Unlike churn retirement the anchor is NOT blacklisted — the
  /// replacement keeps executing it.
  const CompiledTrace *swapNoDWE(const CompiledTrace &Root);

  /// Every trace this cache owns (anchors and bridges, dead ones
  /// included), in install order. Test/dump helper; takes the install
  /// lock.
  std::vector<const CompiledTrace *> all() const;

private:
  struct AnchorList {
    std::vector<std::pair<uint32_t, const CompiledTrace *>> Entries;
  };

  std::vector<std::atomic<const AnchorList *>> Published;
  mutable std::mutex InstallMu;
  std::vector<std::unique_ptr<const AnchorList>> Retired;
  std::vector<std::unique_ptr<const CompiledTrace>> Owned;
};

/// Everything that shapes what a recorded trace *is*: two runs whose
/// settings differ in any field must never share compiled traces, because
/// the traces themselves differ (recording threshold changes which anchors
/// get recorded and when; the optimizer stage mask and the planted fault
/// change the compiled bodies; the link threshold changes which bridges
/// exist).
struct TraceSettings {
  uint32_t Threshold = 32;     ///< hotness threshold (0 = first completion)
  uint32_t LinkThreshold = 8;  ///< side-exit deopts before bridging (0 = off)
  uint32_t OptStages = 0;      ///< TraceOpt stage mask (0 = unoptimized)
  bool FaultDropGuard = false; ///< fuzz-only planted optimizer bug
  /// Deopts per 100 enters above which a wrap-DWE trace is swapped for its
  /// no-DWE alternate (0 = gate off). Part of the key: the gate changes
  /// which compiled bodies an anchor ends up running, so A/B lanes with
  /// different gates must not share traces.
  uint32_t DWEGate = 100;

  bool operator==(const TraceSettings &O) const {
    return Threshold == O.Threshold && LinkThreshold == O.LinkThreshold &&
           OptStages == O.OptStages && FaultDropGuard == O.FaultDropGuard &&
           DWEGate == O.DWEGate;
  }
};

/// The trace caches of one ExecPlan, keyed by the trace settings that
/// recorded them. Plans are shared process-wide by content fingerprint
/// (interp/PlanCache.h); a single cache per plan would let traces recorded
/// under one settings tuple leak into later runs of an identical-content
/// module with different settings — a different threshold, a different
/// optimizer stage mask, or tracing disabled — silently changing the
/// execution tier. Each distinct settings tuple therefore gets its own
/// PlanTraceCache, created on first use; a run with tracing off never asks
/// for one and so never sees a trace.
///
/// Plans are shared as `const`, hence the interior mutability; the
/// returned cache is itself thread-safe, and the set's own lock is taken
/// once per run, not per dispatch.
class PlanTraceCacheSet {
public:
  explicit PlanTraceCacheSet(size_t NumFuncs) : NumFuncs(NumFuncs) {}

  PlanTraceCacheSet(const PlanTraceCacheSet &) = delete;
  PlanTraceCacheSet &operator=(const PlanTraceCacheSet &) = delete;

  /// The cache holding the traces recorded under \p S, created on first
  /// use. Never null.
  PlanTraceCache *forSettings(const TraceSettings &S) const {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &E : Caches)
      if (E.first == S)
        return E.second.get();
    Caches.emplace_back(S, std::make_unique<PlanTraceCache>(NumFuncs));
    return Caches.back().second.get();
  }

private:
  size_t NumFuncs;
  mutable std::mutex Mu;
  mutable std::vector<
      std::pair<TraceSettings, std::unique_ptr<PlanTraceCache>>>
      Caches;
};

//===----------------------------------------------------------------------===//
// Compile and execute
//===----------------------------------------------------------------------===//

/// Compiles the recorded pass into a CompiledTrace, or returns null when
/// the shape is unsupported (step cap exceeded, event mismatch, a probe
/// consulting state below the snapshotted shadow stack). The recorder must
/// have stopped at its anchor with depth 0.
std::unique_ptr<CompiledTrace> compileTrace(const ExecPlan &P,
                                            const TraceRecorder &Rec);

/// Everything runCompiledTrace needs from the dispatch loop. The
/// accounting references alias runFast's hot locals; the executor only
/// touches them at pass boundaries and exits.
struct TraceRunIO {
  std::vector<FastFrame> &Frames;
  std::vector<int64_t> &RegStack;
  std::vector<LoopRegs> &LoopStack;
  const GlobalView *Globals;
  ProfileRuntime &Prof;
  const ExecPlan &Plan;
  uint64_t MaxSteps;
  uint32_t MaxCallDepth;
  uint64_t &Steps;
  uint64_t &Base;
  uint64_t &PCost;
  uint64_t &Blocks;
  uint64_t &Calls;
  TraceTierStats &Stats;

  /// Side-exit linking policy: a side exit whose anchor-depth deopt count
  /// reaches exactly LinkThreshold requests a bridge recording (0 = never
  /// link).
  uint32_t LinkThreshold = 0;

  /// Deopt-rate DWE gate threshold, deopts per 100 enters (0 = gate off).
  uint32_t DWEGate = 0;

  /// Out: set when the run wants a bridge recorded for Parent's side exit
  /// at step BridgeStep. The interpreter arms the recorder at the resume
  /// point it is about to dispatch from.
  const CompiledTrace *BridgeParent = nullptr;
  uint32_t BridgeStep = 0;

  /// Out: set when the root's lifetime deopt rate crossed DWEGate and the
  /// trace carries wrap-recovery DWE; the interpreter asks the cache to
  /// swap in the no-DWE alternate (PlanTraceCache::swapNoDWE).
  const CompiledTrace *DWETripped = nullptr;
};

/// Runs \p T until a guard, fault condition or the fuel precondition stops
/// it, then restores exact engine state (accounting, counters, probe
/// state, frame resume point) and returns. The caller reloads its cached
/// frame view and dispatches; the next executed instruction behaves
/// identically to the untraced engine.
void runCompiledTrace(const CompiledTrace &T, TraceRunIO &IO);

} // namespace olpp

#endif // OLPP_INTERP_TRACETIER_H
