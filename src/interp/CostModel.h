//===--- CostModel.h - Dynamic cost accounting ------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper reports instrumentation overhead as the slowdown of the
/// instrumented binary. Our substrate is an interpreter, so we reproduce the
/// measurement as a dynamic-cost model: every ordinary IR instruction costs
/// one unit, and each executed probe micro-op is charged what its machine
/// code equivalent would roughly cost. Overhead% = probe units / base units.
///
/// The absolute constants are knobs; the *relationships* are what matter for
/// reproducing the paper's curves:
///   - counter bumps (hash-table increment) cost more than register updates,
///   - interprocedural 4-tuple bumps cost more than flat counter bumps,
///   - an inactive conditional probe still pays its test (this is why
///     overhead grows with the degree of overlap even on iterations that
///     never flush).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_COSTMODEL_H
#define OLPP_INTERP_COSTMODEL_H

#include <cstdint>

namespace olpp {
namespace cost {

/// Every ordinary (non-probe) IR instruction.
inline constexpr uint64_t Instr = 1;

/// Unconditional register update (r = c, r += c, arm component).
inline constexpr uint64_t RegOp = 1;

/// The test of a conditional probe op that found its region inactive.
inline constexpr uint64_t InactiveTest = 1;

/// Flat hash-table counter increment (count[id]++).
inline constexpr uint64_t CounterBump = 4;

/// Four-tuple interprocedural counter increment.
inline constexpr uint64_t TupleBump = 6;

/// Shadow-stack push/pop or pending-return hand-off.
inline constexpr uint64_t StackOp = 2;

} // namespace cost
} // namespace olpp

#endif // OLPP_INTERP_COSTMODEL_H
