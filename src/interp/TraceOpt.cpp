//===--- TraceOpt.cpp - Trace-local optimizer -----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceOpt.h"

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace olpp {
namespace {

// Wraparound helpers, identical to the compiler/executor (TraceTier.cpp):
// folding a step must produce the exact value the step would have.
inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(0 - static_cast<uint64_t>(A));
}

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();

//===----------------------------------------------------------------------===//
// Forward value pass: copy propagation, constant folding, interval facts,
// store-to-load forwarding, post-guard facts, guard elimination.
//===----------------------------------------------------------------------===//

/// What the pass knows about one register of one in-trace frame at the
/// current position. A write replaces the whole record and bumps the
/// register's version; facts learned from a passed guard refine the record
/// in place (no version bump — the value did not change, so existing
/// copies of it stay valid and see the refinement through resolution).
struct RegInfo {
  enum K : uint8_t { Unknown, Const, Copy } Kind = Unknown;
  int64_t C = 0;       ///< Const
  Reg Src = 0;         ///< Copy: the root register (never itself a Copy)
  uint32_t SrcVer = 0; ///< Copy: Src's version when the copy was made
  bool NonZero = false;
  /// Value interval [Lo, Hi] (the trace-local mirror of the analysis
  /// value-range domain; guards refine it, AddImm shifts it).
  bool HasIv = false;
  int64_t Lo = 0, Hi = 0;
  /// Compare provenance: this register holds the 0/1 result of
  /// (CmpOp CmpSrc, CmpImm); a guard on it refines CmpSrc's interval.
  bool HasCmp = false;
  TOp CmpOp = TOp::CmpEqImm;
  Reg CmpSrc = 0;
  uint32_t CmpSrcVer = 0;
  int64_t CmpImm = 0;
};

inline RegInfo makeConst(int64_t V) {
  RegInfo I;
  I.Kind = RegInfo::Const;
  I.C = V;
  I.NonZero = V != 0;
  I.HasIv = true;
  I.Lo = I.Hi = V;
  return I;
}

/// One in-trace frame's value state. Callee frames start zero-initialized
/// (the pooled register stack grows by value-initialization), so their
/// default lattice is Const 0; the anchor frame's is Unknown.
struct FrameVal {
  bool ZeroInit = false;
  Reg RetDst = NoReg; ///< caller register a Ret from this frame writes
  std::vector<RegInfo> Info;
  std::vector<uint32_t> Ver;

  void grow(Reg R) {
    if (R < Info.size())
      return;
    const size_t N = static_cast<size_t>(R) + 1;
    if (ZeroInit)
      Info.resize(N, makeConst(0));
    else
      Info.resize(N);
    Ver.resize(N, 0);
  }
  RegInfo &at(Reg R) {
    grow(R);
    return Info[R];
  }
  uint32_t ver(Reg R) {
    grow(R);
    return Ver[R];
  }
  void write(Reg R, const RegInfo &I) {
    grow(R);
    ++Ver[R];
    Info[R] = I;
  }
};

/// Resolution of one source register: a constant, or a canonical root
/// register (the register itself when it is not a valid copy).
struct Resolved {
  bool IsConst = false;
  int64_t C = 0;
  Reg Root = 0;
};

/// What the pass remembers about one global's scalar slot.
struct GVal {
  bool IsConst = false;
  int64_t C = 0;
  Reg R = 0;
  uint32_t Ver = 0;
  uint32_t Depth = 0;
};

class ValuePass {
public:
  ValuePass(CompiledTrace &T, bool DoFold, bool DoGuard,
            std::vector<uint8_t> &Removed, TraceOptStats &St)
      : T(T), DoFold(DoFold), DoGuard(DoGuard), Removed(Removed), St(St) {}

  void run() {
    Fs.clear();
    Fs.emplace_back(); // the anchor frame: everything Unknown
    for (size_t I = 0; I < T.Steps.size(); ++I)
      process(I);
  }

private:
  CompiledTrace &T;
  const bool DoFold;
  const bool DoGuard;
  std::vector<uint8_t> &Removed;
  TraceOptStats &St;
  std::vector<FrameVal> Fs;
  std::unordered_map<uint32_t, GVal> GMap;

  FrameVal &cur() { return Fs.back(); }

  Resolved resolve(Reg R) {
    FrameVal &F = cur();
    Resolved O;
    O.Root = R;
    RegInfo &I = F.at(R);
    if (I.Kind == RegInfo::Const) {
      O.IsConst = true;
      O.C = I.C;
      return O;
    }
    if (I.Kind == RegInfo::Copy && F.ver(I.Src) == I.SrcVer) {
      RegInfo &RI = F.at(I.Src);
      if (RI.Kind == RegInfo::Const) {
        O.IsConst = true;
        O.C = RI.C;
        return O;
      }
      O.Root = I.Src;
    }
    return O;
  }

  /// Substitutes a source register by its canonical root (copy
  /// propagation). Step mutation, so gated on the fold stage.
  void subst(Reg &R) {
    if (!DoFold)
      return;
    const Resolved V = resolve(R);
    if (!V.IsConst && V.Root != R)
      R = V.Root;
  }

  /// A passed guard proved register \p R holds \p V: refine R and, when R
  /// is a live copy, its root (same value) — without a version bump.
  void factConst(Reg R, int64_t V) {
    FrameVal &F = cur();
    RegInfo &I = F.at(R);
    if (I.Kind == RegInfo::Copy && F.ver(I.Src) == I.SrcVer)
      F.at(I.Src) = makeConst(V);
    I = makeConst(V);
  }

  void factNonZero(Reg R) {
    FrameVal &F = cur();
    RegInfo &I = F.at(R);
    if (I.Kind == RegInfo::Copy && F.ver(I.Src) == I.SrcVer)
      F.at(I.Src).NonZero = true;
    I.NonZero = true;
  }

  /// Interval verdict for (op Lo..Hi, Imm): 1 always true, 0 always
  /// false, -1 undecidable.
  static int decide(TOp Op, int64_t Lo, int64_t Hi, int64_t Imm) {
    switch (Op) {
    case TOp::CmpEqImm:
      if (Lo == Hi && Lo == Imm)
        return 1;
      if (Imm < Lo || Imm > Hi)
        return 0;
      return -1;
    case TOp::CmpNeImm: {
      const int E = decide(TOp::CmpEqImm, Lo, Hi, Imm);
      return E < 0 ? -1 : 1 - E;
    }
    case TOp::CmpLtImm:
      if (Hi < Imm)
        return 1;
      if (Lo >= Imm)
        return 0;
      return -1;
    case TOp::CmpLeImm:
      if (Hi <= Imm)
        return 1;
      if (Lo > Imm)
        return 0;
      return -1;
    case TOp::CmpGtImm:
      if (Lo > Imm)
        return 1;
      if (Hi <= Imm)
        return 0;
      return -1;
    case TOp::CmpGeImm:
      if (Lo >= Imm)
        return 1;
      if (Hi < Imm)
        return 0;
      return -1;
    default:
      return -1;
    }
  }

  /// A guard on compare-result \p I passed with outcome \p CondTrue:
  /// refine the compared register's interval (version-checked).
  void refineFromCmp(const RegInfo &I, bool CondTrue) {
    if (!I.HasCmp)
      return;
    FrameVal &F = cur();
    if (F.ver(I.CmpSrc) != I.CmpSrcVer)
      return;
    RegInfo &S = F.at(I.CmpSrc);
    int64_t Lo = S.HasIv ? S.Lo : std::numeric_limits<int64_t>::min();
    int64_t Hi = S.HasIv ? S.Hi : std::numeric_limits<int64_t>::max();
    const int64_t Imm = I.CmpImm;
    const int64_t IMin = std::numeric_limits<int64_t>::min();
    const int64_t IMax = std::numeric_limits<int64_t>::max();
    switch (I.CmpOp) {
    case TOp::CmpEqImm:
      if (CondTrue)
        Lo = Hi = Imm;
      break;
    case TOp::CmpNeImm:
      if (!CondTrue)
        Lo = Hi = Imm;
      break;
    case TOp::CmpLtImm:
      if (CondTrue) {
        if (Imm == IMin)
          return;
        Hi = std::min(Hi, Imm - 1);
      } else
        Lo = std::max(Lo, Imm);
      break;
    case TOp::CmpLeImm:
      if (CondTrue)
        Hi = std::min(Hi, Imm);
      else {
        if (Imm == IMax)
          return;
        Lo = std::max(Lo, Imm + 1);
      }
      break;
    case TOp::CmpGtImm:
      if (CondTrue) {
        if (Imm == IMax)
          return;
        Lo = std::max(Lo, Imm + 1);
      } else
        Hi = std::min(Hi, Imm);
      break;
    case TOp::CmpGeImm:
      if (CondTrue)
        Lo = std::max(Lo, Imm);
      else {
        if (Imm == IMin)
          return;
        Hi = std::min(Hi, Imm - 1);
      }
      break;
    default:
      return;
    }
    if (Lo > Hi)
      return; // contradiction: the guard would have deopted; keep facts
    S.HasIv = true;
    S.Lo = Lo;
    S.Hi = Hi;
    if (Lo == Hi) {
      S.Kind = RegInfo::Const;
      S.C = Lo;
    }
    if (Lo > 0 || Hi < 0)
      S.NonZero = true;
  }

  /// Rewrites step \p S into Const \p V and records the fold.
  void toConst(TraceStep &S, int64_t V) {
    if (DoFold) {
      S.Op = TOp::Const;
      S.Src0 = 0;
      S.Src1 = 0;
      S.Imm = V;
      ++St.ConstsFolded;
    }
    cur().write(S.Dst, makeConst(V));
  }

  /// Rewrites step \p S into an Imm form (fold stage only) and writes an
  /// Unknown (or provenance-carrying) result.
  void toImm(TraceStep &S, TOp Op, Reg Src, int64_t Imm) {
    S.Op = Op;
    S.Src0 = Src;
    S.Src1 = 0;
    S.Imm = Imm;
    ++St.ConstsFolded;
  }

  /// Result record of an Imm-form compare: [0,1] interval + provenance.
  RegInfo cmpResult(TOp Op, Reg Src, int64_t Imm) {
    RegInfo I;
    I.HasIv = true;
    I.Lo = 0;
    I.Hi = 1;
    I.HasCmp = true;
    I.CmpOp = Op;
    I.CmpSrc = Src;
    I.CmpSrcVer = cur().ver(Src);
    I.CmpImm = Imm;
    return I;
  }

  /// Result record of AddImm: shifted interval when safe.
  RegInfo addImmResult(Reg Src, int64_t Imm) {
    RegInfo I;
    const RegInfo &S = cur().at(Src);
    if (S.HasIv) {
      int64_t Lo, Hi;
      if (!__builtin_add_overflow(S.Lo, Imm, &Lo) &&
          !__builtin_add_overflow(S.Hi, Imm, &Hi)) {
        I.HasIv = true;
        I.Lo = Lo;
        I.Hi = Hi;
        if (Lo > 0 || Hi < 0)
          I.NonZero = true;
      }
    }
    return I;
  }

  /// Result record of AndImm: a non-negative mask bounds the result to
  /// [0, mask] for any int64 input (the mask's clear sign bit clears the
  /// result's).
  static RegInfo andImmResult(int64_t Imm) {
    RegInfo I;
    if (Imm >= 0) {
      I.HasIv = true;
      I.Lo = 0;
      I.Hi = Imm;
    }
    return I;
  }

  void removeStep(size_t I) {
    Removed[I] = 1;
    ++St.StepsRemoved;
  }

  void removeGuard(size_t I) {
    Removed[I] = 1;
    ++St.GuardsRemoved;
  }

  void process(size_t Idx);
  void processBinary(size_t Idx);
  void processGuard(size_t Idx);
};

/// Folds a two-const binary op; returns false for a folded-away fault
/// candidate (Div/Mod fault: keep the step, the executor deopts there).
bool foldBinary(TOp Op, int64_t A, int64_t B, int64_t &Out) {
  switch (Op) {
  case TOp::Add:
    Out = wrapAdd(A, B);
    return true;
  case TOp::Sub:
    Out = wrapSub(A, B);
    return true;
  case TOp::Mul:
    Out = wrapMul(A, B);
    return true;
  case TOp::Div:
    if (B == 0 || (A == std::numeric_limits<int64_t>::min() && B == -1))
      return false;
    Out = A / B;
    return true;
  case TOp::Mod:
    if (B == 0 || (A == std::numeric_limits<int64_t>::min() && B == -1))
      return false;
    Out = A % B;
    return true;
  case TOp::And:
    Out = A & B;
    return true;
  case TOp::Or:
    Out = A | B;
    return true;
  case TOp::Xor:
    Out = A ^ B;
    return true;
  case TOp::Shl:
    Out = static_cast<int64_t>(static_cast<uint64_t>(A)
                               << (static_cast<uint64_t>(B) & 63));
    return true;
  case TOp::Shr:
    Out = A >> (static_cast<uint64_t>(B) & 63);
    return true;
  case TOp::CmpEq:
    Out = A == B;
    return true;
  case TOp::CmpNe:
    Out = A != B;
    return true;
  case TOp::CmpLt:
    Out = A < B;
    return true;
  case TOp::CmpLe:
    Out = A <= B;
    return true;
  case TOp::CmpGt:
    Out = A > B;
    return true;
  case TOp::CmpGe:
    Out = A >= B;
    return true;
  default:
    return false;
  }
}

/// The Imm compare op corresponding to a register-register compare.
TOp immCmpOf(TOp Op) {
  switch (Op) {
  case TOp::CmpEq:
    return TOp::CmpEqImm;
  case TOp::CmpNe:
    return TOp::CmpNeImm;
  case TOp::CmpLt:
    return TOp::CmpLtImm;
  case TOp::CmpLe:
    return TOp::CmpLeImm;
  case TOp::CmpGt:
    return TOp::CmpGtImm;
  case TOp::CmpGe:
    return TOp::CmpGeImm;
  default:
    return Op;
  }
}

void ValuePass::processBinary(size_t Idx) {
  TraceStep &S = T.Steps[Idx];
  const Resolved A = resolve(S.Src0);
  const Resolved B = resolve(S.Src1);
  if (A.IsConst && B.IsConst) {
    int64_t V;
    if (foldBinary(S.Op, A.C, B.C, V)) {
      toConst(S, V);
      return;
    }
    // Const fault candidate (Div/Mod): the step stays and deopts.
    cur().write(S.Dst, RegInfo());
    return;
  }
  if (DoFold) {
    // Mirror the compiler's Imm-form selection exactly (goldens depend on
    // the shared shape; see TraceCompiler::doDataOp).
    switch (S.Op) {
    case TOp::Add:
      if (B.IsConst) {
        toImm(S, TOp::AddImm, A.Root, B.C);
        cur().write(S.Dst, addImmResult(A.Root, B.C));
        return;
      }
      if (A.IsConst) {
        toImm(S, TOp::AddImm, B.Root, A.C);
        cur().write(S.Dst, addImmResult(B.Root, A.C));
        return;
      }
      break;
    case TOp::Sub:
      if (B.IsConst) {
        toImm(S, TOp::AddImm, A.Root, wrapNeg(B.C));
        cur().write(S.Dst, addImmResult(A.Root, wrapNeg(B.C)));
        return;
      }
      break;
    case TOp::And:
      if (B.IsConst) {
        toImm(S, TOp::AndImm, A.Root, B.C);
        cur().write(S.Dst, andImmResult(B.C));
        return;
      }
      if (A.IsConst) {
        toImm(S, TOp::AndImm, B.Root, A.C);
        cur().write(S.Dst, andImmResult(A.C));
        return;
      }
      break;
    case TOp::CmpEq:
    case TOp::CmpNe:
    case TOp::CmpLt:
    case TOp::CmpLe:
    case TOp::CmpGt:
    case TOp::CmpGe:
      if (B.IsConst) {
        const TOp IOp = immCmpOf(S.Op);
        toImm(S, IOp, A.Root, B.C);
        cur().write(S.Dst, cmpResult(IOp, A.Root, B.C));
        return;
      }
      break;
    default:
      break;
    }
  }
  subst(S.Src0);
  subst(S.Src1);
  cur().write(S.Dst, RegInfo());
}

void ValuePass::processGuard(size_t Idx) {
  TraceStep &S = T.Steps[Idx];
  const Resolved C = resolve(S.Src0);
  switch (S.Op) {
  case TOp::GuardTrue: {
    if (C.IsConst) {
      if (C.C != 0 && DoGuard)
        removeGuard(Idx); // proven: always passes
      return;             // const-false: always-deopt guard, keep
    }
    RegInfo &I = cur().at(C.Root);
    if (I.NonZero) {
      if (DoGuard)
        removeGuard(Idx);
      refineFromCmp(I, true);
      return;
    }
    subst(S.Src0);
    // Survived: the condition was nonzero.
    refineFromCmp(cur().at(S.Src0), true);
    factNonZero(S.Src0);
    return;
  }
  case TOp::GuardFalse: {
    if (C.IsConst) {
      if (C.C == 0 && DoGuard)
        removeGuard(Idx);
      return;
    }
    subst(S.Src0);
    refineFromCmp(cur().at(S.Src0), false);
    factConst(S.Src0, 0);
    return;
  }
  case TOp::GuardCallee: {
    if (C.IsConst) {
      if (C.C == static_cast<int64_t>(S.Aux) && DoGuard)
        removeGuard(Idx);
      return;
    }
    subst(S.Src0);
    factConst(S.Src0, static_cast<int64_t>(S.Aux));
    return;
  }
  default:
    return;
  }
}

void ValuePass::process(size_t Idx) {
  TraceStep &S = T.Steps[Idx];
  switch (S.Op) {
  case TOp::Const:
    cur().write(S.Dst, makeConst(S.Imm));
    return;
  case TOp::Move: {
    const Resolved V = resolve(S.Src0);
    if (V.IsConst) {
      toConst(S, V.C);
      return;
    }
    subst(S.Src0);
    if (DoFold && S.Src0 == S.Dst) {
      // Copy propagation reduced the move to Dst = Dst: the register
      // already holds the value, so the step (and any recovery) is moot.
      removeStep(Idx);
      return;
    }
    RegInfo I;
    I.Kind = RegInfo::Copy;
    I.Src = S.Src0;
    I.SrcVer = cur().ver(S.Src0);
    cur().write(S.Dst, I);
    return;
  }
  case TOp::Add:
  case TOp::Sub:
  case TOp::Mul:
  case TOp::Div:
  case TOp::Mod:
  case TOp::And:
  case TOp::Or:
  case TOp::Xor:
  case TOp::Shl:
  case TOp::Shr:
  case TOp::CmpEq:
  case TOp::CmpNe:
  case TOp::CmpLt:
  case TOp::CmpLe:
  case TOp::CmpGt:
  case TOp::CmpGe:
    processBinary(Idx);
    return;
  case TOp::AddImm: {
    const Resolved A = resolve(S.Src0);
    if (A.IsConst) {
      toConst(S, wrapAdd(A.C, S.Imm));
      return;
    }
    subst(S.Src0);
    cur().write(S.Dst, addImmResult(S.Src0, S.Imm));
    return;
  }
  case TOp::AndImm: {
    const Resolved A = resolve(S.Src0);
    if (A.IsConst) {
      toConst(S, A.C & S.Imm);
      return;
    }
    subst(S.Src0);
    cur().write(S.Dst, andImmResult(S.Imm));
    return;
  }
  case TOp::CmpEqImm:
  case TOp::CmpNeImm:
  case TOp::CmpLtImm:
  case TOp::CmpLeImm:
  case TOp::CmpGtImm:
  case TOp::CmpGeImm: {
    const Resolved A = resolve(S.Src0);
    if (A.IsConst) {
      int64_t V = 0;
      switch (S.Op) {
      case TOp::CmpEqImm:
        V = A.C == S.Imm;
        break;
      case TOp::CmpNeImm:
        V = A.C != S.Imm;
        break;
      case TOp::CmpLtImm:
        V = A.C < S.Imm;
        break;
      case TOp::CmpLeImm:
        V = A.C <= S.Imm;
        break;
      case TOp::CmpGtImm:
        V = A.C > S.Imm;
        break;
      default:
        V = A.C >= S.Imm;
        break;
      }
      toConst(S, V);
      return;
    }
    subst(S.Src0);
    const RegInfo &Sr = cur().at(S.Src0);
    if (Sr.HasIv) {
      const int D = decide(S.Op, Sr.Lo, Sr.Hi, S.Imm);
      if (D >= 0) {
        toConst(S, D);
        return;
      }
    }
    cur().write(S.Dst, cmpResult(S.Op, S.Src0, S.Imm));
    return;
  }
  case TOp::Neg: {
    const Resolved A = resolve(S.Src0);
    if (A.IsConst) {
      toConst(S, wrapNeg(A.C));
      return;
    }
    subst(S.Src0);
    cur().write(S.Dst, RegInfo());
    return;
  }
  case TOp::Not: {
    const Resolved A = resolve(S.Src0);
    if (A.IsConst) {
      toConst(S, A.C == 0 ? 1 : 0);
      return;
    }
    subst(S.Src0);
    cur().write(S.Dst, RegInfo());
    return;
  }
  case TOp::LoadG: {
    auto It = GMap.find(S.Aux);
    if (It != GMap.end()) {
      const GVal &G = It->second;
      if (G.IsConst) {
        toConst(S, G.C);
        return;
      }
      if (G.Depth == Fs.size() - 1 && cur().ver(G.R) == G.Ver && DoFold) {
        if (G.R == S.Dst) {
          // The destination already holds the global's value.
          removeStep(Idx);
          return;
        }
        S.Op = TOp::Move;
        S.Src0 = G.R;
        ++St.ConstsFolded;
        RegInfo I;
        I.Kind = RegInfo::Copy;
        I.Src = G.R;
        I.SrcVer = G.Ver;
        cur().write(S.Dst, I);
        return;
      }
    }
    cur().write(S.Dst, RegInfo());
    return;
  }
  case TOp::StoreG: {
    const Resolved V = resolve(S.Src0);
    subst(S.Src0);
    GVal G;
    if (V.IsConst) {
      G.IsConst = true;
      G.C = V.C;
    } else {
      G.R = V.Root;
      G.Ver = cur().ver(V.Root);
      G.Depth = static_cast<uint32_t>(Fs.size() - 1);
    }
    GMap[S.Aux] = G;
    return;
  }
  case TOp::LoadArr:
    subst(S.Src0);
    cur().write(S.Dst, RegInfo());
    return;
  case TOp::StoreArr:
    subst(S.Src0);
    subst(S.Src1);
    GMap.erase(S.Aux); // index 0 aliases the scalar slot
    return;
  case TOp::GuardTrue:
  case TOp::GuardFalse:
  case TOp::GuardCallee:
    processGuard(Idx);
    return;
  case TOp::Call: {
    FrameVal NF;
    NF.ZeroInit = true;
    NF.RetDst = S.Dst;
    NF.Info.reserve(S.ArgsCount);
    for (uint32_t A = 0; A < S.ArgsCount; ++A) {
      const Resolved V = resolve(S.Args[A]);
      NF.Info.push_back(V.IsConst ? makeConst(V.C) : RegInfo());
      NF.Ver.push_back(0);
    }
    Fs.push_back(std::move(NF));
    return;
  }
  case TOp::Ret: {
    Resolved V;
    bool HasV = false;
    if (S.Src0 != NoReg) {
      V = resolve(S.Src0);
      subst(S.Src0);
      HasV = true;
    }
    // Globals forwarded from this frame's registers die with the frame.
    const uint32_t D = static_cast<uint32_t>(Fs.size() - 1);
    for (auto It = GMap.begin(); It != GMap.end();) {
      if (!It->second.IsConst && It->second.Depth == D)
        It = GMap.erase(It);
      else
        ++It;
    }
    const Reg RetDst = cur().RetDst;
    Fs.pop_back();
    if (RetDst != NoReg)
      cur().write(RetDst, HasV && V.IsConst ? makeConst(V.C) : RegInfo());
    return;
  }
  }
}

} // namespace
} // namespace olpp

//===----------------------------------------------------------------------===//
// Dead-write elimination, the fault stage, and compaction
//===----------------------------------------------------------------------===//

namespace olpp {
namespace {

/// Anchor-frame register reads/writes of one step executing at depth 0.
struct StepRW {
  Reg W = NoReg;
  Reg R0 = NoReg, R1 = NoReg;
  const Reg *Args = nullptr;
  uint32_t NArgs = 0;
};

StepRW stepRW(const TraceStep &S) {
  StepRW O;
  switch (S.Op) {
  case TOp::Const:
    O.W = S.Dst;
    break;
  case TOp::Move:
  case TOp::Neg:
  case TOp::Not:
  case TOp::AddImm:
  case TOp::AndImm:
  case TOp::CmpEqImm:
  case TOp::CmpNeImm:
  case TOp::CmpLtImm:
  case TOp::CmpLeImm:
  case TOp::CmpGtImm:
  case TOp::CmpGeImm:
    O.W = S.Dst;
    O.R0 = S.Src0;
    break;
  case TOp::Add:
  case TOp::Sub:
  case TOp::Mul:
  case TOp::Div:
  case TOp::Mod:
  case TOp::And:
  case TOp::Or:
  case TOp::Xor:
  case TOp::Shl:
  case TOp::Shr:
  case TOp::CmpEq:
  case TOp::CmpNe:
  case TOp::CmpLt:
  case TOp::CmpLe:
  case TOp::CmpGt:
  case TOp::CmpGe:
    O.W = S.Dst;
    O.R0 = S.Src0;
    O.R1 = S.Src1;
    break;
  case TOp::LoadG:
    O.W = S.Dst;
    break;
  case TOp::StoreG:
    O.R0 = S.Src0;
    break;
  case TOp::LoadArr:
    O.W = S.Dst;
    O.R0 = S.Src0;
    break;
  case TOp::StoreArr:
    O.R0 = S.Src0;
    O.R1 = S.Src1;
    break;
  case TOp::GuardTrue:
  case TOp::GuardFalse:
  case TOp::GuardCallee:
    O.R0 = S.Src0;
    break;
  case TOp::Call:
    O.Args = S.Args;
    O.NArgs = S.ArgsCount;
    break;
  case TOp::Ret:
    break; // reads a callee register; the anchor write is RetW
  }
  return O;
}

/// Backward liveness over the anchor frame: a Const/Move whose result a
/// later surviving write kills before any surviving read is removed, with
/// a TraceRecovery window so a deopt inside the window still materializes
/// it. The window end is the killing write (the re-executed base
/// instruction there may read the register even when the rewritten trace
/// step does not); removed writes still update next-write so supersession
/// chains stay correct. Windows are *linear* but traces loop: a tail
/// write (no later write this pass) flows into the next pass's reads, so
/// the linear scan never removes it — the cyclic pass below handles the
/// whole-pass-dead case instead.
void deadWriteElim(CompiledTrace &T, std::vector<uint8_t> &Removed,
                   std::vector<TraceRecovery> &Pend, TraceOptStats &St) {
  const size_t N = T.Steps.size();
  if (N == 0)
    return;
  std::vector<uint16_t> Depth(N, 0);
  std::vector<Reg> RetW(N, NoReg);
  {
    std::vector<Reg> CallDst;
    uint16_t D = 0;
    for (size_t I = 0; I < N; ++I) {
      Depth[I] = D;
      const TraceStep &S = T.Steps[I];
      if (S.Op == TOp::Call) {
        CallDst.push_back(S.Dst);
        ++D;
      } else if (S.Op == TOp::Ret) {
        if (D == 1)
          RetW[I] = CallDst.back();
        CallDst.pop_back();
        --D;
      }
    }
  }

  Reg MaxR = 0;
  bool Any = false;
  auto seen = [&](Reg R) {
    if (R != NoReg) {
      Any = true;
      MaxR = std::max(MaxR, R);
    }
  };
  for (size_t I = 0; I < N; ++I) {
    if (RetW[I] != NoReg)
      seen(RetW[I]);
    if (Depth[I] != 0 || T.Steps[I].Op == TOp::Ret)
      continue;
    const StepRW RW = stepRW(T.Steps[I]);
    seen(RW.W);
    seen(RW.R0);
    seen(RW.R1);
    for (uint32_t A = 0; A < RW.NArgs; ++A)
      seen(RW.Args[A]);
  }
  if (!Any)
    return;

  std::vector<uint32_t> NR(MaxR + 1, kInf), NW(MaxR + 1, kInf);
  for (size_t Ii = N; Ii-- > 0;) {
    const uint32_t I = static_cast<uint32_t>(Ii);
    const TraceStep &S = T.Steps[Ii];
    if (S.Op == TOp::Ret) {
      if (RetW[Ii] != NoReg)
        NW[RetW[Ii]] = I;
      continue;
    }
    if (Depth[Ii] != 0)
      continue;
    if (Removed[Ii]) {
      // A fold-removed no-op move still pins its source: a deopt at this
      // index re-executes the base move, which reads it.
      if (S.Op == TOp::Move)
        NR[S.Src0] = I;
      continue;
    }
    if (S.Op == TOp::Const || S.Op == TOp::Move) {
      const Reg D = S.Dst;
      const uint32_t W = NW[D];
      bool Ok = W != kInf && (NR[D] == kInf || NR[D] > W);
      if (Ok && S.Op == TOp::Move)
        Ok = S.Src0 != D && NW[S.Src0] > W; // source stable over the window
      if (Ok) {
        Removed[Ii] = 1;
        ++St.StepsRemoved;
        TraceRecovery R;
        R.Begin = I + 1; // pre-compaction indices; remapped in compact()
        R.End = W;
        R.R = D;
        R.Copy = S.Op == TOp::Move;
        R.Src = S.Src0;
        R.V = S.Imm;
        Pend.push_back(R);
        NW[D] = I; // recovery re-creates the write at deopt time
        continue;
      }
    }
    const StepRW RW = stepRW(S);
    if (RW.W != NoReg)
      NW[RW.W] = I;
    if (RW.R0 != NoReg)
      NR[RW.R0] = I;
    if (RW.R1 != NoReg)
      NR[RW.R1] = I;
    for (uint32_t A = 0; A < RW.NArgs; ++A)
      NR[RW.Args[A]] = I;
  }

  // Cyclic pass: a register's only write (typically a Const the fold
  // stage orphaned) survives the linear scan because its value wraps
  // around into the next pass — but when *no surviving step reads the
  // register at all*, the wrapped value is dead at runtime too; only the
  // base program, reached via deopt or exit, may read it. Two recovery
  // entries reconstruct base state: a linear window [i+1, end] (the write
  // executed earlier in this pass) and a Wrap window [0, i] (the value is
  // the previous pass's; the executor gates it on a completed pass and
  // re-applies it on clean exits). Const values materialize directly; a
  // Move qualifies only when its source is never written, i.e. it copies
  // the loop-invariant entry value. Counts are taken once up front, so
  // every removal decision is conservative against the pre-pass state.
  std::vector<uint32_t> Writes(MaxR + 1, 0), Reads(MaxR + 1, 0);
  for (size_t I = 0; I < N; ++I) {
    const TraceStep &S = T.Steps[I];
    if (S.Op == TOp::Ret) {
      if (RetW[I] != NoReg)
        ++Writes[RetW[I]];
      continue;
    }
    if (Depth[I] != 0 || Removed[I])
      continue;
    const StepRW RW = stepRW(S);
    if (RW.W != NoReg)
      ++Writes[RW.W];
    if (RW.R0 != NoReg)
      ++Reads[RW.R0];
    if (RW.R1 != NoReg)
      ++Reads[RW.R1];
    for (uint32_t A = 0; A < RW.NArgs; ++A)
      ++Reads[RW.Args[A]];
  }
  for (size_t I = 0; I < N; ++I) {
    const TraceStep &S = T.Steps[I];
    if (Depth[I] != 0 || Removed[I])
      continue;
    if (S.Op != TOp::Const && S.Op != TOp::Move)
      continue;
    const Reg D = S.Dst;
    if (Writes[D] != 1 || Reads[D] != 0)
      continue;
    if (S.Op == TOp::Move && (S.Src0 == D || Writes[S.Src0] != 0))
      continue;
    Removed[I] = 1;
    ++St.StepsRemoved;
    TraceRecovery R;
    R.R = D;
    R.Copy = S.Op == TOp::Move;
    R.Src = S.Src0;
    R.V = S.Imm;
    R.Begin = static_cast<uint32_t>(I) + 1;
    R.End = static_cast<uint32_t>(N) - 1;
    Pend.push_back(R);
    R.Begin = 0;
    R.End = static_cast<uint32_t>(I);
    R.Wrap = true;
    Pend.push_back(R);
  }
}

/// Fuzz-only planted bug (FaultKind::DropTraceGuard): delete the last
/// surviving branch guard regardless of provability. The differential
/// trace oracle must observe the divergence.
void dropLastBranchGuard(CompiledTrace &T, std::vector<uint8_t> &Removed) {
  for (size_t I = T.Steps.size(); I-- > 0;) {
    const TOp Op = T.Steps[I].Op;
    if ((Op == TOp::GuardTrue || Op == TOp::GuardFalse) && !Removed[I]) {
      Removed[I] = 1;
      return;
    }
  }
}

/// Erases removed steps (with their metas) and remaps the pending
/// recovery windows into post-compaction indices. Accounting prefixes of
/// the survivors are untouched: a removed step's cost stays charged
/// exactly as the compiler's ghost steps do.
void compact(CompiledTrace &T, const std::vector<uint8_t> &Removed,
             std::vector<TraceRecovery> &Pend) {
  const size_t N = T.Steps.size();
  std::vector<uint32_t> Survivors;
  Survivors.reserve(N);
  for (size_t I = 0; I < N; ++I)
    if (!Removed[I])
      Survivors.push_back(static_cast<uint32_t>(I));
  if (Survivors.size() != N) {
    std::vector<TraceStep> NS;
    std::vector<TraceStepMeta> NM;
    NS.reserve(Survivors.size());
    NM.reserve(Survivors.size());
    for (uint32_t I : Survivors) {
      NS.push_back(T.Steps[I]);
      NM.push_back(T.Meta[I]);
    }
    T.Steps = std::move(NS);
    T.Meta = std::move(NM);
  }
  if (Pend.empty())
    return;
  // Built backward: restore ascending step order so that, after the
  // stable sort by Begin, later removed writes to the same register are
  // applied later (they overwrite).
  std::reverse(Pend.begin(), Pend.end());
  std::vector<TraceRecovery> Out;
  Out.reserve(Pend.size());
  for (const TraceRecovery &P : Pend) {
    TraceRecovery R = P;
    auto B = std::lower_bound(Survivors.begin(), Survivors.end(), P.Begin);
    auto E = std::upper_bound(Survivors.begin(), Survivors.end(), P.End);
    const bool Empty = B == Survivors.end() || E == Survivors.begin() ||
                       B - Survivors.begin() > (E - 1) - Survivors.begin();
    if (Empty) {
      if (!P.Wrap)
        continue; // deopt-only window with no surviving deopt point
      // Wrap entries outlive their window: the clean-exit materialization
      // reads them regardless. Encode "no deopt point" as Begin > End.
      R.Begin = 1;
      R.End = 0;
    } else {
      R.Begin = static_cast<uint32_t>(B - Survivors.begin());
      R.End = static_cast<uint32_t>((E - 1) - Survivors.begin());
    }
    Out.push_back(R);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceRecovery &A, const TraceRecovery &B) {
                     return A.Begin < B.Begin;
                   });
  T.Recov = std::move(Out);
}

//===----------------------------------------------------------------------===//
// Effect coalescing
//===----------------------------------------------------------------------===//

/// Maps an effect kind onto its abstract component (16 scalar components;
/// shadow/pending ops are ordered stack traffic and never merge).
bool effectComp(EffectKind K, int &Comp, bool &IsAdd) {
  IsAdd = false;
  switch (K) {
  case EffectKind::SetR:
    Comp = 0;
    return true;
  case EffectKind::AddR:
    Comp = 0;
    IsAdd = true;
    return true;
  case EffectKind::SetRI:
    Comp = 1;
    return true;
  case EffectKind::AddRI:
    Comp = 1;
    IsAdd = true;
    return true;
  case EffectKind::SetOlI:
    Comp = 2;
    return true;
  case EffectKind::AddOlI:
    Comp = 2;
    IsAdd = true;
    return true;
  case EffectKind::SetCallerPre:
    Comp = 3;
    return true;
  case EffectKind::SetCallSiteI:
    Comp = 4;
    return true;
  case EffectKind::SetActiveI:
    Comp = 5;
    return true;
  case EffectKind::SetHaveCaller:
    Comp = 6;
    return true;
  case EffectKind::SetRoII:
    Comp = 7;
    return true;
  case EffectKind::AddRoII:
    Comp = 7;
    IsAdd = true;
    return true;
  case EffectKind::SetOlII:
    Comp = 8;
    return true;
  case EffectKind::AddOlII:
    Comp = 8;
    IsAdd = true;
    return true;
  case EffectKind::SetCalleePathII:
    Comp = 9;
    return true;
  case EffectKind::SetCallSiteII:
    Comp = 10;
    return true;
  case EffectKind::SetCalleeII:
    Comp = 11;
    return true;
  case EffectKind::SetActiveII:
    Comp = 12;
    return true;
  case EffectKind::SetLoopRo:
    Comp = 13;
    return true;
  case EffectKind::AddLoopRo:
    Comp = 13;
    IsAdd = true;
    return true;
  case EffectKind::SetLoopOl:
    Comp = 14;
    return true;
  case EffectKind::AddLoopOl:
    Comp = 14;
    IsAdd = true;
    return true;
  case EffectKind::SetLoopActive:
    Comp = 15;
    return true;
  default:
    return false;
  }
}

const EffectKind kSetKindOf[16] = {
    EffectKind::SetR,          EffectKind::SetRI,
    EffectKind::SetOlI,        EffectKind::SetCallerPre,
    EffectKind::SetCallSiteI,  EffectKind::SetActiveI,
    EffectKind::SetHaveCaller, EffectKind::SetRoII,
    EffectKind::SetOlII,       EffectKind::SetCalleePathII,
    EffectKind::SetCallSiteII, EffectKind::SetCalleeII,
    EffectKind::SetActiveII,   EffectKind::SetLoopRo,
    EffectKind::SetLoopOl,     EffectKind::SetLoopActive,
};
const EffectKind kAddKindOf[16] = {
    EffectKind::AddR,          EffectKind::AddRI,
    EffectKind::AddOlI,        EffectKind::SetCallerPre, // unused
    EffectKind::SetCallSiteI,                            // unused
    EffectKind::SetActiveI,                              // unused
    EffectKind::SetHaveCaller,                           // unused
    EffectKind::AddRoII,       EffectKind::AddOlII,
    EffectKind::SetCalleePathII,                         // unused
    EffectKind::SetCallSiteII,                           // unused
    EffectKind::SetCalleeII,                             // unused
    EffectKind::SetActiveII,                             // unused
    EffectKind::AddLoopRo,     EffectKind::AddLoopOl,
    EffectKind::SetLoopActive,                           // unused
};

/// Merges effect entries hitting the same component of the same frame at
/// the same base position. Sound because same-BaseIdx effects apply
/// all-or-nothing on the deopt path (the gate is E.BaseIdx < threshold,
/// plus a per-(Depth, BaseIdx) frame-liveness test that is identical for
/// the whole group).
void coalesceEffects(CompiledTrace &T, TraceOptStats &St) {
  std::vector<TraceEffect> &E = T.Effects;
  std::vector<TraceEffect> Out;
  Out.reserve(E.size());
  std::vector<uint8_t> Used;
  size_t I = 0;
  while (I < E.size()) {
    size_t J = I;
    while (J < E.size() && E[J].BaseIdx == E[I].BaseIdx)
      ++J;
    Used.assign(J - I, 0);
    for (size_t A = I; A < J; ++A) {
      if (Used[A - I])
        continue;
      int Comp;
      bool IsAdd;
      if (!effectComp(E[A].Kind, Comp, IsAdd)) {
        Out.push_back(E[A]);
        continue;
      }
      bool HasSet = !IsAdd;
      int64_t Acc = E[A].V;
      uint32_t Merged = 0;
      for (size_t B = A + 1; B < J; ++B) {
        if (Used[B - I])
          continue;
        int C2;
        bool Add2;
        if (!effectComp(E[B].Kind, C2, Add2))
          continue;
        if (C2 != Comp || E[B].Depth != E[A].Depth || E[B].Slot != E[A].Slot)
          continue;
        Used[B - I] = 1;
        ++Merged;
        if (Add2)
          Acc = wrapAdd(Acc, E[B].V);
        else {
          HasSet = true;
          Acc = E[B].V;
        }
      }
      if (!Merged) {
        Out.push_back(E[A]);
        continue;
      }
      St.EffectsCoalesced += Merged;
      if (!HasSet && Acc == 0)
        continue; // net-zero add: drop entirely
      TraceEffect M = E[A];
      M.Kind = HasSet ? kSetKindOf[Comp] : kAddKindOf[Comp];
      M.V = Acc;
      Out.push_back(M);
    }
    I = J;
  }
  E = std::move(Out);
}

} // namespace
} // namespace olpp

//===----------------------------------------------------------------------===//
// Guard pass budgets
//===----------------------------------------------------------------------===//

namespace olpp {
namespace {

GuardBudget budgetInf() { return GuardBudget{}; }
GuardBudget budgetOne() {
  GuardBudget B;
  B.M = GuardBudget::One;
  return B;
}
GuardBudget budgetDynLt(int64_t D) {
  GuardBudget B;
  B.M = GuardBudget::DynLt;
  B.Delta = D;
  return B;
}

/// Guard compare styles: exact equality on V, boolean equality on
/// (V != 0), or a strict upper bound (the monotone-counter range guards).
enum class GuardStyle { Eq, Bool, Lt };

/// Budget of one guard from the collapsed per-pass net effect on its
/// component. No effect: the component never changes across a pass, so a
/// pass-1 success holds forever (Inf). One Set: the post-pass value is a
/// compile-time constant; statically re-evaluate the guard against it.
/// One Add: an Eq guard survives only a zero delta; a Lt guard over a
/// positive delta admits exactly ceil((bound - live) / delta) passes,
/// which only the executor can evaluate (DynLt). Anything harder falls
/// back to One — always sound, it is exactly the per-pass legacy check.
GuardBudget budgetFor(const TraceGuard &G,
                      const std::vector<TraceEffect> &PassEffects) {
  EffectKind SetK;
  EffectKind AddK;
  bool HasAdd = true;
  bool SlotMatch = false;
  GuardStyle Style = GuardStyle::Eq;
  switch (G.Kind) {
  case GuardKind::R:
    SetK = EffectKind::SetR;
    AddK = EffectKind::AddR;
    break;
  case GuardKind::LoopActive:
    SetK = EffectKind::SetLoopActive;
    HasAdd = false;
    SlotMatch = true;
    Style = GuardStyle::Bool;
    break;
  case GuardKind::LoopRo:
    SetK = EffectKind::SetLoopRo;
    AddK = EffectKind::AddLoopRo;
    SlotMatch = true;
    break;
  case GuardKind::LoopOlEq:
  case GuardKind::LoopOlLt:
    SetK = EffectKind::SetLoopOl;
    AddK = EffectKind::AddLoopOl;
    SlotMatch = true;
    if (G.Kind == GuardKind::LoopOlLt)
      Style = GuardStyle::Lt;
    break;
  case GuardKind::ActiveI:
    SetK = EffectKind::SetActiveI;
    HasAdd = false;
    Style = GuardStyle::Bool;
    break;
  case GuardKind::HaveCaller:
    SetK = EffectKind::SetHaveCaller;
    HasAdd = false;
    Style = GuardStyle::Bool;
    break;
  case GuardKind::RI:
    SetK = EffectKind::SetRI;
    AddK = EffectKind::AddRI;
    break;
  case GuardKind::OlIEq:
  case GuardKind::OlILt:
    SetK = EffectKind::SetOlI;
    AddK = EffectKind::AddOlI;
    if (G.Kind == GuardKind::OlILt)
      Style = GuardStyle::Lt;
    break;
  case GuardKind::CallerPre:
    SetK = EffectKind::SetCallerPre;
    HasAdd = false;
    break;
  case GuardKind::CallSiteI:
    SetK = EffectKind::SetCallSiteI;
    HasAdd = false;
    break;
  case GuardKind::ActiveII:
    SetK = EffectKind::SetActiveII;
    HasAdd = false;
    Style = GuardStyle::Bool;
    break;
  case GuardKind::RoII:
    SetK = EffectKind::SetRoII;
    AddK = EffectKind::AddRoII;
    break;
  case GuardKind::OlIIEq:
  case GuardKind::OlIILt:
    SetK = EffectKind::SetOlII;
    AddK = EffectKind::AddOlII;
    if (G.Kind == GuardKind::OlIILt)
      Style = GuardStyle::Lt;
    break;
  case GuardKind::CalleePathII:
    SetK = EffectKind::SetCalleePathII;
    HasAdd = false;
    break;
  case GuardKind::CallSiteII:
    SetK = EffectKind::SetCallSiteII;
    HasAdd = false;
    break;
  case GuardKind::CalleeII:
    SetK = EffectKind::SetCalleeII;
    HasAdd = false;
    break;
  case GuardKind::PendingValid: {
    const TraceEffect *M = nullptr;
    int Count = 0;
    for (const TraceEffect &E : PassEffects) {
      if (E.Depth != 0)
        continue;
      if (E.Kind == EffectKind::PendingSet ||
          E.Kind == EffectKind::PendingClear) {
        ++Count;
        M = &E;
      }
    }
    if (Count == 0)
      return budgetInf();
    if (Count > 1)
      return budgetOne();
    const bool After = M->Kind == EffectKind::PendingSet;
    return After == (G.V != 0) ? budgetInf() : budgetOne();
  }
  case GuardKind::PendingCallee:
  case GuardKind::PendingPathId: {
    // PendingClear leaves Callee/PathId untouched — only PendingSet is a
    // write for these guards.
    const TraceEffect *M = nullptr;
    int Count = 0;
    for (const TraceEffect &E : PassEffects) {
      if (E.Depth != 0)
        continue;
      if (E.Kind == EffectKind::PendingSet) {
        ++Count;
        M = &E;
      }
    }
    if (Count == 0)
      return budgetInf();
    if (Count > 1)
      return budgetOne();
    if (G.Kind == GuardKind::PendingCallee)
      return M->Slot == G.Slot ? budgetInf() : budgetOne();
    return M->V == G.V ? budgetInf() : budgetOne();
  }
  case GuardKind::ShadowDepth:
  case GuardKind::ShadowSiteAt:
  case GuardKind::ShadowPreAt:
    for (const TraceEffect &E : PassEffects)
      if (E.Kind == EffectKind::ShadowPush || E.Kind == EffectKind::ShadowPop)
        return budgetOne();
    return budgetInf();
  }

  const TraceEffect *Match = nullptr;
  bool IsAdd = false;
  int Count = 0;
  for (const TraceEffect &E : PassEffects) {
    if (E.Depth != 0)
      continue;
    const bool MS = E.Kind == SetK;
    const bool MA = HasAdd && E.Kind == AddK;
    if (!MS && !MA)
      continue;
    if (SlotMatch && E.Slot != G.Slot)
      continue;
    ++Count;
    Match = &E;
    IsAdd = MA;
  }
  if (Count == 0)
    return budgetInf();
  if (Count > 1)
    return budgetOne();
  if (IsAdd) {
    if (Style == GuardStyle::Lt)
      return Match->V <= 0 ? budgetInf() : budgetDynLt(Match->V);
    return Match->V == 0 ? budgetInf() : budgetOne();
  }
  const int64_t V = Match->V;
  switch (Style) {
  case GuardStyle::Eq:
    return V == G.V ? budgetInf() : budgetOne();
  case GuardStyle::Bool:
    return (V != 0) == (G.V != 0) ? budgetInf() : budgetOne();
  case GuardStyle::Lt:
    return V < G.V ? budgetInf() : budgetOne();
  }
  return budgetOne();
}

void computeBudgets(CompiledTrace &T) {
  T.Budgets.clear();
  T.Budgets.reserve(T.Guards.size());
  for (const TraceGuard &G : T.Guards)
    T.Budgets.push_back(budgetFor(G, T.PassEffects));
  T.Budgeted = true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

void optimizeTrace(CompiledTrace &T, const TraceOptConfig &C,
                   TraceOptStats *SOut) {
  TraceOptStats Local;
  TraceOptStats &St = SOut ? *SOut : Local;
  const bool DoFold = (C.Stages & kTraceOptFold) != 0;
  const bool DoGuard = (C.Stages & kTraceOptGuardElim) != 0;
  std::vector<uint8_t> Removed(T.Steps.size(), 0);
  std::vector<TraceRecovery> Pend;
  if (DoFold || DoGuard) {
    ValuePass VP(T, DoFold, DoGuard, Removed, St);
    VP.run();
  }
  if (DoFold && (C.Stages & kTraceOptDWE))
    deadWriteElim(T, Removed, Pend, St);
  if (C.FaultDropGuard)
    dropLastBranchGuard(T, Removed);
  compact(T, Removed, Pend);
  if (C.Stages & kTraceOptCoalesce)
    coalesceEffects(T, St);
  if (C.Stages & kTraceOptBudget)
    computeBudgets(T);
}

} // namespace olpp

//===----------------------------------------------------------------------===//
// Dump (goldens + debugging)
//===----------------------------------------------------------------------===//

namespace olpp {
namespace {

const char *opName(TOp Op) {
  static const char *const Names[] = {
      "const",    "move",     "add",       "sub",        "mul",
      "div",      "mod",      "and",       "or",         "xor",
      "shl",      "shr",      "cmpeq",     "cmpne",      "cmplt",
      "cmple",    "cmpgt",    "cmpge",     "addimm",     "andimm",
      "cmpeqimm", "cmpneimm", "cmpltimm",  "cmpleimm",   "cmpgtimm",
      "cmpgeimm", "neg",      "not",       "loadg",      "storeg",
      "loadarr",  "storearr", "guardtrue", "guardfalse", "guardcallee",
      "call",     "ret"};
  return Names[static_cast<size_t>(Op)];
}

const char *guardName(GuardKind K) {
  static const char *const Names[] = {
      "R",          "LoopActive", "LoopRo",       "LoopOlEq",
      "LoopOlLt",   "ActiveI",    "HaveCaller",   "RI",
      "OlIEq",      "OlILt",      "CallerPre",    "CallSiteI",
      "ActiveII",   "RoII",       "OlIIEq",       "OlIILt",
      "CalleePathII", "CallSiteII", "CalleeII",   "PendingValid",
      "PendingCallee", "PendingPathId", "ShadowDepth", "ShadowSiteAt",
      "ShadowPreAt"};
  return Names[static_cast<size_t>(K)];
}

const char *effectName(EffectKind K) {
  static const char *const Names[] = {
      "SetR",         "AddR",         "SetRI",          "AddRI",
      "SetOlI",       "AddOlI",       "SetCallerPre",   "SetCallSiteI",
      "SetActiveI",   "SetHaveCaller", "SetRoII",       "AddRoII",
      "SetOlII",      "AddOlII",      "SetCalleePathII", "SetCallSiteII",
      "SetCalleeII",  "SetActiveII",  "SetLoopRo",      "AddLoopRo",
      "SetLoopOl",    "AddLoopOl",    "SetLoopActive",  "ShadowPush",
      "ShadowPop",    "PendingSet",   "PendingClear"};
  return Names[static_cast<size_t>(K)];
}

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

void appendReg(std::string &Out, Reg R) {
  if (R == NoReg)
    Out += " -";
  else
    appendf(Out, " r%u", R);
}

} // namespace

std::string dumpTrace(const CompiledTrace &T) {
  std::string Out;
  appendf(Out, "%s func=%u anchor=%u@%u start=%u@%u multipass=%d "
               "basesteps=%u budgeted=%d\n",
          T.IsBridge ? "bridge" : "trace", T.FuncId, T.AnchorPc,
          T.AnchorBlock, T.StartPc, T.StartBlock, T.MultiPass ? 1 : 0,
          T.PassBaseSteps, T.Budgeted ? 1 : 0);
  appendf(Out, "guards: %zu\n", T.Guards.size());
  for (size_t I = 0; I < T.Guards.size(); ++I) {
    const TraceGuard &G = T.Guards[I];
    appendf(Out, "  [%zu] %s slot=%u v=%lld", I, guardName(G.Kind), G.Slot,
            static_cast<long long>(G.V));
    if (T.Budgeted) {
      const GuardBudget &B = T.Budgets[I];
      if (B.M == GuardBudget::Inf)
        Out += " budget=inf";
      else if (B.M == GuardBudget::One)
        Out += " budget=one";
      else
        appendf(Out, " budget=lt+%lld", static_cast<long long>(B.Delta));
    }
    Out += "\n";
  }
  appendf(Out, "steps: %zu\n", T.Steps.size());
  for (size_t I = 0; I < T.Steps.size(); ++I) {
    const TraceStep &S = T.Steps[I];
    const TraceStepMeta &M = T.Meta[I];
    appendf(Out, "  [%zu] %s", I, opName(S.Op));
    switch (S.Op) {
    case TOp::Const:
      appendReg(Out, S.Dst);
      appendf(Out, " %lld", static_cast<long long>(S.Imm));
      break;
    case TOp::Move:
    case TOp::Neg:
    case TOp::Not:
      appendReg(Out, S.Dst);
      appendReg(Out, S.Src0);
      break;
    case TOp::AddImm:
    case TOp::AndImm:
    case TOp::CmpEqImm:
    case TOp::CmpNeImm:
    case TOp::CmpLtImm:
    case TOp::CmpLeImm:
    case TOp::CmpGtImm:
    case TOp::CmpGeImm:
      appendReg(Out, S.Dst);
      appendReg(Out, S.Src0);
      appendf(Out, " %lld", static_cast<long long>(S.Imm));
      break;
    case TOp::LoadG:
      appendReg(Out, S.Dst);
      appendf(Out, " g%u", S.Aux);
      break;
    case TOp::StoreG:
      appendf(Out, " g%u", S.Aux);
      appendReg(Out, S.Src0);
      break;
    case TOp::LoadArr:
      appendReg(Out, S.Dst);
      appendf(Out, " g%u[", S.Aux);
      appendReg(Out, S.Src0);
      Out += " ]";
      break;
    case TOp::StoreArr:
      appendf(Out, " g%u[", S.Aux);
      appendReg(Out, S.Src0);
      Out += " ]";
      appendReg(Out, S.Src1);
      break;
    case TOp::GuardTrue:
    case TOp::GuardFalse:
      appendReg(Out, S.Src0);
      break;
    case TOp::GuardCallee:
      appendReg(Out, S.Src0);
      appendf(Out, " f%u", S.Aux);
      break;
    case TOp::Call:
      appendReg(Out, S.Dst);
      appendf(Out, " f%u (", S.Aux);
      for (uint32_t A = 0; A < S.ArgsCount; ++A)
        appendReg(Out, S.Args[A]);
      Out += " )";
      break;
    case TOp::Ret:
      appendReg(Out, S.Src0);
      break;
    default:
      appendReg(Out, S.Dst);
      appendReg(Out, S.Src0);
      appendReg(Out, S.Src1);
      break;
    }
    appendf(Out, "  @f%u:%u b%u base=%u\n", M.FuncId, M.Pc, M.Block,
            M.BaseIdx);
  }
  appendf(Out, "effects: %zu\n", T.Effects.size());
  for (size_t I = 0; I < T.Effects.size(); ++I) {
    const TraceEffect &E = T.Effects[I];
    appendf(Out, "  [%zu] %s d=%u slot=%u base=%u v=%lld\n", I,
            effectName(E.Kind), E.Depth, E.Slot, E.BaseIdx,
            static_cast<long long>(E.V));
  }
  appendf(Out, "passeffects: %zu\n", T.PassEffects.size());
  for (size_t I = 0; I < T.PassEffects.size(); ++I) {
    const TraceEffect &E = T.PassEffects[I];
    appendf(Out, "  [%zu] %s d=%u slot=%u v=%lld\n", I, effectName(E.Kind),
            E.Depth, E.Slot, static_cast<long long>(E.V));
  }
  appendf(Out, "bumps: %zu\n", T.Bumps.size());
  for (size_t I = 0; I < T.Bumps.size(); ++I) {
    const TraceBump &B = T.Bumps[I];
    appendf(Out, "  [%zu] table=%u func=%u base=%u id=%lld\n", I, B.Table,
            B.FuncId, B.BaseIdx, static_cast<long long>(B.Id));
  }
  appendf(Out, "recov: %zu\n", T.Recov.size());
  for (size_t I = 0; I < T.Recov.size(); ++I) {
    const TraceRecovery &R = T.Recov[I];
    const char *W = R.Wrap ? " wrap" : "";
    if (R.Copy)
      appendf(Out, "  [%zu] [%u,%u]%s r%u = r%u\n", I, R.Begin, R.End, W,
              R.R, R.Src);
    else
      appendf(Out, "  [%zu] [%u,%u]%s r%u = %lld\n", I, R.Begin, R.End, W,
              R.R, static_cast<long long>(R.V));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Static path-feasibility cross-check
//===----------------------------------------------------------------------===//

bool TraceFeasibilityFacts::infeasible(uint32_t FuncId, int64_t Id) const {
  for (const auto &F : PerFunc) {
    if (F.first != FuncId)
      continue;
    const std::vector<Interval> &Iv = F.second;
    auto It = std::upper_bound(
        Iv.begin(), Iv.end(), Id,
        [](int64_t V, const Interval &I) { return V < I.Lo; });
    if (It == Iv.begin())
      return false;
    --It;
    return Id <= It->Hi;
  }
  return false;
}

bool traceBumpsFeasible(const CompiledTrace &T,
                        const TraceFeasibilityFacts &Facts) {
  for (const TraceBump &B : T.Bumps)
    if (B.Table == 0 && Facts.infeasible(B.FuncId, B.Id))
      return false;
  return true;
}

} // namespace olpp
