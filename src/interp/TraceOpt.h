//===--- TraceOpt.h - Trace-local optimizer ---------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimization pipeline over CompiledTrace (interp/TraceTier.h). The
/// compiler already elides every probe — probe state lives symbolically
/// and counter bumps are a precomputed side table — so this layer attacks
/// what is left: the straight-line register program and the per-pass guard
/// sweep. Stages (maskable for A/B measurement):
///
///   kFold      — forward value pass: copy propagation, constant folding
///                with a small value-range (interval) lattice mirroring
///                the analysis/ValueRange domain, and store-to-load
///                forwarding of globals.
///   kDWE       — dead-write elimination of overwritten or whole-pass-dead
///                Const/Move steps. Every removed write gets a
///                TraceRecovery entry so a deopt inside its live window
///                still materializes the value — deopt state stays
///                bit-exact. Whole-pass-dead writes additionally get a
///                cyclic Wrap window whose value is re-applied both at
///                every deopt and at clean exits; that replay scales with
///                deopt frequency, so the tier can gate this stage off per
///                trace when the observed deopt rate makes it a net loss
///                (RunConfig::TraceDWEGate).
///   kGuardElim — drops branch guards whose condition the value pass
///                proved (a guard implied by an earlier guard or by the
///                interval facts), and duplicate callee guards.
///   kCoalesce  — merges TraceEffect entries that hit the same component
///                at the same base position (Set;Add -> Set, Add;Add ->
///                Add, Set;Set -> last), shrinking the deopt effect list.
///   kBudget    — computes per-guard pass budgets (GuardBudget) from the
///                collapsed PassEffects, letting the executor run a batch
///                of K passes with a single guard sweep and one scaled
///                effect application instead of K of each.
///
/// The optimizer never touches accounting: a removed step keeps its cost
/// inside the surviving Cum* prefixes and the Pass* totals, so DynCounts
/// stay bit-identical to the untraced engine (the step's register effect
/// is what recovery re-creates; its cost was always charged as if
/// executed, exactly like the compiler's ghost steps).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_TRACEOPT_H
#define OLPP_INTERP_TRACEOPT_H

#include "interp/TraceTier.h"

#include <string>
#include <utility>
#include <vector>

namespace olpp {

/// Stage bits for TraceSettings::OptStages / TraceOptConfig::Stages.
enum TraceOptStage : uint32_t {
  kTraceOptFold = 1u << 0,
  kTraceOptGuardElim = 1u << 1,
  kTraceOptCoalesce = 1u << 2,
  kTraceOptBudget = 1u << 3,
  kTraceOptDWE = 1u << 4,
  kTraceOptAll = (1u << 5) - 1,
};

struct TraceOptConfig {
  uint32_t Stages = kTraceOptAll;
  /// Fuzz-only planted bug: unconditionally delete the last branch guard
  /// of the body. The differential trace oracle must catch the resulting
  /// divergence (fuzz/Fuzzer.h FaultKind::DropTraceGuard).
  bool FaultDropGuard = false;
};

/// Per-trace optimizer counters (dump/experiments).
struct TraceOptStats {
  uint32_t StepsRemoved = 0;
  uint32_t GuardsRemoved = 0;
  uint32_t EffectsCoalesced = 0;
  uint32_t ConstsFolded = 0;
};

/// Optimizes \p T in place. Safe on any compiled trace, anchor or bridge.
void optimizeTrace(CompiledTrace &T, const TraceOptConfig &C = {},
                   TraceOptStats *S = nullptr);

/// Deterministic text dump of a compiled trace body (goldens + debugging).
std::string dumpTrace(const CompiledTrace &T);

/// Static path knowledge handed across the layering boundary: src/interp
/// links only olpp_ir, so the profile layer's InfeasiblePaths results are
/// passed in as plain sorted id intervals per function. Producers (the
/// driver, the fuzz oracle, tests) fill this from
/// profile/InfeasiblePaths.h's FunctionInfeasibility.
struct TraceFeasibilityFacts {
  struct Interval {
    int64_t Lo = 0;
    int64_t Hi = 0; ///< inclusive
  };
  /// Per function id: disjoint, sorted infeasible BL/OL path-id intervals.
  std::vector<std::pair<uint32_t, std::vector<Interval>>> PerFunc;

  bool infeasible(uint32_t FuncId, int64_t Id) const;
};

/// Cross-checks the trace's precomputed path-counter bumps against the
/// static feasibility facts: a trace whose guards statically determine its
/// path ids must only bump ids the analysis proves reachable. Returns
/// false (trace must be rejected) when any Table-0 bump targets an id the
/// facts classify infeasible — that can only mean a compiler or optimizer
/// bug, so the caller treats it like a failed compilation.
bool traceBumpsFeasible(const CompiledTrace &T,
                        const TraceFeasibilityFacts &Facts);

} // namespace olpp

#endif // OLPP_INTERP_TRACEOPT_H
