//===--- Interpreter.h - OLPP IR interpreter --------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic interpreter for the OLPP IR. It executes probes against a
/// ProfileRuntime, streams control flow into a TraceSink, and keeps the
/// dynamic-cost counters (interp/CostModel.h) used to reproduce the paper's
/// overhead experiments. Runtime faults (division by zero, array bounds,
/// call-depth and fuel exhaustion) abort the run with a diagnostic instead
/// of raising exceptions.
///
/// Two engines execute the same semantics:
///   - Fast (default): a pre-decoded flat execution form (interp/ExecPlan.h)
///     driven by a tight single-switch dispatch loop over contiguous code,
///     register and loop-slot arrays.
///   - Reference: the original tree-walking loop over BasicBlock pointers,
///     kept as the differential-testing oracle (`olpp ... --engine=reference`).
/// Both produce bit-identical DynCounts, counter stores, traces and
/// diagnostics; tests/interp/EngineDiffTest.cpp enforces this across the
/// whole workload suite.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_INTERPRETER_H
#define OLPP_INTERP_INTERPRETER_H

#include "interp/TraceTier.h"
#include "ir/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

class ProfileRuntime;
class TraceSink;
struct ExecPlan;
struct TraceFeasibilityFacts;

/// Which execution engine runs the program.
enum class EngineKind : uint8_t {
  Fast,      ///< pre-decoded flat execution form (the default)
  Reference, ///< original pointer-chasing loop; the differential oracle
};

/// Parses "fast" / "reference"; returns false on anything else.
bool parseEngineKind(const std::string &Name, EngineKind &Out);
const char *engineKindName(EngineKind E);

/// Limits and inputs of one run.
struct RunConfig {
  /// Maximum executed instructions (probes included) before the run is
  /// aborted as a suspected non-terminating program.
  uint64_t MaxSteps = 500'000'000;
  uint32_t MaxCallDepth = 4096;
  EngineKind Engine = EngineKind::Fast;

  /// Hot-path tracing tier (fast engine only; see interp/TraceTier.h).
  /// Traces never change observable results — counters, DynCounts, traces
  /// and diagnostics stay bit-exact — so the tier defaults on. It disables
  /// itself automatically when a TraceSink is attached (the recorder needs
  /// the sink slot) or when no ProfileRuntime is present (no hotness
  /// signal without OL path completions).
  bool EnableTraces = true;
  /// OL path-id completions of one path before recording triggers
  /// (0 = record on the first completion).
  uint32_t TraceThreshold = 32;

  /// Trace-local optimizer (interp/TraceOpt.h). EnableTraceOpt off means
  /// compiled traces run verbatim (the honest A/B baseline for
  /// --no-trace-opt); TraceOptStages selects individual stages for
  /// per-stage experiments.
  bool EnableTraceOpt = true;
  uint32_t TraceOptStages = 0x1Fu; // kTraceOptAll
  /// Side-exit deopts at one guard before a bridge trace is recorded and
  /// stitched in (0 = linking off).
  uint32_t TraceLinkThreshold = 8;
  /// Deopts per 100 trace enters above which a root trace that carries
  /// wrap-recovery dead-write elimination is retired and recompiled with
  /// that stage disabled — the recovery replay on every deopt can cost
  /// more than the eliminated writes save (0 = never gate).
  uint32_t TraceDWEGate = 100;
  /// Fuzz-only planted optimizer bug (FaultKind::DropTraceGuard).
  bool TraceOptDropGuardFault = false;
  /// Optional static path-feasibility facts (profile/InfeasiblePaths via
  /// plain data; see interp/TraceOpt.h). Used as a compiler cross-check:
  /// a trace whose precomputed bumps hit a statically infeasible path id
  /// is rejected. Never changes observable behavior.
  const TraceFeasibilityFacts *TraceFacts = nullptr;
};

/// Dynamic counters of one run.
struct DynCounts {
  uint64_t BaseCost = 0;  ///< cost units of ordinary instructions
  uint64_t ProbeCost = 0; ///< cost units of probe micro-ops
  uint64_t Steps = 0;     ///< executed instructions (probes included)
  uint64_t Blocks = 0;    ///< basic block entries
  uint64_t Calls = 0;     ///< executed call instructions

  /// Instrumentation overhead in percent relative to \p Baseline (the same
  /// program executed uninstrumented).
  double overheadPercentOver(const DynCounts &Baseline) const {
    if (Baseline.BaseCost == 0)
      return 0.0;
    return 100.0 * static_cast<double>(totalCost() - Baseline.BaseCost) /
           static_cast<double>(Baseline.BaseCost);
  }
  uint64_t totalCost() const { return BaseCost + ProbeCost; }

  bool operator==(const DynCounts &O) const {
    return BaseCost == O.BaseCost && ProbeCost == O.ProbeCost &&
           Steps == O.Steps && Blocks == O.Blocks && Calls == O.Calls;
  }
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  int64_t ReturnValue = 0;
  DynCounts Counts;
  /// Tracing-tier activity of this run (all zero for the reference engine
  /// or when the tier is disabled).
  TraceTierStats Trace;
};

/// Executes functions of one module. The module must stay alive for the
/// interpreter's lifetime and must not be mutated after the first fast-engine
/// run (the pre-decoded plan is built once and cached). Global state persists
/// across run() calls; use resetGlobals() between independent runs.
class Interpreter {
public:
  /// \p Prof may be null (probes become free no-ops); \p Trace may be null.
  Interpreter(const Module &M, ProfileRuntime *Prof = nullptr,
              TraceSink *Trace = nullptr);
  ~Interpreter();

  /// Runs \p Entry with \p Args (must match the arity).
  RunResult run(const Function &Entry, const std::vector<int64_t> &Args,
                const RunConfig &Config = RunConfig());

  /// Zeroes all global scalars and arrays.
  void resetGlobals();

private:
  RunResult runReference(const Function &Entry,
                         const std::vector<int64_t> &Args,
                         const RunConfig &Config);
  RunResult runFast(const Function &Entry, const std::vector<int64_t> &Args,
                    const RunConfig &Config);
  const ExecPlan &ensurePlan();

  const Module &M;
  ProfileRuntime *Prof;
  TraceSink *Trace;
  std::vector<std::vector<int64_t>> Globals; // one vector per global
  /// The pre-decoded plan, fetched lazily from the process-wide
  /// ExecPlanCache; shared (immutably) with every other interpreter of a
  /// content-identical module.
  std::shared_ptr<const ExecPlan> Plan;
};

} // namespace olpp

#endif // OLPP_INTERP_INTERPRETER_H
