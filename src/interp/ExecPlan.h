//===--- ExecPlan.h - Pre-decoded flat execution form -----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast engine's execution form: every function is decoded once into a
/// flat array of ExecInstrs whose operand, branch-target and callee
/// references are dense indices. The dispatch loop then runs over one
/// contiguous array per function with a single switch per step — no
/// BasicBlock pointer chasing, no shared_ptr dereference per probe, no
/// per-call argument vectors (call argument registers live in a pooled
/// array).
///
/// The plan is a pure read-only view: it borrows the Module (which must
/// outlive it) and never mutates it. Blocks keep their ids so trace events
/// and error messages are identical to the reference engine's.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_EXECPLAN_H
#define OLPP_INTERP_EXECPLAN_H

#include "ir/Module.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

/// The fast engine's opcode space: a strict superset of the IR's Opcode.
/// The first kNumBaseOps values mirror Opcode bit-for-bit (the decoder
/// static_asserts this), so a plain instruction decodes by a cast. The
/// tail holds fused superinstructions the decoder synthesizes — currently
/// compare-and-branch pairs, the hottest dispatch edge in loop code.
enum class ExecOp : uint8_t {
  Const,
  Move,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Neg,
  Not,
  LoadG,
  StoreG,
  LoadArr,
  StoreArr,
  Call,
  CallInd,
  Ret,
  Br,
  CondBr,
  Probe,
  // Fused Cmp* + CondBr. Dst/Src0/Src1 come from the compare (the compare
  // result is still written to Dst), the targets from the branch. The
  // branch's own ExecInstr stays in place after the pair — nothing jumps
  // to it (branch targets are always block starts), it only documents the
  // original shape.
  CmpEqBr,
  CmpNeBr,
  CmpLtBr,
  CmpLeBr,
  CmpGtBr,
  CmpGeBr,
  // Fused straight-line runs. The handler executes every constituent with
  // its exact per-step fuel and cost accounting but with a single dispatch;
  // the trailing constituents' ExecInstrs stay in place as operand records
  // (the handler reads Code[Pc+1], Code[Pc+2], ... directly). Pairs/quads
  // are chosen from the dynamically hottest adjacencies of instrumented
  // loop code.
  ConstAnd,
  AndLoadArr,
  LoadArrMove,
  AddMove,
  MoveConst,
  ConstAdd,
  MoveBr,
  ConstAndLoadArrMove,
  ConstAndLoadArr,
  ConstAddMove,
  ConstAddMoveBr,
  CmpEqConstCmpNeBr,
  LoadGCmpLtBr,
  ConstCmpEqBr,
  AndCmpEqBr,
  LoadArrCmpEqBr,
  LoadArrConst,
  ConstAndLoadArrMoveCmpEqBr,
  // Probe-pattern specializations: the instrumenter emits a small set of
  // canonical probe shapes (predicate-node probes, backedge flush/arm/set
  // sequences, function entries, call-site and return sequences); decoding
  // them to dedicated opcodes replaces the per-op interpretation loop with
  // straight-line code. The ...Br variants additionally fuse a trailing
  // unconditional branch — the shape of every split-edge probe block.
  PrOLPred,           ///< [OLPred]
  PrOLPredPredI,      ///< [OLPred, IPPredI]
  PrOLPred2PredI,     ///< [OLPred, OLPred, IPPredI]
  PrAddI,             ///< [IPAddI]
  PrAddII,            ///< [IPAddII]
  PrPredII,           ///< [IPPredII]
  PrEnter,            ///< [BLSet, IPEnter]
  PrEnterPredI,       ///< [BLSet, IPEnter, IPPredI]
  PrFlushIIArmSet,    ///< [IPFlushII, OLArm, BLSet]
  PrFlushICountRet,   ///< [IPFlushI, BLCount, IPRet]
  PrCountCall,        ///< [BLCount, IPCall]
  PrSetArmII,         ///< [BLSet, IPArmII]
  PrOLPredBr,         ///< [OLPred] + Br
  PrAddIBr,           ///< [IPAddI] + Br
  PrAddIIBr,          ///< [IPAddII] + Br
  PrSetArmIIBr,       ///< [BLSet, IPArmII] + Br
  PrFlushIIArmSetBr,  ///< [IPFlushII, OLArm, BLSet] + Br
  PrProbeBr,          ///< any other probe shape + Br
  // Probe-led whole-block compounds: a specialized probe at the block
  // head fused with the short straight-line body and terminator behind
  // it — the complete shape of the hottest instrumented loop blocks.
  PrOLPredPredILoadGCmpLtBr,  ///< [OLPred, IPPredI] + LoadG, CmpLt, CondBr
  PrOLPred2PredILoadGCmpLtBr, ///< [OLPred, OLPred, IPPredI] + LoadG, CmpLt, CondBr
  PrEnterPredIAndCmpEqBr,     ///< [BLSet, IPEnter, IPPredI] + And, CmpEq, CondBr
  PrOLPredCmpEqBr,            ///< [OLPred] + CmpEq, CondBr
  PrOLPredPredICondBr,        ///< [OLPred, IPPredI] + CondBr
  PrOLPredCondBr,             ///< [OLPred] + CondBr
  PrPredIICondBr,             ///< [IPPredII] + CondBr
  // Second-generation specializations, from profiling the whole workload
  // suite: the remaining hot probe shapes (backedge flush chains, call-site
  // and return sequences of instrumented calls) and their Br variants.
  PrPredI,                  ///< [IPPredI]
  PrOLPred2,                ///< [OLPred, OLPred]
  PrFlushIICountCall,       ///< [IPFlushII, BLCount, IPCall]
  PrFlushICountCall,        ///< [IPFlushI, BLCount, IPCall]
  PrOLFlushCountCall,       ///< [OLFlush, BLCount, IPCall]
  PrOLFlushFlushICountCall, ///< [OLFlush, IPFlushI, BLCount, IPCall]
  PrFlushIICountRet,        ///< [IPFlushII, BLCount, IPRet]
  PrFlushIFlushArmSet,      ///< [IPFlushI, OLFlush, OLArm, BLSet]
  PrBLAdd,                  ///< [BLAdd]
  PrBLAddOLAdd,             ///< [BLAdd, OLAdd]
  PrFlushIFlushArmSetBr,    ///< [IPFlushI, OLFlush, OLArm, BLSet] + Br
  PrBLAddBr,                ///< [BLAdd] + Br
  PrBLAddOLAddBr,           ///< [BLAdd, OLAdd] + Br
  // Probe + Call and probe + Ret fusions: the probe step and the call or
  // return instruction behind it share one dispatch (the handler runs the
  // probe, then jumps into the plain Call/Ret handler body).
  PrCountCallCall,              ///< [BLCount, IPCall] + Call
  PrFlushIICountCallCall,       ///< [IPFlushII, BLCount, IPCall] + Call
  PrFlushICountCallCall,        ///< [IPFlushI, BLCount, IPCall] + Call
  PrOLFlushCountCallCall,       ///< [OLFlush, BLCount, IPCall] + Call
  PrOLFlushFlushICountCallCall, ///< [OLFlush, IPFlushI, BLCount, IPCall] + Call
  PrFlushICountRetRet,          ///< [IPFlushI, BLCount, IPRet] + Ret
  PrFlushIICountRetRet,         ///< [IPFlushII, BLCount, IPRet] + Ret
  ConstPrFlushICountRetRet,     ///< Const + [IPFlushI, BLCount, IPRet] + Ret
  // Remaining hot straight-line runs and probe-led block heads.
  ConstAndLoadArrConstCmpEqBr,   ///< Const, And, LoadArr, Const + CmpEq/CondBr
  LoadArrConstCmpEqConstCmpNeBr, ///< LoadArr, Const, CmpEq, Const, CmpNe + Br
  ConstAndLoadArrMove2,          ///< two ConstAndLoadArrMove runs back to back
  ConstCmpGeBr,                  ///< Const + CmpGe/CondBr
  PrOLPredPredIConstAndLoadArr,    ///< [OLPred, IPPredI] + Const, And, LoadArr
  PrEnterPredIConstAndLoadArrMove, ///< [BLSet, IPEnter, IPPredI] + CALA, Move
  ConstAddMovePrFlushIIArmSetBr,   ///< CAM + [IPFlushII, OLArm, BLSet] + Br
  ConstAddMovePrFlushIFlushArmSetBr, ///< CAM + PrFlushIFlushArmSet + Br
};

inline constexpr unsigned kNumBaseOps = static_cast<unsigned>(ExecOp::Probe) + 1;
inline constexpr unsigned kNumExecOps =
    static_cast<unsigned>(ExecOp::ConstAddMovePrFlushIFlushArmSetBr) + 1;

/// One pre-decoded instruction. Branch targets are program counters into
/// the owning FuncPlan::Code plus the target's block id (for trace events
/// and block counting). ArgsBegin/ArgsCount window into ArgPool for calls
/// and into ProbePool for ExecOp::Probe (probe programs are flattened at
/// decode time too — no shared_ptr or ops-vector chase per probe).
struct ExecInstr {
  ExecOp Op;
  Reg Dst = NoReg;
  Reg Src0 = NoReg;
  Reg Src1 = NoReg;
  int64_t Imm = 0;
  uint32_t GlobalId = 0;
  uint32_t CalleeId = 0;
  uint32_t Target0Pc = 0, Target1Pc = 0;
  uint32_t Target0Blk = 0, Target1Blk = 0;
  uint32_t ArgsBegin = 0, ArgsCount = 0;
};

/// One function, flattened: blocks concatenated in id order.
struct FuncPlan {
  /// Function name, for error messages. Plans hold no pointers back into
  /// the module they were decoded from: a plan is a pure value, so one
  /// immutable plan can outlive its module and be shared by every module
  /// with identical content (interp/PlanCache.h).
  std::string Name;
  std::vector<ExecInstr> Code;
  /// Block id -> pc of the block's first instruction (ascending).
  std::vector<uint32_t> BlockPc;
  /// Pooled call-argument registers referenced by ExecInstr::ArgsBegin.
  std::vector<Reg> ArgPool;
  /// Pooled probe micro-ops referenced by Probe instructions' ArgsBegin.
  std::vector<ProbeOp> ProbePool;
  uint32_t NumRegs = 0;
  uint32_t NumParams = 0;
  uint32_t NumLoopSlots = 0;

  /// Id of the block containing \p Pc (error reporting only; O(log n)).
  uint32_t blockOfPc(uint32_t Pc) const;
};

class PlanTraceCacheSet;

/// The whole module, pre-decoded. Self-contained: safe to share (read-only)
/// across threads and across identical-content modules. The decoded code is
/// immutable; Traces (the hot-path tracing tier's compiled traces, see
/// interp/TraceTier.h) is the one concurrently-growing part, and its own
/// synchronization makes sharing the plan across interpreters safe. Traces
/// are segregated per trace-settings inside the set, so runs with different
/// thresholds (or tracing disabled) never observe each other's traces even
/// though they share the plan.
struct ExecPlan {
  ExecPlan();
  ~ExecPlan();
  ExecPlan(ExecPlan &&) = default;
  ExecPlan &operator=(ExecPlan &&) = default;

  std::vector<FuncPlan> Funcs;
  std::unique_ptr<PlanTraceCacheSet> Traces;
};

/// Decodes \p M. The module must be fully built (verified, instrumented if
/// it ever will be) and must not change while the plan is in use.
std::unique_ptr<ExecPlan> buildExecPlan(const Module &M);

/// The first constituent base op of \p Op: fused superinstructions and
/// specialized probes map to the base op of their first step, base ops map
/// to themselves. A sequential pc walk dispatching on execBaseOp sees the
/// exact base-step sequence the dispatch loop executes, because fusion
/// rewrites only head opcodes and every trailing constituent keeps its
/// original ExecInstr in place.
ExecOp execBaseOp(ExecOp Op);

} // namespace olpp

#endif // OLPP_INTERP_EXECPLAN_H
