//===--- PlanCache.cpp - Shared ExecPlan cache ----------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/PlanCache.h"

#include "ir/Module.h"
#include "ir/Printer.h"

#include <utility>
#include <vector>

using namespace olpp;

std::string olpp::modulePlanFingerprint(const Module &M) {
  // The printed IR covers every instruction, operand, target, callee and
  // probe micro-op. Append the fields buildExecPlan additionally reads so
  // the fingerprint really is the plan's whole input.
  std::string FP = printModule(M);
  FP += "\n;;plan-meta";
  for (uint32_t F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = *M.function(F);
    FP += "\n;;fn " + std::to_string(F) + " regs=" +
          std::to_string(Fn.NumRegs) + " params=" +
          std::to_string(Fn.NumParams) + " loops=" +
          std::to_string(Fn.NumLoopSlots);
  }
  for (const GlobalVar &G : M.globals())
    FP += "\n;;global " + G.Name + " size=" + std::to_string(G.Size);
  FP += "\n";
  return FP;
}

ExecPlanCache &ExecPlanCache::global() {
  static ExecPlanCache Cache;
  return Cache;
}

std::shared_ptr<const ExecPlan> ExecPlanCache::get(const Module &M) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ByUid.find(M.uid());
    if (It != ByUid.end()) {
      ++Counters.MemoHits;
      return It->second;
    }
  }

  std::string FP = modulePlanFingerprint(M);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = ByContent.find(FP);
    if (It != ByContent.end()) {
      ++Counters.ContentHits;
      It->second.LastUse = ++UseClock;
      ByUid.emplace(M.uid(), It->second.Plan);
      evictIfNeeded();
      return It->second.Plan;
    }
  }

  // Build outside the lock: two threads may race to build the same plan,
  // in which case the loser's (identical) plan is simply dropped.
  std::shared_ptr<const ExecPlan> Plan = buildExecPlan(M);
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Inserted] = ByContent.try_emplace(std::move(FP));
  if (Inserted) {
    ++Counters.Misses;
    It->second.Plan = Plan;
  } else {
    ++Counters.ContentHits;
    Plan = It->second.Plan;
  }
  It->second.LastUse = ++UseClock;
  ByUid.emplace(M.uid(), Plan);
  evictIfNeeded();
  return Plan;
}

void ExecPlanCache::evictIfNeeded() {
  while (ByContent.size() > Capacity) {
    auto Oldest = ByContent.begin();
    for (auto It = ByContent.begin(); It != ByContent.end(); ++It)
      if (It->second.LastUse < Oldest->second.LastUse)
        Oldest = It;
    // Drop every memo entry pinned to the evicted plan; a module that is
    // still alive will re-enter through the content table.
    std::vector<uint64_t> DeadUids;
    for (const auto &[Uid, P] : ByUid)
      if (P == Oldest->second.Plan)
        DeadUids.push_back(Uid);
    for (uint64_t Uid : DeadUids)
      ByUid.erase(Uid);
    ByContent.erase(Oldest);
  }
  // The uid memo can also grow without bound on its own (many modules, one
  // content). Keep it proportional to the content table.
  const size_t MemoCap = Capacity * 16;
  if (ByUid.size() > MemoCap)
    ByUid.clear(); // coarse, but hits rebuild from the content table
}

ExecPlanCache::Stats ExecPlanCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S = Counters;
  S.Entries = ByContent.size();
  return S;
}

void ExecPlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  ByContent.clear();
  ByUid.clear();
  Counters = Stats();
  UseClock = 0;
}
