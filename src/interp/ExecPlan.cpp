//===--- ExecPlan.cpp - Pre-decoded flat execution form -------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/ExecPlan.h"

#include "interp/TraceTier.h"

#include <algorithm>
#include <cassert>

using namespace olpp;

// Out-of-line so PlanTraceCache can stay an incomplete type in the header.
ExecPlan::ExecPlan() = default;
ExecPlan::~ExecPlan() = default;

ExecOp olpp::execBaseOp(ExecOp Op) {
  if (static_cast<unsigned>(Op) < kNumBaseOps)
    return Op;
  switch (Op) {
  case ExecOp::CmpEqBr:
    return ExecOp::CmpEq;
  case ExecOp::CmpNeBr:
    return ExecOp::CmpNe;
  case ExecOp::CmpLtBr:
    return ExecOp::CmpLt;
  case ExecOp::CmpLeBr:
    return ExecOp::CmpLe;
  case ExecOp::CmpGtBr:
    return ExecOp::CmpGt;
  case ExecOp::CmpGeBr:
    return ExecOp::CmpGe;
  case ExecOp::ConstAnd:
  case ExecOp::ConstAdd:
  case ExecOp::ConstAndLoadArrMove:
  case ExecOp::ConstAndLoadArr:
  case ExecOp::ConstAddMove:
  case ExecOp::ConstAddMoveBr:
  case ExecOp::ConstCmpEqBr:
  case ExecOp::ConstPrFlushICountRetRet:
  case ExecOp::ConstAndLoadArrMoveCmpEqBr:
  case ExecOp::ConstAndLoadArrConstCmpEqBr:
  case ExecOp::ConstAndLoadArrMove2:
  case ExecOp::ConstCmpGeBr:
  case ExecOp::ConstAddMovePrFlushIIArmSetBr:
  case ExecOp::ConstAddMovePrFlushIFlushArmSetBr:
    return ExecOp::Const;
  case ExecOp::AndLoadArr:
  case ExecOp::AndCmpEqBr:
    return ExecOp::And;
  case ExecOp::LoadArrMove:
  case ExecOp::LoadArrCmpEqBr:
  case ExecOp::LoadArrConst:
  case ExecOp::LoadArrConstCmpEqConstCmpNeBr:
    return ExecOp::LoadArr;
  case ExecOp::AddMove:
    return ExecOp::Add;
  case ExecOp::MoveConst:
  case ExecOp::MoveBr:
    return ExecOp::Move;
  case ExecOp::CmpEqConstCmpNeBr:
    return ExecOp::CmpEq;
  case ExecOp::LoadGCmpLtBr:
    return ExecOp::LoadG;
  default:
    // Everything else is a probe specialization or probe-led compound;
    // its head ExecInstr is the original Probe record.
    return ExecOp::Probe;
  }
}

// The decoder turns an Opcode into an ExecOp by a cast; pin the mirror.
static_assert(static_cast<unsigned>(ExecOp::Const) ==
              static_cast<unsigned>(Opcode::Const));
static_assert(static_cast<unsigned>(ExecOp::CmpEq) ==
              static_cast<unsigned>(Opcode::CmpEq));
static_assert(static_cast<unsigned>(ExecOp::CmpGe) ==
              static_cast<unsigned>(Opcode::CmpGe));
static_assert(static_cast<unsigned>(ExecOp::Call) ==
              static_cast<unsigned>(Opcode::Call));
static_assert(static_cast<unsigned>(ExecOp::Probe) ==
              static_cast<unsigned>(Opcode::Probe));

/// True if \p PP is exactly the op-kind sequence \p Kinds.
static bool probeMatches(const ProbeProgram &PP,
                         std::initializer_list<ProbeOpKind> Kinds) {
  if (PP.Ops.size() != Kinds.size())
    return false;
  size_t K = 0;
  for (ProbeOpKind Kind : Kinds)
    if (PP.Ops[K++].Kind != Kind)
      return false;
  return true;
}

/// Specialized opcode for \p PP, or ExecOp::Probe if no pattern matches.
static ExecOp specializeProbe(const ProbeProgram &PP) {
  using K = ProbeOpKind;
  if (probeMatches(PP, {K::OLPred}))
    return ExecOp::PrOLPred;
  if (probeMatches(PP, {K::OLPred, K::IPPredI}))
    return ExecOp::PrOLPredPredI;
  if (probeMatches(PP, {K::OLPred, K::OLPred, K::IPPredI}))
    return ExecOp::PrOLPred2PredI;
  if (probeMatches(PP, {K::IPAddI}))
    return ExecOp::PrAddI;
  if (probeMatches(PP, {K::IPAddII}))
    return ExecOp::PrAddII;
  if (probeMatches(PP, {K::IPPredII}))
    return ExecOp::PrPredII;
  if (probeMatches(PP, {K::BLSet, K::IPEnter}))
    return ExecOp::PrEnter;
  if (probeMatches(PP, {K::BLSet, K::IPEnter, K::IPPredI}))
    return ExecOp::PrEnterPredI;
  if (probeMatches(PP, {K::IPFlushII, K::OLArm, K::BLSet}))
    return ExecOp::PrFlushIIArmSet;
  if (probeMatches(PP, {K::IPFlushI, K::BLCount, K::IPRet}))
    return ExecOp::PrFlushICountRet;
  if (probeMatches(PP, {K::BLCount, K::IPCall}))
    return ExecOp::PrCountCall;
  if (probeMatches(PP, {K::BLSet, K::IPArmII}))
    return ExecOp::PrSetArmII;
  if (probeMatches(PP, {K::IPPredI}))
    return ExecOp::PrPredI;
  if (probeMatches(PP, {K::OLPred, K::OLPred}))
    return ExecOp::PrOLPred2;
  if (probeMatches(PP, {K::IPFlushII, K::BLCount, K::IPCall}))
    return ExecOp::PrFlushIICountCall;
  if (probeMatches(PP, {K::IPFlushI, K::BLCount, K::IPCall}))
    return ExecOp::PrFlushICountCall;
  if (probeMatches(PP, {K::OLFlush, K::BLCount, K::IPCall}))
    return ExecOp::PrOLFlushCountCall;
  if (probeMatches(PP, {K::OLFlush, K::IPFlushI, K::BLCount, K::IPCall}))
    return ExecOp::PrOLFlushFlushICountCall;
  if (probeMatches(PP, {K::IPFlushII, K::BLCount, K::IPRet}))
    return ExecOp::PrFlushIICountRet;
  if (probeMatches(PP, {K::IPFlushI, K::OLFlush, K::OLArm, K::BLSet}))
    return ExecOp::PrFlushIFlushArmSet;
  if (probeMatches(PP, {K::BLAdd}))
    return ExecOp::PrBLAdd;
  if (probeMatches(PP, {K::BLAdd, K::OLAdd}))
    return ExecOp::PrBLAddOLAdd;
  return ExecOp::Probe;
}

/// Br-fused variant of probe op \p A, or ExecOp::Probe if none exists.
static ExecOp probeBrOf(ExecOp A) {
  switch (A) {
  case ExecOp::PrOLPred:
    return ExecOp::PrOLPredBr;
  case ExecOp::PrAddI:
    return ExecOp::PrAddIBr;
  case ExecOp::PrAddII:
    return ExecOp::PrAddIIBr;
  case ExecOp::PrSetArmII:
    return ExecOp::PrSetArmIIBr;
  case ExecOp::PrFlushIIArmSet:
    return ExecOp::PrFlushIIArmSetBr;
  case ExecOp::PrFlushIFlushArmSet:
    return ExecOp::PrFlushIFlushArmSetBr;
  case ExecOp::PrBLAdd:
    return ExecOp::PrBLAddBr;
  case ExecOp::PrBLAddOLAdd:
    return ExecOp::PrBLAddOLAddBr;
  case ExecOp::Probe:
    return ExecOp::PrProbeBr;
  default:
    return ExecOp::Probe; // no fusion
  }
}

/// Call-fused variant of probe op \p A (the probe guarding a call site
/// fused with the Call behind it), or ExecOp::Probe if none exists.
static ExecOp probeCallOf(ExecOp A) {
  switch (A) {
  case ExecOp::PrCountCall:
    return ExecOp::PrCountCallCall;
  case ExecOp::PrFlushIICountCall:
    return ExecOp::PrFlushIICountCallCall;
  case ExecOp::PrFlushICountCall:
    return ExecOp::PrFlushICountCallCall;
  case ExecOp::PrOLFlushCountCall:
    return ExecOp::PrOLFlushCountCallCall;
  case ExecOp::PrOLFlushFlushICountCall:
    return ExecOp::PrOLFlushFlushICountCallCall;
  default:
    return ExecOp::Probe; // no fusion
  }
}

/// Ret-fused variant of probe op \p A, or ExecOp::Probe if none exists.
static ExecOp probeRetOf(ExecOp A) {
  switch (A) {
  case ExecOp::PrFlushICountRet:
    return ExecOp::PrFlushICountRetRet;
  case ExecOp::PrFlushIICountRet:
    return ExecOp::PrFlushIICountRetRet;
  default:
    return ExecOp::Probe; // no fusion
  }
}

/// A multi-instruction fusion pattern: \c Len consecutive decoded ops
/// matching \c Seq are rewritten into the single dispatch \c Fused. The
/// trailing constituents stay in place as operand records (the handler
/// reads Code[Pc+1..Pc+Len-1] directly), so patterns carry no operand
/// constraints — every constituent executes literally from its own slot.
struct FusePattern {
  uint8_t Len;
  ExecOp Seq[8];
  ExecOp Fused;
};

/// Longest-match-first table of the dynamically hottest block shapes of
/// instrumented loop code (probe-led whole blocks, compare-and-branch
/// tails, address-computation runs).
static const FusePattern kFusePatterns[] = {
    {8,
     {ExecOp::Const, ExecOp::And, ExecOp::LoadArr, ExecOp::Move, ExecOp::Const,
      ExecOp::And, ExecOp::LoadArr, ExecOp::Move},
     ExecOp::ConstAndLoadArrMove2},
    {6,
     {ExecOp::Const, ExecOp::And, ExecOp::LoadArr, ExecOp::Move, ExecOp::CmpEq,
      ExecOp::CondBr},
     ExecOp::ConstAndLoadArrMoveCmpEqBr},
    {6,
     {ExecOp::Const, ExecOp::And, ExecOp::LoadArr, ExecOp::Const,
      ExecOp::CmpEq, ExecOp::CondBr},
     ExecOp::ConstAndLoadArrConstCmpEqBr},
    {6,
     {ExecOp::LoadArr, ExecOp::Const, ExecOp::CmpEq, ExecOp::Const,
      ExecOp::CmpNe, ExecOp::Br},
     ExecOp::LoadArrConstCmpEqConstCmpNeBr},
    {5,
     {ExecOp::PrEnterPredI, ExecOp::Const, ExecOp::And, ExecOp::LoadArr,
      ExecOp::Move},
     ExecOp::PrEnterPredIConstAndLoadArrMove},
    {5,
     {ExecOp::Const, ExecOp::Add, ExecOp::Move, ExecOp::PrFlushIIArmSet,
      ExecOp::Br},
     ExecOp::ConstAddMovePrFlushIIArmSetBr},
    {5,
     {ExecOp::Const, ExecOp::Add, ExecOp::Move, ExecOp::PrFlushIFlushArmSet,
      ExecOp::Br},
     ExecOp::ConstAddMovePrFlushIFlushArmSetBr},
    {4,
     {ExecOp::PrOLPredPredI, ExecOp::LoadG, ExecOp::CmpLt, ExecOp::CondBr},
     ExecOp::PrOLPredPredILoadGCmpLtBr},
    {4,
     {ExecOp::PrOLPredPredI, ExecOp::Const, ExecOp::And, ExecOp::LoadArr},
     ExecOp::PrOLPredPredIConstAndLoadArr},
    {4,
     {ExecOp::PrOLPred2PredI, ExecOp::LoadG, ExecOp::CmpLt, ExecOp::CondBr},
     ExecOp::PrOLPred2PredILoadGCmpLtBr},
    {4,
     {ExecOp::PrEnterPredI, ExecOp::And, ExecOp::CmpEq, ExecOp::CondBr},
     ExecOp::PrEnterPredIAndCmpEqBr},
    {4,
     {ExecOp::Const, ExecOp::And, ExecOp::LoadArr, ExecOp::Move},
     ExecOp::ConstAndLoadArrMove},
    {4,
     {ExecOp::CmpEq, ExecOp::Const, ExecOp::CmpNe, ExecOp::Br},
     ExecOp::CmpEqConstCmpNeBr},
    {4,
     {ExecOp::Const, ExecOp::Add, ExecOp::Move, ExecOp::Br},
     ExecOp::ConstAddMoveBr},
    {3, {ExecOp::Const, ExecOp::Add, ExecOp::Move}, ExecOp::ConstAddMove},
    {3, {ExecOp::LoadG, ExecOp::CmpLt, ExecOp::CondBr}, ExecOp::LoadGCmpLtBr},
    {3, {ExecOp::Const, ExecOp::And, ExecOp::LoadArr}, ExecOp::ConstAndLoadArr},
    {3, {ExecOp::Const, ExecOp::CmpEq, ExecOp::CondBr}, ExecOp::ConstCmpEqBr},
    {3, {ExecOp::Const, ExecOp::CmpGe, ExecOp::CondBr}, ExecOp::ConstCmpGeBr},
    {3,
     {ExecOp::Const, ExecOp::PrFlushICountRet, ExecOp::Ret},
     ExecOp::ConstPrFlushICountRetRet},
    {3, {ExecOp::And, ExecOp::CmpEq, ExecOp::CondBr}, ExecOp::AndCmpEqBr},
    {3,
     {ExecOp::LoadArr, ExecOp::CmpEq, ExecOp::CondBr},
     ExecOp::LoadArrCmpEqBr},
    {3,
     {ExecOp::PrOLPred, ExecOp::CmpEq, ExecOp::CondBr},
     ExecOp::PrOLPredCmpEqBr},
    {2, {ExecOp::PrOLPredPredI, ExecOp::CondBr}, ExecOp::PrOLPredPredICondBr},
    {2, {ExecOp::PrOLPred, ExecOp::CondBr}, ExecOp::PrOLPredCondBr},
    {2, {ExecOp::PrPredII, ExecOp::CondBr}, ExecOp::PrPredIICondBr},
    {2, {ExecOp::LoadArr, ExecOp::Const}, ExecOp::LoadArrConst},
};

/// Fused opcode for the adjacent pair (\p A, \p B), or ExecOp::Probe (used
/// as a "no fusion" sentinel — a probe is never a fusion result here).
static ExecOp fuseOf(const ExecInstr &A, const ExecInstr &B) {
  if (A.Op >= ExecOp::CmpEq && A.Op <= ExecOp::CmpGe &&
      B.Op == ExecOp::CondBr && B.Src0 == A.Dst)
    return static_cast<ExecOp>(static_cast<unsigned>(ExecOp::CmpEqBr) +
                               (static_cast<unsigned>(A.Op) -
                                static_cast<unsigned>(ExecOp::CmpEq)));
  if (A.Op == ExecOp::Const && B.Op == ExecOp::And)
    return ExecOp::ConstAnd;
  if (A.Op == ExecOp::And && B.Op == ExecOp::LoadArr)
    return ExecOp::AndLoadArr;
  if (A.Op == ExecOp::LoadArr && B.Op == ExecOp::Move)
    return ExecOp::LoadArrMove;
  if (A.Op == ExecOp::Add && B.Op == ExecOp::Move)
    return ExecOp::AddMove;
  if (A.Op == ExecOp::Move && B.Op == ExecOp::Const)
    return ExecOp::MoveConst;
  if (A.Op == ExecOp::Const && B.Op == ExecOp::Add)
    return ExecOp::ConstAdd;
  if (A.Op == ExecOp::Move && B.Op == ExecOp::Br)
    return ExecOp::MoveBr;
  if (B.Op == ExecOp::Br &&
      (A.Op == ExecOp::Probe || A.Op >= ExecOp::PrOLPred))
    return probeBrOf(A.Op);
  if (B.Op == ExecOp::Call && A.Op >= ExecOp::PrOLPred)
    return probeCallOf(A.Op);
  if (B.Op == ExecOp::Ret && A.Op >= ExecOp::PrOLPred)
    return probeRetOf(A.Op);
  return ExecOp::Probe;
}

uint32_t FuncPlan::blockOfPc(uint32_t Pc) const {
  assert(!BlockPc.empty() && "empty function plan");
  auto It = std::upper_bound(BlockPc.begin(), BlockPc.end(), Pc);
  return static_cast<uint32_t>(It - BlockPc.begin()) - 1;
}

std::unique_ptr<ExecPlan> olpp::buildExecPlan(const Module &M) {
  auto Plan = std::make_unique<ExecPlan>();
  Plan->Funcs.resize(M.numFunctions());
  // Created eagerly so concurrent interpreters sharing the plan never race
  // on the pointer itself; the cache has its own internal synchronization.
  Plan->Traces = std::make_unique<PlanTraceCacheSet>(M.numFunctions());

  for (uint32_t FId = 0; FId < M.numFunctions(); ++FId) {
    const Function &F = *M.function(FId);
    FuncPlan &FP = Plan->Funcs[FId];
    FP.Name = F.Name;
    FP.NumRegs = F.NumRegs;
    FP.NumParams = F.NumParams;
    FP.NumLoopSlots = F.NumLoopSlots;

    // First pass: block id -> pc. Blocks are laid out in id order, so the
    // pc table is ascending (blockOfPc relies on this).
    FP.BlockPc.resize(F.numBlocks());
    uint32_t Pc = 0;
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      assert(F.block(B)->Id == B && "stale block ids; renumberBlocks first");
      FP.BlockPc[B] = Pc;
      Pc += static_cast<uint32_t>(F.block(B)->Instrs.size());
    }
    FP.Code.reserve(Pc);

    // Second pass: decode.
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      for (const Instruction &I : F.block(B)->Instrs) {
        ExecInstr E;
        E.Op = static_cast<ExecOp>(I.Op);
        E.Dst = I.Dst;
        E.Src0 = I.Src0;
        E.Src1 = I.Src1;
        E.Imm = I.Imm;
        E.GlobalId = I.GlobalId;
        E.CalleeId = I.CalleeId;
        if (I.Target0) {
          E.Target0Blk = I.Target0->Id;
          E.Target0Pc = FP.BlockPc[E.Target0Blk];
        }
        if (I.Target1) {
          E.Target1Blk = I.Target1->Id;
          E.Target1Pc = FP.BlockPc[E.Target1Blk];
        }
        if (!I.Args.empty()) {
          E.ArgsBegin = static_cast<uint32_t>(FP.ArgPool.size());
          E.ArgsCount = static_cast<uint32_t>(I.Args.size());
          FP.ArgPool.insert(FP.ArgPool.end(), I.Args.begin(), I.Args.end());
        }
        if (I.Op == Opcode::Probe && I.ProbePayload) {
          E.ArgsBegin = static_cast<uint32_t>(FP.ProbePool.size());
          E.ArgsCount = static_cast<uint32_t>(I.ProbePayload->Ops.size());
          FP.ProbePool.insert(FP.ProbePool.end(), I.ProbePayload->Ops.begin(),
                              I.ProbePayload->Ops.end());
          E.Op = specializeProbe(*I.ProbePayload);
        }
        FP.Code.push_back(E);
      }
    }

    // Fusion pass, greedy left-to-right within each block: rewrite hot
    // adjacent pairs (and one hot quad) into superinstructions. Fused
    // members never straddle a block boundary, so the shadowed trailing
    // slots are never jump targets (branches only target block starts) and
    // never call-return resume points (calls are not fusion heads).
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      const uint32_t Begin = FP.BlockPc[B];
      const uint32_t End =
          Begin + static_cast<uint32_t>(F.block(B)->Instrs.size());
      uint32_t Pc2 = Begin;
      while (Pc2 < End) {
        const FusePattern *Hit = nullptr;
        for (const FusePattern &Pat : kFusePatterns) {
          if (Pc2 + Pat.Len > End)
            continue;
          bool Ok = true;
          for (unsigned K = 0; K < Pat.Len; ++K)
            if (FP.Code[Pc2 + K].Op != Pat.Seq[K]) {
              Ok = false;
              break;
            }
          if (Ok) {
            Hit = &Pat;
            break;
          }
        }
        if (Hit) {
          FP.Code[Pc2].Op = Hit->Fused;
          Pc2 += Hit->Len;
          continue;
        }
        if (Pc2 + 1 < End) {
          ExecInstr &A = FP.Code[Pc2];
          const ExecInstr &Nxt = FP.Code[Pc2 + 1];
          ExecOp Fused = fuseOf(A, Nxt);
          if (Fused != ExecOp::Probe) {
            A.Op = Fused;
            if (Fused >= ExecOp::CmpEqBr && Fused <= ExecOp::CmpGeBr) {
              A.Target0Pc = Nxt.Target0Pc;
              A.Target1Pc = Nxt.Target1Pc;
              A.Target0Blk = Nxt.Target0Blk;
              A.Target1Blk = Nxt.Target1Blk;
            }
            Pc2 += 2;
            continue;
          }
        }
        ++Pc2;
      }
    }
  }
  return Plan;
}
