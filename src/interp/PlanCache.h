//===--- PlanCache.h - Shared ExecPlan cache --------------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, content-addressed cache of decoded ExecPlans. Decoding a
/// module into its flat execution form (probe specialization, the fusion
/// passes) is pure — the plan depends only on the module's content — so the
/// cost should be paid once per distinct module, not once per Interpreter:
/// before this cache, a parallel bench batch rebuilt the identical plan in
/// every worker, and every fuzz-shrinker probe of an unchanged candidate
/// re-decoded from scratch.
///
/// Keying is two-level:
///   - a per-module memo keyed by Module::uid() (uids are never reused, so
///     a hit is exact and costs one hash lookup),
///   - a content table keyed by the module's full *fingerprint* — the
///     printed IR plus the execution metadata the printer does not carry
///     (register/loop-slot counts, global sizes). Hits compare the whole
///     fingerprint, so hash collisions cannot alias two modules.
///
/// Entries are shared_ptr<const ExecPlan>: plans are immutable after build,
/// safe to execute from any number of threads, and keep working even after
/// the cache evicts them (capacity is a plain LRU bound) or the module they
/// were decoded from dies.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_PLANCACHE_H
#define OLPP_INTERP_PLANCACHE_H

#include "interp/ExecPlan.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace olpp {

/// The full content key of a module for plan-caching purposes: printed IR
/// plus the per-function and global metadata buildExecPlan consumes.
std::string modulePlanFingerprint(const Module &M);

class ExecPlanCache {
public:
  struct Stats {
    uint64_t MemoHits = 0;    ///< same-Module-object fast-path hits
    uint64_t ContentHits = 0; ///< identical-content hits across modules
    uint64_t Misses = 0;      ///< plans actually built
    size_t Entries = 0;       ///< distinct plans currently cached
  };

  explicit ExecPlanCache(size_t Capacity = 128) : Capacity(Capacity) {}

  /// Returns the (possibly shared) plan for \p M, building it on a miss.
  /// Thread-safe; the build itself runs outside the cache lock.
  std::shared_ptr<const ExecPlan> get(const Module &M);

  Stats stats() const;
  void clear();

  /// The process-wide instance every Interpreter consults.
  static ExecPlanCache &global();

private:
  struct Entry {
    std::shared_ptr<const ExecPlan> Plan;
    uint64_t LastUse = 0;
  };

  void evictIfNeeded(); // requires Mu held

  mutable std::mutex Mu;
  size_t Capacity;
  uint64_t UseClock = 0;
  Stats Counters;
  /// Content table: fingerprint -> plan. Exact string keys, so equal hashes
  /// of different modules can never alias.
  std::unordered_map<std::string, Entry> ByContent;
  /// Module::uid() -> plan memo. Uids are never reused, so stale entries
  /// are merely dead weight, pruned alongside LRU eviction.
  std::unordered_map<uint64_t, std::shared_ptr<const ExecPlan>> ByUid;
};

} // namespace olpp

#endif // OLPP_INTERP_PLANCACHE_H
