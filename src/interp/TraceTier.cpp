//===--- TraceTier.cpp - Hot-path trace compiler and executor -------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// See TraceTier.h for the architecture. Everything here is driven by one
// invariant: a compiled trace, run for N full passes plus a partial pass
// deopting before step K, must leave the engine in the bit-identical state
// the ordinary dispatch loop would have reached — registers, frames, probe
// state, every counter store, and all five DynCounts. The compiler
// therefore mirrors execProbe (Interpreter.cpp) op kind by op kind,
// including its exact cost charges, and the executor mirrors the dispatch
// loop's call/return and fault semantics.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceTier.h"

#include "interp/CostModel.h"

#include <cassert>
#include <climits>
#include <cstdlib>

namespace olpp {

//===----------------------------------------------------------------------===//
// PlanTraceCache
//===----------------------------------------------------------------------===//

PlanTraceCache::PlanTraceCache(size_t NumFuncs) : Published(NumFuncs) {
  for (auto &P : Published)
    P.store(nullptr, std::memory_order_relaxed);
}

PlanTraceCache::~PlanTraceCache() = default;

bool PlanTraceCache::install(std::unique_ptr<CompiledTrace> T) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  std::atomic<const AnchorList *> &Slot = Published[T->FuncId];
  const AnchorList *Cur = Slot.load(std::memory_order_relaxed);
  if (Cur)
    for (const auto &E : Cur->Entries)
      if (E.first == T->AnchorPc)
        return false; // lost the race; the first install wins
  T->prepareRuntime();
  auto Next = std::make_unique<AnchorList>();
  if (Cur)
    Next->Entries = Cur->Entries;
  Next->Entries.emplace_back(T->AnchorPc, T.get());
  Owned.push_back(std::move(T));
  const AnchorList *NextRaw = Next.get();
  // The superseded list stays alive in Retired: a concurrent lock-free
  // reader may still hold it. A handful of tiny vectors per function over
  // the plan's lifetime.
  Retired.push_back(std::move(Next));
  Slot.store(NextRaw, std::memory_order_release);
  return true;
}

bool PlanTraceCache::installBridge(const CompiledTrace &Parent, uint32_t Step,
                                   std::unique_ptr<CompiledTrace> B) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  if (!Parent.BridgeAt || Step >= Parent.Steps.size())
    return false;
  if (Parent.BridgeAt[Step].load(std::memory_order_relaxed))
    return false; // lost the race; the first bridge per exit wins
  B->prepareRuntime();
  const CompiledTrace *Raw = B.get();
  Owned.push_back(std::move(B));
  Parent.BridgeAt[Step].store(Raw, std::memory_order_release);
  return true;
}

const CompiledTrace *PlanTraceCache::swapNoDWE(const CompiledTrace &Root) {
  std::lock_guard<std::mutex> Lock(InstallMu);
  // NoDWEAlt is only moved under this lock; a concurrent swap (or a churn
  // retirement that already killed the root) makes this a no-op.
  if (!Root.NoDWEAlt || Root.Dead.load(std::memory_order_relaxed))
    return nullptr;
  std::atomic<const AnchorList *> &Slot = Published[Root.FuncId];
  const AnchorList *Cur = Slot.load(std::memory_order_relaxed);
  if (!Cur)
    return nullptr;
  std::unique_ptr<CompiledTrace> Alt = std::move(Root.NoDWEAlt);
  auto Next = std::make_unique<AnchorList>();
  Next->Entries = Cur->Entries;
  bool Found = false;
  for (auto &E : Next->Entries)
    if (E.first == Root.AnchorPc && E.second == &Root) {
      E.second = Alt.get();
      Found = true;
    }
  if (!Found)
    return nullptr; // the anchor no longer publishes Root
  Alt->prepareRuntime();
  const CompiledTrace *Raw = Alt.get();
  Owned.push_back(std::move(Alt));
  const AnchorList *NextRaw = Next.get();
  Retired.push_back(std::move(Next));
  Slot.store(NextRaw, std::memory_order_release);
  // Dead *after* the new list is published: a lock-free reader of the old
  // list sees either the live root or, post-publication, the alternate.
  Root.Dead.store(true, std::memory_order_relaxed);
  return Raw;
}

std::vector<const CompiledTrace *> PlanTraceCache::all() const {
  std::lock_guard<std::mutex> Lock(InstallMu);
  std::vector<const CompiledTrace *> Out;
  Out.reserve(Owned.size());
  for (const auto &T : Owned)
    Out.push_back(T.get());
  return Out;
}

//===----------------------------------------------------------------------===//
// Trace compiler
//===----------------------------------------------------------------------===//

namespace {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
inline int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(-static_cast<uint64_t>(A));
}

/// Symbolic int: Known holds an absolute value; otherwise the component is
/// entry-relative and V is the accumulated delta.
struct SInt {
  bool Known = false;
  bool Dirty = false;
  int64_t V = 0;
};
struct SBool {
  bool Known = false;
  bool Dirty = false;
  bool B = false;
};
struct SU32 {
  bool Known = false;
  bool Dirty = false;
  uint32_t V = 0;
};

/// Symbolic loop overlap slot, plus the range-guard bookkeeping for its
/// monotone predicate counter.
struct SLoop {
  SBool Active;
  SInt Ro;
  SInt Ol;
  int64_t OlLtBound = INT64_MAX; ///< entry Ol must be < this (if < MAX)
  bool OlEqGuarded = false;      ///< an equality guard supersedes the range
};

/// One frame of the compile-time walk: the symbolic probe state plus the
/// constant-folding lattice over its registers.
struct CompFrame {
  uint32_t FuncId = 0;
  const FuncPlan *FP = nullptr;
  Reg RetDst = NoReg;
  uint32_t SavedPc = 0;    ///< caller resume pc (frames below the top)
  uint32_t SavedBlock = 0; ///< caller resume block

  SInt R, RI, OlI, CallerPre, RoII, OlII, CalleePathII;
  SBool ActiveI, HaveCaller, ActiveII;
  SU32 CallSiteI, CallSiteII, CalleeII;
  std::vector<SLoop> Loops;
  int64_t OlILtBound = INT64_MAX;
  bool OlIEqGuarded = false;
  int64_t OlIILtBound = INT64_MAX;
  bool OlIIEqGuarded = false;

  std::vector<char> KnownReg;
  std::vector<int64_t> KVal;
};

class TraceCompiler {
public:
  TraceCompiler(const ExecPlan &P, const TraceRecorder &Rec)
      : P(P), Rec(Rec), Snap(Rec.snapshot()) {}

  std::unique_ptr<CompiledTrace> run();

private:
  /// Base-step budget per trace; beyond this the pass is too long to be
  /// worth straight-lining (and Meta's u32 accounting prefixes stay tiny).
  static constexpr uint32_t MaxBaseSteps = 4096;

  const ExecPlan &P;
  const TraceRecorder &Rec;
  const TraceSnapshot &Snap;

  std::unique_ptr<CompiledTrace> Out;
  std::vector<CompFrame> Fs;
  size_t EvIdx = 0;
  uint32_t Pc = 0;
  uint32_t CurBlock = 0;
  bool Failed = false;

  uint32_t BaseIdx = 0;
  uint64_t CumSteps = 0, CumBase = 0, CumPCost = 0, CumBlocks = 0, CumCalls = 0;

  // Global symbolic state: shadow stack and pending return.
  std::vector<std::pair<uint32_t, int64_t>> InPush; ///< in-trace pushes
  uint32_t PopsBelow = 0;
  bool DepthGuarded = false;
  std::vector<char> ShadowIdxGuarded; ///< by index-from-entry-top
  SBool PValid;
  SU32 PCallee;
  SInt PPathId;
  bool PDirty = false;

  CompFrame &cur() { return Fs.back(); }
  uint16_t depth() const { return static_cast<uint16_t>(Fs.size() - 1); }
  bool atAnchor() const { return Fs.size() == 1; }

  void fail() { Failed = true; }

  void guard(GuardKind K, uint32_t Slot, int64_t V) {
    Out->Guards.push_back({K, Slot, V});
  }
  void eff(EffectKind K, uint16_t D, uint32_t Slot, int64_t V) {
    Out->Effects.push_back({K, D, Slot, BaseIdx, V});
  }
  void emitStep(const TraceStep &S) {
    Out->Meta.push_back({cur().FuncId, Pc, CurBlock, BaseIdx,
                         static_cast<uint32_t>(CumSteps),
                         static_cast<uint32_t>(CumBase),
                         static_cast<uint32_t>(CumPCost),
                         static_cast<uint32_t>(CumBlocks),
                         static_cast<uint32_t>(CumCalls)});
    Out->Steps.push_back(S);
  }
  TraceStep step(TOp Op, Reg Dst, Reg Src0, Reg Src1, uint32_t Aux,
                 int64_t Imm) {
    TraceStep S;
    S.Op = Op;
    S.Dst = Dst;
    S.Src0 = Src0;
    S.Src1 = Src1;
    S.Aux = Aux;
    S.Imm = Imm;
    return S;
  }

  // --- constant lattice ------------------------------------------------
  bool knownReg(Reg R) const {
    const CompFrame &F = Fs.back();
    return R < F.KnownReg.size() && F.KnownReg[R];
  }
  int64_t kval(Reg R) const { return Fs.back().KVal[R]; }
  void setK(Reg R, int64_t V) {
    CompFrame &F = cur();
    if (R < F.KnownReg.size()) {
      F.KnownReg[R] = 1;
      F.KVal[R] = V;
    }
  }
  void clearK(Reg R) {
    CompFrame &F = cur();
    if (R < F.KnownReg.size())
      F.KnownReg[R] = 0;
  }

  // --- symbolic consults (emit an entry guard on first exact use) ------
  int64_t consultInt(SInt &S, GuardKind GK, uint32_t Slot, int64_t SnapV,
                     bool Anchor) {
    if (!S.Known) {
      if (!Anchor) {
        fail(); // deeper frames are fully known by construction
        return 0;
      }
      guard(GK, Slot, SnapV);
      S.V = SnapV + S.V;
      S.Known = true;
    }
    return S.V;
  }
  bool consultBool(SBool &S, GuardKind GK, uint32_t Slot, bool SnapV,
                   bool Anchor) {
    if (!S.Known) {
      if (!Anchor) {
        fail();
        return false;
      }
      guard(GK, Slot, SnapV ? 1 : 0);
      S.B = SnapV;
      S.Known = true;
    }
    return S.B;
  }
  uint32_t consultU32(SU32 &S, GuardKind GK, uint32_t SnapV, bool Anchor) {
    if (!S.Known) {
      if (!Anchor) {
        fail();
        return 0;
      }
      guard(GK, 0, static_cast<int64_t>(SnapV));
      S.V = SnapV;
      S.Known = true;
    }
    return S.V;
  }

  // --- symbolic shadow stack ------------------------------------------
  void needDepthGuard() {
    if (!DepthGuarded) {
      guard(GuardKind::ShadowDepth, 0,
            static_cast<int64_t>(Snap.Shadow.size()));
      DepthGuarded = true;
    }
  }
  bool shadowTop(uint32_t &Site, int64_t &Pre) {
    if (!InPush.empty()) {
      Site = InPush.back().first;
      Pre = InPush.back().second;
      return true;
    }
    needDepthGuard();
    if (Snap.Shadow.size() <= PopsBelow)
      return false;
    uint32_t Idx = PopsBelow; // index from the entry stack's top
    const auto &E = Snap.Shadow[Snap.Shadow.size() - 1 - Idx];
    if (ShadowIdxGuarded.size() <= Idx)
      ShadowIdxGuarded.resize(Idx + 1, 0);
    if (!ShadowIdxGuarded[Idx]) {
      guard(GuardKind::ShadowSiteAt, Idx, static_cast<int64_t>(E.CallSite));
      guard(GuardKind::ShadowPreAt, Idx, E.CallerPre);
      ShadowIdxGuarded[Idx] = 1;
    }
    Site = E.CallSite;
    Pre = E.CallerPre;
    return true;
  }
  void shadowPush(uint32_t Site, int64_t Pre) {
    InPush.emplace_back(Site, Pre);
    eff(EffectKind::ShadowPush, 0, Site, Pre);
  }
  void shadowPop() {
    if (!InPush.empty()) {
      InPush.pop_back();
    } else {
      needDepthGuard();
      if (PopsBelow >= Snap.Shadow.size()) {
        fail();
        return;
      }
      ++PopsBelow;
    }
    eff(EffectKind::ShadowPop, 0, 0, 0);
  }

  // --- symbolic pending return ----------------------------------------
  bool pendingValid() {
    if (!PValid.Known) {
      guard(GuardKind::PendingValid, 0, Snap.Pending.Valid ? 1 : 0);
      PValid.Known = true;
      PValid.B = Snap.Pending.Valid;
    }
    return PValid.B;
  }
  uint32_t pendingCallee() {
    if (!PCallee.Known) {
      guard(GuardKind::PendingCallee, 0,
            static_cast<int64_t>(Snap.Pending.Callee));
      PCallee.Known = true;
      PCallee.V = Snap.Pending.Callee;
    }
    return PCallee.V;
  }
  int64_t pendingPathId() {
    if (!PPathId.Known) {
      guard(GuardKind::PendingPathId, 0, Snap.Pending.PathId);
      PPathId.Known = true;
      PPathId.V = Snap.Pending.PathId;
    }
    return PPathId.V;
  }

  // --- counter bumps ---------------------------------------------------
  void bumpPath(uint32_t FuncId, int64_t Id) {
    TraceBump B;
    B.Table = 0;
    B.FuncId = FuncId;
    B.BaseIdx = BaseIdx;
    B.Id = Id;
    Out->Bumps.push_back(B);
  }
  void bumpTuple(uint8_t Table, const InterprocKey &K) {
    TraceBump B;
    B.Table = Table;
    B.BaseIdx = BaseIdx;
    B.Key = K;
    Out->Bumps.push_back(B);
  }

  bool nextBlockEvent(uint32_t &Blk);
  void simProbe(const ExecInstr &E);
  void doDataOp(ExecOp B, const ExecInstr &E);
  void doBranch(const ExecInstr &E);
  void doCall(ExecOp B, const ExecInstr &E);
  void doRet(const ExecInstr &E);
  void pushFrame(uint32_t Callee, Reg RetDst, const ExecInstr &CallE);
  void finalize();
};

/// Consumes the next event, which must be a Block event of the current
/// function; returns its block id.
bool TraceCompiler::nextBlockEvent(uint32_t &Blk) {
  const auto &Events = Rec.events();
  if (EvIdx >= Events.size() ||
      Events[EvIdx].Kind != TraceEventKind::Block ||
      Events[EvIdx].Func != cur().FuncId) {
    fail();
    return false;
  }
  Blk = Events[EvIdx].Block;
  ++EvIdx;
  return true;
}

void TraceCompiler::doDataOp(ExecOp B, const ExecInstr &E) {
  const bool K0 = E.Src0 != NoReg && knownReg(E.Src0);
  const bool K1 = E.Src1 != NoReg && knownReg(E.Src1);
  const int64_t A = K0 ? kval(E.Src0) : 0;
  const int64_t Bv = K1 ? kval(E.Src1) : 0;

  auto outConst = [&](int64_t V) {
    setK(E.Dst, V);
    emitStep(step(TOp::Const, E.Dst, 0, 0, 0, V));
  };
  auto outOp = [&](TOp Op) {
    clearK(E.Dst);
    emitStep(step(Op, E.Dst, E.Src0, E.Src1, 0, 0));
  };
  auto outImm = [&](TOp Op, Reg Src, int64_t Imm) {
    clearK(E.Dst);
    emitStep(step(Op, E.Dst, Src, 0, 0, Imm));
  };

  switch (B) {
  case ExecOp::Const:
    outConst(E.Imm);
    break;
  case ExecOp::Move:
    if (K0)
      outConst(A);
    else
      outOp(TOp::Move);
    break;
  case ExecOp::Add:
    if (K0 && K1)
      outConst(wrapAdd(A, Bv));
    else if (K1)
      outImm(TOp::AddImm, E.Src0, Bv);
    else if (K0)
      outImm(TOp::AddImm, E.Src1, A);
    else
      outOp(TOp::Add);
    break;
  case ExecOp::Sub:
    if (K0 && K1)
      outConst(wrapSub(A, Bv));
    else if (K1)
      outImm(TOp::AddImm, E.Src0, wrapNeg(Bv));
    else
      outOp(TOp::Sub);
    break;
  case ExecOp::Mul:
    if (K0 && K1)
      outConst(wrapMul(A, Bv));
    else
      outOp(TOp::Mul);
    break;
  case ExecOp::Div:
    if (K0 && K1) {
      if (Bv == 0 || (A == INT64_MIN && Bv == -1)) {
        fail(); // the recorded pass would have faulted here
        return;
      }
      outConst(A / Bv);
    } else
      outOp(TOp::Div);
    break;
  case ExecOp::Mod:
    if (K0 && K1) {
      if (Bv == 0 || (A == INT64_MIN && Bv == -1)) {
        fail();
        return;
      }
      outConst(A % Bv);
    } else
      outOp(TOp::Mod);
    break;
  case ExecOp::And:
    if (K0 && K1)
      outConst(A & Bv);
    else if (K1)
      outImm(TOp::AndImm, E.Src0, Bv);
    else if (K0)
      outImm(TOp::AndImm, E.Src1, A);
    else
      outOp(TOp::And);
    break;
  case ExecOp::Or:
    if (K0 && K1)
      outConst(A | Bv);
    else
      outOp(TOp::Or);
    break;
  case ExecOp::Xor:
    if (K0 && K1)
      outConst(A ^ Bv);
    else
      outOp(TOp::Xor);
    break;
  case ExecOp::Shl:
    if (K0 && K1)
      outConst(static_cast<int64_t>(static_cast<uint64_t>(A)
                                    << (static_cast<uint64_t>(Bv) & 63)));
    else
      outOp(TOp::Shl);
    break;
  case ExecOp::Shr:
    if (K0 && K1)
      outConst(A >> (static_cast<uint64_t>(Bv) & 63));
    else
      outOp(TOp::Shr);
    break;
  case ExecOp::CmpEq:
    if (K0 && K1)
      outConst(A == Bv);
    else if (K1)
      outImm(TOp::CmpEqImm, E.Src0, Bv);
    else
      outOp(TOp::CmpEq);
    break;
  case ExecOp::CmpNe:
    if (K0 && K1)
      outConst(A != Bv);
    else if (K1)
      outImm(TOp::CmpNeImm, E.Src0, Bv);
    else
      outOp(TOp::CmpNe);
    break;
  case ExecOp::CmpLt:
    if (K0 && K1)
      outConst(A < Bv);
    else if (K1)
      outImm(TOp::CmpLtImm, E.Src0, Bv);
    else
      outOp(TOp::CmpLt);
    break;
  case ExecOp::CmpLe:
    if (K0 && K1)
      outConst(A <= Bv);
    else if (K1)
      outImm(TOp::CmpLeImm, E.Src0, Bv);
    else
      outOp(TOp::CmpLe);
    break;
  case ExecOp::CmpGt:
    if (K0 && K1)
      outConst(A > Bv);
    else if (K1)
      outImm(TOp::CmpGtImm, E.Src0, Bv);
    else
      outOp(TOp::CmpGt);
    break;
  case ExecOp::CmpGe:
    if (K0 && K1)
      outConst(A >= Bv);
    else if (K1)
      outImm(TOp::CmpGeImm, E.Src0, Bv);
    else
      outOp(TOp::CmpGe);
    break;
  case ExecOp::Neg:
    if (K0)
      outConst(wrapNeg(A));
    else
      outOp(TOp::Neg);
    break;
  case ExecOp::Not:
    if (K0)
      outConst(A == 0 ? 1 : 0);
    else
      outOp(TOp::Not);
    break;
  case ExecOp::LoadG:
    clearK(E.Dst);
    emitStep(step(TOp::LoadG, E.Dst, 0, 0, E.GlobalId, 0));
    break;
  case ExecOp::StoreG:
    emitStep(step(TOp::StoreG, 0, E.Src0, 0, E.GlobalId, 0));
    break;
  case ExecOp::LoadArr:
    clearK(E.Dst);
    emitStep(step(TOp::LoadArr, E.Dst, E.Src0, 0, E.GlobalId, 0));
    break;
  case ExecOp::StoreArr:
    emitStep(step(TOp::StoreArr, 0, E.Src0, E.Src1, E.GlobalId, 0));
    break;
  default:
    fail();
    return;
  }
  CumSteps += 1;
  CumBase += cost::Instr;
  ++BaseIdx;
  ++Pc;
}

void TraceCompiler::doBranch(const ExecInstr &E) {
  uint32_t Blk = 0;
  if (!nextBlockEvent(Blk))
    return;
  uint32_t TargetPc;
  if (E.Op == ExecOp::Br ||
      execBaseOp(E.Op) == ExecOp::Br) { // unconditional
    if (Blk != E.Target0Blk) {
      fail();
      return;
    }
    TargetPc = E.Target0Pc;
  } else {
    const bool SameTarget =
        E.Target0Pc == E.Target1Pc && E.Target0Blk == E.Target1Blk;
    bool Taken;
    if (Blk == E.Target0Blk)
      Taken = true;
    else if (Blk == E.Target1Blk)
      Taken = false;
    else {
      fail();
      return;
    }
    if (knownReg(E.Src0)) {
      // Trace-local constant condition: the direction is proven; the
      // branch ghosts entirely.
      if (!SameTarget && (kval(E.Src0) != 0) != Taken) {
        fail();
        return;
      }
    } else if (!SameTarget) {
      emitStep(step(Taken ? TOp::GuardTrue : TOp::GuardFalse, 0, E.Src0, 0,
                    0, 0));
    }
    TargetPc = Taken ? E.Target0Pc : E.Target1Pc;
  }
  CumSteps += 1;
  CumBase += cost::Instr;
  CumBlocks += 1;
  ++BaseIdx;
  Pc = TargetPc;
  CurBlock = Blk;
}

void TraceCompiler::pushFrame(uint32_t Callee, Reg RetDst,
                              const ExecInstr &CallE) {
  const FuncPlan &FP = P.Funcs[Callee];
  CompFrame F;
  F.FuncId = Callee;
  F.FP = &FP;
  F.RetDst = RetDst;
  // A pushed frame sees zeroed registers and disarmed loop slots (pooled
  // stacks grow by value-initialization), so everything starts Known.
  F.R.Known = true;
  F.RI.Known = true;
  F.OlI.Known = true;
  F.CallerPre.Known = true;
  F.RoII.Known = true;
  F.OlII.Known = true;
  F.CalleePathII.Known = true;
  F.ActiveI.Known = true;
  F.HaveCaller.Known = true;
  F.ActiveII.Known = true;
  F.CallSiteI.Known = true;
  F.CallSiteII.Known = true;
  F.CalleeII.Known = true;
  F.Loops.resize(FP.NumLoopSlots);
  for (SLoop &L : F.Loops) {
    L.Active.Known = true;
    L.Ro.Known = true;
    L.Ol.Known = true;
  }
  F.KnownReg.assign(FP.NumRegs, 1);
  F.KVal.assign(FP.NumRegs, 0);
  // Parameters take the caller's argument lattice.
  const CompFrame &Caller = cur();
  const Reg *Args = Caller.FP->ArgPool.data() + CallE.ArgsBegin;
  for (uint32_t A = 0; A < CallE.ArgsCount; ++A) {
    if (A < F.KnownReg.size()) {
      if (Args[A] < Caller.KnownReg.size() && Caller.KnownReg[Args[A]]) {
        F.KnownReg[A] = 1;
        F.KVal[A] = Caller.KVal[Args[A]];
      } else {
        F.KnownReg[A] = 0;
      }
    }
  }
  Fs.push_back(std::move(F));
}

void TraceCompiler::doCall(ExecOp B, const ExecInstr &E) {
  const auto &Events = Rec.events();
  if (EvIdx + 1 >= Events.size() ||
      Events[EvIdx].Kind != TraceEventKind::Enter ||
      Events[EvIdx + 1].Kind != TraceEventKind::Block ||
      Events[EvIdx + 1].Func != Events[EvIdx].Func ||
      Events[EvIdx + 1].Block != 0) {
    fail();
    return;
  }
  const uint32_t Callee = Events[EvIdx].Func;
  EvIdx += 2;
  if (Callee >= P.Funcs.size()) {
    fail();
    return;
  }
  if (B == ExecOp::Call) {
    if (E.CalleeId != Callee) {
      fail();
      return;
    }
  } else { // CallInd
    if (E.ArgsCount != P.Funcs[Callee].NumParams) {
      fail();
      return;
    }
    if (knownReg(E.Src0)) {
      if (kval(E.Src0) != static_cast<int64_t>(Callee)) {
        fail();
        return;
      }
    } else {
      // Deopt before the CallInd on a different target: the ordinary
      // engine re-reads the register and calls whoever it names. Shares
      // the base step's accounting prefix with the Call step behind it.
      emitStep(step(TOp::GuardCallee, 0, E.Src0, 0, Callee, 0));
    }
  }

  TraceStep S = step(TOp::Call, E.Dst, 0, 0, Callee, 0);
  S.ArgsCount = E.ArgsCount;
  S.Args = cur().FP->ArgPool.data() + E.ArgsBegin;
  emitStep(S);

  cur().SavedPc = Pc + 1;
  cur().SavedBlock = CurBlock;
  pushFrame(Callee, E.Dst, E);

  CumSteps += 1;
  CumBase += cost::Instr;
  CumCalls += 1;
  CumBlocks += 1; // PushFrame counts the callee's entry block
  ++BaseIdx;
  Pc = 0;
  CurBlock = 0;
}

void TraceCompiler::doRet(const ExecInstr &E) {
  const auto &Events = Rec.events();
  if (EvIdx >= Events.size() || Events[EvIdx].Kind != TraceEventKind::Exit ||
      Events[EvIdx].Func != cur().FuncId) {
    fail();
    return;
  }
  ++EvIdx;
  if (atAnchor()) {
    fail(); // the anchor frame returning is not a loop pass
    return;
  }
  const Reg ValueReg = E.Src0;
  const Reg RetDst = cur().RetDst;
  if (RetDst != NoReg && ValueReg == NoReg) {
    fail(); // the recorded run would have faulted ("void return value...")
    return;
  }
  const bool KV = ValueReg != NoReg && knownReg(ValueReg);
  const int64_t V = KV ? kval(ValueReg) : 0;

  TraceStep S = step(TOp::Ret, 0, ValueReg, 0, 0, 0);
  emitStep(S);
  CumSteps += 1;
  CumBase += cost::Instr;
  ++BaseIdx;

  Fs.pop_back();
  Pc = cur().SavedPc;
  CurBlock = cur().SavedBlock;
  if (RetDst != NoReg) {
    if (KV)
      setK(RetDst, V);
    else
      clearK(RetDst);
  }
}

void TraceCompiler::simProbe(const ExecInstr &E) {
  CompFrame &F = cur();
  const bool Anchor = atAnchor();
  const uint16_t D = depth();
  const ProbeOp *Ops = F.FP->ProbePool.data() + E.ArgsBegin;
  const uint32_t N = E.ArgsCount;
  bool ChargedIITest = false;

  auto snapLoop = [&](uint32_t S) -> const LoopRegs & {
    static const LoopRegs Zero{};
    return Anchor && S < Snap.Loops.size() ? Snap.Loops[S] : Zero;
  };

  for (uint32_t OpI = 0; OpI < N && !Failed; ++OpI) {
    const ProbeOp &Po = Ops[OpI];
    switch (Po.Kind) {
    case ProbeOpKind::BLSet:
      F.R = {true, true, Po.C0};
      eff(EffectKind::SetR, D, 0, Po.C0);
      CumPCost += cost::RegOp;
      break;
    case ProbeOpKind::BLAdd:
      F.R.V += Po.C0;
      F.R.Dirty = true;
      eff(F.R.Known ? EffectKind::SetR : EffectKind::AddR, D, 0,
          F.R.Known ? F.R.V : Po.C0);
      CumPCost += cost::RegOp;
      break;
    case ProbeOpKind::BLCount: {
      int64_t R = consultInt(F.R, GuardKind::R, 0, Snap.Fr.R, Anchor);
      if (Failed)
        return;
      bumpPath(F.FuncId, R + Po.C0);
      CumPCost += cost::CounterBump;
      break;
    }
    case ProbeOpKind::OLDisarm: {
      SLoop &L = F.Loops[Po.Slot];
      L.Active = {true, true, false};
      eff(EffectKind::SetLoopActive, D, Po.Slot, 0);
      CumPCost += cost::RegOp;
      break;
    }
    case ProbeOpKind::OLArm: {
      SLoop &L = F.Loops[Po.Slot];
      int64_t R = consultInt(F.R, GuardKind::R, 0, Snap.Fr.R, Anchor);
      if (Failed)
        return;
      L.Ro = {true, true, R + Po.C0};
      L.Ol = {true, true, 0};
      L.Active = {true, true, true};
      eff(EffectKind::SetLoopRo, D, Po.Slot, L.Ro.V);
      eff(EffectKind::SetLoopOl, D, Po.Slot, 0);
      eff(EffectKind::SetLoopActive, D, Po.Slot, 1);
      CumPCost += 2 * cost::RegOp;
      break;
    }
    case ProbeOpKind::OLAdd: {
      SLoop &L = F.Loops[Po.Slot];
      bool Act = consultBool(L.Active, GuardKind::LoopActive, Po.Slot,
                             snapLoop(Po.Slot).Active, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      L.Ro.V += Po.C0;
      L.Ro.Dirty = true;
      eff(L.Ro.Known ? EffectKind::SetLoopRo : EffectKind::AddLoopRo, D,
          Po.Slot, L.Ro.Known ? L.Ro.V : Po.C0);
      CumPCost += cost::InactiveTest + cost::RegOp;
      break;
    }
    case ProbeOpKind::OLPred: {
      SLoop &L = F.Loops[Po.Slot];
      bool Act = consultBool(L.Active, GuardKind::LoopActive, Po.Slot,
                             snapLoop(Po.Slot).Active, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      CumPCost += cost::InactiveTest + cost::RegOp;
      bool Fired;
      if (L.Ol.Known) {
        L.Ol.V += 1;
        L.Ol.Dirty = true;
        Fired = L.Ol.V == Po.C1;
        eff(EffectKind::SetLoopOl, D, Po.Slot, L.Ol.V);
      } else {
        const int64_t DeltaAfter = L.Ol.V + 1;
        const int64_t ConcreteAfter = snapLoop(Po.Slot).Ol + DeltaAfter;
        Fired = ConcreteAfter == Po.C1;
        if (Fired) {
          guard(GuardKind::LoopOlEq, Po.Slot, snapLoop(Po.Slot).Ol);
          L.Ol = {true, true, ConcreteAfter};
          L.OlEqGuarded = true;
          eff(EffectKind::SetLoopOl, D, Po.Slot, L.Ol.V);
        } else {
          if (ConcreteAfter > Po.C1) {
            fail(); // range guard can't express this shape
            return;
          }
          L.Ol.V = DeltaAfter;
          L.Ol.Dirty = true;
          const int64_t Bound = Po.C1 - DeltaAfter;
          if (Bound < L.OlLtBound)
            L.OlLtBound = Bound;
          eff(EffectKind::AddLoopOl, D, Po.Slot, 1);
        }
      }
      if (Fired) {
        int64_t Ro = consultInt(L.Ro, GuardKind::LoopRo, Po.Slot,
                                snapLoop(Po.Slot).Ro, Anchor);
        if (Failed)
          return;
        bumpPath(F.FuncId, Ro + Po.C0);
        L.Active = {true, true, false};
        eff(EffectKind::SetLoopActive, D, Po.Slot, 0);
        CumPCost += cost::CounterBump;
      }
      break;
    }
    case ProbeOpKind::OLFlush: {
      SLoop &L = F.Loops[Po.Slot];
      bool Act = consultBool(L.Active, GuardKind::LoopActive, Po.Slot,
                             snapLoop(Po.Slot).Active, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      int64_t Ro = consultInt(L.Ro, GuardKind::LoopRo, Po.Slot,
                              snapLoop(Po.Slot).Ro, Anchor);
      if (Failed)
        return;
      bumpPath(F.FuncId, Ro + Po.C0);
      L.Active = {true, true, false};
      eff(EffectKind::SetLoopActive, D, Po.Slot, 0);
      CumPCost += cost::InactiveTest + cost::CounterBump;
      break;
    }
    case ProbeOpKind::IPCall: {
      int64_t R = consultInt(F.R, GuardKind::R, 0, Snap.Fr.R, Anchor);
      if (Failed)
        return;
      shadowPush(static_cast<uint32_t>(Po.C0), R + Po.C1);
      CumPCost += cost::StackOp + cost::RegOp;
      break;
    }
    case ProbeOpKind::IPEnter: {
      F.RI = {true, true, Po.C0};
      F.OlI = {true, true, 0};
      eff(EffectKind::SetRI, D, 0, Po.C0);
      eff(EffectKind::SetOlI, D, 0, 0);
      uint32_t Site = 0;
      int64_t Pre = 0;
      if (shadowTop(Site, Pre)) {
        F.CallSiteI = {true, true, Site};
        F.CallerPre = {true, true, Pre};
        F.ActiveI = {true, true, true};
        F.HaveCaller = {true, true, true};
        eff(EffectKind::SetCallSiteI, D, 0, static_cast<int64_t>(Site));
        eff(EffectKind::SetCallerPre, D, 0, Pre);
        eff(EffectKind::SetActiveI, D, 0, 1);
        eff(EffectKind::SetHaveCaller, D, 0, 1);
      } else {
        F.ActiveI = {true, true, false};
        F.HaveCaller = {true, true, false};
        eff(EffectKind::SetActiveI, D, 0, 0);
        eff(EffectKind::SetHaveCaller, D, 0, 0);
      }
      if (Failed)
        return;
      CumPCost += cost::StackOp + cost::RegOp;
      break;
    }
    case ProbeOpKind::IPAddI: {
      bool Act =
          consultBool(F.ActiveI, GuardKind::ActiveI, 0, Snap.Fr.ActiveI, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      F.RI.V += Po.C0;
      F.RI.Dirty = true;
      eff(F.RI.Known ? EffectKind::SetRI : EffectKind::AddRI, D, 0,
          F.RI.Known ? F.RI.V : Po.C0);
      CumPCost += cost::InactiveTest + cost::RegOp;
      break;
    }
    case ProbeOpKind::IPPredI: {
      bool Act =
          consultBool(F.ActiveI, GuardKind::ActiveI, 0, Snap.Fr.ActiveI, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      CumPCost += cost::InactiveTest + cost::RegOp;
      bool Fired;
      if (F.OlI.Known) {
        F.OlI.V += 1;
        F.OlI.Dirty = true;
        Fired = F.OlI.V == Po.C1;
        eff(EffectKind::SetOlI, D, 0, F.OlI.V);
      } else {
        const int64_t DeltaAfter = F.OlI.V + 1;
        const int64_t ConcreteAfter = Snap.Fr.OlI + DeltaAfter;
        Fired = ConcreteAfter == Po.C1;
        if (Fired) {
          guard(GuardKind::OlIEq, 0, Snap.Fr.OlI);
          F.OlI = {true, true, ConcreteAfter};
          F.OlIEqGuarded = true;
          eff(EffectKind::SetOlI, D, 0, F.OlI.V);
        } else {
          if (ConcreteAfter > Po.C1) {
            fail();
            return;
          }
          F.OlI.V = DeltaAfter;
          F.OlI.Dirty = true;
          const int64_t Bound = Po.C1 - DeltaAfter;
          if (Bound < F.OlILtBound)
            F.OlILtBound = Bound;
          eff(EffectKind::AddOlI, D, 0, 1);
        }
      }
      if (Fired) {
        InterprocKey K;
        K.Callee = F.FuncId;
        K.CallSite =
            consultU32(F.CallSiteI, GuardKind::CallSiteI, Snap.Fr.CallSiteI,
                       Anchor);
        K.Inner = consultInt(F.RI, GuardKind::RI, 0, Snap.Fr.RI, Anchor) +
                  Po.C0;
        K.Outer = consultInt(F.CallerPre, GuardKind::CallerPre, 0,
                             Snap.Fr.CallerPre, Anchor);
        if (Failed)
          return;
        bumpTuple(1, K);
        F.ActiveI = {true, true, false};
        eff(EffectKind::SetActiveI, D, 0, 0);
        CumPCost += cost::TupleBump;
      }
      break;
    }
    case ProbeOpKind::IPFlushI: {
      bool Act =
          consultBool(F.ActiveI, GuardKind::ActiveI, 0, Snap.Fr.ActiveI, Anchor);
      if (Failed)
        return;
      if (!Act) {
        CumPCost += cost::InactiveTest;
        break;
      }
      InterprocKey K;
      K.Callee = F.FuncId;
      K.CallSite = consultU32(F.CallSiteI, GuardKind::CallSiteI,
                              Snap.Fr.CallSiteI, Anchor);
      K.Inner =
          consultInt(F.RI, GuardKind::RI, 0, Snap.Fr.RI, Anchor) + Po.C0;
      K.Outer = consultInt(F.CallerPre, GuardKind::CallerPre, 0,
                           Snap.Fr.CallerPre, Anchor);
      if (Failed)
        return;
      bumpTuple(1, K);
      F.ActiveI = {true, true, false};
      eff(EffectKind::SetActiveI, D, 0, 0);
      CumPCost += cost::InactiveTest + cost::TupleBump;
      break;
    }
    case ProbeOpKind::IPRet: {
      int64_t R = consultInt(F.R, GuardKind::R, 0, Snap.Fr.R, Anchor);
      if (Failed)
        return;
      PValid = {true, true, true};
      PCallee = {true, true, F.FuncId};
      PPathId = {true, true, R + Po.C0};
      PDirty = true;
      eff(EffectKind::PendingSet, 0, F.FuncId, R + Po.C0);
      bool HC = consultBool(F.HaveCaller, GuardKind::HaveCaller, 0,
                            Snap.Fr.HaveCaller, Anchor);
      if (Failed)
        return;
      if (HC)
        shadowPop();
      if (Failed)
        return;
      CumPCost += cost::StackOp + cost::RegOp;
      break;
    }
    case ProbeOpKind::IPArmII: {
      bool PV = pendingValid();
      if (PV) {
        F.ActiveII = {true, true, true};
        F.CalleeII = {true, true, pendingCallee()};
        F.CalleePathII = {true, true, pendingPathId()};
        F.CallSiteII = {true, true, static_cast<uint32_t>(Po.C1)};
        F.RoII = {true, true, Po.C0};
        F.OlII = {true, true, 0};
        PValid = {true, true, false};
        PDirty = true;
        eff(EffectKind::SetActiveII, D, 0, 1);
        eff(EffectKind::SetCalleeII, D, 0,
            static_cast<int64_t>(F.CalleeII.V));
        eff(EffectKind::SetCalleePathII, D, 0, F.CalleePathII.V);
        eff(EffectKind::SetCallSiteII, D, 0,
            static_cast<int64_t>(F.CallSiteII.V));
        eff(EffectKind::SetRoII, D, 0, Po.C0);
        eff(EffectKind::SetOlII, D, 0, 0);
        eff(EffectKind::PendingClear, 0, 0, 0);
      } else {
        F.ActiveII = {true, true, false};
        eff(EffectKind::SetActiveII, D, 0, 0);
      }
      CumPCost += cost::StackOp + cost::RegOp;
      break;
    }
    case ProbeOpKind::IPAddII:
    case ProbeOpKind::IPPredII:
    case ProbeOpKind::IPFlushII: {
      bool Act = consultBool(F.ActiveII, GuardKind::ActiveII, 0,
                             Snap.Fr.ActiveII, Anchor);
      if (Failed)
        return;
      bool Gate = false;
      if (Act) {
        uint32_t CS = consultU32(F.CallSiteII, GuardKind::CallSiteII,
                                 Snap.Fr.CallSiteII, Anchor);
        if (Failed)
          return;
        Gate = CS == static_cast<uint32_t>(Po.Slot);
      }
      if (!Gate) {
        CumPCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      if (Po.Kind == ProbeOpKind::IPAddII) {
        F.RoII.V += Po.C0;
        F.RoII.Dirty = true;
        eff(F.RoII.Known ? EffectKind::SetRoII : EffectKind::AddRoII, D, 0,
            F.RoII.Known ? F.RoII.V : Po.C0);
        CumPCost += cost::InactiveTest + cost::RegOp;
        break;
      }
      auto flushII = [&]() {
        InterprocKey K;
        K.Callee = consultU32(F.CalleeII, GuardKind::CalleeII,
                              Snap.Fr.CalleeII, Anchor);
        K.CallSite = F.CallSiteII.V; // consulted above
        K.Inner = consultInt(F.CalleePathII, GuardKind::CalleePathII, 0,
                             Snap.Fr.CalleePathII, Anchor);
        K.Outer = consultInt(F.RoII, GuardKind::RoII, 0, Snap.Fr.RoII,
                             Anchor) +
                  Po.C0;
        if (Failed)
          return;
        bumpTuple(2, K);
        F.ActiveII = {true, true, false};
        eff(EffectKind::SetActiveII, D, 0, 0);
      };
      if (Po.Kind == ProbeOpKind::IPFlushII) {
        flushII();
        if (Failed)
          return;
        CumPCost += cost::InactiveTest + cost::TupleBump;
        break;
      }
      // IPPredII
      CumPCost += cost::InactiveTest + cost::RegOp;
      bool Fired;
      if (F.OlII.Known) {
        F.OlII.V += 1;
        F.OlII.Dirty = true;
        Fired = F.OlII.V == Po.C1;
        eff(EffectKind::SetOlII, D, 0, F.OlII.V);
      } else {
        const int64_t DeltaAfter = F.OlII.V + 1;
        const int64_t ConcreteAfter = Snap.Fr.OlII + DeltaAfter;
        Fired = ConcreteAfter == Po.C1;
        if (Fired) {
          guard(GuardKind::OlIIEq, 0, Snap.Fr.OlII);
          F.OlII = {true, true, ConcreteAfter};
          F.OlIIEqGuarded = true;
          eff(EffectKind::SetOlII, D, 0, F.OlII.V);
        } else {
          if (ConcreteAfter > Po.C1) {
            fail();
            return;
          }
          F.OlII.V = DeltaAfter;
          F.OlII.Dirty = true;
          const int64_t Bound = Po.C1 - DeltaAfter;
          if (Bound < F.OlIILtBound)
            F.OlIILtBound = Bound;
          eff(EffectKind::AddOlII, D, 0, 1);
        }
      }
      if (Fired) {
        flushII();
        if (Failed)
          return;
        CumPCost += cost::TupleBump;
      }
      break;
    }
    }
  }
  if (Failed)
    return;
  CumSteps += 1; // a probe instruction is one base step, probe cost only
  ++BaseIdx;
  ++Pc;
}

void TraceCompiler::finalize() {
  CompFrame &F = Fs.front();

  // Range guards for monotone predicate counters that were incremented but
  // never pinned by an equality guard. Sound because a live active counter
  // is in [0, C1) and only ever incremented by one.
  for (uint32_t S = 0; S < F.Loops.size(); ++S) {
    SLoop &L = F.Loops[S];
    if (L.OlLtBound != INT64_MAX && !L.OlEqGuarded) {
      if (Snap.Loops[S].Ol >= L.OlLtBound) {
        fail(); // the guard would reject even the recorded entry state
        return;
      }
      guard(GuardKind::LoopOlLt, S, L.OlLtBound);
    }
  }
  if (F.OlILtBound != INT64_MAX && !F.OlIEqGuarded) {
    if (Snap.Fr.OlI >= F.OlILtBound) {
      fail();
      return;
    }
    guard(GuardKind::OlILt, 0, F.OlILtBound);
  }
  if (F.OlIILtBound != INT64_MAX && !F.OlIIEqGuarded) {
    if (Snap.Fr.OlII >= F.OlIILtBound) {
      fail();
      return;
    }
    guard(GuardKind::OlIILt, 0, F.OlIILtBound);
  }

  // Collapsed per-pass net effects (anchor frame + globals only: every
  // in-trace callee frame is gone by the pass boundary).
  auto &PE = Out->PassEffects;
  auto passInt = [&](const SInt &S, EffectKind SetK, EffectKind AddK,
                     uint32_t Slot) {
    if (!S.Dirty)
      return;
    if (S.Known)
      PE.push_back({SetK, 0, Slot, 0, S.V});
    else if (S.V != 0)
      PE.push_back({AddK, 0, Slot, 0, S.V});
  };
  auto passBool = [&](const SBool &S, EffectKind SetK, uint32_t Slot) {
    if (S.Dirty)
      PE.push_back({SetK, 0, Slot, 0, S.B ? 1 : 0});
  };
  auto passU32 = [&](const SU32 &S, EffectKind SetK, uint32_t Slot) {
    if (S.Dirty)
      PE.push_back({SetK, 0, Slot, 0, static_cast<int64_t>(S.V)});
  };
  passInt(F.R, EffectKind::SetR, EffectKind::AddR, 0);
  passInt(F.RI, EffectKind::SetRI, EffectKind::AddRI, 0);
  passInt(F.OlI, EffectKind::SetOlI, EffectKind::AddOlI, 0);
  passInt(F.CallerPre, EffectKind::SetCallerPre, EffectKind::SetCallerPre, 0);
  passInt(F.RoII, EffectKind::SetRoII, EffectKind::AddRoII, 0);
  passInt(F.OlII, EffectKind::SetOlII, EffectKind::AddOlII, 0);
  passInt(F.CalleePathII, EffectKind::SetCalleePathII,
          EffectKind::SetCalleePathII, 0);
  passBool(F.ActiveI, EffectKind::SetActiveI, 0);
  passBool(F.HaveCaller, EffectKind::SetHaveCaller, 0);
  passBool(F.ActiveII, EffectKind::SetActiveII, 0);
  passU32(F.CallSiteI, EffectKind::SetCallSiteI, 0);
  passU32(F.CallSiteII, EffectKind::SetCallSiteII, 0);
  passU32(F.CalleeII, EffectKind::SetCalleeII, 0);
  for (uint32_t S = 0; S < F.Loops.size(); ++S) {
    passInt(F.Loops[S].Ro, EffectKind::SetLoopRo, EffectKind::AddLoopRo, S);
    passInt(F.Loops[S].Ol, EffectKind::SetLoopOl, EffectKind::AddLoopOl, S);
    passBool(F.Loops[S].Active, EffectKind::SetLoopActive, S);
  }
  for (uint32_t I = 0; I < PopsBelow; ++I)
    PE.push_back({EffectKind::ShadowPop, 0, 0, 0, 0});
  for (const auto &Push : InPush)
    PE.push_back({EffectKind::ShadowPush, 0, Push.first, 0, Push.second});
  if (PDirty) {
    if (PValid.B)
      PE.push_back({EffectKind::PendingSet, 0, PCallee.V, 0, PPathId.V});
    else
      PE.push_back({EffectKind::PendingClear, 0, 0, 0, 0});
  }

  Out->MultiPass = InPush.empty() && PopsBelow == 0;
  Out->PassSteps = CumSteps;
  Out->PassBase = CumBase;
  Out->PassPCost = CumPCost;
  Out->PassBlocks = CumBlocks;
  Out->PassCalls = CumCalls;
  Out->PassBaseSteps = BaseIdx;
}

std::unique_ptr<CompiledTrace> TraceCompiler::run() {
  if (Rec.events().empty())
    return nullptr;
  const uint32_t AnchorF = Rec.anchorFunc();
  const uint32_t StartPc = Rec.anchorPc();
  const uint32_t EndPc = Rec.endPc();
  if (AnchorF >= P.Funcs.size() || Rec.endFunc() != AnchorF)
    return nullptr;

  Out = std::make_unique<CompiledTrace>();
  Out->FuncId = AnchorF;
  // Bridges start at a side-exit resume point (usually mid-block) and run
  // to the parent's anchor; AnchorPc names where a completed pass lands.
  Out->IsBridge = Rec.bridge();
  Out->AnchorPc = EndPc;
  Out->AnchorBlock = Rec.anchorBlock();
  Out->StartPc = StartPc;
  Out->StartBlock = Rec.anchorBlock();

  // The entry frame: everything entry-relative / unknown; the compiler
  // promotes components to known values (emitting guards) on demand.
  CompFrame F;
  F.FuncId = AnchorF;
  F.FP = &P.Funcs[AnchorF];
  F.Loops.resize(F.FP->NumLoopSlots);
  F.KnownReg.assign(F.FP->NumRegs, 0);
  F.KVal.assign(F.FP->NumRegs, 0);
  Fs.push_back(std::move(F));
  Pc = StartPc;
  CurBlock = Rec.anchorBlock();
  if (Snap.Loops.size() != Fs.front().Loops.size())
    return nullptr;

  while (!(EvIdx == Rec.events().size() && atAnchor() && Pc == EndPc &&
           BaseIdx > 0)) {
    if (Failed || BaseIdx >= MaxBaseSteps)
      return nullptr;
    const CompFrame &F2 = cur();
    if (Pc >= F2.FP->Code.size())
      return nullptr;
    const ExecInstr &E = F2.FP->Code[Pc];
    const ExecOp B = execBaseOp(E.Op);
    switch (B) {
    case ExecOp::Probe:
      simProbe(E);
      break;
    case ExecOp::Br:
    case ExecOp::CondBr:
      doBranch(E);
      break;
    case ExecOp::Call:
    case ExecOp::CallInd:
      doCall(B, E);
      break;
    case ExecOp::Ret:
      doRet(E);
      break;
    default:
      doDataOp(B, E);
      break;
    }
  }
  if (Failed)
    return nullptr;
  finalize();
  if (Failed)
    return nullptr;
  return std::move(Out);
}

} // namespace

std::unique_ptr<CompiledTrace> compileTrace(const ExecPlan &P,
                                            const TraceRecorder &Rec) {
  if (Rec.aborted() || Rec.depth() != 0)
    return nullptr;
  return TraceCompiler(P, Rec).run();
}

//===----------------------------------------------------------------------===//
// Trace executor
//===----------------------------------------------------------------------===//

namespace {

/// Evaluates \p T's entry guards against live state and returns how many
/// consecutive passes they are guaranteed to keep passing for, capped at
/// \p Cap (0 = a guard fails right now). Without optimizer budgets every
/// pass re-checks, so the grant is a single pass; with them (see
/// TraceOpt.h kTraceOptBudget) a whole batch runs on one sweep.
uint64_t guardPassBudget(const CompiledTrace &T, const TraceRunIO &IO,
                         size_t AnchorIdx, uint64_t Cap) {
  const FastFrame &Fr = IO.Frames[AnchorIdx];
  const LoopRegs *Loops = IO.LoopStack.data() + Fr.LoopBase;
  const ProfileRuntime &Prof = IO.Prof;
  const bool HasB = T.Budgeted;
  uint64_t Budget = (HasB && Cap) ? Cap : 1;
  if (T.Guards.empty())
    return Budget;
  for (size_t I = 0; I < T.Guards.size(); ++I) {
    const TraceGuard &G = T.Guards[I];
    int64_t Live = 0; ///< Lt-kind live counter value (budget math below)
    switch (G.Kind) {
    case GuardKind::R:
      if (Fr.R != G.V)
        return 0;
      break;
    case GuardKind::LoopActive:
      if (Loops[G.Slot].Active != (G.V != 0))
        return 0;
      break;
    case GuardKind::LoopRo:
      if (Loops[G.Slot].Ro != G.V)
        return 0;
      break;
    case GuardKind::LoopOlEq:
      if (Loops[G.Slot].Ol != G.V)
        return 0;
      break;
    case GuardKind::LoopOlLt:
      Live = Loops[G.Slot].Ol;
      if (Live >= G.V)
        return 0;
      break;
    case GuardKind::ActiveI:
      if (Fr.ActiveI != (G.V != 0))
        return 0;
      break;
    case GuardKind::HaveCaller:
      if (Fr.HaveCaller != (G.V != 0))
        return 0;
      break;
    case GuardKind::RI:
      if (Fr.RI != G.V)
        return 0;
      break;
    case GuardKind::OlIEq:
      if (Fr.OlI != G.V)
        return 0;
      break;
    case GuardKind::OlILt:
      Live = Fr.OlI;
      if (Live >= G.V)
        return 0;
      break;
    case GuardKind::CallerPre:
      if (Fr.CallerPre != G.V)
        return 0;
      break;
    case GuardKind::CallSiteI:
      if (Fr.CallSiteI != static_cast<uint32_t>(G.V))
        return 0;
      break;
    case GuardKind::ActiveII:
      if (Fr.ActiveII != (G.V != 0))
        return 0;
      break;
    case GuardKind::RoII:
      if (Fr.RoII != G.V)
        return 0;
      break;
    case GuardKind::OlIIEq:
      if (Fr.OlII != G.V)
        return 0;
      break;
    case GuardKind::OlIILt:
      Live = Fr.OlII;
      if (Live >= G.V)
        return 0;
      break;
    case GuardKind::CalleePathII:
      if (Fr.CalleePathII != G.V)
        return 0;
      break;
    case GuardKind::CallSiteII:
      if (Fr.CallSiteII != static_cast<uint32_t>(G.V))
        return 0;
      break;
    case GuardKind::CalleeII:
      if (Fr.CalleeII != static_cast<uint32_t>(G.V))
        return 0;
      break;
    case GuardKind::PendingValid:
      if (Prof.Pending.Valid != (G.V != 0))
        return 0;
      break;
    case GuardKind::PendingCallee:
      if (Prof.Pending.Callee != static_cast<uint32_t>(G.V))
        return 0;
      break;
    case GuardKind::PendingPathId:
      if (Prof.Pending.PathId != G.V)
        return 0;
      break;
    case GuardKind::ShadowDepth:
      if (Prof.ShadowStack.size() != static_cast<uint64_t>(G.V))
        return 0;
      break;
    case GuardKind::ShadowSiteAt: {
      const auto &SS = Prof.ShadowStack;
      if (SS.size() <= G.Slot ||
          SS[SS.size() - 1 - G.Slot].CallSite != static_cast<uint32_t>(G.V))
        return 0;
      break;
    }
    case GuardKind::ShadowPreAt: {
      const auto &SS = Prof.ShadowStack;
      if (SS.size() <= G.Slot || SS[SS.size() - 1 - G.Slot].CallerPre != G.V)
        return 0;
      break;
    }
    }
    if (!HasB || Budget == 1)
      continue;
    const GuardBudget &B = T.Budgets[I];
    if (B.M == GuardBudget::One) {
      Budget = 1;
    } else if (B.M == GuardBudget::DynLt) {
      // Live < G.V held above; the counter gains Delta (> 0) per pass, so
      // exactly ceil((V - Live) / Delta) passes stay under the bound.
      // Unsigned subtraction is exact for any int64 pair with Live < V.
      const uint64_t Q =
          static_cast<uint64_t>(G.V) - static_cast<uint64_t>(Live);
      const uint64_t D = static_cast<uint64_t>(B.Delta);
      const uint64_t K = Q / D + (Q % D != 0 ? 1 : 0);
      if (K < Budget)
        Budget = K;
    }
  }
  return Budget;
}

void applyEffect(const TraceEffect &E, TraceRunIO &IO, size_t AnchorIdx) {
  FastFrame &F = IO.Frames[AnchorIdx + E.Depth];
  switch (E.Kind) {
  case EffectKind::SetR:
    F.R = E.V;
    break;
  case EffectKind::AddR:
    F.R += E.V;
    break;
  case EffectKind::SetRI:
    F.RI = E.V;
    break;
  case EffectKind::AddRI:
    F.RI += E.V;
    break;
  case EffectKind::SetOlI:
    F.OlI = E.V;
    break;
  case EffectKind::AddOlI:
    F.OlI += E.V;
    break;
  case EffectKind::SetCallerPre:
    F.CallerPre = E.V;
    break;
  case EffectKind::SetCallSiteI:
    F.CallSiteI = static_cast<uint32_t>(E.V);
    break;
  case EffectKind::SetActiveI:
    F.ActiveI = E.V != 0;
    break;
  case EffectKind::SetHaveCaller:
    F.HaveCaller = E.V != 0;
    break;
  case EffectKind::SetRoII:
    F.RoII = E.V;
    break;
  case EffectKind::AddRoII:
    F.RoII += E.V;
    break;
  case EffectKind::SetOlII:
    F.OlII = E.V;
    break;
  case EffectKind::AddOlII:
    F.OlII += E.V;
    break;
  case EffectKind::SetCalleePathII:
    F.CalleePathII = E.V;
    break;
  case EffectKind::SetCallSiteII:
    F.CallSiteII = static_cast<uint32_t>(E.V);
    break;
  case EffectKind::SetCalleeII:
    F.CalleeII = static_cast<uint32_t>(E.V);
    break;
  case EffectKind::SetActiveII:
    F.ActiveII = E.V != 0;
    break;
  case EffectKind::SetLoopRo:
    IO.LoopStack[F.LoopBase + E.Slot].Ro = E.V;
    break;
  case EffectKind::AddLoopRo:
    IO.LoopStack[F.LoopBase + E.Slot].Ro += E.V;
    break;
  case EffectKind::SetLoopOl:
    IO.LoopStack[F.LoopBase + E.Slot].Ol = E.V;
    break;
  case EffectKind::AddLoopOl:
    IO.LoopStack[F.LoopBase + E.Slot].Ol += E.V;
    break;
  case EffectKind::SetLoopActive:
    IO.LoopStack[F.LoopBase + E.Slot].Active = E.V != 0;
    break;
  case EffectKind::ShadowPush:
    IO.Prof.ShadowStack.push_back({E.Slot, E.V});
    break;
  case EffectKind::ShadowPop:
    IO.Prof.ShadowStack.pop_back();
    break;
  case EffectKind::PendingSet:
    IO.Prof.Pending.Valid = true;
    IO.Prof.Pending.Callee = E.Slot;
    IO.Prof.Pending.PathId = E.V;
    break;
  case EffectKind::PendingClear:
    IO.Prof.Pending.Valid = false;
    break;
  }
}

/// Applies \p T's collapsed per-pass net effects for \p K completed passes
/// at once. Sound because PassEffects holds at most one entry per
/// component: Sets are idempotent across passes and Adds scale linearly;
/// shadow push/pop entries only occur on single-pass traces (K <= 1 by
/// construction there).
void applyPassEffectsScaled(const CompiledTrace &T, TraceRunIO &IO,
                            size_t AnchorIdx, uint64_t K) {
  if (K == 0)
    return;
  if (K == 1) {
    for (const TraceEffect &E : T.PassEffects)
      applyEffect(E, IO, AnchorIdx);
    return;
  }
  for (const TraceEffect &E : T.PassEffects) {
    switch (E.Kind) {
    case EffectKind::AddR:
    case EffectKind::AddRI:
    case EffectKind::AddOlI:
    case EffectKind::AddRoII:
    case EffectKind::AddOlII:
    case EffectKind::AddLoopRo:
    case EffectKind::AddLoopOl: {
      TraceEffect S = E;
      S.V = static_cast<int64_t>(static_cast<uint64_t>(E.V) * K);
      applyEffect(S, IO, AnchorIdx);
      break;
    }
    default:
      applyEffect(E, IO, AnchorIdx);
      break;
    }
  }
}

} // namespace

void runCompiledTrace(const CompiledTrace &Root, TraceRunIO &IO) {
  ++IO.Stats.Enters;
  const size_t AnchorIdx = IO.Frames.size() - 1;
  // The segment being executed: the root (anchor) trace, or a bridge
  // stitched onto one of its side exits. A mid-pass deopt at anchor depth
  // chases the exit's bridge when one is linked; a completed bridge pass
  // lands back at the root's anchor and re-enters the root. Every segment
  // boundary flushes exact engine state first, so a reject at any point
  // leaves nothing to undo.
  const CompiledTrace *Seg = &Root;
  // Completed anchor-to-anchor iterations this enter (full root passes
  // plus completed bridge passes): the retirement heuristic's notion of
  // straight-line progress.
  uint64_t RootProgress = 0;
  bool AnyProgress = false;
  // Mid-pass deopts anywhere in the tree this enter; folded into the
  // root's lifetime counter at exit for the DWE gate (every deopt replays
  // the deopting segment's recovery windows, so tree-wide is the honest
  // measure of replay pressure).
  uint64_t RunDeopts = 0;
  // Completed passes of the *current segment run* (reset on every segment
  // switch): gates Wrap recovery entries, whose value only exists once
  // this segment has wrapped around the backedge at least once.
  uint64_t SegPasses = 0;
  // A clean pass-boundary exit from a segment must land every Wrap entry
  // (the final value of each whole-pass-dead write) before anything else
  // reads the anchor frame.
  const auto MaterializeWraps = [&IO, AnchorIdx](const CompiledTrace &Tr) {
    if (Tr.Recov.empty())
      return;
    int64_t *ARegs = IO.RegStack.data() + IO.Frames[AnchorIdx].RegBase;
    for (const TraceRecovery &R : Tr.Recov)
      if (R.Wrap)
        ARegs[R.R] = R.Copy ? ARegs[R.Src] : R.V;
  };
  // Base-step index at which the frame currently live at each in-trace
  // depth was created; gates positional effects to the right frame
  // instance on a mid-pass deopt.
  std::vector<uint32_t> DS;

  for (;;) {
    const CompiledTrace &T = *Seg;

    // Fuel precondition: the dispatch loop charges one fuel unit per base
    // step *before* executing it, so a pass may start only if every one of
    // its PassSteps fits under the limit. Accounting is flushed per batch,
    // so IO.Steps is current here.
    uint64_t MaxK = 0;
    if (IO.Steps + T.PassSteps <= IO.MaxSteps) {
      const uint64_t FuelK = (IO.MaxSteps - IO.Steps) / T.PassSteps;
      MaxK = guardPassBudget(T, IO, AnchorIdx, FuelK);
      if (MaxK > FuelK)
        MaxK = FuelK;
      if (MaxK && (!T.MultiPass || T.IsBridge))
        MaxK = 1;
    }
    if (MaxK == 0) {
      if (T.IsBridge) {
        // Bridge entry reject: the side exit already restored exact state
        // and the resume point. Tally churn for the bridge's own
        // retirement (Dead only — a bridge never blacklists the anchor).
        const uint64_t BE =
            T.LifeEnters.fetch_add(1, std::memory_order_relaxed) + 1;
        const uint64_t BP = T.LifePasses.load(std::memory_order_relaxed);
        if (BE >= CompiledTrace::RetireCheckEnters && BP * 4 < BE &&
            !T.Dead.exchange(true, std::memory_order_relaxed))
          ++IO.Stats.Retired;
        break;
      }
      if (!AnyProgress)
        ++IO.Stats.EntryRejects;
      if (SegPasses)
        MaterializeWraps(T);
      FastFrame &Top = IO.Frames[AnchorIdx];
      Top.Pc = T.AnchorPc;
      Top.Block = T.AnchorBlock;
      break;
    }
    if (T.IsBridge) {
      T.LifeEnters.fetch_add(1, std::memory_order_relaxed);
      ++IO.Stats.BridgeEnters;
    }

    uint64_t PassCount = 0;
    bool Deopt = false;
    size_t DeoptK = 0;
    while (PassCount < MaxK) {
    DS.assign(1, 0);
    int64_t *Regs = IO.RegStack.data() + IO.Frames[AnchorIdx].RegBase;

    // Direct-threaded like the main loop (Interpreter.cpp): every handler
    // ends by jumping through the table straight to the next step's
    // handler, so the indirect branch predictor learns one dispatch site
    // per handler instead of sharing a single mispredicting switch. Order
    // must match the TOp enum exactly. Handlers that can fail jump to
    // TrFail with SP still on the failing step (deopt-before semantics).
    static const void *const Handlers[] = {
        &&T_Const,     &&T_Move,     &&T_Add,      &&T_Sub,      &&T_Mul,
        &&T_Div,       &&T_Mod,      &&T_And,      &&T_Or,       &&T_Xor,
        &&T_Shl,       &&T_Shr,      &&T_CmpEq,    &&T_CmpNe,    &&T_CmpLt,
        &&T_CmpLe,     &&T_CmpGt,    &&T_CmpGe,    &&T_AddImm,   &&T_AndImm,
        &&T_CmpEqImm,  &&T_CmpNeImm, &&T_CmpLtImm, &&T_CmpLeImm, &&T_CmpGtImm,
        &&T_CmpGeImm,  &&T_Neg,      &&T_Not,      &&T_LoadG,    &&T_StoreG,
        &&T_LoadArr,   &&T_StoreArr, &&T_GuardTrue, &&T_GuardFalse,
        &&T_GuardCallee, &&T_Call,   &&T_Ret};
    const TraceStep *__restrict const S0 = T.Steps.data();
    const TraceStep *__restrict SP = S0;
    const TraceStep *const SEnd = S0 + T.Steps.size();
#define TR_DISPATCH()                                                          \
  do {                                                                         \
    if (SP == SEnd)                                                            \
      goto TrPassDone;                                                         \
    goto *Handlers[static_cast<size_t>(SP->Op)];                               \
  } while (0)

    TR_DISPATCH();
  T_Const: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = S.Imm;
  }
    TR_DISPATCH();
  T_Move: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0];
  }
    TR_DISPATCH();
  T_Add: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = wrapAdd(Regs[S.Src0], Regs[S.Src1]);
  }
    TR_DISPATCH();
  T_Sub: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = wrapSub(Regs[S.Src0], Regs[S.Src1]);
  }
    TR_DISPATCH();
  T_Mul: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = wrapMul(Regs[S.Src0], Regs[S.Src1]);
  }
    TR_DISPATCH();
  T_Div: {
    const TraceStep &S = *SP;
    const int64_t A = Regs[S.Src0], B = Regs[S.Src1];
    if (B == 0 || (A == INT64_MIN && B == -1))
      goto TrFail;
    Regs[S.Dst] = A / B;
    ++SP;
  }
    TR_DISPATCH();
  T_Mod: {
    const TraceStep &S = *SP;
    const int64_t A = Regs[S.Src0], B = Regs[S.Src1];
    if (B == 0 || (A == INT64_MIN && B == -1))
      goto TrFail;
    Regs[S.Dst] = A % B;
    ++SP;
  }
    TR_DISPATCH();
  T_And: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] & Regs[S.Src1];
  }
    TR_DISPATCH();
  T_Or: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] | Regs[S.Src1];
  }
    TR_DISPATCH();
  T_Xor: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] ^ Regs[S.Src1];
  }
    TR_DISPATCH();
  T_Shl: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = static_cast<int64_t>(
        static_cast<uint64_t>(Regs[S.Src0])
        << (static_cast<uint64_t>(Regs[S.Src1]) & 63));
  }
    TR_DISPATCH();
  T_Shr: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] >> (static_cast<uint64_t>(Regs[S.Src1]) & 63);
  }
    TR_DISPATCH();
  T_CmpEq: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] == Regs[S.Src1];
  }
    TR_DISPATCH();
  T_CmpNe: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] != Regs[S.Src1];
  }
    TR_DISPATCH();
  T_CmpLt: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] < Regs[S.Src1];
  }
    TR_DISPATCH();
  T_CmpLe: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] <= Regs[S.Src1];
  }
    TR_DISPATCH();
  T_CmpGt: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] > Regs[S.Src1];
  }
    TR_DISPATCH();
  T_CmpGe: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] >= Regs[S.Src1];
  }
    TR_DISPATCH();
  T_AddImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = wrapAdd(Regs[S.Src0], S.Imm);
  }
    TR_DISPATCH();
  T_AndImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] & S.Imm;
  }
    TR_DISPATCH();
  T_CmpEqImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] == S.Imm;
  }
    TR_DISPATCH();
  T_CmpNeImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] != S.Imm;
  }
    TR_DISPATCH();
  T_CmpLtImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] < S.Imm;
  }
    TR_DISPATCH();
  T_CmpLeImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] <= S.Imm;
  }
    TR_DISPATCH();
  T_CmpGtImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] > S.Imm;
  }
    TR_DISPATCH();
  T_CmpGeImm: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] >= S.Imm;
  }
    TR_DISPATCH();
  T_Neg: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = wrapNeg(Regs[S.Src0]);
  }
    TR_DISPATCH();
  T_Not: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = Regs[S.Src0] == 0 ? 1 : 0;
  }
    TR_DISPATCH();
  T_LoadG: {
    const TraceStep &S = *SP++;
    Regs[S.Dst] = IO.Globals[S.Aux].Data[0];
  }
    TR_DISPATCH();
  T_StoreG: {
    const TraceStep &S = *SP++;
    IO.Globals[S.Aux].Data[0] = Regs[S.Src0];
  }
    TR_DISPATCH();
  T_LoadArr: {
    const TraceStep &S = *SP;
    const int64_t Idx = Regs[S.Src0];
    const GlobalView Arr = IO.Globals[S.Aux];
    if (static_cast<uint64_t>(Idx) >= Arr.Size)
      goto TrFail;
    Regs[S.Dst] = Arr.Data[static_cast<size_t>(Idx)];
    ++SP;
  }
    TR_DISPATCH();
  T_StoreArr: {
    const TraceStep &S = *SP;
    const int64_t Idx = Regs[S.Src0];
    const GlobalView Arr = IO.Globals[S.Aux];
    if (static_cast<uint64_t>(Idx) >= Arr.Size)
      goto TrFail;
    Arr.Data[static_cast<size_t>(Idx)] = Regs[S.Src1];
    ++SP;
  }
    TR_DISPATCH();
  T_GuardTrue: {
    if (Regs[SP->Src0] == 0)
      goto TrFail;
    ++SP;
  }
    TR_DISPATCH();
  T_GuardFalse: {
    if (Regs[SP->Src0] != 0)
      goto TrFail;
    ++SP;
  }
    TR_DISPATCH();
  T_GuardCallee: {
    const TraceStep &S = *SP;
    if (Regs[S.Src0] != static_cast<int64_t>(S.Aux))
      goto TrFail;
    ++SP;
  }
    TR_DISPATCH();
  T_Call: {
    if (IO.Frames.size() >= IO.MaxCallDepth)
      goto TrFail;
    const TraceStep &S = *SP;
    const FuncPlan &FP = IO.Plan.Funcs[S.Aux];
    const TraceStepMeta &Mk = T.Meta[static_cast<size_t>(SP - S0)];
    FastFrame &Cur = IO.Frames.back();
    Cur.Pc = Mk.Pc + 1;
    Cur.Block = Mk.Block;
    FastFrame NF;
    NF.FuncId = S.Aux;
    NF.RetDst = S.Dst;
    NF.RegBase = static_cast<uint32_t>(IO.RegStack.size());
    NF.LoopBase = static_cast<uint32_t>(IO.LoopStack.size());
    const uint32_t CallerBase = Cur.RegBase;
    IO.RegStack.resize(NF.RegBase + FP.NumRegs);
    IO.LoopStack.resize(NF.LoopBase + FP.NumLoopSlots);
    for (uint32_t A = 0; A < S.ArgsCount; ++A)
      IO.RegStack[NF.RegBase + A] = IO.RegStack[CallerBase + S.Args[A]];
    IO.Frames.push_back(NF);
    DS.push_back(Mk.BaseIdx);
    Regs = IO.RegStack.data() + NF.RegBase;
    ++SP;
  }
    TR_DISPATCH();
  T_Ret: {
    const TraceStep &S = *SP++;
    const FastFrame F = IO.Frames.back();
    const int64_t Val = S.Src0 == NoReg ? 0 : Regs[S.Src0];
    IO.RegStack.resize(F.RegBase);
    IO.LoopStack.resize(F.LoopBase);
    IO.Frames.pop_back();
    DS.pop_back();
    Regs = IO.RegStack.data() + IO.Frames.back().RegBase;
    if (F.RetDst != NoReg)
      Regs[F.RetDst] = Val;
  }
    TR_DISPATCH();
#undef TR_DISPATCH

  TrFail:
    Deopt = true;
    DeoptK = static_cast<size_t>(SP - S0);
    break;

  TrPassDone:
    ++PassCount;
    }

    // Batch bookkeeping. Completed passes apply their net effects scaled
    // (deferred across the batch: steps never read probe state, so the
    // deferral is invisible), then the deopt path applies the partial
    // pass's positional effects and recovery entries — exact interpreter
    // state before anything else looks at it.
    uint32_t Threshold = 0;
    applyPassEffectsScaled(T, IO, AnchorIdx, PassCount);
    if (Deopt) {
      const TraceStepMeta &Mk = T.Meta[DeoptK];
      Threshold = Mk.BaseIdx;
      for (const TraceEffect &E : T.Effects) {
        if (E.BaseIdx >= Threshold)
          break;
        if (E.Depth >= DS.size())
          continue;
        if (E.Depth > 0 && E.BaseIdx < DS[E.Depth])
          continue;
        applyEffect(E, IO, AnchorIdx);
      }
      // Materialize optimizer-removed register writes whose live window
      // covers the deopt step (anchor-frame registers; sorted by Begin,
      // later entries overwrite earlier ones by design).
      if (!T.Recov.empty()) {
        int64_t *ARegs = IO.RegStack.data() + IO.Frames[AnchorIdx].RegBase;
        const uint32_t K32 = static_cast<uint32_t>(DeoptK);
        for (const TraceRecovery &R : T.Recov) {
          if (R.Begin > K32)
            break;
          // Wrap windows hold the previous pass's value: dead until this
          // segment run has completed at least one pass.
          if (K32 <= R.End && (!R.Wrap || SegPasses + PassCount > 0))
            ARegs[R.R] = R.Copy ? ARegs[R.Src] : R.V;
        }
      }
      IO.Steps += PassCount * T.PassSteps + Mk.CumSteps;
      IO.Base += PassCount * T.PassBase + Mk.CumBase;
      IO.PCost += PassCount * T.PassPCost + Mk.CumPCost;
      IO.Blocks += PassCount * T.PassBlocks + Mk.CumBlocks;
      IO.Calls += PassCount * T.PassCalls + Mk.CumCalls;
      IO.Stats.TraceSteps += PassCount * T.PassSteps + Mk.CumSteps;
      FastFrame &Top = IO.Frames.back();
      Top.Pc = Mk.Pc;
      Top.Block = Mk.Block;
      ++IO.Stats.Deopts;
      ++RunDeopts;
    } else {
      IO.Steps += PassCount * T.PassSteps;
      IO.Base += PassCount * T.PassBase;
      IO.PCost += PassCount * T.PassPCost;
      IO.Blocks += PassCount * T.PassBlocks;
      IO.Calls += PassCount * T.PassCalls;
      IO.Stats.TraceSteps += PassCount * T.PassSteps;
    }
    IO.Stats.Passes += PassCount;
    SegPasses += PassCount;

    for (const TraceBump &B : T.Bumps) {
      const uint64_t N =
          PassCount + ((Deopt && B.BaseIdx < Threshold) ? 1 : 0);
      if (N == 0)
        continue;
      if (B.Table == 0)
        IO.Prof.PathCounts[B.FuncId].add(B.Id, N);
      else if (B.Table == 1)
        IO.Prof.TypeICounts.bump(B.Key, N);
      else
        IO.Prof.TypeIICounts.bump(B.Key, N);
    }

    if (!T.IsBridge && PassCount) {
      RootProgress += PassCount;
      AnyProgress = true;
    }

    if (!Deopt) {
      if (T.IsBridge) {
        // Completed bridge pass: control is back at the root's anchor.
        // Counts as one anchor-to-anchor iteration of straight-line
        // progress for the tree.
        T.LifePasses.fetch_add(1, std::memory_order_relaxed);
        RootProgress += 1;
        AnyProgress = true;
        MaterializeWraps(T);
        Seg = &Root;
        SegPasses = 0;
        continue;
      }
      if (!T.MultiPass) {
        MaterializeWraps(T);
        FastFrame &Top = IO.Frames[AnchorIdx];
        Top.Pc = T.AnchorPc;
        Top.Block = T.AnchorBlock;
        break;
      }
      continue; // guards and fuel re-checked at the top
    }

    // Mid-pass deopt. When it happened at anchor depth, this is a side
    // exit: chase its bridge if one is stitched in, or ask the
    // interpreter to record one once the exit proves hot.
    bool Chase = false;
    if (DS.size() == 1 && T.ExitDeopts && IO.LinkThreshold) {
      std::atomic<uint32_t> &Ctr = T.ExitDeopts[DeoptK];
      const uint32_t Prev = Ctr.load(std::memory_order_relaxed);
      if (Prev != CompiledTrace::NoBridgeSentinel) {
        uint32_t Now = Prev + 1;
        if (Now >= CompiledTrace::NoBridgeSentinel)
          Now = CompiledTrace::NoBridgeSentinel - 1;
        Ctr.store(Now, std::memory_order_relaxed);
        const CompiledTrace *Br =
            T.BridgeAt[DeoptK].load(std::memory_order_acquire);
        if (Br && !Br->Dead.load(std::memory_order_relaxed)) {
          Seg = Br;
          SegPasses = 0;
          Chase = true;
        } else if (!Br && Now == IO.LinkThreshold) {
          IO.BridgeParent = &T;
          IO.BridgeStep = static_cast<uint32_t>(DeoptK);
        }
      }
    }
    if (T.IsBridge) {
      // A bridge that keeps dying mid-pass is churn like any other trace;
      // its completion rate (LifePasses counts completions only) decides.
      const uint64_t BE = T.LifeEnters.load(std::memory_order_relaxed);
      const uint64_t BP = T.LifePasses.load(std::memory_order_relaxed);
      if (BE >= CompiledTrace::RetireCheckEnters && BP * 4 < BE &&
          !T.Dead.exchange(true, std::memory_order_relaxed))
        ++IO.Stats.Retired;
    }
    if (!Chase)
      break;
  }

  // Adaptive retirement (see CompiledTrace): once the lifetime average
  // drops under one completed anchor-to-anchor iteration per enter, the
  // tree is churn — every enter pays setup plus the deopt restore for no
  // straight-line progress. Blacklisting the anchor keeps this runtime
  // from re-recording it.
  const uint64_t Enters =
      Root.LifeEnters.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t Passes =
      Root.LifePasses.fetch_add(RootProgress, std::memory_order_relaxed) +
      RootProgress;
  const uint64_t Deopts =
      Root.LifeDeopts.fetch_add(RunDeopts, std::memory_order_relaxed) +
      RunDeopts;
  // Deopt-rate DWE gate: once the lifetime rate crosses the threshold the
  // wrap-recovery replay is costing more than the eliminated writes save;
  // ask the interpreter to swap in the pre-compiled no-DWE alternate. The
  // gate outranks churn retirement — the trace still makes straight-line
  // progress, it is just optimized wrongly for this deopt profile.
  if (IO.DWEGate && Root.HasWrapDWE &&
      Enters >= CompiledTrace::RetireCheckEnters &&
      Deopts * 100 > Enters * static_cast<uint64_t>(IO.DWEGate) &&
      !Root.Dead.load(std::memory_order_relaxed)) {
    IO.DWETripped = &Root;
    return;
  }
  if (Enters >= CompiledTrace::RetireCheckEnters && Passes < Enters &&
      !Root.Dead.exchange(true, std::memory_order_relaxed)) {
    IO.Prof.Tier.blacklistAnchor(Root.FuncId, Root.AnchorPc);
    ++IO.Stats.Retired;
  }
}

} // namespace olpp
