//===--- ProfileRuntime.h - Profile counter stores --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter stores an instrumented run writes into, plus the transient
/// interprocedural hand-off state (shadow stack, pending return). The
/// decoding of ids back into paths lives in the profile/overlap/interproc
/// modules; this layer only stores raw numbers.
///
/// Path counters are dense vectors under a configured id space and spill to
/// a hash map above it; the interprocedural 4-tuple counters live in an
/// open-addressing flat table (see interp/CounterStore.h).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_PROFILERUNTIME_H
#define OLPP_INTERP_PROFILERUNTIME_H

#include "interp/CounterStore.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace olpp {

/// Counter stores written by probes during an instrumented run.
class ProfileRuntime {
public:
  using PathCountMap = PathCounterStore::Map;
  using InterprocMap = FlatInterprocTable::Map;

  explicit ProfileRuntime(size_t NumFunctions) : PathCounts(NumFunctions) {}

  /// Per-function path-id counters. BL paths and loop-overlap paths of one
  /// function share this id space (they are numbered on one path graph).
  /// Call configurePathStore once the id space is known to get the dense
  /// representation; unconfigured stores count correctly through the spill
  /// map.
  std::vector<PathCounterStore> PathCounts;

  /// Type I / Type II interprocedural overlap counters.
  FlatInterprocTable TypeICounts;
  FlatInterprocTable TypeIICounts;

  /// Declares function \p F's path-id space [0, IdSpace) so its counters can
  /// use the dense form (no-op above PathCounterStore::DenseLimit).
  void configurePathStore(uint32_t F, uint64_t IdSpace) {
    PathCounts[F].configure(IdSpace);
  }

  // --- transient state used while a run is in progress -----------------

  struct ShadowEntry {
    uint32_t CallSite = 0;
    int64_t CallerPre = 0;
  };
  std::vector<ShadowEntry> ShadowStack;

  struct PendingReturn {
    bool Valid = false;
    uint32_t Callee = 0;
    int64_t PathId = 0;
  };
  PendingReturn Pending;

  /// Hot-path tracing tier bookkeeping (see interp/TraceTier.h). The
  /// hotness table and blacklist persist across runs like the counters do
  /// (heat accumulated in one batch run should still trigger recording in
  /// the next); the armed-recording flag is transient — a run that aborts
  /// between arming and recording must not leak the request into the next
  /// batch run, exactly like a stale shadow stack.
  struct TraceTierState {
    struct HotSlot {
      uint64_t Key = 0;
      uint32_t Count = 0;
      bool Disabled = false;
    };
    static constexpr size_t NumSlots = 1024;
    std::vector<HotSlot> Hot;

    /// Function id armed for recording at its next backedge, or -1.
    int64_t PendingRecord = -1;
    /// Hot-table slot that triggered the arm (disabled on give-up).
    uint32_t PendingSlot = 0;
    /// Anchors ((F << 32) | Pc) whose recordings aborted or failed to
    /// compile; never re-attempted.
    std::vector<uint64_t> Blacklist;

    static uint64_t mixKey(uint32_t F, int64_t Id) {
      uint64_t X = (static_cast<uint64_t>(F) << 48) ^
                   static_cast<uint64_t>(Id) * 0x9e3779b97f4a7c15ULL;
      X ^= X >> 29;
      return X | 1; // 0 marks an empty slot
    }

    /// Records one completion of overlapping path \p Id in function \p F;
    /// arms recording once the count reaches \p Threshold.
    void noteHot(uint32_t F, int64_t Id, uint32_t Threshold) {
      if (PendingRecord >= 0)
        return;
      if (Hot.empty())
        Hot.resize(NumSlots);
      const uint64_t Key = mixKey(F, Id);
      size_t I = static_cast<size_t>(Key) & (NumSlots - 1);
      for (size_t Probe = 0; Probe < 8; ++Probe, I = (I + 1) & (NumSlots - 1)) {
        HotSlot &S = Hot[I];
        if (S.Key == Key) {
          if (S.Disabled)
            return;
          if (S.Count != UINT32_MAX)
            ++S.Count;
          if (S.Count >= Threshold) {
            PendingRecord = F;
            PendingSlot = static_cast<uint32_t>(I);
          }
          return;
        }
        if (S.Key == 0) {
          S.Key = Key;
          S.Count = 1;
          if (S.Count >= Threshold) {
            PendingRecord = F;
            PendingSlot = static_cast<uint32_t>(I);
          }
          return;
        }
      }
      // Cluster full: drop the sample. Heat attribution is best-effort.
    }

    /// Pre-heats the table from a persisted profile: credits \p Count prior
    /// completions of overlapping path \p Id in function \p F, so the first
    /// live completion already crosses the recording threshold and arms a
    /// recording. This is the artifact-driven warmup skip (`olpp run`/
    /// `bench --profile`): heat measured in an earlier profiled run stands
    /// in for the warmup iterations of this one. Idempotent (keeps the
    /// larger count) and best-effort like noteHot.
    void seed(uint32_t F, int64_t Id, uint32_t Count) {
      if (Hot.empty())
        Hot.resize(NumSlots);
      const uint64_t Key = mixKey(F, Id);
      size_t I = static_cast<size_t>(Key) & (NumSlots - 1);
      for (size_t Probe = 0; Probe < 8; ++Probe, I = (I + 1) & (NumSlots - 1)) {
        HotSlot &S = Hot[I];
        if (S.Key == Key || S.Key == 0) {
          S.Key = Key;
          if (!S.Disabled && Count > S.Count)
            S.Count = Count;
          return;
        }
      }
    }

    bool anchorBlacklisted(uint32_t F, uint32_t Pc) const {
      const uint64_t K = (static_cast<uint64_t>(F) << 32) | Pc;
      for (uint64_t B : Blacklist)
        if (B == K)
          return true;
      return false;
    }
    void blacklistAnchor(uint32_t F, uint32_t Pc) {
      if (!anchorBlacklisted(F, Pc))
        Blacklist.push_back((static_cast<uint64_t>(F) << 32) | Pc);
    }

    void reset() {
      Hot.clear();
      PendingRecord = -1;
      PendingSlot = 0;
      Blacklist.clear();
    }
  };
  TraceTierState Tier;

  /// Clears transient state between runs but keeps accumulated counters.
  /// A run that aborts (fuel, traps) or ends inside instrumented callees
  /// can leave shadow-stack entries and a pending-return record behind;
  /// every Interpreter::run calls this first so reusing one runtime across
  /// batch runs cannot leak hand-off state between them.
  void resetTransient() {
    ShadowStack.clear();
    Pending = PendingReturn();
    Tier.PendingRecord = -1;
  }

  /// True when no hand-off state is live: the runtime is between runs and
  /// its counters are safe to read, merge or compare. An aborted run can
  /// legitimately leave this false (e.g. fuel exhausted between a call
  /// probe and the frame push); resetTransient restores it.
  bool transientClean() const {
    return ShadowStack.empty() && !Pending.Valid && Tier.PendingRecord < 0;
  }

  /// Clears everything.
  void clear() {
    for (auto &S : PathCounts)
      S.clear();
    TypeICounts.clear();
    TypeIICounts.clear();
    Tier.reset();
    resetTransient();
  }

  /// Adds every counter of \p O into this runtime (used to merge per-thread
  /// runtimes after a parallel batch run). Transient state is not merged;
  /// both runtimes must be between runs.
  void mergeFrom(const ProfileRuntime &O) {
    if (PathCounts.size() < O.PathCounts.size())
      PathCounts.resize(O.PathCounts.size());
    for (size_t F = 0; F < O.PathCounts.size(); ++F)
      PathCounts[F].mergeFrom(O.PathCounts[F]);
    TypeICounts.mergeFrom(O.TypeICounts);
    TypeIICounts.mergeFrom(O.TypeIICounts);
  }
};

} // namespace olpp

#endif // OLPP_INTERP_PROFILERUNTIME_H
