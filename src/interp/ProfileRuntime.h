//===--- ProfileRuntime.h - Profile counter stores --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter stores an instrumented run writes into, plus the transient
/// interprocedural hand-off state (shadow stack, pending return). The
/// decoding of ids back into paths lives in the profile/overlap/interproc
/// modules; this layer only stores raw numbers.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_PROFILERUNTIME_H
#define OLPP_INTERP_PROFILERUNTIME_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace olpp {

/// Key of one interprocedural overlapping-path counter: the paper's
/// count[callee][callSite][calleeSidePathId][callerSidePathId].
/// For Type I, Inner is the callee *prefix* id and Outer the caller pre-path
/// id; for Type II, Inner is the callee *full* path id and Outer the caller
/// continuation-prefix id.
struct InterprocKey {
  uint32_t Callee = 0;
  uint32_t CallSite = 0;
  int64_t Inner = 0;
  int64_t Outer = 0;

  bool operator==(const InterprocKey &O) const {
    return Callee == O.Callee && CallSite == O.CallSite && Inner == O.Inner &&
           Outer == O.Outer;
  }
};

struct InterprocKeyHash {
  size_t operator()(const InterprocKey &K) const {
    uint64_t H = 0x9E3779B97F4A7C15ULL;
    auto Mix = [&H](uint64_t V) {
      H ^= V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
    };
    Mix(K.Callee);
    Mix(K.CallSite);
    Mix(static_cast<uint64_t>(K.Inner));
    Mix(static_cast<uint64_t>(K.Outer));
    return static_cast<size_t>(H);
  }
};

/// Counter stores written by probes during an instrumented run.
class ProfileRuntime {
public:
  using PathCountMap = std::unordered_map<int64_t, uint64_t>;
  using InterprocMap =
      std::unordered_map<InterprocKey, uint64_t, InterprocKeyHash>;

  explicit ProfileRuntime(size_t NumFunctions) : PathCounts(NumFunctions) {}

  /// Per-function path-id counters. BL paths and loop-overlap paths of one
  /// function share this id space (they are numbered on one path graph).
  std::vector<PathCountMap> PathCounts;

  /// Type I / Type II interprocedural overlap counters.
  InterprocMap TypeICounts;
  InterprocMap TypeIICounts;

  // --- transient state used while a run is in progress -----------------

  struct ShadowEntry {
    uint32_t CallSite = 0;
    int64_t CallerPre = 0;
  };
  std::vector<ShadowEntry> ShadowStack;

  struct PendingReturn {
    bool Valid = false;
    uint32_t Callee = 0;
    int64_t PathId = 0;
  };
  PendingReturn Pending;

  /// Clears transient state between runs but keeps accumulated counters.
  void resetTransient() {
    ShadowStack.clear();
    Pending = PendingReturn();
  }

  /// Clears everything.
  void clear() {
    for (auto &M : PathCounts)
      M.clear();
    TypeICounts.clear();
    TypeIICounts.clear();
    resetTransient();
  }
};

} // namespace olpp

#endif // OLPP_INTERP_PROFILERUNTIME_H
