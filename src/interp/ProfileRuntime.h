//===--- ProfileRuntime.h - Profile counter stores --------------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter stores an instrumented run writes into, plus the transient
/// interprocedural hand-off state (shadow stack, pending return). The
/// decoding of ids back into paths lives in the profile/overlap/interproc
/// modules; this layer only stores raw numbers.
///
/// Path counters are dense vectors under a configured id space and spill to
/// a hash map above it; the interprocedural 4-tuple counters live in an
/// open-addressing flat table (see interp/CounterStore.h).
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_INTERP_PROFILERUNTIME_H
#define OLPP_INTERP_PROFILERUNTIME_H

#include "interp/CounterStore.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace olpp {

/// Counter stores written by probes during an instrumented run.
class ProfileRuntime {
public:
  using PathCountMap = PathCounterStore::Map;
  using InterprocMap = FlatInterprocTable::Map;

  explicit ProfileRuntime(size_t NumFunctions) : PathCounts(NumFunctions) {}

  /// Per-function path-id counters. BL paths and loop-overlap paths of one
  /// function share this id space (they are numbered on one path graph).
  /// Call configurePathStore once the id space is known to get the dense
  /// representation; unconfigured stores count correctly through the spill
  /// map.
  std::vector<PathCounterStore> PathCounts;

  /// Type I / Type II interprocedural overlap counters.
  FlatInterprocTable TypeICounts;
  FlatInterprocTable TypeIICounts;

  /// Declares function \p F's path-id space [0, IdSpace) so its counters can
  /// use the dense form (no-op above PathCounterStore::DenseLimit).
  void configurePathStore(uint32_t F, uint64_t IdSpace) {
    PathCounts[F].configure(IdSpace);
  }

  // --- transient state used while a run is in progress -----------------

  struct ShadowEntry {
    uint32_t CallSite = 0;
    int64_t CallerPre = 0;
  };
  std::vector<ShadowEntry> ShadowStack;

  struct PendingReturn {
    bool Valid = false;
    uint32_t Callee = 0;
    int64_t PathId = 0;
  };
  PendingReturn Pending;

  /// Clears transient state between runs but keeps accumulated counters.
  /// A run that aborts (fuel, traps) or ends inside instrumented callees
  /// can leave shadow-stack entries and a pending-return record behind;
  /// every Interpreter::run calls this first so reusing one runtime across
  /// batch runs cannot leak hand-off state between them.
  void resetTransient() {
    ShadowStack.clear();
    Pending = PendingReturn();
  }

  /// True when no hand-off state is live: the runtime is between runs and
  /// its counters are safe to read, merge or compare. An aborted run can
  /// legitimately leave this false (e.g. fuel exhausted between a call
  /// probe and the frame push); resetTransient restores it.
  bool transientClean() const {
    return ShadowStack.empty() && !Pending.Valid;
  }

  /// Clears everything.
  void clear() {
    for (auto &S : PathCounts)
      S.clear();
    TypeICounts.clear();
    TypeIICounts.clear();
    resetTransient();
  }

  /// Adds every counter of \p O into this runtime (used to merge per-thread
  /// runtimes after a parallel batch run). Transient state is not merged;
  /// both runtimes must be between runs.
  void mergeFrom(const ProfileRuntime &O) {
    if (PathCounts.size() < O.PathCounts.size())
      PathCounts.resize(O.PathCounts.size());
    for (size_t F = 0; F < O.PathCounts.size(); ++F)
      PathCounts[F].mergeFrom(O.PathCounts[F]);
    TypeICounts.mergeFrom(O.TypeICounts);
    TypeIICounts.mergeFrom(O.TypeIICounts);
  }
};

} // namespace olpp

#endif // OLPP_INTERP_PROFILERUNTIME_H
