//===--- Interpreter.cpp - OLPP IR interpreter ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/CostModel.h"
#include "interp/ProfileRuntime.h"
#include "interp/Trace.h"

#include <cassert>

using namespace olpp;

TraceSink::~TraceSink() = default;

namespace {

/// Per-loop overlap-region registers.
struct LoopRegs {
  int64_t Ro = 0;
  int64_t Ol = 0;
  bool Active = false;
};

/// One activation record.
struct Frame {
  const Function *F = nullptr;
  const BasicBlock *BB = nullptr;
  size_t Ip = 0;
  Reg RetDst = NoReg;
  std::vector<int64_t> Regs;

  // Ball-Larus path register.
  int64_t R = 0;
  // Loop overlap regions.
  std::vector<LoopRegs> Loops;
  // Type I (callee-prefix) region.
  bool ActiveI = false;
  bool HaveCaller = false;
  int64_t RI = 0, OlI = 0, CallerPre = 0;
  uint32_t CallSiteI = 0;
  // Type II (caller-continuation) region.
  bool ActiveII = false;
  int64_t RoII = 0, OlII = 0, CalleePathII = 0;
  uint32_t CallSiteII = 0, CalleeII = 0;
};

} // namespace

Interpreter::Interpreter(const Module &M, ProfileRuntime *Prof,
                         TraceSink *Trace)
    : M(M), Prof(Prof), Trace(Trace) {
  Globals.resize(M.globals().size());
  for (size_t G = 0; G < Globals.size(); ++G)
    Globals[G].assign(M.globals()[G].Size, 0);
}

void Interpreter::resetGlobals() {
  for (size_t G = 0; G < Globals.size(); ++G)
    Globals[G].assign(M.globals()[G].Size, 0);
}

RunResult Interpreter::run(const Function &Entry,
                           const std::vector<int64_t> &Args,
                           const RunConfig &Config) {
  RunResult Res;
  if (Args.size() != Entry.NumParams) {
    Res.Error = "entry function '" + Entry.Name + "' expects " +
                std::to_string(Entry.NumParams) + " arguments, got " +
                std::to_string(Args.size());
    return Res;
  }
  if (Prof)
    Prof->resetTransient();

  std::vector<Frame> Stack;
  auto PushFrame = [&](const Function &F, Reg RetDst) {
    Stack.emplace_back();
    Frame &Fr = Stack.back();
    Fr.F = &F;
    Fr.BB = F.entry();
    Fr.RetDst = RetDst;
    Fr.Regs.assign(F.NumRegs, 0);
    Fr.Loops.resize(F.NumLoopSlots);
    if (Trace) {
      Trace->onEnter(F.Id);
      Trace->onBlock(F.Id, Fr.BB->Id);
    }
    ++Res.Counts.Blocks;
  };

  PushFrame(Entry, NoReg);
  for (size_t A = 0; A < Args.size(); ++A)
    Stack.back().Regs[A] = Args[A];

  DynCounts &C = Res.Counts;
  auto Fail = [&](const std::string &Msg) {
    Res.Ok = false;
    Res.Error = Msg + " (in '" + Stack.back().F->Name + "', block ^" +
                std::to_string(Stack.back().BB->Id) + ")";
    return Res;
  };

  while (true) {
    Frame &Fr = Stack.back();
    assert(Fr.Ip < Fr.BB->Instrs.size() && "fell off the end of a block");
    const Instruction &I = Fr.BB->Instrs[Fr.Ip];

    if (++C.Steps > Config.MaxSteps)
      return Fail("fuel exhausted after " + std::to_string(Config.MaxSteps) +
                  " steps");

    // Helper for transferring control within the current frame.
    auto Goto = [&](BasicBlock *Target) {
      Fr.BB = Target;
      Fr.Ip = 0;
      ++C.Blocks;
      if (Trace)
        Trace->onBlock(Fr.F->Id, Target->Id);
    };

    switch (I.Op) {
    case Opcode::Const:
      Fr.Regs[I.Dst] = I.Imm;
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Move:
      Fr.Regs[I.Dst] = Fr.Regs[I.Src0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Neg:
      Fr.Regs[I.Dst] = -static_cast<int64_t>(
          static_cast<uint64_t>(Fr.Regs[I.Src0]));
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Not:
      Fr.Regs[I.Dst] = Fr.Regs[I.Src0] == 0 ? 1 : 0;
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe: {
      int64_t A = Fr.Regs[I.Src0], B = Fr.Regs[I.Src1];
      uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
      int64_t Out = 0;
      switch (I.Op) {
      case Opcode::Add:
        Out = static_cast<int64_t>(UA + UB);
        break;
      case Opcode::Sub:
        Out = static_cast<int64_t>(UA - UB);
        break;
      case Opcode::Mul:
        Out = static_cast<int64_t>(UA * UB);
        break;
      case Opcode::Div:
        if (B == 0)
          return Fail("division by zero");
        if (A == INT64_MIN && B == -1)
          return Fail("signed division overflow");
        Out = A / B;
        break;
      case Opcode::Mod:
        if (B == 0)
          return Fail("modulo by zero");
        if (A == INT64_MIN && B == -1)
          return Fail("signed modulo overflow");
        Out = A % B;
        break;
      case Opcode::And:
        Out = A & B;
        break;
      case Opcode::Or:
        Out = A | B;
        break;
      case Opcode::Xor:
        Out = A ^ B;
        break;
      case Opcode::Shl:
        Out = static_cast<int64_t>(UA << (UB & 63));
        break;
      case Opcode::Shr:
        Out = A >> (UB & 63);
        break;
      case Opcode::CmpEq:
        Out = A == B;
        break;
      case Opcode::CmpNe:
        Out = A != B;
        break;
      case Opcode::CmpLt:
        Out = A < B;
        break;
      case Opcode::CmpLe:
        Out = A <= B;
        break;
      case Opcode::CmpGt:
        Out = A > B;
        break;
      case Opcode::CmpGe:
        Out = A >= B;
        break;
      default:
        assert(false && "unexpected binary opcode");
      }
      Fr.Regs[I.Dst] = Out;
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::LoadG:
      Fr.Regs[I.Dst] = Globals[I.GlobalId][0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::StoreG:
      Globals[I.GlobalId][0] = Fr.Regs[I.Src0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::LoadArr: {
      int64_t Idx = Fr.Regs[I.Src0];
      const auto &Arr = Globals[I.GlobalId];
      if (Idx < 0 || static_cast<uint64_t>(Idx) >= Arr.size())
        return Fail("array index " + std::to_string(Idx) +
                    " out of bounds for '" + M.globals()[I.GlobalId].Name +
                    "' of size " + std::to_string(Arr.size()));
      Fr.Regs[I.Dst] = Arr[static_cast<size_t>(Idx)];
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::StoreArr: {
      int64_t Idx = Fr.Regs[I.Src0];
      auto &Arr = Globals[I.GlobalId];
      if (Idx < 0 || static_cast<uint64_t>(Idx) >= Arr.size())
        return Fail("array index " + std::to_string(Idx) +
                    " out of bounds for '" + M.globals()[I.GlobalId].Name +
                    "' of size " + std::to_string(Arr.size()));
      Arr[static_cast<size_t>(Idx)] = Fr.Regs[I.Src1];
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::CallInd:
    case Opcode::Call: {
      uint32_t CalleeId = I.CalleeId;
      if (I.Op == Opcode::CallInd) {
        int64_t Target = Fr.Regs[I.Src0];
        if (Target < 0 ||
            static_cast<uint64_t>(Target) >= M.numFunctions())
          return Fail("indirect call to invalid function id " +
                      std::to_string(Target));
        CalleeId = static_cast<uint32_t>(Target);
        if (I.Args.size() != M.function(CalleeId)->NumParams)
          return Fail("indirect call to '" + M.function(CalleeId)->Name +
                      "' with " + std::to_string(I.Args.size()) +
                      " args, expected " +
                      std::to_string(M.function(CalleeId)->NumParams));
      }
      if (Stack.size() >= Config.MaxCallDepth)
        return Fail("call depth limit of " +
                    std::to_string(Config.MaxCallDepth) + " exceeded");
      C.BaseCost += cost::Instr;
      ++C.Calls;
      const Function &Callee = *M.function(CalleeId);
      std::vector<int64_t> CallArgs(I.Args.size());
      for (size_t A = 0; A < I.Args.size(); ++A)
        CallArgs[A] = Fr.Regs[I.Args[A]];
      ++Fr.Ip; // resume past the call on return
      PushFrame(Callee, I.Dst);
      // NB: `Fr` is invalidated by the push.
      Frame &NewFr = Stack.back();
      for (size_t A = 0; A < CallArgs.size(); ++A)
        NewFr.Regs[A] = CallArgs[A];
      continue;
    }
    case Opcode::Ret: {
      C.BaseCost += cost::Instr;
      int64_t Value = I.Src0 == NoReg ? 0 : Fr.Regs[I.Src0];
      bool IsVoid = I.Src0 == NoReg;
      if (Trace)
        Trace->onExit(Fr.F->Id);
      Reg Dst = Fr.RetDst;
      Stack.pop_back();
      if (Stack.empty()) {
        Res.Ok = true;
        Res.ReturnValue = Value;
        return Res;
      }
      if (Dst != NoReg) {
        if (IsVoid)
          return Fail("void return value used by the caller");
        Stack.back().Regs[Dst] = Value;
      }
      continue;
    }
    case Opcode::Br:
      C.BaseCost += cost::Instr;
      Goto(I.Target0);
      continue;
    case Opcode::CondBr:
      C.BaseCost += cost::Instr;
      Goto(Fr.Regs[I.Src0] != 0 ? I.Target0 : I.Target1);
      continue;
    case Opcode::Probe: {
      if (!Prof)
        break; // probes are inert without a runtime attached
      auto &Counts = Prof->PathCounts[Fr.F->Id];
      // Type II ops of every call site share one probe; real codegen would
      // dispatch on the active call-site id once, so the inactive test is
      // charged once per probe rather than once per op.
      bool ChargedIITest = false;
      for (const ProbeOp &P : I.ProbePayload->Ops) {
        switch (P.Kind) {
        case ProbeOpKind::BLSet:
          Fr.R = P.C0;
          C.ProbeCost += cost::RegOp;
          break;
        case ProbeOpKind::BLAdd:
          Fr.R += P.C0;
          C.ProbeCost += cost::RegOp;
          break;
        case ProbeOpKind::BLCount:
          ++Counts[Fr.R + P.C0];
          C.ProbeCost += cost::CounterBump;
          break;
        case ProbeOpKind::OLDisarm:
          Fr.Loops[P.Slot].Active = false;
          C.ProbeCost += cost::RegOp;
          break;
        case ProbeOpKind::OLArm: {
          LoopRegs &L = Fr.Loops[P.Slot];
          L.Ro = Fr.R + P.C0;
          L.Ol = 0;
          L.Active = true;
          C.ProbeCost += 2 * cost::RegOp;
          break;
        }
        case ProbeOpKind::OLAdd: {
          LoopRegs &L = Fr.Loops[P.Slot];
          if (!L.Active) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          L.Ro += P.C0;
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          break;
        }
        case ProbeOpKind::OLPred: {
          LoopRegs &L = Fr.Loops[P.Slot];
          if (!L.Active) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          if (++L.Ol == P.C1) {
            ++Counts[L.Ro + P.C0];
            L.Active = false;
            C.ProbeCost += cost::CounterBump;
          }
          break;
        }
        case ProbeOpKind::OLFlush: {
          LoopRegs &L = Fr.Loops[P.Slot];
          if (!L.Active) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          ++Counts[L.Ro + P.C0];
          L.Active = false;
          C.ProbeCost += cost::InactiveTest + cost::CounterBump;
          break;
        }
        case ProbeOpKind::IPCall:
          Prof->ShadowStack.push_back(
              {static_cast<uint32_t>(P.C0), Fr.R + P.C1});
          C.ProbeCost += cost::StackOp + cost::RegOp;
          break;
        case ProbeOpKind::IPEnter:
          Fr.RI = P.C0;
          Fr.OlI = 0;
          if (!Prof->ShadowStack.empty()) {
            Fr.CallSiteI = Prof->ShadowStack.back().CallSite;
            Fr.CallerPre = Prof->ShadowStack.back().CallerPre;
            Fr.ActiveI = true;
            Fr.HaveCaller = true;
          } else {
            Fr.ActiveI = false;
            Fr.HaveCaller = false;
          }
          C.ProbeCost += cost::StackOp + cost::RegOp;
          break;
        case ProbeOpKind::IPAddI:
          if (!Fr.ActiveI) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          Fr.RI += P.C0;
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          break;
        case ProbeOpKind::IPPredI:
          if (!Fr.ActiveI) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          if (++Fr.OlI == P.C1) {
            ++Prof->TypeICounts[{Fr.F->Id, Fr.CallSiteI, Fr.RI + P.C0,
                                 Fr.CallerPre}];
            Fr.ActiveI = false;
            C.ProbeCost += cost::TupleBump;
          }
          break;
        case ProbeOpKind::IPFlushI:
          if (!Fr.ActiveI) {
            C.ProbeCost += cost::InactiveTest;
            break;
          }
          ++Prof->TypeICounts[{Fr.F->Id, Fr.CallSiteI, Fr.RI + P.C0,
                               Fr.CallerPre}];
          Fr.ActiveI = false;
          C.ProbeCost += cost::InactiveTest + cost::TupleBump;
          break;
        case ProbeOpKind::IPRet:
          Prof->Pending.Valid = true;
          Prof->Pending.Callee = Fr.F->Id;
          Prof->Pending.PathId = Fr.R + P.C0;
          if (Fr.HaveCaller) {
            assert(!Prof->ShadowStack.empty() && "shadow stack underflow");
            Prof->ShadowStack.pop_back();
          }
          C.ProbeCost += cost::StackOp + cost::RegOp;
          break;
        case ProbeOpKind::IPArmII:
          if (Prof->Pending.Valid) {
            Fr.ActiveII = true;
            Fr.CalleeII = Prof->Pending.Callee;
            Fr.CalleePathII = Prof->Pending.PathId;
            Fr.CallSiteII = static_cast<uint32_t>(P.C1);
            Fr.RoII = P.C0;
            Fr.OlII = 0;
            Prof->Pending.Valid = false;
          } else {
            Fr.ActiveII = false;
          }
          C.ProbeCost += cost::StackOp + cost::RegOp;
          break;
        case ProbeOpKind::IPAddII:
          // Ops of every call site's region share blocks; only the ops of
          // the site that armed this region may fire.
          if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
            C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
            ChargedIITest = true;
            break;
          }
          Fr.RoII += P.C0;
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          break;
        case ProbeOpKind::IPPredII:
          // Ops of every call site's region share blocks; only the ops of
          // the site that armed this region may fire.
          if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
            C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
            ChargedIITest = true;
            break;
          }
          C.ProbeCost += cost::InactiveTest + cost::RegOp;
          if (++Fr.OlII == P.C1) {
            ++Prof->TypeIICounts[{Fr.CalleeII, Fr.CallSiteII, Fr.CalleePathII,
                                  Fr.RoII + P.C0}];
            Fr.ActiveII = false;
            C.ProbeCost += cost::TupleBump;
          }
          break;
        case ProbeOpKind::IPFlushII:
          // Ops of every call site's region share blocks; only the ops of
          // the site that armed this region may fire.
          if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
            C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
            ChargedIITest = true;
            break;
          }
          ++Prof->TypeIICounts[{Fr.CalleeII, Fr.CallSiteII, Fr.CalleePathII,
                                Fr.RoII + P.C0}];
          Fr.ActiveII = false;
          C.ProbeCost += cost::InactiveTest + cost::TupleBump;
          break;
        }
      }
      break;
    }
    }
    ++Fr.Ip;
  }
}
