//===--- Interpreter.cpp - OLPP IR interpreter ---------------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/CostModel.h"
#include "interp/ExecPlan.h"
#include "interp/PlanCache.h"
#include "interp/ProfileRuntime.h"
#include "interp/Trace.h"
#include "interp/TraceOpt.h"

#include <cassert>

using namespace olpp;

TraceSink::~TraceSink() = default;

bool olpp::parseEngineKind(const std::string &Name, EngineKind &Out) {
  if (Name == "fast") {
    Out = EngineKind::Fast;
    return true;
  }
  if (Name == "reference") {
    Out = EngineKind::Reference;
    return true;
  }
  return false;
}

const char *olpp::engineKindName(EngineKind E) {
  return E == EngineKind::Fast ? "fast" : "reference";
}

namespace {

// LoopRegs and FastFrame moved to interp/TraceTier.h: the trace executor
// shares the fast engine's frame layout.

/// One activation record of the reference engine.
struct Frame {
  const Function *F = nullptr;
  const BasicBlock *BB = nullptr;
  size_t Ip = 0;
  Reg RetDst = NoReg;
  std::vector<int64_t> Regs;

  // Ball-Larus path register.
  int64_t R = 0;
  // Loop overlap regions.
  std::vector<LoopRegs> Loops;
  // Type I (callee-prefix) region.
  bool ActiveI = false;
  bool HaveCaller = false;
  int64_t RI = 0, OlI = 0, CallerPre = 0;
  uint32_t CallSiteI = 0;
  // Type II (caller-continuation) region.
  bool ActiveII = false;
  int64_t RoII = 0, OlII = 0, CalleePathII = 0;
  uint32_t CallSiteII = 0, CalleeII = 0;
};

/// Executes one probe program against frame \p Fr. This is the oracle the
/// reference engine runs; the fast engine inlines an equivalent loop over
/// its pre-decoded op pool, and EngineDiffTest pins the two together.
template <class FrameT>
inline void execProbe(const ProbeProgram &PP, FrameT &Fr, LoopRegs *Loops,
                      uint32_t FuncId, ProfileRuntime &Prof,
                      PathCounterStore &Counts, DynCounts &C) {
  // Type II ops of every call site share one probe; real codegen would
  // dispatch on the active call-site id once, so the inactive test is
  // charged once per probe rather than once per op.
  bool ChargedIITest = false;
  for (const ProbeOp &P : PP.Ops) {
    switch (P.Kind) {
    case ProbeOpKind::BLSet:
      Fr.R = P.C0;
      C.ProbeCost += cost::RegOp;
      break;
    case ProbeOpKind::BLAdd:
      Fr.R += P.C0;
      C.ProbeCost += cost::RegOp;
      break;
    case ProbeOpKind::BLCount:
      Counts.bump(Fr.R + P.C0);
      C.ProbeCost += cost::CounterBump;
      break;
    case ProbeOpKind::OLDisarm:
      Loops[P.Slot].Active = false;
      C.ProbeCost += cost::RegOp;
      break;
    case ProbeOpKind::OLArm: {
      LoopRegs &L = Loops[P.Slot];
      L.Ro = Fr.R + P.C0;
      L.Ol = 0;
      L.Active = true;
      C.ProbeCost += 2 * cost::RegOp;
      break;
    }
    case ProbeOpKind::OLAdd: {
      LoopRegs &L = Loops[P.Slot];
      if (!L.Active) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      L.Ro += P.C0;
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      break;
    }
    case ProbeOpKind::OLPred: {
      LoopRegs &L = Loops[P.Slot];
      if (!L.Active) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      if (++L.Ol == P.C1) {
        Counts.bump(L.Ro + P.C0);
        L.Active = false;
        C.ProbeCost += cost::CounterBump;
      }
      break;
    }
    case ProbeOpKind::OLFlush: {
      LoopRegs &L = Loops[P.Slot];
      if (!L.Active) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      Counts.bump(L.Ro + P.C0);
      L.Active = false;
      C.ProbeCost += cost::InactiveTest + cost::CounterBump;
      break;
    }
    case ProbeOpKind::IPCall:
      Prof.ShadowStack.push_back(
          {static_cast<uint32_t>(P.C0), Fr.R + P.C1});
      C.ProbeCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPEnter:
      Fr.RI = P.C0;
      Fr.OlI = 0;
      if (!Prof.ShadowStack.empty()) {
        Fr.CallSiteI = Prof.ShadowStack.back().CallSite;
        Fr.CallerPre = Prof.ShadowStack.back().CallerPre;
        Fr.ActiveI = true;
        Fr.HaveCaller = true;
      } else {
        Fr.ActiveI = false;
        Fr.HaveCaller = false;
      }
      C.ProbeCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPAddI:
      if (!Fr.ActiveI) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      Fr.RI += P.C0;
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      break;
    case ProbeOpKind::IPPredI:
      if (!Fr.ActiveI) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      if (++Fr.OlI == P.C1) {
        Prof.TypeICounts.bump(
            {FuncId, Fr.CallSiteI, Fr.RI + P.C0, Fr.CallerPre});
        Fr.ActiveI = false;
        C.ProbeCost += cost::TupleBump;
      }
      break;
    case ProbeOpKind::IPFlushI:
      if (!Fr.ActiveI) {
        C.ProbeCost += cost::InactiveTest;
        break;
      }
      Prof.TypeICounts.bump(
          {FuncId, Fr.CallSiteI, Fr.RI + P.C0, Fr.CallerPre});
      Fr.ActiveI = false;
      C.ProbeCost += cost::InactiveTest + cost::TupleBump;
      break;
    case ProbeOpKind::IPRet:
      Prof.Pending.Valid = true;
      Prof.Pending.Callee = FuncId;
      Prof.Pending.PathId = Fr.R + P.C0;
      if (Fr.HaveCaller) {
        assert(!Prof.ShadowStack.empty() && "shadow stack underflow");
        Prof.ShadowStack.pop_back();
      }
      C.ProbeCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPArmII:
      if (Prof.Pending.Valid) {
        Fr.ActiveII = true;
        Fr.CalleeII = Prof.Pending.Callee;
        Fr.CalleePathII = Prof.Pending.PathId;
        Fr.CallSiteII = static_cast<uint32_t>(P.C1);
        Fr.RoII = P.C0;
        Fr.OlII = 0;
        Prof.Pending.Valid = false;
      } else {
        Fr.ActiveII = false;
      }
      C.ProbeCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPAddII:
      // Ops of every call site's region share blocks; only the ops of
      // the site that armed this region may fire.
      if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
        C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      Fr.RoII += P.C0;
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      break;
    case ProbeOpKind::IPPredII:
      if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
        C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      C.ProbeCost += cost::InactiveTest + cost::RegOp;
      if (++Fr.OlII == P.C1) {
        Prof.TypeIICounts.bump(
            {Fr.CalleeII, Fr.CallSiteII, Fr.CalleePathII, Fr.RoII + P.C0});
        Fr.ActiveII = false;
        C.ProbeCost += cost::TupleBump;
      }
      break;
    case ProbeOpKind::IPFlushII:
      if (!Fr.ActiveII || Fr.CallSiteII != static_cast<uint32_t>(P.Slot)) {
        C.ProbeCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      Prof.TypeIICounts.bump(
          {Fr.CalleeII, Fr.CallSiteII, Fr.CalleePathII, Fr.RoII + P.C0});
      Fr.ActiveII = false;
      C.ProbeCost += cost::InactiveTest + cost::TupleBump;
      break;
    }
  }
}

std::string arityError(const Function &Entry, size_t Got) {
  return "entry function '" + Entry.Name + "' expects " +
         std::to_string(Entry.NumParams) + " arguments, got " +
         std::to_string(Got);
}

} // namespace

Interpreter::Interpreter(const Module &M, ProfileRuntime *Prof,
                         TraceSink *Trace)
    : M(M), Prof(Prof), Trace(Trace) {
  Globals.resize(M.globals().size());
  for (size_t G = 0; G < Globals.size(); ++G)
    Globals[G].assign(M.globals()[G].Size, 0);
}

Interpreter::~Interpreter() = default;

void Interpreter::resetGlobals() {
  for (size_t G = 0; G < Globals.size(); ++G)
    Globals[G].assign(M.globals()[G].Size, 0);
}

const ExecPlan &Interpreter::ensurePlan() {
  if (!Plan)
    Plan = ExecPlanCache::global().get(M);
  return *Plan;
}

RunResult Interpreter::run(const Function &Entry,
                           const std::vector<int64_t> &Args,
                           const RunConfig &Config) {
  return Config.Engine == EngineKind::Reference
             ? runReference(Entry, Args, Config)
             : runFast(Entry, Args, Config);
}

//===----------------------------------------------------------------------===//
// Fast engine: pre-decoded flat execution form
//===----------------------------------------------------------------------===//

RunResult Interpreter::runFast(const Function &Entry,
                               const std::vector<int64_t> &Args,
                               const RunConfig &Config) {
  const ExecPlan &P = ensurePlan();
  assert(M.function(Entry.Id) == &Entry && "entry is not a function of M");

  RunResult Res;
  if (Args.size() != Entry.NumParams) {
    Res.Error = arityError(Entry, Args.size());
    return Res;
  }
  if (Prof)
    Prof->resetTransient();

  std::vector<FastFrame> Frames;
  std::vector<int64_t> RegStack;   // all live frame registers, contiguous
  std::vector<LoopRegs> LoopStack; // all live loop slots, contiguous
  DynCounts &C = Res.Counts;
  // Every hot counter lives in a local so stores through Regs/Loops/Counts
  // cannot force the compiler to spill and reload them each step; every
  // return path flushes them back into C. Trace is likewise hoisted out of
  // the member so the per-branch null test reads a register, not `this`.
  uint64_t Steps = 0, Base = 0, PCostSum = 0, Blocks = 0, Calls = 0;
  const uint64_t MaxSteps = Config.MaxSteps;
  // Tr is reassigned while a trace recording is live (the recorder borrows
  // the sink slot), so it is deliberately non-const here.
  TraceSink *Tr = Trace;

  // Hot-path tracing tier (interp/TraceTier.h). Enabled only when profiling
  // is on and no external sink is attached: the recorder needs the sink
  // slot, and without a runtime there is no hotness signal.
  TraceRecorder Rec;
  TraceTierStats TStats;
  const uint32_t TraceThreshold = Config.TraceThreshold;
  // While a *bridge* recording is live: the parent trace and side-exit
  // step the finished bridge will be stitched into.
  const CompiledTrace *BrParent = nullptr;
  uint32_t BrStep = 0;
  // The cache is resolved once per run, keyed by the full trace settings:
  // traces recorded under a different threshold, link threshold or
  // optimizer configuration (or with tracing disabled) live in sibling
  // caches of the shared plan and stay invisible to this run.
  const TraceSettings TSettings{
      TraceThreshold, Config.TraceLinkThreshold,
      Config.EnableTraceOpt ? Config.TraceOptStages : 0u,
      Config.TraceOptDropGuardFault, Config.TraceDWEGate};
  PlanTraceCache *const TC =
      (Config.EnableTraces && Prof && !Trace && P.Traces != nullptr)
          ? P.Traces->forSettings(TSettings)
          : nullptr;
  const bool TraceCk = TC != nullptr;

  // Growth value-initializes new elements, so a pushed frame always sees
  // zeroed registers and disarmed loop slots, exactly like the reference
  // engine's per-frame vectors.
  auto PushFrame = [&](uint32_t FuncId, Reg RetDst) {
    const FuncPlan &FP = P.Funcs[FuncId];
    FastFrame Fr;
    Fr.FuncId = FuncId;
    Fr.RegBase = static_cast<uint32_t>(RegStack.size());
    Fr.LoopBase = static_cast<uint32_t>(LoopStack.size());
    Fr.RetDst = RetDst;
    RegStack.resize(RegStack.size() + FP.NumRegs);
    LoopStack.resize(LoopStack.size() + FP.NumLoopSlots);
    Frames.push_back(Fr);
    if (Tr) {
      Tr->onEnter(FuncId);
      Tr->onBlock(FuncId, 0); // the entry block has id 0
    }
    ++Blocks;
  };

  PushFrame(Entry.Id, NoReg);
  for (size_t A = 0; A < Args.size(); ++A)
    RegStack[A] = Args[A];

  auto Fail = [&](const std::string &Msg) {
    C.Steps = Steps;
    C.BaseCost = Base;
    C.ProbeCost += PCostSum;
    C.Blocks += Blocks;
    C.Calls += Calls;
    const FastFrame &Fr = Frames.back();
    Res.Ok = false;
    Res.Error = Msg + " (in '" + P.Funcs[Fr.FuncId].Name + "', block ^" +
                std::to_string(Fr.Block) + ")";
    Res.Trace = TStats;
    return Res;
  };

  // The loop below is direct-threaded: every handler ends by jumping
  // through JT straight to the next instruction's handler, so the indirect
  // branch predictor learns one dispatch site per handler instead of
  // sharing a single switch. Uses GNU labels-as-values (gcc and clang;
  // the build already assumes a GNU-style driver).
  FastFrame *Fr = nullptr;
  const ExecInstr *__restrict Code = nullptr;
  const ProbeOp *__restrict ProbeOps = nullptr;
  const Reg *__restrict ArgPool = nullptr;
  int64_t *__restrict Regs = nullptr;
  LoopRegs *__restrict Loops = nullptr;
  // Flat {data,size} views of the globals. Global sizes are fixed for the
  // module's lifetime and the vectors never reallocate during a run, so
  // hoisting the vector<> indirection out of the per-step array and scalar
  // handlers is safe and shortens their load chains by one level.
  using GView = GlobalView; // shared with the trace executor
  std::vector<GView> GViewStore(Globals.size());
  for (size_t G = 0; G < Globals.size(); ++G)
    GViewStore[G] = {Globals[G].data(), Globals[G].size()};
  const GView *__restrict GlobalsP = GViewStore.data();
  PathCounterStore *Counts = nullptr;
  const ExecInstr *I = nullptr;
  uint32_t FuncId = 0, Pc = 0, Block = 0, CalleeId = 0;

  static const void *const JT[kNumExecOps] = {
      &&L_Const,   &&L_Move,    &&L_Add,     &&L_Sub,      &&L_Mul,
      &&L_Div,     &&L_Mod,     &&L_And,     &&L_Or,       &&L_Xor,
      &&L_Shl,     &&L_Shr,     &&L_CmpEq,   &&L_CmpNe,    &&L_CmpLt,
      &&L_CmpLe,   &&L_CmpGt,   &&L_CmpGe,   &&L_Neg,      &&L_Not,
      &&L_LoadG,   &&L_StoreG,  &&L_LoadArr, &&L_StoreArr, &&L_Call,
      &&L_CallInd, &&L_Ret,     &&L_Br,      &&L_CondBr,   &&L_Probe,
      &&L_CmpEqBr, &&L_CmpNeBr, &&L_CmpLtBr, &&L_CmpLeBr,  &&L_CmpGtBr,
      &&L_CmpGeBr,
      &&L_ConstAnd,     &&L_AndLoadArr,      &&L_LoadArrMove,
      &&L_AddMove,      &&L_MoveConst,       &&L_ConstAdd,
      &&L_MoveBr,       &&L_ConstAndLoadArrMove,
      &&L_ConstAndLoadArr, &&L_ConstAddMove,  &&L_ConstAddMoveBr,
      &&L_CmpEqConstCmpNeBr, &&L_LoadGCmpLtBr, &&L_ConstCmpEqBr,
      &&L_AndCmpEqBr,   &&L_LoadArrCmpEqBr,  &&L_LoadArrConst,
      &&L_ConstAndLoadArrMoveCmpEqBr,
      &&L_PrOLPred,        &&L_PrOLPredPredI,  &&L_PrOLPred2PredI,
      &&L_PrAddI,          &&L_PrAddII,        &&L_PrPredII,
      &&L_PrEnter,         &&L_PrEnterPredI,   &&L_PrFlushIIArmSet,
      &&L_PrFlushICountRet, &&L_PrCountCall,   &&L_PrSetArmII,
      &&L_PrOLPredBr,      &&L_PrAddIBr,       &&L_PrAddIIBr,
      &&L_PrSetArmIIBr,    &&L_PrFlushIIArmSetBr, &&L_PrProbeBr,
      &&L_PrOLPredPredILoadGCmpLtBr, &&L_PrOLPred2PredILoadGCmpLtBr,
      &&L_PrEnterPredIAndCmpEqBr,    &&L_PrOLPredCmpEqBr,
      &&L_PrOLPredPredICondBr,       &&L_PrOLPredCondBr,
      &&L_PrPredIICondBr,
      &&L_PrPredI,             &&L_PrOLPred2,
      &&L_PrFlushIICountCall,  &&L_PrFlushICountCall,
      &&L_PrOLFlushCountCall,  &&L_PrOLFlushFlushICountCall,
      &&L_PrFlushIICountRet,   &&L_PrFlushIFlushArmSet,
      &&L_PrBLAdd,             &&L_PrBLAddOLAdd,
      &&L_PrFlushIFlushArmSetBr, &&L_PrBLAddBr, &&L_PrBLAddOLAddBr,
      &&L_PrCountCallCall,        &&L_PrFlushIICountCallCall,
      &&L_PrFlushICountCallCall,  &&L_PrOLFlushCountCallCall,
      &&L_PrOLFlushFlushICountCallCall,
      &&L_PrFlushICountRetRet,    &&L_PrFlushIICountRetRet,
      &&L_ConstPrFlushICountRetRet,
      &&L_ConstAndLoadArrConstCmpEqBr, &&L_LoadArrConstCmpEqConstCmpNeBr,
      &&L_ConstAndLoadArrMove2,        &&L_ConstCmpGeBr,
      &&L_PrOLPredPredIConstAndLoadArr,
      &&L_PrEnterPredIConstAndLoadArrMove,
      &&L_ConstAddMovePrFlushIIArmSetBr,
      &&L_ConstAddMovePrFlushIFlushArmSetBr,
  };

#define OLPP_FUEL()                                                            \
  do {                                                                         \
    if (++Steps > MaxSteps) {                                                  \
      Fr->Block = Block;                                                       \
      return Fail("fuel exhausted after " + std::to_string(MaxSteps) +         \
                  " steps");                                                   \
    }                                                                          \
  } while (0)
#define OLPP_DISPATCH()                                                        \
  do {                                                                         \
    OLPP_FUEL();                                                               \
    I = Code + Pc;                                                             \
    goto *JT[static_cast<unsigned>(I->Op)];                                    \
  } while (0)
#define OLPP_NEXT()                                                            \
  do {                                                                         \
    ++Pc;                                                                      \
    OLPP_DISPATCH();                                                           \
  } while (0)

  // One-step bodies shared by the plain handlers and the fused
  // superinstructions (which execute several of them per dispatch). Each
  // body is the exact step it names, including its cost accounting; J is
  // the ExecInstr holding the step's operands.
#define OLPP_CONST_BODY(J)                                                     \
  Regs[(J)->Dst] = (J)->Imm;                                                   \
  Base += cost::Instr;
#define OLPP_MOVE_BODY(J)                                                      \
  Regs[(J)->Dst] = Regs[(J)->Src0];                                            \
  Base += cost::Instr;
#define OLPP_ADD_BODY(J)                                                       \
  Regs[(J)->Dst] =                                                             \
      static_cast<int64_t>(static_cast<uint64_t>(Regs[(J)->Src0]) +            \
                           static_cast<uint64_t>(Regs[(J)->Src1]));            \
  Base += cost::Instr;
#define OLPP_AND_BODY(J)                                                       \
  Regs[(J)->Dst] = Regs[(J)->Src0] & Regs[(J)->Src1];                          \
  Base += cost::Instr;
#define OLPP_LOADARR_BODY(J)                                                   \
  {                                                                            \
    int64_t Idx = Regs[(J)->Src0];                                             \
    const GView Arr = GlobalsP[(J)->GlobalId];                                 \
    if (static_cast<uint64_t>(Idx) >= Arr.Size) {                              \
      Fr->Block = Block;                                                       \
      return Fail("array index " + std::to_string(Idx) +                       \
                  " out of bounds for '" + M.globals()[(J)->GlobalId].Name +   \
                  "' of size " + std::to_string(Arr.Size));                    \
    }                                                                          \
    Regs[(J)->Dst] = Arr.Data[static_cast<size_t>(Idx)];                       \
    Base += cost::Instr;                                                       \
  }
#define OLPP_BR_BODY(J)                                                        \
  Base += cost::Instr;                                                         \
  Pc = (J)->Target0Pc;                                                         \
  Block = (J)->Target0Blk;                                                     \
  ++Blocks;                                                                    \
  if (Tr)                                                                      \
    Tr->onBlock(FuncId, Block);                                                \
  if (TraceCk && Pc <= static_cast<uint32_t>((J) - Code))                      \
    goto TraceCheck;
#define OLPP_LOADG_BODY(J)                                                     \
  Regs[(J)->Dst] = GlobalsP[(J)->GlobalId].Data[0];                            \
  Base += cost::Instr;
#define OLPP_CMP_BODY(J, OPR)                                                  \
  Regs[(J)->Dst] = Regs[(J)->Src0] OPR Regs[(J)->Src1];                        \
  Base += cost::Instr;
#define OLPP_CONDBR_BODY(J)                                                    \
  Base += cost::Instr;                                                         \
  {                                                                            \
    bool Taken = Regs[(J)->Src0] != 0;                                         \
    Pc = Taken ? (J)->Target0Pc : (J)->Target1Pc;                              \
    Block = Taken ? (J)->Target0Blk : (J)->Target1Blk;                         \
  }                                                                            \
  ++Blocks;                                                                    \
  if (Tr)                                                                      \
    Tr->onBlock(FuncId, Block);                                                \
  if (TraceCk && Pc <= static_cast<uint32_t>((J) - Code))                      \
    goto TraceCheck;

  // Specialized probe micro-op bodies (see execProbe for the reference
  // semantics each one mirrors, op kind by op kind). All accumulate into a
  // local PCost the handler flushes to PCostSum. Ops run in probe order, so
  // reads/writes of Fr->R and the Type I/II state interleave exactly as in
  // the generic loop.
#define OLPP_PB_OLPRED(OpsP, Idx)                                              \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    LoopRegs &L = Loops[Po.Slot];                                              \
    if (!L.Active) {                                                           \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      PCost += cost::InactiveTest + cost::RegOp;                               \
      if (++L.Ol == Po.C1) {                                                   \
        Counts->bump(L.Ro + Po.C0);                                            \
        L.Active = false;                                                      \
        PCost += cost::CounterBump;                                            \
        if (TraceCk)                                                           \
          Prof->Tier.noteHot(FuncId, L.Ro + Po.C0, TraceThreshold);            \
      }                                                                        \
    }                                                                          \
  }
#define OLPP_PB_PREDI(OpsP, Idx)                                               \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveI) {                                                        \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      PCost += cost::InactiveTest + cost::RegOp;                               \
      if (++Fr->OlI == Po.C1) {                                                \
        Prof->TypeICounts.bump(                                                \
            {FuncId, Fr->CallSiteI, Fr->RI + Po.C0, Fr->CallerPre});           \
        Fr->ActiveI = false;                                                   \
        PCost += cost::TupleBump;                                              \
      }                                                                        \
    }                                                                          \
  }
#define OLPP_PB_FLUSHI(OpsP, Idx)                                              \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveI) {                                                        \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      Prof->TypeICounts.bump(                                                  \
          {FuncId, Fr->CallSiteI, Fr->RI + Po.C0, Fr->CallerPre});             \
      Fr->ActiveI = false;                                                     \
      PCost += cost::InactiveTest + cost::TupleBump;                           \
    }                                                                          \
  }
#define OLPP_PB_ADDI(OpsP, Idx)                                                \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveI) {                                                        \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      Fr->RI += Po.C0;                                                         \
      PCost += cost::InactiveTest + cost::RegOp;                               \
    }                                                                          \
  }
  // The *_FIRST Type II bodies assume they are the probe's only Type II op
  // (true for every specialized shape), so the shared inactive test is
  // always charged.
#define OLPP_PB_ADDII_FIRST(OpsP, Idx)                                         \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveII ||                                                       \
        Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {                    \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      Fr->RoII += Po.C0;                                                       \
      PCost += cost::InactiveTest + cost::RegOp;                               \
    }                                                                          \
  }
#define OLPP_PB_PREDII_FIRST(OpsP, Idx)                                        \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveII ||                                                       \
        Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {                    \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      PCost += cost::InactiveTest + cost::RegOp;                               \
      if (++Fr->OlII == Po.C1) {                                               \
        Prof->TypeIICounts.bump({Fr->CalleeII, Fr->CallSiteII,                 \
                                 Fr->CalleePathII, Fr->RoII + Po.C0});         \
        Fr->ActiveII = false;                                                  \
        PCost += cost::TupleBump;                                              \
      }                                                                        \
    }                                                                          \
  }
#define OLPP_PB_FLUSHII_FIRST(OpsP, Idx)                                       \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (!Fr->ActiveII ||                                                       \
        Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {                    \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      Prof->TypeIICounts.bump({Fr->CalleeII, Fr->CallSiteII,                   \
                               Fr->CalleePathII, Fr->RoII + Po.C0});           \
      Fr->ActiveII = false;                                                    \
      PCost += cost::InactiveTest + cost::TupleBump;                           \
    }                                                                          \
  }
#define OLPP_PB_BLSET(OpsP, Idx)                                               \
  Fr->R = (OpsP)[Idx].C0;                                                      \
  PCost += cost::RegOp;
#define OLPP_PB_BLCOUNT(OpsP, Idx)                                             \
  Counts->bump(Fr->R + (OpsP)[Idx].C0);                                        \
  PCost += cost::CounterBump;
#define OLPP_PB_OLARM(OpsP, Idx)                                               \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    LoopRegs &L = Loops[Po.Slot];                                              \
    L.Ro = Fr->R + Po.C0;                                                      \
    L.Ol = 0;                                                                  \
    L.Active = true;                                                           \
    PCost += 2 * cost::RegOp;                                                  \
  }
#define OLPP_PB_IPENTER(OpsP, Idx)                                             \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    Fr->RI = Po.C0;                                                            \
    Fr->OlI = 0;                                                               \
    if (!Prof->ShadowStack.empty()) {                                          \
      Fr->CallSiteI = Prof->ShadowStack.back().CallSite;                       \
      Fr->CallerPre = Prof->ShadowStack.back().CallerPre;                      \
      Fr->ActiveI = true;                                                      \
      Fr->HaveCaller = true;                                                   \
    } else {                                                                   \
      Fr->ActiveI = false;                                                     \
      Fr->HaveCaller = false;                                                  \
    }                                                                          \
    PCost += cost::StackOp + cost::RegOp;                                      \
  }
#define OLPP_PB_IPRET(OpsP, Idx)                                               \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    Prof->Pending.Valid = true;                                                \
    Prof->Pending.Callee = FuncId;                                             \
    Prof->Pending.PathId = Fr->R + Po.C0;                                      \
    if (Fr->HaveCaller) {                                                      \
      assert(!Prof->ShadowStack.empty() && "shadow stack underflow");          \
      Prof->ShadowStack.pop_back();                                            \
    }                                                                          \
    PCost += cost::StackOp + cost::RegOp;                                      \
  }
#define OLPP_PB_IPCALL(OpsP, Idx)                                              \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    Prof->ShadowStack.push_back(                                               \
        {static_cast<uint32_t>(Po.C0), Fr->R + Po.C1});                        \
    PCost += cost::StackOp + cost::RegOp;                                      \
  }
#define OLPP_PB_ARMII(OpsP, Idx)                                               \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    if (Prof->Pending.Valid) {                                                 \
      Fr->ActiveII = true;                                                     \
      Fr->CalleeII = Prof->Pending.Callee;                                     \
      Fr->CalleePathII = Prof->Pending.PathId;                                 \
      Fr->CallSiteII = static_cast<uint32_t>(Po.C1);                           \
      Fr->RoII = Po.C0;                                                        \
      Fr->OlII = 0;                                                            \
      Prof->Pending.Valid = false;                                             \
    } else {                                                                   \
      Fr->ActiveII = false;                                                    \
    }                                                                          \
    PCost += cost::StackOp + cost::RegOp;                                      \
  }
#define OLPP_PB_OLFLUSH(OpsP, Idx)                                             \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    LoopRegs &L = Loops[Po.Slot];                                              \
    if (!L.Active) {                                                           \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      Counts->bump(L.Ro + Po.C0);                                              \
      L.Active = false;                                                        \
      PCost += cost::InactiveTest + cost::CounterBump;                         \
      if (TraceCk)                                                             \
        Prof->Tier.noteHot(FuncId, L.Ro + Po.C0, TraceThreshold);              \
    }                                                                          \
  }
#define OLPP_PB_BLADD(OpsP, Idx)                                               \
  Fr->R += (OpsP)[Idx].C0;                                                     \
  PCost += cost::RegOp;
#define OLPP_PB_OLADD(OpsP, Idx)                                               \
  {                                                                            \
    const ProbeOp &Po = (OpsP)[Idx];                                           \
    LoopRegs &L = Loops[Po.Slot];                                              \
    if (!L.Active) {                                                           \
      PCost += cost::InactiveTest;                                             \
    } else {                                                                   \
      L.Ro += Po.C0;                                                           \
      PCost += cost::InactiveTest + cost::RegOp;                               \
    }                                                                          \
  }

ReloadFrame:
  // (Re)load the cached view of the top frame. Everything a step touches
  // from here on is a plain array access.
  Fr = &Frames.back();
  FuncId = Fr->FuncId;
  {
    const FuncPlan &FP = P.Funcs[FuncId];
    Code = FP.Code.data();
    ProbeOps = FP.ProbePool.data();
    ArgPool = FP.ArgPool.data();
  }
  Regs = RegStack.data() + Fr->RegBase;
  Loops = LoopStack.data() + Fr->LoopBase;
  Counts = Prof ? &Prof->PathCounts[FuncId] : nullptr;
  Pc = Fr->Pc;
  Block = Fr->Block;
  OLPP_DISPATCH();

L_Const:
  OLPP_CONST_BODY(I)
  OLPP_NEXT();
L_Move:
  OLPP_MOVE_BODY(I)
  OLPP_NEXT();
L_Add:
  OLPP_ADD_BODY(I)
  OLPP_NEXT();
L_Sub:
  Regs[I->Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[I->Src0]) -
                                      static_cast<uint64_t>(Regs[I->Src1]));
  Base += cost::Instr;
  OLPP_NEXT();
L_Mul:
  Regs[I->Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[I->Src0]) *
                                      static_cast<uint64_t>(Regs[I->Src1]));
  Base += cost::Instr;
  OLPP_NEXT();
L_Div: {
  int64_t A = Regs[I->Src0], B = Regs[I->Src1];
  if (B == 0) {
    Fr->Block = Block;
    return Fail("division by zero");
  }
  if (A == INT64_MIN && B == -1) {
    Fr->Block = Block;
    return Fail("signed division overflow");
  }
  Regs[I->Dst] = A / B;
  Base += cost::Instr;
  OLPP_NEXT();
}
L_Mod: {
  int64_t A = Regs[I->Src0], B = Regs[I->Src1];
  if (B == 0) {
    Fr->Block = Block;
    return Fail("modulo by zero");
  }
  if (A == INT64_MIN && B == -1) {
    Fr->Block = Block;
    return Fail("signed modulo overflow");
  }
  Regs[I->Dst] = A % B;
  Base += cost::Instr;
  OLPP_NEXT();
}
L_And:
  OLPP_AND_BODY(I)
  OLPP_NEXT();
L_Or:
  Regs[I->Dst] = Regs[I->Src0] | Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_Xor:
  Regs[I->Dst] = Regs[I->Src0] ^ Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_Shl:
  Regs[I->Dst] = static_cast<int64_t>(
      static_cast<uint64_t>(Regs[I->Src0])
      << (static_cast<uint64_t>(Regs[I->Src1]) & 63));
  Base += cost::Instr;
  OLPP_NEXT();
L_Shr:
  Regs[I->Dst] = Regs[I->Src0] >> (static_cast<uint64_t>(Regs[I->Src1]) & 63);
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpEq:
  Regs[I->Dst] = Regs[I->Src0] == Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpNe:
  Regs[I->Dst] = Regs[I->Src0] != Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpLt:
  Regs[I->Dst] = Regs[I->Src0] < Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpLe:
  Regs[I->Dst] = Regs[I->Src0] <= Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpGt:
  Regs[I->Dst] = Regs[I->Src0] > Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_CmpGe:
  Regs[I->Dst] = Regs[I->Src0] >= Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
L_Neg:
  Regs[I->Dst] = -static_cast<int64_t>(static_cast<uint64_t>(Regs[I->Src0]));
  Base += cost::Instr;
  OLPP_NEXT();
L_Not:
  Regs[I->Dst] = Regs[I->Src0] == 0 ? 1 : 0;
  Base += cost::Instr;
  OLPP_NEXT();
L_LoadG:
  Regs[I->Dst] = GlobalsP[I->GlobalId].Data[0];
  Base += cost::Instr;
  OLPP_NEXT();
L_StoreG:
  GlobalsP[I->GlobalId].Data[0] = Regs[I->Src0];
  Base += cost::Instr;
  OLPP_NEXT();
L_LoadArr:
  OLPP_LOADARR_BODY(I)
  OLPP_NEXT();
L_StoreArr: {
  int64_t Idx = Regs[I->Src0];
  const GView Arr = GlobalsP[I->GlobalId];
  if (static_cast<uint64_t>(Idx) >= Arr.Size) {
    Fr->Block = Block;
    return Fail("array index " + std::to_string(Idx) + " out of bounds for '" +
                M.globals()[I->GlobalId].Name + "' of size " +
                std::to_string(Arr.Size));
  }
  Arr.Data[static_cast<size_t>(Idx)] = Regs[I->Src1];
  Base += cost::Instr;
  OLPP_NEXT();
}
L_CallInd: {
  int64_t Target = Regs[I->Src0];
  if (Target < 0 || static_cast<uint64_t>(Target) >= M.numFunctions()) {
    Fr->Block = Block;
    return Fail("indirect call to invalid function id " +
                std::to_string(Target));
  }
  CalleeId = static_cast<uint32_t>(Target);
  if (I->ArgsCount != P.Funcs[CalleeId].NumParams) {
    Fr->Block = Block;
    return Fail("indirect call to '" + P.Funcs[CalleeId].Name + "' with " +
                std::to_string(I->ArgsCount) + " args, expected " +
                std::to_string(P.Funcs[CalleeId].NumParams));
  }
  goto CallCommon;
}
L_Call:
  CalleeId = I->CalleeId;
CallCommon : {
  if (Frames.size() >= Config.MaxCallDepth) {
    Fr->Block = Block;
    return Fail("call depth limit of " + std::to_string(Config.MaxCallDepth) +
                " exceeded");
  }
  Base += cost::Instr;
  ++Calls;
  // Resume past the call on return; the callee's frame lands directly
  // after ours in the pooled stacks, so argument registers are copied
  // by index (resize may reallocate, indices stay valid).
  Fr->Pc = Pc + 1;
  Fr->Block = Block;
  const uint32_t CallerRegBase = Fr->RegBase;
  const Reg *ArgRegs = ArgPool + I->ArgsBegin;
  const uint32_t NumArgs = I->ArgsCount;
  PushFrame(CalleeId, I->Dst); // invalidates Fr/Regs/Loops
  const uint32_t CalleeRegBase = Frames.back().RegBase;
  for (uint32_t A = 0; A < NumArgs; ++A)
    RegStack[CalleeRegBase + A] = RegStack[CallerRegBase + ArgRegs[A]];
  goto ReloadFrame;
}
L_Ret: {
  Base += cost::Instr;
  int64_t Value = I->Src0 == NoReg ? 0 : Regs[I->Src0];
  bool IsVoid = I->Src0 == NoReg;
  if (Tr)
    Tr->onExit(FuncId);
  Reg Dst = Fr->RetDst;
  RegStack.resize(Fr->RegBase);
  LoopStack.resize(Fr->LoopBase);
  Frames.pop_back();
  if (Frames.empty()) {
    C.Steps = Steps;
    C.BaseCost = Base;
    C.ProbeCost += PCostSum;
    C.Blocks += Blocks;
    C.Calls += Calls;
    Res.Ok = true;
    Res.ReturnValue = Value;
    Res.Trace = TStats;
    // A hot-path arm that never reached a backedge must not leak into the
    // next batch run (mirrors the stale shadow-stack rule).
    if (Prof)
      Prof->Tier.PendingRecord = -1;
    return Res;
  }
  if (Dst != NoReg) {
    if (IsVoid)
      return Fail("void return value used by the caller");
    RegStack[Frames.back().RegBase + Dst] = Value;
  }
  goto ReloadFrame;
}
L_Br:
  OLPP_BR_BODY(I)
  OLPP_DISPATCH();
L_CondBr: {
  Base += cost::Instr;
  bool Taken = Regs[I->Src0] != 0;
  Pc = Taken ? I->Target0Pc : I->Target1Pc;
  Block = Taken ? I->Target0Blk : I->Target1Blk;
  ++Blocks;
  if (Tr)
    Tr->onBlock(FuncId, Block);
  if (TraceCk && Pc <= static_cast<uint32_t>(I - Code))
    goto TraceCheck;
  OLPP_DISPATCH();
}

  // Fused compare-and-branch: exactly the compare step followed by the
  // branch step, including the branch's own fuel check, with a single
  // dispatch for the pair.
#define OLPP_CMPBR(LABEL, OPR)                                                 \
  LABEL : {                                                                    \
    bool Taken = Regs[I->Src0] OPR Regs[I->Src1];                              \
    Regs[I->Dst] = Taken;                                                      \
    Base += cost::Instr;                                                       \
    OLPP_FUEL();                                                               \
    Base += cost::Instr;                                                       \
    Pc = Taken ? I->Target0Pc : I->Target1Pc;                                  \
    Block = Taken ? I->Target0Blk : I->Target1Blk;                             \
    ++Blocks;                                                                  \
    if (Tr)                                                                    \
      Tr->onBlock(FuncId, Block);                                              \
    if (TraceCk && Pc <= static_cast<uint32_t>(I - Code))                      \
      goto TraceCheck;                                                         \
    OLPP_DISPATCH();                                                           \
  }

  OLPP_CMPBR(L_CmpEqBr, ==)
  OLPP_CMPBR(L_CmpNeBr, !=)
  OLPP_CMPBR(L_CmpLtBr, <)
  OLPP_CMPBR(L_CmpLeBr, <=)
  OLPP_CMPBR(L_CmpGtBr, >)
  OLPP_CMPBR(L_CmpGeBr, >=)
#undef OLPP_CMPBR

  // Fused straight-line pairs/quads: each constituent keeps its exact
  // per-step accounting (the dispatch that entered the handler did the
  // first step's fuel check; OLPP_FUEL covers each later one).
L_ConstAnd:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_AndLoadArr:
  OLPP_AND_BODY(I)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_LoadArrMove:
  OLPP_LOADARR_BODY(I)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_AddMove:
  OLPP_ADD_BODY(I)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_MoveConst:
  OLPP_MOVE_BODY(I)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_ConstAdd:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_ADD_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_MoveBr:
  OLPP_MOVE_BODY(I)
  OLPP_FUEL();
  OLPP_BR_BODY(I + 1)
  OLPP_DISPATCH();
L_ConstAndLoadArrMove:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 2)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 3)
  Pc += 4;
  OLPP_DISPATCH();
L_ConstAndLoadArr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 2)
  Pc += 3;
  OLPP_DISPATCH();
L_ConstAddMove:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_ADD_BODY(I + 1)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 2)
  Pc += 3;
  OLPP_DISPATCH();
L_ConstAddMoveBr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_ADD_BODY(I + 1)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 2)
  OLPP_FUEL();
  OLPP_BR_BODY(I + 3)
  OLPP_DISPATCH();
L_CmpEqConstCmpNeBr:
  OLPP_CMP_BODY(I, ==)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 2, !=)
  OLPP_FUEL();
  OLPP_BR_BODY(I + 3)
  OLPP_DISPATCH();
L_LoadGCmpLtBr:
  OLPP_LOADG_BODY(I)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, <)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
L_ConstCmpEqBr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
L_AndCmpEqBr:
  OLPP_AND_BODY(I)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
L_LoadArrCmpEqBr:
  OLPP_LOADARR_BODY(I)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
L_LoadArrConst:
  OLPP_LOADARR_BODY(I)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  Pc += 2;
  OLPP_DISPATCH();
L_ConstAndLoadArrMoveCmpEqBr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 2)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 3)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 4, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 5)
  OLPP_DISPATCH();

  // Specialized probes. Without a profile runtime a probe is a free no-op
  // step, exactly like the generic handler. OLPP_PR opens a handler with
  // the runtime guard and the op-pool window.
#define OLPP_PR                                                                \
  if (!Counts) {                                                               \
    OLPP_NEXT();                                                               \
  }                                                                            \
  const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;                          \
  uint64_t PCost = 0;
#define OLPP_PR_END                                                            \
  PCostSum += PCost;                                                           \
  OLPP_NEXT();

L_PrOLPred: {
  OLPP_PR
  OLPP_PB_OLPRED(Ops, 0)
  OLPP_PR_END
}
L_PrOLPredPredI: {
  OLPP_PR
  OLPP_PB_OLPRED(Ops, 0)
  OLPP_PB_PREDI(Ops, 1)
  OLPP_PR_END
}
L_PrOLPred2PredI: {
  OLPP_PR
  OLPP_PB_OLPRED(Ops, 0)
  OLPP_PB_OLPRED(Ops, 1)
  OLPP_PB_PREDI(Ops, 2)
  OLPP_PR_END
}
L_PrAddI: {
  OLPP_PR
  OLPP_PB_ADDI(Ops, 0)
  OLPP_PR_END
}
L_PrAddII: {
  OLPP_PR
  OLPP_PB_ADDII_FIRST(Ops, 0)
  OLPP_PR_END
}
L_PrPredII: {
  OLPP_PR
  OLPP_PB_PREDII_FIRST(Ops, 0)
  OLPP_PR_END
}
L_PrEnter: {
  OLPP_PR
  OLPP_PB_BLSET(Ops, 0)
  OLPP_PB_IPENTER(Ops, 1)
  OLPP_PR_END
}
L_PrEnterPredI: {
  OLPP_PR
  OLPP_PB_BLSET(Ops, 0)
  OLPP_PB_IPENTER(Ops, 1)
  OLPP_PB_PREDI(Ops, 2)
  OLPP_PR_END
}
L_PrFlushIIArmSet: {
  // OLArm reads Fr->R before BLSet overwrites it — probe order matters.
  OLPP_PR
  OLPP_PB_FLUSHII_FIRST(Ops, 0)
  OLPP_PB_OLARM(Ops, 1)
  OLPP_PB_BLSET(Ops, 2)
  OLPP_PR_END
}
L_PrFlushICountRet: {
  OLPP_PR
  OLPP_PB_FLUSHI(Ops, 0)
  OLPP_PB_BLCOUNT(Ops, 1)
  OLPP_PB_IPRET(Ops, 2)
  OLPP_PR_END
}
L_PrCountCall: {
  OLPP_PR
  OLPP_PB_BLCOUNT(Ops, 0)
  OLPP_PB_IPCALL(Ops, 1)
  OLPP_PR_END
}
L_PrSetArmII: {
  OLPP_PR
  OLPP_PB_BLSET(Ops, 0)
  OLPP_PB_ARMII(Ops, 1)
  OLPP_PR_END
}

  // Probe + trailing unconditional Br (the shape of every split-edge probe
  // block): the probe body, a fuel check for the branch step, the branch.
#define OLPP_PRBR_END                                                          \
  PCostSum += PCost;                                                           \
  }                                                                            \
  OLPP_FUEL();                                                                 \
  OLPP_BR_BODY(I + 1)                                                          \
  OLPP_DISPATCH();

L_PrOLPredBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    OLPP_PRBR_END
}
L_PrAddIBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_ADDI(Ops, 0)
    OLPP_PRBR_END
}
L_PrAddIIBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_ADDII_FIRST(Ops, 0)
    OLPP_PRBR_END
}
L_PrSetArmIIBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLSET(Ops, 0)
    OLPP_PB_ARMII(Ops, 1)
    OLPP_PRBR_END
}
L_PrFlushIIArmSetBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHII_FIRST(Ops, 0)
    OLPP_PB_OLARM(Ops, 1)
    OLPP_PB_BLSET(Ops, 2)
    OLPP_PRBR_END
}
L_PrProbeBr: {
  if (Counts)
    goto GenericProbe;
  OLPP_FUEL();
  OLPP_BR_BODY(I + 1)
  OLPP_DISPATCH();
}

  // Probe-led whole-block compounds: the probe step, then the block's
  // short straight-line body and terminator, one fuel check per
  // constituent step, all in a single dispatch.
L_PrOLPredPredILoadGCmpLtBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    OLPP_PB_PREDI(Ops, 1)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_LOADG_BODY(I + 1)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 2, <)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 3)
  OLPP_DISPATCH();
}
L_PrOLPred2PredILoadGCmpLtBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    OLPP_PB_OLPRED(Ops, 1)
    OLPP_PB_PREDI(Ops, 2)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_LOADG_BODY(I + 1)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 2, <)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 3)
  OLPP_DISPATCH();
}
L_PrEnterPredIAndCmpEqBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLSET(Ops, 0)
    OLPP_PB_IPENTER(Ops, 1)
    OLPP_PB_PREDI(Ops, 2)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 2, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 3)
  OLPP_DISPATCH();
}
L_PrOLPredCmpEqBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
}
L_PrOLPredPredICondBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    OLPP_PB_PREDI(Ops, 1)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 1)
  OLPP_DISPATCH();
}
L_PrOLPredCondBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 1)
  OLPP_DISPATCH();
}
L_PrPredIICondBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_PREDII_FIRST(Ops, 0)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 1)
  OLPP_DISPATCH();
}

L_PrPredI: {
  OLPP_PR
  OLPP_PB_PREDI(Ops, 0)
  OLPP_PR_END
}
L_PrOLPred2: {
  OLPP_PR
  OLPP_PB_OLPRED(Ops, 0)
  OLPP_PB_OLPRED(Ops, 1)
  OLPP_PR_END
}
L_PrFlushIICountCall: {
  OLPP_PR
  OLPP_PB_FLUSHII_FIRST(Ops, 0)
  OLPP_PB_BLCOUNT(Ops, 1)
  OLPP_PB_IPCALL(Ops, 2)
  OLPP_PR_END
}
L_PrFlushICountCall: {
  OLPP_PR
  OLPP_PB_FLUSHI(Ops, 0)
  OLPP_PB_BLCOUNT(Ops, 1)
  OLPP_PB_IPCALL(Ops, 2)
  OLPP_PR_END
}
L_PrOLFlushCountCall: {
  OLPP_PR
  OLPP_PB_OLFLUSH(Ops, 0)
  OLPP_PB_BLCOUNT(Ops, 1)
  OLPP_PB_IPCALL(Ops, 2)
  OLPP_PR_END
}
L_PrOLFlushFlushICountCall: {
  OLPP_PR
  OLPP_PB_OLFLUSH(Ops, 0)
  OLPP_PB_FLUSHI(Ops, 1)
  OLPP_PB_BLCOUNT(Ops, 2)
  OLPP_PB_IPCALL(Ops, 3)
  OLPP_PR_END
}
L_PrFlushIICountRet: {
  OLPP_PR
  OLPP_PB_FLUSHII_FIRST(Ops, 0)
  OLPP_PB_BLCOUNT(Ops, 1)
  OLPP_PB_IPRET(Ops, 2)
  OLPP_PR_END
}
L_PrFlushIFlushArmSet: {
  OLPP_PR
  OLPP_PB_FLUSHI(Ops, 0)
  OLPP_PB_OLFLUSH(Ops, 1)
  OLPP_PB_OLARM(Ops, 2)
  OLPP_PB_BLSET(Ops, 3)
  OLPP_PR_END
}
L_PrBLAdd: {
  OLPP_PR
  OLPP_PB_BLADD(Ops, 0)
  OLPP_PR_END
}
L_PrBLAddOLAdd: {
  OLPP_PR
  OLPP_PB_BLADD(Ops, 0)
  OLPP_PB_OLADD(Ops, 1)
  OLPP_PR_END
}
L_PrFlushIFlushArmSetBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHI(Ops, 0)
    OLPP_PB_OLFLUSH(Ops, 1)
    OLPP_PB_OLARM(Ops, 2)
    OLPP_PB_BLSET(Ops, 3)
    OLPP_PRBR_END
}
L_PrBLAddBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLADD(Ops, 0)
    OLPP_PRBR_END
}
L_PrBLAddOLAddBr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLADD(Ops, 0)
    OLPP_PB_OLADD(Ops, 1)
    OLPP_PRBR_END
}

  // Probe + Call / probe + Ret fusions: the probe step, then the plain
  // Call/Ret step via its ordinary handler body (I is advanced onto the
  // call or return instruction first, so the handler reads the right slot).
#define OLPP_PR_CALL_END                                                       \
    PCostSum += PCost;                                                         \
  }                                                                            \
  OLPP_FUEL();                                                                 \
  ++Pc;                                                                        \
  I = Code + Pc;                                                               \
  goto L_Call;
#define OLPP_PR_RET_END                                                        \
    PCostSum += PCost;                                                         \
  }                                                                            \
  OLPP_FUEL();                                                                 \
  ++Pc;                                                                        \
  I = Code + Pc;                                                               \
  goto L_Ret;

L_PrCountCallCall: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLCOUNT(Ops, 0)
    OLPP_PB_IPCALL(Ops, 1)
    OLPP_PR_CALL_END
}
L_PrFlushIICountCallCall: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHII_FIRST(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPCALL(Ops, 2)
    OLPP_PR_CALL_END
}
L_PrFlushICountCallCall: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHI(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPCALL(Ops, 2)
    OLPP_PR_CALL_END
}
L_PrOLFlushCountCallCall: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLFLUSH(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPCALL(Ops, 2)
    OLPP_PR_CALL_END
}
L_PrOLFlushFlushICountCallCall: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLFLUSH(Ops, 0)
    OLPP_PB_FLUSHI(Ops, 1)
    OLPP_PB_BLCOUNT(Ops, 2)
    OLPP_PB_IPCALL(Ops, 3)
    OLPP_PR_CALL_END
}
L_PrFlushICountRetRet: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHI(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPRET(Ops, 2)
    OLPP_PR_RET_END
}
L_PrFlushIICountRetRet: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHII_FIRST(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPRET(Ops, 2)
    OLPP_PR_RET_END
}
L_ConstPrFlushICountRetRet: {
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + (I + 1)->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHI(Ops, 0)
    OLPP_PB_BLCOUNT(Ops, 1)
    OLPP_PB_IPRET(Ops, 2)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  Pc += 2;
  I = Code + Pc;
  goto L_Ret;
}

L_ConstAndLoadArrConstCmpEqBr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 2)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 3)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 4, ==)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 5)
  OLPP_DISPATCH();
L_LoadArrConstCmpEqConstCmpNeBr:
  OLPP_LOADARR_BODY(I)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 2, ==)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 3)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 4, !=)
  OLPP_FUEL();
  OLPP_BR_BODY(I + 5)
  OLPP_DISPATCH();
L_ConstAndLoadArrMove2:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 1)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 2)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 3)
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 4)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 5)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 6)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 7)
  Pc += 8;
  OLPP_DISPATCH();
L_ConstCmpGeBr:
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_CMP_BODY(I + 1, >=)
  OLPP_FUEL();
  OLPP_CONDBR_BODY(I + 2)
  OLPP_DISPATCH();
L_PrOLPredPredIConstAndLoadArr: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_OLPRED(Ops, 0)
    OLPP_PB_PREDI(Ops, 1)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 2)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 3)
  Pc += 4;
  OLPP_DISPATCH();
}
L_PrEnterPredIConstAndLoadArrMove: {
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_BLSET(Ops, 0)
    OLPP_PB_IPENTER(Ops, 1)
    OLPP_PB_PREDI(Ops, 2)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_CONST_BODY(I + 1)
  OLPP_FUEL();
  OLPP_AND_BODY(I + 2)
  OLPP_FUEL();
  OLPP_LOADARR_BODY(I + 3)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 4)
  Pc += 5;
  OLPP_DISPATCH();
}
L_ConstAddMovePrFlushIIArmSetBr: {
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_ADD_BODY(I + 1)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 2)
  OLPP_FUEL();
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + (I + 3)->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHII_FIRST(Ops, 0)
    OLPP_PB_OLARM(Ops, 1)
    OLPP_PB_BLSET(Ops, 2)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_BR_BODY(I + 4)
  OLPP_DISPATCH();
}
L_ConstAddMovePrFlushIFlushArmSetBr: {
  OLPP_CONST_BODY(I)
  OLPP_FUEL();
  OLPP_ADD_BODY(I + 1)
  OLPP_FUEL();
  OLPP_MOVE_BODY(I + 2)
  OLPP_FUEL();
  if (Counts) {
    const ProbeOp *const Ops = ProbeOps + (I + 3)->ArgsBegin;
    uint64_t PCost = 0;
    OLPP_PB_FLUSHI(Ops, 0)
    OLPP_PB_OLFLUSH(Ops, 1)
    OLPP_PB_OLARM(Ops, 2)
    OLPP_PB_BLSET(Ops, 3)
    PCostSum += PCost;
  }
  OLPP_FUEL();
  OLPP_BR_BODY(I + 4)
  OLPP_DISPATCH();
}

L_Probe: {
  if (!Counts) {
    OLPP_NEXT();
  }
GenericProbe:
  // Generic probe execution over the pre-decoded op pool (patterns the
  // decoder does not specialize). EngineDiffTest holds this and every
  // specialized handler bit-identical to the shared execProbe the
  // reference engine runs.
  const ProbeOp *const Ops = ProbeOps + I->ArgsBegin;
  const uint32_t NumOps = I->ArgsCount;
  uint64_t PCost = 0;
  int64_t R = Fr->R;
  // See execProbe: the shared inactive test of a Type II probe is charged
  // once per probe, not once per op.
  bool ChargedIITest = false;
  for (uint32_t Oi = 0; Oi < NumOps; ++Oi) {
    const ProbeOp &Po = Ops[Oi];
    switch (Po.Kind) {
    case ProbeOpKind::BLSet:
      R = Po.C0;
      PCost += cost::RegOp;
      break;
    case ProbeOpKind::BLAdd:
      R += Po.C0;
      PCost += cost::RegOp;
      break;
    case ProbeOpKind::BLCount:
      Counts->bump(R + Po.C0);
      PCost += cost::CounterBump;
      break;
    case ProbeOpKind::OLDisarm:
      Loops[Po.Slot].Active = false;
      PCost += cost::RegOp;
      break;
    case ProbeOpKind::OLArm: {
      LoopRegs &L = Loops[Po.Slot];
      L.Ro = R + Po.C0;
      L.Ol = 0;
      L.Active = true;
      PCost += 2 * cost::RegOp;
      break;
    }
    case ProbeOpKind::OLAdd: {
      LoopRegs &L = Loops[Po.Slot];
      if (!L.Active) {
        PCost += cost::InactiveTest;
        break;
      }
      L.Ro += Po.C0;
      PCost += cost::InactiveTest + cost::RegOp;
      break;
    }
    case ProbeOpKind::OLPred: {
      LoopRegs &L = Loops[Po.Slot];
      if (!L.Active) {
        PCost += cost::InactiveTest;
        break;
      }
      PCost += cost::InactiveTest + cost::RegOp;
      if (++L.Ol == Po.C1) {
        Counts->bump(L.Ro + Po.C0);
        L.Active = false;
        PCost += cost::CounterBump;
        if (TraceCk)
          Prof->Tier.noteHot(FuncId, L.Ro + Po.C0, TraceThreshold);
      }
      break;
    }
    case ProbeOpKind::OLFlush: {
      LoopRegs &L = Loops[Po.Slot];
      if (!L.Active) {
        PCost += cost::InactiveTest;
        break;
      }
      Counts->bump(L.Ro + Po.C0);
      L.Active = false;
      PCost += cost::InactiveTest + cost::CounterBump;
      if (TraceCk)
        Prof->Tier.noteHot(FuncId, L.Ro + Po.C0, TraceThreshold);
      break;
    }
    case ProbeOpKind::IPCall:
      Prof->ShadowStack.push_back({static_cast<uint32_t>(Po.C0), R + Po.C1});
      PCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPEnter:
      Fr->RI = Po.C0;
      Fr->OlI = 0;
      if (!Prof->ShadowStack.empty()) {
        Fr->CallSiteI = Prof->ShadowStack.back().CallSite;
        Fr->CallerPre = Prof->ShadowStack.back().CallerPre;
        Fr->ActiveI = true;
        Fr->HaveCaller = true;
      } else {
        Fr->ActiveI = false;
        Fr->HaveCaller = false;
      }
      PCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPAddI:
      if (!Fr->ActiveI) {
        PCost += cost::InactiveTest;
        break;
      }
      Fr->RI += Po.C0;
      PCost += cost::InactiveTest + cost::RegOp;
      break;
    case ProbeOpKind::IPPredI:
      if (!Fr->ActiveI) {
        PCost += cost::InactiveTest;
        break;
      }
      PCost += cost::InactiveTest + cost::RegOp;
      if (++Fr->OlI == Po.C1) {
        Prof->TypeICounts.bump(
            {FuncId, Fr->CallSiteI, Fr->RI + Po.C0, Fr->CallerPre});
        Fr->ActiveI = false;
        PCost += cost::TupleBump;
      }
      break;
    case ProbeOpKind::IPFlushI:
      if (!Fr->ActiveI) {
        PCost += cost::InactiveTest;
        break;
      }
      Prof->TypeICounts.bump(
          {FuncId, Fr->CallSiteI, Fr->RI + Po.C0, Fr->CallerPre});
      Fr->ActiveI = false;
      PCost += cost::InactiveTest + cost::TupleBump;
      break;
    case ProbeOpKind::IPRet:
      Prof->Pending.Valid = true;
      Prof->Pending.Callee = FuncId;
      Prof->Pending.PathId = R + Po.C0;
      if (Fr->HaveCaller) {
        assert(!Prof->ShadowStack.empty() && "shadow stack underflow");
        Prof->ShadowStack.pop_back();
      }
      PCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPArmII:
      if (Prof->Pending.Valid) {
        Fr->ActiveII = true;
        Fr->CalleeII = Prof->Pending.Callee;
        Fr->CalleePathII = Prof->Pending.PathId;
        Fr->CallSiteII = static_cast<uint32_t>(Po.C1);
        Fr->RoII = Po.C0;
        Fr->OlII = 0;
        Prof->Pending.Valid = false;
      } else {
        Fr->ActiveII = false;
      }
      PCost += cost::StackOp + cost::RegOp;
      break;
    case ProbeOpKind::IPAddII:
      if (!Fr->ActiveII || Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {
        PCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      Fr->RoII += Po.C0;
      PCost += cost::InactiveTest + cost::RegOp;
      break;
    case ProbeOpKind::IPPredII:
      if (!Fr->ActiveII || Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {
        PCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      PCost += cost::InactiveTest + cost::RegOp;
      if (++Fr->OlII == Po.C1) {
        Prof->TypeIICounts.bump(
            {Fr->CalleeII, Fr->CallSiteII, Fr->CalleePathII, Fr->RoII + Po.C0});
        Fr->ActiveII = false;
        PCost += cost::TupleBump;
      }
      break;
    case ProbeOpKind::IPFlushII:
      if (!Fr->ActiveII || Fr->CallSiteII != static_cast<uint32_t>(Po.Slot)) {
        PCost += ChargedIITest ? 0 : cost::InactiveTest;
        ChargedIITest = true;
        break;
      }
      Prof->TypeIICounts.bump(
          {Fr->CalleeII, Fr->CallSiteII, Fr->CalleePathII, Fr->RoII + Po.C0});
      Fr->ActiveII = false;
      PCost += cost::InactiveTest + cost::TupleBump;
      break;
    }
  }
  Fr->R = R;
  PCostSum += PCost;
  if (I->Op == ExecOp::PrProbeBr) {
    OLPP_FUEL();
    OLPP_BR_BODY(I + 1)
    OLPP_DISPATCH();
  }
  OLPP_NEXT();
}

// Cold tail of every taken backward branch when the tracing tier is on
// (TraceCk). Drives the recorder life cycle and trace dispatch; Pc/Block
// already hold the branch target here. Reached only via goto, after the
// branch's own accounting and sink notification ran, so falling back into
// OLPP_DISPATCH resumes the ordinary loop with no observable difference.
TraceCheck: {
  if (Rec.recording()) {
    if (Rec.aborted()) {
      // The recording hit a non-traceable event (sink overflow, anchor-frame
      // exit). Never try this start point again: anchors are blacklisted,
      // bridge side exits get the no-bridge sentinel.
      Tr = nullptr;
      if (Rec.bridge()) {
        BrParent->ExitDeopts[BrStep].store(CompiledTrace::NoBridgeSentinel,
                                           std::memory_order_relaxed);
        BrParent = nullptr;
      } else {
        Prof->Tier.blacklistAnchor(Rec.anchorFunc(), Rec.anchorPc());
      }
      Rec.clear();
      ++TStats.Aborted;
    } else if (FuncId == Rec.endFunc() && Pc == Rec.endPc() &&
               Rec.depth() == 0) {
      // Back at the end point with balanced calls: one complete pass
      // recorded. For anchor traces the end point is the anchor itself;
      // for bridges it is the parent trace's anchor.
      Tr = nullptr;
      const bool IsBridge = Rec.bridge();
      auto T = compileTrace(P, Rec);
      const uint32_t AF = Rec.anchorFunc(), APc = Rec.anchorPc();
      if (T && (TSettings.OptStages != 0 || TSettings.FaultDropGuard)) {
        optimizeTrace(*T, {TSettings.OptStages, TSettings.FaultDropGuard});
        // Deopt-rate DWE gate (RunConfig::TraceDWEGate): when the
        // optimized root carries cyclic Wrap recovery windows, pre-compile
        // the same recording with the DWE stage masked off so the cache
        // can swap it in the moment the observed deopt rate proves the
        // recovery replay a net loss. Compiled now because the recording
        // is gone after Rec.clear().
        if (!IsBridge && TSettings.DWEGate &&
            (TSettings.OptStages & kTraceOptDWE)) {
          bool Wrap = false;
          for (const TraceRecovery &R : T->Recov)
            Wrap |= R.Wrap;
          if (Wrap) {
            if (auto Alt = compileTrace(P, Rec)) {
              optimizeTrace(*Alt, {TSettings.OptStages & ~kTraceOptDWE,
                                   TSettings.FaultDropGuard});
              T->HasWrapDWE = true;
              T->NoDWEAlt = std::move(Alt);
            }
          }
        }
      }
      Rec.clear();
      if (T && Config.TraceFacts && !traceBumpsFeasible(*T, *Config.TraceFacts))
        T.reset(); // optimizer/compiler bug: reject like a failed compile
      if (IsBridge) {
        if (T && TC->installBridge(*BrParent, BrStep, std::move(T))) {
          ++TStats.Bridges;
        } else {
          BrParent->ExitDeopts[BrStep].store(CompiledTrace::NoBridgeSentinel,
                                             std::memory_order_relaxed);
          ++TStats.Aborted;
        }
        BrParent = nullptr;
      } else if (T && TC->install(std::move(T))) {
        ++TStats.Recorded;
      } else {
        Prof->Tier.blacklistAnchor(AF, APc);
        ++TStats.Aborted;
      }
      goto TraceLookup; // enter the fresh trace immediately
    }
    OLPP_DISPATCH(); // still recording: stay in the ordinary loop
  }
TraceLookup:
  if (const CompiledTrace *CT = TC->lookup(FuncId, Pc)) {
    Fr->Pc = Pc;
    Fr->Block = Block;
    TraceRunIO IO{Frames,   RegStack, LoopStack,
                  GlobalsP, *Prof,    P,
                  MaxSteps, Config.MaxCallDepth,
                  Steps,    Base,     PCostSum,
                  Blocks,   Calls,    TStats};
    IO.LinkThreshold = Config.TraceLinkThreshold;
    IO.DWEGate = Config.TraceDWEGate;
    runCompiledTrace(*CT, IO);
    if (IO.DWETripped) {
      // The deopt rate crossed the gate: republish the anchor with the
      // no-DWE alternate. On a lost race this is a no-op and the winner's
      // swap (or retirement) already took effect.
      if (TC->swapNoDWE(*IO.DWETripped))
        ++TStats.DWEGated;
    }
    if (IO.BridgeParent) {
      // The executor saw a side exit cross the link threshold: record a
      // bridge from the exact resume point (the frame state right now *is*
      // the bridge's entry snapshot) back to the parent's anchor.
      BrParent = IO.BridgeParent;
      BrStep = IO.BridgeStep;
      FastFrame &Cur = Frames.back();
      Rec.beginBridge(Cur.FuncId, Cur.Pc, Cur.Block, BrParent->FuncId,
                      BrParent->AnchorPc, Cur,
                      LoopStack.data() + Cur.LoopBase,
                      P.Funcs[Cur.FuncId].NumLoopSlots, *Prof);
      Tr = &Rec;
    }
    goto ReloadFrame; // frame/pc/block restored by the executor
  }
  if (Prof->Tier.PendingRecord == static_cast<int64_t>(FuncId)) {
    if (Prof->Tier.anchorBlacklisted(FuncId, Pc) ||
        TC->occupied(FuncId, Pc)) {
      // This anchor failed before, or already holds a (possibly retired)
      // trace; stop paying for its hotness counting.
      Prof->Tier.Hot[Prof->Tier.PendingSlot].Disabled = true;
      Prof->Tier.PendingRecord = -1;
    } else {
      Prof->Tier.PendingRecord = -1;
      Rec.begin(FuncId, Pc, Block, *Fr, Loops, P.Funcs[FuncId].NumLoopSlots,
                *Prof);
      Tr = &Rec;
    }
  }
  OLPP_DISPATCH();
}
#undef OLPP_PRBR_END
#undef OLPP_PR_CALL_END
#undef OLPP_PR_RET_END
#undef OLPP_PR_END
#undef OLPP_PR
#undef OLPP_PB_OLADD
#undef OLPP_PB_BLADD
#undef OLPP_PB_OLFLUSH
#undef OLPP_PB_ARMII
#undef OLPP_PB_IPCALL
#undef OLPP_PB_IPRET
#undef OLPP_PB_IPENTER
#undef OLPP_PB_OLARM
#undef OLPP_PB_BLCOUNT
#undef OLPP_PB_BLSET
#undef OLPP_PB_FLUSHII_FIRST
#undef OLPP_PB_PREDII_FIRST
#undef OLPP_PB_ADDII_FIRST
#undef OLPP_PB_ADDI
#undef OLPP_PB_FLUSHI
#undef OLPP_PB_PREDI
#undef OLPP_PB_OLPRED
#undef OLPP_CONDBR_BODY
#undef OLPP_CMP_BODY
#undef OLPP_LOADG_BODY
#undef OLPP_BR_BODY
#undef OLPP_LOADARR_BODY
#undef OLPP_AND_BODY
#undef OLPP_ADD_BODY
#undef OLPP_MOVE_BODY
#undef OLPP_CONST_BODY
#undef OLPP_NEXT
#undef OLPP_DISPATCH
#undef OLPP_FUEL
}


//===----------------------------------------------------------------------===//
// Reference engine: the original tree-walking loop (differential oracle)
//===----------------------------------------------------------------------===//

RunResult Interpreter::runReference(const Function &Entry,
                                    const std::vector<int64_t> &Args,
                                    const RunConfig &Config) {
  RunResult Res;
  if (Args.size() != Entry.NumParams) {
    Res.Error = arityError(Entry, Args.size());
    return Res;
  }
  if (Prof)
    Prof->resetTransient();

  std::vector<Frame> Stack;
  auto PushFrame = [&](const Function &F, Reg RetDst) {
    Stack.emplace_back();
    Frame &Fr = Stack.back();
    Fr.F = &F;
    Fr.BB = F.entry();
    Fr.RetDst = RetDst;
    Fr.Regs.assign(F.NumRegs, 0);
    Fr.Loops.resize(F.NumLoopSlots);
    if (Trace) {
      Trace->onEnter(F.Id);
      Trace->onBlock(F.Id, Fr.BB->Id);
    }
    ++Res.Counts.Blocks;
  };

  PushFrame(Entry, NoReg);
  for (size_t A = 0; A < Args.size(); ++A)
    Stack.back().Regs[A] = Args[A];

  DynCounts &C = Res.Counts;
  auto Fail = [&](const std::string &Msg) {
    Res.Ok = false;
    Res.Error = Msg + " (in '" + Stack.back().F->Name + "', block ^" +
                std::to_string(Stack.back().BB->Id) + ")";
    return Res;
  };

  while (true) {
    Frame &Fr = Stack.back();
    assert(Fr.Ip < Fr.BB->Instrs.size() && "fell off the end of a block");
    const Instruction &I = Fr.BB->Instrs[Fr.Ip];

    if (++C.Steps > Config.MaxSteps)
      return Fail("fuel exhausted after " + std::to_string(Config.MaxSteps) +
                  " steps");

    // Helper for transferring control within the current frame.
    auto Goto = [&](BasicBlock *Target) {
      Fr.BB = Target;
      Fr.Ip = 0;
      ++C.Blocks;
      if (Trace)
        Trace->onBlock(Fr.F->Id, Target->Id);
    };

    switch (I.Op) {
    case Opcode::Const:
      Fr.Regs[I.Dst] = I.Imm;
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Move:
      Fr.Regs[I.Dst] = Fr.Regs[I.Src0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Neg:
      Fr.Regs[I.Dst] = -static_cast<int64_t>(
          static_cast<uint64_t>(Fr.Regs[I.Src0]));
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Not:
      Fr.Regs[I.Dst] = Fr.Regs[I.Src0] == 0 ? 1 : 0;
      C.BaseCost += cost::Instr;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe: {
      int64_t A = Fr.Regs[I.Src0], B = Fr.Regs[I.Src1];
      uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
      int64_t Out = 0;
      switch (I.Op) {
      case Opcode::Add:
        Out = static_cast<int64_t>(UA + UB);
        break;
      case Opcode::Sub:
        Out = static_cast<int64_t>(UA - UB);
        break;
      case Opcode::Mul:
        Out = static_cast<int64_t>(UA * UB);
        break;
      case Opcode::Div:
        if (B == 0)
          return Fail("division by zero");
        if (A == INT64_MIN && B == -1)
          return Fail("signed division overflow");
        Out = A / B;
        break;
      case Opcode::Mod:
        if (B == 0)
          return Fail("modulo by zero");
        if (A == INT64_MIN && B == -1)
          return Fail("signed modulo overflow");
        Out = A % B;
        break;
      case Opcode::And:
        Out = A & B;
        break;
      case Opcode::Or:
        Out = A | B;
        break;
      case Opcode::Xor:
        Out = A ^ B;
        break;
      case Opcode::Shl:
        Out = static_cast<int64_t>(UA << (UB & 63));
        break;
      case Opcode::Shr:
        Out = A >> (UB & 63);
        break;
      case Opcode::CmpEq:
        Out = A == B;
        break;
      case Opcode::CmpNe:
        Out = A != B;
        break;
      case Opcode::CmpLt:
        Out = A < B;
        break;
      case Opcode::CmpLe:
        Out = A <= B;
        break;
      case Opcode::CmpGt:
        Out = A > B;
        break;
      case Opcode::CmpGe:
        Out = A >= B;
        break;
      default:
        assert(false && "unexpected binary opcode");
      }
      Fr.Regs[I.Dst] = Out;
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::LoadG:
      Fr.Regs[I.Dst] = Globals[I.GlobalId][0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::StoreG:
      Globals[I.GlobalId][0] = Fr.Regs[I.Src0];
      C.BaseCost += cost::Instr;
      break;
    case Opcode::LoadArr: {
      int64_t Idx = Fr.Regs[I.Src0];
      const auto &Arr = Globals[I.GlobalId];
      if (Idx < 0 || static_cast<uint64_t>(Idx) >= Arr.size())
        return Fail("array index " + std::to_string(Idx) +
                    " out of bounds for '" + M.globals()[I.GlobalId].Name +
                    "' of size " + std::to_string(Arr.size()));
      Fr.Regs[I.Dst] = Arr[static_cast<size_t>(Idx)];
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::StoreArr: {
      int64_t Idx = Fr.Regs[I.Src0];
      auto &Arr = Globals[I.GlobalId];
      if (Idx < 0 || static_cast<uint64_t>(Idx) >= Arr.size())
        return Fail("array index " + std::to_string(Idx) +
                    " out of bounds for '" + M.globals()[I.GlobalId].Name +
                    "' of size " + std::to_string(Arr.size()));
      Arr[static_cast<size_t>(Idx)] = Fr.Regs[I.Src1];
      C.BaseCost += cost::Instr;
      break;
    }
    case Opcode::CallInd:
    case Opcode::Call: {
      uint32_t CalleeId = I.CalleeId;
      if (I.Op == Opcode::CallInd) {
        int64_t Target = Fr.Regs[I.Src0];
        if (Target < 0 ||
            static_cast<uint64_t>(Target) >= M.numFunctions())
          return Fail("indirect call to invalid function id " +
                      std::to_string(Target));
        CalleeId = static_cast<uint32_t>(Target);
        if (I.Args.size() != M.function(CalleeId)->NumParams)
          return Fail("indirect call to '" + M.function(CalleeId)->Name +
                      "' with " + std::to_string(I.Args.size()) +
                      " args, expected " +
                      std::to_string(M.function(CalleeId)->NumParams));
      }
      if (Stack.size() >= Config.MaxCallDepth)
        return Fail("call depth limit of " +
                    std::to_string(Config.MaxCallDepth) + " exceeded");
      C.BaseCost += cost::Instr;
      ++C.Calls;
      const Function &Callee = *M.function(CalleeId);
      std::vector<int64_t> CallArgs(I.Args.size());
      for (size_t A = 0; A < I.Args.size(); ++A)
        CallArgs[A] = Fr.Regs[I.Args[A]];
      ++Fr.Ip; // resume past the call on return
      PushFrame(Callee, I.Dst);
      // NB: `Fr` is invalidated by the push.
      Frame &NewFr = Stack.back();
      for (size_t A = 0; A < CallArgs.size(); ++A)
        NewFr.Regs[A] = CallArgs[A];
      continue;
    }
    case Opcode::Ret: {
      C.BaseCost += cost::Instr;
      int64_t Value = I.Src0 == NoReg ? 0 : Fr.Regs[I.Src0];
      bool IsVoid = I.Src0 == NoReg;
      if (Trace)
        Trace->onExit(Fr.F->Id);
      Reg Dst = Fr.RetDst;
      Stack.pop_back();
      if (Stack.empty()) {
        Res.Ok = true;
        Res.ReturnValue = Value;
        return Res;
      }
      if (Dst != NoReg) {
        if (IsVoid)
          return Fail("void return value used by the caller");
        Stack.back().Regs[Dst] = Value;
      }
      continue;
    }
    case Opcode::Br:
      C.BaseCost += cost::Instr;
      Goto(I.Target0);
      continue;
    case Opcode::CondBr:
      C.BaseCost += cost::Instr;
      Goto(Fr.Regs[I.Src0] != 0 ? I.Target0 : I.Target1);
      continue;
    case Opcode::Probe: {
      if (!Prof)
        break; // probes are inert without a runtime attached
      execProbe(*I.ProbePayload, Fr, Fr.Loops.data(), Fr.F->Id, *Prof,
                Prof->PathCounts[Fr.F->Id], C);
      break;
    }
    }
    ++Fr.Ip;
  }
}
