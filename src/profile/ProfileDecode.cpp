//===--- ProfileDecode.cpp - Raw counters back to paths ----------------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDecode.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace olpp;

DecodedEntry olpp::decodePathId(const PathGraph &PG, int64_t Id) {
  DecodedEntry D;
  D.Id = Id;
  std::vector<uint32_t> EdgeSeq = PG.decode(Id);
  assert(!EdgeSeq.empty());

  const PGEdge &Start = PG.edge(EdgeSeq.front());
  assert(Start.Kind == PGEdgeKind::EntryStart && "path must begin at Entry");
  const PGNode &StartNode = PG.node(Start.To);
  D.White.StartsAtCallContinuation = StartNode.CallStart;
  D.White.Blocks.push_back(StartNode.Block);

  bool InSuffix = false;
  for (size_t I = 1; I < EdgeSeq.size(); ++I) {
    const PGEdge &E = PG.edge(EdgeSeq[I]);
    switch (E.Kind) {
    case PGEdgeKind::Real: {
      const PGNode &To = PG.node(E.To);
      if (InSuffix)
        D.Suffix.push_back(To.Block);
      else
        D.White.Blocks.push_back(To.Block);
      break;
    }
    case PGEdgeKind::Arm: {
      assert(!InSuffix && "two arm edges in one path");
      InSuffix = true;
      const PGNode &To = PG.node(E.To);
      D.End = PathEnd::Backedge;
      D.Loop = To.Region - 1;
      D.Suffix.push_back(To.Block); // the loop header copy
      break;
    }
    case PGEdgeKind::ExitCount: {
      assert(I + 1 == EdgeSeq.size() && "count edge must end the path");
      if (InSuffix)
        break; // an overlapping path; End/Loop already set by the arm
      const PGNode &From = PG.node(E.From);
      if (E.CfgFrom != UINT32_MAX) {
        // Plain BL backedge count.
        D.End = PathEnd::Backedge;
        D.Loop = PG.loopInfo().loopForBackedge(E.CfgFrom, E.CfgTo);
        assert(D.Loop != UINT32_MAX);
      } else if (!From.CallStart && PG.options().CallBreaking &&
                 isCallBlock(PG.function(), From.Block)) {
        D.End = PathEnd::CallBreak;
      } else {
        D.End = PathEnd::Ret;
      }
      break;
    }
    case PGEdgeKind::EntryStart:
      assert(false && "entry edge in the middle of a path");
      break;
    }
  }
  return D;
}

std::vector<DecodedEntry>
olpp::decodeProfile(const PathGraph &PG,
                    const ProfileRuntime::PathCountMap &Counts) {
  std::vector<DecodedEntry> Out;
  Out.reserve(Counts.size());
  for (const auto &[Id, Count] : Counts) {
    DecodedEntry D = decodePathId(PG, Id);
    D.Count = Count;
    Out.push_back(std::move(D));
  }
  // Deterministic order for consumers and tests.
  std::sort(Out.begin(), Out.end(),
            [](const DecodedEntry &A, const DecodedEntry &B) {
              return A.Id < B.Id;
            });
  return Out;
}

std::vector<DecodedEntry>
olpp::decodeProfile(const PathGraph &PG, const PathCounterStore &Counts) {
  std::vector<DecodedEntry> Out;
  Out.reserve(Counts.size());
  for (const auto &[Id, Count] : Counts) {
    DecodedEntry D = decodePathId(PG, Id);
    D.Count = Count;
    Out.push_back(std::move(D));
  }
  std::sort(Out.begin(), Out.end(),
            [](const DecodedEntry &A, const DecodedEntry &B) {
              return A.Id < B.Id;
            });
  return Out;
}

bool olpp::parseProfileRecords(const std::vector<uint64_t> &Words,
                               std::vector<ProfileRecord> &Out,
                               std::vector<Diagnostic> &Diags) {
  size_t Before = Diags.size();
  size_t Pairs = Words.size() / 2;
  Out.reserve(Out.size() + Pairs);
  for (size_t I = 0; I < Pairs; ++I)
    Out.push_back({static_cast<int64_t>(Words[2 * I]), Words[2 * I + 1]});
  if (Words.size() % 2 != 0)
    Diags.push_back(makeDiag(
        Severity::Error, "profile-decode", "",
        "truncated record stream: " + std::to_string(Words.size()) +
            " word(s) is not a whole number of (id, count) pairs"));
  return Diags.size() == Before;
}

std::vector<DecodedEntry>
olpp::decodeProfileChecked(const PathGraph &PG,
                           const std::vector<ProfileRecord> &Records,
                           std::vector<Diagnostic> &Diags) {
  const std::string &Func = PG.function().Name;
  size_t Before = Diags.size();
  std::unordered_set<int64_t> Seen;
  std::vector<DecodedEntry> Out;
  Out.reserve(Records.size());
  for (const ProfileRecord &R : Records) {
    if (R.Id < 0 || static_cast<uint64_t>(R.Id) >= PG.numPaths()) {
      Diags.push_back(makeDiag(
          Severity::Error, "profile-decode", Func,
          "path id " + std::to_string(R.Id) + " out of range [0, " +
              std::to_string(PG.numPaths()) + ")"));
      continue;
    }
    if (!Seen.insert(R.Id).second) {
      Diags.push_back(makeDiag(
          Severity::Error, "profile-decode", Func,
          "duplicate record for path id " + std::to_string(R.Id)));
      continue;
    }
    if (R.Count == 0) {
      Diags.push_back(makeDiag(
          Severity::Error, "profile-decode", Func,
          "zero count for path id " + std::to_string(R.Id) +
              " (live counters are always positive; a zero marks a "
              "truncated or corrupt dump)"));
      continue;
    }
    DecodedEntry D = decodePathId(PG, R.Id);
    D.Count = R.Count;
    Out.push_back(std::move(D));
  }
  if (Diags.size() != Before)
    return {}; // reject wholesale: no silently partial counter sets
  std::sort(Out.begin(), Out.end(),
            [](const DecodedEntry &A, const DecodedEntry &B) {
              return A.Id < B.Id;
            });
  return Out;
}

namespace {

/// Walks the white part of \p Sig and returns the edge sequence plus the
/// final white node.
std::vector<uint32_t> walkWhite(const PathGraph &PG, const PathSig &Sig,
                                uint32_t &LastNode) {
  assert(!Sig.Blocks.empty());
  uint32_t Node = PG.whiteNode(Sig.Blocks[0], Sig.StartsAtCallContinuation);
  uint32_t StartEdge = PG.entryStartEdgeTo(Node);
  assert(StartEdge != UINT32_MAX && "path start has no Entry edge");
  std::vector<uint32_t> Seq{StartEdge};
  for (size_t I = 1; I < Sig.Blocks.size(); ++I) {
    uint32_t To = PG.whiteNode(Sig.Blocks[I]);
    uint32_t E = PG.realEdgeBetween(Node, To);
    assert(E != UINT32_MAX && "signature is not a white path");
    Seq.push_back(E);
    Node = To;
  }
  LastNode = Node;
  return Seq;
}

} // namespace

int64_t olpp::encodeWhiteId(const PathGraph &PG, const PathSig &Sig,
                            PathEnd End, uint32_t BackedgeTarget) {
  uint32_t Last = 0;
  std::vector<uint32_t> Seq = walkWhite(PG, Sig, Last);

  if (End == PathEnd::Backedge) {
    assert(!PG.options().LoopOverlap &&
           "backedge-ended paths have no own id in overlap mode");
    assert(BackedgeTarget != UINT32_MAX);
    uint32_t Found = UINT32_MAX;
    for (uint32_t E : PG.outEdges(Last)) {
      const PGEdge &Ed = PG.edge(E);
      if (Ed.Kind == PGEdgeKind::ExitCount && Ed.CfgTo == BackedgeTarget) {
        Found = E;
        break;
      }
    }
    assert(Found != UINT32_MAX && "no backedge count edge");
    Seq.push_back(Found);
    return PG.encode(Seq);
  }

  if (End == PathEnd::CallBreak) {
    // The pre-path ends at the call block's *end* copy; its last block must
    // be the call block, reached via normal edges, so Last is W_end already
    // unless the path is the single-block [c] (then Last is W_end too).
    uint32_t CountEdge = PG.exitCountEdgeFrom(Last);
    assert(CountEdge != UINT32_MAX && "call block has no count edge");
    Seq.push_back(CountEdge);
    return PG.encode(Seq);
  }

  uint32_t CountEdge = PG.exitCountEdgeFrom(Last);
  assert(CountEdge != UINT32_MAX && "ret block has no count edge");
  Seq.push_back(CountEdge);
  return PG.encode(Seq);
}

int64_t olpp::encodeOverlapId(const PathGraph &PG, const PathSig &Sig,
                              uint32_t Loop,
                              const std::vector<uint32_t> &SuffixBlocks) {
  assert(PG.options().LoopOverlap && "no overlapping paths in plain BL mode");
  assert(!SuffixBlocks.empty() && "overlap suffix must include the header");
  uint32_t Last = 0;
  std::vector<uint32_t> Seq = walkWhite(PG, Sig, Last);

  uint32_t Arm = PG.armEdgeFor(Loop, Sig.Blocks.back());
  assert(Arm != UINT32_MAX && "path does not end at this loop's backedge");
  assert(PG.edge(Arm).From == Last && "arm edge does not match path end");
  Seq.push_back(Arm);

  uint32_t Node = PG.edge(Arm).To;
  assert(PG.node(Node).Block == SuffixBlocks[0] &&
         "suffix must start at the loop header");
  for (size_t I = 1; I < SuffixBlocks.size(); ++I) {
    uint32_t To = PG.ogNode(Loop, SuffixBlocks[I]);
    assert(To != UINT32_MAX && "suffix leaves the overlapping graph");
    uint32_t E = PG.realEdgeBetween(Node, To);
    assert(E != UINT32_MAX && "suffix is not an OG path");
    Seq.push_back(E);
    Node = To;
  }
  uint32_t Dummy = PG.exitCountEdgeFrom(Node);
  assert(Dummy != UINT32_MAX && "suffix does not end at a flush site");
  Seq.push_back(Dummy);
  return PG.encode(Seq);
}
