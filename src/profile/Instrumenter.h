//===--- Instrumenter.h - Probe insertion for path profiling ----*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruments a module for path profiling:
///   - plain Ball-Larus profiles,
///   - overlapping loop path profiles of a chosen degree (paper §2.3),
///   - interprocedural Type I / Type II overlapping profiles (paper §3.3),
/// in any combination. Returns the metadata (path graphs, region
/// numberings, call-site table) needed to decode the raw counters back into
/// paths.
///
/// Probes attach to CFG edges (placed in the source block when it has a
/// single successor, in the target when it has a single predecessor, on a
/// split block otherwise), to block entries, and around calls and returns.
/// Instrumentation appends blocks only, so pre-instrumentation block ids
/// remain valid and all metadata is expressed in terms of them.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFILE_INSTRUMENTER_H
#define OLPP_PROFILE_INSTRUMENTER_H

#include "ir/Probe.h"
#include "overlap/RegionNumbering.h"
#include "profile/PathGraph.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace olpp {

class Module;
class Function;

struct InstrumentOptions {
  /// Attach overlapping graphs of degree LoopDegree to every loop.
  bool LoopOverlap = false;
  uint32_t LoopDegree = 0;
  /// Collect Type I / Type II interprocedural overlapping profiles of
  /// degree InterprocDegree. Implies call-breaking.
  bool Interproc = false;
  uint32_t InterprocDegree = 0;
  /// Ball-Larus paths terminate at call sites. Forced on by Interproc.
  bool CallBreaking = false;
  /// Place increments on spanning-tree chords (the BL event-counting
  /// optimization) instead of on every edge.
  bool UseChords = true;
};

/// A call site in the original (pre-instrumentation) module.
struct CallSiteInfo {
  uint32_t Func = 0;   ///< caller function id
  uint32_t Block = 0;  ///< block containing the call
  uint32_t Callee = 0; ///< callee function id
  uint32_t CsId = 0;   ///< module-wide call-site id
};

/// Decode metadata for one instrumented function.
struct FunctionInstrumentation {
  std::unique_ptr<CfgView> Cfg;
  std::unique_ptr<DomTree> Dom;
  std::unique_ptr<LoopInfo> Loops;
  std::unique_ptr<PathGraph> PG;

  /// Type I callee-prefix region/numbering (Interproc mode).
  std::unique_ptr<OverlapRegion> TypeIRegion;
  std::unique_ptr<RegionNumbering> TypeINumbering;

  /// Type II continuation region per local call site.
  struct TypeIISite {
    uint32_t CsId = 0;
    uint32_t Block = 0;
    uint32_t Callee = 0;
    std::unique_ptr<OverlapRegion> Region;
    std::unique_ptr<RegionNumbering> Numbering;
  };
  std::vector<TypeIISite> TypeII;

  /// Largest useful loop overlap degree of this function (max over loops).
  uint32_t MaxLoopDegree = 0;
  /// Largest useful interprocedural degree (max over the Type I anchor and
  /// all Type II anchors).
  uint32_t MaxInterprocDegree = 0;
};

/// The complete set of probe programs the instrumenter attaches to one
/// function, keyed by the pre-instrumentation site each program belongs to.
/// The plan is a pure function of the metadata: recomputing it after
/// instrumentation yields the same ops, which is what InstrCheck exploits
/// to audit an instrumented module against its decode metadata.
struct ProbePlan {
  using Ops = std::vector<ProbeOp>;

  /// Runs once when the function is entered (in the entry block, after any
  /// edge-into ops, before block-entry ops).
  Ops FuncEntryOps;
  /// Runs when the CFG edge (from, to) is traversed. Placement: appended to
  /// the source block when it has a single successor, prepended to the
  /// target when it has a single predecessor, otherwise on a split block.
  std::map<std::pair<uint32_t, uint32_t>, Ops> EdgeOps;
  /// Runs at the top of a block (predicate counting), indexed by block id.
  std::vector<Ops> BlockEntryOps;
  /// Runs immediately before / after the call instruction of a call block.
  std::vector<Ops> PreCallOps;
  std::vector<Ops> PostCallOps;
  /// Runs immediately before the ret of an exit block.
  std::vector<Ops> RetOps;
};

/// Computes the probe plan for \p F from its instrumentation metadata.
/// \p Meta must have Cfg/Loops/PG populated (and the interprocedural
/// regions when Opts.Interproc). Pure: does not touch the function, and is
/// identical whether \p F is the pre-instrumentation function or the
/// instrumented one (instrumentation only appends blocks and probes).
ProbePlan computeProbePlan(const Function &F,
                           const FunctionInstrumentation &Meta,
                           const InstrumentOptions &Opts,
                           const std::vector<CallSiteInfo> &CallSites);

struct ModuleInstrumentation {
  InstrumentOptions Opts;
  std::vector<FunctionInstrumentation> Funcs; ///< by function id
  std::vector<CallSiteInfo> CallSites;        ///< by global call-site id
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }

  const FunctionInstrumentation::TypeIISite *
  typeIISite(uint32_t CsId) const {
    const CallSiteInfo &CS = CallSites[CsId];
    for (const auto &S : Funcs[CS.Func].TypeII)
      if (S.CsId == CsId)
        return &S;
    return nullptr;
  }
};

/// Instruments \p M in place (it must verify cleanly). On any per-function
/// failure the error is recorded and the module is left unusable for
/// profiling; check ok().
ModuleInstrumentation instrumentModule(Module &M,
                                       const InstrumentOptions &Opts);

/// Computes the analyses and per-function degree maxima of \p M without
/// touching it. Used by the benches to pick sweep ranges.
struct DegreeLimits {
  uint32_t MaxLoopDegree = 0;
  uint32_t MaxInterprocDegree = 0;
};
DegreeLimits computeDegreeLimits(const Module &M, bool CallBreaking);

} // namespace olpp

#endif // OLPP_PROFILE_INSTRUMENTER_H
