//===--- PathGraph.cpp - Ball-Larus path graph with overlap regions ---------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/PathGraph.h"

#include "ir/Function.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace olpp;

namespace {

/// Union-find over path-graph nodes, for the Kruskal spanning tree.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  bool unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    Parent[A] = B;
    return true;
  }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

class PathGraph::Builder {
public:
  Builder(const Function &F, const CfgView &Cfg, const LoopInfo &LI,
          const PathGraphOptions &Opts)
      : F(F), Cfg(Cfg), LI(LI), Opts(Opts) {}

  std::unique_ptr<PathGraph> run(std::string &Error) {
    if (LI.isIrreducible()) {
      Error = "function '" + F.Name +
              "' has irreducible control flow; path profiling requires "
              "reducible loops";
      return nullptr;
    }
    PG.reset(new PathGraph());
    PG->F = &F;
    PG->LI = &LI;
    PG->Opts = Opts;

    buildNodes();
    buildEdges();
    if (!number(Error))
      return nullptr;
    if (Opts.UseChords)
      assignChordIncrements();
    else
      for (PGEdge &E : PG->Edges)
        E.Inc = static_cast<int64_t>(E.Val);
    buildLookups();
    return std::move(PG);
  }

private:
  uint32_t addNode(PGNode N) {
    PG->Nodes.push_back(N);
    return static_cast<uint32_t>(PG->Nodes.size() - 1);
  }

  uint32_t addEdge(uint32_t From, uint32_t To, PGEdgeKind Kind,
                   uint32_t CfgFrom = UINT32_MAX, uint32_t CfgTo = UINT32_MAX) {
    PGEdge E;
    E.From = From;
    E.To = To;
    E.Kind = Kind;
    E.CfgFrom = CfgFrom;
    E.CfgTo = CfgTo;
    PG->Edges.push_back(E);
    uint32_t Id = static_cast<uint32_t>(PG->Edges.size() - 1);
    PG->OutEdges[From].push_back(Id);
    return Id;
  }

  bool isBreakingCallBlock(uint32_t B) const {
    return Opts.CallBreaking && isCallBlock(F, B);
  }

  /// White node that *out*-edges of block \p B originate from.
  uint32_t whiteSrc(uint32_t B) const {
    return isBreakingCallBlock(B) ? PG->WhiteStart[B] : PG->WhiteStd[B];
  }

  void buildNodes() {
    uint32_t N = Cfg.numBlocks();
    PG->Entry = addNode({PGNode::Kind::Entry, 0, WhiteRegion, false});
    PG->Exit = addNode({PGNode::Kind::Exit, 0, WhiteRegion, false});
    PG->WhiteStd.assign(N, UINT32_MAX);
    PG->WhiteStart.assign(N, UINT32_MAX);
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      PG->WhiteStd[B] = addNode({PGNode::Kind::Block, B, WhiteRegion, false});
      if (isBreakingCallBlock(B))
        PG->WhiteStart[B] =
            addNode({PGNode::Kind::Block, B, WhiteRegion, true});
    }

    if (Opts.LoopOverlap) {
      PG->Regions.resize(LI.numLoops());
      PG->OgNodes.assign(LI.numLoops(), {});
      for (uint32_t L = 0; L < LI.numLoops(); ++L) {
        const Loop &Loop_ = LI.loop(L);
        OverlapRegionParams P;
        P.Anchor = Loop_.Header;
        P.Degree = Opts.Degree;
        P.Restrict.assign(N, false);
        for (uint32_t B : Loop_.Blocks)
          P.Restrict[B] = true;
        P.BreakAtCalls = Opts.CallBreaking;
        PG->Regions[L] = std::make_unique<OverlapRegion>(
            OverlapRegion::compute(F, Cfg, LI, P));
        PG->OgNodes[L].assign(N, UINT32_MAX);
        for (const OverlapRegionNode &RN : PG->Regions[L]->nodes())
          PG->OgNodes[L][RN.Block] =
              addNode({PGNode::Kind::Block, RN.Block, ogRegion(L), false});
      }
    }
    PG->OutEdges.resize(PG->Nodes.size());
  }

  void buildEdges() {
    uint32_t N = Cfg.numBlocks();

    // Entry start edges: function entry first, then loop headers, then
    // call-continuation restarts. Deduplicate by target node.
    std::vector<bool> HasStart(PG->Nodes.size(), false);
    auto AddStart = [&](uint32_t Node) {
      if (HasStart[Node])
        return;
      HasStart[Node] = true;
      addEdge(PG->Entry, Node, PGEdgeKind::EntryStart);
    };
    AddStart(PG->WhiteStd[F.entry()->Id]);
    for (uint32_t L = 0; L < LI.numLoops(); ++L)
      AddStart(PG->WhiteStd[LI.loop(L).Header]);
    if (Opts.CallBreaking)
      for (uint32_t B = 0; B < N; ++B)
        if (Cfg.isReachable(B) && isCallBlock(F, B))
          AddStart(PG->WhiteStart[B]);

    // White region edges, in block order then successor order.
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      const BasicBlock *BB = F.block(B);
      uint32_t Src = whiteSrc(B);
      for (BasicBlock *SuccBB : BB->successors()) {
        uint32_t S = SuccBB->Id;
        uint32_t LoopIdx = LI.loopForBackedge(B, S);
        if (LoopIdx != UINT32_MAX) {
          if (Opts.LoopOverlap) {
            uint32_t Head = PG->OgNodes[LoopIdx][S];
            assert(Head != UINT32_MAX && "OG lacks its own header");
            addEdge(Src, Head, PGEdgeKind::Arm, B, S);
          } else {
            addEdge(Src, PG->Exit, PGEdgeKind::ExitCount, B, S);
          }
          continue;
        }
        addEdge(Src, PG->WhiteStd[S], PGEdgeKind::Real, B, S);
      }
      if (BB->isExit())
        addEdge(Src, PG->Exit, PGEdgeKind::ExitCount);
      if (isBreakingCallBlock(B))
        addEdge(PG->WhiteStd[B], PG->Exit, PGEdgeKind::ExitCount);
    }

    // OG edges.
    if (Opts.LoopOverlap) {
      for (uint32_t L = 0; L < LI.numLoops(); ++L) {
        const OverlapRegion &R = *PG->Regions[L];
        for (uint32_t NIdx = 0; NIdx < R.nodes().size(); ++NIdx) {
          const OverlapRegionNode &RN = R.nodes()[NIdx];
          uint32_t Src = PG->OgNodes[L][RN.Block];
          for (uint32_t EIdx : R.outEdges(NIdx)) {
            const OverlapRegionEdge &RE = R.edges()[EIdx];
            uint32_t DstBlock = R.nodes()[RE.To].Block;
            addEdge(Src, PG->OgNodes[L][DstBlock], PGEdgeKind::Real, RN.Block,
                    DstBlock);
          }
          if (RN.needsDummy())
            addEdge(Src, PG->Exit, PGEdgeKind::ExitCount);
        }
      }
    }
  }

  /// Topological order, NumPaths, and canonical Vals.
  bool number(std::string &Error) {
    size_t NN = PG->Nodes.size();
    PG->NumPathsOf.assign(NN, 0);

    // Iterative DFS postorder from Entry.
    std::vector<uint8_t> State(NN, 0);
    std::vector<std::pair<uint32_t, uint32_t>> Stack{{PG->Entry, 0}};
    std::vector<uint32_t> Post;
    Post.reserve(NN);
    State[PG->Entry] = 1;
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      const auto &Out = PG->OutEdges[Node];
      if (Next < Out.size()) {
        uint32_t To = PG->Edges[Out[Next++]].To;
        assert(State[To] != 1 && "path graph has a cycle");
        if (State[To] == 0) {
          State[To] = 1;
          Stack.push_back({To, 0});
        }
        continue;
      }
      State[Node] = 2;
      Post.push_back(Node);
      Stack.pop_back();
    }

    // NumPaths in postorder (successors first).
    const uint64_t Cap = Opts.MaxPaths;
    for (uint32_t Node : Post) {
      if (Node == PG->Exit) {
        PG->NumPathsOf[Node] = 1;
        continue;
      }
      uint64_t Sum = 0;
      for (uint32_t E : PG->OutEdges[Node]) {
        uint64_t T = PG->NumPathsOf[PG->Edges[E].To];
        if (Sum > Cap - T) {
          Error = "function '" + F.Name + "' has more than " +
                  std::to_string(Cap) + " profileable paths";
          return false;
        }
        Sum += T;
      }
      assert((Sum > 0 || PG->OutEdges[Node].empty()) &&
             "interior node with zero paths");
      assert(!PG->OutEdges[Node].empty() &&
             "non-exit node must reach the exit");
      PG->NumPathsOf[Node] = Sum;
    }
    if (State[PG->Exit] != 2) {
      Error = "function '" + F.Name + "': exit unreachable in the path graph";
      return false;
    }

    // Canonical Vals: cumulative NumPaths offsets per node.
    for (uint32_t Node = 0; Node < NN; ++Node) {
      uint64_t Off = 0;
      for (uint32_t E : PG->OutEdges[Node]) {
        PG->Edges[E].Val = Off;
        Off += PG->NumPathsOf[PG->Edges[E].To];
      }
    }
    return true;
  }

  /// Static frequency guess used to pick spanning-tree edges: deeper loop
  /// nesting means hotter, so keeping deep edges *in* the tree (increment 0)
  /// minimizes expected instrumentation work.
  uint64_t edgeWeight(const PGEdge &E) const {
    auto DepthOfNode = [&](uint32_t N) -> uint32_t {
      const PGNode &Node = PG->Nodes[N];
      if (Node.K != PGNode::Kind::Block)
        return 0;
      return LI.depthOf(Node.Block);
    };
    uint32_t D = std::max(DepthOfNode(E.From), DepthOfNode(E.To));
    D = std::min(D, 8u);
    uint64_t W = 1;
    for (uint32_t I = 0; I < D; ++I)
      W *= 10;
    // Prefer real edges over dummies at equal depth (dummy sites must carry
    // a counter op anyway, so an increment there is nearly free).
    return E.Kind == PGEdgeKind::Real ? W * 2 : W;
  }

  void assignChordIncrements() {
    size_t NN = PG->Nodes.size();
    size_t NE = PG->Edges.size();

    // Kruskal maximum spanning tree over the undirected view, with a
    // virtual closing edge Exit->Entry (Val 0) forced in first.
    std::vector<uint32_t> Order(NE);
    std::iota(Order.begin(), Order.end(), 0);
    std::stable_sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      return edgeWeight(PG->Edges[A]) > edgeWeight(PG->Edges[B]);
    });

    UnionFind UF(NN);
    UF.unite(PG->Exit, PG->Entry); // the closing edge
    std::vector<bool> InTree(NE, false);
    for (uint32_t E : Order)
      if (UF.unite(PG->Edges[E].From, PG->Edges[E].To))
        InTree[E] = true;

    // Potentials along the tree: phi(Entry) = 0 = phi(Exit); for a tree
    // edge u->v, phi(v) = phi(u) + Val.
    std::vector<std::vector<std::pair<uint32_t, bool>>> TreeAdj(NN);
    for (uint32_t E = 0; E < NE; ++E) {
      if (!InTree[E])
        continue;
      TreeAdj[PG->Edges[E].From].push_back({E, /*Forward=*/true});
      TreeAdj[PG->Edges[E].To].push_back({E, /*Forward=*/false});
    }
    std::vector<__int128> Phi(NN, 0);
    std::vector<bool> Seen(NN, false);
    std::vector<uint32_t> Work{PG->Entry};
    Seen[PG->Entry] = true;
    // The closing edge pins phi(Exit) to phi(Entry).
    Seen[PG->Exit] = true;
    while (!Work.empty()) {
      uint32_t U = Work.back();
      Work.pop_back();
      for (auto [E, Forward] : TreeAdj[U]) {
        uint32_t V = Forward ? PG->Edges[E].To : PG->Edges[E].From;
        if (Seen[V])
          continue;
        Seen[V] = true;
        Phi[V] = Forward
                     ? Phi[U] + static_cast<__int128>(PG->Edges[E].Val)
                     : Phi[U] - static_cast<__int128>(PG->Edges[E].Val);
        Work.push_back(V);
      }
    }
    // Exit may have tree neighbours of its own; propagate from it too.
    Work.push_back(PG->Exit);
    while (!Work.empty()) {
      uint32_t U = Work.back();
      Work.pop_back();
      for (auto [E, Forward] : TreeAdj[U]) {
        uint32_t V = Forward ? PG->Edges[E].To : PG->Edges[E].From;
        if (Seen[V])
          continue;
        Seen[V] = true;
        Phi[V] = Forward
                     ? Phi[U] + static_cast<__int128>(PG->Edges[E].Val)
                     : Phi[U] - static_cast<__int128>(PG->Edges[E].Val);
        Work.push_back(V);
      }
    }

    // Chord increments; fall back to naive if any doesn't fit comfortably.
    const __int128 Limit = static_cast<__int128>(1) << 62;
    std::vector<int64_t> Incs(NE, 0);
    for (uint32_t E = 0; E < NE; ++E) {
      if (InTree[E])
        continue;
      __int128 Inc = static_cast<__int128>(PG->Edges[E].Val) +
                     Phi[PG->Edges[E].From] - Phi[PG->Edges[E].To];
      if (Inc >= Limit || Inc <= -Limit) {
        for (PGEdge &Ed : PG->Edges) {
          Ed.Inc = static_cast<int64_t>(Ed.Val);
          Ed.TreeEdge = false;
        }
        return;
      }
      Incs[E] = static_cast<int64_t>(Inc);
    }
    for (uint32_t E = 0; E < NE; ++E) {
      PG->Edges[E].Inc = Incs[E];
      PG->Edges[E].TreeEdge = InTree[E];
    }
  }

  void buildLookups() {
    PG->EntryStartByNode.assign(PG->Nodes.size(), UINT32_MAX);
    PG->ExitCountByNode.assign(PG->Nodes.size(), UINT32_MAX);
    for (uint32_t E = 0; E < PG->Edges.size(); ++E) {
      const PGEdge &Ed = PG->Edges[E];
      if (Ed.Kind == PGEdgeKind::EntryStart)
        PG->EntryStartByNode[Ed.To] = E;
      else if (Ed.Kind == PGEdgeKind::ExitCount && Ed.CfgFrom == UINT32_MAX) {
        // Backedge count edges (plain BL mode) carry their CFG edge and are
        // looked up by scanning; this table holds the node's generic
        // count/flush edge.
        assert(PG->ExitCountByNode[Ed.From] == UINT32_MAX &&
               "multiple generic count edges from one node");
        PG->ExitCountByNode[Ed.From] = E;
      }
    }
  }

  const Function &F;
  const CfgView &Cfg;
  const LoopInfo &LI;
  PathGraphOptions Opts;
  std::unique_ptr<PathGraph> PG;
};

std::unique_ptr<PathGraph> PathGraph::build(const Function &F,
                                            const CfgView &Cfg,
                                            const LoopInfo &LI,
                                            const PathGraphOptions &Opts,
                                            std::string &Error) {
  return Builder(F, Cfg, LI, Opts).run(Error);
}

uint32_t PathGraph::whiteNode(uint32_t Block, bool CallStart) const {
  uint32_t N = CallStart ? WhiteStart[Block] : WhiteStd[Block];
  assert(N != UINT32_MAX && "no such white node");
  return N;
}

uint32_t PathGraph::ogNode(uint32_t LoopIdx, uint32_t Block) const {
  if (LoopIdx >= OgNodes.size() || Block >= OgNodes[LoopIdx].size())
    return UINT32_MAX;
  return OgNodes[LoopIdx][Block];
}

uint32_t PathGraph::entryStartEdgeTo(uint32_t Node) const {
  return EntryStartByNode[Node];
}

uint32_t PathGraph::exitCountEdgeFrom(uint32_t Node) const {
  return ExitCountByNode[Node];
}

uint32_t PathGraph::realEdgeBetween(uint32_t From, uint32_t To) const {
  for (uint32_t E : OutEdges[From])
    if (Edges[E].Kind == PGEdgeKind::Real && Edges[E].To == To)
      return E;
  return UINT32_MAX;
}

uint32_t PathGraph::armEdgeFor(uint32_t LoopIdx, uint32_t Latch) const {
  uint32_t Src = WhiteStd[Latch];
  if (Src == UINT32_MAX)
    return UINT32_MAX;
  for (uint32_t E : OutEdges[Src])
    if (Edges[E].Kind == PGEdgeKind::Arm &&
        Nodes[Edges[E].To].Region == ogRegion(LoopIdx))
      return E;
  return UINT32_MAX;
}

std::vector<uint32_t> PathGraph::decode(int64_t Id) const {
  assert(Id >= 0 && static_cast<uint64_t>(Id) < numPaths() &&
         "path id out of range");
  std::vector<uint32_t> Seq;
  uint64_t Rem = static_cast<uint64_t>(Id);
  uint32_t Node = Entry;
  while (Node != Exit) {
    const auto &Out = OutEdges[Node];
    assert(!Out.empty() && "decode reached a dead end");
    // Pick the unique edge with Val <= Rem < Val + NumPaths(target).
    uint32_t Chosen = UINT32_MAX;
    for (uint32_t E : Out) {
      const PGEdge &Ed = Edges[E];
      if (Ed.Val <= Rem && Rem < Ed.Val + NumPathsOf[Ed.To]) {
        Chosen = E;
        break;
      }
    }
    assert(Chosen != UINT32_MAX && "id does not decode to a path");
    Seq.push_back(Chosen);
    Rem -= Edges[Chosen].Val;
    Node = Edges[Chosen].To;
  }
  assert(Rem == 0 && "decode left a remainder");
  return Seq;
}

int64_t PathGraph::encode(const std::vector<uint32_t> &EdgeSeq) const {
  assert(!EdgeSeq.empty() && "empty path");
  assert(Edges[EdgeSeq.front()].From == Entry && "path must start at Entry");
  uint64_t Sum = 0;
  uint32_t At = Entry;
  for (uint32_t E : EdgeSeq) {
    assert(Edges[E].From == At && "edge sequence is not a path");
    Sum += Edges[E].Val;
    At = Edges[E].To;
  }
  assert(At == Exit && "path must end at Exit");
  return static_cast<int64_t>(Sum);
}
