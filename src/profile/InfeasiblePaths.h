//===--- InfeasiblePaths.h - Statically infeasible path ids -----*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the path ids of one function's path graph that branch
/// correlation (analysis/Feasibility.h) proves statically infeasible: a
/// bounded DFS walks the acyclic path graph carrying a value-range state,
/// refining at every conditional branch; when an out-edge contradicts the
/// state, the whole id subtree below it — a contiguous interval, because
/// Ball-Larus numbering gives DFS subtrees contiguous ids — is emitted as
/// infeasible.
///
/// Soundness: an id is reported only when *every* concrete execution along
/// its path would violate a proven register/global range. The DFS runs
/// under a visit budget; exhaustion truncates the result (Exhausted flag)
/// but never invalidates the intervals already emitted.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFILE_INFEASIBLEPATHS_H
#define OLPP_PROFILE_INFEASIBLEPATHS_H

#include "profile/PathGraph.h"
#include "support/Diagnostic.h"

#include <cstdint>
#include <vector>

namespace olpp {

class Module;
struct ModuleSummaries;

/// A closed range of consecutive infeasible path ids.
struct InfeasibleInterval {
  int64_t Lo = 0;
  int64_t Hi = 0; ///< inclusive
};

struct FunctionInfeasibility {
  /// Ascending, pairwise-disjoint intervals of proven-infeasible ids.
  std::vector<InfeasibleInterval> Intervals;
  /// Total count of ids covered by Intervals.
  uint64_t InfeasibleIds = 0;
  /// The DFS hit its budget; Intervals is a (still sound) underapproximation.
  bool Exhausted = false;
  /// Path-graph edges traversed (diagnostics / bench).
  uint64_t NodesVisited = 0;

  bool isInfeasible(int64_t Id) const;
};

struct InfeasibleOptions {
  /// Path-graph edge traversals before the DFS gives up.
  uint64_t MaxVisits = 200000;
};

/// Walks every path of \p PG (built for \p F over \p Cfg) under the range
/// domain and returns the proven-infeasible id intervals. \p Sums, when
/// provided, interprets calls through function summaries; null is sound
/// (calls havoc everything).
FunctionInfeasibility
computeInfeasiblePaths(const Function &F, const CfgView &Cfg,
                       const PathGraph &PG, const ModuleSummaries *Sums,
                       const InfeasibleOptions &Opts = {});

/// Lint-style feasibility pass (`lint-infeasible-path`, note severity):
/// per function, how many acyclic path ids branch correlation proves can
/// never execute. Profiling still numbers them — the note tells the author
/// which share of the id space is statically dead weight.
std::vector<Diagnostic> lintInfeasiblePaths(const Module &M);

} // namespace olpp

#endif // OLPP_PROFILE_INFEASIBLEPATHS_H
