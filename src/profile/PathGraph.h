//===--- PathGraph.h - Ball-Larus path graph with overlap regions -*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acyclic *path graph* of one function (paper §2.3): the Ball-Larus DAG
/// (backedges replaced by Entry/Exit dummies) optionally extended with one
/// *overlapping graph* (OG) per loop. Every path from Entry to Exit is one
/// profileable path — a plain BL path, or a BL path that crosses a backedge
/// and continues through the loop's OG (an overlapping path). All paths of
/// one function share a single id space.
///
/// In call-breaking mode each call block is split into an *end* copy (the
/// pre-path terminates here) and a *start* copy (the continuation path
/// restarts here), so no spurious "straight through the call" paths exist.
///
/// Ids are assigned by the canonical Ball-Larus value assignment (Val). The
/// runtime increments (Inc) are either the Vals themselves (naive mode) or
/// spanning-tree chord increments (the Ball-Larus event-counting
/// optimization); in both cases the sum of Inc along a path equals the
/// path's canonical id.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFILE_PATHGRAPH_H
#define OLPP_PROFILE_PATHGRAPH_H

#include "overlap/OverlapRegion.h"

#include <memory>
#include <string>
#include <vector>

namespace olpp {

class Function;

/// Region id of the white (plain Ball-Larus) part of the path graph.
inline constexpr uint32_t WhiteRegion = 0;

/// Region id of loop \p LoopIdx's overlapping graph.
inline constexpr uint32_t ogRegion(uint32_t LoopIdx) { return LoopIdx + 1; }

struct PGNode {
  enum class Kind : uint8_t { Entry, Exit, Block };
  Kind K = Kind::Block;
  uint32_t Block = 0;
  uint32_t Region = WhiteRegion;
  /// White copy representing the post-call continuation of a call block
  /// (call-breaking mode only).
  bool CallStart = false;
};

enum class PGEdgeKind : uint8_t {
  Real,       ///< mirrors a CFG edge (in the white region or inside an OG)
  EntryStart, ///< Entry -> node: a path (re)start point
  ExitCount,  ///< node -> Exit: a count/flush site
  Arm,        ///< white latch -> OG head; triggered by the backedge
};

struct PGEdge {
  uint32_t From = 0;
  uint32_t To = 0;
  PGEdgeKind Kind = PGEdgeKind::Real;
  /// The CFG edge that triggers this path-graph edge (Real and Arm edges).
  uint32_t CfgFrom = UINT32_MAX;
  uint32_t CfgTo = UINT32_MAX;
  /// Canonical Ball-Larus value: the id offset contributed by taking this
  /// edge. Path id == sum of Vals along the path.
  uint64_t Val = 0;
  /// Runtime increment; sum of Incs along any Entry->Exit path equals the
  /// sum of Vals. Equal to Val in naive mode.
  int64_t Inc = 0;
  /// True if the edge is a spanning-tree edge in chord mode (Inc == 0).
  bool TreeEdge = false;
};

struct PathGraphOptions {
  /// Paths terminate at call blocks; required for interprocedural profiling.
  bool CallBreaking = false;
  /// Attach one overlapping graph per natural loop.
  bool LoopOverlap = false;
  /// Degree of overlap k (ignored unless LoopOverlap).
  uint32_t Degree = 0;
  /// Use maximum-spanning-tree chord increments instead of per-edge Vals.
  bool UseChords = false;
  /// Refuse numbering when the total number of paths exceeds this.
  uint64_t MaxPaths = uint64_t(1) << 62;
};

/// The built path graph. Immutable once built.
class PathGraph {
public:
  /// Builds and numbers the graph. On failure (irreducible CFG, path-count
  /// overflow) returns null and sets \p Error.
  static std::unique_ptr<PathGraph>
  build(const Function &F, const CfgView &Cfg, const LoopInfo &LI,
        const PathGraphOptions &Opts, std::string &Error);

  const PathGraphOptions &options() const { return Opts; }
  const Function &function() const { return *F; }
  const LoopInfo &loopInfo() const { return *LI; }

  // --- structure --------------------------------------------------------
  uint32_t entryNode() const { return Entry; }
  uint32_t exitNode() const { return Exit; }
  const PGNode &node(uint32_t N) const { return Nodes[N]; }
  size_t numNodes() const { return Nodes.size(); }
  const PGEdge &edge(uint32_t E) const { return Edges[E]; }
  size_t numEdges() const { return Edges.size(); }
  /// Out-edges of \p N in numbering order (Vals ascending).
  const std::vector<uint32_t> &outEdges(uint32_t N) const {
    return OutEdges[N];
  }

  /// Total number of distinct paths (== NumPaths(Entry)).
  uint64_t numPaths() const { return NumPathsOf[Entry]; }
  uint64_t numPathsFrom(uint32_t N) const { return NumPathsOf[N]; }

  // --- node lookup --------------------------------------------------------
  /// White node of \p Block. \p CallStart selects the continuation copy of
  /// a call block (call-breaking mode).
  uint32_t whiteNode(uint32_t Block, bool CallStart = false) const;
  /// OG node of \p Block in loop \p LoopIdx, or UINT32_MAX.
  uint32_t ogNode(uint32_t LoopIdx, uint32_t Block) const;

  // --- edge lookup (UINT32_MAX when absent) -------------------------------
  /// The EntryStart edge whose target is \p Node.
  uint32_t entryStartEdgeTo(uint32_t Node) const;
  /// The ExitCount edge leaving \p Node.
  uint32_t exitCountEdgeFrom(uint32_t Node) const;
  /// The Real edge From -> To (node ids).
  uint32_t realEdgeBetween(uint32_t From, uint32_t To) const;
  /// The Arm edge for backedge (\p Latch -> header of loop \p LoopIdx).
  uint32_t armEdgeFor(uint32_t LoopIdx, uint32_t Latch) const;

  /// The overlap region attached to loop \p LoopIdx (LoopOverlap mode).
  const OverlapRegion &region(uint32_t LoopIdx) const {
    return *Regions[LoopIdx];
  }
  bool hasRegion(uint32_t LoopIdx) const {
    return LoopIdx < Regions.size() && Regions[LoopIdx] != nullptr;
  }

  // --- path codec ---------------------------------------------------------
  /// Decodes \p Id into the edge sequence of its Entry->Exit path.
  /// Asserts the id is in range.
  std::vector<uint32_t> decode(int64_t Id) const;

  /// Canonical id of the path described by \p EdgeSeq (must be a valid
  /// Entry->Exit edge sequence).
  int64_t encode(const std::vector<uint32_t> &EdgeSeq) const;

private:
  PathGraph() = default;

  const Function *F = nullptr;
  const LoopInfo *LI = nullptr;
  PathGraphOptions Opts;

  uint32_t Entry = 0, Exit = 0;
  std::vector<PGNode> Nodes;
  std::vector<PGEdge> Edges;
  std::vector<std::vector<uint32_t>> OutEdges;
  std::vector<uint64_t> NumPathsOf;

  // Lookup tables.
  std::vector<uint32_t> WhiteStd;                 // block -> node
  std::vector<uint32_t> WhiteStart;               // block -> call-start node
  std::vector<std::vector<uint32_t>> OgNodes;     // loop -> block -> node
  std::vector<uint32_t> EntryStartByNode;         // node -> edge
  std::vector<uint32_t> ExitCountByNode;          // node -> edge
  std::vector<std::unique_ptr<OverlapRegion>> Regions;

  class Builder;
};

} // namespace olpp

#endif // OLPP_PROFILE_PATHGRAPH_H
