//===--- ProfileDecode.h - Raw counters back to paths -----------*- C++ -*-===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a function's raw path counters into structured path records, and
/// provides the reverse encodings (block sequence -> path id) that the
/// ground-truth checker and the estimators rely on.
///
/// The universal identity of a dynamic Ball-Larus path in this codebase is
/// its PathSig: whether it starts at a call continuation, plus its block
/// sequence. Ends are implied (return, call break, or backedge) and
/// recorded alongside.
///
//===----------------------------------------------------------------------===//

#ifndef OLPP_PROFILE_PROFILEDECODE_H
#define OLPP_PROFILE_PROFILEDECODE_H

#include "interp/ProfileRuntime.h"
#include "profile/PathGraph.h"
#include "support/Diagnostic.h"

#include <cstdint>
#include <vector>

namespace olpp {

/// How a Ball-Larus path ends.
enum class PathEnd : uint8_t {
  Ret,       ///< at a return
  CallBreak, ///< at a call site (call-breaking mode)
  Backedge,  ///< at a loop backedge
};

/// The identity of one Ball-Larus path class.
struct PathSig {
  bool StartsAtCallContinuation = false;
  std::vector<uint32_t> Blocks;

  bool operator==(const PathSig &O) const {
    return StartsAtCallContinuation == O.StartsAtCallContinuation &&
           Blocks == O.Blocks;
  }
};

struct PathSigHash {
  size_t operator()(const PathSig &S) const {
    uint64_t H = S.StartsAtCallContinuation ? 0x9E3779B97F4A7C15ULL : 17;
    for (uint32_t B : S.Blocks)
      H = (H ^ B) * 0x100000001B3ULL;
    return static_cast<size_t>(H);
  }
};

/// One decoded profile record: a complete BL path, or an overlapping path
/// (a BL path ending at a backedge plus its OG suffix).
struct DecodedEntry {
  PathSig White;
  PathEnd End = PathEnd::Ret;
  uint32_t Loop = UINT32_MAX; ///< loop of the backedge (End == Backedge)
  /// OG suffix blocks (first is the loop header); empty in plain BL mode.
  std::vector<uint32_t> Suffix;
  uint64_t Count = 0;
  int64_t Id = 0;
};

/// Decodes every (id, count) of \p Counts against \p PG.
std::vector<DecodedEntry> decodeProfile(const PathGraph &PG,
                                        const ProfileRuntime::PathCountMap &Counts);

/// Same, reading a counter store directly (zero counters are skipped).
std::vector<DecodedEntry> decodeProfile(const PathGraph &PG,
                                        const PathCounterStore &Counts);

/// Decodes a single path id (count is left zero).
DecodedEntry decodePathId(const PathGraph &PG, int64_t Id);

/// Id of the complete BL path \p Sig ending as \p End. For a Backedge end in
/// plain BL mode this is the id counted at the backedge; in loop-overlap
/// mode Backedge-ended paths have no id of their own (use encodeOverlapId).
/// \p BackedgeTarget names the header the backedge jumps to (End==Backedge).
int64_t encodeWhiteId(const PathGraph &PG, const PathSig &Sig, PathEnd End,
                      uint32_t BackedgeTarget = UINT32_MAX);

/// Id of the overlapping path: \p Sig (ending at the backedge of \p Loop)
/// followed by the OG suffix \p SuffixBlocks (starting at the header).
int64_t encodeOverlapId(const PathGraph &PG, const PathSig &Sig, uint32_t Loop,
                        const std::vector<uint32_t> &SuffixBlocks);

//===----------------------------------------------------------------------===//
// Checked decoding of externally supplied profile records
//===----------------------------------------------------------------------===//
//
// decodeProfile/decodePathId above trust their input: counters written by
// our own probes are in range by construction, so range violations are
// programming errors and assert. Profiles that cross a serialization
// boundary (dump files, merge tools, the fuzzer's corpora) are *data* and
// must be validated: a truncated, duplicated or out-of-range record has to
// surface as a structured Diagnostic, never as a silently partial counter
// set.

/// One raw profile record as emitted by a profile dump: a path id and its
/// count.
struct ProfileRecord {
  int64_t Id = 0;
  uint64_t Count = 0;
};

/// Parses a flat word stream of (id, count) pairs. An odd number of words
/// is a truncated final record; it is reported on \p Diags and nothing is
/// returned for it. Returns false when any diagnostic was emitted.
bool parseProfileRecords(const std::vector<uint64_t> &Words,
                         std::vector<ProfileRecord> &Out,
                         std::vector<Diagnostic> &Diags);

/// Validates \p Records against \p PG and decodes them. Rejected record
/// kinds, each with a Severity::Error diagnostic (pass "profile-decode"):
///   - out-of-range ids (negative or >= PG.numPaths()),
///   - duplicated ids (two records claiming the same path),
///   - zero counts (a record for a path that was never taken marks a
///     corrupt or truncated dump; live counters are always positive).
/// On any error the decode is rejected wholesale (empty result): partial
/// counter sets are exactly the silent-corruption mode this API exists to
/// prevent.
std::vector<DecodedEntry>
decodeProfileChecked(const PathGraph &PG,
                     const std::vector<ProfileRecord> &Records,
                     std::vector<Diagnostic> &Diags);

} // namespace olpp

#endif // OLPP_PROFILE_PROFILEDECODE_H
