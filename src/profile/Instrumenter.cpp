//===--- Instrumenter.cpp - Probe insertion for path profiling --------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/Instrumenter.h"

#include "analysis/EdgeSplit.h"
#include "ir/Module.h"

#include <cassert>
#include <map>

using namespace olpp;

namespace {

/// Assembles the per-site probe programs for one function. Pure: reads the
/// function shape and the instrumentation metadata only.
class PlanBuilder {
public:
  PlanBuilder(const Function &F, const FunctionInstrumentation &Meta,
              const InstrumentOptions &Opts,
              const std::vector<CallSiteInfo> &CallSites)
      : F(F), Meta(Meta), Opts(Opts), CallSites(CallSites) {}

  ProbePlan build() {
    assembleOps();
    return std::move(Plan);
  }

private:
  using Ops = std::vector<ProbeOp>;

  int64_t edgeInc(uint32_t PGEdgeId) const {
    assert(PGEdgeId != UINT32_MAX && "missing path-graph edge");
    return Meta.PG->edge(PGEdgeId).Inc;
  }

  /// Inc of the generic count/flush dummy leaving path-graph node \p Node.
  int64_t dummyInc(uint32_t Node) const {
    return edgeInc(Meta.PG->exitCountEdgeFrom(Node));
  }

  /// OG flush op for loop \p L at block \p B (which must be in the OG).
  ProbeOp olFlushAt(uint32_t L, uint32_t B) const {
    uint32_t Node = Meta.PG->ogNode(L, B);
    assert(Node != UINT32_MAX && "flush outside the OG");
    return {ProbeOpKind::OLFlush, L, dummyInc(Node), 0};
  }

  void assembleOps() {
    const CfgView &Cfg = *Meta.Cfg;
    const LoopInfo &LI = *Meta.Loops;
    const PathGraph &PG = *Meta.PG;
    uint32_t N = Cfg.numBlocks();

    Plan.EdgeOps.clear();
    Plan.BlockEntryOps.assign(N, {});
    Plan.PreCallOps.assign(N, {});
    Plan.PostCallOps.assign(N, {});
    Plan.RetOps.assign(N, {});

    // Function entry.
    Plan.FuncEntryOps.clear();
    Plan.FuncEntryOps.push_back(
        {ProbeOpKind::BLSet, 0,
         edgeInc(PG.entryStartEdgeTo(PG.whiteNode(F.entry()->Id))), 0});
    if (Opts.Interproc)
      Plan.FuncEntryOps.push_back({ProbeOpKind::IPEnter, 0, 0, 0});

    // Per-CFG-edge programs.
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      bool BIsBreakingCall = Opts.CallBreaking && isCallBlock(F, B);
      uint32_t SrcWhite = PG.whiteNode(B, /*CallStart=*/BIsBreakingCall);
      for (uint32_t S : Cfg.succs(B)) {
        Ops E;
        uint32_t BeLoop = LI.loopForBackedge(B, S);
        if (BeLoop != UINT32_MAX) {
          // Any backedge ends every active overlap region at B.
          if (Opts.Interproc)
            appendInterprocFlushes(E, B);
          if (Opts.LoopOverlap) {
            for (uint32_t L = 0; L < LI.numLoops(); ++L)
              if (L != BeLoop && PG.ogNode(L, B) != UINT32_MAX)
                E.push_back(olFlushAt(L, B));
            if (PG.ogNode(BeLoop, B) != UINT32_MAX)
              E.push_back(olFlushAt(BeLoop, B));
            // Arm the new overlap path, then restart the BL register.
            E.push_back({ProbeOpKind::OLArm, BeLoop,
                         edgeInc(PG.armEdgeFor(BeLoop, B)), 0});
          } else {
            // Plain BL: count the path ending at this backedge.
            uint32_t CountEdge = UINT32_MAX;
            for (uint32_t PE : PG.outEdges(SrcWhite)) {
              const PGEdge &Ed = PG.edge(PE);
              if (Ed.Kind == PGEdgeKind::ExitCount && Ed.CfgFrom == B &&
                  Ed.CfgTo == S) {
                CountEdge = PE;
                break;
              }
            }
            E.push_back({ProbeOpKind::BLCount, 0, edgeInc(CountEdge), 0});
          }
          E.push_back({ProbeOpKind::BLSet, 0,
                       edgeInc(PG.entryStartEdgeTo(PG.whiteNode(S))), 0});
          Plan.EdgeOps[{B, S}] = std::move(E);
          continue;
        }

        // Normal edge: loop-exit flushes, then white/OG/interproc incs.
        if (Opts.LoopOverlap)
          for (uint32_t L = 0; L < LI.numLoops(); ++L)
            if (LI.loop(L).contains(B) && !LI.loop(L).contains(S) &&
                PG.ogNode(L, B) != UINT32_MAX)
              E.push_back(olFlushAt(L, B));

        uint32_t White = PG.realEdgeBetween(SrcWhite, PG.whiteNode(S));
        if (int64_t Inc = edgeInc(White))
          E.push_back({ProbeOpKind::BLAdd, 0, Inc, 0});

        if (Opts.LoopOverlap)
          for (uint32_t L = 0; L < LI.numLoops(); ++L) {
            uint32_t From = PG.ogNode(L, B), To = PG.ogNode(L, S);
            if (From == UINT32_MAX || To == UINT32_MAX)
              continue;
            uint32_t Og = PG.realEdgeBetween(From, To);
            if (Og == UINT32_MAX)
              continue; // B is a non-extendable OG node
            if (int64_t Inc = edgeInc(Og))
              E.push_back({ProbeOpKind::OLAdd, L, Inc, 0});
          }

        if (Opts.Interproc)
          appendInterprocEdgeIncs(E, B, S);

        if (!E.empty())
          Plan.EdgeOps[{B, S}] = std::move(E);
      }
    }

    // Block entry: predicate counting for every region the block is in.
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B) || !F.block(B)->isPredicate())
        continue;
      Ops &E = Plan.BlockEntryOps[B];
      if (Opts.LoopOverlap)
        for (uint32_t L = 0; L < LI.numLoops(); ++L) {
          uint32_t Node = PG.ogNode(L, B);
          if (Node == UINT32_MAX)
            continue;
          int64_t C0 = PG.exitCountEdgeFrom(Node) == UINT32_MAX
                           ? 0
                           : dummyInc(Node);
          E.push_back({ProbeOpKind::OLPred, L, C0,
                       static_cast<int64_t>(Opts.LoopDegree) + 1});
        }
      if (Opts.Interproc) {
        int64_t KPlus1 = static_cast<int64_t>(Opts.InterprocDegree) + 1;
        uint32_t NI = Meta.TypeIRegion->nodeForBlock(B);
        if (NI != UINT32_MAX) {
          int64_t C0 = Meta.TypeIRegion->nodes()[NI].needsDummy()
                           ? Meta.TypeINumbering->dummyVal(NI)
                           : 0;
          E.push_back({ProbeOpKind::IPPredI, 0, C0, KPlus1});
        }
        for (const auto &Site : Meta.TypeII) {
          uint32_t NII = Site.Region->nodeForBlock(B);
          if (NII == UINT32_MAX)
            continue;
          int64_t C0 = Site.Region->nodes()[NII].needsDummy()
                           ? Site.Numbering->dummyVal(NII)
                           : 0;
          E.push_back({ProbeOpKind::IPPredII, Site.CsId, C0, KPlus1});
        }
      }
    }

    // Calls and returns.
    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      const BasicBlock *BB = F.block(B);
      bool IsCall = isCallBlock(F, B);

      if (IsCall && Opts.CallBreaking) {
        Ops &Pre = Plan.PreCallOps[B];
        if (Opts.LoopOverlap)
          for (uint32_t L = 0; L < LI.numLoops(); ++L)
            if (PG.ogNode(L, B) != UINT32_MAX)
              Pre.push_back(olFlushAt(L, B));
        if (Opts.Interproc)
          appendInterprocFlushes(Pre, B, /*SkipOwnSite=*/true);
        int64_t PreInc = dummyInc(PG.whiteNode(B));
        Pre.push_back({ProbeOpKind::BLCount, 0, PreInc, 0});
        uint32_t CsId = callSiteIdOf(B);
        if (Opts.Interproc)
          Pre.push_back({ProbeOpKind::IPCall, 0,
                         static_cast<int64_t>(CsId), PreInc});

        Ops &Post = Plan.PostCallOps[B];
        Post.push_back(
            {ProbeOpKind::BLSet, 0,
             edgeInc(PG.entryStartEdgeTo(PG.whiteNode(B, true))), 0});
        if (Opts.Interproc)
          Post.push_back({ProbeOpKind::IPArmII, 0, 0,
                          static_cast<int64_t>(CsId)});
      }

      if (BB->isExit()) {
        Ops &Ret = Plan.RetOps[B];
        if (Opts.Interproc)
          appendInterprocFlushes(Ret, B);
        bool Breaking = IsCall && Opts.CallBreaking;
        int64_t RetInc = dummyInc(PG.whiteNode(B, /*CallStart=*/Breaking));
        Ret.push_back({ProbeOpKind::BLCount, 0, RetInc, 0});
        if (Opts.Interproc)
          Ret.push_back({ProbeOpKind::IPRet, 0, RetInc, 0});
      }
    }
  }

  uint32_t callSiteIdOf(uint32_t Block) const {
    for (const CallSiteInfo &CS : CallSites)
      if (CS.Func == F.Id && CS.Block == Block)
        return CS.CsId;
    assert(false && "call block without a call-site id");
    return UINT32_MAX;
  }

  /// Flush ops for the Type I region and every Type II region that is
  /// active-capable at \p B. \p SkipOwnSite skips the Type II site anchored
  /// at \p B (its region cannot be active when re-reaching its own anchor).
  void appendInterprocFlushes(Ops &E, uint32_t B, bool SkipOwnSite = false) {
    uint32_t NI = Meta.TypeIRegion->nodeForBlock(B);
    if (NI != UINT32_MAX && Meta.TypeIRegion->nodes()[NI].needsDummy())
      E.push_back({ProbeOpKind::IPFlushI, 0,
                   Meta.TypeINumbering->dummyVal(NI), 0});
    for (const auto &Site : Meta.TypeII) {
      if (SkipOwnSite && Site.Block == B)
        continue;
      uint32_t NII = Site.Region->nodeForBlock(B);
      if (NII != UINT32_MAX && Site.Region->nodes()[NII].needsDummy())
        E.push_back({ProbeOpKind::IPFlushII, Site.CsId,
                     Site.Numbering->dummyVal(NII), 0});
    }
  }

  void appendInterprocEdgeIncs(Ops &E, uint32_t B, uint32_t S) {
    // Type I prefix region edge.
    const OverlapRegion &RI = *Meta.TypeIRegion;
    uint32_t FromI = RI.nodeForBlock(B), ToI = RI.nodeForBlock(S);
    if (FromI != UINT32_MAX && ToI != UINT32_MAX)
      for (uint32_t RE : RI.outEdges(FromI))
        if (RI.edges()[RE].To == ToI) {
          if (int64_t V = Meta.TypeINumbering->edgeVal(RE))
            E.push_back({ProbeOpKind::IPAddI, 0, V, 0});
          break;
        }
    // Type II continuation regions.
    for (const auto &Site : Meta.TypeII) {
      const OverlapRegion &R = *Site.Region;
      uint32_t From = R.nodeForBlock(B), To = R.nodeForBlock(S);
      if (From == UINT32_MAX || To == UINT32_MAX)
        continue;
      for (uint32_t RE : R.outEdges(From))
        if (R.edges()[RE].To == To) {
          if (int64_t V = Site.Numbering->edgeVal(RE))
            E.push_back({ProbeOpKind::IPAddII, Site.CsId, V, 0});
          break;
        }
    }
  }

  const Function &F;
  const FunctionInstrumentation &Meta;
  const InstrumentOptions &Opts;
  const std::vector<CallSiteInfo> &CallSites;
  ProbePlan Plan;
};

/// Instruments one function.
class FunctionInstrumenter {
public:
  FunctionInstrumenter(Module &M, Function &F, FunctionInstrumentation &Meta,
                       const InstrumentOptions &Opts,
                       const std::vector<CallSiteInfo> &CallSites)
      : M(M), F(F), Meta(Meta), Opts(Opts), CallSites(CallSites) {}

  bool run(std::string &Error) {
    F.renumberBlocks();
    Meta.Cfg = std::make_unique<CfgView>(CfgView::build(F));
    Meta.Dom = std::make_unique<DomTree>(DomTree::compute(*Meta.Cfg));
    Meta.Loops =
        std::make_unique<LoopInfo>(LoopInfo::compute(*Meta.Cfg, *Meta.Dom));
    const CfgView &Cfg = *Meta.Cfg;
    const LoopInfo &LI = *Meta.Loops;

    if (!Cfg.preds(F.entry()->Id).empty()) {
      Error = "function '" + F.Name +
              "' has branches to its entry block; create a separate header";
      return false;
    }

    PathGraphOptions PGO;
    PGO.CallBreaking = Opts.CallBreaking;
    PGO.LoopOverlap = Opts.LoopOverlap;
    PGO.Degree = Opts.LoopDegree;
    PGO.UseChords = Opts.UseChords;
    Meta.PG = PathGraph::build(F, Cfg, LI, PGO, Error);
    if (!Meta.PG)
      return false;

    // Degree maxima (for sweep benches).
    for (uint32_t L = 0; L < LI.numLoops(); ++L) {
      OverlapRegionParams P;
      P.Anchor = LI.loop(L).Header;
      P.Restrict.assign(Cfg.numBlocks(), false);
      for (uint32_t B : LI.loop(L).Blocks)
        P.Restrict[B] = true;
      P.BreakAtCalls = Opts.CallBreaking;
      Meta.MaxLoopDegree = std::max(
          Meta.MaxLoopDegree, maxOverlapDegree(F, Cfg, LI, P));
    }

    // Interprocedural regions and numberings.
    if (Opts.Interproc) {
      if (!buildInterprocMeta(Error))
        return false;
    }

    if (Opts.LoopOverlap)
      F.NumLoopSlots = static_cast<uint32_t>(LI.numLoops());

    Plan = computeProbePlan(F, Meta, Opts, CallSites);
    insertProbes();
    F.renumberBlocks();
    return true;
  }

private:
  using Ops = std::vector<ProbeOp>;

  bool buildInterprocMeta(std::string &Error) {
    const CfgView &Cfg = *Meta.Cfg;
    const LoopInfo &LI = *Meta.Loops;

    OverlapRegionParams PI;
    PI.Anchor = F.entry()->Id;
    PI.Degree = Opts.InterprocDegree;
    PI.BreakAtCalls = true;
    Meta.TypeIRegion = std::make_unique<OverlapRegion>(
        OverlapRegion::compute(F, Cfg, LI, PI));
    Meta.TypeINumbering = RegionNumbering::build(*Meta.TypeIRegion, Error);
    if (!Meta.TypeINumbering)
      return false;
    Meta.MaxInterprocDegree =
        std::max(Meta.MaxInterprocDegree, maxOverlapDegree(F, Cfg, LI, PI));

    for (const CallSiteInfo &CS : CallSites) {
      if (CS.Func != F.Id)
        continue;
      FunctionInstrumentation::TypeIISite Site;
      Site.CsId = CS.CsId;
      Site.Block = CS.Block;
      Site.Callee = CS.Callee;
      OverlapRegionParams PII;
      PII.Anchor = CS.Block;
      PII.Degree = Opts.InterprocDegree;
      PII.BreakAtCalls = true;
      PII.AnchorExemptFromCallBreak = true;
      Site.Region = std::make_unique<OverlapRegion>(
          OverlapRegion::compute(F, Cfg, LI, PII));
      Site.Numbering = RegionNumbering::build(*Site.Region, Error);
      if (!Site.Numbering)
        return false;
      Meta.MaxInterprocDegree =
          std::max(Meta.MaxInterprocDegree, maxOverlapDegree(F, Cfg, LI, PII));
      Meta.TypeII.push_back(std::move(Site));
    }
    return true;
  }

  // --- probe insertion ----------------------------------------------------

  static Instruction makeProbe(Ops OpsList) {
    Instruction I;
    I.Op = Opcode::Probe;
    auto Prog = std::make_shared<ProbeProgram>();
    Prog->Ops = std::move(OpsList);
    I.ProbePayload = std::move(Prog);
    return I;
  }

  void insertProbes() {
    const CfgView &Cfg = *Meta.Cfg;
    uint32_t N = Cfg.numBlocks();

    // Decide edge-op placement from the pre-instrumentation CFG shape.
    struct Split {
      uint32_t From, To;
      Ops OpsList;
    };
    std::vector<Split> Splits;
    std::vector<Ops> EdgeIntoOps(N), PreTermOps(N);
    for (auto &[Key, OpsList] : Plan.EdgeOps) {
      auto [U, V] = Key;
      if (Cfg.succs(U).size() == 1) {
        // Runs when U exits, which is exactly when the edge is taken.
        for (const ProbeOp &Op : OpsList)
          PreTermOps[U].push_back(Op);
      } else if (Cfg.preds(V).size() == 1) {
        EdgeIntoOps[V] = OpsList;
      } else {
        Splits.push_back({U, V, OpsList});
      }
    }

    for (uint32_t B = 0; B < N; ++B) {
      if (!Cfg.isReachable(B))
        continue;
      BasicBlock *BB = F.block(B);

      Ops Entry;
      auto Append = [](Ops &Dst, const Ops &Src) {
        Dst.insert(Dst.end(), Src.begin(), Src.end());
      };
      Append(Entry, EdgeIntoOps[B]);
      if (BB == F.entry())
        Append(Entry, Plan.FuncEntryOps);
      Append(Entry, Plan.BlockEntryOps[B]);

      std::vector<Instruction> NewInstrs;
      if (!Entry.empty())
        NewInstrs.push_back(makeProbe(std::move(Entry)));
      for (Instruction &I : BB->Instrs) {
        bool IsCallInstr = I.Op == Opcode::Call || I.Op == Opcode::CallInd;
        if (IsCallInstr && !Plan.PreCallOps[B].empty())
          NewInstrs.push_back(makeProbe(Plan.PreCallOps[B]));
        if (I.Op == Opcode::Ret && !Plan.RetOps[B].empty())
          NewInstrs.push_back(makeProbe(Plan.RetOps[B]));
        if (isTerminator(I.Op) && I.Op != Opcode::Ret &&
            !PreTermOps[B].empty())
          NewInstrs.push_back(makeProbe(PreTermOps[B]));
        NewInstrs.push_back(std::move(I));
        if (IsCallInstr && !Plan.PostCallOps[B].empty())
          NewInstrs.push_back(makeProbe(Plan.PostCallOps[B]));
      }
      BB->Instrs = std::move(NewInstrs);
    }

    for (Split &Sp : Splits) {
      BasicBlock *Mid = splitEdge(F, F.block(Sp.From), F.block(Sp.To));
      Mid->Instrs.insert(Mid->Instrs.begin(), makeProbe(std::move(Sp.OpsList)));
    }
  }

  Module &M;
  Function &F;
  FunctionInstrumentation &Meta;
  const InstrumentOptions &Opts;
  const std::vector<CallSiteInfo> &CallSites;
  ProbePlan Plan;
};

} // namespace

ProbePlan olpp::computeProbePlan(const Function &F,
                                 const FunctionInstrumentation &Meta,
                                 const InstrumentOptions &Opts,
                                 const std::vector<CallSiteInfo> &CallSites) {
  return PlanBuilder(F, Meta, Opts, CallSites).build();
}

ModuleInstrumentation olpp::instrumentModule(Module &M,
                                             const InstrumentOptions &Opts) {
  ModuleInstrumentation MI;
  MI.Opts = Opts;
  if (MI.Opts.Interproc)
    MI.Opts.CallBreaking = true;

  // Enumerate call sites module-wide (pre-instrumentation block ids).
  for (const auto &F : M.functions()) {
    F->renumberBlocks();
    for (uint32_t B = 0; B < F->numBlocks(); ++B)
      for (const Instruction &I : F->block(B)->Instrs)
        if (I.Op == Opcode::Call || I.Op == Opcode::CallInd) {
          CallSiteInfo CS;
          CS.Func = F->Id;
          CS.Block = B;
          CS.Callee = I.Op == Opcode::Call ? I.CalleeId : UINT32_MAX;
          CS.CsId = static_cast<uint32_t>(MI.CallSites.size());
          MI.CallSites.push_back(CS);
        }
  }

  MI.Funcs.resize(M.numFunctions());
  for (uint32_t FId = 0; FId < M.numFunctions(); ++FId) {
    std::string Error;
    FunctionInstrumenter FI(M, *M.function(FId), MI.Funcs[FId], MI.Opts,
                            MI.CallSites);
    if (!FI.run(Error))
      MI.Errors.push_back(Error);
  }
  return MI;
}

DegreeLimits olpp::computeDegreeLimits(const Module &M, bool CallBreaking) {
  DegreeLimits Lim;
  for (const auto &F : M.functions()) {
    CfgView Cfg = CfgView::build(*F);
    DomTree Dom = DomTree::compute(Cfg);
    LoopInfo LI = LoopInfo::compute(Cfg, Dom);
    for (uint32_t L = 0; L < LI.numLoops(); ++L) {
      OverlapRegionParams P;
      P.Anchor = LI.loop(L).Header;
      P.Restrict.assign(Cfg.numBlocks(), false);
      for (uint32_t B : LI.loop(L).Blocks)
        P.Restrict[B] = true;
      P.BreakAtCalls = CallBreaking;
      Lim.MaxLoopDegree =
          std::max(Lim.MaxLoopDegree, maxOverlapDegree(*F, Cfg, LI, P));
    }
    OverlapRegionParams PI;
    PI.Anchor = F->entry()->Id;
    PI.BreakAtCalls = true;
    Lim.MaxInterprocDegree =
        std::max(Lim.MaxInterprocDegree, maxOverlapDegree(*F, Cfg, LI, PI));
    for (uint32_t B = 0; B < Cfg.numBlocks(); ++B) {
      if (!Cfg.isReachable(B) || !isCallBlock(*F, B))
        continue;
      OverlapRegionParams PII;
      PII.Anchor = B;
      PII.BreakAtCalls = true;
      PII.AnchorExemptFromCallBreak = true;
      Lim.MaxInterprocDegree =
          std::max(Lim.MaxInterprocDegree, maxOverlapDegree(*F, Cfg, LI, PII));
    }
  }
  return Lim;
}
