//===--- InfeasiblePaths.cpp - Statically infeasible path ids -------------===//
//
// Part of the OLPP project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "profile/InfeasiblePaths.h"

#include "analysis/Dominators.h"
#include "analysis/Feasibility.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <algorithm>

using namespace olpp;

bool FunctionInfeasibility::isInfeasible(int64_t Id) const {
  auto It = std::upper_bound(
      Intervals.begin(), Intervals.end(), Id,
      [](int64_t V, const InfeasibleInterval &I) { return V < I.Lo; });
  return It != Intervals.begin() && Id <= std::prev(It)->Hi;
}

namespace {

/// DFS driver. Emits intervals in ascending, disjoint order because
/// out-edges are iterated in Val-ascending order and Ball-Larus numbering
/// gives each DFS subtree the contiguous id block
/// [base + Val, base + Val + numPathsFrom(To)).
class Enumerator {
public:
  Enumerator(const Function &F, const CfgView &Cfg, const PathGraph &PG,
             const ModuleSummaries *Sums, const InfeasibleOptions &Opts)
      : F(F), Cfg(Cfg), PG(PG), Sums(Sums), Opts(Opts) {}

  FunctionInfeasibility run() {
    // Per-run abstract-step allowance, sized to the visit budget so a few
    // giant blocks cannot starve the walk.
    StepBudget = Opts.MaxVisits * 8 + 4096;
    for (uint32_t E : PG.outEdges(PG.entryNode())) {
      if (Out.Exhausted)
        break;
      const PGEdge &Edge = PG.edge(E);
      const PGNode &Start = PG.node(Edge.To);
      if (Start.K != PGNode::Kind::Block)
        continue;
      RangeEnv Env = PathFeasibility::startEnv(F, Cfg, Start.Block,
                                               Start.CallStart);
      if (!enterNode(Env, Edge.To))
        continue;
      dfs(Edge.To, int64_t(Edge.Val), Env);
    }
    return std::move(Out);
  }

private:
  /// Executes the block of path-graph node \p N into \p Env. Returns false
  /// when the state is unusable (budget, shape mismatch) — the subtree is
  /// then simply treated as feasible.
  bool enterNode(RangeEnv &Env, uint32_t N) {
    const PGNode &Node = PG.node(N);
    if (Node.K != PGNode::Kind::Block || Node.Block >= F.numBlocks())
      return false;
    BlockExec Mode = BlockExec::Full;
    if (Node.CallStart)
      Mode = BlockExec::FromCallContinuation;
    else if (PG.options().CallBreaking && blockHasCall(Node.Block))
      Mode = BlockExec::UpToCall;
    return execBlock(Env, F, Node.Block, Mode, Sums, nullptr, StepBudget);
  }

  bool blockHasCall(uint32_t B) const {
    for (const Instruction &I : F.block(B)->Instrs)
      if (I.Op == Opcode::Call || I.Op == Opcode::CallInd)
        return true;
    return false;
  }

  void dfs(uint32_t N, int64_t Base, const RangeEnv &Env) {
    for (uint32_t E : PG.outEdges(N)) {
      if (Out.Exhausted)
        return;
      const PGEdge &Edge = PG.edge(E);
      if (Edge.Kind == PGEdgeKind::ExitCount ||
          PG.node(Edge.To).K == PGNode::Kind::Exit)
        continue; // the path ends here; nothing left to contradict
      if (++Out.NodesVisited > Opts.MaxVisits) {
        Out.Exhausted = true;
        return;
      }
      RangeEnv Next = Env;
      // Real and Arm edges mirror the CFG edge CfgFrom -> CfgTo; refine
      // the branch outcome against the original successor order.
      if (Edge.CfgFrom < F.numBlocks() && Edge.CfgFrom < Cfg.numBlocks()) {
        const std::vector<uint32_t> &Succs = Cfg.succs(Edge.CfgFrom);
        const Instruction &T = F.block(Edge.CfgFrom)->terminator();
        if (T.Op == Opcode::CondBr && Succs.size() == 2 &&
            Succs[0] != Succs[1]) {
          bool Taken;
          if (Edge.CfgTo == Succs[0])
            Taken = true;
          else if (Edge.CfgTo == Succs[1])
            Taken = false;
          else
            continue; // surprise target: leave the subtree feasible
          if (!refineBranch(Next, T, Taken)) {
            emit(Base + int64_t(Edge.Val), PG.numPathsFrom(Edge.To));
            continue;
          }
        }
      }
      if (!enterNode(Next, Edge.To))
        continue;
      dfs(Edge.To, Base + int64_t(Edge.Val), Next);
    }
  }

  void emit(int64_t Lo, uint64_t Count) {
    if (Count == 0)
      return;
    int64_t Hi = Lo + int64_t(Count) - 1;
    if (!Out.Intervals.empty() && Out.Intervals.back().Hi + 1 == Lo)
      Out.Intervals.back().Hi = Hi; // coalesce adjacent subtrees
    else
      Out.Intervals.push_back({Lo, Hi});
    Out.InfeasibleIds += Count;
  }

  const Function &F;
  const CfgView &Cfg;
  const PathGraph &PG;
  const ModuleSummaries *Sums;
  InfeasibleOptions Opts;
  FunctionInfeasibility Out;
  uint64_t StepBudget = 0;
};

} // namespace

FunctionInfeasibility
olpp::computeInfeasiblePaths(const Function &F, const CfgView &Cfg,
                             const PathGraph &PG, const ModuleSummaries *Sums,
                             const InfeasibleOptions &Opts) {
  return Enumerator(F, Cfg, PG, Sums, Opts).run();
}

std::vector<Diagnostic> olpp::lintInfeasiblePaths(const Module &M) {
  std::vector<Diagnostic> Diags;
  ModuleSummaries Sums = computeSummaries(M);
  for (const auto &FPtr : M.functions()) {
    const Function &F = *FPtr;
    if (F.numBlocks() == 0)
      continue;
    CfgView Cfg = CfgView::build(F);
    DomTree Dom = DomTree::compute(Cfg);
    LoopInfo LI = LoopInfo::compute(Cfg, Dom);
    std::string Err;
    auto PG = PathGraph::build(F, Cfg, LI, PathGraphOptions{}, Err);
    if (!PG)
      continue; // structural problems are other passes' findings
    FunctionInfeasibility FI =
        computeInfeasiblePaths(F, Cfg, *PG, &Sums);
    if (FI.InfeasibleIds == 0)
      continue;
    std::string Msg = std::to_string(FI.InfeasibleIds) + " of " +
                      std::to_string(PG->numPaths()) +
                      " acyclic path id(s) are statically infeasible "
                      "(contradictory branch predicates)";
    if (FI.Exhausted)
      Msg += "; enumeration stopped at the visit budget";
    Diags.push_back(
        makeDiag(Severity::Note, "lint-infeasible-path", F.Name, Msg));
  }
  return Diags;
}
